package goldeneye

import (
	"fmt"
	"strconv"
	"strings"

	"goldeneye/internal/numfmt"
)

// ParseFormat builds a Format from a textual specification. Accepted forms:
//
//	Presets:  fp32, fp16, bfloat16, tf32, dlfloat, fp8_e4m3, fp8_e5m2,
//	          int8, int16, fxp16, fxp32, bfp_e5m5, afp_e5m2
//	Generic:  fp_eXmY        floating point (X exponent, Y mantissa bits)
//	          afp_eXmY       AdaptivFloat
//	          fxp_1_I_F      fixed point (I integer, F fraction bits)
//	          intN           N-bit symmetric integer quantization
//	          bfp_eXmY       block floating point, whole-tensor block
//	          bfp_eXmY_bB    block floating point with block size B
//	Emerging: positN_esE     N-bit posit with E exponent bits (posit8, posit16)
//	          lns_I_F        logarithmic number system (lns8, lns16)
//	          nfK            K-bit normal-float codebook (nf4)
//
// Appending "_nodn" to any fp/afp form disables denormals.
func ParseFormat(spec string) (Format, error) {
	spec = strings.ToLower(strings.TrimSpace(spec))
	denormals := true
	if strings.HasSuffix(spec, "_nodn") {
		denormals = false
		spec = strings.TrimSuffix(spec, "_nodn")
	}

	switch spec {
	case "fp32":
		return numfmt.FP32(denormals), nil
	case "fp16", "half":
		return numfmt.FP16(denormals), nil
	case "bfloat16", "bf16":
		return numfmt.BFloat16(denormals), nil
	case "tf32", "tensorfloat32":
		return numfmt.TensorFloat32(denormals), nil
	case "dlfloat":
		return numfmt.DLFloat(denormals), nil
	case "fp8_e4m3":
		return numfmt.FP8E4M3(denormals), nil
	case "fp8_e5m2":
		return numfmt.FP8E5M2(denormals), nil
	case "fxp16":
		return numfmt.FxP16(), nil
	case "fxp32":
		return numfmt.FxP32(), nil
	case "bfp_e5m5":
		return numfmt.BFPe5m5(), nil
	case "afp_e5m2":
		if denormals {
			return numfmt.AFPe5m2(), nil
		}
		return numfmt.NewAFP(5, 2, false), nil
	case "posit8":
		return numfmt.Posit8(), nil
	case "posit16":
		return numfmt.Posit16(), nil
	case "lns8":
		return numfmt.LNS8(), nil
	case "lns16":
		return numfmt.LNS16(), nil
	case "nf4":
		return numfmt.NF4(), nil
	}

	switch {
	case strings.HasPrefix(spec, "fp_"), strings.HasPrefix(spec, "afp_"):
		family := "fp"
		body := strings.TrimPrefix(spec, "fp_")
		if strings.HasPrefix(spec, "afp_") {
			family = "afp"
			body = strings.TrimPrefix(spec, "afp_")
		}
		e, m, err := parseEM(body)
		if err != nil {
			return nil, fmt.Errorf("goldeneye: %q: %w", spec, err)
		}
		if family == "fp" {
			return safeFormat(func() Format { return numfmt.NewFP(e, m, denormals) })
		}
		return safeFormat(func() Format { return numfmt.NewAFP(e, m, denormals) })

	case strings.HasPrefix(spec, "fxp_1_"):
		parts := strings.Split(strings.TrimPrefix(spec, "fxp_1_"), "_")
		if len(parts) != 2 {
			return nil, fmt.Errorf("goldeneye: %q: want fxp_1_I_F", spec)
		}
		i, err1 := strconv.Atoi(parts[0])
		f, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("goldeneye: %q: non-numeric fixed-point geometry", spec)
		}
		return safeFormat(func() Format { return numfmt.NewFxP(i, f) })

	case strings.HasPrefix(spec, "int"):
		bits, err := strconv.Atoi(strings.TrimPrefix(spec, "int"))
		if err != nil {
			return nil, fmt.Errorf("goldeneye: %q: non-numeric integer width", spec)
		}
		return safeFormat(func() Format { return numfmt.NewINT(bits) })

	case strings.HasPrefix(spec, "bfp_"):
		body := strings.TrimPrefix(spec, "bfp_")
		block := 0
		if i := strings.LastIndex(body, "_b"); i >= 0 {
			b, err := strconv.Atoi(body[i+2:])
			if err != nil {
				return nil, fmt.Errorf("goldeneye: %q: bad block size", spec)
			}
			block = b
			body = body[:i]
		}
		e, m, err := parseEM(body)
		if err != nil {
			return nil, fmt.Errorf("goldeneye: %q: %w", spec, err)
		}
		return safeFormat(func() Format { return numfmt.NewBFP(e, m, block) })

	case strings.HasPrefix(spec, "posit"):
		body := strings.TrimPrefix(spec, "posit")
		n, es := 0, 0
		if i := strings.Index(body, "_es"); i >= 0 {
			var err1, err2 error
			n, err1 = strconv.Atoi(body[:i])
			es, err2 = strconv.Atoi(body[i+3:])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("goldeneye: %q: want positN_esE", spec)
			}
		} else {
			var err error
			if n, err = strconv.Atoi(body); err != nil {
				return nil, fmt.Errorf("goldeneye: %q: non-numeric posit width", spec)
			}
			if n >= 16 {
				es = 1 // standard default for wide posits
			}
		}
		return safeFormat(func() Format { return numfmt.NewPosit(n, es) })

	case strings.HasPrefix(spec, "lns_"):
		parts := strings.Split(strings.TrimPrefix(spec, "lns_"), "_")
		if len(parts) != 2 {
			return nil, fmt.Errorf("goldeneye: %q: want lns_I_F", spec)
		}
		i, err1 := strconv.Atoi(parts[0])
		f, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("goldeneye: %q: non-numeric LNS geometry", spec)
		}
		return safeFormat(func() Format { return numfmt.NewLNS(i, f) })

	case strings.HasPrefix(spec, "nf"):
		bits, err := strconv.Atoi(strings.TrimPrefix(spec, "nf"))
		if err != nil {
			return nil, fmt.Errorf("goldeneye: %q: non-numeric codebook width", spec)
		}
		return safeFormat(func() Format { return numfmt.NewLUT(bits) })
	}
	return nil, fmt.Errorf("goldeneye: unrecognized format spec %q", spec)
}

// safeFormat converts a constructor's geometry panic into an error:
// constructors panic on invalid geometry by design (in-repo call sites are
// programmer-controlled), but ParseFormat handles untrusted input.
func safeFormat(build func() Format) (f Format, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("goldeneye: %v", r)
		}
	}()
	return build(), nil
}

// parseEM parses "eXmY" into (X, Y).
func parseEM(s string) (e, m int, err error) {
	if !strings.HasPrefix(s, "e") {
		return 0, 0, fmt.Errorf("want eXmY geometry, got %q", s)
	}
	mi := strings.Index(s, "m")
	if mi < 0 {
		return 0, 0, fmt.Errorf("want eXmY geometry, got %q", s)
	}
	e, err1 := strconv.Atoi(s[1:mi])
	m, err2 := strconv.Atoi(s[mi+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("non-numeric eXmY geometry %q", s)
	}
	return e, m, nil
}
