package goldeneye

import "fmt"

// ConfigError reports an invalid simulator or campaign configuration — an
// empty evaluation pool, a batch size exceeding the pool, a missing format.
// Entry points (NewSimulator, NewEvalPool, RunCampaign and friends) return
// it instead of letting the bad value panic somewhere downstream, so callers
// — in particular the campaign service, which accepts configurations over
// the network — can distinguish "your request is malformed" from "the
// campaign failed".
type ConfigError struct {
	// Field names the configuration field at fault ("Pool", "BatchSize",
	// "Format", ...).
	Field string

	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("goldeneye: invalid %s: %s", e.Field, e.Reason)
}

// configErrf builds a ConfigError with a formatted reason.
func configErrf(field, format string, args ...interface{}) *ConfigError {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}
