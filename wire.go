package goldeneye

import (
	"bytes"
	"encoding/json"
	"fmt"

	"goldeneye/internal/detect"
	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/sampling"
)

// ConfigSchemaVersion is the newest schema version of the JSON encodings of
// CampaignConfig and CampaignReport. Decoders accept any version up to the
// current one and reject newer documents, so a daemon never silently
// misreads a job submitted by a newer client.
//
// Version history:
//
//	v1 — the original uniform-format encoding.
//	v2 — adds the per-layer "assignment" map and the "accum" injection
//	     site. Documents that use neither are stamped (and decoded as) v1,
//	     so every pre-existing configuration keeps its exact v1 bytes.
//	     v2 documents are decoded strictly: unknown fields are rejected.
//	v3 — adds the "shard_index"/"shard_count" pair that marks one
//	     deterministic stride shard of a distributed campaign. Unsharded
//	     configurations never stamp v3 (or emit the fields), so every
//	     pre-existing encoding keeps its exact bytes — a merged fleet
//	     report is indistinguishable from a single-node one on the wire.
//	     Decoded strictly, like v2.
//	v4 — adds the "sampling" plan (configs) and the stratified estimator
//	     "sampling" report (see internal/sampling). Exhaustive campaigns —
//	     including ones whose inert fraction-1.0 plan was normalized away —
//	     never stamp v4 or emit either field, so every pre-existing
//	     encoding keeps its exact bytes. Decoded strictly, like v2.
const ConfigSchemaVersion = 4

// wireVersion returns the schema version a configuration actually needs:
// v1 unless it uses a newer feature. Stamping the minimum keeps legacy
// encodings byte-identical and lets older consumers keep reading them.
func (c CampaignConfig) wireVersion() int {
	if c.Sampling.Active() {
		return 4
	}
	if c.ShardCount > 1 {
		return 3
	}
	if c.Assignment != nil || c.Site == inject.SiteAccum {
		return 2
	}
	return 1
}

// detectorJSON is the wire shape of one detector declaration. Only the
// declarative fields travel: a Spec's CachePath is a local filesystem
// detail and New is code — neither belongs on the network.
type detectorJSON struct {
	Kind   string  `json:"kind"`
	Margin float64 `json:"margin,omitempty"`
}

// campaignConfigJSON is the stable wire shape of a CampaignConfig. The
// runtime-only fields — Pool (tensor data the consumer attaches), Metrics,
// Resume, Progress — are deliberately excluded, so encode→decode→encode is
// byte-identical and a config can travel between processes.
type campaignConfigJSON struct {
	Version           int             `json:"version"`
	Format            string          `json:"format,omitempty"`
	Assignment        *assignmentJSON `json:"assignment,omitempty"`
	Site              string          `json:"site,omitempty"`
	Target            string          `json:"target,omitempty"`
	FaultKind         string          `json:"fault_kind,omitempty"`
	Layer             int             `json:"layer"`
	Injections        int             `json:"injections"`
	FlipsPerInjection int             `json:"flips_per_injection,omitempty"`
	Seed              uint64          `json:"seed"`
	ShardIndex        int             `json:"shard_index,omitempty"`
	ShardCount        int             `json:"shard_count,omitempty"`
	BatchSize         int             `json:"batch_size,omitempty"`
	UseRanger         bool            `json:"use_ranger,omitempty"`
	EmulateNetwork    bool            `json:"emulate_network,omitempty"`
	QuantizeWeights   bool            `json:"quantize_weights,omitempty"`
	KeepTrace         bool            `json:"keep_trace,omitempty"`
	MeasureDMR        bool            `json:"measure_dmr,omitempty"`
	MaxAborts         int             `json:"max_aborts,omitempty"`
	Detectors         []detectorJSON  `json:"detectors,omitempty"`
	Recovery          string          `json:"recovery,omitempty"`
	Sampling          *sampling.Plan  `json:"sampling,omitempty"`
}

// roleFormatsJSON is the wire shape of one RoleFormats triple: each role
// travels as its ParseFormat-compatible name, absent roles are omitted.
type roleFormatsJSON struct {
	Weights     string `json:"weights,omitempty"`
	Activations string `json:"activations,omitempty"`
	Accumulator string `json:"accumulator,omitempty"`
}

func roleFormatsToJSON(r RoleFormats) roleFormatsJSON {
	var w roleFormatsJSON
	if r.Weights != nil {
		w.Weights = r.Weights.Name()
	}
	if r.Activations != nil {
		w.Activations = r.Activations.Name()
	}
	if r.Accumulator != nil {
		w.Accumulator = r.Accumulator.Name()
	}
	return w
}

func (w roleFormatsJSON) roles() (RoleFormats, error) {
	var r RoleFormats
	var err error
	if w.Weights != "" {
		if r.Weights, err = ParseFormat(w.Weights); err != nil {
			return r, err
		}
	}
	if w.Activations != "" {
		if r.Activations, err = ParseFormat(w.Activations); err != nil {
			return r, err
		}
	}
	if w.Accumulator != "" {
		if r.Accumulator, err = ParseFormat(w.Accumulator); err != nil {
			return r, err
		}
	}
	return r, nil
}

// assignmentJSON is the wire shape of a FormatAssignment (schema v2).
// Integer-keyed maps marshal with deterministically ordered keys, so
// encode→decode→encode stays byte-identical.
type assignmentJSON struct {
	Default  roleFormatsJSON         `json:"default"`
	PerLayer map[int]roleFormatsJSON `json:"per_layer,omitempty"`
}

func assignmentToJSON(a *FormatAssignment) *assignmentJSON {
	if a == nil {
		return nil
	}
	w := &assignmentJSON{Default: roleFormatsToJSON(a.Default)}
	if len(a.PerLayer) > 0 {
		w.PerLayer = make(map[int]roleFormatsJSON, len(a.PerLayer))
		for k, rf := range a.PerLayer {
			w.PerLayer[k] = roleFormatsToJSON(rf)
		}
	}
	return w
}

func (w *assignmentJSON) assignment() (*FormatAssignment, error) {
	if w == nil {
		return nil, nil
	}
	a := &FormatAssignment{}
	var err error
	if a.Default, err = w.Default.roles(); err != nil {
		return nil, err
	}
	if len(w.PerLayer) > 0 {
		a.PerLayer = make(map[int]RoleFormats, len(w.PerLayer))
		for k, rw := range w.PerLayer {
			if a.PerLayer[k], err = rw.roles(); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// MarshalJSON encodes the campaign configuration in its stable, versioned
// wire shape. The format travels as its ParseFormat-compatible name, sites
// and targets as their flag spellings. Configurations carrying a custom
// detector factory (Spec.New) cannot be serialized.
func (c CampaignConfig) MarshalJSON() ([]byte, error) {
	w := campaignConfigJSON{
		Version:           c.wireVersion(),
		Assignment:        assignmentToJSON(c.Assignment),
		Layer:             c.Layer,
		Injections:        c.Injections,
		FlipsPerInjection: c.FlipsPerInjection,
		Seed:              c.Seed,
		BatchSize:         c.BatchSize,
		UseRanger:         c.UseRanger,
		EmulateNetwork:    c.EmulateNetwork,
		QuantizeWeights:   c.QuantizeWeights,
		KeepTrace:         c.KeepTrace,
		MeasureDMR:        c.MeasureDMR,
		MaxAborts:         c.MaxAborts,
	}
	if c.Format != nil {
		w.Format = c.Format.Name()
	}
	if c.Site != 0 {
		w.Site = c.Site.String()
	}
	if c.Target != 0 {
		w.Target = c.Target.String()
	}
	if c.FaultKind != inject.KindFlip {
		w.FaultKind = c.FaultKind.String()
	}
	if c.ShardCount > 1 {
		// Stamped only when actually sharded, so unsharded configurations —
		// including merged fleet reports, whose shard fields are cleared —
		// keep their pre-v3 bytes.
		w.ShardIndex = c.ShardIndex
		w.ShardCount = c.ShardCount
	}
	for _, d := range c.Detectors {
		if d.New != nil {
			return nil, fmt.Errorf("goldeneye: detector with a custom factory is not serializable")
		}
		w.Detectors = append(w.Detectors, detectorJSON{Kind: d.Kind, Margin: d.Margin})
	}
	if c.Recovery != detect.PolicyNone {
		w.Recovery = c.Recovery.String()
	}
	if c.Sampling.Active() {
		// Emitted only when the plan changes behaviour, so configurations
		// carrying an inert (or no) plan keep their pre-v4 bytes.
		w.Sampling = c.Sampling
	}
	return json.Marshal(w)
}

// wireProbe extracts just the version stamp of a wire document, so the
// decoder can pick the strictness matching the document's own schema.
type wireProbe struct {
	Version int `json:"version"`
}

// decodeVersioned unmarshals a versioned wire document into dst. Documents
// stamped v2 or newer decode strictly (unknown fields are an error, so a
// typo'd or half-migrated job config fails loudly); v1 documents keep the
// lenient decoding they have always had. Newer-than-supported versions are
// rejected with kind in the message.
func decodeVersioned(data []byte, dst interface{}, kind string) (int, error) {
	var probe wireProbe
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, err
	}
	if probe.Version > ConfigSchemaVersion {
		return 0, fmt.Errorf("goldeneye: campaign %s schema v%d is newer than supported v%d",
			kind, probe.Version, ConfigSchemaVersion)
	}
	if probe.Version >= 2 {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		return probe.Version, dec.Decode(dst)
	}
	return probe.Version, json.Unmarshal(data, dst)
}

// UnmarshalJSON decodes a configuration encoded by MarshalJSON, parsing the
// format specification and detector declarations back into live values. The
// runtime-only fields (Pool, Metrics, Resume, Progress) come back zero; the
// consumer attaches them. Documents stamped with a newer schema version are
// rejected; v2 documents are decoded strictly (see decodeVersioned).
func (c *CampaignConfig) UnmarshalJSON(data []byte) error {
	var w campaignConfigJSON
	if _, err := decodeVersioned(data, &w, "config"); err != nil {
		return err
	}
	out := CampaignConfig{
		Layer:             w.Layer,
		Injections:        w.Injections,
		FlipsPerInjection: w.FlipsPerInjection,
		Seed:              w.Seed,
		ShardIndex:        w.ShardIndex,
		ShardCount:        w.ShardCount,
		BatchSize:         w.BatchSize,
		UseRanger:         w.UseRanger,
		EmulateNetwork:    w.EmulateNetwork,
		QuantizeWeights:   w.QuantizeWeights,
		KeepTrace:         w.KeepTrace,
		MeasureDMR:        w.MeasureDMR,
		MaxAborts:         w.MaxAborts,
	}
	var err error
	if w.Format != "" {
		if out.Format, err = ParseFormat(w.Format); err != nil {
			return err
		}
	}
	if out.Assignment, err = w.Assignment.assignment(); err != nil {
		return err
	}
	if out.Site, err = parseSite(w.Site); err != nil {
		return err
	}
	if out.Target, err = parseTarget(w.Target); err != nil {
		return err
	}
	if out.FaultKind, err = parseFaultKind(w.FaultKind); err != nil {
		return err
	}
	for _, d := range w.Detectors {
		specs, serr := detect.ParseSpecs(d.Kind)
		if serr != nil {
			return serr
		}
		if len(specs) != 1 {
			return fmt.Errorf("goldeneye: empty detector kind in campaign config")
		}
		specs[0].Margin = d.Margin
		out.Detectors = append(out.Detectors, specs[0])
	}
	if w.Recovery != "" {
		if out.Recovery, err = detect.ParsePolicy(w.Recovery); err != nil {
			return err
		}
	}
	out.Sampling = w.Sampling
	*c = out
	return nil
}

// parseSite maps a wire site spelling back to its value; "" is the zero
// site (campaigns treat it as SiteValue's absence, matching the Go zero
// value of an unset config).
func parseSite(s string) (inject.Site, error) {
	switch s {
	case "":
		return 0, nil
	case "value":
		return inject.SiteValue, nil
	case "metadata":
		return inject.SiteMetadata, nil
	case "accum":
		return inject.SiteAccum, nil
	default:
		return 0, fmt.Errorf("goldeneye: unknown injection site %q", s)
	}
}

// parseTarget maps a wire target spelling back to its value.
func parseTarget(s string) (inject.Target, error) {
	switch s {
	case "":
		return 0, nil
	case "neuron":
		return inject.TargetNeuron, nil
	case "weight":
		return inject.TargetWeight, nil
	default:
		return 0, fmt.Errorf("goldeneye: unknown injection target %q", s)
	}
}

// parseFaultKind maps a wire error-model spelling back to its value; both
// "" and "flip" decode to the default transient flip.
func parseFaultKind(s string) (inject.FaultKind, error) {
	switch s {
	case "", "flip":
		return inject.KindFlip, nil
	case "stuck-at-0":
		return inject.KindStuckAt0, nil
	case "stuck-at-1":
		return inject.KindStuckAt1, nil
	case "burst":
		return inject.KindBurst, nil
	default:
		return 0, fmt.Errorf("goldeneye: unknown fault kind %q", s)
	}
}

// campaignReportJSON is the stable wire shape of a CampaignReport, with the
// embedded aggregate flattened into an explicit field so the encoding
// cannot drift when the struct grows.
type campaignReportJSON struct {
	Version     int                              `json:"version"`
	Result      metrics.CampaignResult           `json:"result"`
	Config      CampaignConfig                   `json:"config"`
	Trace       []InjectionOutcome               `json:"trace,omitempty"`
	Detected    int                              `json:"detected"`
	Recovered   int                              `json:"recovered,omitempty"`
	PerDetector map[string]metrics.DetectorStats `json:"per_detector,omitempty"`
	Aborted     int                              `json:"aborted,omitempty"`
	Interrupted bool                             `json:"interrupted,omitempty"`
	Sampling    *sampling.Report                 `json:"sampling,omitempty"`
}

// MarshalJSON encodes the report in its stable, versioned wire shape. The
// Welford accumulators serialize bit-exactly (see metrics.RunningStat), so
// a report survives the network byte-identically — the campaign service
// relies on this for its remote-equals-local guarantee.
func (r CampaignReport) MarshalJSON() ([]byte, error) {
	return json.Marshal(campaignReportJSON{
		Version:     r.Config.wireVersion(),
		Result:      r.CampaignResult,
		Config:      r.Config,
		Trace:       r.Trace,
		Detected:    r.Detected,
		Recovered:   r.Recovered,
		PerDetector: r.PerDetector,
		Aborted:     r.Aborted,
		Interrupted: r.Interrupted,
		Sampling:    r.Sampling,
	})
}

// UnmarshalJSON decodes a report encoded by MarshalJSON, rejecting
// documents stamped with a newer schema version; v2 documents are decoded
// strictly (see decodeVersioned).
func (r *CampaignReport) UnmarshalJSON(data []byte) error {
	var w campaignReportJSON
	if _, err := decodeVersioned(data, &w, "report"); err != nil {
		return err
	}
	*r = CampaignReport{
		CampaignResult: w.Result,
		Config:         w.Config,
		Trace:          w.Trace,
		Detected:       w.Detected,
		Recovered:      w.Recovered,
		PerDetector:    w.PerDetector,
		Aborted:        w.Aborted,
		Interrupted:    w.Interrupted,
		Sampling:       w.Sampling,
	}
	return nil
}
