package goldeneye_test

// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md §3), plus micro-benchmarks of the substrates the figures rest
// on. Benchmarks use reduced campaign sizes per iteration so `go test
// -bench=.` finishes in minutes; cmd/experiments runs the paper-scale
// versions.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"goldeneye"
	"goldeneye/internal/dataset"
	"goldeneye/internal/dse"
	"goldeneye/internal/exper"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
	"goldeneye/internal/zoo"
)

func benchSim(b *testing.B, name string) (*goldeneye.Simulator, *goldeneye.Tensor, []int) {
	b.Helper()
	model, ds, err := zoo.Pretrained(name)
	if err != nil {
		b.Fatal(err)
	}
	return goldeneye.Wrap(model, ds.ValX.Slice(0, 1)), ds.ValX, ds.ValY
}

// BenchmarkTable1RangeComputation regenerates Table I.
func BenchmarkTable1RangeComputation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := goldeneye.Table1Rows(); len(rows) != 12 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig3Inference times one batch-32 inference per format
// configuration — the quantity plotted in Fig 3. Compare ns/op across
// sub-benchmarks: native fastest; fp/fxp/int close; bfp/afp slower.
func BenchmarkFig3Inference(b *testing.B) {
	sim, x, _ := benchSim(b, "resnet_s")
	batch := x.Slice(0, 32)
	configs := []struct {
		name   string
		format numfmt.Format
	}{
		{name: "native_fp32"},
		{name: "fp16", format: numfmt.FP16(true)},
		{name: "fp8_e4m3", format: numfmt.FP8E4M3(true)},
		{name: "fxp_1_7_8", format: numfmt.FxP16()},
		{name: "int8", format: numfmt.INT8()},
		{name: "bfp_e5m5", format: numfmt.BFPe5m5()},
		{name: "afp_e5m2", format: numfmt.AFPe5m2()},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			emu := goldeneye.EmulationConfig{}
			if cfg.format != nil {
				emu = goldeneye.EmulationConfig{Format: cfg.format, Neurons: true}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.Logits(batch, emu)
			}
		})
	}
}

// BenchmarkFig3ErrorInjection times a full single-injection inference
// (quantize → flip → dequantize at one layer) against its EI-off baseline;
// Fig 3's claim is that the difference is negligible.
func BenchmarkFig3ErrorInjection(b *testing.B) {
	sim, x, y := benchSim(b, "resnet_s")
	for _, site := range []struct {
		name string
		site interface{}
	}{{name: "value"}, {name: "metadata"}} {
		site := site
		b.Run(site.name, func(b *testing.B) {
			s := goldeneye.SiteValue
			if site.name == "metadata" {
				s = goldeneye.SiteMetadata
			}
			layer := sim.InjectableLayers()[2]
			for i := 0; i < b.N; i++ {
				_, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
					Format:         numfmt.BFPe5m5(),
					Site:           s,
					Target:         goldeneye.TargetNeuron,
					Layer:          layer,
					Injections:     1,
					Seed:           uint64(i),
					Pool:           &goldeneye.EvalPool{X: x.Slice(0, 1), Y: y[:1]},
					EmulateNetwork: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4AccuracySweep measures one full Fig 4 accuracy sweep on the
// CNN (reduced sample count per iteration).
func BenchmarkFig4AccuracySweep(b *testing.B) {
	opts := exper.Options{ValSamples: 60, BatchSize: 20}
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig4(context.Background(), []string{"resnet_s"}, io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6DSE measures one DSE traversal per format family.
func BenchmarkFig6DSE(b *testing.B) {
	sim, x, y := benchSim(b, "vit_tiny")
	xs, ys := x.Slice(0, 60), y[:60]
	for _, family := range dse.Families() {
		family := family
		b.Run(string(family), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := sim.RunDSE(xs, ys, 20, goldeneye.DSEConfig{
					Family:    family,
					Threshold: 0.02,
				})
				if len(res.Nodes) == 0 {
					b.Fatal("no nodes visited")
				}
			}
		})
	}
}

// BenchmarkFig7Resiliency measures a 50-injection ΔLoss campaign per
// site — the unit of work Fig 7 repeats per layer at 1000 injections.
func BenchmarkFig7Resiliency(b *testing.B) {
	sim, x, y := benchSim(b, "resnet_s")
	xs, ys := x.Slice(0, 16), y[:16]
	for _, site := range []string{"value", "metadata"} {
		site := site
		b.Run(site, func(b *testing.B) {
			s := goldeneye.SiteValue
			if site == "metadata" {
				s = goldeneye.SiteMetadata
			}
			for i := 0; i < b.N; i++ {
				_, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
					Format:         numfmt.BFPe5m5(),
					Site:           s,
					Target:         goldeneye.TargetNeuron,
					Layer:          sim.InjectableLayers()[2],
					Injections:     50,
					Seed:           uint64(i),
					Pool:           &goldeneye.EvalPool{X: xs, Y: ys},
					UseRanger:      true,
					EmulateNetwork: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Tradeoff measures one accuracy+resilience scoring of a
// design point (the unit Fig 9 repeats per accepted DSE node).
func BenchmarkFig9Tradeoff(b *testing.B) {
	sim, x, y := benchSim(b, "resnet_s")
	format := numfmt.NewAFP(4, 4, true)
	xs, ys := x.Slice(0, 16), y[:16]
	for i := 0; i < b.N; i++ {
		sim.Evaluate(x.Slice(0, 60), y[:60], 20, goldeneye.EmulationConfig{
			Format: format, Weights: true, Neurons: true,
		})
		_, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
			Format:         format,
			Site:           goldeneye.SiteMetadata,
			Target:         goldeneye.TargetNeuron,
			Layer:          sim.InjectableLayers()[1],
			Injections:     20,
			Seed:           uint64(i),
			Pool:           &goldeneye.EvalPool{X: xs, Y: ys},
			UseRanger:      true,
			EmulateNetwork: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCampaign measures the sharded campaign runner at
// several worker counts (same fault sequence as serial; see
// RunCampaignParallel). Speedup requires real cores: on a single-CPU
// host the worker counts should tie, with a small sharding overhead —
// correctness parity is what TestParallelCampaignMatchesSerial pins.
func BenchmarkParallelCampaign(b *testing.B) {
	sim0, x, y := benchSim(b, "resnet_s")
	ds := dataset.New(dataset.Default())
	build := func() (*goldeneye.Simulator, error) {
		// Reuse the synthesized dataset; each worker only pays a gob load.
		model, err := zoo.PretrainedOn(zoo.DefaultDir(), "resnet_s", ds)
		if err != nil {
			return nil, err
		}
		return goldeneye.Wrap(model, ds.ValX.Slice(0, 1)), nil
	}
	layer := sim0.InjectableLayers()[2]
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := goldeneye.CampaignConfig{
					Format:         numfmt.BFPe5m5(),
					Site:           goldeneye.SiteValue,
					Target:         goldeneye.TargetNeuron,
					Layer:          layer,
					Injections:     512,
					Seed:           uint64(i),
					Pool:           &goldeneye.EvalPool{X: x.Slice(0, 16), Y: y[:16]},
					EmulateNetwork: true,
				}
				if _, err := goldeneye.RunCampaignParallel(context.Background(), cfg, workers, build); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignBatched measures campaign throughput as the pack batch
// grows: batch_1 is the serial baseline, larger batches amortize per-pass
// overhead and let the batched matmul use multiple cores. Reports are
// bit-identical at every batch size (TestBatchedCampaignBitIdenticalAllFamilies),
// so injections/sec is the only thing that moves. Compare sub-benchmarks
// with benchstat; `make bench` also writes BENCH_campaign.json.
func BenchmarkCampaignBatched(b *testing.B) {
	sim, x, y := benchSim(b, "resnet_s")
	pool, err := goldeneye.NewEvalPool(x.Slice(0, 64), y[:64], 0)
	if err != nil {
		b.Fatal(err)
	}
	layer := sim.InjectableLayers()[2]
	for _, batch := range []int{1, 8, 32} {
		batch := batch
		b.Run(fmt.Sprintf("batch_%d", batch), func(b *testing.B) {
			const injections = 128
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
					Format:         numfmt.BFPe5m5(),
					Site:           goldeneye.SiteValue,
					Target:         goldeneye.TargetNeuron,
					Layer:          layer,
					Injections:     injections,
					Seed:           uint64(i),
					Pool:           pool,
					BatchSize:      batch,
					UseRanger:      true,
					EmulateNetwork: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(injections*b.N)/b.Elapsed().Seconds(), "inj/s")
		})
	}
}

// BenchmarkAssignmentOverhead pins the api_redesign's perf contract: the
// legacy uniform configuration (Assignment nil — the zero value) must cost
// the same after the redesign as before it, and its explicit
// uniform-assignment lowering must cost the same as the legacy spelling.
// Compare the two sub-benchmarks with benchstat; they run the identical
// campaign through the legacy shim and through a default-only
// FormatAssignment.
func BenchmarkAssignmentOverhead(b *testing.B) {
	sim, x, y := benchSim(b, "resnet_s")
	pool, err := goldeneye.NewEvalPool(x.Slice(0, 64), y[:64], 0)
	if err != nil {
		b.Fatal(err)
	}
	layer := sim.InjectableLayers()[2]
	f := numfmt.FP8E4M3(true)
	base := goldeneye.CampaignConfig{
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      layer,
		Injections: 128,
		Pool:       pool,
		BatchSize:  8,
	}
	legacy := base
	legacy.Format = f
	legacy.EmulateNetwork = true
	lowered := base
	lowered.Format = f
	lowered.Assignment = &goldeneye.FormatAssignment{
		Default: goldeneye.RoleFormats{Activations: f},
	}
	for _, bc := range []struct {
		name string
		cfg  goldeneye.CampaignConfig
	}{{"legacy_nil_assignment", legacy}, {"lowered_assignment", lowered}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := bc.cfg
				cfg.Seed = uint64(i)
				if _, err := sim.RunCampaign(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(128*b.N)/b.Elapsed().Seconds(), "inj/s")
		})
	}
}

// BenchmarkMetricConvergence measures a KeepTrace campaign plus running-CI
// computation (the §IV-C convergence experiment).
func BenchmarkMetricConvergence(b *testing.B) {
	opts := exper.Options{ValSamples: 40, Injections: 100}
	for i := 0; i < b.N; i++ {
		if _, err := exper.Convergence(context.Background(), "mlp", numfmt.BFPe5m5(), -1, io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBFPBlockSize measures the block-size ablation (accuracy
// + metadata-fault campaign per block size), the design-choice study
// DESIGN.md §3 lists.
func BenchmarkAblationBFPBlockSize(b *testing.B) {
	opts := exper.Options{ValSamples: 40, Injections: 20, BatchSize: 20}
	for i := 0; i < b.N; i++ {
		if _, err := exper.AblationBFPBlock(context.Background(), "mlp", io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormatEmulate measures raw per-tensor quantization throughput of
// each family — the substrate cost behind Fig 3's dichotomy.
func BenchmarkFormatEmulate(b *testing.B) {
	formats := []numfmt.Format{
		numfmt.FP16(true), numfmt.FP8E4M3(true), numfmt.FxP16(),
		numfmt.INT8(), numfmt.BFPe5m5(), numfmt.AFPe5m2(),
	}
	x := tensor.Randn(rng.New(1), 1, 64, 1024)
	for _, f := range formats {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			b.SetBytes(int64(x.Len() * 4))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Emulate(x)
			}
		})
	}
}

// BenchmarkEmulateFusedVsGeneric pits each family's fused single-pass
// kernel against the generic quantize→dequantize reference on the same
// tensor — the per-element cost model docs/PERFORMANCE.md documents. The
// two paths are bit-identical (FuzzEmulateFusedVsGeneric); throughput and
// allocs/op are the only things that differ.
func BenchmarkEmulateFusedVsGeneric(b *testing.B) {
	formats := []numfmt.Format{
		numfmt.FP16(true), numfmt.FxP16(), numfmt.INT8(),
		numfmt.BFPe5m5(), numfmt.AFPe5m2(),
	}
	x := tensor.Randn(rng.New(1), 1, 64, 1024)
	for _, f := range formats {
		f := f
		b.Run(f.Name()+"/fused", func(b *testing.B) {
			b.SetBytes(int64(x.Len() * 4))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.Emulate(x)
			}
		})
		b.Run(f.Name()+"/generic", func(b *testing.B) {
			b.SetBytes(int64(x.Len() * 4))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				numfmt.EmulateGeneric(f, x)
			}
		})
	}
}

// BenchmarkMatMul measures the tensor substrate's matrix-multiply core.
func BenchmarkMatMul(b *testing.B) {
	r := rng.New(2)
	a := tensor.Randn(r, 1, 256, 256)
	c := tensor.Randn(r, 1, 256, 256)
	b.SetBytes(2 * 256 * 256 * 256) // FLOPs proxy
	for i := 0; i < b.N; i++ {
		a.MatMul(c)
	}
}

// BenchmarkInference measures plain forward passes of each zoo model.
func BenchmarkInference(b *testing.B) {
	for _, name := range []string{"resnet_s", "resnet_m", "vit_tiny", "vit_small"} {
		name := name
		b.Run(name, func(b *testing.B) {
			sim, x, _ := benchSim(b, name)
			batch := x.Slice(0, 32)
			b.ResetTimer() // exclude first-run zoo training
			for i := 0; i < b.N; i++ {
				sim.Logits(batch, goldeneye.EmulationConfig{})
			}
		})
	}
}
