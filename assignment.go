package goldeneye

import (
	"fmt"
	"sort"
	"strings"

	"goldeneye/internal/inject"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// RoleFormats bundles the number formats one layer runs its three tensor
// roles in — the mixed-precision triple modern accelerators expose (bf16
// weights × fp8 activations × fp32 accumulate). A nil role means native
// float32 for that role.
type RoleFormats struct {
	// Weights is the format the layer's parameters (weight and bias) are
	// quantized to before the run, the per-layer generalization of the
	// deprecated CampaignConfig.QuantizeWeights flag. Unlike that flag —
	// which converts every model parameter uniformly — a weights role
	// converts only the parameters of the layers it is assigned to.
	Weights numfmt.Format

	// Activations is the format the layer's outputs are emulated in during
	// every forward pass (the per-layer generalization of the deprecated
	// EmulateNetwork/Neurons fields).
	Activations numfmt.Format

	// Accumulator is the format the layer's GEMM partial sums are
	// accumulated in: every multiply-accumulate step (and the bias add)
	// rounds through it. Only metadata-free formats qualify — per-tensor
	// scales and shared exponents are derived from completed tensors and
	// cannot exist mid-reduction; FormatAssignment.Validate enforces this.
	// Accumulator-site faults (SiteAccum) flip bits in this format's
	// encoding of the partial sum.
	Accumulator numfmt.Format
}

// Empty reports whether no role carries a format.
func (r RoleFormats) Empty() bool {
	return r.Weights == nil && r.Activations == nil && r.Accumulator == nil
}

// Canonical renders the roles in ParseRoleFormats syntax, stable field
// order, for hashing and display.
func (r RoleFormats) Canonical() string {
	var parts []string
	if r.Weights != nil {
		parts = append(parts, "w:"+r.Weights.Name())
	}
	if r.Activations != nil {
		parts = append(parts, "a:"+r.Activations.Name())
	}
	if r.Accumulator != nil {
		parts = append(parts, "acc:"+r.Accumulator.Name())
	}
	return strings.Join(parts, ",")
}

// FormatAssignment maps layers to per-role number formats — the
// mixed-precision configuration surface that replaces the uniform
// Format + Weights/Neurons booleans of EmulationConfig and the
// Format + EmulateNetwork/QuantizeWeights trio of CampaignConfig (both kept
// as deprecated shims that lower to a uniform assignment).
//
// Scope rules: Default applies to every layer the configuration's default
// hook filter matches (CONV and LINEAR for campaigns, every kind with
// EmulationConfig.AllLayers); a PerLayer entry replaces Default wholesale
// at exactly its layer visit index, regardless of kind. An absent role
// means native float32 for that role at that layer.
type FormatAssignment struct {
	// Default is the role triple applied to layers without a PerLayer
	// entry.
	Default RoleFormats

	// PerLayer overrides Default at specific layer visit indices (see
	// Simulator.Layers). An entry overrides all three roles: roles it
	// leaves nil run native float32 even when Default assigns them.
	PerLayer map[int]RoleFormats
}

// At returns the role formats in effect at a layer visit index: its
// PerLayer entry when present, else Default. (Default's kind scoping — it
// skips non-CONV/LINEAR layers unless AllLayers is set — is applied by the
// consumer, which knows the layer's kind.)
func (a *FormatAssignment) At(layer int) RoleFormats {
	if a == nil {
		return RoleFormats{}
	}
	if rf, ok := a.PerLayer[layer]; ok {
		return rf
	}
	return a.Default
}

// rolesFor resolves the roles in effect at a layer visit, honoring the
// default filter's kind scope: PerLayer entries apply at exactly their
// index, Default only where defFilter matches.
func (a *FormatAssignment) rolesFor(info nn.LayerInfo, defFilter nn.Filter) RoleFormats {
	if a == nil {
		return RoleFormats{}
	}
	if rf, ok := a.PerLayer[info.Index]; ok {
		return rf
	}
	if !defFilter.Matches(info) {
		return RoleFormats{}
	}
	return a.Default
}

// Empty reports whether the assignment carries no formats at all.
func (a *FormatAssignment) Empty() bool {
	if a == nil {
		return true
	}
	if !a.Default.Empty() {
		return false
	}
	for _, rf := range a.PerLayer {
		if !rf.Empty() {
			return false
		}
	}
	return true
}

// hasActivations reports whether any layer is assigned an activation
// format.
func (a *FormatAssignment) hasActivations() bool {
	if a == nil {
		return false
	}
	if a.Default.Activations != nil {
		return true
	}
	for _, rf := range a.PerLayer {
		if rf.Activations != nil {
			return true
		}
	}
	return false
}

// hasWeights reports whether any layer is assigned a weights format.
func (a *FormatAssignment) hasWeights() bool {
	if a == nil {
		return false
	}
	if a.Default.Weights != nil {
		return true
	}
	for _, rf := range a.PerLayer {
		if rf.Weights != nil {
			return true
		}
	}
	return false
}

// hasAccumulator reports whether any layer is assigned an accumulator
// format.
func (a *FormatAssignment) hasAccumulator() bool {
	if a == nil {
		return false
	}
	if a.Default.Accumulator != nil {
		return true
	}
	for _, rf := range a.PerLayer {
		if rf.Accumulator != nil {
			return true
		}
	}
	return false
}

// sortedLayers returns the PerLayer keys in ascending order.
func (a *FormatAssignment) sortedLayers() []int {
	keys := make([]int, 0, len(a.PerLayer))
	for k := range a.PerLayer {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Canonical renders the assignment in ParseFormatMap syntax with a stable
// field and layer order — the deterministic fingerprint experiment cell
// hashes and cache keys use. A nil assignment renders empty.
func (a *FormatAssignment) Canonical() string {
	if a == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(a.Default.Canonical())
	for _, k := range a.sortedLayers() {
		if sb.Len() > 0 {
			sb.WriteString(";")
		}
		fmt.Fprintf(&sb, "%d=%s", k, a.PerLayer[k].Canonical())
	}
	return sb.String()
}

// String returns the canonical rendering.
func (a *FormatAssignment) String() string { return a.Canonical() }

// Validate checks the assignment's structural rules: it must assign at
// least one format, layer indices must be non-negative, and every
// accumulator role must be a metadata-free format (a scale or shared
// exponent register cannot be maintained mid-reduction). Violations come
// back as *ConfigError.
func (a *FormatAssignment) Validate() error {
	if a.Empty() {
		return &ConfigError{Field: "Assignment", Reason: "format assignment carries no formats"}
	}
	check := func(where string, rf RoleFormats) error {
		if rf.Accumulator != nil && inject.MetaBitWidth(rf.Accumulator) != 0 {
			return configErrf("Assignment",
				"%s accumulator format %s carries hardware metadata; accumulator registers need a metadata-free format",
				where, rf.Accumulator.Name())
		}
		return nil
	}
	if err := check("default", a.Default); err != nil {
		return err
	}
	for _, k := range a.sortedLayers() {
		if k < 0 {
			return configErrf("Assignment", "per-layer index %d is negative", k)
		}
		if err := check(fmt.Sprintf("layer %d", k), a.PerLayer[k]); err != nil {
			return err
		}
	}
	return nil
}

// ParseRoleFormats parses one role triple of the CLIs' -format-map syntax:
// comma-separated role:format pairs, e.g. "w:bf16,a:fp8_e4m3,acc:fp32".
// Role keys are w/weights, a/act/activations, and acc/accum/accumulator;
// formats are anything ParseFormat accepts. Roles left out stay native
// float32.
func ParseRoleFormats(spec string) (RoleFormats, error) {
	var rf RoleFormats
	if strings.TrimSpace(spec) == "" {
		return rf, fmt.Errorf("goldeneye: empty role list in format map")
	}
	for _, pair := range strings.Split(spec, ",") {
		key, name, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return rf, fmt.Errorf("goldeneye: format-map entry %q is not role:format", pair)
		}
		f, err := ParseFormat(strings.TrimSpace(name))
		if err != nil {
			return rf, err
		}
		switch strings.TrimSpace(key) {
		case "w", "weights":
			rf.Weights = f
		case "a", "act", "activations":
			rf.Activations = f
		case "acc", "accum", "accumulator":
			rf.Accumulator = f
		default:
			return rf, fmt.Errorf("goldeneye: unknown role %q in format map (want w, a, or acc)", key)
		}
	}
	return rf, nil
}

// ParseFormatMap parses the CLIs' -format-map specification into a
// FormatAssignment: semicolon-separated segments, where a bare role list
// sets the default and "layer=roles" segments override single layers.
//
//	w:bf16,a:fp8_e4m3,acc:fp32          uniform mixed-precision default
//	w:fp16;4=w:fp8_e4m3,acc:fp32        fp16 weights, layer 4 overridden
//	3=a:fp16                            layer 3 only, no default
//
// The returned assignment is validated (see FormatAssignment.Validate).
func ParseFormatMap(spec string) (*FormatAssignment, error) {
	asg := &FormatAssignment{}
	for i, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("goldeneye: empty segment in format map %q", spec)
		}
		layerPart, rolePart, hasLayer := strings.Cut(seg, "=")
		if !hasLayer {
			if i != 0 {
				return nil, fmt.Errorf("goldeneye: default roles %q must be the first format-map segment", seg)
			}
			rf, err := ParseRoleFormats(seg)
			if err != nil {
				return nil, err
			}
			asg.Default = rf
			continue
		}
		var layer int
		if _, err := fmt.Sscanf(strings.TrimSpace(layerPart), "%d", &layer); err != nil {
			return nil, fmt.Errorf("goldeneye: format-map segment %q: layer index %q is not a number", seg, layerPart)
		}
		if layer < 0 {
			return nil, fmt.Errorf("goldeneye: format-map layer index %d is negative", layer)
		}
		rf, err := ParseRoleFormats(rolePart)
		if err != nil {
			return nil, err
		}
		if asg.PerLayer == nil {
			asg.PerLayer = make(map[int]RoleFormats)
		}
		if _, dup := asg.PerLayer[layer]; dup {
			return nil, fmt.Errorf("goldeneye: format map assigns layer %d twice", layer)
		}
		asg.PerLayer[layer] = rf
	}
	if err := asg.Validate(); err != nil {
		return nil, err
	}
	return asg, nil
}

// emulateHookFn returns the whole-tensor fallback transform of an
// activation-emulation hook for the given metadata axis — the function the
// fused epilogue is pinned bit-identical to.
func emulateHookFn(f numfmt.Format, axis numfmt.MetaAxis) func(*tensor.Tensor) *tensor.Tensor {
	if axis == numfmt.AxisBatch {
		return func(t *tensor.Tensor) *tensor.Tensor { return numfmt.EmulateBatched(f, t) }
	}
	return f.Emulate
}

// addActivationHooks registers asg's activation emulation on h. A uniform
// (default-only) assignment registers the exact hook shape the legacy
// uniform path always has — one constant-format PostForwardEpilogue on
// defFilter — so lowered legacy configs stay bit-identical, hook for hook.
// Assignments with per-layer entries register one dynamic hook whose format
// (and fused-kernel epilogue) resolves per visit.
func addActivationHooks(h *nn.HookSet, asg *FormatAssignment, axis numfmt.MetaAxis, defFilter nn.Filter) {
	if !asg.hasActivations() {
		return
	}
	if len(asg.PerLayer) == 0 {
		f := asg.Default.Activations
		fn := emulateHookFn(f, axis)
		h.PostForwardEpilogue(defFilter, func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
			return fn(t)
		}, numfmt.EmulateEpilogue(f, axis))
		return
	}
	// Epilogues are stateless per format; cache them so repeated visits of
	// the same format reuse one closure set.
	eps := make(map[numfmt.Format]tensor.Epilogue)
	resolve := func(info nn.LayerInfo) numfmt.Format {
		return asg.rolesFor(info, defFilter).Activations
	}
	h.PostForwardEpilogueBy(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		f := resolve(info)
		if f == nil {
			return t
		}
		return emulateHookFn(f, axis)(t)
	}, func(info nn.LayerInfo) tensor.Epilogue {
		f := resolve(info)
		if f == nil {
			return tensor.Epilogue{}
		}
		ep, ok := eps[f]
		if !ok {
			ep = numfmt.EmulateEpilogue(f, axis)
			eps[f] = ep
		}
		return ep
	})
}

// addAccumHooks registers asg's accumulator-format emulation on h: every
// GEMM-backed layer with an assigned accumulator format rounds each partial
// sum through it (see numfmt.AccumRound). Layers without a GEMM ignore the
// spec. The rounding closures are cached per format and shared across
// visits; they are stateless, so reuse is safe.
func addAccumHooks(h *nn.HookSet, asg *FormatAssignment, defFilter nn.Filter) {
	if !asg.hasAccumulator() {
		return
	}
	quants := make(map[numfmt.Format]func(float32) float32)
	h.Accum(nn.AllLayers(), func(info nn.LayerInfo) nn.AccumSpec {
		f := asg.rolesFor(info, defFilter).Accumulator
		if f == nil {
			return nn.AccumSpec{}
		}
		q, ok := quants[f]
		if !ok {
			q = numfmt.AccumRound(f)
			quants[f] = q
		}
		return nn.AccumSpec{Quant: q}
	})
}

// applyWeightAssignment quantizes each traced layer's parameters to its
// assigned weights format, module-locally (the layer's own weight and
// bias). Callers hold a WeightBackup and restore it afterwards. This is the
// per-layer counterpart of the deprecated global QuantizeWeights flag,
// which converts every non-frozen model parameter uniformly — the two
// coincide only for models whose parameters all belong to default-scoped
// layers.
func (s *Simulator) applyWeightAssignment(asg *FormatAssignment, defFilter nn.Filter) {
	if !asg.hasWeights() {
		return
	}
	for _, l := range s.layers {
		f := asg.rolesFor(l, defFilter).Weights
		if f == nil {
			continue
		}
		if mod := s.modules[l.Index]; mod != nil {
			inject.QuantizeWeights(mod, f)
		}
	}
}
