package goldeneye

import (
	"context"
	"sync"
	"testing"

	"goldeneye/internal/inject"
	"goldeneye/internal/zoo"
)

// TestCampaignProgress pins the Progress hook contract on both entry
// points: cumulative executed-injection counts, monotonically
// non-decreasing, ending exactly at the planned total.
func TestCampaignProgress(t *testing.T) {
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatalf("zoo: %v", err)
	}
	sim := Wrap(model, ds.ValX)
	f, err := ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	const total = 6
	base := CampaignConfig{
		Format:     f,
		Injections: total,
		Seed:       1,
		Layer:      1,
		Site:       inject.SiteValue,
		Target:     inject.TargetNeuron,
		Pool:       &EvalPool{X: ds.ValX.Slice(0, 8), Y: ds.ValY[:8], Batch: 4},
	}

	t.Run("serial", func(t *testing.T) {
		var got []int
		cfg := base
		cfg.Progress = func(done, planned int) {
			if planned != total {
				t.Errorf("planned: got %d, want %d", planned, total)
			}
			got = append(got, done)
		}
		if _, err := sim.RunCampaign(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[len(got)-1] != total {
			t.Fatalf("progress must end at %d, got %v", total, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("progress not monotonic: %v", got)
			}
		}
	})

	t.Run("parallel", func(t *testing.T) {
		var mu sync.Mutex
		var got []int
		cfg := base
		cfg.Progress = func(done, planned int) {
			mu.Lock()
			got = append(got, done)
			mu.Unlock()
		}
		_, err := RunCampaignParallel(context.Background(), cfg, 3, func() (*Simulator, error) {
			m, d, err := zoo.Pretrained("mlp")
			if err != nil {
				return nil, err
			}
			return Wrap(m, d.ValX), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		max := 0
		for _, v := range got {
			if v > max {
				max = v
			}
		}
		if max != total {
			t.Fatalf("parallel progress must reach %d, got %v", total, got)
		}
	})

	t.Run("resume-prefix", func(t *testing.T) {
		// A resumed campaign reports the replayed prefix immediately, so
		// progress bars start at the resume point, not zero.
		prefix := base
		prefix.Injections = 3
		partial, err := sim.RunCampaign(context.Background(), prefix)
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		resumed := base
		resumed.Resume = &CampaignResume{
			Completed: 3,
			Result:    partial.CampaignResult,
		}
		resumed.Progress = func(done, planned int) { got = append(got, done) }
		if _, err := sim.RunCampaign(context.Background(), resumed); err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[0] != 3 {
			t.Fatalf("resumed progress must start at the replayed prefix (3), got %v", got)
		}
		if got[len(got)-1] != total {
			t.Fatalf("resumed progress must end at %d, got %v", total, got)
		}
	})
}
