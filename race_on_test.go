//go:build race

package goldeneye

// raceEnabled reports whether the binary was built with the race
// detector, which intentionally randomizes sync.Pool caching.
const raceEnabled = true
