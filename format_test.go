package goldeneye

import "testing"

func TestParseFormat(t *testing.T) {
	tests := []struct {
		give     string
		wantName string
		wantBits int
	}{
		{give: "fp32", wantName: "fp32", wantBits: 32},
		{give: "fp16", wantName: "fp16", wantBits: 16},
		{give: "FP16", wantName: "fp16", wantBits: 16},
		{give: "bfloat16", wantName: "bfloat16", wantBits: 16},
		{give: "bf16", wantName: "bfloat16", wantBits: 16},
		{give: "tf32", wantName: "tf32", wantBits: 19},
		{give: "dlfloat", wantName: "dlfloat", wantBits: 16},
		{give: "fp8_e4m3", wantName: "fp8_e4m3", wantBits: 8},
		{give: "fp8_e4m3_nodn", wantName: "fp8_e4m3_nodn", wantBits: 8},
		{give: "fp_e5m6", wantName: "fp_e5m6", wantBits: 12},
		{give: "fp_e2m5_nodn", wantName: "fp_e2m5_nodn", wantBits: 8},
		{give: "afp_e5m2", wantName: "afp_e5m2", wantBits: 8},
		{give: "afp_e4m4", wantName: "afp_e4m4", wantBits: 9},
		{give: "fxp16", wantName: "fxp_1_7_8", wantBits: 16},
		{give: "fxp32", wantName: "fxp_1_15_16", wantBits: 32},
		{give: "fxp_1_3_4", wantName: "fxp_1_3_4", wantBits: 8},
		{give: "int8", wantName: "int8", wantBits: 8},
		{give: "int16", wantName: "int16", wantBits: 16},
		{give: "int5", wantName: "int5", wantBits: 5},
		{give: "bfp_e5m5", wantName: "bfp_e5m5_b0", wantBits: 6},
		{give: "bfp_e8m7_b16", wantName: "bfp_e8m7_b16", wantBits: 8},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			f, err := ParseFormat(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if f.Name() != tt.wantName {
				t.Fatalf("name = %q, want %q", f.Name(), tt.wantName)
			}
			if f.BitWidth() != tt.wantBits {
				t.Fatalf("bits = %d, want %d", f.BitWidth(), tt.wantBits)
			}
		})
	}
}

func TestParseFormatErrors(t *testing.T) {
	bad := []string{
		"", "banana", "fp_", "fp_e4", "fp_exmy", "fxp_1_3", "fxp_1_a_b",
		"intx", "bfp_e5m5_bx", "afp_m3e4",
	}
	for _, spec := range bad {
		if _, err := ParseFormat(spec); err == nil {
			t.Errorf("ParseFormat(%q) succeeded, want error", spec)
		}
	}
}

func TestParseFormatRoundTripsOwnNames(t *testing.T) {
	// Every generic format renders a Name that ParseFormat accepts again.
	specs := []string{"fp_e4m3", "afp_e5m2", "fxp_1_7_8", "int8", "bfp_e5m5_b0"}
	for _, spec := range specs {
		f, err := ParseFormat(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		g, err := ParseFormat(f.Name())
		if err != nil {
			t.Fatalf("re-parse %q: %v", f.Name(), err)
		}
		if g.Name() != f.Name() {
			t.Fatalf("round trip: %q → %q", f.Name(), g.Name())
		}
	}
}

func TestParseFormatEmerging(t *testing.T) {
	tests := []struct {
		give     string
		wantName string
		wantBits int
	}{
		{give: "posit8", wantName: "posit8_es0", wantBits: 8},
		{give: "posit16", wantName: "posit16_es1", wantBits: 16},
		{give: "posit10_es2", wantName: "posit10_es2", wantBits: 10},
		{give: "lns8", wantName: "lns_5_2", wantBits: 8},
		{give: "lns16", wantName: "lns_7_8", wantBits: 16},
		{give: "lns_4_3", wantName: "lns_4_3", wantBits: 8},
		{give: "nf4", wantName: "nf4", wantBits: 4},
		{give: "nf3", wantName: "nf3", wantBits: 3},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			f, err := ParseFormat(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if f.Name() != tt.wantName || f.BitWidth() != tt.wantBits {
				t.Fatalf("got %s/%d, want %s/%d", f.Name(), f.BitWidth(), tt.wantName, tt.wantBits)
			}
		})
	}
	for _, bad := range []string{"positx", "posit8_esx", "lns_1", "nfx"} {
		if _, err := ParseFormat(bad); err == nil {
			t.Errorf("ParseFormat(%q) succeeded, want error", bad)
		}
	}
}
