package goldeneye_test

import (
	"math"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// FuzzParseFormat ensures arbitrary specifications never panic and that
// accepted specifications produce usable formats.
func FuzzParseFormat(f *testing.F) {
	for _, seed := range []string{
		"fp16", "fp_e4m3", "fxp_1_7_8", "int8", "bfp_e5m5_b16",
		"afp_e4m4", "posit8", "posit12_es2", "lns_5_2", "nf4",
		"", "fp_", "int999", "posit99", "nf", "bfp_e99m99",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		format, err := goldeneye.ParseFormat(spec)
		if err != nil {
			return // rejected specs are fine; panics are not
		}
		if format.BitWidth() <= 0 || format.BitWidth() > 64 {
			t.Fatalf("%q: implausible bit width %d", spec, format.BitWidth())
		}
		r := format.Range()
		if r.AbsMax <= 0 || r.MinPos <= 0 || r.AbsMax < r.MinPos {
			t.Fatalf("%q: implausible range %+v", spec, r)
		}
	})
}

// FuzzFP16BitsRoundTrip checks that every 16-bit pattern decodes and
// re-encodes consistently: FromBits then ToBits then FromBits is stable.
func FuzzFP16BitsRoundTrip(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(0x3C00)) // 1.0
	f.Add(uint16(0x7BFF)) // max finite
	f.Add(uint16(0x7C00)) // +Inf
	f.Add(uint16(0x7C01)) // NaN
	f.Add(uint16(0x8001)) // -min denormal
	format := numfmt.FP16(true)
	meta := numfmt.Metadata{Kind: numfmt.MetaNone}
	f.Fuzz(func(t *testing.T, pattern uint16) {
		v := format.FromBits(numfmt.Bits(pattern), meta)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return // exceptional values round-trip through saturation
		}
		again := format.FromBits(format.ToBits(v, meta), meta)
		if again != v {
			t.Fatalf("pattern %04x: %v re-encoded to %v", pattern, v, again)
		}
	})
}

// FuzzPosit8Decode exercises every 8-bit posit pattern: decode must be
// finite (except NaR), and encode(decode(p)) must reproduce the value.
func FuzzPosit8Decode(f *testing.F) {
	for _, seed := range []uint8{0, 0x40, 0x80, 0xC0, 0x01, 0x7F, 0xFF} {
		f.Add(seed)
	}
	p := numfmt.Posit8()
	meta := numfmt.Metadata{Kind: numfmt.MetaNone}
	f.Fuzz(func(t *testing.T, pattern uint8) {
		v := p.FromBits(numfmt.Bits(pattern), meta)
		if math.IsNaN(v) {
			if pattern != 0x80 {
				t.Fatalf("pattern %02x decoded NaN but is not NaR", pattern)
			}
			return
		}
		if math.IsInf(v, 0) {
			t.Fatalf("posit pattern %02x decoded Inf", pattern)
		}
		again := p.FromBits(p.ToBits(v, meta), meta)
		if again != v {
			t.Fatalf("pattern %02x: %v re-encoded to %v", pattern, v, again)
		}
	})
}

// FuzzEmulateFusedVsGeneric is the differential proof behind the fused
// kernels: for arbitrary float inputs, every family's single-pass fused
// Emulate must be bit-identical to the generic quantize→dequantize
// reference (numfmt.EmulateGeneric). The one sanctioned difference is NaN
// payload bits — the fused FP path propagates the input payload where the
// generic path canonicalizes it — so two NaNs always match.
func FuzzEmulateFusedVsGeneric(f *testing.F) {
	f.Add(uint32(0), uint32(math.Float32bits(1.0)), uint32(math.Float32bits(-3.5)), uint32(0x7FC00001))
	f.Add(uint32(math.Float32bits(1e30)), uint32(math.Float32bits(-1e-30)),
		uint32(math.Float32bits(float32(math.Inf(1)))), uint32(0x80000000))
	f.Add(uint32(1), uint32(0x007FFFFF), uint32(0x00800000), uint32(0xFF7FFFFF))
	formats := []numfmt.Format{
		numfmt.FP16(true), numfmt.FP8E4M3(true), numfmt.FxP16(),
		numfmt.INT8(), numfmt.BFPe5m5(), numfmt.AFPe5m2(),
	}
	f.Fuzz(func(t *testing.T, a, b, c, d uint32) {
		x := tensor.New(1, 4)
		for i, bits := range []uint32{a, b, c, d} {
			x.Data()[i] = math.Float32frombits(bits)
		}
		for _, format := range formats {
			fused := format.Emulate(x)
			generic := numfmt.EmulateGeneric(format, x)
			for i := range fused.Data() {
				fv, gv := fused.Data()[i], generic.Data()[i]
				if math.IsNaN(float64(fv)) && math.IsNaN(float64(gv)) {
					continue
				}
				if math.Float32bits(fv) != math.Float32bits(gv) {
					t.Fatalf("%s: element %d (input %08x): fused %v (%08x) vs generic %v (%08x)",
						format.Name(), i, math.Float32bits(x.Data()[i]),
						fv, math.Float32bits(fv), gv, math.Float32bits(gv))
				}
			}
		}
	})
}

// FuzzQuantizeScalar feeds arbitrary float bit patterns through every
// format family's scalar path, checking nothing panics and outputs decode
// deterministically.
func FuzzQuantizeScalar(f *testing.F) {
	f.Add(uint64(0))
	f.Add(math.Float64bits(1.0))
	f.Add(math.Float64bits(-1e300))
	f.Add(math.Float64bits(1e-300))
	f.Add(uint64(0x7FF0000000000001)) // NaN
	formats := []numfmt.Format{
		numfmt.FP8E4M3(true), numfmt.FxP16(), numfmt.BFPe5m5(),
		numfmt.AFPe5m2(), numfmt.Posit8(), numfmt.LNS8(),
	}
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Float64frombits(bits)
		for _, format := range formats {
			meta := numfmt.Metadata{Kind: numfmt.MetaNone}
			b1 := format.ToBits(v, meta)
			b2 := format.ToBits(v, meta)
			if b1 != b2 {
				t.Fatalf("%s: ToBits(%v) not deterministic", format.Name(), v)
			}
		}
	})
}
