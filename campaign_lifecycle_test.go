package goldeneye_test

// Lifecycle hardening tests: panic isolation (degraded mode), cooperative
// cancellation with partial reports, and checkpoint-style resume
// bit-identity. The fault-triggering formats below exploit that with
// EmulateNetwork=false, UseRanger=false, and no DMR, Format.Quantize runs
// exactly once per executed injection (inside inject.NeuronHookMulti), so
// panics and cancellations land at deterministic injection indices.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/telemetry"
)

// panicEveryN panics on every nth Quantize call — the metadata-corruption
// failure mode (degenerate scales) that motivates panic isolation. The
// counter is shared across copies, so parallel workers observe one global
// call sequence.
type panicEveryN struct {
	numfmt.Format
	n     int64
	calls *atomic.Int64
}

func (f *panicEveryN) Quantize(t *goldeneye.Tensor) *goldeneye.Encoding {
	if f.calls.Add(1)%f.n == 0 {
		panic("injected quantizer corruption")
	}
	return f.Format.Quantize(t)
}

// cancelAfterN cancels a context from inside the nth injected inference,
// simulating a SIGINT landing mid-campaign at a deterministic point.
type cancelAfterN struct {
	numfmt.Format
	n      int64
	calls  *atomic.Int64
	cancel context.CancelFunc
}

func (f *cancelAfterN) Quantize(t *goldeneye.Tensor) *goldeneye.Encoding {
	if f.calls.Add(1) == f.n {
		f.cancel()
	}
	return f.Format.Quantize(t)
}

// lifecycleConfig is the bare campaign (no emulation, no ranger, no DMR)
// whose only Quantize calls come from the injection hook.
func lifecycleConfig(sim *goldeneye.Simulator, x *goldeneye.Tensor, y []int, injections int) goldeneye.CampaignConfig {
	return goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[1],
		Injections: injections,
		Seed:       23,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	}
}

func TestCampaignPanicIsolationSerial(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	reg := telemetry.NewRegistry()
	cfg := lifecycleConfig(sim, x, y, 40)
	cfg.Format = &panicEveryN{Format: numfmt.FP16(true), n: 5, calls: new(atomic.Int64)}
	cfg.KeepTrace = true
	cfg.Metrics = reg

	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("degraded mode must not fail: %v", err)
	}
	if rep.Aborted != 8 || rep.Injections != 32 {
		t.Fatalf("want 8 aborted / 32 recorded, got %d / %d", rep.Aborted, rep.Injections)
	}
	if got := reg.Counter(goldeneye.MetricCampaignAborted).Value(); got != 8 {
		t.Fatalf("aborted telemetry counter = %d, want 8", got)
	}
	if len(rep.Trace) != 40 {
		t.Fatalf("trace should cover every injection, got %d", len(rep.Trace))
	}
	var aborted int
	for _, out := range rep.Trace {
		if out.Aborted {
			aborted++
			if out.Mismatch || out.DeltaLoss != 0 {
				t.Fatalf("aborted outcome carries metrics: %+v", out)
			}
		}
	}
	if aborted != 8 {
		t.Fatalf("trace records %d aborted outcomes, want 8", aborted)
	}
}

func TestCampaignPanicIsolationParallel(t *testing.T) {
	_, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	sim, err := mlpBuilder(t)()
	if err != nil {
		t.Fatal(err)
	}
	cfg := lifecycleConfig(sim, x, y, 40)
	// One shared call counter across all workers: exactly 8 of the 40
	// injections panic no matter how shards interleave.
	cfg.Format = &panicEveryN{Format: numfmt.FP16(true), n: 5, calls: new(atomic.Int64)}

	rep, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 4, mlpBuilder(t))
	if err != nil {
		t.Fatalf("a panicking injection must not kill sibling workers: %v", err)
	}
	if rep.Aborted != 8 || rep.Injections != 32 {
		t.Fatalf("want 8 aborted / 32 recorded, got %d / %d", rep.Aborted, rep.Injections)
	}
}

func TestCampaignMaxAbortsFailsCampaign(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := lifecycleConfig(sim, x, y, 40)
	cfg.Format = &panicEveryN{Format: numfmt.FP16(true), n: 2, calls: new(atomic.Int64)}
	cfg.MaxAborts = 3

	_, err := sim.RunCampaign(context.Background(), cfg)
	if err == nil {
		t.Fatal("exceeding MaxAborts must fail the campaign")
	}
	var ie *goldeneye.InjectionError
	if !errors.As(err, &ie) {
		t.Fatalf("error should wrap *InjectionError, got %v", err)
	}
	if ie.Shard != 0 || ie.Injection < 0 || ie.Injection >= 40 {
		t.Fatalf("InjectionError coordinates implausible: %+v", ie)
	}
	if !strings.Contains(err.Error(), "MaxAborts") {
		t.Fatalf("error should name the threshold: %v", err)
	}

	// Parallel path enforces the same threshold across workers combined.
	cfg.Format = &panicEveryN{Format: numfmt.FP16(true), n: 2, calls: new(atomic.Int64)}
	_, err = goldeneye.RunCampaignParallel(context.Background(), cfg, 4, mlpBuilder(t))
	if err == nil || !errors.As(err, &ie) {
		t.Fatalf("parallel campaign should fail with *InjectionError, got %v", err)
	}
}

func TestCampaignCancelReturnsPartialPrefix(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := lifecycleConfig(sim, x, y, 40)
	cfg.Format = &cancelAfterN{Format: numfmt.FP16(true), n: 7, calls: new(atomic.Int64), cancel: cancel}

	rep, err := sim.RunCampaign(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancellation must still return the partial report")
	}
	if !rep.Interrupted {
		t.Fatal("partial report should be marked Interrupted")
	}
	// The cancel fires inside injection 7; that injection completes and is
	// recorded, then the loop observes the cancelled context.
	if rep.Injections != 7 {
		t.Fatalf("partial report covers %d injections, want exactly 7", rep.Injections)
	}

	// The prefix must carry the aggregates an uninterrupted run would have
	// at the same point: compare against a 7-injection campaign.
	short := lifecycleConfig(sim, x, y, 7)
	ref, err := sim.RunCampaign(context.Background(), short)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != ref.Mismatches || rep.DeltaLoss.Mean() != ref.DeltaLoss.Mean() {
		t.Fatalf("partial prefix diverges from uninterrupted prefix: %+v vs %+v",
			rep.CampaignResult, ref.CampaignResult)
	}
}

func TestCampaignCancelParallelWorkers(t *testing.T) {
	_, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	sim, err := mlpBuilder(t)()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := lifecycleConfig(sim, x, y, 40)
	cfg.Format = &cancelAfterN{Format: numfmt.FP16(true), n: 10, calls: new(atomic.Int64), cancel: cancel}

	rep, err := goldeneye.RunCampaignParallel(ctx, cfg, 4, mlpBuilder(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || !rep.Interrupted {
		t.Fatalf("cancelled parallel campaign should return an Interrupted partial report, got %+v", rep)
	}
	// The 10th inference triggers cancel; it and at most the three sibling
	// in-flight injections complete before every worker stops.
	if rep.Injections < 10 || rep.Injections > 13 {
		t.Fatalf("partial parallel report covers %d injections, want 10..13", rep.Injections)
	}
}

func TestCampaignCancelBeforeStart(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.RunCampaign(ctx, lifecycleConfig(sim, x, y, 40))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context should abort setup: %v", err)
	}
}

func TestCampaignResumeBitIdentical(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	full := lifecycleConfig(sim, x, y, 40)
	full.MeasureDMR = true
	want, err := sim.RunCampaign(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}

	// Because the fault sequence is deterministic in the seed, the first 12
	// injections of the 40-campaign ARE the 12-injection campaign.
	prefix := full
	prefix.Injections = 12
	part, err := sim.RunCampaign(context.Background(), prefix)
	if err != nil {
		t.Fatal(err)
	}

	resumed := full
	resumed.Resume = &goldeneye.CampaignResume{
		Completed: part.Injections + part.Aborted,
		Result:    part.CampaignResult,
		Detected:  part.Detected,
		Aborted:   part.Aborted,
	}
	got, err := sim.RunCampaign(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical, not approximately equal: serial resume continues the
	// Welford accumulators in place.
	if got.Injections != want.Injections || got.Mismatches != want.Mismatches ||
		got.NonFinite != want.NonFinite || got.Detected != want.Detected ||
		got.Aborted != want.Aborted {
		t.Fatalf("resumed counts differ: %+v vs %+v", got.CampaignResult, want.CampaignResult)
	}
	if got.DeltaLoss.Mean() != want.DeltaLoss.Mean() ||
		got.DeltaLoss.Variance() != want.DeltaLoss.Variance() ||
		got.MismatchStat.Mean() != want.MismatchStat.Mean() ||
		got.MismatchStat.Variance() != want.MismatchStat.Variance() {
		t.Fatalf("resumed moments differ: ΔLoss %v/%v vs %v/%v",
			got.DeltaLoss.Mean(), got.DeltaLoss.Variance(),
			want.DeltaLoss.Mean(), want.DeltaLoss.Variance())
	}
}

func TestCampaignResumeValidation(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)

	cfg := lifecycleConfig(sim, x, y, 10)
	cfg.Resume = &goldeneye.CampaignResume{Completed: 11}
	if _, err := sim.RunCampaign(context.Background(), cfg); err == nil {
		t.Fatal("resume point beyond the campaign must be rejected")
	}

	cfg = lifecycleConfig(sim, x, y, 10)
	cfg.KeepTrace = true
	cfg.Resume = &goldeneye.CampaignResume{Completed: 5}
	if _, err := sim.RunCampaign(context.Background(), cfg); err == nil {
		t.Fatal("resume with KeepTrace must be rejected")
	}
}

func TestTraceRecordsDetectedAndNonFinite(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := lifecycleConfig(sim, x, y, 60)
	cfg.MeasureDMR = true
	cfg.KeepTrace = true

	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var detected, nonFinite, mismatches int
	for _, out := range rep.Trace {
		if out.Detected {
			detected++
		}
		if out.NonFinite {
			nonFinite++
		}
		if out.Mismatch {
			mismatches++
		}
	}
	if detected != rep.Detected || nonFinite != rep.NonFinite || mismatches != rep.Mismatches {
		t.Fatalf("trace aggregates (det=%d nf=%d mm=%d) diverge from report (det=%d nf=%d mm=%d)",
			detected, nonFinite, mismatches, rep.Detected, rep.NonFinite, rep.Mismatches)
	}
	if rep.Detected == 0 {
		t.Fatal("DMR should detect at least one transient neuron fault in 60 injections")
	}
}
