package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
)

// TestMain lets the test binary double as the daemon: the smoke test
// re-executes itself with this sentinel set, so the child is a real
// goldeneyed process that can receive a real SIGTERM.
func TestMain(m *testing.M) {
	if os.Getenv("GOLDENEYED_SMOKE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestDaemonSmoke is the serve-smoke gate: start goldeneyed on a random
// port, submit a tiny campaign through the typed client, follow its SSE
// stream to a completed report, verify a resubmission hits the persistent
// cache, and check SIGTERM drains to a clean exit.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon process")
	}
	cacheDir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-cache-dir", cacheDir)
	cmd.Env = append(os.Environ(), "GOLDENEYED_SMOKE_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its bound address on stdout.
	rd := bufio.NewReader(stdout)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read daemon banner: %v", err)
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected banner %q", line)
	}
	base := strings.TrimSpace(line[i+len(marker):])
	go func() { // drain the rest so the daemon never blocks on stdout
		for {
			if _, err := rd.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New(base)

	f, err := goldeneye.ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	spec := &server.JobSpec{
		Model:     "mlp",
		Samples:   16,
		EvalBatch: 8,
		Campaign: goldeneye.CampaignConfig{
			Format:     f,
			Injections: 4,
			Seed:       21,
			Layer:      1,
		},
	}

	var progressSeen bool
	rep, err := c.Run(ctx, spec, func(server.JobStatus) { progressSeen = true })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Injections != 4 {
		t.Fatalf("report injections: got %d, want 4", rep.Injections)
	}
	if !progressSeen {
		t.Error("no progress events streamed")
	}

	// Identical resubmission: served from cache, terminal at submit time.
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st.State != server.JobDone || !st.Cached {
		t.Errorf("resubmit status: %+v (want cached done)", st)
	}

	// SIGTERM: the daemon drains and exits cleanly, leaving the cache on
	// disk.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	cells, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Error("drained daemon left no persisted cache cells")
	}
}
