// Command goldeneyed is the GoldenEye campaign service daemon: it serves
// the internal/server job API over HTTP, running fault-injection campaigns
// from a bounded queue with SSE progress streaming, a persistent
// content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	goldeneyed -addr localhost:7726 -cache-dir /var/lib/goldeneye/cache
//
// On SIGINT/SIGTERM the daemon drains: running campaigns finish (bounded
// by -drain-timeout) and their results are persisted before exit, so a
// rolling restart never discards completed work. With -journal-dir the
// daemon also keeps a write-ahead job journal and survives crashes: a
// restarted daemon replays the journal, re-queues interrupted jobs, and
// re-executes them bit-identically (see docs/OPERATIONS.md).
//
// Coordinator mode turns the same binary into a fleet front end:
//
//	goldeneyed -addr localhost:7726 -fleet http://node1:7726,http://node2:7726
//
// serves the identical job API, but shards each campaign across the named
// daemons, survives node failures (lease-based reassignment, quarantine,
// idempotent replay), and merges the shard reports byte-identically to a
// single-node run; /metrics becomes a fleet-wide rollup.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"goldeneye/internal/fleet"
	"goldeneye/internal/server"
	"goldeneye/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:7726", "listen address")
		queue        = flag.Int("queue", 16, "job queue bound (full queue answers 429)")
		jobs         = flag.Int("jobs", 1, "concurrent campaign jobs")
		campWorkers  = flag.Int("campaign-workers", 1, "default per-job campaign parallelism")
		cacheDir     = flag.String("cache-dir", "", "persist the result cache here (empty = in-memory only)")
		journalDir   = flag.String("journal-dir", "", "persist the write-ahead job journal here (empty = no crash recovery)")
		zooDir       = flag.String("zoo-dir", "", "pre-trained model cache directory (empty = default)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Minute, "how long SIGTERM waits for running jobs before cancelling them")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request handler timeout on non-streaming endpoints")
		fleetURLs    = flag.String("fleet", "", "comma-separated goldeneyed base URLs: run as a fleet coordinator over these nodes instead of executing campaigns locally")
		fleetShards  = flag.Int("fleet-shards", 0, "shard count per fleet campaign (0 = one shard per node)")
		fleetMin     = flag.Int("fleet-min", 1, "minimum healthy nodes the fleet tolerates before failing campaigns")
	)
	flag.Parse()

	if *fleetURLs != "" {
		runCoordinator(*addr, *fleetURLs, *fleetShards, *fleetMin, *drainTimeout)
		return
	}

	reg := telemetry.NewRegistry()
	svc, err := server.New(server.Options{
		QueueSize:       *queue,
		Jobs:            *jobs,
		CampaignWorkers: *campWorkers,
		CacheDir:        *cacheDir,
		JournalDir:      *journalDir,
		ZooDir:          *zooDir,
		Registry:        reg,
		RequestTimeout:  *reqTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldeneyed:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldeneyed:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: svc}
	fmt.Printf("goldeneyed listening on http://%s\n", ln.Addr())
	if *journalDir != "" {
		fmt.Printf("goldeneyed: journaling jobs to %s (crash recovery armed)\n", *journalDir)
	}
	fmt.Printf("goldeneyed: readiness at http://%s/readyz, liveness at http://%s/healthz\n", ln.Addr(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigs:
		fmt.Printf("goldeneyed: %s, draining (timeout %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "goldeneyed: drain:", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		httpSrv.Shutdown(shutCtx)
		fmt.Println("goldeneyed: drained, exiting")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "goldeneyed:", err)
		os.Exit(1)
	}
}

// runCoordinator serves the fleet front end: the goldeneyed job API backed
// by a shard-and-merge coordinator over the named nodes.
func runCoordinator(addr, urls string, shards, minNodes int, drainTimeout time.Duration) {
	var nodes []string
	for _, a := range strings.Split(urls, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodes = append(nodes, a)
		}
	}
	co, err := fleet.New(nodes, fleet.Options{
		Shards:   shards,
		MinNodes: minNodes,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldeneyed:", err)
		os.Exit(1)
	}
	fs := fleet.Serve(co, fleet.ServerOptions{})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldeneyed:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: fs}
	fmt.Printf("goldeneyed listening on http://%s\n", ln.Addr())
	fmt.Printf("goldeneyed: coordinating a %d-node fleet (min healthy %d): %s\n",
		len(nodes), minNodes, strings.Join(nodes, ", "))
	fmt.Printf("goldeneyed: readiness at http://%s/readyz, fleet metrics rollup at http://%s/metrics\n", ln.Addr(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("goldeneyed: %s, draining fleet campaigns (timeout %s)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := fs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "goldeneyed: drain:", err)
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		httpSrv.Shutdown(shutCtx)
		fmt.Println("goldeneyed: drained, exiting")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "goldeneyed:", err)
		os.Exit(1)
	}
}
