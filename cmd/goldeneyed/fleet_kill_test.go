package main

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"goldeneye/internal/chaos"
	"goldeneye/internal/fleet"
	"goldeneye/internal/server/client"
)

// fleetOpts tunes the coordinator for chaos tests: fast failure detection
// so a killed or partitioned node is discovered in milliseconds, not
// minutes.
func fleetOpts(shards int) fleet.Options {
	return fleet.Options{
		Shards:         shards,
		MinNodes:       1,
		LeaseTimeout:   5 * time.Second,
		QuarantineBase: 50 * time.Millisecond,
		QuarantineMax:  500 * time.Millisecond,
		LostAfter:      2,
		Client: client.Options{
			RequestTimeout: 10 * time.Second,
			MaxAttempts:    3,
			BaseBackoff:    20 * time.Millisecond,
			MaxBackoff:     200 * time.Millisecond,
		},
	}
}

// TestFleetSurvivesKillAndPartition is the fleet chaos acceptance gate: a
// three-daemon fleet runs one campaign; mid-run one daemon is SIGKILLed
// and another is network-partitioned (its chaos proxy stops forwarding).
// The fleet must finish on the survivor with a merged report byte-identical
// to an unfailed single-node run at the equal effective worker count, and
// a follow-up coordinator over the survivor must be answered entirely from
// the daemon's idempotency index — proving completed shards are replayed,
// never re-executed.
func TestFleetSurvivesKillAndPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	const shards = 3
	spec := killSpec(t, 71, 9000) // 3000 injections per shard: long enough to be mid-run

	victim, victimBase := spawnDaemon(t, "-addr", "127.0.0.1:0")
	partitioned, partitionedBase := spawnDaemon(t, "-addr", "127.0.0.1:0")
	_, survivorBase := spawnDaemon(t, "-addr", "127.0.0.1:0")
	_ = partitioned

	// The partitioned daemon sits behind a chaos proxy so the "network"
	// can fail while the process stays alive and keeps burning its shard.
	proxy, err := chaos.NewProxy(strings.TrimPrefix(partitionedBase, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	co, err := fleet.New([]string{victimBase, proxy.URL(), survivorBase}, fleetOpts(shards))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Unleash the chaos once the campaign is demonstrably under way on all
	// nodes but long before any shard can finish.
	var once sync.Once
	chaosFired := make(chan struct{})
	rep, err := co.Run(ctx, spec, func(done, total int) {
		if done > 100 {
			once.Do(func() {
				go func() {
					defer close(chaosFired)
					if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
						t.Errorf("kill victim: %v", err)
					}
					victim.Wait()
					proxy.SetTarget("127.0.0.1:1") // partition: nothing forwards anymore
					proxy.DropActive()
				}()
			})
		}
	})
	if err != nil {
		t.Fatalf("fleet run did not survive the chaos: %v", err)
	}
	select {
	case <-chaosFired:
	case <-time.After(time.Second):
		t.Fatal("campaign finished before the chaos fired; raise the injection count")
	}
	if !rep.Degraded {
		t.Error("fleet lost two nodes but the report is not marked degraded")
	}
	if rep.Stats.Reassigned == 0 {
		t.Error("no shard was reassigned despite a kill and a partition")
	}
	if len(rep.Stats.NodesLost) == 0 {
		t.Error("no node recorded as lost")
	}

	// Byte-identity against an unfailed single-node run at the equal
	// effective worker count (workers = shard count).
	_, refBase := spawnDaemon(t, "-addr", "127.0.0.1:0")
	refSpec := *spec
	refSpec.Workers = shards
	want, err := client.New(refBase).Run(ctx, &refSpec, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, _ := json.Marshal(rep.CampaignReport)
	wantJSON, _ := json.Marshal(want)
	if string(got) != string(wantJSON) {
		t.Fatalf("chaos-run report differs from unfailed single-node run:\nfleet:  %s\nsingle: %s", got, wantJSON)
	}

	// Idempotent-replay proof: the survivor executed every shard (the
	// victim died and the partitioned node was unreachable at delivery
	// time), so a fresh coordinator re-running the identical campaign
	// against it alone derives the same deterministic shard keys and is
	// answered entirely from the idempotency index — zero re-executions.
	co2, err := fleet.New([]string{survivorBase}, fleetOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := co2.Run(ctx, spec, nil)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if rep2.Stats.Replayed != shards {
		t.Errorf("replay run re-executed shards: replayed %d of %d", rep2.Stats.Replayed, shards)
	}
	got2, _ := json.Marshal(rep2.CampaignReport)
	if string(got2) != string(wantJSON) {
		t.Fatalf("replayed report differs from unfailed run:\n%s\n%s", got2, wantJSON)
	}
}

// TestFleetCoordinatorModeE2E boots goldeneyed in -fleet coordinator mode
// over two real daemons and drives it with the stock client: the
// coordinator serves the single-daemon job API while sharding underneath.
func TestFleetCoordinatorModeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	_, node1 := spawnDaemon(t, "-addr", "127.0.0.1:0")
	_, node2 := spawnDaemon(t, "-addr", "127.0.0.1:0")
	_, coordBase := spawnDaemon(t, "-addr", "127.0.0.1:0", "-fleet", node1+","+node2)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	spec := killSpec(t, 72, 200)

	cli := client.New(coordBase)
	if err := cli.Ready(ctx); err != nil {
		t.Fatalf("coordinator not ready: %v", err)
	}
	rep, err := cli.Run(ctx, spec, nil)
	if err != nil {
		t.Fatalf("run via coordinator: %v", err)
	}

	refSpec := *spec
	refSpec.Workers = 2
	want, err := client.New(node1).Run(ctx, &refSpec, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, _ := json.Marshal(rep)
	wantJSON, _ := json.Marshal(want)
	if string(got) != string(wantJSON) {
		t.Fatalf("coordinator-mode report differs from single-node workers=2 run:\n%s\n%s", got, wantJSON)
	}

	// The coordinator rejects what it cannot shard-merge.
	bad := killSpec(t, 73, 100)
	bad.Workers = 4
	if _, err := cli.Submit(ctx, bad); err == nil {
		t.Error("coordinator accepted a workers>1 spec")
	} else {
		var api *client.APIError
		if !errors.As(err, &api) || api.StatusCode != 400 {
			t.Errorf("want 400 APIError, got %v", err)
		}
	}
}
