package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/chaos"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
)

// spawnDaemon re-executes the test binary as a real goldeneyed process
// (see TestMain) and returns the running command plus the base URL parsed
// from its startup banner.
func spawnDaemon(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GOLDENEYED_SMOKE_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	rd := bufio.NewReader(stdout)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("read daemon banner: %v", err)
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected banner %q", line)
	}
	base := strings.TrimSpace(line[i+len(marker):])
	go func() { // drain the rest so the daemon never blocks on stdout
		for {
			if _, err := rd.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	return cmd, base
}

func killSpec(t *testing.T, seed uint64, injections int) *server.JobSpec {
	t.Helper()
	f, err := goldeneye.ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	return &server.JobSpec{
		Model:     "mlp",
		Samples:   16,
		EvalBatch: 8,
		Campaign: goldeneye.CampaignConfig{
			Format:     f,
			Injections: injections,
			Seed:       seed,
			Layer:      1,
		},
	}
}

// TestKillMidJobRecovers is the chaos acceptance gate: a journaling daemon
// is SIGKILLed with one campaign mid-run and two more queued, restarted on
// a different port behind a stable proxy address, and the client's retry
// and SSE-resume machinery completes every job — each final report byte-
// identical to an unfailed daemon running the same specs.
func TestKillMidJobRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	cacheDir, journalDir := t.TempDir(), t.TempDir()

	cmd1, base1 := spawnDaemon(t,
		"-addr", "127.0.0.1:0", "-cache-dir", cacheDir, "-journal-dir", journalDir)
	p, err := chaos.NewProxy(strings.TrimPrefix(base1, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := client.NewWithOptions(p.URL(), client.Options{
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		MaxAttempts: 40, // must outlast the kill → restart → retarget window
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Job 1 is long enough to be mid-run at the kill; jobs 2 and 3 queue
	// behind it (the daemon runs one campaign at a time by default).
	specs := []*server.JobSpec{
		killSpec(t, 51, 30000),
		killSpec(t, 52, 300),
		killSpec(t, 53, 300),
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Follow all three streams through the crash.
	type result struct {
		i   int
		rep *goldeneye.CampaignReport
		err error
	}
	results := make(chan result, len(ids))
	for i, id := range ids {
		go func(i int, id string) {
			rep, err := c.Stream(ctx, id, nil)
			results <- result{i, rep, err}
		}(i, id)
	}

	// Wait until job 1 is demonstrably mid-campaign, then SIGKILL — no
	// drain, no journal flush beyond what's already on disk.
	for {
		st, jerr := c.Job(ctx, ids[0])
		if jerr == nil && st.State == server.JobRunning && st.Done > 500 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("job 1 never reached mid-campaign")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Restart over the same directories on a new port; swing the proxy so
	// the clients' stable address now reaches the replayed daemon.
	_, base2 := spawnDaemon(t,
		"-addr", "127.0.0.1:0", "-cache-dir", cacheDir, "-journal-dir", journalDir)
	p.SetTarget(strings.TrimPrefix(base2, "http://"))
	p.DropActive()

	reports := make([]*goldeneye.CampaignReport, len(ids))
	for range ids {
		r := <-results
		if r.err != nil {
			t.Fatalf("job %s did not survive the kill: %v", ids[r.i], r.err)
		}
		reports[r.i] = r.rep
	}
	resumes := c.Registry().Counter(client.MetricSSEResumes).Value()
	if resumes < int64(len(ids)) {
		t.Errorf("SSE resumes: %d, want >= %d", resumes, len(ids))
	}

	// The replayed daemon reports its journal recovery on /metrics.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(metrics, []byte("goldeneye_server_journal_replayed_total")) {
		t.Error("restarted daemon exposes no journal replay metrics")
	}

	// Reference: an unfailed daemon over fresh state runs the same specs.
	// Every recovered report must match it byte for byte.
	_, base3 := spawnDaemon(t,
		"-addr", "127.0.0.1:0", "-cache-dir", t.TempDir(), "-journal-dir", t.TempDir())
	ref := client.New(base3)
	for i, spec := range specs {
		want, err := ref.Run(ctx, spec, nil)
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		a, _ := json.Marshal(reports[i])
		b, _ := json.Marshal(want)
		if !bytes.Equal(a, b) {
			t.Errorf("job %s: recovered report differs from unfailed run:\n%s\n%s", ids[i], a, b)
		}
	}
}
