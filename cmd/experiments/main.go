// Command experiments regenerates every table and figure of the paper's
// evaluation section on this repository's substrates. Each subcommand
// corresponds to one artifact (see DESIGN.md §3 and EXPERIMENTS.md):
//
//	experiments table1                        # Table I  — dynamic ranges
//	experiments table2                        # Table II — feature matrix
//	experiments fig3  [-models a,b] [-runs N] # runtime overhead
//	experiments fig4  [-models a,b]           # accuracy vs bitwidth
//	experiments fig6  [-models a,b]           # DSE traversals
//	experiments fig7  [-models a,b] [-inj N]  # per-layer ΔLoss
//	experiments fig9  [-model m]   [-inj N]   # accuracy/resilience frontier
//	experiments convergence [-model m]        # ΔLoss vs mismatch convergence
//	experiments all                           # everything, paper-scale
//
// The first run trains the model zoo (seconds per model); results are
// cached under the system temp directory.
//
// Observability: -metrics prints a final Prometheus-text dump of the
// runtime counters (tensor kernel time, quantization ops, DSE evaluations)
// to stderr, keeping stdout clean for -json; -debug-addr serves /metrics
// and /debug/pprof while an experiment runs.
//
// Robustness: SIGINT/SIGTERM stop a sweep at the next campaign boundary
// and exit cleanly. With -checkpoint-dir DIR, per-campaign state persists
// across interruptions; rerunning with -resume serves completed cells from
// the store and continues the interrupted one at its recorded injection,
// reproducing the uninterrupted output bit for bit. Without -resume the
// directory is cleared first.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"goldeneye"
	"goldeneye/internal/checkpoint"
	"goldeneye/internal/dse"
	"goldeneye/internal/exper"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/telemetry"
)

func main() {
	// SIGINT/SIGTERM cancel the context: drivers stop at the next cell or
	// injection boundary, run's deferred cleanup (metrics dump, debug
	// server) unwinds, and with -checkpoint-dir the interrupted sweep is
	// resumable. Interruption is a clean exit, not a failure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; rerun with -checkpoint-dir DIR -resume to continue the sweep")
			return
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: experiments <table1|table2|fig3|fig4|fig6|fig7|fig9|convergence|all> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		modelsFlag = fs.String("models", "", "comma-separated model names (default per experiment)")
		modelFlag  = fs.String("model", "resnet_m", "model name (single-model experiments)")
		runsFlag   = fs.Int("runs", 10, "timing repetitions (fig3)")
		injFlag    = fs.Int("inj", 0, "injections per campaign (0 = experiment default)")
		packBatch  = fs.Int("campaign-batch", 0, "faults packed per forward pass in campaigns (0 = serial; results are bit-identical at any value)")
		samples    = fs.Int("samples", 0, "validation samples for accuracy (0 = default)")
		threshold  = fs.Float64("threshold", 0.01, "DSE accuracy-loss threshold")
		layerFlag  = fs.Int("layer", -1, "layer visit index for convergence (-1 = middle)")
		jsonOut    = fs.Bool("json", false, "emit rows as JSON instead of text")
		metricsFl  = fs.Bool("metrics", false, "print a final metrics dump (Prometheus text) to stderr")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		ckptDir    = fs.String("checkpoint-dir", "", "persist per-campaign checkpoints in this directory (makes sweeps resumable)")
		resume     = fs.Bool("resume", false, "resume from the checkpoints in -checkpoint-dir instead of clearing them")
		detectors  = fs.String("detectors", "", "comma-separated detection pipeline armed in every campaign: ranger,sentinel,dmr,abft")
		recovery   = fs.String("recovery", "none", "recovery policy paired with -detectors: none|clamp|zero|reexecute|abort")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *metricsFl || *debugAddr != "" {
		reg := telemetry.Default()
		goldeneye.RegisterRuntimeCollectors(reg)
		if *debugAddr != "" {
			bound, shutdown, derr := telemetry.ServeDebug(*debugAddr, reg)
			if derr != nil {
				return derr
			}
			defer shutdown()
			fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /metrics.json, /debug/pprof/)\n", bound)
		}
		if *metricsFl {
			defer func() {
				fmt.Fprintln(os.Stderr, "\n== metrics ==")
				reg.WritePrometheus(os.Stderr)
			}()
		}
	}
	opts := exper.Options{ValSamples: *samples, Injections: *injFlag, CampaignBatch: *packBatch, Recovery: *recovery}
	if *detectors != "" {
		// Validate up front so a typo fails before any campaign runs.
		if _, derr := goldeneye.ParseDetectors(*detectors); derr != nil {
			return derr
		}
		if _, derr := goldeneye.ParseRecovery(*recovery); derr != nil {
			return derr
		}
		opts.Detectors = strings.Split(*detectors, ",")
	}
	if *ckptDir != "" {
		st, cerr := checkpoint.Open(*ckptDir)
		if cerr != nil {
			return cerr
		}
		if !*resume {
			// A fresh sweep must not inherit cells from a previous run that
			// happened to use the same directory.
			if cerr := st.Clear(); cerr != nil {
				return cerr
			}
		}
		opts.Checkpoint = st
	} else if *resume {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}

	modelList := func(def []string) []string {
		if *modelsFlag == "" {
			return def
		}
		return strings.Split(*modelsFlag, ",")
	}

	w := io.Writer(os.Stdout)
	emit := func(rows interface{}, err error) error {
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		return nil
	}
	if *jsonOut {
		w = io.Discard
	}
	switch cmd {
	case "table1":
		fmt.Fprintln(w, "== Table I: Dynamic Range of Data Types ==")
		return emit(exper.Table1(w), nil)
	case "table2":
		fmt.Fprintln(w, "== Table II: capability self-check (GoldenEye column) ==")
		return emit(exper.Table2(w), nil)
	case "fig3":
		fmt.Fprintln(w, "== Fig 3: runtime of format emulation and error injection ==")
		return emit(exper.Fig3(ctx, modelList([]string{"resnet_s", "vit_tiny"}), *runsFlag, w, opts))
	case "fig4":
		fmt.Fprintln(w, "== Fig 4: accuracy vs bitwidth across format families ==")
		return emit(exper.Fig4(ctx, modelList([]string{"resnet_s", "vit_tiny"}), w, opts))
	case "fig6":
		fmt.Fprintln(w, "== Fig 6: DSE heuristic traversals ==")
		return emit(exper.Fig6(ctx, modelList([]string{"resnet_s", "vit_tiny"}), dse.Families(), *threshold, w, opts))
	case "fig7":
		fmt.Fprintln(w, "== Fig 7: per-layer ΔLoss, value vs metadata injections ==")
		return emit(exper.Fig7(ctx, modelList([]string{"resnet_m", "vit_small"}), w, opts))
	case "fig9":
		fmt.Fprintln(w, "== Fig 9: accuracy / resilience / bitwidth trade-off ==")
		return emit(exper.Fig9(ctx, *modelFlag, *threshold, w, opts))
	case "convergence":
		fmt.Fprintln(w, "== §IV-C: ΔLoss vs mismatch metric convergence ==")
		return emit(exper.Convergence(ctx, *modelFlag, numfmt.BFPe5m5(), *layerFlag, w, opts))
	case "ablation":
		fmt.Fprintln(w, "== Ablation: BFP shared-exponent block size ==")
		return emit(exper.AblationBFPBlock(ctx, *modelFlag, w, opts))
	case "errormodels":
		fmt.Fprintln(w, "== Extension: reliability under different error models ==")
		rows1, err := exper.ErrorModels(ctx, *modelFlag, numfmt.FP8E4M3(true), w, opts)
		if err != nil {
			return err
		}
		rows2, err := exper.ErrorModels(ctx, *modelFlag, numfmt.BFPe5m5(), w, opts)
		return emit(append(rows1, rows2...), err)
	case "emerging":
		fmt.Fprintln(w, "== Extension: emerging formats (posit, LNS, NF4) vs classic families ==")
		return emit(exper.Emerging(ctx, modelList([]string{"resnet_s", "vit_tiny"}), w, opts))
	case "security":
		fmt.Fprintln(w, "== §V-D use case: FGSM attack efficacy vs number format ==")
		return emit(exper.SecurityFGSM(ctx, *modelFlag, nil, w, opts))
	case "protection":
		fmt.Fprintln(w, "== §V-B use case: software-directed protection (ranger vs DMR) ==")
		return emit(exper.Protection(ctx, *modelFlag, w, opts))
	case "weightsvsneurons":
		fmt.Fprintln(w, "== §V-B: weight-targeted vs neuron-targeted faults ==")
		return emit(exper.WeightsVsNeurons(ctx, *modelFlag, numfmt.FP16(true), w, opts))
	case "bitsens":
		fmt.Fprintln(w, "== Per-bit vulnerability (the §IV-C sign-bit analysis) ==")
		var all []exper.BitSensRow
		for _, spec := range []string{"fp16", "bfp_e5m5"} {
			format, perr := goldeneye.ParseFormat(spec)
			if perr != nil {
				return perr
			}
			rows, err := exper.BitSensitivity(ctx, *modelFlag, format, w, opts)
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		return emit(all, nil)
	case "all":
		for _, sub := range []string{"table1", "table2", "fig3", "fig4", "fig6", "fig7", "fig9", "convergence", "ablation", "errormodels", "emerging", "security", "protection", "bitsens", "weightsvsneurons"} {
			if err := run(ctx, append([]string{sub}, rest...)); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}
