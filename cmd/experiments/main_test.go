package main

import (
	"context"
	"os"
	"testing"
)

func TestRunTable1(t *testing.T) {
	if err := run(context.Background(), []string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2(t *testing.T) {
	if err := run(context.Background(), []string{"table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"fig42"}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestRunFig4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"fig4", "-models", "mlp", "-samples", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConvergenceTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"convergence", "-model", "mlp", "-inj", "50", "-samples", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"fig4", "-bogusflag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunTable1JSON(t *testing.T) {
	if err := run(context.Background(), []string{"table1", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunResumeRequiresCheckpointDir(t *testing.T) {
	if err := run(context.Background(), []string{"table1", "-resume"}); err == nil {
		t.Fatal("expected -resume without -checkpoint-dir to fail")
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		done <- string(buf)
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func TestRunCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	dir := t.TempDir()
	args := []string{"weightsvsneurons", "-model", "mlp", "-inj", "12", "-samples", "40", "-checkpoint-dir", dir}

	fresh := captureStdout(t, func() error { return run(context.Background(), args) })
	// Every cell is now checkpointed as done; a -resume rerun must serve
	// the sweep from the store and print byte-identical output.
	resumed := captureStdout(t, func() error {
		return run(context.Background(), append(args, "-resume"))
	})
	if fresh != resumed {
		t.Fatalf("resumed sweep output differs from fresh run:\n--- fresh ---\n%s\n--- resumed ---\n%s", fresh, resumed)
	}
	if len(fresh) == 0 {
		t.Fatal("sweep printed nothing")
	}
}
