package main

import "testing"

func TestRunTable1(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2(t *testing.T) {
	if err := run([]string{"table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig42"}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestRunFig4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run([]string{"fig4", "-models", "mlp", "-samples", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConvergenceTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run([]string{"convergence", "-model", "mlp", "-inj", "50", "-samples", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"fig4", "-bogusflag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunTable1JSON(t *testing.T) {
	if err := run([]string{"table1", "-json"}); err != nil {
		t.Fatal(err)
	}
}
