// Command benchdiff compares two campaign performance matrices
// (BENCH_campaign.json files written by `make bench` or `make bench-smoke`)
// and fails when the new one is worse:
//
//	benchdiff -old old.json -new BENCH_campaign.json [-threshold 10]
//
// Rows are matched on (format, kernel, batch_size, gomaxprocs). The tool
// exits 1 when any matched row's injections/sec regressed by more than
// -threshold percent, or when any row of the new file carries
// bit_identical=false — a correctness failure, not a performance one.
// Rows present on only one side are reported but not fatal (matrix shape
// changes are legitimate). See docs/PERFORMANCE.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// matrixRow mirrors the row schema of BENCH_campaign.json; unknown fields
// are ignored so the tool tolerates schema growth.
type matrixRow struct {
	Format       string  `json:"format"`
	Kernel       string  `json:"kernel"`
	BatchSize    int     `json:"batch_size"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	InjPerSecond float64 `json:"injections_per_second"`
	BitIdentical bool    `json:"bit_identical"`
}

// samplingSummary mirrors the optional sampled-campaign section of
// BENCH_campaign.json (absent in matrices written before the sampling
// subsystem existed — old files must keep loading).
type samplingSummary struct {
	FaultSpace  int     `json:"fault_space_size"`
	Executed    int     `json:"injections_executed"`
	Pruned      int     `json:"injections_pruned"`
	SDCDelta    float64 `json:"sdc_delta_vs_exhaustive"`
	CIHalfWidth float64 `json:"ci_half_width"`
}

// savedPercent is the fraction of the fault space the sampler did not
// execute, as a percentage — the injections-saved trajectory number.
func (s *samplingSummary) savedPercent() float64 {
	if s.FaultSpace <= 0 {
		return 0
	}
	return (1 - float64(s.Executed)/float64(s.FaultSpace)) * 100
}

type matrixFile struct {
	Model    string           `json:"model"`
	Rows     []matrixRow      `json:"rows"`
	Sampling *samplingSummary `json:"sampling"`
}

// rowKey identifies a matrix cell across runs.
type rowKey struct {
	Format     string
	Kernel     string
	BatchSize  int
	GoMaxProcs int
}

func (k rowKey) String() string {
	return fmt.Sprintf("%s/%s batch=%d procs=%d", k.Format, k.Kernel, k.BatchSize, k.GoMaxProcs)
}

func loadMatrix(path string) (*matrixFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m matrixFile
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Rows) == 0 {
		return nil, fmt.Errorf("%s: matrix has no rows", path)
	}
	return &m, nil
}

// diff returns the failure messages comparing old → new under the given
// regression threshold (percent).
func diff(oldM, newM *matrixFile, threshold float64) []string {
	var failures []string
	oldRows := make(map[rowKey]matrixRow, len(oldM.Rows))
	for _, r := range oldM.Rows {
		oldRows[rowKey{r.Format, r.Kernel, r.BatchSize, r.GoMaxProcs}] = r
	}
	matched := 0
	for _, r := range newM.Rows {
		key := rowKey{r.Format, r.Kernel, r.BatchSize, r.GoMaxProcs}
		if !r.BitIdentical {
			failures = append(failures, fmt.Sprintf("%s: bit_identical=false", key))
		}
		o, ok := oldRows[key]
		if !ok {
			fmt.Printf("new row (no baseline): %s\n", key)
			continue
		}
		matched++
		delete(oldRows, key)
		if o.InjPerSecond <= 0 || r.InjPerSecond <= 0 {
			continue // unusable timing; nothing to compare
		}
		change := (r.InjPerSecond - o.InjPerSecond) / o.InjPerSecond * 100
		if change < -threshold {
			failures = append(failures, fmt.Sprintf("%s: %.1f → %.1f inj/s (%.1f%%)",
				key, o.InjPerSecond, r.InjPerSecond, change))
		} else {
			fmt.Printf("%s: %.1f → %.1f inj/s (%+.1f%%)\n", key, o.InjPerSecond, r.InjPerSecond, change)
		}
	}
	for key := range oldRows {
		fmt.Printf("dropped row (in old only): %s\n", key)
	}
	if matched == 0 {
		failures = append(failures, "no rows matched between the two matrices")
	}
	failures = append(failures, diffSampling(oldM.Sampling, newM.Sampling)...)
	return failures
}

// diffSampling reports the injections-saved trajectory between two sampled
// summaries. Either side may be nil (pre-sampling matrices); that is a shape
// change, not a failure. An estimate that drifted outside its own confidence
// interval of the exhaustive rate is a correctness failure.
func diffSampling(oldS, newS *samplingSummary) []string {
	if newS == nil {
		if oldS != nil {
			fmt.Println("dropped sampling summary (in old only)")
		}
		return nil
	}
	if d, hw := newS.SDCDelta, newS.CIHalfWidth; hw > 0 && (d > hw || d < -hw) {
		return []string{fmt.Sprintf("sampling: SDC estimate off the exhaustive rate by %.5f, outside its ±%.5f CI", d, hw)}
	}
	if oldS == nil {
		fmt.Printf("sampling (no baseline): executed %d of %d (%.1f%% saved, %d pruned)\n",
			newS.Executed, newS.FaultSpace, newS.savedPercent(), newS.Pruned)
		return nil
	}
	fmt.Printf("sampling: saved %.1f%% → %.1f%% of the fault space (executed %d → %d)\n",
		oldS.savedPercent(), newS.savedPercent(), oldS.Executed, newS.Executed)
	return nil
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_campaign.json")
	newPath := flag.String("new", "", "candidate BENCH_campaign.json")
	threshold := flag.Float64("threshold", 10, "max allowed injections/sec regression, percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old old.json -new new.json [-threshold 10]")
		os.Exit(2)
	}
	oldM, err := loadMatrix(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := loadMatrix(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	failures := diff(oldM, newM, *threshold)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
