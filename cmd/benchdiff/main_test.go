package main

import (
	"strings"
	"testing"
)

func row(format, kernel string, batch, procs int, injps float64, bitIdentical bool) matrixRow {
	return matrixRow{
		Format: format, Kernel: kernel, BatchSize: batch, GoMaxProcs: procs,
		InjPerSecond: injps, BitIdentical: bitIdentical,
	}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	oldM := &matrixFile{Rows: []matrixRow{
		row("fp16", "fused", 8, 4, 100, true),
		row("int8", "generic", 1, 1, 50, true),
	}}
	newM := &matrixFile{Rows: []matrixRow{
		row("fp16", "fused", 8, 4, 95, true),   // −5%: inside the 10% budget
		row("int8", "generic", 1, 1, 60, true), // improvement
	}}
	if failures := diff(oldM, newM, 10); len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	oldM := &matrixFile{Rows: []matrixRow{row("fp16", "fused", 8, 4, 100, true)}}
	newM := &matrixFile{Rows: []matrixRow{row("fp16", "fused", 8, 4, 80, true)}}
	failures := diff(oldM, newM, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "fp16/fused") {
		t.Fatalf("want one fp16 regression failure, got %v", failures)
	}
	// The same 20% drop passes with a looser threshold.
	if failures := diff(oldM, newM, 25); len(failures) != 0 {
		t.Fatalf("threshold 25 should tolerate a 20%% drop, got %v", failures)
	}
}

func TestDiffFailsOnBitIdentityLoss(t *testing.T) {
	oldM := &matrixFile{Rows: []matrixRow{row("bfp_e5m5_b0", "fused", 32, 4, 100, true)}}
	newM := &matrixFile{Rows: []matrixRow{row("bfp_e5m5_b0", "fused", 32, 4, 200, false)}}
	failures := diff(oldM, newM, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "bit_identical=false") {
		t.Fatalf("want a bit-identity failure despite the speedup, got %v", failures)
	}
}

func TestDiffToleratesShapeChanges(t *testing.T) {
	oldM := &matrixFile{Rows: []matrixRow{
		row("fp16", "fused", 8, 4, 100, true),
		row("fp16", "fused", 8, 8, 150, true), // dropped in new
	}}
	newM := &matrixFile{Rows: []matrixRow{
		row("fp16", "fused", 8, 4, 100, true),
		row("afp_e5m2", "fused", 8, 4, 70, true), // added in new
	}}
	if failures := diff(oldM, newM, 10); len(failures) != 0 {
		t.Fatalf("shape changes must not fail the diff: %v", failures)
	}
}

func TestDiffFailsWhenNothingMatches(t *testing.T) {
	oldM := &matrixFile{Rows: []matrixRow{row("fp16", "fused", 8, 4, 100, true)}}
	newM := &matrixFile{Rows: []matrixRow{row("int8", "fused", 8, 4, 100, true)}}
	failures := diff(oldM, newM, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "no rows matched") {
		t.Fatalf("want a no-overlap failure, got %v", failures)
	}
}

func TestDiffIgnoresZeroTimings(t *testing.T) {
	oldM := &matrixFile{Rows: []matrixRow{row("fp16", "fused", 1, 1, 0, true)}}
	newM := &matrixFile{Rows: []matrixRow{row("fp16", "fused", 1, 1, 0, true)}}
	if failures := diff(oldM, newM, 10); len(failures) != 0 {
		t.Fatalf("zero timings must not divide or fail: %v", failures)
	}
}

func TestDiffToleratesMissingSamplingSummary(t *testing.T) {
	// Old matrices predate the sampling section entirely; new ones may also
	// omit it (exhaustive-only benches). Neither combination fails.
	base := []matrixRow{row("fp16", "fused", 8, 4, 100, true)}
	withS := &matrixFile{Rows: base, Sampling: &samplingSummary{
		FaultSpace: 1000, Executed: 150, Pruned: 300, SDCDelta: 0.002, CIHalfWidth: 0.01,
	}}
	withoutS := &matrixFile{Rows: base}
	for _, tc := range []struct{ oldM, newM *matrixFile }{
		{withoutS, withS}, {withS, withoutS}, {withS, withS}, {withoutS, withoutS},
	} {
		if failures := diff(tc.oldM, tc.newM, 10); len(failures) != 0 {
			t.Fatalf("sampling-summary shape change must not fail: %v", failures)
		}
	}
}

func TestDiffFailsOnSDCEstimateOutsideCI(t *testing.T) {
	base := []matrixRow{row("fp16", "fused", 8, 4, 100, true)}
	oldM := &matrixFile{Rows: base}
	newM := &matrixFile{Rows: base, Sampling: &samplingSummary{
		FaultSpace: 1000, Executed: 150, SDCDelta: -0.05, CIHalfWidth: 0.01,
	}}
	failures := diff(oldM, newM, 10)
	if len(failures) != 1 || !strings.Contains(failures[0], "outside its") {
		t.Fatalf("want an out-of-CI sampling failure, got %v", failures)
	}
}
