// Command goldeneye is the interactive front-end to the simulator: evaluate
// a model's accuracy under any number format, run fault-injection
// campaigns, explore format design spaces, and inspect format properties.
//
//	goldeneye range                                  # Table I-style format ranges
//	goldeneye layers  -model resnet_s                # enumerate hookable layers
//	goldeneye eval    -model resnet_s -format fp8_e4m3
//	goldeneye inject  -model resnet_s -format bfp_e5m5 -layer 6 -site metadata -n 1000
//	goldeneye inject  -model resnet_s -format int8 -n 1000 -campaign-batch 32
//	goldeneye dse     -model vit_tiny -family afp -threshold 0.01
//
// Format specifications accept presets (fp16, bfloat16, int8, …) and
// generic geometries (fp_e4m3, fxp_1_7_8, bfp_e5m5_b16, afp_e4m4); append
// "_nodn" to disable denormals. Models are trained on first use and cached.
//
// Observability (any subcommand; see the README's Observability section):
//
//	-progress            live progress line with injections/sec (inject)
//	-metrics             final Prometheus-text metrics dump on stdout
//	-debug-addr addr     HTTP server with /metrics, /metrics.json, /debug/pprof/
//
// Robustness: SIGINT/SIGTERM stop a campaign at the next injection
// boundary and still print the partial report. A panic inside one
// injected inference aborts only that injection (counted in the report's
// "aborted" line); -max-aborts N fails the campaign once N injections
// have aborted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"goldeneye"
	"goldeneye/internal/dataset"
	"goldeneye/internal/dse"
	"goldeneye/internal/exper"
	"goldeneye/internal/fleet"
	"goldeneye/internal/inject"
	"goldeneye/internal/models"
	"goldeneye/internal/nn"
	"goldeneye/internal/sampling"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
	"goldeneye/internal/telemetry"
	"goldeneye/internal/zoo"
)

func main() {
	// SIGINT/SIGTERM cancel the context; run unwinds its deferred cleanup
	// (metrics dump, progress watcher, debug server) before main exits, so
	// an interrupted campaign still reports what it completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goldeneye:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: goldeneye <range|models|layers|eval|inject|dse> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		model     = fs.String("model", "resnet_s", fmt.Sprintf("model name %v", models.Names()))
		format    = fs.String("format", "fp16", "number format specification")
		formatMap = fs.String("format-map", "", `per-layer role formats, e.g. "w:bf16,a:fp8_e4m3,acc:fp32;4=a:fp16" (roles w/a/acc; ";N=" overrides layer N); replaces -format emulation for eval and inject`)
		layer     = fs.Int("layer", -1, "layer visit index (-1 = middle injectable layer)")
		site      = fs.String("site", "value", "injection site: value|metadata|accum")
		target    = fs.String("target", "neuron", "injection target: neuron|weight")
		n         = fs.Int("n", 1000, "number of injections")
		seed      = fs.Uint64("seed", 1, "campaign seed")
		family    = fs.String("family", "fp", "DSE family: fp|fxp|int|bfp|afp")
		mixed     = fs.String("mixed", "", `mixed-assignment DSE: "|"-separated per-layer role-triple candidates, e.g. "w:fp16,a:fp16,acc:fp32|w:fp8_e4m3,a:fp8_e4m3" (dse)`)
		threshold = fs.Float64("threshold", 0.01, "DSE accuracy-loss threshold")
		ranger    = fs.Bool("ranger", true, "enable the range detector")
		samples   = fs.Int("samples", 300, "validation samples")
		batch     = fs.Int("batch", 30, "evaluation batch size")
		packBatch = fs.Int("campaign-batch", 1, "faults packed per forward pass (inject); reports are bit-identical at any value")
		workers   = fs.Int("workers", 1, "parallel campaign workers (inject)")
		maxAborts = fs.Int("max-aborts", 0, "fail the campaign after this many aborted injections (0 = unlimited degraded mode)")
		detectors = fs.String("detectors", "", "comma-separated detection pipeline (inject): ranger,sentinel,dmr,abft")
		recovery  = fs.String("recovery", "none", "recovery policy for detected faults (inject): none|clamp|zero|reexecute|abort")
		serverURL = fs.String("server", "", "submit the campaign to a goldeneyed daemon at this base URL instead of running locally (inject)")
		fleetURLs = fs.String("fleet", "", "comma-separated goldeneyed base URLs: shard the campaign across this fleet and merge the reports (inject)")
		fleetN    = fs.Int("fleet-shards", 0, "shard count for -fleet (0 = one shard per node)")
		fleetMin  = fs.Int("fleet-min", 1, "minimum healthy nodes a -fleet campaign tolerates before failing")
		deadline  = fs.Duration("job-deadline", 0, "per-job execution bound on the daemon (inject with -server); an expiring job returns its partial report (0 = unbounded)")
		sample    = fs.Float64("sample", 1, "fraction of the fault space to execute (inject); <1 turns the campaign into a stratified estimator with a 95% CI")
		sampleStr = fs.String("sample-strata", "", `per-stratum sampling fractions, e.g. "exponent=1,mantissa=0.05" (strata are bit roles of the injection format)`)
		prune     = fs.Bool("prune", false, "analytically prune provably-masked faults via ranger calibration bounds (inject; requires -ranger)")
		pruneEps  = fs.Float64("prune-eps", 0, "pruning tolerance: a bit is masked when its worst-case perturbation stays below this fraction of the layer's dynamic range (0 = the plan default)")
		targetCI  = fs.Float64("target-ci", 0, "stop the sampled campaign once the SDC-rate 95% CI half-width reaches this bound (inject; 0 = run the full selection)")
		progress  = fs.Bool("progress", false, "render a live progress line (campaigns) and imply -metrics")
		metricsFl = fs.Bool("metrics", false, "print a final metrics dump (Prometheus text) to stdout")
		debugAddr = fs.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}

	var reg *telemetry.Registry
	if *progress || *metricsFl || *debugAddr != "" {
		reg = telemetry.Default()
		goldeneye.RegisterRuntimeCollectors(reg)
	}
	if *debugAddr != "" {
		bound, shutdown, derr := telemetry.ServeDebug(*debugAddr, reg)
		if derr != nil {
			return derr
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /metrics.json, /debug/pprof/)\n", bound)
	}
	if *metricsFl || *progress {
		defer func() {
			fmt.Println("\n== metrics ==")
			reg.WritePrometheus(os.Stdout)
		}()
	}

	if cmd == "range" {
		exper.Table1(os.Stdout)
		return nil
	}
	if cmd == "models" {
		ds := dataset.New(dataset.Default())
		for _, name := range models.Names() {
			m, err := models.Build(name, ds.Config.Classes, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %8d params\n", name, nn.ParamCount(m))
		}
		return nil
	}

	// formatSet reports whether -format was passed explicitly: with a
	// -format-map, an untouched -format default must not also become the
	// injection format (the assignment's roles resolve it instead).
	formatSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "format" {
			formatSet = true
		}
	})

	// parseAssignment resolves the -format-map flag (nil when unset).
	parseAssignment := func() (*goldeneye.FormatAssignment, error) {
		if *formatMap == "" {
			return nil, nil
		}
		return goldeneye.ParseFormatMap(*formatMap)
	}

	// buildCampaign assembles the campaign configuration shared by the
	// local and remote inject paths. Layer may stay -1: the executing side
	// (simulator or daemon) resolves the model's default injection layer.
	// With a -format-map, the assignment drives emulation and -format is
	// honored only when passed explicitly (as the injection format).
	buildCampaign := func() (goldeneye.CampaignConfig, error) {
		asg, err := parseAssignment()
		if err != nil {
			return goldeneye.CampaignConfig{}, err
		}
		cfg := goldeneye.CampaignConfig{
			Assignment: asg,
			Injections: *n,
			Seed:       *seed,
			Layer:      *layer,
			BatchSize:  *packBatch,
			UseRanger:  *ranger,
			MaxAborts:  *maxAborts,
		}
		if asg == nil || formatSet {
			if cfg.Format, err = goldeneye.ParseFormat(*format); err != nil {
				return goldeneye.CampaignConfig{}, err
			}
		}
		if asg == nil {
			cfg.EmulateNetwork = true
		}
		if *detectors != "" {
			if cfg.Detectors, err = goldeneye.ParseDetectors(*detectors); err != nil {
				return goldeneye.CampaignConfig{}, err
			}
			if cfg.Recovery, err = goldeneye.ParseRecovery(*recovery); err != nil {
				return goldeneye.CampaignConfig{}, err
			}
		}
		switch *site {
		case "value":
			cfg.Site = inject.SiteValue
		case "metadata":
			cfg.Site = inject.SiteMetadata
		case "accum":
			cfg.Site = inject.SiteAccum
		default:
			return goldeneye.CampaignConfig{}, fmt.Errorf("unknown site %q (want value, metadata, or accum)", *site)
		}
		switch *target {
		case "neuron":
			cfg.Target = inject.TargetNeuron
		case "weight":
			cfg.Target = inject.TargetWeight
		default:
			return goldeneye.CampaignConfig{}, fmt.Errorf("unknown target %q", *target)
		}
		if cfg.Sampling, err = goldeneye.ParseSamplingPlan(*sample, *sampleStr, *prune, *pruneEps, *targetCI); err != nil {
			return goldeneye.CampaignConfig{}, err
		}
		return cfg, nil
	}

	// Fleet submission: shard the campaign across several daemons and
	// merge, byte-identical to a single node at workers=shards.
	if cmd == "inject" && *fleetURLs != "" {
		cfg, err := buildCampaign()
		if err != nil {
			return err
		}
		return runFleetInject(ctx, *fleetURLs, *model, *samples, *batch, *fleetN, *fleetMin, cfg, *progress)
	}

	// Remote submission needs no local model: the daemon resolves the
	// model, pool, and default layer on its side.
	if cmd == "inject" && *serverURL != "" {
		cfg, err := buildCampaign()
		if err != nil {
			return err
		}
		if plan := cfg.Sampling; plan != nil {
			fmt.Printf("plan:          %s\n", describeSamplingPlan(plan))
		}
		return runRemoteInject(ctx, *serverURL, *model, *samples, *batch, *workers, *deadline, cfg, *progress)
	}

	m, ds, err := zoo.Pretrained(*model)
	if err != nil {
		return err
	}
	sim := goldeneye.Wrap(m, ds.ValX)
	nVal := *samples
	if nVal > ds.ValLen() {
		nVal = ds.ValLen()
	}
	evalBatch := *batch
	if evalBatch > nVal {
		evalBatch = nVal
	}
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, nVal), ds.ValY[:nVal], evalBatch)
	if err != nil {
		return err
	}

	switch cmd {
	case "layers":
		for _, l := range sim.Layers() {
			fmt.Printf("%3d  %-28s %-10s out=%d\n", l.Index, l.Name, l.Kind, sim.LayerOutputSize(l.Index))
		}
		return nil

	case "eval":
		asg, err := parseAssignment()
		if err != nil {
			return err
		}
		var emuCfg goldeneye.EmulationConfig
		label := ""
		if asg != nil {
			emuCfg = goldeneye.EmulationConfig{Assignment: asg}
			label = asg.Canonical()
		} else {
			f, ferr := goldeneye.ParseFormat(*format)
			if ferr != nil {
				return ferr
			}
			emuCfg = goldeneye.EmulationConfig{Format: f, Weights: true, Neurons: true}
			label = f.Name()
		}
		native := sim.EvaluatePool(pool, goldeneye.EmulationConfig{})
		emulated := sim.EvaluatePool(pool, emuCfg)
		fmt.Printf("model=%s samples=%d\n", *model, nVal)
		fmt.Printf("native fp32:  %.4f\n", native)
		fmt.Printf("%-12s  %.4f (Δ %+0.4f)\n", label+":", emulated, emulated-native)
		return nil

	case "inject":
		cfg, err := buildCampaign()
		if err != nil {
			return err
		}
		cfg.Pool = pool
		if cfg.Layer < 0 {
			cfg.Layer = sim.DefaultInjectionLayer(cfg.Target)
			if cfg.Layer < 0 {
				return fmt.Errorf("model %s has no injectable layers for target %s", *model, cfg.Target)
			}
		}
		cfg.Metrics = reg
		if plan := cfg.Sampling; plan != nil {
			fmt.Printf("plan:          %s\n", describeSamplingPlan(plan))
		}
		if *progress {
			stop := telemetry.WatchProgress(os.Stderr, "inject",
				reg.Counter(goldeneye.MetricCampaignInjections), int64(*n), 500*time.Millisecond)
			defer stop()
		}
		var rep *goldeneye.CampaignReport
		if *workers > 1 {
			rep, err = goldeneye.RunCampaignParallel(ctx, cfg, *workers, func() (*goldeneye.Simulator, error) {
				wm, wds, werr := zoo.Pretrained(*model)
				if werr != nil {
					return nil, werr
				}
				return goldeneye.Wrap(wm, wds.ValX), nil
			})
		} else {
			rep, err = sim.RunCampaign(ctx, cfg)
		}
		if err != nil {
			// A cancelled campaign still yields the partial report over its
			// completed prefix; print it and exit cleanly (the deferred
			// metrics dump and progress stop run on unwind).
			if rep == nil || !errors.Is(err, context.Canceled) {
				return err
			}
		}
		printInjectReport(*model, rep)
		return nil

	case "dse":
		if *mixed != "" {
			return runMixedDSE(sim, pool, *model, *mixed, *threshold)
		}
		res := sim.RunDSE(pool.X, pool.Y, *batch, goldeneye.DSEConfig{
			Family:    dse.Family(*family),
			Threshold: *threshold,
		})
		fmt.Printf("model=%s family=%s threshold=%.3f\n", *model, *family, *threshold)
		for _, node := range res.Nodes {
			mark := " "
			if node.Accepted {
				mark = "✓"
			}
			fmt.Printf("node %2d: %-14s acc=%.4f %s\n", node.Order, node.Point, node.Accuracy, mark)
		}
		if res.Best != nil {
			fmt.Printf("best: %s (acc %.4f)\n", res.Best.Point, res.Best.Accuracy)
		} else {
			fmt.Println("no acceptable design point")
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runMixedDSE runs the per-layer mixed-assignment search: spec is the
// "|"-separated candidate menu, each segment a ParseRoleFormats triple.
func runMixedDSE(sim *goldeneye.Simulator, pool *goldeneye.EvalPool, model, spec string, threshold float64) error {
	var cands []goldeneye.MixedDSECandidate
	for _, seg := range strings.Split(spec, "|") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return fmt.Errorf("mixed candidate list has an empty segment")
		}
		rf, err := goldeneye.ParseRoleFormats(seg)
		if err != nil {
			return fmt.Errorf("mixed candidate %q: %w", seg, err)
		}
		cands = append(cands, goldeneye.MixedDSECandidate{
			Name:        rf.Canonical(),
			Weights:     rf.Weights,
			Activations: rf.Activations,
			Accumulator: rf.Accumulator,
		})
	}
	res := sim.RunMixedDSE(pool, goldeneye.MixedDSEConfig{
		Candidates: cands,
		Threshold:  threshold,
	})
	fmt.Printf("model=%s mixed candidates=%d layers=%d threshold=%.3f baseline=%.4f\n",
		model, len(res.Candidates), len(res.Config.Layers), threshold, res.Config.Baseline)
	for _, node := range res.Nodes {
		mark := " "
		if node.Accepted {
			mark = "✓"
		}
		fmt.Printf("node %2d: cost=%7.1f acc=%.4f %s  %s\n",
			node.Order, node.Cost, node.Accuracy, mark, res.Describe(node))
	}
	fmt.Println("frontier (cost asc):")
	for _, node := range res.Frontier {
		fmt.Printf("  cost=%7.1f acc=%.4f  %s\n", node.Cost, node.Accuracy, res.Describe(node))
	}
	if res.Best != nil {
		fmt.Printf("best: cost=%.1f acc=%.4f  %s\n", res.Best.Cost, res.Best.Accuracy, res.Describe(*res.Best))
		fmt.Printf("      format-map: %s\n",
			goldeneye.MixedAssignment(res.Candidates, res.Best.Assignment).Canonical())
	} else {
		fmt.Println("no acceptable mixed assignment")
	}
	return nil
}

// describeSamplingPlan renders the one-line plan summary printed before a
// sampled campaign runs.
func describeSamplingPlan(plan *sampling.Plan) string {
	parts := []string{fmt.Sprintf("sample %g", plan.Fraction)}
	if len(plan.Strata) > 0 {
		names := make([]string, 0, len(plan.Strata))
		for name := range plan.Strata {
			names = append(names, name)
		}
		sort.Strings(names)
		over := make([]string, len(names))
		for i, name := range names {
			over[i] = fmt.Sprintf("%s=%g", name, plan.Strata[name])
		}
		parts = append(parts, "strata "+strings.Join(over, ","))
	}
	if plan.Prune {
		parts = append(parts, fmt.Sprintf("prune ε=%g", plan.PruneEpsilon()))
	}
	if plan.TargetCI > 0 {
		parts = append(parts, fmt.Sprintf("stop at CI ±%g (review every %d)", plan.TargetCI, plan.Interval()))
	}
	return strings.Join(parts, ", ")
}

// printInjectReport renders a campaign report from its own resolved
// configuration, so local and remote runs print identically.
func printInjectReport(model string, rep *goldeneye.CampaignReport) {
	cfg := rep.Config
	formatLabel := "-"
	switch {
	case cfg.Format != nil:
		formatLabel = cfg.Format.Name()
	case cfg.Assignment != nil:
		formatLabel = cfg.Assignment.Canonical()
	}
	fmt.Printf("model=%s format=%s layer=%d site=%s target=%s injections=%d\n",
		model, formatLabel, cfg.Layer, cfg.Site, cfg.Target, rep.Injections)
	if cfg.Format != nil && cfg.Assignment != nil {
		fmt.Printf("assignment:    %s\n", cfg.Assignment.Canonical())
	}
	fmt.Printf("mean ΔLoss:    %.5f (±%.5f at 95%%)\n", rep.MeanDeltaLoss(), rep.DeltaLoss.CI95())
	fmt.Printf("mismatch rate: %.4f (%d/%d)\n", rep.MismatchRate(), rep.Mismatches, rep.Injections)
	fmt.Printf("non-finite:    %d\n", rep.NonFinite)
	if rep.Aborted > 0 {
		fmt.Printf("aborted:       %d (degraded mode)\n", rep.Aborted)
	}
	if len(cfg.Detectors) > 0 {
		fmt.Printf("detected:      %d (coverage %.3f, recovery %s, recovered %.3f)\n",
			rep.Detected, rep.DetectionCoverage(), cfg.Recovery, rep.RecoveryRate())
		for _, spec := range cfg.Detectors {
			st := rep.PerDetector[spec.Kind]
			fmt.Printf("  %-9s detections=%d recovered=%d false-positives=%d/%d\n",
				spec.Kind, st.Detections, st.Recovered, st.FalsePositives, st.FaultFreeRuns)
		}
	}
	if sr := rep.Sampling; sr != nil {
		fmt.Printf("sampling:      fault space %d → executed %d (pruned %d analytic, skipped %d)\n",
			sr.FaultSpace(), sr.ExecutedTotal(), sr.PrunedTotal(), sr.SkippedTotal())
		fmt.Printf("SDC estimate:  %.4f ± %.4f (95%% CI)\n", sr.SDCRate(), sr.CIHalfWidth())
		if sr.StopIndex > 0 {
			fmt.Printf("early stop:    CI target reached at fault-space index %d of %d\n",
				sr.StopIndex, cfg.Injections)
		}
	}
	if rep.Interrupted {
		fmt.Fprintln(os.Stderr, "goldeneye: campaign interrupted; the report covers the completed injections")
	}
}

// runFleetInject shards the campaign across a fleet of goldeneyed daemons
// through an in-process coordinator and prints the merged report, which is
// byte-identical to a single-node run at workers equal to the shard count.
// Node failures are survived as long as -fleet-min nodes stay healthy; a
// degraded completion is flagged on stderr.
func runFleetInject(ctx context.Context, urls, model string, samples, batch, shards, minNodes int, cfg goldeneye.CampaignConfig, showProgress bool) error {
	var addrs []string
	for _, a := range strings.Split(urls, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if samples > 0 && batch > samples {
		batch = samples
	}
	spec := &server.JobSpec{
		Model:     model,
		Samples:   samples,
		EvalBatch: batch,
		Campaign:  cfg,
	}
	co, err := fleet.New(addrs, fleet.Options{
		Shards:   shards,
		MinNodes: minNodes,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	var onProgress func(done, total int)
	if showProgress {
		onProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rinject %d/%d across %d nodes", done, total, len(addrs))
		}
	}
	rep, err := co.Run(ctx, spec, onProgress)
	if showProgress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		var insuff *fleet.InsufficientFleetError
		if errors.As(err, &insuff) {
			fmt.Fprintf(os.Stderr, "goldeneye: fleet collapsed below %d healthy nodes; %d shard reports completed before the failure\n",
				insuff.Min, len(insuff.Completed))
		}
		return err
	}
	if rep.Degraded {
		fmt.Fprintf(os.Stderr, "goldeneye: fleet finished DEGRADED (lost nodes: %s); the report is still exact\n",
			strings.Join(rep.Stats.NodesLost, ", "))
	}
	if rep.Stats.Reassigned > 0 || rep.Stats.Stolen > 0 || rep.Stats.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "fleet recovery: %d shards reassigned, %d stolen, %d replayed idempotently\n",
			rep.Stats.Reassigned, rep.Stats.Stolen, rep.Stats.Replayed)
	}
	printInjectReport(model, rep.CampaignReport)
	return nil
}

// runRemoteInject submits the campaign to a goldeneyed daemon, follows its
// SSE progress stream, and prints the final report. SIGINT cancels the
// remote job before returning, so an interrupted submission doesn't leave
// the daemon running an orphan campaign.
func runRemoteInject(ctx context.Context, base, model string, samples, batch, workers int, deadline time.Duration, cfg goldeneye.CampaignConfig, showProgress bool) error {
	if samples > 0 && batch > samples {
		batch = samples // same clamp the local path applies to its pool
	}
	spec := &server.JobSpec{
		Model:           model,
		Samples:         samples,
		EvalBatch:       batch,
		Workers:         workers,
		DeadlineSeconds: deadline.Seconds(),
		Campaign:        cfg,
	}
	c := client.New(base)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if st.State == server.JobDone {
		rep, rerr := c.Report(ctx, st.ID)
		if rerr != nil {
			return rerr
		}
		fmt.Fprintf(os.Stderr, "job %s served from %s cache\n", st.ID, base)
		printInjectReport(model, rep)
		return nil
	}
	fmt.Fprintf(os.Stderr, "submitted job %s to %s\n", st.ID, base)

	var onProgress func(server.JobStatus)
	if showProgress {
		onProgress = func(p server.JobStatus) {
			fmt.Fprintf(os.Stderr, "\rinject %d/%d (%s) mismatches=%d detected=%d",
				p.Done, p.Total, p.State, p.Mismatches, p.Detected)
		}
	}
	rep, err := c.Stream(ctx, st.ID, onProgress)
	if showProgress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		if ctx.Err() != nil {
			// Local interrupt: stop the remote job too, off the dying ctx.
			cancelCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if cerr := c.Cancel(cancelCtx, st.ID); cerr == nil {
				fmt.Fprintf(os.Stderr, "goldeneye: interrupted; cancelled remote job %s\n", st.ID)
			}
		}
		return err
	}
	printInjectReport(model, rep)
	return nil
}
