package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunRange(t *testing.T) {
	if err := run(context.Background(), []string{"range"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoArgs(t *testing.T) {
	err := run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("expected usage error, got %v", err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run(context.Background(), []string{"frobnicate"}); err == nil {
		t.Fatal("expected unknown-command error")
	}
}

func TestRunLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"layers", "-model", "mlp"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEval(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"eval", "-model", "mlp", "-format", "fp8_e4m3", "-samples", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEvalBadFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"eval", "-model", "mlp", "-format", "bogus"}); err == nil {
		t.Fatal("expected format parse error")
	}
}

func TestRunInject(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	args := []string{"inject", "-model", "mlp", "-format", "bfp_e5m5",
		"-site", "metadata", "-n", "20", "-samples", "16"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
}

func TestRunInjectParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	args := []string{"inject", "-model", "mlp", "-format", "fp16",
		"-n", "24", "-samples", "8", "-workers", "3"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
}

func TestRunInjectBadSiteTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"inject", "-model", "mlp", "-site", "nowhere"}); err == nil {
		t.Fatal("expected site error")
	}
	if err := run(context.Background(), []string{"inject", "-model", "mlp", "-target", "nothing"}); err == nil {
		t.Fatal("expected target error")
	}
}

func TestRunDSECommand(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the model zoo")
	}
	if err := run(context.Background(), []string{"dse", "-model", "mlp", "-family", "int", "-samples", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownModel(t *testing.T) {
	if err := run(context.Background(), []string{"eval", "-model", "lenet9000"}); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

func TestRunModels(t *testing.T) {
	if err := run(context.Background(), []string{"models"}); err != nil {
		t.Fatal(err)
	}
}
