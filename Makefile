# Tier-1: the gate every PR must keep green.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-2: stricter gate for telemetry-touched packages — vet, formatting,
# and the race detector over the packages whose hot paths share atomics
# across goroutines (telemetry registry, tensor/numfmt/dse stats counters,
# nn timing hooks, parallel campaigns in the root package).
RACE_PKGS = ./internal/telemetry ./internal/tensor ./internal/nn \
            ./internal/numfmt ./internal/inject ./internal/dse \
            ./internal/checkpoint ./internal/detect ./internal/exper \
            ./internal/server ./internal/server/journal \
            ./internal/server/client ./internal/chaos ./internal/fleet \
            ./internal/sampling .

.PHONY: check
check:
	go vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet still ran)"; fi
	go test -shuffle=on ./...
	go test -race $(RACE_PKGS)
	$(MAKE) stress-chaos
	$(MAKE) stress-fleet
	$(MAKE) stress-sample
	$(MAKE) bench-smoke

# Cancellation paths are the raciest part of the lifecycle: a cancel can
# land while workers are mid-injection, mid-merge, or not yet started.
# Repeated race-detector runs shake out orderings a single run misses.
.PHONY: stress-cancel
stress-cancel:
	go test -race -run Cancel -count=5 .

# Detection subsystem gate: the fault-free false-positive invariant (every
# calibrated detector rides a campaign without flagging a clean inference)
# plus serial/batched/parallel detection bit-identity, repeated under the
# race detector to shake out shared calibration state between shards.
.PHONY: stress-detect
stress-detect:
	go test -race -run 'TestCampaignFaultFreeZeroFalsePositives|TestDetect' -count=3 .
	go test -race -count=2 ./internal/detect

# Campaign batching: benchstat-comparable sub-benchmarks (pipe two runs
# into `benchstat old.txt new.txt`) plus the machine-readable performance
# matrix in BENCH_campaign.json — format family × kernel path × batch size
# × GOMAXPROCS, bit-identity re-checked per row. `make bench-all` runs the
# full figure-by-figure sweep; docs/PERFORMANCE.md explains the output.
.PHONY: bench
bench:
	go test -run NONE -bench 'BenchmarkCampaignBatched|BenchmarkAssignmentOverhead' -benchmem -count 3 .
	GOLDENEYE_BENCH_CAMPAIGN=BENCH_campaign.json go test -run TestCampaignBenchReport -v -timeout 30m .

# Fast correctness slice of the matrix, wired into `make check`: a reduced
# matrix whose only hard assertion is that every row stays bit-identical
# to its family's serial generic reference. Throughput numbers from this
# target are not meaningful; use `make bench` for those.
.PHONY: bench-smoke
bench-smoke:
	GOLDENEYE_BENCH_CAMPAIGN=$${TMPDIR:-/tmp}/goldeneye_bench_smoke.json GOLDENEYE_BENCH_SMOKE=1 \
		go test -run TestCampaignBenchReport .

# Compare two matrix files: `make benchdiff OLD=old.json NEW=BENCH_campaign.json`.
# Exits non-zero on a >10% injections/sec regression in any matching row,
# or on any bit_identical=false row in the new file.
.PHONY: benchdiff
benchdiff:
	go run ./cmd/benchdiff -old $(OLD) -new $(NEW)

.PHONY: bench-all
bench-all:
	go test -bench=. -benchmem ./...

# Fault-tolerance gate: the chaos suite (dropped connections, stalled SSE
# streams, full-queue bursts), journal crash-replay, cancel/complete races,
# and the kill-mid-job end-to-end (a journaling daemon SIGKILLed mid-
# campaign, restarted, every job recovered byte-identically) — all under
# the race detector with shuffled test order.
.PHONY: stress-chaos
stress-chaos:
	go test -race -shuffle=on ./internal/chaos ./internal/server/journal
	go test -race -shuffle=on -run 'TestIdempotent|TestReadyz|TestDeadline|TestJournalReplay|TestCancelRaces|TestSSEResume' ./internal/server
	go test -race -shuffle=on -run 'TestSubmitRetries|TestIdempotentRetry|TestStreamResumes|TestStreamStall|TestBurstSubmit' ./internal/server/client
	go test -race -run TestKillMidJobRecovers ./cmd/goldeneyed

# Distributed-fabric gate: fleet coordinator unit tests (reassignment,
# quarantine/re-admission, insufficient-fleet degradation, idempotent
# replay, shard-merge byte-identity) under the race detector, plus the
# multi-daemon chaos end-to-end: a three-node fleet with one daemon
# SIGKILLed and one network-partitioned mid-campaign must merge a report
# byte-identical to an unfailed single-node run, with completed shards
# replayed idempotently rather than re-executed.
.PHONY: stress-fleet
stress-fleet:
	go test -race -shuffle=on ./internal/fleet
	go test -race -run 'TestFleetSurvivesKillAndPartition|TestFleetCoordinatorModeE2E' ./cmd/goldeneyed

# Smart-campaign gate: the estimator property tests — fraction-1.0
# byte-identity per format family, shard-merge permutation invariance of
# the per-stratum moments, full-fault-space pruning accounting, and the
# sequential-stopping acceptance bound — under the race detector (the CI
# review barrier synchronizes parallel workers), repeated to shake out
# barrier orderings, plus the estimator unit tests.
.PHONY: stress-sample
stress-sample:
	go test -race -run 'TestSampled|TestParseSamplingPlan' -count=2 .
	go test -race -count=2 ./internal/sampling

# Campaign-service smoke gate: boots a real goldeneyed process on a random
# port, submits a tiny campaign through the typed client, asserts the SSE
# stream terminates with a completed report and a resubmission hits the
# persistent cache, then SIGTERMs the daemon and checks it drains cleanly.
.PHONY: serve-smoke
serve-smoke:
	go test ./cmd/goldeneyed -run TestDaemonSmoke -v
	go test ./internal/server ./internal/server/client
