package goldeneye_test

import (
	"fmt"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// ExampleParseFormat shows textual format specifications, including the
// emerging formats.
func ExampleParseFormat() {
	for _, spec := range []string{"fp8_e4m3", "bfp_e5m5", "posit8", "nf4"} {
		f, err := goldeneye.ParseFormat(spec)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%s: %d bits\n", f.Name(), f.BitWidth())
	}
	// Output:
	// fp8_e4m3: 8 bits
	// bfp_e5m5_b0: 6 bits
	// posit8_es0: 8 bits
	// nf4: 4 bits
}

// ExampleTable1Rows regenerates two rows of the paper's Table I.
func ExampleTable1Rows() {
	for _, row := range goldeneye.Table1Rows() {
		if row.Label == "INT8 (symmetric)" || row.Label == "FP8 (e4m3) w/o DN" {
			fmt.Printf("%s: %.2f dB\n", row.Label, row.RangeDB)
		}
	}
	// Output:
	// INT8 (symmetric): 42.08 dB
	// FP8 (e4m3) w/o DN: 83.73 dB
}

// ExampleFormat_quantization demonstrates the paper's four-method Format
// API directly: tensor-level emulation and the scalar bitstring path used
// by fault injection (quantize → flip → dequantize).
func ExampleFormat_quantization() {
	format := numfmt.FP8E4M3(true)
	x := tensor.FromSlice([]float32{1.0, 0.3, -2.5}, 3)

	// Methods 1+2 fused: the values the hardware would actually compute on.
	emulated := format.Emulate(x)
	fmt.Println("emulated:", emulated.Data())

	// Methods 3+4 with a bit flip in between — one fault injection. The
	// flip raises 1.0's exponent field into the reserved pattern: a single
	// upset turned a benign value into +Inf, the class of corruption the
	// paper reports for exponent bits (§II-B).
	enc := format.Quantize(x)
	enc.Codes[0] = enc.Codes[0].Flip(6) // high exponent bit of element 0
	faulty := format.Dequantize(enc)
	fmt.Println("faulty:  ", faulty.Data())
	// Output:
	// emulated: [1 0.3125 -2.5]
	// faulty:   [+Inf 0.3125 -2.5]
}
