package goldeneye

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"goldeneye/internal/detect"
	"goldeneye/internal/inject"
	"goldeneye/internal/sampling"
)

// wireConfigs spans the encodable configuration space: presets and generic
// format geometries, every site/target/fault-kind spelling, detector
// pipelines with recovery policies.
func wireConfigs(t *testing.T) map[string]CampaignConfig {
	t.Helper()
	mustFormat := func(spec string) Format {
		f, err := ParseFormat(spec)
		if err != nil {
			t.Fatalf("ParseFormat(%q): %v", spec, err)
		}
		return f
	}
	return map[string]CampaignConfig{
		"minimal": {
			Format:     mustFormat("fp16"),
			Injections: 100,
			Seed:       1,
			Layer:      3,
		},
		"generic-format": {
			Format:            mustFormat("bfp_e5m5_b16"),
			Injections:        1000,
			FlipsPerInjection: 2,
			Seed:              42,
			Layer:             7,
			Site:              inject.SiteMetadata,
			Target:            inject.TargetWeight,
			FaultKind:         inject.KindStuckAt1,
			BatchSize:         32,
			UseRanger:         true,
			EmulateNetwork:    true,
			QuantizeWeights:   true,
			MeasureDMR:        true,
			MaxAborts:         5,
		},
		"nodenormal": {
			Format:     mustFormat("fp_e4m3_nodn"),
			Injections: 10,
			Seed:       7,
			Layer:      -1,
			FaultKind:  inject.KindBurst,
		},
		"detectors": {
			Format:     mustFormat("int8"),
			Injections: 50,
			Seed:       3,
			Layer:      2,
			Site:       inject.SiteValue,
			Target:     inject.TargetNeuron,
			Detectors: []detect.Spec{
				{Kind: "ranger", Margin: 1.5},
				{Kind: "sentinel"},
			},
			Recovery: detect.PolicyClamp,
		},
	}
}

// TestCampaignConfigRoundTrip pins the versioned wire contract: every field
// that travels must survive encode→decode, and re-encoding the decoded
// config must be byte-identical (the stability the campaign service's
// content-addressed cache keys rely on).
func TestCampaignConfigRoundTrip(t *testing.T) {
	for name, cfg := range wireConfigs(t) {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(cfg)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if !bytes.Contains(data, []byte(`"version":1`)) {
				t.Fatalf("encoding carries no version: %s", data)
			}
			var back CampaignConfig
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}

			if back.Format.Name() != cfg.Format.Name() {
				t.Errorf("Format: got %q, want %q", back.Format.Name(), cfg.Format.Name())
			}
			if back.Site != cfg.Site || back.Target != cfg.Target || back.FaultKind != cfg.FaultKind {
				t.Errorf("site/target/kind: got %v/%v/%v, want %v/%v/%v",
					back.Site, back.Target, back.FaultKind, cfg.Site, cfg.Target, cfg.FaultKind)
			}
			if back.Layer != cfg.Layer || back.Injections != cfg.Injections ||
				back.FlipsPerInjection != cfg.FlipsPerInjection || back.Seed != cfg.Seed ||
				back.BatchSize != cfg.BatchSize || back.MaxAborts != cfg.MaxAborts {
				t.Errorf("scalar fields drifted: got %+v", back)
			}
			if back.UseRanger != cfg.UseRanger || back.EmulateNetwork != cfg.EmulateNetwork ||
				back.QuantizeWeights != cfg.QuantizeWeights || back.MeasureDMR != cfg.MeasureDMR {
				t.Errorf("flag fields drifted: got %+v", back)
			}
			if len(back.Detectors) != len(cfg.Detectors) {
				t.Fatalf("detectors: got %d, want %d", len(back.Detectors), len(cfg.Detectors))
			}
			for i := range cfg.Detectors {
				if back.Detectors[i].Kind != cfg.Detectors[i].Kind ||
					back.Detectors[i].Margin != cfg.Detectors[i].Margin {
					t.Errorf("detector %d: got %+v, want %+v", i, back.Detectors[i], cfg.Detectors[i])
				}
			}
			if back.Recovery != cfg.Recovery {
				t.Errorf("Recovery: got %v, want %v", back.Recovery, cfg.Recovery)
			}

			again, err := json.Marshal(back)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Errorf("encode→decode→encode not byte-stable:\n first: %s\nsecond: %s", data, again)
			}
		})
	}
}

// TestCampaignReportRoundTrip checks the report wrapper survives the wire
// byte-stably, including the bit-exact Welford accumulators.
func TestCampaignReportRoundTrip(t *testing.T) {
	cfg := wireConfigs(t)["detectors"]
	rep := CampaignReport{
		Config:   cfg,
		Detected: 12,
		Aborted:  1,
	}
	rep.Injections = 49
	rep.Mismatches = 17
	rep.DeltaLoss.Add(0.25)
	rep.DeltaLoss.Add(-1.5)
	rep.DeltaLoss.Add(3.75)

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back CampaignReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Injections != rep.Injections || back.Mismatches != rep.Mismatches ||
		back.Detected != rep.Detected || back.Aborted != rep.Aborted {
		t.Errorf("counters drifted: got %+v", back)
	}
	if back.DeltaLoss.Mean() != rep.DeltaLoss.Mean() {
		t.Errorf("DeltaLoss mean not bit-exact: got %v, want %v",
			back.DeltaLoss.Mean(), rep.DeltaLoss.Mean())
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("report encoding not byte-stable:\n first: %s\nsecond: %s", data, again)
	}
}

// TestWireRejectsNewerVersions pins forward-compatibility behavior: a
// daemon must refuse documents from a newer schema rather than misread
// them.
func TestWireRejectsNewerVersions(t *testing.T) {
	var cfg CampaignConfig
	err := json.Unmarshal([]byte(`{"version":99,"format":"fp16","injections":1,"seed":1,"layer":0}`), &cfg)
	if err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("config: want newer-version rejection, got %v", err)
	}
	var rep CampaignReport
	err = json.Unmarshal([]byte(`{"version":99,"result":{},"config":{"version":1,"layer":0,"injections":1,"seed":1}}`), &rep)
	if err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("report: want newer-version rejection, got %v", err)
	}
}

// TestWireV2AssignmentRoundTrip pins the v2 surface: a config carrying a
// format assignment (or an accumulator site) stamps version 2, survives
// encode→decode with the assignment intact, and re-encodes byte-stably.
func TestWireV2AssignmentRoundTrip(t *testing.T) {
	asg, err := ParseFormatMap("w:bf16,a:fp8_e4m3,acc:fp32;4=a:fp16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := CampaignConfig{
		Assignment: asg,
		Injections: 200,
		Seed:       9,
		Layer:      4,
		Site:       inject.SiteAccum,
		Target:     inject.TargetNeuron,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Contains(data, []byte(`"version":2`)) {
		t.Fatalf("assignment config should stamp v2: %s", data)
	}
	var back CampaignConfig
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Assignment == nil || back.Assignment.Canonical() != asg.Canonical() {
		t.Fatalf("assignment drifted: got %v, want %v", back.Assignment, asg)
	}
	if back.Site != inject.SiteAccum || back.Format != nil {
		t.Fatalf("site/format drifted: %+v", back)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("v2 encoding not byte-stable:\n first: %s\nsecond: %s", data, again)
	}

	// The accumulator site alone (no assignment: native fp32 register)
	// also needs v2 — a v1 decoder has no "accum" site spelling.
	accumOnly := CampaignConfig{Format: cfg.Assignment.Default.Activations,
		Injections: 1, Seed: 1, Layer: 0, Site: inject.SiteAccum}
	data2, err := json.Marshal(accumOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data2, []byte(`"version":2`)) {
		t.Fatalf("accum-site config should stamp v2: %s", data2)
	}

	// A report wrapping a v2 config is itself stamped v2.
	rep := CampaignReport{Config: cfg}
	repData, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(repData, []byte(`"version":2`)) {
		t.Fatalf("v2 report not stamped: %s", repData)
	}
	var repBack CampaignReport
	if err := json.Unmarshal(repData, &repBack); err != nil {
		t.Fatalf("report unmarshal: %v", err)
	}
	if repBack.Config.Assignment.Canonical() != asg.Canonical() {
		t.Fatal("report round-trip lost the assignment")
	}
}

// TestWireV2StrictDecoding: v2 documents decode strictly (unknown fields
// are errors), while v1 documents keep the lenient legacy decoding.
func TestWireV2StrictDecoding(t *testing.T) {
	var cfg CampaignConfig
	v2 := `{"version":2,"format":"fp16","injections":1,"seed":1,"layer":0,"bogus_field":true}`
	if err := json.Unmarshal([]byte(v2), &cfg); err == nil ||
		!strings.Contains(err.Error(), "bogus_field") {
		t.Errorf("v2 with unknown field: want strict rejection, got %v", err)
	}
	v1 := `{"version":1,"format":"fp16","injections":1,"seed":1,"layer":0,"bogus_field":true}`
	if err := json.Unmarshal([]byte(v1), &cfg); err != nil {
		t.Errorf("v1 with unknown field must stay lenient, got %v", err)
	}
	// An invalid assignment inside a v2 document is a decode error, not a
	// deferred crash.
	badAsg := `{"version":2,"injections":1,"seed":1,"layer":0,` +
		`"assignment":{"default":{"weights":"nosuchformat"}}}`
	if err := json.Unmarshal([]byte(badAsg), &cfg); err == nil {
		t.Error("unparseable assignment format must fail decoding")
	}
}

// TestWireV4SamplingRoundTrip pins the v4 surface: a config carrying an
// active sampling plan stamps version 4, survives encode→decode with the
// plan intact, and re-encodes byte-stably; exhaustive configs never emit
// the field, and a report's estimator state round-trips bit-exactly.
func TestWireV4SamplingRoundTrip(t *testing.T) {
	f, err := ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := CampaignConfig{
		Format:     f,
		Injections: 200,
		Seed:       9,
		Layer:      2,
		Sampling: &sampling.Plan{
			Fraction:   0.25,
			Strata:     map[string]float64{"exponent": 1},
			Prune:      true,
			TargetCI:   0.05,
			CheckEvery: 64,
		},
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Contains(data, []byte(`"version":4`)) {
		t.Fatalf("sampled config should stamp v4: %s", data)
	}
	var back CampaignConfig
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	p := back.Sampling
	if p == nil || p.Fraction != 0.25 || !p.Prune || p.TargetCI != 0.05 ||
		p.CheckEvery != 64 || p.Strata["exponent"] != 1 {
		t.Fatalf("sampling plan drifted: %+v", p)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("v4 encoding not byte-stable:\n first: %s\nsecond: %s", data, again)
	}

	// Exhaustive configs keep their pre-v4 bytes: no version bump, no
	// sampling field.
	plain := CampaignConfig{Format: f, Injections: 1, Seed: 1, Layer: 0}
	data2, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data2, []byte(`"sampling"`)) || bytes.Contains(data2, []byte(`"version":4`)) {
		t.Fatalf("exhaustive config leaked v4 surface: %s", data2)
	}

	// A report carrying estimator state is stamped v4 and its per-stratum
	// Welford moments survive the wire bit-exactly.
	rep := CampaignReport{Config: cfg, Sampling: &sampling.Report{
		Strata:    []sampling.Stratum{{Name: "exponent", Drawn: 40, Executed: 3}},
		StopIndex: 128,
	}}
	rep.Sampling.Strata[0].Mismatch.Add(1)
	rep.Sampling.Strata[0].Mismatch.Add(0)
	rep.Sampling.Strata[0].DeltaLoss.Add(0.125)
	repData, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(repData, []byte(`"version":4`)) {
		t.Fatalf("v4 report not stamped: %s", repData)
	}
	var repBack CampaignReport
	if err := json.Unmarshal(repData, &repBack); err != nil {
		t.Fatalf("report unmarshal: %v", err)
	}
	if repBack.Sampling == nil || repBack.Sampling.StopIndex != 128 ||
		repBack.Sampling.Strata[0] != rep.Sampling.Strata[0] {
		t.Fatalf("estimator state drifted over the wire: %+v", repBack.Sampling)
	}
}

// TestWireRejectsCustomDetectorFactory: code-bearing specs must not travel.
func TestWireRejectsCustomDetectorFactory(t *testing.T) {
	cfg := wireConfigs(t)["minimal"]
	cfg.Detectors = []detect.Spec{{Kind: "ranger", New: func(detect.Target) (detect.Detector, error) { return nil, nil }}}
	if _, err := json.Marshal(cfg); err == nil {
		t.Error("want marshal error for detector with custom factory")
	}
}
