module goldeneye

go 1.22
