package goldeneye_test

import (
	"context"
	"math"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/zoo"
)

func mlpBuilder(t *testing.T) func() (*goldeneye.Simulator, error) {
	t.Helper()
	return func() (*goldeneye.Simulator, error) {
		model, ds, err := zoo.Pretrained("mlp")
		if err != nil {
			return nil, err
		}
		return goldeneye.Wrap(model, ds.ValX.Slice(0, 1)), nil
	}
}

func TestParallelCampaignMatchesSerial(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.BFPe5m5(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     120,
		Seed:           17,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		UseRanger:      true,
		EmulateNetwork: true,
		KeepTrace:      true,
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 4, mlpBuilder(t))
	if err != nil {
		t.Fatal(err)
	}

	if parallel.Injections != serial.Injections ||
		parallel.Mismatches != serial.Mismatches ||
		parallel.NonFinite != serial.NonFinite {
		t.Fatalf("counts differ: serial %+v, parallel %+v",
			serial.CampaignResult, parallel.CampaignResult)
	}
	if math.Abs(parallel.MeanDeltaLoss()-serial.MeanDeltaLoss()) > 1e-9 {
		t.Fatalf("mean ΔLoss differs: %v vs %v",
			parallel.MeanDeltaLoss(), serial.MeanDeltaLoss())
	}
	if math.Abs(parallel.DeltaLoss.Variance()-serial.DeltaLoss.Variance()) > 1e-6 {
		t.Fatalf("variance differs: %v vs %v",
			parallel.DeltaLoss.Variance(), serial.DeltaLoss.Variance())
	}
	// The interleaved traces must carry identical faults in order.
	if len(parallel.Trace) != len(serial.Trace) {
		t.Fatalf("trace lengths differ")
	}
	for i := range serial.Trace {
		if serial.Trace[i].Fault != parallel.Trace[i].Fault ||
			serial.Trace[i].Sample != parallel.Trace[i].Sample ||
			serial.Trace[i].Mismatch != parallel.Trace[i].Mismatch {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, serial.Trace[i], parallel.Trace[i])
		}
	}
}

func TestParallelCampaignSingleWorkerFallsBack(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[0],
		Injections: 20,
		Seed:       5,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	}
	rep, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 1, mlpBuilder(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections != 20 {
		t.Fatalf("ran %d injections", rep.Injections)
	}
}

func TestParallelCampaignPropagatesBuildError(t *testing.T) {
	cfg := goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Injections: 10,
	}
	_, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 4, func() (*goldeneye.Simulator, error) {
		return nil, errBoom
	})
	if err == nil {
		t.Fatal("expected build error")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestParallelWeightCampaign(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetWeight,
		Layer:      sim.WeightedLayers()[0],
		Injections: 40,
		Seed:       3,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 3, mlpBuilder(t))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Mismatches != parallel.Mismatches {
		t.Fatalf("weight-campaign mismatches differ: %d vs %d",
			serial.Mismatches, parallel.Mismatches)
	}
}
