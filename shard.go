package goldeneye

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"goldeneye/internal/metrics"
	"goldeneye/internal/sampling"
)

// ShardConfigs splits one campaign into k deterministic stride shards:
// shard s executes the injection indices i ≡ s (mod k) serially, exactly
// the assignment RunCampaignParallel gives worker s of k. k is clamped to
// cfg.Injections (empty shards are invalid) and to at least 1. With k == 1
// the single returned config is unsharded — byte-identical on the wire to
// the original — so a one-node "fleet" degenerates to a plain remote job.
//
// The returned configs share cfg's runtime pointers (Pool, Metrics,
// Progress); wire encoding drops those, so shards travel cleanly.
func ShardConfigs(cfg CampaignConfig, k int) []CampaignConfig {
	if k > cfg.Injections {
		k = cfg.Injections
	}
	if k < 1 {
		k = 1
	}
	shards := make([]CampaignConfig, k)
	for s := range shards {
		shards[s] = cfg
		if k > 1 {
			shards[s].ShardIndex = s
			shards[s].ShardCount = k
		} else {
			shards[s].ShardIndex = 0
			shards[s].ShardCount = 0
		}
	}
	return shards
}

// ShardMergeError reports a shard-report set that cannot be merged into a
// campaign report: missing or duplicate shard indices, mismatched shard
// counts or campaign configurations, or a shard whose executed injection
// count does not cover its stride slice.
type ShardMergeError struct {
	Reason string
}

func (e *ShardMergeError) Error() string {
	return "goldeneye: shard merge: " + e.Reason
}

func shardMergeErrf(format string, args ...interface{}) error {
	return &ShardMergeError{Reason: fmt.Sprintf(format, args...)}
}

// shardlessConfigJSON is a shard config's wire encoding with the shard
// fields cleared — the canonical form used to check that every shard of a
// merge set belongs to the same campaign. Configs that cannot be encoded
// (custom detector factories) return nil and skip the comparison.
func shardlessConfigJSON(cfg CampaignConfig) []byte {
	cfg.ShardIndex, cfg.ShardCount = 0, 0
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil
	}
	return b
}

// MergeShardReports merges the K reports of a campaign's stride shards
// (ShardConfigs order, given in any permutation) into one CampaignReport
// that is byte-identical — wire encoding included — to the report a single
// node produces for the whole campaign with RunCampaignParallel at
// workers=K. Identical, that is, in every aggregate: the Welford ΔLoss
// moments merge in shard-index order exactly as the parallel merge does,
// detector breakdowns take the (deterministic, shard-invariant)
// false-positive baseline from shard 0 and sum detections across shards,
// and KeepTrace traces interleave back into injection order.
//
// The set must contain exactly one report per shard index 0..K-1, all
// agreeing on ShardCount and on the underlying campaign configuration; a
// violated invariant returns a typed *ShardMergeError. An Interrupted
// shard marks the merged report Interrupted (the fleet coordinator treats
// such shards as failed and re-dispatches them instead of merging).
//
// A single unsharded report passes through unchanged, so callers can feed
// the degenerate one-shard case without special-casing.
func MergeShardReports(reports []*CampaignReport) (*CampaignReport, error) {
	if len(reports) == 0 {
		return nil, shardMergeErrf("no shard reports")
	}
	for i, r := range reports {
		if r == nil {
			return nil, shardMergeErrf("nil report at position %d", i)
		}
	}
	if len(reports) == 1 && reports[0].Config.ShardCount <= 1 {
		return reports[0], nil
	}

	shards := make([]*CampaignReport, len(reports))
	copy(shards, reports)
	sort.Slice(shards, func(a, b int) bool {
		return shards[a].Config.ShardIndex < shards[b].Config.ShardIndex
	})
	k := shards[0].Config.ShardCount
	if len(shards) != k {
		return nil, shardMergeErrf("have %d reports for shard count %d", len(shards), k)
	}
	ref := shardlessConfigJSON(shards[0].Config)
	for s, sh := range shards {
		if sh.Config.ShardIndex != s {
			return nil, shardMergeErrf("missing or duplicate shard index %d (found %d)", s, sh.Config.ShardIndex)
		}
		if sh.Config.ShardCount != k {
			return nil, shardMergeErrf("shard %d declares shard count %d, want %d", s, sh.Config.ShardCount, k)
		}
		if enc := shardlessConfigJSON(sh.Config); ref != nil && enc != nil && !bytes.Equal(enc, ref) {
			return nil, shardMergeErrf("shard %d ran a different campaign configuration", s)
		}
		planned := sh.Config.PlannedInjections()
		if sh.Sampling != nil {
			// A sampled shard executes only its selection; completeness is
			// instead that its estimator accounted the whole stride slice.
			if covered := sh.Sampling.FaultSpace(); covered != planned && !sh.Interrupted {
				return nil, shardMergeErrf("shard %d covered %d of %d planned fault-space indices", s, covered, planned)
			}
			if executed := sh.Injections + sh.Aborted; executed != sh.Sampling.ExecutedTotal()+sh.Sampling.AbortedTotal() && !sh.Interrupted {
				return nil, shardMergeErrf("shard %d recorded %d injections but its estimator observed %d",
					s, executed, sh.Sampling.ExecutedTotal()+sh.Sampling.AbortedTotal())
			}
		} else if executed := sh.Injections + sh.Aborted; executed != planned && !sh.Interrupted {
			return nil, shardMergeErrf("shard %d executed %d of %d planned injections", s, executed, planned)
		}
	}

	cfg := shards[0].Config
	cfg.ShardIndex, cfg.ShardCount = 0, 0
	merged := &CampaignReport{Config: cfg}

	// Mirror the RunCampaignParallel merge exactly. The false-positive
	// baseline is deterministic and identical across shards, so it comes
	// from shard 0's map wholesale; the remaining shards contribute only
	// their detection and recovery counts on top of it.
	if shards[0].PerDetector != nil {
		merged.PerDetector = make(map[string]metrics.DetectorStats, len(shards[0].PerDetector))
		for name, d := range shards[0].PerDetector {
			merged.PerDetector[name] = d
		}
	}
	sampled := shards[0].Sampling != nil
	if cfg.KeepTrace && !sampled {
		merged.Trace = make([]InjectionOutcome, cfg.Injections)
	}
	if sampled {
		// Start from a zeroed report over shard 0's strata and fold every
		// shard in (shard 0 included) — the exact construction and Welford
		// merge order RunCampaignParallel uses at workers=K, so the merged
		// moments are bit-identical.
		merged.Sampling = &sampling.Report{Strata: make([]sampling.Stratum, len(shards[0].Sampling.Strata))}
		for i := range merged.Sampling.Strata {
			merged.Sampling.Strata[i].Name = shards[0].Sampling.Strata[i].Name
		}
	}
	for s, sh := range shards {
		merged.Interrupted = merged.Interrupted || sh.Interrupted
		merged.CampaignResult.Merge(sh.CampaignResult)
		merged.Detected += sh.Detected
		merged.Aborted += sh.Aborted
		merged.Recovered += sh.Recovered
		if s > 0 {
			merged.PerDetector = mergeResumeDetectors(merged.PerDetector, sh.PerDetector)
		}
		if sampled {
			if sh.Sampling == nil {
				return nil, shardMergeErrf("shard %d carries no estimator state but shard 0 does", s)
			}
			if err := merged.Sampling.Merge(sh.Sampling); err != nil {
				return nil, shardMergeErrf("shard %d: %v", s, err)
			}
		} else if sh.Sampling != nil {
			return nil, shardMergeErrf("shard %d carries estimator state but shard 0 does not", s)
		}
		if cfg.KeepTrace && !sampled {
			for j, out := range sh.Trace {
				merged.Trace[s+j*k] = out
			}
		}
	}
	if cfg.KeepTrace && sampled {
		// Sampled shard traces are sparse and carry their global injection
		// index; each shard's entries are already ascending within its stride
		// sequence. Walking global indices and consuming the owning shard's
		// next entry when it matches reassembles exactly the order the serial
		// and parallel sampled paths record.
		cursors := make([]int, k)
		for i := 0; i < cfg.Injections; i++ {
			sh := shards[i%k]
			if c := cursors[i%k]; c < len(sh.Trace) && sh.Trace[c].Index == i {
				merged.Trace = append(merged.Trace, sh.Trace[c])
				cursors[i%k]++
			}
		}
	}
	return merged, nil
}
