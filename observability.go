package goldeneye

import (
	"math"
	"time"

	"goldeneye/internal/dse"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/sampling"
	"goldeneye/internal/telemetry"
	"goldeneye/internal/tensor"
)

// ForwardSecondsMetric is the per-layer forward-time histogram family; one
// histogram exists per layer, labeled `layer="<index>:<name>(<kind>)"`.
const ForwardSecondsMetric = "goldeneye_nn_forward_seconds"

// Campaign metric names (see internal/telemetry/README.md for the naming
// rules and the full inventory).
const (
	MetricCampaignInjections = "goldeneye_campaign_injections_total"
	MetricCampaignMismatches = "goldeneye_campaign_mismatches_total"
	MetricCampaignNonFinite  = "goldeneye_campaign_nonfinite_total"
	MetricCampaignDetected   = "goldeneye_campaign_detected_total"
	MetricCampaignPlanned    = "goldeneye_campaign_injections_planned"
	MetricCampaignLatency    = "goldeneye_campaign_injection_seconds"
	MetricCampaignShardTime  = "goldeneye_campaign_shard_seconds" // labeled worker="N"
	MetricCampaignShardWork  = "goldeneye_campaign_shard_injections_total"
	MetricCampaignAborted    = "goldeneye_campaign_aborted_total"
	MetricCampaignBatches    = "goldeneye_campaign_batches_total"
	MetricCampaignOccupancy  = "goldeneye_campaign_batch_occupancy"
	MetricCampaignRate       = "goldeneye_campaign_injections_per_second"

	// Detection-pipeline instruments (populated when CampaignConfig.
	// Detectors is non-empty): per-detector detection counters and coverage
	// gauges are labeled detector="<name>".
	MetricCampaignDetections  = "goldeneye_campaign_detections_total"
	MetricCampaignRecoveries  = "goldeneye_campaign_recoveries_total"
	MetricCampaignCoverage    = "goldeneye_campaign_detector_coverage"
	MetricCampaignCalibration = "goldeneye_campaign_calibration_seconds"

	// Sampled-campaign instruments (populated when CampaignConfig.Sampling
	// is active): the estimator's dispatch accounting and interval width.
	MetricSamplingFaultSpace = "goldeneye_sampling_fault_space_total"
	MetricSamplingExecuted   = "goldeneye_sampling_executed_total"
	MetricSamplingPruned     = "goldeneye_sampling_pruned_total"
	MetricSamplingSkipped    = "goldeneye_sampling_skipped_total"
	MetricSamplingCIWidth    = "goldeneye_sampling_ci_width"
	MetricSamplingStopIndex  = "goldeneye_sampling_stop_index"
)

// occupancyBuckets bound the batch-occupancy histogram: the filled fraction
// of each batched pass (1.0 = every row carried a fault; lower values mean
// ragged tail groups or small shards wasting batch capacity).
var occupancyBuckets = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}

// RegisterRuntimeCollectors attaches snapshot-time bridges for the
// package-level counters maintained by the internal substrates (tensor
// kernel timings, numfmt quantization ops, dse exploration counters) to
// reg, so one exposition covers every layer of the stack. Registering the
// same registry twice is harmless: collector samples overwrite by name.
func RegisterRuntimeCollectors(reg *telemetry.Registry) {
	reg.RegisterCollector(func(set func(string, float64)) {
		ts := tensor.ReadOpStats()
		set("goldeneye_tensor_matmul_total", float64(ts.MatMulCalls))
		set("goldeneye_tensor_matmul_seconds_total", float64(ts.MatMulNanos)/1e9)
		set("goldeneye_tensor_matmul_flops_total", float64(ts.MatMulFLOPs))
		set("goldeneye_tensor_im2col_total", float64(ts.Im2ColCalls))
		set("goldeneye_tensor_im2col_seconds_total", float64(ts.Im2ColNanos)/1e9)

		nf := numfmt.ReadOpCounts()
		set("goldeneye_numfmt_quantize_total", float64(nf.Quantize))
		set("goldeneye_numfmt_dequantize_total", float64(nf.Dequantize))
		set("goldeneye_numfmt_emulate_total", float64(nf.Emulate))
		set("goldeneye_numfmt_elements_total", float64(nf.Elements))
		set("goldeneye_numfmt_fused_kernels_total", float64(nf.FusedKernels))
		set("goldeneye_numfmt_generic_kernels_total", float64(nf.GenericKernels))

		ds := dse.ReadSearchStats()
		set("goldeneye_dse_searches_total", float64(ds.Searches))
		set("goldeneye_dse_evaluations_total", float64(ds.Evaluations))
		set("goldeneye_dse_memo_hits_total", float64(ds.MemoHits))
		set("goldeneye_dse_accepted_total", float64(ds.Accepted))
	})
}

// layerTimingHooks returns a hook set recording per-layer forward time
// into reg's ForwardSecondsMetric histograms. Histogram lookups are cached
// per layer index; like nn.TimingHooks, the returned set carries per-pass
// state and must not be shared across concurrent contexts.
func layerTimingHooks(reg *telemetry.Registry) *nn.HookSet {
	cache := make(map[int]*telemetry.Histogram)
	return nn.TimingHooks(func(info nn.LayerInfo, d time.Duration) {
		h, ok := cache[info.Index]
		if !ok {
			h = reg.Histogram(telemetry.Label(ForwardSecondsMetric, "layer", info.String()),
				telemetry.DurationBuckets)
			cache[info.Index] = h
		}
		h.Observe(d.Seconds())
	})
}

// campaignTelemetry bundles the campaign-level instruments. A nil
// *campaignTelemetry is inert, so campaign code records unconditionally.
type campaignTelemetry struct {
	injections *telemetry.Counter
	mismatches *telemetry.Counter
	nonFinite  *telemetry.Counter
	detected   *telemetry.Counter
	aborted    *telemetry.Counter
	batches    *telemetry.Counter
	latency    *telemetry.Histogram
	occupancy  *telemetry.Histogram
	rate       *telemetry.Gauge
	start      time.Time

	// Detection-pipeline instruments. detections is keyed by detector name
	// and pre-built from the campaign config (never mutated afterwards), so
	// parallel workers share it without locking; the counters themselves
	// are atomic.
	recoveries *telemetry.Counter
	detections map[string]*telemetry.Counter
	reg        *telemetry.Registry
}

// newCampaignTelemetry fetches the campaign instruments from reg (nil reg
// → nil, inert) and publishes the planned injection count for progress
// rendering. detectors lists the armed detector names, so their labeled
// counters exist (at zero) from campaign start.
func newCampaignTelemetry(reg *telemetry.Registry, planned int, detectors []string) *campaignTelemetry {
	if reg == nil {
		return nil
	}
	reg.Gauge(MetricCampaignPlanned).Set(float64(planned))
	ct := &campaignTelemetry{
		injections: reg.Counter(MetricCampaignInjections),
		mismatches: reg.Counter(MetricCampaignMismatches),
		nonFinite:  reg.Counter(MetricCampaignNonFinite),
		detected:   reg.Counter(MetricCampaignDetected),
		aborted:    reg.Counter(MetricCampaignAborted),
		batches:    reg.Counter(MetricCampaignBatches),
		latency:    reg.Histogram(MetricCampaignLatency, telemetry.DurationBuckets),
		occupancy:  reg.Histogram(MetricCampaignOccupancy, occupancyBuckets),
		rate:       reg.Gauge(MetricCampaignRate),
		start:      time.Now(),
		reg:        reg,
	}
	if len(detectors) > 0 {
		ct.recoveries = reg.Counter(MetricCampaignRecoveries)
		ct.detections = make(map[string]*telemetry.Counter, len(detectors))
		for _, name := range detectors {
			ct.detections[name] = reg.Counter(telemetry.Label(MetricCampaignDetections, "detector", name))
		}
	}
	return ct
}

// record folds one injection outcome into the campaign counters.
func (ct *campaignTelemetry) record(mismatch, nonFinite, detected bool, d time.Duration) {
	if ct == nil {
		return
	}
	ct.injections.Inc()
	if mismatch {
		ct.mismatches.Inc()
	}
	if nonFinite {
		ct.nonFinite.Inc()
	}
	if detected {
		ct.detected.Inc()
	}
	ct.latency.Observe(d.Seconds())
	if elapsed := time.Since(ct.start).Seconds(); elapsed > 0 {
		// Campaign-level throughput: executed injections over campaign wall
		// time. A gauge (not a counter rate) so a single metrics dump at
		// campaign end already carries the paper's headline number.
		ct.rate.Set(float64(ct.injections.Value()) / elapsed)
	}
}

// recordBatch counts one batched forward pass carrying `rows` injections
// out of a `capacity`-row batch.
func (ct *campaignTelemetry) recordBatch(rows, capacity int) {
	if ct == nil {
		return
	}
	ct.batches.Inc()
	ct.occupancy.Observe(float64(rows) / float64(capacity))
}

// recordAborted counts an injection whose inference panicked and was
// recovered (degraded mode), or was discarded by a PolicyAbort detection.
func (ct *campaignTelemetry) recordAborted() {
	if ct == nil {
		return
	}
	ct.aborted.Inc()
}

// recordDetections counts one outcome's per-detector flags and, when the
// recovery policy restored the prediction, the recovery.
func (ct *campaignTelemetry) recordDetections(detectedBy []string, recovered bool) {
	if ct == nil || ct.detections == nil {
		return
	}
	for _, name := range detectedBy {
		if c, ok := ct.detections[name]; ok {
			c.Inc()
		}
	}
	if recovered && ct.recoveries != nil {
		ct.recoveries.Inc()
	}
}

// publishSampling exposes a sampled campaign's estimator accounting at
// campaign end: the covered fault space, how it was dispatched, the 95% CI
// half-width of the SDC-rate estimate (only while finite — a Prometheus
// exposition must not carry +Inf), and the early-stop boundary if sequential
// stopping fired.
func (ct *campaignTelemetry) publishSampling(rep *sampling.Report) {
	if ct == nil || ct.reg == nil || rep == nil {
		return
	}
	ct.reg.Counter(MetricSamplingFaultSpace).Add(int64(rep.FaultSpace()))
	ct.reg.Counter(MetricSamplingExecuted).Add(int64(rep.ExecutedTotal()))
	ct.reg.Counter(MetricSamplingPruned).Add(int64(rep.PrunedTotal()))
	ct.reg.Counter(MetricSamplingSkipped).Add(int64(rep.SkippedTotal()))
	if hw := rep.CIHalfWidth(); !math.IsInf(hw, 0) && !math.IsNaN(hw) {
		ct.reg.Gauge(MetricSamplingCIWidth).Set(hw)
	}
	if rep.StopIndex > 0 {
		ct.reg.Gauge(MetricSamplingStopIndex).Set(float64(rep.StopIndex))
	}
}

// publishCoverage exposes per-detector coverage gauges (detections over
// executed injections) at campaign end.
func (ct *campaignTelemetry) publishCoverage(rep *CampaignReport) {
	if ct == nil || ct.reg == nil || len(rep.PerDetector) == 0 {
		return
	}
	for name, st := range rep.PerDetector {
		ct.reg.Gauge(telemetry.Label(MetricCampaignCoverage, "detector", name)).
			Set(st.Coverage(rep.Injections + rep.Aborted))
	}
}
