package goldeneye

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"goldeneye/internal/inject"
	"goldeneye/internal/sampling"
)

// Per-index dispatch flags of a campaignSelection.
const (
	selExecute = 1 << iota // kept by the selection hash: runs a forward pass
	selPruned              // analytically masked: counted without inference
)

// campaignSelection is a sampled campaign's precomputed per-index dispatch:
// for every global injection index, the stratum its first flip classifies
// into and whether the index executes, is analytically pruned, or is skipped
// by the selection hash. It is a pure function of (config, seed, ranger
// bounds), so every execution path — serial, batched, parallel, sharded,
// fleet — computes the identical selection and the determinism contract of
// exhaustive campaigns carries over.
type campaignSelection struct {
	space   *sampling.Space
	plan    *sampling.Plan
	stratum []uint16
	flags   []uint8
}

// buildSelection classifies the campaign's full fault space and applies the
// sampling plan. It draws a fresh copy of the deterministic fault sequence
// (no forward passes), so the runner's own drawer is untouched. Returns nil
// when the campaign is exhaustive.
func (r *campaignRunner) buildSelection() *campaignSelection {
	plan := r.cfg.Sampling
	if !plan.Active() {
		return nil
	}
	sel := &campaignSelection{
		space:   sampling.NewSpace(r.injFormat, r.cfg.Site),
		plan:    plan,
		stratum: make([]uint16, r.cfg.Injections),
		flags:   make([]uint8, r.cfg.Injections),
	}
	// Pruning threshold: the target layer's calibrated activation bounds.
	// Every worker profiles the identical (deterministic) ranges, so the
	// mask — and with it the selection — is identical across workers.
	var mask uint64
	if plan.Prune && r.ranger != nil {
		if lo, hi, ok := r.ranger.Bounds(r.cfg.Layer); ok {
			mask = sampling.PruneMask(r.injFormat, float64(lo), float64(hi), plan.PruneEpsilon())
		}
	}
	drawer := newFaultDrawer(&r.cfg, r.geom)
	faults := make([]inject.Fault, r.geom.flips)
	for i := 0; i < r.cfg.Injections; i++ {
		drawer.nextInto(faults)
		st := sel.space.StratumOf(faults[0])
		sel.stratum[i] = uint16(st)
		switch {
		case mask != 0 && sampling.AllPrunable(faults, mask):
			sel.flags[i] = selPruned
		case sampling.Selected(r.cfg.Seed, i, plan.FractionFor(sel.space.Name(st))):
			sel.flags[i] = selExecute
		}
	}
	return sel
}

// executed reports whether global index i runs a forward pass. Nil-safe:
// without a selection every index executes.
func (sel *campaignSelection) executed(i int) bool {
	return sel == nil || sel.flags[i]&selExecute != 0
}

// executedCount returns the number of indices the selection keeps — the
// progress total of a sampled campaign.
func (sel *campaignSelection) executedCount() int {
	n := 0
	for _, f := range sel.flags {
		if f&selExecute != 0 {
			n++
		}
	}
	return n
}

// emptyReport returns a zeroed estimator report over the selection's strata.
func (sel *campaignSelection) emptyReport() *sampling.Report {
	return sel.space.NewReport()
}

// account folds the dispatch of the owned indices in [lo, hi) into rep:
// Drawn for every owned index, plus Pruned/Skipped for the ones that never
// execute. Executed/Aborted arrive later through observe, so a fully
// executed report satisfies Drawn = Pruned + Skipped + Executed + Aborted
// per stratum; a sequentially-stopped (or interrupted) one keeps Drawn
// above that sum — the selected-but-unexecuted mass is what holds the
// finite-population correction below one.
func (sel *campaignSelection) account(rep *sampling.Report, lo, hi int, owns func(int) bool) {
	for i := lo; i < hi; i++ {
		if !owns(i) {
			continue
		}
		s := &rep.Strata[sel.stratum[i]]
		s.Drawn++
		switch {
		case sel.flags[i]&selPruned != 0:
			s.Pruned++
		case sel.flags[i]&selExecute == 0:
			s.Skipped++
		}
	}
}

// observe folds one executed injection's outcome into rep's stratum
// moments. Aborted injections are counted but excluded from the moments,
// mirroring the campaign aggregates.
func (sel *campaignSelection) observe(rep *sampling.Report, i int, out InjectionOutcome) {
	s := &rep.Strata[sel.stratum[i]]
	if out.Aborted {
		s.Aborted++
		return
	}
	s.Executed++
	if out.Mismatch {
		s.Mismatch.Add(1)
	} else {
		s.Mismatch.Add(0)
	}
	s.DeltaLoss.Add(out.DeltaLoss)
}

// stopBounds returns the campaign's review boundaries: the sequence of
// global injection indices at which a sequentially-stopped campaign reviews
// its confidence interval, always ending at injections. Without a stopping
// target the campaign is a single window.
func stopBounds(plan *sampling.Plan, injections int) []int {
	if plan == nil || plan.TargetCI <= 0 {
		return []int{injections}
	}
	var bounds []int
	for b := plan.Interval(); b < injections; b += plan.Interval() {
		bounds = append(bounds, b)
	}
	return append(bounds, injections)
}

// ciBarrier synchronizes a parallel campaign's sequential-stopping reviews:
// workers run their review windows in lockstep, and the last worker to
// finish each round runs the stopping check over every worker's estimator
// state while the others are parked. Workers that exit early — error,
// cancellation, abort threshold — must call leave exactly once so the
// remaining workers' rounds still complete.
type ciBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members int
	arrived int
	round   int
	stopAt  int
	check   func(round int) int
}

// newCIBarrier builds a barrier over members workers. check runs once per
// round with every member's window finished and returns the boundary to stop
// at (0 = continue); its result is sticky.
func newCIBarrier(members int, check func(round int) int) *ciBarrier {
	b := &ciBarrier{members: members, check: check}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every live worker has finished round r and returns the
// (possibly newly decided) stop boundary, 0 meaning keep going.
func (b *ciBarrier) await(r int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopAt > 0 {
		return b.stopAt
	}
	b.arrived++
	if b.arrived >= b.members {
		b.finishRound()
		return b.stopAt
	}
	for b.round <= r && b.stopAt == 0 {
		b.cond.Wait()
	}
	return b.stopAt
}

// finishRound runs the stopping check and releases the round. Caller holds mu.
func (b *ciBarrier) finishRound() {
	b.stopAt = b.check(b.round)
	b.arrived = 0
	b.round++
	b.cond.Broadcast()
}

// leave removes one worker from the barrier. If the remaining workers were
// all waiting on the departing one, the round completes without it.
func (b *ciBarrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.members--
	if b.members > 0 && b.arrived >= b.members {
		b.finishRound()
	}
	b.cond.Broadcast()
}

// stopIndex returns the decided stop boundary (0 when the campaign ran its
// full selection).
func (b *ciBarrier) stopIndex() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stopAt
}

// ParseSamplingPlan assembles and validates a sampling plan from CLI-style
// inputs: a default fraction, an optional "name=fraction,..." per-stratum
// override list, the pruning switch with its tolerance (0 = the plan's
// default), and a sequential-stopping CI target. Returns nil (no plan)
// when the inputs describe an exhaustive campaign.
func ParseSamplingPlan(fraction float64, strata string, prune bool, pruneEps, targetCI float64) (*sampling.Plan, error) {
	plan := &sampling.Plan{Fraction: fraction, Prune: prune, Epsilon: pruneEps, TargetCI: targetCI}
	if strata != "" {
		plan.Strata = make(map[string]float64)
		for _, part := range strings.Split(strata, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 || kv[0] == "" {
				return nil, fmt.Errorf("goldeneye: stratum override %q is not name=fraction", part)
			}
			f, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, fmt.Errorf("goldeneye: stratum override %q: %v", part, err)
			}
			plan.Strata[kv[0]] = f
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.Active() {
		return nil, nil
	}
	return plan, nil
}
