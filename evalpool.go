package goldeneye

import (
	"goldeneye/internal/tensor"
)

// DefaultEvalBatch is the batch size accuracy evaluation uses when an
// EvalPool leaves Batch unset.
const DefaultEvalBatch = 32

// EvalPool bundles a campaign's evaluation set: the pooled inputs, their
// labels, and the batch geometry consumers use when sweeping it. It is the
// one value threaded through CampaignConfig, accuracy evaluation, and the
// experiment drivers, replacing the raw X/Y field pair.
type EvalPool struct {
	// X holds the pooled inputs, batch on axis 0.
	X *tensor.Tensor

	// Y holds the matching labels, one per row of X.
	Y []int

	// Batch is the pool's batch geometry. Accuracy evaluation sweeps the
	// pool at this size (0 = DefaultEvalBatch); injection campaigns pack
	// this many distinct faults per forward pass when
	// CampaignConfig.BatchSize is unset (0 = the serial batch-1 path).
	Batch int
}

// NewEvalPool validates and builds an evaluation pool. Beyond the rules
// every pool consumer enforces (see validate), the constructor also rejects
// a batch geometry larger than the pool itself — a sweep can never fill
// such a batch. Validation failures are *ConfigError values.
func NewEvalPool(x *tensor.Tensor, y []int, batch int) (*EvalPool, error) {
	p := &EvalPool{X: x, Y: y, Batch: batch}
	if err := p.validate(); err != nil {
		return nil, err
	}
	if batch > p.Len() {
		return nil, configErrf("Pool.Batch", "batch %d exceeds the pool's %d samples", batch, p.Len())
	}
	return p, nil
}

func (p *EvalPool) validate() error {
	if p.X == nil || p.X.Dim(0) == 0 {
		return &ConfigError{Field: "Pool", Reason: "evaluation pool needs at least one sample"}
	}
	if p.X.Dim(0) != len(p.Y) {
		return configErrf("Pool", "evaluation pool has %d inputs but %d labels", p.X.Dim(0), len(p.Y))
	}
	if p.Batch < 0 {
		return configErrf("Pool.Batch", "evaluation pool batch %d is negative", p.Batch)
	}
	return nil
}

// Len returns the number of pooled samples.
func (p *EvalPool) Len() int {
	if p == nil || p.X == nil {
		return 0
	}
	return p.X.Dim(0)
}

// Subset returns a pool over the first n samples (capped at Len), keeping
// the batch geometry. The experiment drivers use it to honor sample budgets.
func (p *EvalPool) Subset(n int) *EvalPool {
	if n > p.Len() {
		n = p.Len()
	}
	return &EvalPool{X: p.X.Slice(0, n), Y: p.Y[:n], Batch: p.Batch}
}

// evalBatch resolves the accuracy-evaluation batch size.
func (p *EvalPool) evalBatch() int {
	if p.Batch > 0 {
		return p.Batch
	}
	return DefaultEvalBatch
}

// EvaluatePool returns the model's top-1 accuracy over the pool at its
// batch geometry, restoring native weights afterwards. It is the
// EvalPool-flavored Evaluate.
func (s *Simulator) EvaluatePool(p *EvalPool, cfg EmulationConfig) float64 {
	return s.Evaluate(p.X, p.Y, p.evalBatch(), cfg)
}
