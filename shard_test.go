package goldeneye_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
)

// shardTestConfig is the campaign the shard-merge property tests slice up:
// small enough to run many shard counts, rich enough (detectors with a
// recovery policy, a trace, batching) that every merged field is exercised.
func shardTestConfig(t *testing.T, pool *testPool) goldeneye.CampaignConfig {
	t.Helper()
	x, y := pool.subset(16)
	specs, err := goldeneye.ParseDetectors("ranger,sentinel")
	if err != nil {
		t.Fatalf("detectors: %v", err)
	}
	rec, err := goldeneye.ParseRecovery("clamp")
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	return goldeneye.CampaignConfig{
		Format:         numfmt.BFPe5m5(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Injections:     60,
		Seed:           1234,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		BatchSize:      4,
		UseRanger:      true,
		EmulateNetwork: true,
		KeepTrace:      true,
		Detectors:      specs,
		Recovery:       rec,
	}
}

// runShards executes every shard of cfg split k ways, serially, on one
// simulator — the way fleet nodes run them, just in-process.
func runShards(t *testing.T, sim *goldeneye.Simulator, cfg goldeneye.CampaignConfig, k int) []*goldeneye.CampaignReport {
	t.Helper()
	var reports []*goldeneye.CampaignReport
	for _, scfg := range goldeneye.ShardConfigs(cfg, k) {
		rep, err := sim.RunCampaign(context.Background(), scfg)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", scfg.ShardIndex, scfg.ShardCount, err)
		}
		reports = append(reports, rep)
	}
	return reports
}

// TestShardMergeProperty is the order-invariance property test: splitting a
// campaign into k shards and merging the reports in any permutation yields
// CampaignReport JSON byte-identical to a single-node run at the equal
// effective worker count (RunCampaignParallel with workers=k) — detector
// outcome counts, traces, and Welford moments included. This is the merge
// contract the fleet coordinator's byte-identity guarantee rests on.
func TestShardMergeProperty(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	cfg := shardTestConfig(t, pool)
	cfg.Layer = sim.InjectableLayers()[1]

	for _, k := range []int{1, 2, 3, 5, 7} {
		ref, err := goldeneye.RunCampaignParallel(context.Background(), cfg, k, mlpBuilder(t))
		if err != nil {
			t.Fatalf("k=%d reference: %v", k, err)
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatalf("k=%d marshal reference: %v", k, err)
		}

		reports := runShards(t, sim, cfg, k)
		rng := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 4; trial++ {
			perm := make([]*goldeneye.CampaignReport, len(reports))
			copy(perm, reports)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			merged, err := goldeneye.MergeShardReports(perm)
			if err != nil {
				t.Fatalf("k=%d trial %d: merge: %v", k, trial, err)
			}
			got, err := json.Marshal(merged)
			if err != nil {
				t.Fatalf("k=%d trial %d: marshal merged: %v", k, trial, err)
			}
			if string(got) != string(refJSON) {
				t.Fatalf("k=%d trial %d: merged report diverges from workers=%d run\nmerged: %s\nsingle: %s",
					k, trial, k, got, refJSON)
			}
		}
	}
}

// TestShardConfigsClamp pins the shard-count clamp: more shards than
// injections degrade to one shard per injection, and k<=1 yields a single
// unsharded config whose wire bytes match the original campaign's.
func TestShardConfigsClamp(t *testing.T) {
	cfg := goldeneye.CampaignConfig{Format: numfmt.FP16(true), Injections: 3, Seed: 7}
	if got := len(goldeneye.ShardConfigs(cfg, 8)); got != 3 {
		t.Fatalf("shards clamp: got %d, want 3", got)
	}
	single := goldeneye.ShardConfigs(cfg, 1)
	if len(single) != 1 || single[0].ShardCount != 0 || single[0].ShardIndex != 0 {
		t.Fatalf("k=1 should be unsharded, got %+v", single[0])
	}
	a, _ := json.Marshal(cfg)
	b, _ := json.Marshal(single[0])
	if string(a) != string(b) {
		t.Fatalf("unsharded single config changed wire bytes: %s vs %s", b, a)
	}
	for s, sc := range goldeneye.ShardConfigs(cfg, 3) {
		if sc.ShardIndex != s || sc.ShardCount != 3 {
			t.Fatalf("shard %d geometry wrong: %+v", s, sc)
		}
	}
}

// TestMergeShardReportsRejects pins the typed error on malformed merge
// sets: duplicates, gaps, foreign configs, and short sets all fail with a
// *ShardMergeError rather than producing a silently wrong report.
func TestMergeShardReportsRejects(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	cfg := shardTestConfig(t, pool)
	cfg.Layer = sim.InjectableLayers()[1]
	cfg.Injections = 12
	reports := runShards(t, sim, cfg, 3)

	wantMergeErr := func(name string, set []*goldeneye.CampaignReport) {
		t.Helper()
		_, err := goldeneye.MergeShardReports(set)
		var me *goldeneye.ShardMergeError
		if !errors.As(err, &me) {
			t.Fatalf("%s: want *ShardMergeError, got %v", name, err)
		}
	}
	wantMergeErr("empty", nil)
	wantMergeErr("nil entry", []*goldeneye.CampaignReport{reports[0], nil, reports[2]})
	wantMergeErr("short set", reports[:2])
	wantMergeErr("duplicate index", []*goldeneye.CampaignReport{reports[0], reports[0], reports[2]})

	foreign := *reports[1]
	foreign.Config.Seed++
	wantMergeErr("foreign config", []*goldeneye.CampaignReport{reports[0], &foreign, reports[2]})

	// An under-executed shard (wrong injection count for its slice) is the
	// signature of a truncated report; the merge must refuse it.
	short := *reports[1]
	short.Config = reports[1].Config
	short.CampaignResult.Injections--
	wantMergeErr("short shard", []*goldeneye.CampaignReport{reports[0], &short, reports[2]})
}
