// Faulttrain demonstrates the future-direction capability the paper
// sketches in §V-D: because GoldenEye can inject errors during forward
// passes of training, it can be used to explore resilient-training
// routines. Two identical networks are trained on the same data — one
// normally, one with a random single-bit FP8 fault injected into every
// CONV/LINEAR activation tensor each batch (plus the activation sanitizer
// and gradient clipping such training needs to stay stable) — and both are
// then stressed under an identical injection campaign.
//
// At this workload's scale the fault-trained model matches the baseline's
// clean accuracy while its fault response stays comparable — the honest
// takeaway being that the *platform mechanism* works end to end; whether a
// training recipe yields real hardening is exactly the open research
// question the paper defers to future work.
//
//	go run ./examples/faulttrain
package main

import (
	"context"
	"fmt"
	"log"

	"goldeneye"
	"goldeneye/internal/dataset"
	"goldeneye/internal/inject"
	"goldeneye/internal/models"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
	"goldeneye/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ds := dataset.New(dataset.Default())
	format := numfmt.FP8E4M3(true)

	base := train.Config{
		Epochs: 12, BatchSize: 25, LR: 0.05, Momentum: 0.9,
		WeightDecay: 1e-4, StopAtTrainAcc: 0.999,
	}

	// Plain training.
	plain, err := models.Build("resnet_s", ds.Config.Classes, 1)
	if err != nil {
		return err
	}
	plainRes := train.Fit(plain, ds, base)

	// Fault-aware training: every CONV/LINEAR activation has a 10% chance
	// per layer per batch of receiving one random single-bit flip.
	hardened, err := models.Build("resnet_s", ds.Config.Classes, 1)
	if err != nil {
		return err
	}
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.DefaultLayers(),
		inject.RandomNeuronHook(format, rng.New(7), inject.SiteValue, 1.0))
	// Sanitize after injection, the way the range detector does during
	// campaigns: without it, one corrupted activation poisons BatchNorm's
	// running statistics and the evaluation-mode network never recovers.
	hooks.PostForward(nn.AllLayers(), func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		return t.Apply(func(v float32) float32 {
			switch {
			case v != v: // NaN
				return 0
			case v > 64:
				return 64
			case v < -64:
				return -64
			}
			return v
		})
	})
	faultCfg := base
	faultCfg.Hooks = hooks
	faultCfg.ClipNorm = 5
	faultRes := train.Fit(hardened, ds, faultCfg)

	fmt.Printf("clean validation accuracy: plain %.4f, fault-trained %.4f\n",
		plainRes.ValAcc, faultRes.ValAcc)

	// Now stress both under an identical campaign.
	for _, entry := range []struct {
		name  string
		model nn.Module
	}{{name: "plain", model: plain}, {name: "fault-trained", model: hardened}} {
		sim := goldeneye.Wrap(entry.model, ds.ValX.Slice(0, 1))
		rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
			Format:         format,
			Site:           goldeneye.SiteValue,
			Target:         goldeneye.TargetNeuron,
			Layer:          sim.InjectableLayers()[1],
			Injections:     600,
			Seed:           42,
			Pool:           &goldeneye.EvalPool{X: ds.ValX.Slice(0, 48), Y: ds.ValY[:48]},
			UseRanger:      false, // expose the raw fault response
			EmulateNetwork: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s under faults: mismatch=%.4f  mean ΔLoss=%.5f\n",
			entry.name, rep.MismatchRate(), rep.MeanDeltaLoss())
	}
	return nil
}
