// Dsexplore reproduces the Fig 5/6 use case: run the recursive binary-tree
// design-space-exploration heuristic for every format family on a model and
// report the visited nodes, the accepted design points, and each family's
// minimal acceptable configuration (§IV-B).
//
//	go run ./examples/dsexplore [-model vit_tiny] [-threshold 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"goldeneye"
	"goldeneye/internal/zoo"
)

func main() {
	model := flag.String("model", "vit_tiny", "model to explore")
	threshold := flag.Float64("threshold", 0.01, "tolerated accuracy drop")
	flag.Parse()
	if err := run(*model, *threshold); err != nil {
		log.Fatal(err)
	}
}

func run(name string, threshold float64) error {
	model, ds, err := zoo.Pretrained(name)
	if err != nil {
		return err
	}
	sim := goldeneye.Wrap(model, ds.ValX.Slice(0, 1))
	baseline := sim.Evaluate(ds.ValX, ds.ValY, 30, goldeneye.EmulationConfig{})
	fmt.Printf("%s — baseline accuracy %.4f, threshold %.1f%%\n\n", name, baseline, threshold*100)

	families := []goldeneye.Family{
		goldeneye.FamilyFP, goldeneye.FamilyFxP, goldeneye.FamilyINT,
		goldeneye.FamilyBFP, goldeneye.FamilyAFP,
	}
	fmt.Printf("%-5s %-14s %6s %9s %7s\n", "fam", "best config", "bits", "accuracy", "nodes")
	for _, family := range families {
		res := sim.RunDSE(ds.ValX, ds.ValY, 30, goldeneye.DSEConfig{
			Family:    family,
			Baseline:  baseline,
			Threshold: threshold,
		})
		if res.Best == nil {
			fmt.Printf("%-5s %-14s %6s %9s %7d\n", family, "(none)", "-", "-", len(res.Nodes))
			continue
		}
		format, err := goldeneye.MakeFormat(res.Best.Point)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s %-14s %6d %9.4f %7d\n",
			family, format.Name(), res.Best.Point.Bits, res.Best.Accuracy, len(res.Nodes))
	}
	fmt.Println("\nEach family's minimal acceptable width differs — the paper's argument for")
	fmt.Println("tuning the format (not just the bitwidth) to the model.")
	return nil
}
