// Formatsweep reproduces the Fig 4 use case interactively: sweep every
// format family across bitwidths for a CNN and a transformer and print the
// accuracy matrix, illustrating that the right format depends on the model
// ("tuning the number format to the DL model can provide improved
// performance better than a flat parameter choice", §IV-A).
//
//	go run ./examples/formatsweep
package main

import (
	"fmt"
	"log"

	"goldeneye"
	"goldeneye/internal/zoo"
)

var specsByWidth = map[int][]string{
	16: {"fp16", "fxp_1_7_8", "int16", "bfp_e5m10", "afp_e5m10"},
	8:  {"fp_e4m3", "fxp_1_3_4", "int8", "bfp_e5m2", "afp_e4m3"},
	6:  {"fp_e3m2", "fxp_1_2_3", "int6", "bfp_e5m1", "afp_e3m2"},
	4:  {"fp_e2m1", "fxp_1_1_2", "int4", "afp_e2m1"},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, name := range []string{"resnet_s", "vit_tiny"} {
		model, ds, err := zoo.Pretrained(name)
		if err != nil {
			return err
		}
		sim := goldeneye.Wrap(model, ds.ValX.Slice(0, 1))
		native := sim.Evaluate(ds.ValX, ds.ValY, 30, goldeneye.EmulationConfig{})
		fmt.Printf("\n%s — native fp32 accuracy %.4f\n", name, native)

		for _, width := range []int{16, 8, 6, 4} {
			fmt.Printf("  %2d-bit:", width)
			for _, spec := range specsByWidth[width] {
				format, err := goldeneye.ParseFormat(spec)
				if err != nil {
					return fmt.Errorf("%s: %w", spec, err)
				}
				acc := sim.Evaluate(ds.ValX, ds.ValY, 30, goldeneye.EmulationConfig{
					Format: format, Weights: true, Neurons: true,
				})
				fmt.Printf("  %s=%.3f", format.Name(), acc)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nNote how AFP tracks the baseline at widths where plain FP has already collapsed,")
	fmt.Println("and how the CNN and the transformer prefer different low-width formats.")
	return nil
}
