// Quickstart: load a pre-trained model, emulate a handful of number
// formats, and compare validation accuracy — the paper's first use case
// (§IV-A, functional simulation for accuracy) in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"goldeneye"
	"goldeneye/internal/zoo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The zoo trains the model on the synthetic dataset the first time and
	// caches the weights; subsequent runs load in milliseconds.
	model, ds, err := zoo.Pretrained("resnet_s")
	if err != nil {
		return err
	}
	sim := goldeneye.Wrap(model, ds.ValX.Slice(0, 1))

	specs := []string{
		"fp16", "bfloat16", "fp8_e4m3", "fxp_1_7_8",
		"int8", "bfp_e5m5", "afp_e5m2",
	}

	native := sim.Evaluate(ds.ValX, ds.ValY, 30, goldeneye.EmulationConfig{})
	fmt.Printf("%-12s accuracy=%.4f (baseline)\n", "native fp32", native)

	for _, spec := range specs {
		format, err := goldeneye.ParseFormat(spec)
		if err != nil {
			return err
		}
		acc := sim.Evaluate(ds.ValX, ds.ValY, 30, goldeneye.EmulationConfig{
			Format:  format,
			Weights: true, // convert weights offline
			Neurons: true, // quantize activations via layer hooks
		})
		fmt.Printf("%-12s accuracy=%.4f (Δ %+0.4f)\n", format.Name(), acc, acc-native)
	}
	return nil
}
