// Resiliency reproduces the Fig 7 use case on one model: per-layer fault-
// injection campaigns into BFP and AFP, comparing data-value bit flips
// against hardware-metadata bit flips with the ΔLoss metric (§IV-C). The
// headline result — a single flip in BFP's shared exponent behaves like a
// multi-bit flip across the whole tensor — is visible directly in the
// output.
//
//	go run ./examples/resiliency [-n 300]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"goldeneye"
	"goldeneye/internal/zoo"
)

func main() {
	n := flag.Int("n", 300, "injections per layer and site")
	model := flag.String("model", "resnet_s", "model to study")
	flag.Parse()
	if err := run(*model, *n); err != nil {
		log.Fatal(err)
	}
}

func run(name string, injections int) error {
	model, ds, err := zoo.Pretrained(name)
	if err != nil {
		return err
	}
	sim := goldeneye.Wrap(model, ds.ValX.Slice(0, 1))
	pool := 48
	x, y := ds.ValX.Slice(0, pool), ds.ValY[:pool]

	for _, spec := range []string{"bfp_e5m5", "afp_e5m2"} {
		format, err := goldeneye.ParseFormat(spec)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s on %s — %d injections per layer/site, range detector ON\n",
			format.Name(), name, injections)
		fmt.Printf("%-28s %12s %12s %10s\n", "layer", "value ΔLoss", "meta ΔLoss", "amplif.")

		for _, layer := range sim.InjectableLayers() {
			var means [2]float64
			for i, site := range []goldeneye.Fault{{Site: goldeneye.SiteValue}, {Site: goldeneye.SiteMetadata}} {
				rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
					Format:         format,
					Site:           site.Site,
					Target:         goldeneye.TargetNeuron,
					Layer:          layer,
					Injections:     injections,
					Seed:           uint64(layer + 1),
					Pool:           &goldeneye.EvalPool{X: x, Y: y},
					UseRanger:      true,
					EmulateNetwork: true,
				})
				if err != nil {
					return err
				}
				means[i] = rep.MeanDeltaLoss()
			}
			amplification := 0.0
			if means[0] > 0 {
				amplification = means[1] / means[0]
			}
			fmt.Printf("%-28s %12.5f %12.5f %9.0fx\n",
				layerName(sim, layer), means[0], means[1], amplification)
		}
	}
	return nil
}

func layerName(sim *goldeneye.Simulator, index int) string {
	for _, l := range sim.Layers() {
		if l.Index == index {
			return fmt.Sprintf("%d:%s", index, l.Name)
		}
	}
	return fmt.Sprintf("%d", index)
}
