package goldeneye_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/telemetry"
)

// reportsIdentical asserts two campaign reports agree bit-for-bit:
// integer aggregates, the float64 Welford moments, and (when kept) every
// trace entry including the drawn faults.
func reportsIdentical(t *testing.T, label string, got, want *goldeneye.CampaignReport) {
	t.Helper()
	if got.Injections != want.Injections || got.Mismatches != want.Mismatches ||
		got.NonFinite != want.NonFinite || got.Detected != want.Detected ||
		got.Aborted != want.Aborted || got.Interrupted != want.Interrupted {
		t.Fatalf("%s: integer aggregates diverge:\n got %+v det=%d ab=%d\nwant %+v det=%d ab=%d",
			label, got.CampaignResult, got.Detected, got.Aborted,
			want.CampaignResult, want.Detected, want.Aborted)
	}
	if got.DeltaLoss != want.DeltaLoss || got.MismatchStat != want.MismatchStat {
		t.Fatalf("%s: Welford moments diverge: ΔLoss %+v vs %+v", label, got.DeltaLoss, want.DeltaLoss)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		a, b := got.Trace[i], want.Trace[i]
		if a.Fault != b.Fault || a.Sample != b.Sample || a.Mismatch != b.Mismatch ||
			a.DeltaLoss != b.DeltaLoss || a.NonFinite != b.NonFinite ||
			a.Detected != b.Detected || a.Aborted != b.Aborted || len(a.Extra) != len(b.Extra) {
			t.Fatalf("%s: trace diverges at %d:\n got %+v\nwant %+v", label, i, a, b)
		}
	}
}

// The tentpole guarantee: for every format family and every supported
// injection site, a batched campaign's report is bit-identical to the
// serial batch-1 report under the same seed.
func TestBatchedCampaignBitIdenticalAllFamilies(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	formats := []goldeneye.Format{
		numfmt.FP8E4M3(true), // FP
		numfmt.FxP16(),       // FxP
		numfmt.INT8(),        // INT (scale metadata)
		numfmt.BFPe5m5(),     // BFP (shared-exponent metadata)
		numfmt.AFPe5m2(),     // AFP (bias metadata)
		numfmt.Posit8(),      // posit
		numfmt.LNS8(),        // LNS
		numfmt.NewLUT(4),     // LUT (scale metadata)
	}
	layer := sim.InjectableLayers()[1]
	for _, f := range formats {
		sites := []inject.Site{goldeneye.SiteValue}
		if inject.MetaBitWidth(f) > 0 {
			sites = append(sites, goldeneye.SiteMetadata)
		}
		for _, site := range sites {
			cfg := goldeneye.CampaignConfig{
				Format:         f,
				Site:           site,
				Target:         goldeneye.TargetNeuron,
				Layer:          layer,
				Injections:     23, // not a multiple of the batch: exercises the ragged tail
				Seed:           11,
				Pool:           &goldeneye.EvalPool{X: x, Y: y},
				UseRanger:      true,
				EmulateNetwork: true,
				KeepTrace:      true,
				MeasureDMR:     true,
			}
			serial, err := sim.RunCampaign(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", f.Name(), site, err)
			}
			bcfg := cfg
			bcfg.BatchSize = 5
			batched, err := sim.RunCampaign(context.Background(), bcfg)
			if err != nil {
				t.Fatalf("%s/%s batched: %v", f.Name(), site, err)
			}
			reportsIdentical(t, f.Name()+"/"+site.String(), batched, serial)
		}
	}
}

// Batched scheduling composes with worker-pool sharding: integer
// aggregates and trace stay bit-identical (the Welford merge order is the
// only documented difference, same as serial parallel campaigns).
func TestBatchedCampaignParallelCompose(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.INT8(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     42,
		Seed:           5,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
		KeepTrace:      true,
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.BatchSize = 4
	par, err := goldeneye.RunCampaignParallel(context.Background(), bcfg, 3, mlpBuilder(t))
	if err != nil {
		t.Fatal(err)
	}
	if par.Injections != serial.Injections || par.Mismatches != serial.Mismatches ||
		par.NonFinite != serial.NonFinite || par.Detected != serial.Detected {
		t.Fatalf("batched parallel aggregates diverge: %+v vs %+v", par.CampaignResult, serial.CampaignResult)
	}
	for i := range serial.Trace {
		a, b := par.Trace[i], serial.Trace[i]
		if a.Fault != b.Fault || a.Sample != b.Sample || a.Mismatch != b.Mismatch || a.DeltaLoss != b.DeltaLoss {
			t.Fatalf("batched parallel trace diverges at %d: %+v vs %+v", i, a, b)
		}
	}
}

// A batched campaign resumed mid-flight must reproduce the uninterrupted
// report bit-identically (resume granularity stays per-injection, not
// per-batch).
func TestBatchedCampaignResume(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(6)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.AFPe5m2(),
		Site:           goldeneye.SiteMetadata,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     18,
		Seed:           3,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
		BatchSize:      4,
	}
	full, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run a 7-injection prefix (mid-batch from the full run's point of
	// view), then resume for the remaining 11.
	pre := cfg
	pre.Injections = 7
	prefix, err := sim.RunCampaign(context.Background(), pre)
	if err != nil {
		t.Fatal(err)
	}
	res := cfg
	res.Resume = &goldeneye.CampaignResume{
		Completed: 7,
		Result:    prefix.CampaignResult,
		Detected:  prefix.Detected,
		Aborted:   prefix.Aborted,
	}
	resumed, err := sim.RunCampaign(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "resume", resumed, full)
}

// Weight-target campaigns cannot batch (weights are shared across rows);
// BatchSize must degrade to the serial path, not corrupt results.
func TestBatchedCampaignWeightTargetFallsBack(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(4)
	cfg := goldeneye.CampaignConfig{
		Format:     numfmt.FxP16(),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetWeight,
		Layer:      sim.WeightedLayers()[0],
		Injections: 12,
		Seed:       2,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
		KeepTrace:  true,
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.BatchSize = 6
	batched, err := sim.RunCampaign(context.Background(), bcfg)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "weight-target", batched, serial)
}

// Pool.Batch is the campaign's default batch geometry when BatchSize is
// unset, and a campaign without a pool is rejected outright.
func TestEvalPoolCampaignGeometry(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(6)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.INT8(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     10,
		Seed:           8,
		EmulateNetwork: true,
		KeepTrace:      true,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaPoolBatch := cfg
	viaPoolBatch.Pool = &goldeneye.EvalPool{X: x, Y: y, Batch: 4}
	batched, err := sim.RunCampaign(context.Background(), viaPoolBatch)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "pool-batch", batched, serial)

	noPool := cfg
	noPool.Pool = nil
	if _, err := sim.RunCampaign(context.Background(), noPool); err == nil ||
		!strings.Contains(err.Error(), "requires an evaluation pool") {
		t.Fatalf("expected a missing-pool error, got %v", err)
	}
}

// A panic inside a batched pass must abort only the offending
// injection(s): the group falls back to serial per-injection execution,
// siblings are recorded normally, and the campaign completes in degraded
// mode with a full trace.
func TestBatchedCampaignPanicIsolation(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:     &panicEveryN{Format: numfmt.FP16(true), n: 3, calls: new(atomic.Int64)},
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[1],
		Injections: 40,
		Seed:       23,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
		BatchSize:  5,
		KeepTrace:  true,
	}
	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatalf("degraded mode must not fail: %v", err)
	}
	if rep.Injections+rep.Aborted != 40 {
		t.Fatalf("recorded %d + aborted %d should cover all 40 injections", rep.Injections, rep.Aborted)
	}
	if rep.Aborted == 0 || rep.Aborted >= 20 {
		t.Fatalf("aborts should land on isolated injections, not whole batches: %d/40", rep.Aborted)
	}
	if len(rep.Trace) != 40 {
		t.Fatalf("trace should cover every injection, got %d", len(rep.Trace))
	}
	for i, out := range rep.Trace {
		if out.Aborted && (out.Mismatch || out.DeltaLoss != 0) {
			t.Fatalf("aborted outcome %d carries metrics: %+v", i, out)
		}
	}
}

// Batched campaigns publish batch telemetry: pass count, occupancy, and a
// throughput gauge; the per-injection counters keep their serial meaning.
func TestBatchedCampaignTelemetry(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	reg := telemetry.NewRegistry()
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.INT8(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     22,
		Seed:           4,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
		BatchSize:      8,
		Metrics:        reg,
	}
	if _, err := sim.RunCampaign(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(goldeneye.MetricCampaignInjections).Value(); got != 22 {
		t.Fatalf("injections counter = %d, want 22", got)
	}
	if got := reg.Counter(goldeneye.MetricCampaignBatches).Value(); got != 3 { // 8+8+6
		t.Fatalf("batches counter = %d, want 3", got)
	}
	if got := reg.Histogram(goldeneye.MetricCampaignLatency, nil).Count(); got != 22 {
		t.Fatalf("latency histogram count = %d, want 22 (per-injection accounting)", got)
	}
	occ := reg.Histogram(goldeneye.MetricCampaignOccupancy, nil)
	if occ.Count() != 3 {
		t.Fatalf("occupancy histogram count = %d, want 3", occ.Count())
	}
	if reg.Gauge(goldeneye.MetricCampaignRate).Value() <= 0 {
		t.Fatal("injections-per-second gauge not published")
	}
}
