package goldeneye

import (
	"context"
	"errors"
	"strings"
	"testing"

	"goldeneye/internal/inject"
	"goldeneye/internal/tensor"
	"goldeneye/internal/zoo"
)

// TestNewEvalPoolValidation exercises the constructor's typed rejections:
// empty pools, label mismatches, and batch geometries larger than the
// pool.
func TestNewEvalPoolValidation(t *testing.T) {
	x := tensor.New(4, 3)
	y := []int{0, 1, 0, 1}
	cases := []struct {
		name  string
		x     *tensor.Tensor
		y     []int
		batch int
		field string
	}{
		{"nil samples", nil, y, 2, "Pool"},
		{"label mismatch", x, y[:2], 2, "Pool"},
		{"negative batch", x, y, -1, "Pool.Batch"},
		{"oversized batch", x, y, 5, "Pool.Batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEvalPool(tc.x, tc.y, tc.batch)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("want *ConfigError, got %v", err)
			}
			if ce.Field != tc.field {
				t.Errorf("Field: got %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}

	if _, err := NewEvalPool(x, y, 4); err != nil {
		t.Errorf("batch == pool size must be accepted, got %v", err)
	}
	if _, err := NewEvalPool(x, y, 0); err != nil {
		t.Errorf("batch 0 (default geometry) must be accepted, got %v", err)
	}
}

// TestCampaignConfigValidation drives the campaign entry point through the
// config edge cases: missing pool, empty pool, campaign batch exceeding
// the pool. All must fail fast with a typed *ConfigError naming the field.
func TestCampaignConfigValidation(t *testing.T) {
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatalf("zoo: %v", err)
	}
	sim := Wrap(model, ds.ValX)
	f, err := ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	pool := &EvalPool{X: ds.ValX.Slice(0, 8), Y: ds.ValY[:8], Batch: 4}

	base := CampaignConfig{
		Format: f, Injections: 3, Seed: 1, Layer: 1, Pool: pool,
		Site: inject.SiteValue, Target: inject.TargetNeuron,
	}

	cases := []struct {
		name   string
		mutate func(*CampaignConfig)
		field  string
	}{
		{"nil pool", func(c *CampaignConfig) { c.Pool = nil }, "Pool"},
		{"empty pool", func(c *CampaignConfig) { c.Pool = &EvalPool{} }, "Pool"},
		{"oversized campaign batch", func(c *CampaignConfig) { c.BatchSize = 9 }, "BatchSize"},
		{"nil format", func(c *CampaignConfig) { c.Format = nil }, "Format"},
		{"no injections", func(c *CampaignConfig) { c.Injections = 0 }, "Injections"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			_, err := sim.RunCampaign(context.Background(), cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("want *ConfigError, got %v", err)
			}
			if ce.Field != tc.field {
				t.Errorf("Field: got %q, want %q (%v)", ce.Field, tc.field, err)
			}
			if !strings.Contains(ce.Error(), "goldeneye: invalid "+tc.field) {
				t.Errorf("error text %q does not name the field", ce.Error())
			}

			// The parallel entry point must reject identically.
			_, perr := RunCampaignParallel(context.Background(), cfg, 2, func() (*Simulator, error) {
				return sim, nil
			})
			if !errors.As(perr, &ce) || ce.Field != tc.field {
				t.Errorf("parallel: want *ConfigError on %s, got %v", tc.field, perr)
			}
		})
	}

	// Batch exactly the pool size stays valid.
	cfg := base
	cfg.BatchSize = 8
	if _, err := sim.RunCampaign(context.Background(), cfg); err != nil {
		t.Errorf("batch == pool size: %v", err)
	}
}

// TestNewSimulatorValidation covers the constructor's typed errors and
// Wrap's panic-on-invalid contract.
func TestNewSimulatorValidation(t *testing.T) {
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatalf("zoo: %v", err)
	}
	if _, err := NewSimulator(nil, ds.ValX); err == nil {
		t.Error("nil model: want error")
	}
	if _, err := NewSimulator(model, nil); err == nil {
		t.Error("nil sample: want error")
	}
	var ce *ConfigError
	_, err = NewSimulator(nil, ds.ValX)
	if !errors.As(err, &ce) {
		t.Errorf("want *ConfigError, got %T", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("Wrap(nil, ...) must panic")
		}
	}()
	Wrap(nil, ds.ValX)
}
