// Package goldeneye is a functional simulator of numerical data formats
// with fault-injection capabilities for deep neural networks — a from-
// scratch Go reproduction of "GoldenEye: A Platform for Evaluating Emerging
// Numerical Data Formats in DNN Accelerators" (DSN 2022).
//
// The package is the public facade over the substrates in internal/:
//
//   - numfmt: the paper's five format families (FP, FxP, INT, BFP, AFP)
//     plus emerging extensions (posit, LNS, codebook LUT) behind a single
//     Format interface mirroring the paper's four-method API, with hardware
//     metadata (scaling factors, shared exponents, exponent biases) exposed
//     for hardware-aware fault injection.
//   - nn + tensor: the DNN execution substrate with layer-granularity hooks,
//     where emulation and injection interpose.
//   - inject + metrics: single-/multi-bit flips in values and metadata, the
//     mismatch and ΔLoss resiliency metrics, and the toggleable range
//     detector.
//   - dse: the recursive binary-tree design-space-exploration heuristic for
//     number-format selection.
//   - telemetry: counters/gauges/histograms with Prometheus and JSON
//     exposition; attach a Registry via CampaignConfig.Metrics and see
//     RegisterRuntimeCollectors for substrate-level counters.
//
// # Quick start
//
//	model, ds, _ := zoo.Pretrained("resnet_s")     // or bring your own nn.Module
//	sim := goldeneye.Wrap(model, ds.ValX)          // any batch; traced on a row-0 view
//	pool, _ := goldeneye.NewEvalPool(ds.ValX, ds.ValY, 32)
//	acc := sim.EvaluatePool(pool, goldeneye.EmulationConfig{
//		Format:  numfmt.FP16(true),
//		Weights: true,
//		Neurons: true,
//	})
//
// Fault-injection campaigns take the same pool; BatchSize packs that many
// independent faults per forward pass (per-sample format metadata keeps the
// report bit-identical to the serial path):
//
//	rep, _ := sim.RunCampaign(ctx, goldeneye.CampaignConfig{
//		Format: numfmt.BFPe5m5(), Site: goldeneye.SiteValue,
//		Target: goldeneye.TargetNeuron, Layer: sim.InjectableLayers()[0],
//		Injections: 1000, Pool: pool, BatchSize: 32,
//		UseRanger: true, EmulateNetwork: true,
//	})
//
// See examples/ for runnable programs and EXPERIMENTS.md for the paper
// reproduction results.
package goldeneye

import (
	"goldeneye/internal/detect"
	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
	"goldeneye/internal/train"
)

// Re-exported core types, so downstream users interact with one import.
type (
	// Tensor is a dense float32 N-dimensional array.
	Tensor = tensor.Tensor
	// Module is a neural-network layer or model.
	Module = nn.Module
	// Format is a numerical data format (paper §III-B API).
	Format = numfmt.Format
	// Encoding is a tensor in format space: element codes plus metadata.
	Encoding = numfmt.Encoding
	// Fault is one fully specified bit flip.
	Fault = inject.Fault
	// CampaignResult aggregates an injection campaign's metrics.
	CampaignResult = metrics.CampaignResult
	// LayerInfo describes one hookable layer of a wrapped model.
	LayerInfo = nn.LayerInfo
	// RangeRow is one row of the paper's Table I.
	RangeRow = numfmt.RangeRow
	// HookSet holds layer hooks (format emulation, injection, clamping).
	HookSet = nn.HookSet
	// DetectorSpec declares one detector of a campaign's detection
	// pipeline (see internal/detect).
	DetectorSpec = detect.Spec
	// RecoveryPolicy selects what a campaign does with detector-flagged
	// inferences.
	RecoveryPolicy = detect.Policy
	// DetectorStats aggregates one detector's campaign-level coverage,
	// recovery, and false-positive counts.
	DetectorStats = metrics.DetectorStats
)

// Injection site and target re-exports.
const (
	SiteValue    = inject.SiteValue
	SiteMetadata = inject.SiteMetadata
	SiteAccum    = inject.SiteAccum
	TargetNeuron = inject.TargetNeuron
	TargetWeight = inject.TargetWeight
)

// Recovery policy re-exports.
const (
	RecoverNone      = detect.PolicyNone
	RecoverClamp     = detect.PolicyClamp
	RecoverZero      = detect.PolicyZero
	RecoverReexecute = detect.PolicyReexecute
	RecoverAbort     = detect.PolicyAbort
)

// ParseDetectors parses a comma-separated detector list (the CLIs'
// -detectors flag): any of ranger, sentinel, dmr, abft.
func ParseDetectors(list string) ([]DetectorSpec, error) { return detect.ParseSpecs(list) }

// ParseRecovery parses a recovery policy name (the CLIs' -recovery flag):
// none, clamp, zero, reexecute, or abort.
func ParseRecovery(s string) (RecoveryPolicy, error) { return detect.ParsePolicy(s) }

// Table1Rows recomputes the paper's Table I from the format
// implementations.
func Table1Rows() []RangeRow { return numfmt.Table1Rows() }

// Simulator wraps a model for number-format emulation, accuracy
// measurement, and fault-injection campaigns. Wrap traces the model once to
// enumerate its layers; a Simulator (like the underlying modules) is not
// safe for concurrent use.
type Simulator struct {
	model   nn.Module
	layers  []nn.LayerInfo
	sizes   map[int]int // layer index → output element count at batch 1
	widx    inject.ModuleIndex
	modules map[int]nn.Module // layer index → module, for structural detectors
}

// Wrap prepares model for simulation. sample provides the model's input
// geometry: any batch size is accepted, and layer structure plus per-layer
// output sizes are traced on a row-0 view (so a full validation tensor can
// be passed directly). Wrap panics on an invalid sample; NewSimulator is
// the checked variant for untrusted inputs (e.g. network-submitted jobs).
func Wrap(model nn.Module, sample *tensor.Tensor) *Simulator {
	s, err := NewSimulator(model, sample)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSimulator is Wrap with the validation surfaced as a *ConfigError
// instead of a panic: the sample must be non-nil and carry at least one
// row.
func NewSimulator(model nn.Module, sample *tensor.Tensor) (*Simulator, error) {
	if model == nil {
		return nil, &ConfigError{Field: "Model", Reason: "simulator needs a model"}
	}
	if sample == nil {
		return nil, &ConfigError{Field: "Sample", Reason: "Wrap sample needs at least one row, got nil"}
	}
	if sample.Dim(0) < 1 {
		return nil, configErrf("Sample", "Wrap sample needs at least one row, got %v", sample.Shape())
	}
	if sample.Dim(0) > 1 {
		sample = sample.Slice(0, 1)
	}
	s := &Simulator{
		model:   model,
		sizes:   make(map[int]int),
		modules: make(map[int]nn.Module),
	}
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		s.layers = append(s.layers, info)
		s.sizes[info.Index] = t.Len()
		return t
	})
	ctx := nn.NewContext(hooks)
	ctx.SetVisitor(func(m nn.Module, info nn.LayerInfo) { s.modules[info.Index] = m })
	nn.Forward(ctx, model, sample)
	s.widx = inject.IndexModules(model, s.layers)
	return s, nil
}

// detectTarget is the model view handed to detector constructors.
func (s *Simulator) detectTarget() detect.Target {
	return detect.Target{Model: s.model, Layers: s.Layers(), Modules: s.modules}
}

// Model returns the wrapped module.
func (s *Simulator) Model() nn.Module { return s.model }

// Layers returns the traced layer list in visit order.
func (s *Simulator) Layers() []LayerInfo {
	return append([]nn.LayerInfo(nil), s.layers...)
}

// LayerOutputSize returns the element count of a layer's output at batch 1.
func (s *Simulator) LayerOutputSize(index int) int { return s.sizes[index] }

// layerInfo returns the traced LayerInfo at a visit index.
func (s *Simulator) layerInfo(index int) (nn.LayerInfo, bool) {
	for _, l := range s.layers {
		if l.Index == index {
			return l, true
		}
	}
	return nn.LayerInfo{}, false
}

// InjectableLayers returns the visit indices of CONV and LINEAR layers —
// the paper's default injection targets (§V-B).
func (s *Simulator) InjectableLayers() []int {
	var out []int
	for _, l := range s.layers {
		if l.Kind == nn.KindConv || l.Kind == nn.KindLinear {
			out = append(out, l.Index)
		}
	}
	return out
}

// WeightedLayers returns the visit indices of layers carrying a weight
// parameter (candidates for weight-targeted faults).
func (s *Simulator) WeightedLayers() []int { return s.widx.WeightedLayers() }

// DefaultInjectionLayer returns the conventional default layer for a
// campaign that did not pin one (CampaignConfig.Layer < 0): the middle
// injectable layer for neuron targets, the middle weighted layer for weight
// targets — the heuristic the CLI and the campaign service share. Returns
// -1 if the model exposes no candidate layer.
func (s *Simulator) DefaultInjectionLayer(target inject.Target) int {
	candidates := s.InjectableLayers()
	if target == inject.TargetWeight {
		candidates = s.WeightedLayers()
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[len(candidates)/2]
}

// EmulationConfig selects how number formats are applied to the model.
//
// The modern surface is Assignment: a per-layer, per-role format map
// (weights, activations, accumulator). The Format/Weights/Neurons trio is
// the original uniform surface, kept as a deprecated shim: it lowers to a
// uniform assignment and stays bit-identical to its historical behavior.
// When Assignment is non-nil it takes precedence and the legacy fields are
// ignored.
type EmulationConfig struct {
	// Assignment maps layers to per-role formats (mixed precision). When
	// set, it replaces the Format/Weights/Neurons fields below.
	Assignment *FormatAssignment

	// Format is the emulated number system; nil means native FP32
	// execution (the baseline).
	//
	// Deprecated: use Assignment, which generalizes the uniform
	// Format+Weights+Neurons trio to per-layer, per-role formats. The
	// field remains fully supported and bit-identical.
	Format numfmt.Format

	// Weights converts all weights/biases to the format (offline
	// conversion, §V-B).
	//
	// Deprecated: use Assignment with a Weights role.
	Weights bool

	// Neurons quantizes layer outputs to the format during the forward
	// pass via post-forward hooks.
	//
	// Deprecated: use Assignment with an Activations role.
	Neurons bool

	// AllLayers hooks every layer kind instead of the CONV/LINEAR default.
	// With Assignment set, it widens the scope of Assignment.Default the
	// same way (PerLayer entries always apply at exactly their index).
	AllLayers bool
}

func (c EmulationConfig) filter() nn.Filter {
	if c.AllLayers {
		return nn.AllLayers()
	}
	return nn.DefaultLayers()
}

// runtimeAssignment lowers the configuration to the assignment its forward
// passes run under: Assignment itself when set, else the uniform-activation
// assignment the deprecated Format+Neurons fields describe. (The weights
// role of the legacy fields is handled by applyEmulationWeights, which must
// reproduce the historical all-parameter conversion exactly.)
func (c EmulationConfig) runtimeAssignment() *FormatAssignment {
	if c.Assignment != nil {
		return c.Assignment
	}
	if c.Format != nil && c.Neurons {
		return &FormatAssignment{Default: RoleFormats{Activations: c.Format}}
	}
	return nil
}

// emulationHooks returns a hook set applying cfg's activation and
// accumulator emulation (nil if none is needed). Activation hooks carry the
// format's fused-kernel epilogue, so Conv2D/Linear apply emulation to their
// outputs while cache-hot; other layer kinds (with AllLayers) run the hook
// function as usual. Accumulator roles round every GEMM partial sum through
// the assigned format.
func emulationHooks(cfg EmulationConfig) *nn.HookSet {
	asg := cfg.runtimeAssignment()
	if !asg.hasActivations() && !asg.hasAccumulator() {
		return nil
	}
	hooks := nn.NewHookSet()
	addActivationHooks(hooks, asg, numfmt.AxisTensor, cfg.filter())
	addAccumHooks(hooks, asg, cfg.filter())
	return hooks
}

// applyEmulationWeights performs cfg's offline weight conversion and
// returns the restore function (nil when no conversion applies). The
// deprecated Weights flag keeps its historical semantics — QuantizeWeights
// converts every non-frozen model parameter, normalization scales included
// — while an Assignment converts each assigned layer's own parameters only.
func (s *Simulator) applyEmulationWeights(cfg EmulationConfig) func() {
	switch {
	case cfg.Assignment != nil:
		if !cfg.Assignment.hasWeights() {
			return nil
		}
		backup := inject.BackupWeights(s.model)
		s.applyWeightAssignment(cfg.Assignment, cfg.filter())
		return backup.Restore
	case cfg.Format != nil && cfg.Weights:
		backup := inject.BackupWeights(s.model)
		inject.QuantizeWeights(s.model, cfg.Format)
		return backup.Restore
	}
	return nil
}

// Evaluate returns the model's top-1 accuracy over (x, y) under the given
// emulation, restoring native weights afterwards.
func (s *Simulator) Evaluate(x *tensor.Tensor, y []int, batch int, cfg EmulationConfig) float64 {
	if restore := s.applyEmulationWeights(cfg); restore != nil {
		defer restore()
	}
	return train.Evaluate(s.model, x, y, batch, emulationHooks(cfg))
}

// Logits runs a forward pass under the given emulation and returns the
// output logits. Weight conversion, when requested, is restored afterwards.
func (s *Simulator) Logits(x *tensor.Tensor, cfg EmulationConfig) *tensor.Tensor {
	if restore := s.applyEmulationWeights(cfg); restore != nil {
		defer restore()
	}
	return nn.Forward(nn.NewContext(emulationHooks(cfg)), s.model, x)
}

// LogitsWithHooks runs a forward pass with a caller-assembled hook set, for
// custom emulation/injection pipelines beyond the built-in configurations.
func (s *Simulator) LogitsWithHooks(x *tensor.Tensor, hooks *HookSet) *tensor.Tensor {
	return nn.Forward(nn.NewContext(hooks), s.model, x)
}
