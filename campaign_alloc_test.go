package goldeneye

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"

	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
	"goldeneye/internal/zoo"
)

// The arena + scratch contract of the batched injection loop: once the
// runner is warmed up, the per-group bookkeeping — drawing fault sets,
// gathering the batch input tensor, and reslicing the outcome buffers —
// performs zero heap allocations. This is the regression pin for the
// "eliminate per-injection tensor allocation" half of the fused-kernel
// work; the forward pass itself still allocates its layer outputs.
func TestBatchedLoopBookkeepingAllocFree(t *testing.T) {
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatalf("zoo: %v", err)
	}
	sim := Wrap(model, ds.ValX.Slice(0, 1))
	pool, err := NewEvalPool(ds.ValX.Slice(0, 8), ds.ValY[:8], 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	cfg := CampaignConfig{
		Format:         numfmt.INT8(),
		Site:           inject.SiteValue,
		Target:         inject.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     16,
		Seed:           3,
		Pool:           pool,
		BatchSize:      4,
		EmulateNetwork: true,
	}
	runner, err := sim.newRunner(context.Background(), cfg)
	if err != nil {
		t.Fatalf("newRunner: %v", err)
	}
	defer runner.close()

	drawer := newFaultDrawer(&cfg, runner.geom)
	rows := runner.batch
	n := pool.Len()
	samples := runner.scratch.samples[:rows]
	// Warm-up: the per-row-count input view is cached lazily on first use.
	for k := 0; k < rows; k++ {
		samples[k] = k
	}
	runner.scratch.gather(pool.X, samples)

	allocs := testing.AllocsPerRun(50, func() {
		idx := runner.scratch.idx[:rows]
		faultsets := runner.scratch.faultsets[:rows]
		samples := runner.scratch.samples[:rows]
		for k := 0; k < rows; k++ {
			idx[k] = k
			faultsets[k] = runner.scratch.faultRow(k, runner.geom.flips)
			drawer.nextInto(faultsets[k])
			samples[k] = k % n
		}
		runner.scratch.gather(pool.X, samples)
		outs := runner.scratch.outs[:rows]
		errs := runner.scratch.errs[:rows]
		for k := range outs {
			outs[k] = InjectionOutcome{}
			errs[k] = nil
		}
	})
	if allocs != 0 {
		t.Fatalf("batched-loop bookkeeping allocates %.1f objects per group, want 0", allocs)
	}
}

// Runner scratch buffers must return to the shared arena on close, so the
// next campaign (same geometry) reuses the storage instead of allocating.
func TestCampaignScratchReturnsToArena(t *testing.T) {
	// The arena is a sync.Pool, and a pool may legally hand back a fresh
	// buffer when the goroutine migrates off the P holding the private
	// slot, or when a GC cycle clears the pool — non-reuses this test
	// must not flag. Pin the test to one P with GC off so the
	// pointer-identity assertion observes the pool's LIFO behavior, not
	// the scheduler's or the collector's timing.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	x := tensor.New(4, 8)
	sc := newCampaignScratch(x, 4, 1)
	if len(sc.xbBuf) != 4*8 {
		t.Fatalf("scratch buffer length %d, want %d", len(sc.xbBuf), 4*8)
	}
	buf := sc.xbBuf
	sc.release()
	if sc.xbBuf != nil || sc.xb != nil {
		t.Fatal("release did not clear the scratch views")
	}
	sc.release() // double release is a no-op, not a double Put

	sc2 := newCampaignScratch(x, 4, 1)
	defer sc2.release()
	if raceEnabled {
		// The race-detector runtime randomly drops sync.Pool puts and
		// gets to widen interleavings; pointer identity is not
		// observable there. The release/double-release contract above
		// still ran.
		t.Skip("sync.Pool reuse is randomized under the race detector")
	}
	if &sc2.xbBuf[0] != &buf[0] {
		t.Fatal("second scratch did not reuse the arena buffer")
	}
}
