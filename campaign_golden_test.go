package goldeneye_test

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"goldeneye"
	"goldeneye/internal/metrics"
	"goldeneye/internal/numfmt"
)

// goldenRecord pins one pre-detector campaign's full report: the raw
// aggregate (bit-exact Welford state), the Detected/Aborted counts, and an
// FNV-64a digest of the trace. testdata/campaign_golden.json was generated
// before the detection subsystem landed; these tests are the regression
// gate that campaigns with CampaignConfig.Detectors empty stay bit-identical
// to pre-detector behaviour on both the serial and batched paths.
type goldenRecord struct {
	Name     string                 `json:"name"`
	Result   metrics.CampaignResult `json:"result"`
	Detected int                    `json:"detected"`
	Aborted  int                    `json:"aborted"`
	TraceFNV uint64                 `json:"trace_fnv"`
}

// goldenTraceDigest must match the formula the golden file was generated
// with, field for field.
func goldenTraceDigest(trace []goldeneye.InjectionOutcome) uint64 {
	h := fnv.New64a()
	for _, o := range trace {
		fmt.Fprintf(h, "%v|%d|%d|%t|%016x|%t|%t|%t\n",
			o.Fault, len(o.Extra), o.Sample, o.Mismatch,
			math.Float64bits(o.DeltaLoss), o.NonFinite, o.Detected, o.Aborted)
	}
	return h.Sum64()
}

// goldenConfigs rebuilds the exact campaign configurations the golden file
// was generated from (zoo "mlp", first 16 validation samples).
func goldenConfigs(sim *goldeneye.Simulator, x *goldeneye.Tensor, y []int) map[string]goldeneye.CampaignConfig {
	pool := func() *goldeneye.EvalPool { return &goldeneye.EvalPool{X: x, Y: y} }
	layers := sim.InjectableLayers()
	weighted := sim.WeightedLayers()
	fp16 := numfmt.FP16(true)
	return map[string]goldeneye.CampaignConfig{
		"serial_fp16_value_neuron": {
			Format: fp16, Site: goldeneye.SiteValue, Target: goldeneye.TargetNeuron,
			Layer: layers[1], Injections: 60, Seed: 7, Pool: pool(),
			EmulateNetwork: true, KeepTrace: true,
		},
		"batched_fp16_value_neuron": {
			Format: fp16, Site: goldeneye.SiteValue, Target: goldeneye.TargetNeuron,
			Layer: layers[1], Injections: 60, Seed: 7, Pool: pool(), BatchSize: 8,
			EmulateNetwork: true, KeepTrace: true,
		},
		"serial_fp16_ranger": {
			Format: fp16, Site: goldeneye.SiteValue, Target: goldeneye.TargetNeuron,
			Layer: layers[0], Injections: 60, Seed: 5, Pool: pool(),
			UseRanger: true, EmulateNetwork: true, KeepTrace: true,
		},
		"serial_fp16_dmr": {
			Format: fp16, Site: goldeneye.SiteValue, Target: goldeneye.TargetNeuron,
			Layer: layers[1], Injections: 40, Seed: 3, Pool: pool(),
			MeasureDMR: true, EmulateNetwork: true, KeepTrace: true,
		},
		"serial_fp16_weight": {
			Format: fp16, Site: goldeneye.SiteValue, Target: goldeneye.TargetWeight,
			Layer: weighted[0], Injections: 30, Seed: 13, Pool: pool(),
			KeepTrace: true,
		},
		"serial_bfp_metadata": {
			Format: numfmt.BFPe5m5(), Site: goldeneye.SiteMetadata, Target: goldeneye.TargetNeuron,
			Layer: layers[1], Injections: 40, Seed: 11, Pool: pool(),
			EmulateNetwork: true, KeepTrace: true,
		},
		"batched_bfp_metadata": {
			Format: numfmt.BFPe5m5(), Site: goldeneye.SiteMetadata, Target: goldeneye.TargetNeuron,
			Layer: layers[1], Injections: 40, Seed: 11, Pool: pool(), BatchSize: 4,
			EmulateNetwork: true, KeepTrace: true,
		},
	}
}

// TestCampaignGoldenEquivalence replays every golden campaign against the
// current engine and requires bit-identical reports. This is the PR's core
// compatibility guarantee: an empty detector pipeline changes nothing.
func TestCampaignGoldenEquivalence(t *testing.T) {
	data, err := os.ReadFile("testdata/campaign_golden.json")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	var records []goldenRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("golden file: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("golden file carries no records")
	}
	sim, p := loadSim(t, "mlp")
	x, y := p.subset(16)
	configs := goldenConfigs(sim, x, y)
	for _, rec := range records {
		cfg, ok := configs[rec.Name]
		if !ok {
			t.Fatalf("no configuration for golden record %q", rec.Name)
		}
		rep, err := sim.RunCampaign(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", rec.Name, err)
		}
		if rep.CampaignResult != rec.Result {
			t.Errorf("%s: aggregate diverged from golden:\n got %+v\nwant %+v",
				rec.Name, rep.CampaignResult, rec.Result)
		}
		if rep.Detected != rec.Detected || rep.Aborted != rec.Aborted {
			t.Errorf("%s: detected/aborted %d/%d, golden %d/%d",
				rec.Name, rep.Detected, rep.Aborted, rec.Detected, rec.Aborted)
		}
		if got := goldenTraceDigest(rep.Trace); got != rec.TraceFNV {
			t.Errorf("%s: trace digest %d, golden %d", rec.Name, got, rec.TraceFNV)
		}
	}
}
