package goldeneye_test

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/sampling"
	"goldeneye/internal/telemetry"
)

// TestSampledFractionOneByteIdenticalAllFamilies is the degeneracy property
// of the golden matrix: a sampling plan at fraction 1.0 with pruning off is
// inert, so the campaign must produce a report byte-identical — wire bytes
// included — to the exhaustive one, for every format family × site.
func TestSampledFractionOneByteIdenticalAllFamilies(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	formats := []goldeneye.Format{
		numfmt.FP8E4M3(true), // FP
		numfmt.FxP16(),       // FxP
		numfmt.INT8(),        // INT (scale metadata)
		numfmt.BFPe5m5(),     // BFP (shared-exponent metadata)
		numfmt.AFPe5m2(),     // AFP (bias metadata)
		numfmt.Posit8(),      // posit
		numfmt.LNS8(),        // LNS
		numfmt.NewLUT(4),     // LUT (scale metadata)
	}
	layer := sim.InjectableLayers()[1]
	for _, f := range formats {
		sites := []inject.Site{goldeneye.SiteValue}
		if inject.MetaBitWidth(f) > 0 {
			sites = append(sites, goldeneye.SiteMetadata)
		}
		for _, site := range sites {
			cfg := goldeneye.CampaignConfig{
				Format:         f,
				Site:           site,
				Target:         goldeneye.TargetNeuron,
				Layer:          layer,
				Injections:     17,
				Seed:           11,
				Pool:           &goldeneye.EvalPool{X: x, Y: y},
				UseRanger:      true,
				EmulateNetwork: true,
				KeepTrace:      true,
			}
			exhaustive, err := sim.RunCampaign(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s/%s exhaustive: %v", f.Name(), site, err)
			}
			scfg := cfg
			scfg.Sampling = &sampling.Plan{Fraction: 1}
			sampled, err := sim.RunCampaign(context.Background(), scfg)
			if err != nil {
				t.Fatalf("%s/%s sampled: %v", f.Name(), site, err)
			}
			want, _ := json.Marshal(exhaustive)
			got, _ := json.Marshal(sampled)
			if string(got) != string(want) {
				t.Fatalf("%s/%s: fraction-1.0 report diverges from exhaustive\nsampled: %s\nexhaust: %s",
					f.Name(), site, got, want)
			}
		}
	}
}

// An active plan at fraction 1.0 (per-stratum overrides present, all 1.0)
// executes the whole fault space: the campaign aggregates and trace faults
// match the exhaustive run exactly, and the estimator reproduces the
// exhaustive mismatch rate.
func TestSampledActivePlanFullFractionMatchesExhaustive(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP8E4M3(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     30,
		Seed:           42,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		UseRanger:      true,
		EmulateNetwork: true,
		KeepTrace:      true,
	}
	exhaustive, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Sampling = &sampling.Plan{Fraction: 1, Strata: map[string]float64{"sign": 1}}
	sampled, err := sim.RunCampaign(context.Background(), scfg)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Injections != exhaustive.Injections || sampled.Mismatches != exhaustive.Mismatches ||
		sampled.DeltaLoss != exhaustive.DeltaLoss {
		t.Fatalf("full-fraction active plan diverges: %+v vs %+v",
			sampled.CampaignResult, exhaustive.CampaignResult)
	}
	if len(sampled.Trace) != len(exhaustive.Trace) {
		t.Fatalf("trace length %d vs %d", len(sampled.Trace), len(exhaustive.Trace))
	}
	for i := range exhaustive.Trace {
		if sampled.Trace[i].Fault != exhaustive.Trace[i].Fault {
			t.Fatalf("trace fault diverges at %d", i)
		}
		if sampled.Trace[i].Index != i {
			t.Fatalf("sampled trace entry %d carries index %d", i, sampled.Trace[i].Index)
		}
	}
	sr := sampled.Sampling
	if sr == nil {
		t.Fatal("active plan produced no estimator report")
	}
	if sr.FaultSpace() != cfg.Injections || sr.ExecutedTotal()+sr.AbortedTotal() != cfg.Injections {
		t.Fatalf("full-fraction dispatch: space=%d executed=%d aborted=%d of %d",
			sr.FaultSpace(), sr.ExecutedTotal(), sr.AbortedTotal(), cfg.Injections)
	}
	if got, want := sr.SDCRate(), exhaustive.MismatchRate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("full-fraction SDC estimate %v, exhaustive rate %v", got, want)
	}
}

// TestSampledShardMergePermutation is the sampled mirror of the PR 9 merge
// property: per-stratum moments merged in any shard order produce a report
// — CI bounds included — byte-identical to the single-node parallel run at
// workers=k.
func TestSampledShardMergePermutation(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.BFPe5m5(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Injections:     60,
		Seed:           1234,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		BatchSize:      4,
		UseRanger:      true,
		EmulateNetwork: true,
		KeepTrace:      true,
		Sampling:       &sampling.Plan{Fraction: 0.5},
	}
	cfg.Layer = sim.InjectableLayers()[1]

	for _, k := range []int{1, 2, 3, 5, 7} {
		ref, err := goldeneye.RunCampaignParallel(context.Background(), cfg, k, mlpBuilder(t))
		if err != nil {
			t.Fatalf("k=%d reference: %v", k, err)
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatalf("k=%d marshal reference: %v", k, err)
		}
		if ref.Sampling == nil || ref.Sampling.FaultSpace() != cfg.Injections {
			t.Fatalf("k=%d: estimator covers %v of %d", k, ref.Sampling, cfg.Injections)
		}

		var reports []*goldeneye.CampaignReport
		for _, scfg := range goldeneye.ShardConfigs(cfg, k) {
			rep, serr := sim.RunCampaign(context.Background(), scfg)
			if serr != nil {
				t.Fatalf("k=%d shard %d: %v", k, scfg.ShardIndex, serr)
			}
			reports = append(reports, rep)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 4; trial++ {
			perm := make([]*goldeneye.CampaignReport, len(reports))
			copy(perm, reports)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			merged, err := goldeneye.MergeShardReports(perm)
			if err != nil {
				t.Fatalf("k=%d trial %d: merge: %v", k, trial, err)
			}
			got, err := json.Marshal(merged)
			if err != nil {
				t.Fatalf("k=%d trial %d: marshal merged: %v", k, trial, err)
			}
			if string(got) != string(refJSON) {
				t.Fatalf("k=%d trial %d: sampled merge diverges from workers=%d run\nmerged: %s\nsingle: %s",
					k, trial, k, got, refJSON)
			}
			if g, w := merged.Sampling.CIHalfWidth(), ref.Sampling.CIHalfWidth(); g != w &&
				!(math.IsInf(g, 1) && math.IsInf(w, 1)) {
				t.Fatalf("k=%d trial %d: CI half-width %v vs %v", k, trial, g, w)
			}
		}
	}
}

// Analytic pruning on a metadata-free format: the estimator accounts the
// whole fault space, pruned indices cost no forward pass, and pruned mass
// contributes zero to the SDC estimate.
func TestSampledPruneAccountsFullFaultSpace(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP8E4M3(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     40,
		Seed:           9,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		UseRanger:      true,
		EmulateNetwork: true,
		Sampling:       &sampling.Plan{Fraction: 1, Prune: true},
	}
	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Sampling
	if sr == nil {
		t.Fatal("prune plan produced no estimator report")
	}
	if sr.FaultSpace() != cfg.Injections {
		t.Fatalf("estimator covers %d of %d", sr.FaultSpace(), cfg.Injections)
	}
	if got := sr.ExecutedTotal() + sr.PrunedTotal() + sr.SkippedTotal() + sr.AbortedTotal(); got != cfg.Injections {
		t.Fatalf("dispatch does not cover the fault space: %d of %d", got, cfg.Injections)
	}
	if rep.Injections+rep.Aborted != sr.ExecutedTotal()+sr.AbortedTotal() {
		t.Fatalf("campaign executed %d but estimator observed %d",
			rep.Injections+rep.Aborted, sr.ExecutedTotal()+sr.AbortedTotal())
	}
	if rate := sr.SDCRate(); math.IsNaN(rate) || rate < 0 || rate > 1 {
		t.Fatalf("SDC estimate %v outside [0,1]", rate)
	}
}

// The pruning preconditions are validated up front: burst faults, metadata
// formats wider than the brute-force bound, and campaigns without ranger
// calibration are rejected with a typed ConfigError.
func TestSampledPruneRequiresRanger(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(4)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP8E4M3(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     5,
		Seed:           1,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
		Sampling:       &sampling.Plan{Fraction: 1, Prune: true},
	}
	if _, err := sim.RunCampaign(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "UseRanger") {
		t.Fatalf("prune without ranger calibration should fail, got %v", err)
	}
	mcfg := cfg
	mcfg.UseRanger = true
	mcfg.Format = numfmt.INT8() // scale metadata: not analytically prunable
	if _, err := sim.RunCampaign(context.Background(), mcfg); err == nil {
		t.Fatal("prune on a metadata format should fail")
	}
}

// TestSampledTargetCIStopsEarly is the headline acceptance criterion: a
// sequentially-stopped campaign reaches a CI-bounded SDC estimate with at
// most 20% of the exhaustive injection count, and the exhaustive rate lies
// within the reported interval of the estimate.
func TestSampledTargetCIStopsEarly(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP8E4M3(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     400,
		Seed:           7,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true, // no ranger: raw fault impact keeps the SDC rate away from zero
	}
	exhaustive, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	scfg := cfg
	scfg.Sampling = &sampling.Plan{Fraction: 1, TargetCI: 0.3, CheckEvery: 64}
	reg := telemetry.NewRegistry()
	scfg.Metrics = reg
	sampled, err := sim.RunCampaign(context.Background(), scfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := sampled.Sampling
	if sr == nil {
		t.Fatal("target-ci campaign produced no estimator report")
	}
	if sr.StopIndex == 0 {
		t.Fatalf("campaign never stopped early: CI half-width %v", sr.CIHalfWidth())
	}
	executed := sr.ExecutedTotal() + sr.AbortedTotal()
	if limit := cfg.Injections / 5; executed > limit {
		t.Fatalf("sampled campaign executed %d injections, want <= %d (20%% of exhaustive)", executed, limit)
	}
	hw := sr.CIHalfWidth()
	if math.IsInf(hw, 0) || hw > scfg.Sampling.TargetCI {
		t.Fatalf("stopped with CI half-width %v, target %v", hw, scfg.Sampling.TargetCI)
	}
	if delta := math.Abs(sr.SDCRate() - exhaustive.MismatchRate()); delta > hw {
		t.Fatalf("estimate %v is %v from the exhaustive rate %v, outside the ±%v interval",
			sr.SDCRate(), delta, exhaustive.MismatchRate(), hw)
	}
	if got := reg.Gauge(goldeneye.MetricSamplingStopIndex).Value(); int(got) != sr.StopIndex {
		t.Fatalf("stop-index gauge %v, report says %d", got, sr.StopIndex)
	}
	if got := reg.Counter(goldeneye.MetricSamplingExecuted).Value(); got != int64(sr.ExecutedTotal()) {
		t.Fatalf("executed counter %d, report says %d", got, sr.ExecutedTotal())
	}

	// The parallel driver reaches the same stop decision through the review
	// barrier and merges to the same dispatch accounting.
	par, err := goldeneye.RunCampaignParallel(context.Background(), scfg, 3, mlpBuilder(t))
	if err != nil {
		t.Fatal(err)
	}
	if par.Sampling == nil || par.Sampling.StopIndex != sr.StopIndex {
		t.Fatalf("parallel stop index %v, serial stopped at %d", par.Sampling, sr.StopIndex)
	}
	if par.Sampling.FaultSpace() != sr.FaultSpace() ||
		par.Sampling.ExecutedTotal() != sr.ExecutedTotal() {
		t.Fatalf("parallel dispatch (space %d, executed %d) diverges from serial (space %d, executed %d)",
			par.Sampling.FaultSpace(), par.Sampling.ExecutedTotal(), sr.FaultSpace(), sr.ExecutedTotal())
	}
}

// Sampled campaigns compose with the incompatible-feature guards: Resume
// and sharded TargetCI are rejected up front.
func TestSampledCampaignGuards(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(4)
	base := goldeneye.CampaignConfig{
		Format:         numfmt.FP8E4M3(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     10,
		Seed:           1,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
	}

	resumed := base
	resumed.Sampling = &sampling.Plan{Fraction: 0.5}
	resumed.Resume = &goldeneye.CampaignResume{Completed: 2}
	if _, err := sim.RunCampaign(context.Background(), resumed); err == nil {
		t.Fatal("sampled resume should be rejected")
	}

	sharded := base
	sharded.Sampling = &sampling.Plan{Fraction: 1, TargetCI: 0.1}
	sharded.ShardIndex, sharded.ShardCount = 0, 2
	if _, err := sim.RunCampaign(context.Background(), sharded); err == nil {
		t.Fatal("sharded sequential stopping should be rejected")
	}

	invalid := base
	invalid.Sampling = &sampling.Plan{Fraction: 0}
	if _, err := sim.RunCampaign(context.Background(), invalid); err == nil {
		t.Fatal("zero sampling fraction should be rejected")
	}
}

// ParseSamplingPlan maps CLI inputs to plans: exhaustive inputs yield nil,
// stratum overrides parse, and malformed overrides fail.
func TestParseSamplingPlan(t *testing.T) {
	if plan, err := goldeneye.ParseSamplingPlan(1, "", false, 0, 0); err != nil || plan != nil {
		t.Fatalf("exhaustive inputs: plan=%v err=%v", plan, err)
	}
	plan, err := goldeneye.ParseSamplingPlan(0.1, "exponent=1,mantissa=0.05", true, 0.01, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fraction != 0.1 || plan.Strata["exponent"] != 1 || plan.Strata["mantissa"] != 0.05 ||
		!plan.Prune || plan.Epsilon != 0.01 || plan.TargetCI != 0.02 {
		t.Fatalf("parsed plan %+v", plan)
	}
	if _, err := goldeneye.ParseSamplingPlan(0.5, "exponent", false, 0, 0); err == nil {
		t.Fatal("malformed stratum override should fail")
	}
	if _, err := goldeneye.ParseSamplingPlan(2, "", false, 0, 0); err == nil {
		t.Fatal("fraction > 1 should fail")
	}
}
