package goldeneye_test

import (
	"context"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/zoo"
)

// loadedSim caches the pre-trained simulator across tests in this package;
// the zoo's disk cache makes the underlying load cheap after the first run.
func loadSim(t *testing.T, name string) (*goldeneye.Simulator, *testPool) {
	t.Helper()
	model, ds, err := zoo.Pretrained(name)
	if err != nil {
		t.Fatalf("zoo: %v", err)
	}
	sim := goldeneye.Wrap(model, ds.ValX.Slice(0, 1))
	return sim, &testPool{x: ds.ValX, y: ds.ValY}
}

type testPool struct {
	x *goldeneye.Tensor
	y []int
}

func (p *testPool) subset(n int) (*goldeneye.Tensor, []int) {
	return p.x.Slice(0, n), p.y[:n]
}

func TestWrapEnumeratesLayers(t *testing.T) {
	sim, _ := loadSim(t, "mlp")
	layers := sim.Layers()
	if len(layers) == 0 {
		t.Fatal("no layers traced")
	}
	for _, l := range layers {
		if sim.LayerOutputSize(l.Index) <= 0 {
			t.Fatalf("layer %v has no output size", l)
		}
	}
	if len(sim.InjectableLayers()) < 3 {
		t.Fatalf("mlp should expose its 3 linear layers, got %v", sim.InjectableLayers())
	}
	if len(sim.WeightedLayers()) < 3 {
		t.Fatalf("weighted layers: %v", sim.WeightedLayers())
	}
}

func TestFP32EmulationMatchesNative(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(100)
	native := sim.Evaluate(x, y, 25, goldeneye.EmulationConfig{})
	emulated := sim.Evaluate(x, y, 25, goldeneye.EmulationConfig{
		Format: numfmt.FP32(true), Weights: true, Neurons: true,
	})
	if native != emulated {
		t.Fatalf("FP32 emulation changed accuracy: %v vs %v", native, emulated)
	}
	if native < 0.6 {
		t.Fatalf("implausible baseline accuracy %v", native)
	}
}

func TestEvaluateRestoresWeights(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(50)
	before := append([]float32(nil), sim.Model().Params()[0].Value.Data()...)
	sim.Evaluate(x, y, 25, goldeneye.EmulationConfig{
		Format: numfmt.NewFP(2, 1, true), Weights: true, Neurons: true,
	})
	after := sim.Model().Params()[0].Value.Data()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Evaluate leaked quantized weights")
		}
	}
}

func TestAggressiveQuantizationDegradesAccuracy(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(100)
	native := sim.Evaluate(x, y, 25, goldeneye.EmulationConfig{})
	crushed := sim.Evaluate(x, y, 25, goldeneye.EmulationConfig{
		Format: numfmt.NewFP(2, 1, true), Weights: true, Neurons: true,
	})
	if crushed >= native {
		t.Fatalf("4-bit FP should hurt accuracy: native %v, crushed %v", native, crushed)
	}
}

func TestCampaignDeterministicPerSeed(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	run := func(seed uint64) *goldeneye.CampaignReport {
		rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
			Format:         numfmt.FP16(true),
			Site:           goldeneye.SiteValue,
			Target:         goldeneye.TargetNeuron,
			Layer:          sim.InjectableLayers()[1],
			Injections:     50,
			Seed:           seed,
			Pool:           &goldeneye.EvalPool{X: x, Y: y},
			EmulateNetwork: true,
			KeepTrace:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(1)
	if a.MeanDeltaLoss() != b.MeanDeltaLoss() || a.Mismatches != b.Mismatches {
		t.Fatal("campaign not deterministic for equal seeds")
	}
	for i := range a.Trace {
		if a.Trace[i].Fault != b.Trace[i].Fault {
			t.Fatal("fault sequences differ for equal seeds")
		}
	}
	c := run(2)
	same := true
	for i := range a.Trace {
		if a.Trace[i].Fault != c.Trace[i].Fault {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestCampaignMetadataOnPlainFormatFails(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	_, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteMetadata,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[0],
		Injections: 5,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	})
	if err == nil {
		t.Fatal("metadata campaign on FP must fail")
	}
}

func TestCampaignValidation(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	base := goldeneye.CampaignConfig{
		Format: numfmt.FP16(true), Site: goldeneye.SiteValue,
		Target: goldeneye.TargetNeuron, Layer: sim.InjectableLayers()[0],
		Injections: 5, Pool: &goldeneye.EvalPool{X: x, Y: y},
	}

	noFormat := base
	noFormat.Format = nil
	if _, err := sim.RunCampaign(context.Background(), noFormat); err == nil {
		t.Error("nil format accepted")
	}
	noInj := base
	noInj.Injections = 0
	if _, err := sim.RunCampaign(context.Background(), noInj); err == nil {
		t.Error("zero injections accepted")
	}
	badLayer := base
	badLayer.Layer = 9999
	if _, err := sim.RunCampaign(context.Background(), badLayer); err == nil {
		t.Error("bogus layer accepted")
	}
	badPool := base
	badPool.Pool = &goldeneye.EvalPool{X: x, Y: y[:4]}
	if _, err := sim.RunCampaign(context.Background(), badPool); err == nil {
		t.Error("mismatched pool accepted")
	}
	recoveryOnly := base
	recoveryOnly.Recovery = goldeneye.RecoverClamp
	if _, err := sim.RunCampaign(context.Background(), recoveryOnly); err == nil {
		t.Error("recovery policy without detectors accepted")
	}
}

func TestBFPMetadataFaultsWorseThanValueFaults(t *testing.T) {
	// The central resiliency finding of Fig 7: a single bit flip in BFP's
	// shared exponent behaves as a multi-bit flip across the tensor and
	// dominates data-value flips.
	sim, pool := loadSim(t, "resnet_s")
	x, y := pool.subset(24)
	layer := sim.InjectableLayers()[2]
	campaign := func(meta bool) float64 {
		site := goldeneye.SiteValue
		if meta {
			site = goldeneye.SiteMetadata
		}
		rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
			Format:         numfmt.BFPe5m5(),
			Site:           site,
			Target:         goldeneye.TargetNeuron,
			Layer:          layer,
			Injections:     120,
			Seed:           11,
			Pool:           &goldeneye.EvalPool{X: x, Y: y},
			UseRanger:      true,
			EmulateNetwork: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanDeltaLoss()
	}
	value, meta := campaign(false), campaign(true)
	if meta <= value*2 {
		t.Fatalf("metadata ΔLoss (%v) should dominate value ΔLoss (%v)", meta, value)
	}
}

func TestWeightTargetCampaignRuns(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	before := append([]float32(nil), sim.Model().Params()[0].Value.Data()...)
	rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetWeight,
		Layer:      sim.WeightedLayers()[0],
		Injections: 40,
		Seed:       3,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections != 40 {
		t.Fatalf("ran %d injections, want 40", rep.Injections)
	}
	after := sim.Model().Params()[0].Value.Data()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("weight campaign leaked corrupted weights")
		}
	}
}

func TestRangerSuppressesNonFinite(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	run := func(useRanger bool) *goldeneye.CampaignReport {
		rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
			Format:         numfmt.FP16(true),
			Site:           goldeneye.SiteValue,
			Target:         goldeneye.TargetNeuron,
			Layer:          sim.InjectableLayers()[0],
			Injections:     200,
			Seed:           5,
			Pool:           &goldeneye.EvalPool{X: x, Y: y},
			UseRanger:      useRanger,
			EmulateNetwork: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with, without := run(true), run(false)
	if with.NonFinite > 0 {
		t.Fatalf("ranger left %d non-finite outcomes", with.NonFinite)
	}
	if with.MeanDeltaLoss() > without.MeanDeltaLoss() {
		t.Fatalf("ranger increased mean ΔLoss: %v vs %v",
			with.MeanDeltaLoss(), without.MeanDeltaLoss())
	}
}

func TestMultiBitCampaign(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	run := func(flips int) *goldeneye.CampaignReport {
		rep, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
			Format:            numfmt.FP16(true),
			Site:              goldeneye.SiteValue,
			Target:            goldeneye.TargetNeuron,
			Layer:             sim.InjectableLayers()[1],
			Injections:        150,
			FlipsPerInjection: flips,
			Seed:              9,
			Pool:              &goldeneye.EvalPool{X: x, Y: y},
			UseRanger:         true,
			EmulateNetwork:    true,
			KeepTrace:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	single, triple := run(1), run(3)
	if len(single.Trace[0].Extra) != 0 {
		t.Fatalf("single-bit trace carries extra flips: %v", single.Trace[0])
	}
	if len(triple.Trace[0].Extra) != 2 {
		t.Fatalf("multi-bit trace missing extra flips: %v", triple.Trace[0])
	}
	if triple.Injections != 150 {
		t.Fatalf("ran %d injections", triple.Injections)
	}
	// Re-running with the same seed must reproduce the multi-flip faults.
	again := run(3)
	for i := range triple.Trace {
		if triple.Trace[i].Fault != again.Trace[i].Fault ||
			len(triple.Trace[i].Extra) != len(again.Trace[i].Extra) {
			t.Fatal("multi-bit campaign not deterministic")
		}
	}
}

func TestMultiBitWeightCampaignRestores(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	before := append([]float32(nil), sim.Model().Params()[0].Value.Data()...)
	_, err := sim.RunCampaign(context.Background(), goldeneye.CampaignConfig{
		Format:            numfmt.FP16(true),
		Site:              goldeneye.SiteValue,
		Target:            goldeneye.TargetWeight,
		Layer:             sim.WeightedLayers()[0],
		Injections:        30,
		FlipsPerInjection: 4,
		Seed:              13,
		Pool:              &goldeneye.EvalPool{X: x, Y: y},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := sim.Model().Params()[0].Value.Data()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("multi-bit weight campaign leaked corruption")
		}
	}
}

func TestRunDSEFindsLowWidthPoint(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(100)
	res := sim.RunDSE(x, y, 25, goldeneye.DSEConfig{
		Family:    goldeneye.FamilyFP,
		Threshold: 0.02,
	})
	if len(res.Nodes) == 0 || len(res.Nodes) > 16 {
		t.Fatalf("visited %d nodes", len(res.Nodes))
	}
	if res.Best == nil {
		t.Fatal("no acceptable design point found")
	}
	if res.Best.Point.Bits >= 32 {
		t.Fatalf("heuristic failed to shorten width: best %v", res.Best.Point)
	}
}

func TestTable1RowsExported(t *testing.T) {
	rows := goldeneye.Table1Rows()
	if len(rows) != 12 {
		t.Fatalf("Table1Rows returned %d rows, want 12", len(rows))
	}
}
