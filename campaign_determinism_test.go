package goldeneye_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/telemetry"
)

// Same seed, same campaign — the report must not depend on the worker
// count. Integer aggregates and the injected fault sequence are required
// to be bit-identical; the Welford-merged ΔLoss moments may differ only by
// floating-point reassociation (documented on RunCampaignParallel).
func TestCampaignDeterminismAcrossWorkerCounts(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.BFPe5m5(),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     96,
		Seed:           42,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		UseRanger:      true,
		EmulateNetwork: true,
		KeepTrace:      true,
	}

	reports := map[int]*goldeneye.CampaignReport{}
	for _, workers := range []int{1, 2, 8} {
		rep, err := goldeneye.RunCampaignParallel(context.Background(), cfg, workers, mlpBuilder(t))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports[workers] = rep
	}

	ref := reports[1]
	for _, workers := range []int{2, 8} {
		rep := reports[workers]
		if rep.Injections != ref.Injections ||
			rep.Mismatches != ref.Mismatches ||
			rep.NonFinite != ref.NonFinite ||
			rep.Detected != ref.Detected {
			t.Fatalf("workers=%d integer aggregates diverge: %+v vs %+v",
				workers, rep.CampaignResult, ref.CampaignResult)
		}
		if math.Abs(rep.MeanDeltaLoss()-ref.MeanDeltaLoss()) > 1e-9 {
			t.Fatalf("workers=%d mean ΔLoss %v vs %v", workers, rep.MeanDeltaLoss(), ref.MeanDeltaLoss())
		}
		if math.Abs(rep.DeltaLoss.Variance()-ref.DeltaLoss.Variance()) > 1e-6 {
			t.Fatalf("workers=%d ΔLoss variance %v vs %v", workers, rep.DeltaLoss.Variance(), ref.DeltaLoss.Variance())
		}
		if len(rep.Trace) != len(ref.Trace) {
			t.Fatalf("workers=%d trace length %d vs %d", workers, len(rep.Trace), len(ref.Trace))
		}
		for i := range ref.Trace {
			a, b := ref.Trace[i], rep.Trace[i]
			if a.Fault != b.Fault || a.Sample != b.Sample || a.Mismatch != b.Mismatch ||
				a.DeltaLoss != b.DeltaLoss {
				t.Fatalf("workers=%d trace diverges at %d: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}

func TestCampaignTelemetry(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	reg := telemetry.NewRegistry()
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP16(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     30,
		Seed:           7,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
		Metrics:        reg,
	}
	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(goldeneye.MetricCampaignInjections).Value(); got != int64(cfg.Injections) {
		t.Fatalf("injections counter = %d, want %d", got, cfg.Injections)
	}
	if got := reg.Counter(goldeneye.MetricCampaignMismatches).Value(); got != int64(rep.Mismatches) {
		t.Fatalf("mismatches counter = %d, want %d", got, rep.Mismatches)
	}
	if got := reg.Gauge(goldeneye.MetricCampaignPlanned).Value(); got != float64(cfg.Injections) {
		t.Fatalf("planned gauge = %v, want %d", got, cfg.Injections)
	}
	if got := reg.Histogram(goldeneye.MetricCampaignLatency, nil).Count(); got != int64(cfg.Injections) {
		t.Fatalf("latency histogram count = %d, want %d", got, cfg.Injections)
	}
	// Per-layer forward histograms must exist with observations for every
	// injectable layer (the clean reference passes alone guarantee > 0).
	found := 0
	for _, m := range reg.Snapshot() {
		if m.Kind == telemetry.KindHistogram &&
			strings.HasPrefix(m.Name, goldeneye.ForwardSecondsMetric+"{") && m.Count > 0 {
			found++
		}
	}
	if want := len(sim.Layers()); found != want {
		t.Fatalf("per-layer forward histograms with data: %d, want %d", found, want)
	}
}

func TestParallelCampaignTelemetryShards(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	reg := telemetry.NewRegistry()
	cfg := goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[0],
		Injections: 40,
		Seed:       9,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
		Metrics:    reg,
	}
	if _, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 4, mlpBuilder(t)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(goldeneye.MetricCampaignInjections).Value(); got != int64(cfg.Injections) {
		t.Fatalf("injections counter = %d, want %d", got, cfg.Injections)
	}
	var shardWork int64
	shards := 0
	for _, m := range reg.Snapshot() {
		if strings.HasPrefix(m.Name, goldeneye.MetricCampaignShardWork+"{") {
			shardWork += int64(m.Value)
		}
		if strings.HasPrefix(m.Name, goldeneye.MetricCampaignShardTime+"{") {
			shards++
		}
	}
	if shardWork != int64(cfg.Injections) {
		t.Fatalf("shard work counters sum to %d, want %d", shardWork, cfg.Injections)
	}
	if shards != 4 {
		t.Fatalf("shard timing gauges = %d, want 4", shards)
	}
}

func TestParallelCampaignWrapsWorkerError(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(4)
	cfg := goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[0],
		Injections: 8,
		Seed:       1,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	}
	var calls atomic.Int32
	_, err := goldeneye.RunCampaignParallel(context.Background(), cfg, 4, func() (*goldeneye.Simulator, error) {
		// First call (the scout) succeeds so the campaign reaches the
		// worker phase; later builds fail inside workers.
		if calls.Add(1) == 1 {
			return mlpBuilder(t)()
		}
		return nil, errBoom
	})
	if err == nil {
		t.Fatal("expected a worker error")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("worker error must wrap the cause, got %v", err)
	}
	if !strings.Contains(err.Error(), "campaign worker") {
		t.Fatalf("worker error must name the failing shard, got %q", err)
	}
}
