package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// WatchProgress renders a live single-line progress display to w every
// interval, driven by a counter of completed work items and a known total
// (0 = unknown, renders count and rate only). Each tick overwrites the
// previous line with \r, so w should be a terminal stream (stderr). The
// returned stop function halts the ticker, prints a final line terminated
// by a newline, and is safe to call more than once.
//
// The rendered line shows completed/total, percentage, the overall average
// rate, and the instantaneous rate over the last tick:
//
//	inject   1234/5000  24.7%   312.4/s (now 305.1/s)
func WatchProgress(w io.Writer, label string, done *Counter, total int64, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	start := time.Now()
	quit := make(chan struct{})
	finished := make(chan struct{})

	render := func(final bool) {
		cur := done.Value()
		elapsed := time.Since(start).Seconds()
		avg := 0.0
		if elapsed > 0 {
			avg = float64(cur) / elapsed
		}
		line := fmt.Sprintf("%-8s %d", label, cur)
		if total > 0 {
			line = fmt.Sprintf("%-8s %d/%d  %5.1f%%", label, cur, total, 100*float64(cur)/float64(total))
		}
		line += fmt.Sprintf("  %8.1f/s  %6.1fs elapsed", avg, elapsed)
		if final {
			fmt.Fprintf(w, "\r%s\n", line)
		} else {
			fmt.Fprintf(w, "\r%s", line)
		}
	}

	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				render(false)
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-finished
			render(true)
		})
	}
}
