package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a named collection of metrics with get-or-create semantics.
// Metric lookup is a lock-free sync.Map read after first creation, so
// fetching a metric inside a hot loop is acceptable (though callers on the
// hottest paths should still cache the returned pointer).
type Registry struct {
	counters sync.Map // name → *Counter
	gauges   sync.Map // name → *Gauge
	hists    sync.Map // name → *Histogram

	mu         sync.Mutex
	collectors []Collector
}

// Collector is a callback that contributes externally maintained values
// (e.g. package-level atomic counters in internal/tensor or
// internal/numfmt) to a registry snapshot. It is invoked at exposition
// time with a set function; each set call adds one gauge-typed sample to
// the snapshot, overwriting any earlier sample of the same name.
type Collector func(set func(name string, value float64))

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry is the process-wide registry returned by Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, which the cmd front-ends use
// so that instrumentation from every layer lands in one exposition.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later calls return the existing histogram regardless of
// bounds, so every call site for one name should pass the same layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, NewHistogram(bounds))
	return v.(*Histogram)
}

// RegisterCollector adds a snapshot-time value source. Collectors run in
// registration order on every Snapshot/WritePrometheus/WriteJSON call.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// MetricKind distinguishes snapshot entries.
type MetricKind int

// Snapshot metric kinds.
const (
	KindCounter MetricKind = iota + 1
	KindGauge
	KindHistogram
)

// Metric is one snapshot entry. Value is set for counters and gauges;
// Buckets/Sum/Count for histograms.
type Metric struct {
	Name    string
	Kind    MetricKind
	Value   float64
	Buckets []Bucket
	Sum     float64
	Count   int64
}

// Snapshot returns every metric (including collector-contributed gauges),
// sorted by name for deterministic exposition.
func (r *Registry) Snapshot() []Metric {
	var out []Metric
	r.counters.Range(func(k, v any) bool {
		out = append(out, Metric{Name: k.(string), Kind: KindCounter, Value: float64(v.(*Counter).Value())})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		out = append(out, Metric{Name: k.(string), Kind: KindGauge, Value: v.(*Gauge).Value()})
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		out = append(out, Metric{Name: k.(string), Kind: KindHistogram, Buckets: h.Buckets(), Sum: h.Sum(), Count: h.Count()})
		return true
	})
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	collected := make(map[string]float64)
	for _, c := range collectors {
		c(func(name string, value float64) { collected[name] = value })
	}
	for name, value := range collected {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Label returns name with the given label pairs appended in Prometheus
// syntax: Label("x_total", "worker", "3") == `x_total{worker="3"}`. Pairs
// append to an existing label block. Values are quoted verbatim; callers
// must not pass values containing `"` or `\`.
func Label(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic("telemetry: Label requires an even number of key/value strings")
	}
	var pairs []string
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		base = name[:i]
		if inner := name[i+1 : len(name)-1]; inner != "" {
			pairs = append(pairs, inner)
		}
	}
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	return base + "{" + strings.Join(pairs, ",") + "}"
}

// splitName separates a metric name into its base and the inner label
// block ("" when unlabeled): `x{a="b"}` → (`x`, `a="b"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// formatValue renders a float the way Prometheus text exposition expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric base name, counters
// and gauges as single samples, histograms as cumulative _bucket/_sum/
// _count series with an `le` label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	writeType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	for _, m := range r.Snapshot() {
		base, labels := splitName(m.Name)
		switch m.Kind {
		case KindCounter, KindGauge:
			kind := "counter"
			if m.Kind == KindGauge {
				kind = "gauge"
			}
			if err := writeType(base, kind); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
				return err
			}
		case KindHistogram:
			if err := writeType(base, "histogram"); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				lb := `le="` + formatValue(b.UpperBound) + `"`
				if labels != "" {
					lb = labels + "," + lb
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, lb, cum); err != nil {
					return err
				}
			}
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatValue(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonHistogram mirrors Metric's histogram fields for JSON exposition.
type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	LE    string `json:"le"` // upper bound; "+Inf" for the overflow bucket
	Count int64  `json:"count"`
}

// WriteJSON renders the registry as a single JSON object with "counters",
// "gauges", and "histograms" maps, keyed by full metric name (labels
// included). Bucket counts are non-cumulative, unlike the Prometheus text
// form.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]jsonHistogram),
	}
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case KindCounter:
			doc.Counters[m.Name] = int64(m.Value)
		case KindGauge:
			doc.Gauges[m.Name] = m.Value
		case KindHistogram:
			jh := jsonHistogram{Count: m.Count, Sum: m.Sum}
			for _, b := range m.Buckets {
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: formatValue(b.UpperBound), Count: b.Count})
			}
			doc.Histograms[m.Name] = jh
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
