package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	c.Add(-5)
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter decreased to %d; negative deltas must be ignored", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w % 4 * 50)) // 0, 50, 100, 150
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	b := h.Buckets()
	// Workers 0 and 4 observed 0 (≤1); 1 and 5 observed 50 (≤100); 2 and 6
	// observed 100 (≤100); 3 and 7 observed 150 (+Inf).
	want := []int64{2 * per, 0, 4 * per, 2 * per}
	for i, wb := range want {
		if b[i].Count != wb {
			t.Fatalf("bucket %d = %d, want %d (buckets %+v)", i, b[i].Count, wb, b)
		}
	}
	if !math.IsInf(b[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", b[3].UpperBound)
	}
	if got, want := h.Sum(), float64(2*per*0+2*per*50+2*per*100+2*per*150); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return the same counter")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("x", []float64{1}) != r.Histogram("x", nil) {
		t.Fatal("same name must return the same histogram")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared_total").Inc()
				r.Counter(Label("sharded_total", "worker", fmt.Sprint(w))).Inc()
				r.Histogram("lat_seconds", DurationBuckets).Observe(1e-4)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Fatalf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("lat_seconds", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("goldeneye_test_injections_total").Add(42)
	r.Gauge("goldeneye_test_planned").Set(100)
	h := r.Histogram(Label("goldeneye_test_seconds", "layer", "0:fc(linear)"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.RegisterCollector(func(set func(string, float64)) {
		set("goldeneye_test_collected", 7)
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE goldeneye_test_collected gauge
goldeneye_test_collected 7
# TYPE goldeneye_test_injections_total counter
goldeneye_test_injections_total 42
# TYPE goldeneye_test_planned gauge
goldeneye_test_planned 100
# TYPE goldeneye_test_seconds histogram
goldeneye_test_seconds_bucket{layer="0:fc(linear)",le="0.1"} 1
goldeneye_test_seconds_bucket{layer="0:fc(linear)",le="1"} 2
goldeneye_test_seconds_bucket{layer="0:fc(linear)",le="+Inf"} 3
goldeneye_test_seconds_sum{layer="0:fc(linear)"} 5.55
goldeneye_test_seconds_count{layer="0:fc(linear)"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestJSONExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64   `json:"count"`
			Sum     float64 `json:"sum"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["c_total"] != 3 || doc.Gauges["g"] != 1.5 {
		t.Fatalf("unexpected scalar values: %+v", doc)
	}
	h := doc.Histograms["h_seconds"]
	if h.Count != 1 || h.Sum != 0.5 || len(h.Buckets) != 2 ||
		h.Buckets[0].LE != "1" || h.Buckets[0].Count != 1 || h.Buckets[1].LE != "+Inf" {
		t.Fatalf("unexpected histogram: %+v", h)
	}
}

func TestLabel(t *testing.T) {
	if got, want := Label("x_total", "worker", "3"), `x_total{worker="3"}`; got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	if got, want := Label(`x{a="b"}`, "c", "d"), `x{a="b",c="d"}`; got != want {
		t.Fatalf("Label append = %q, want %q", got, want)
	}
	base, labels := splitName(`x{a="b"}`)
	if base != "x" || labels != `a="b"` {
		t.Fatalf("splitName = %q, %q", base, labels)
	}
}

func TestSpan(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	s := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := s.End(); d < time.Millisecond {
		t.Fatalf("span measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	var inert Span
	if inert.End() != 0 {
		t.Fatal("zero Span must be inert")
	}
	if StartSpan(nil).End() != 0 {
		t.Fatal("nil-histogram span must be inert")
	}
}

func TestWatchProgress(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var done Counter
	stop := WatchProgress(w, "test", &done, 100, 5*time.Millisecond)
	done.Add(50)
	time.Sleep(25 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "50/100") || !strings.Contains(out, "50.0%") {
		t.Fatalf("progress output missing count/percent: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final line must end with newline: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	addr, shutdown, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if !strings.Contains(get("/metrics"), "up_total 1") {
		t.Fatal("/metrics missing counter")
	}
	if !strings.Contains(get("/metrics.json"), `"up_total": 1`) {
		t.Fatal("/metrics.json missing counter")
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("/debug/pprof/ not serving")
	}
}
