package telemetry

import "time"

// Span measures one wall-clock section and records its duration, in
// seconds, into a histogram. The zero Span is inert (End returns 0 and
// records nothing), so instrumentation can be compiled in unconditionally
// and activated only when a registry is attached:
//
//	span := telemetry.StartSpan(h) // h may be nil
//	defer span.End()
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing. A nil histogram yields an inert span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span, records its duration into the histogram, and
// returns the elapsed time. Calling End on an inert span returns 0.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}
