// Package telemetry is GoldenEye's instrumentation substrate: counters,
// gauges, and fixed-bucket histograms on lock-free atomics, collected in a
// Registry with Prometheus-text and JSON exposition, plus a Span helper for
// timing wall-clock sections and a progress-line renderer for long-running
// campaigns.
//
// The package is dependency-free (standard library only) by design, so any
// layer of the simulator — tensor kernels, the nn substrate, the campaign
// engine — can be instrumented without import-cycle or dependency concerns.
// Hot-path operations (Inc, Add, Observe, Set) are single atomic updates;
// metric lookup through the Registry is a lock-free sync.Map read after the
// first access.
//
// Metric names follow the Prometheus convention
// goldeneye_<subsystem>_<metric>_<unit>, with optional labels embedded in
// the name via Label (e.g. `goldeneye_nn_forward_seconds{layer="3"}`). See
// README.md in this directory for the naming rules and the full metric
// inventory.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: a counter only goes up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down (stored as IEEE-754
// bits in a uint64). The zero value is ready to use; all methods are safe
// for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (defined by their
// inclusive upper bounds, plus an implicit +Inf overflow bucket) and tracks
// their sum. Observe is a bucket scan plus three atomic updates — no locks —
// so it is safe on hot paths shared by campaign workers.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last entry is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds. An empty bounds slice yields a single +Inf bucket (the
// histogram still tracks count and sum).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below UpperBound that exceeded the previous bound (non-cumulative).
// The final bucket has UpperBound +Inf.
type Bucket struct {
	UpperBound float64
	Count      int64
}

// Buckets returns a consistent-enough snapshot of the per-bucket counts
// (individual buckets are read atomically; the set is not a single atomic
// snapshot, which is fine for monitoring).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.bounds {
		out[i] = Bucket{UpperBound: h.bounds[i], Count: h.counts[i].Load()}
	}
	out[len(h.bounds)] = Bucket{UpperBound: math.Inf(1), Count: h.counts[len(h.bounds)].Load()}
	return out
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor: the standard shape for latency histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default bucket layout for wall-clock sections,
// spanning 1µs to ~4s — wide enough for a single layer forward on a small
// model and a full injected inference on a large one.
var DurationBuckets = ExponentialBuckets(1e-6, 4, 12)
