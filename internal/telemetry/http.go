package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Mux returns the observability mux over reg:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON exposition
//	/debug/pprof/   net/http/pprof index (profile, heap, trace, ...)
//
// ServeDebug serves exactly this mux; servers with their own routing (the
// campaign daemon) mount it alongside their API instead of running a
// second listener.
func Mux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP debug server on addr (e.g. "localhost:6060")
// serving Mux(reg). It returns the bound address (useful with a ":0" port)
// and a shutdown function. The server runs until shutdown is called or the
// process exits; serving errors after a successful bind are discarded,
// matching the fire-and-forget role of a debug endpoint.
func ServeDebug(addr string, reg *Registry) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Mux(reg)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
