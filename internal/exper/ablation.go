package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// AblationRow is one point of the BFP block-size ablation: accuracy and
// metadata-fault resilience as the shared-exponent block shrinks from the
// whole tensor (the paper's configuration, whose accuracy drops Fig 6
// attributes to "a large shared block size across an entire layer") down
// to fine-grained blocks.
type AblationRow struct {
	Model       string
	BlockSize   int // 0 = whole tensor
	Accuracy    float64
	MetaDelta   float64 // mean ΔLoss of shared-exponent faults
	MetaRegBits int     // total metadata register bits for a 4096-elem tensor
}

// AblationBFPBlock sweeps BFP block sizes for one model, measuring the
// accuracy/resilience/metadata-cost trade-off the block size controls:
// smaller blocks preserve small-magnitude values (higher accuracy) and
// shrink each fault's blast radius, at the cost of more exponent registers.
func AblationBFPBlock(ctx context.Context, model string, w io.Writer, o Options) ([]AblationRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	vp := valPool(ds, o)
	pool := injPool(ds, 32, o)
	layer := sim.InjectableLayers()[len(sim.InjectableLayers())/2]

	var rows []AblationRow
	for _, block := range []int{0, 256, 64, 16, 4} {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		format := numfmt.NewBFP(5, 3, block)
		acc := sim.EvaluatePool(vp, goldeneye.EmulationConfig{
			Format: format, Weights: true, Neurons: true,
		})
		rep, err := runCell(ctx, sim, fmt.Sprintf("ablation/%s/block%04d", model, block), goldeneye.CampaignConfig{
			Format:         format,
			Site:           inject.SiteMetadata,
			Target:         inject.TargetNeuron,
			Layer:          layer,
			Injections:     orDefault(o.Injections, 300),
			Seed:           uint64(block + 1),
			Pool:           pool,
			BatchSize:      o.campaignBatch(),
			UseRanger:      true,
			EmulateNetwork: true,
		}, o)
		if err != nil {
			return rows, err
		}
		row := AblationRow{
			Model:       paperName(model),
			BlockSize:   block,
			Accuracy:    acc,
			MetaDelta:   rep.MeanDeltaLoss(),
			MetaRegBits: format.MetaBits(4096),
		}
		rows = append(rows, row)
		if w != nil {
			label := fmt.Sprintf("%d", block)
			if block == 0 {
				label = "whole-tensor"
			}
			fmt.Fprintf(w, "%-12s block=%-12s acc=%.4f  metadata ΔLoss=%.4f  reg bits/4096 elems=%d\n",
				row.Model, label, row.Accuracy, row.MetaDelta, row.MetaRegBits)
		}
	}
	return rows, nil
}
