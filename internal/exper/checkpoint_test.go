package exper

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"goldeneye"
	"goldeneye/internal/checkpoint"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// countingFormat counts Quantize calls (one per executed injection when
// neither emulation nor the ranger quantizes anything else) and can cancel
// a context from inside the nth call to interrupt a sweep deterministically.
type countingFormat struct {
	numfmt.Format
	calls    *atomic.Int64
	cancelAt int64
	cancel   context.CancelFunc
}

func (f *countingFormat) Quantize(t *tensor.Tensor) *numfmt.Encoding {
	if n := f.calls.Add(1); f.cancel != nil && n == f.cancelAt {
		f.cancel()
	}
	return f.Format.Quantize(t)
}

func cellConfig(sim *goldeneye.Simulator, x *goldeneye.Tensor, y []int, injections int) goldeneye.CampaignConfig {
	return goldeneye.CampaignConfig{
		Format:     numfmt.FP16(true),
		Site:       goldeneye.SiteValue,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[1],
		Injections: injections,
		Seed:       31,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	}
}

func TestRunCellServesCompletedCellWithoutRerun(t *testing.T) {
	sim, ds, err := loadSim("mlp", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, y := ds.ValX.Slice(0, 8), ds.ValY[:8]
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Checkpoint = st

	calls := new(atomic.Int64)
	cfg := cellConfig(sim, x, y, 20)
	cfg.Format = &countingFormat{Format: numfmt.FP16(true), calls: calls}

	first, err := runCell(context.Background(), sim, "test/cell", cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	ran := calls.Load()
	if ran != 20 {
		t.Fatalf("fresh cell executed %d injections, want 20", ran)
	}

	second, err := runCell(context.Background(), sim, "test/cell", cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != ran {
		t.Fatalf("completed cell re-ran injections: %d calls after replay", calls.Load())
	}
	if second.CampaignResult != first.CampaignResult || second.Detected != first.Detected {
		t.Fatalf("checkpointed report differs: %+v vs %+v", second.CampaignResult, first.CampaignResult)
	}
}

func TestRunCellResumesInterruptedCellBitIdentical(t *testing.T) {
	sim, ds, err := loadSim("mlp", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, y := ds.ValX.Slice(0, 8), ds.ValY[:8]

	// Reference: the same cell run uninterrupted without a store.
	want, err := sim.RunCampaign(context.Background(), cellConfig(sim, x, y, 40))
	if err != nil {
		t.Fatal(err)
	}

	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Checkpoint = st

	// Interrupt the cell from inside injection 12 — runCell must persist
	// the partial state before surfacing the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := cellConfig(sim, x, y, 40)
	cfg.Format = &countingFormat{Format: numfmt.FP16(true), calls: new(atomic.Int64), cancelAt: 12, cancel: cancel}
	if _, err := runCell(ctx, sim, "test/resume", cfg, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	cell, err := st.Load("test/resume")
	if err != nil || cell == nil {
		t.Fatalf("interrupted cell not persisted: cell=%v err=%v", cell, err)
	}
	if cell.Done || cell.Completed != 12 {
		t.Fatalf("persisted cell state wrong: done=%v completed=%d, want partial at 12", cell.Done, cell.Completed)
	}

	// Resume: only the remaining 28 injections execute, and the merged
	// report matches the uninterrupted run bit for bit.
	resumed := new(atomic.Int64)
	cfg = cellConfig(sim, x, y, 40)
	cfg.Format = &countingFormat{Format: numfmt.FP16(true), calls: resumed}
	got, err := runCell(context.Background(), sim, "test/resume", cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Load() != 28 {
		t.Fatalf("resume executed %d injections, want the remaining 28", resumed.Load())
	}
	if got.Injections != want.Injections || got.Mismatches != want.Mismatches ||
		got.NonFinite != want.NonFinite ||
		got.DeltaLoss.Mean() != want.DeltaLoss.Mean() ||
		got.DeltaLoss.Variance() != want.DeltaLoss.Variance() {
		t.Fatalf("resumed cell diverges from uninterrupted run:\n got %+v\nwant %+v",
			got.CampaignResult, want.CampaignResult)
	}
}

func TestRunCellDiscardsStaleHash(t *testing.T) {
	sim, ds, err := loadSim("mlp", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, y := ds.ValX.Slice(0, 8), ds.ValY[:8]
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Checkpoint = st

	cfg := cellConfig(sim, x, y, 20)
	if _, err := runCell(context.Background(), sim, "test/stale", cfg, o); err != nil {
		t.Fatal(err)
	}

	// Same key, different seed: the persisted cell no longer applies and
	// the campaign must re-run from scratch rather than resume.
	calls := new(atomic.Int64)
	cfg = cellConfig(sim, x, y, 20)
	cfg.Seed = 99
	cfg.Format = &countingFormat{Format: numfmt.FP16(true), calls: calls}
	if _, err := runCell(context.Background(), sim, "test/stale", cfg, o); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 {
		t.Fatalf("stale cell was reused: only %d injections executed", calls.Load())
	}
}
