package exper

import (
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// Pinned cell hashes from before the detection subsystem landed. Detector
// configuration joins the hash only when detectors are set, so every
// persisted sweep checkpoint from earlier releases must still resolve to
// the same hash — a silent change here would discard (or worse, mis-resume)
// existing checkpoint directories.
func TestCellHashPinned(t *testing.T) {
	pool := &goldeneye.EvalPool{X: tensor.New(16, 4), Y: make([]int, 16)}
	cases := []struct {
		name string
		cfg  goldeneye.CampaignConfig
		want uint64
	}{
		{
			name: "fp16_value_neuron",
			cfg: goldeneye.CampaignConfig{
				Format: numfmt.FP16(true), Site: goldeneye.SiteValue,
				Target: goldeneye.TargetNeuron, Layer: 2, Injections: 1000,
				Seed: 77, Pool: pool, EmulateNetwork: true,
			},
			want: 0x2728bf4f168acb5c,
		},
		{
			name: "bfp_metadata_ranger",
			cfg: goldeneye.CampaignConfig{
				Format: numfmt.BFPe5m5(), Site: goldeneye.SiteMetadata,
				Target: goldeneye.TargetNeuron, Layer: 4, Injections: 500,
				Seed: 9, Pool: pool, UseRanger: true, EmulateNetwork: true,
			},
			want: 0x4db29a4b9b2a197f,
		},
		{
			name: "fp16_weight_dmr",
			cfg: goldeneye.CampaignConfig{
				Format: numfmt.FP16(true), Site: goldeneye.SiteValue,
				Target: goldeneye.TargetWeight, Layer: 1, Injections: 250,
				Seed: 154, Pool: pool, MeasureDMR: true, QuantizeWeights: true,
			},
			want: 0xa6621b5e29014015,
		},
	}
	for _, tc := range cases {
		if got := CellHash(tc.cfg); got != tc.want {
			t.Errorf("%s: cellHash = %#x, pinned %#x", tc.name, got, tc.want)
		}
	}
}

// Detector options must change the hash (a cell swept with a different
// pipeline is a different experiment), and distinct pipelines must hash
// differently.
func TestCellHashDetectorsDistinguish(t *testing.T) {
	pool := &goldeneye.EvalPool{X: tensor.New(8, 4), Y: make([]int, 8)}
	base := goldeneye.CampaignConfig{
		Format: numfmt.FP16(true), Site: goldeneye.SiteValue,
		Target: goldeneye.TargetNeuron, Layer: 2, Injections: 100,
		Seed: 1, Pool: pool,
	}
	withRanger := base
	specs, err := goldeneye.ParseDetectors("ranger")
	if err != nil {
		t.Fatal(err)
	}
	withRanger.Detectors = specs
	withAbort := withRanger
	withAbort.Recovery = goldeneye.RecoverAbort
	h0, h1, h2 := CellHash(base), CellHash(withRanger), CellHash(withAbort)
	if h0 == h1 || h1 == h2 || h0 == h2 {
		t.Fatalf("detector configs must produce distinct hashes: %#x %#x %#x", h0, h1, h2)
	}
}
