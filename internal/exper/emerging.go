package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/numfmt"
)

// EmergingRow compares an emerging format against the paper's five families
// at a similar storage budget.
type EmergingRow struct {
	Model    string
	Class    string // "8-bit" or "16-bit"
	Format   string
	Bits     int
	Accuracy float64
}

// Emerging evaluates the formats this repository implements beyond the
// paper — posit, logarithmic, and normal-float codebook quantization —
// against the classic families at matched widths, demonstrating the open
// Format interface absorbing "future number formats" (Table II's last
// capability row).
func Emerging(ctx context.Context, models []string, w io.Writer, o Options) ([]EmergingRow, error) {
	classes := []struct {
		name    string
		formats []numfmt.Format
	}{
		{
			name: "16-bit",
			formats: []numfmt.Format{
				numfmt.FP16(true), numfmt.FxP16(), numfmt.INT16(),
				numfmt.Posit16(), numfmt.LNS16(),
			},
		},
		{
			name: "8-bit",
			formats: []numfmt.Format{
				numfmt.FP8E4M3(true), numfmt.NewFxP(3, 4), numfmt.INT8(),
				numfmt.NewAFP(4, 3, true), numfmt.Posit8(), numfmt.LNS8(),
			},
		},
		{
			name: "4-bit",
			formats: []numfmt.Format{
				numfmt.NewFP(2, 1, true), numfmt.NewINT(4), numfmt.NF4(),
				numfmt.NewPosit(4, 0),
			},
		},
	}

	var rows []EmergingRow
	for _, name := range models {
		sim, ds, err := loadSim(name, o)
		if err != nil {
			return nil, err
		}
		vp := valPool(ds, o)
		for _, class := range classes {
			for _, format := range class.formats {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				acc := sim.EvaluatePool(vp, goldeneye.EmulationConfig{
					Format: format, Weights: true, Neurons: true,
				})
				row := EmergingRow{
					Model:    paperName(name),
					Class:    class.name,
					Format:   format.Name(),
					Bits:     format.BitWidth(),
					Accuracy: acc,
				}
				rows = append(rows, row)
				if w != nil {
					fmt.Fprintf(w, "%-12s %-7s %-14s bits=%-2d acc=%.3f\n",
						row.Model, row.Class, row.Format, row.Bits, row.Accuracy)
				}
			}
		}
	}
	return rows, nil
}
