package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/dse"
)

// Fig4Row is one point of Fig 4: a model's validation accuracy under one
// format family at one bitwidth (weights and neurons emulated, no
// fine-tuning — "the results are purely from changing the number format").
type Fig4Row struct {
	Model    string
	Family   string
	Bits     int
	Format   string
	Accuracy float64
}

// Fig4Bitwidths are the paper's swept widths.
var Fig4Bitwidths = []int{32, 16, 12, 8, 4}

// fig4Point picks each family's geometry at a given total width, following
// the paper's convention of named formats where they exist (FP32, FP16,
// FP8 e4m3, FP e2m5 at 8-bit alternatives, etc.).
func fig4Point(family dse.Family, bits int) dse.Point {
	p := dse.Point{Family: family, Bits: bits}
	switch family {
	case dse.FamilyFP, dse.FamilyAFP:
		switch bits {
		case 32:
			p.Radix = 23 // e8m23
		case 16:
			p.Radix = 10 // e5m10
		case 12:
			p.Radix = 6 // e5m6
		case 8:
			p.Radix = 3 // e4m3
		case 4:
			p.Radix = 1 // e2m1
		default:
			p.Radix = bits / 2
		}
		if family == dse.FamilyAFP && bits == 32 {
			p.Radix = 23
			// AFP's bias register caps the exponent at 8 bits; e8m23 fits.
		}
	case dse.FamilyFxP:
		p.Radix = bits / 2
	case dse.FamilyBFP:
		p.Radix = 5 // shared-exponent width; per-value bits-1 mantissa
	}
	return p
}

// Fig4 sweeps accuracy versus bitwidth for each format family on the given
// models (paper uses ResNet18 and DeiT-tiny).
func Fig4(ctx context.Context, models []string, w io.Writer, o Options) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, name := range models {
		sim, ds, err := loadSim(name, o)
		if err != nil {
			return nil, err
		}
		vp := valPool(ds, o)

		native := sim.EvaluatePool(vp, goldeneye.EmulationConfig{})
		rows = append(rows, Fig4Row{Model: paperName(name), Family: "native", Bits: 32, Format: "fp32", Accuracy: native})
		if w != nil {
			fmt.Fprintf(w, "%-12s %-6s bits=%-2d %-14s acc=%.3f (baseline)\n", paperName(name), "native", 32, "fp32", native)
		}

		for _, family := range dse.Families() {
			for _, bits := range Fig4Bitwidths {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				pt := fig4Point(family, bits)
				format, err := dse.MakeFormat(pt)
				if err != nil {
					continue // geometry not expressible at this width
				}
				acc := sim.EvaluatePool(vp, goldeneye.EmulationConfig{
					Format: format, Weights: true, Neurons: true,
				})
				rows = append(rows, Fig4Row{
					Model:    paperName(name),
					Family:   string(family),
					Bits:     bits,
					Format:   format.Name(),
					Accuracy: acc,
				})
				if w != nil {
					fmt.Fprintf(w, "%-12s %-6s bits=%-2d %-14s acc=%.3f\n",
						paperName(name), family, bits, format.Name(), acc)
				}
			}
		}
	}
	return rows, nil
}
