package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
	"goldeneye/internal/train"
)

// SecurityRow is one point of the §V-D security use case: a model's
// accuracy on FGSM-adversarial inputs when inference runs under a given
// number format ("GoldenEye can be used to simulate different number
// formats for a given adversarial attack, and be used to assess the
// attack's efficacy").
type SecurityRow struct {
	Model      string
	Format     string
	Epsilon    float64
	CleanAcc   float64
	AdvAcc     float64
	AttackDrop float64 // CleanAcc − AdvAcc
}

// FGSM crafts fast-gradient-sign-method adversarial examples against the
// model in its native FP32 configuration: x' = x + ε·sign(∇ₓ loss). Input
// gradients need a backward pass, which for BatchNorm requires a training-
// mode forward; the running statistics that forward would perturb are
// snapshotted and restored, so crafting leaves the model untouched.
func FGSM(model nn.Module, x *tensor.Tensor, y []int, eps float64) *tensor.Tensor {
	var frozen [][]float32
	params := model.Params()
	for _, p := range params {
		if p.Frozen {
			frozen = append(frozen, append([]float32(nil), p.Value.Data()...))
		}
	}
	ctx := &nn.Context{Training: true}
	logits := nn.Forward(ctx, model, x)
	_, grad := train.SoftmaxCrossEntropy(logits, y)
	dx := model.Backward(grad)
	nn.ZeroGrads(model) // attack crafting must not leave gradient residue
	i := 0
	for _, p := range params {
		if p.Frozen {
			copy(p.Value.Data(), frozen[i])
			i++
		}
	}
	adv := x.Clone()
	data := adv.Data()
	for i, g := range dx.Data() {
		switch {
		case g > 0:
			data[i] += float32(eps)
		case g < 0:
			data[i] -= float32(eps)
		}
	}
	return adv
}

// SecurityFGSM crafts FGSM examples once (against native FP32) and then
// measures how well the attack transfers to the same model running under
// each emulated number format.
func SecurityFGSM(ctx context.Context, model string, epsilons []float64, w io.Writer, o Options) ([]SecurityRow, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0.05, 0.15}
	}
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	vp := valPool(ds, o)
	x, y := vp.X, vp.Y

	formats := []numfmt.Format{
		nil, // native
		numfmt.FP8E4M3(true),
		numfmt.INT8(),
		numfmt.BFPe5m5(),
		numfmt.AFPe5m2(),
		numfmt.Posit8(),
		numfmt.NF4(),
	}

	var rows []SecurityRow
	for _, eps := range epsilons {
		adv := FGSM(sim.Model(), x, y, eps)
		for _, format := range formats {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := goldeneye.EmulationConfig{}
			name := "native_fp32"
			if format != nil {
				cfg = goldeneye.EmulationConfig{Format: format, Weights: true, Neurons: true}
				name = format.Name()
			}
			clean := sim.EvaluatePool(vp, cfg)
			advAcc := sim.Evaluate(adv, y, o.batchSize(), cfg)
			row := SecurityRow{
				Model:      paperName(model),
				Format:     name,
				Epsilon:    eps,
				CleanAcc:   clean,
				AdvAcc:     advAcc,
				AttackDrop: clean - advAcc,
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-12s %-14s ε=%.2f clean=%.3f adv=%.3f drop=%.3f\n",
					row.Model, row.Format, eps, clean, advAcc, row.AttackDrop)
			}
		}
	}
	return rows, nil
}
