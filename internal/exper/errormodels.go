package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// ErrorModelRow is one error model's campaign outcome, extending the
// paper's "fast DNN reliability analysis for different error models" use
// case beyond the single-bit transient flip.
type ErrorModelRow struct {
	Model        string
	Format       string
	Kind         string
	Site         string
	MeanDelta    float64
	MismatchRate float64
}

// ErrorModels compares the four error models (transient flip, stuck-at-0,
// stuck-at-1, burst) for one model under one format, at value and metadata
// sites. Burst faults dominate single-element models; the relative severity
// of the two stuck-at directions depends on the resting bit values of the
// targeted layer (a stuck-at matching the stored bit is a no-op).
func ErrorModels(ctx context.Context, model string, format numfmt.Format, w io.Writer, o Options) ([]ErrorModelRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	pool := injPool(ds, 48, o)
	layer := sim.InjectableLayers()[len(sim.InjectableLayers())/2]

	kinds := []inject.FaultKind{
		inject.KindFlip, inject.KindStuckAt0, inject.KindStuckAt1, inject.KindBurst,
	}
	sites := []inject.Site{inject.SiteValue}
	if inject.MetaBitWidth(format) > 0 {
		sites = append(sites, inject.SiteMetadata)
	}

	var rows []ErrorModelRow
	for _, site := range sites {
		for _, kind := range kinds {
			key := fmt.Sprintf("errormodels/%s/%s/%s/%s", model, format.Name(), kind, site)
			rep, err := runCell(ctx, sim, key, goldeneye.CampaignConfig{
				Format:         format,
				Site:           site,
				Target:         inject.TargetNeuron,
				FaultKind:      kind,
				Layer:          layer,
				Injections:     orDefault(o.Injections, 500),
				Seed:           uint64(kind)<<8 | uint64(site),
				Pool:           pool,
				BatchSize:      o.campaignBatch(),
				UseRanger:      true,
				EmulateNetwork: true,
			}, o)
			if err != nil {
				return rows, err
			}
			row := ErrorModelRow{
				Model:        paperName(model),
				Format:       format.Name(),
				Kind:         kind.String(),
				Site:         site.String(),
				MeanDelta:    rep.MeanDeltaLoss(),
				MismatchRate: rep.MismatchRate(),
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-12s %-14s %-10s %-9s ΔLoss=%8.4f mismatch=%.3f\n",
					row.Model, row.Format, row.Kind, row.Site, row.MeanDelta, row.MismatchRate)
			}
		}
	}
	return rows, nil
}
