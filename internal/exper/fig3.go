package exper

import (
	"context"
	"fmt"
	"io"
	"time"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// Fig3Row is one bar of Fig 3: a model × format-configuration runtime, with
// error injection off, on for data values, or on for metadata.
type Fig3Row struct {
	Model    string
	Config   string
	EI       string // "off", "value", "metadata"
	AvgTime  time.Duration
	Slowdown float64 // relative to the native baseline
}

// fig3Configs lists the 14 format configurations of Fig 3: the native
// baseline plus emulated FP/FxP/INT (fast, arithmetic path) and BFP/AFP
// (slow, code-based path).
func fig3Configs() []struct {
	name   string
	format numfmt.Format
	meta   bool
} {
	return []struct {
		name   string
		format numfmt.Format
		meta   bool
	}{
		{name: "native_fp32"},
		{name: "fp32", format: numfmt.FP32(true)},
		{name: "fp16", format: numfmt.FP16(true)},
		{name: "bfloat16", format: numfmt.BFloat16(true)},
		{name: "tf32", format: numfmt.TensorFloat32(true)},
		{name: "fp8_e4m3", format: numfmt.FP8E4M3(true)},
		{name: "fxp_1_15_16", format: numfmt.FxP32()},
		{name: "fxp_1_7_8", format: numfmt.FxP16()},
		{name: "int16", format: numfmt.INT16(), meta: true},
		{name: "int8", format: numfmt.INT8(), meta: true},
		{name: "bfp_e8m7", format: numfmt.NewBFP(8, 7, 0), meta: true},
		{name: "bfp_e5m5", format: numfmt.BFPe5m5(), meta: true},
		{name: "afp_e5m2", format: numfmt.AFPe5m2(), meta: true},
		{name: "afp_e4m3", format: numfmt.NewAFP(4, 3, true), meta: true},
	}
}

// Fig3 measures inference runtime for every format configuration and EI
// mode, reproducing the shape of the paper's Fig 3: native fastest, FP/FxP/
// INT near-native, BFP/AFP notably slower, EI overhead negligible.
//
// The BFP/AFP slowdown the paper reports is the cost of the generic
// quantize→dequantize code path, so that is what this experiment runs:
// fused kernels are disabled for the duration of the measurement. The
// fused-kernel performance story (which closes exactly this gap) is
// measured by the campaign bench matrix instead — see BENCH_campaign.json
// and docs/PERFORMANCE.md.
func Fig3(ctx context.Context, models []string, runs int, w io.Writer, o Options) ([]Fig3Row, error) {
	if runs <= 0 {
		runs = 5
	}
	defer numfmt.SetFusedKernels(numfmt.SetFusedKernels(false))
	var rows []Fig3Row
	for _, name := range models {
		sim, ds, err := loadSim(name, o)
		if err != nil {
			return nil, err
		}
		batch := ds.ValX.Slice(0, min(32, ds.ValLen()))

		var baseline time.Duration
		for _, cfg := range fig3Configs() {
			modes := []string{"off"}
			if cfg.format != nil {
				modes = append(modes, "value")
				if cfg.meta {
					modes = append(modes, "metadata")
				}
			}
			for _, mode := range modes {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				avg := timeInference(sim, batch, cfg.format, mode, runs)
				if cfg.format == nil {
					baseline = avg
				}
				slow := float64(avg) / float64(baseline)
				rows = append(rows, Fig3Row{
					Model:    paperName(name),
					Config:   cfg.name,
					EI:       mode,
					AvgTime:  avg,
					Slowdown: slow,
				})
				if w != nil {
					fmt.Fprintf(w, "%-12s %-14s EI=%-8s %12v  %5.2fx\n",
						paperName(name), cfg.name, mode, avg.Round(time.Microsecond), slow)
				}
			}
		}
	}
	return rows, nil
}

// timeInference measures the average wall time of one batch inference under
// the given format/EI mode.
func timeInference(sim *goldeneye.Simulator, batch *goldeneye.Tensor, format numfmt.Format, mode string, runs int) time.Duration {
	layer := sim.InjectableLayers()
	target := layer[len(layer)/2]
	run := func() {
		switch {
		case format == nil:
			sim.Logits(batch, goldeneye.EmulationConfig{})
		case mode == "off":
			sim.Logits(batch, goldeneye.EmulationConfig{Format: format, Neurons: true})
		default:
			site := inject.SiteValue
			if mode == "metadata" {
				site = inject.SiteMetadata
			}
			fault := inject.Fault{
				Layer: target, Site: site, Target: inject.TargetNeuron,
				Element: 0, Bit: 0,
			}
			hooks := emulationWithFault(format, fault, target)
			sim.LogitsWithHooks(batch, hooks)
		}
	}
	run() // warm up caches and pools
	start := time.Now()
	for i := 0; i < runs; i++ {
		run()
	}
	return time.Since(start) / time.Duration(runs)
}

// emulationWithFault assembles hooks that quantize every CONV/LINEAR
// activation to format and inject one fault at the target layer.
func emulationWithFault(format numfmt.Format, fault inject.Fault, target int) *goldeneye.HookSet {
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.DefaultLayers(), func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		return format.Emulate(t)
	})
	hooks.PostForward(nn.ByIndex(target), inject.NeuronHook(format, fault))
	return hooks
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
