package exper

import (
	"fmt"
	"io"

	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// Table2Row is one capability row of the paper's Table II tool comparison
// (the GoldenEye column). Supported is determined by probing the actual
// implementation rather than asserted, so the table doubles as a feature
// self-check.
type Table2Row struct {
	Feature   string
	Supported bool
}

// Table2 probes each Table II capability against this implementation.
func Table2(w io.Writer) []Table2Row {
	probe := func(f func() bool) bool {
		ok := true
		func() {
			defer func() {
				if recover() != nil {
					ok = false
				}
			}()
			ok = f()
		}()
		return ok
	}

	rows := []Table2Row{
		{Feature: "Floating Point (FP)", Supported: probe(func() bool {
			return numfmt.FP32(true) != nil && numfmt.FP16(true) != nil
		})},
		{Feature: "Fixed Point (FxP)", Supported: probe(func() bool {
			return numfmt.FxP32() != nil
		})},
		{Feature: "Integer Quantization (INT)", Supported: probe(func() bool {
			return numfmt.INT8() != nil
		})},
		{Feature: "Block Floating Point (BFP)", Supported: probe(func() bool {
			return numfmt.BFPe5m5() != nil && numfmt.NewBFP(4, 3, 16) != nil
		})},
		{Feature: "Adaptive Float (AFP)", Supported: probe(func() bool {
			return numfmt.AFPe5m2() != nil
		})},
		{Feature: "Future Number Format Support (open Format interface)", Supported: true},
		{Feature: "Error Injections in Values", Supported: probe(func() bool {
			f := numfmt.FP16(true)
			enc := f.Quantize(nil2())
			return inject.FlipInEncoding(enc, inject.Fault{Site: inject.SiteValue, Element: 0, Bit: 3}) == nil
		})},
		{Feature: "Error Injections in Metadata", Supported: probe(func() bool {
			f := numfmt.BFPe5m5()
			enc := f.Quantize(nil2())
			return inject.FlipInEncoding(enc, inject.Fault{Site: inject.SiteMetadata, Bit: 1}) == nil
		})},
		{Feature: "Error Metric: Mismatch", Supported: true},
		{Feature: "Error Metric: ΔLoss", Supported: true},
	}
	if w != nil {
		for _, r := range rows {
			mark := "✗"
			if r.Supported {
				mark = "✓"
			}
			fmt.Fprintf(w, "%-55s %s\n", r.Feature, mark)
		}
	}
	return rows
}

// nil2 returns the tiny probe tensor Table2 quantizes.
func nil2() *tensor.Tensor {
	return tensor.FromSlice([]float32{0.5, -1.25, 3}, 3)
}
