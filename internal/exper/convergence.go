package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/numfmt"
)

// ConvergenceRow tracks both resiliency metrics' confidence intervals as a
// campaign progresses, substantiating the paper's §IV-C claim that ΔLoss
// converges asymptotically faster than mismatch counting.
type ConvergenceRow struct {
	Injections     int
	DeltaLossMean  float64
	DeltaLossRelCI float64
	MismatchRate   float64
	MismatchRelCI  float64
}

// Convergence runs one KeepTrace campaign and reports the running relative
// 95% confidence interval of each metric at checkpoints.
func Convergence(ctx context.Context, model string, format numfmt.Format, layer int, w io.Writer, o Options) ([]ConvergenceRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	if layer < 0 {
		inj := sim.InjectableLayers()
		layer = inj[len(inj)/2]
	}
	pool := injPool(ds, 64, o)
	report, err := sim.RunCampaign(ctx, goldeneye.CampaignConfig{
		Format:         format,
		Site:           inject.SiteValue,
		Target:         inject.TargetNeuron,
		Layer:          layer,
		Injections:     o.injections(),
		Seed:           42,
		Pool:           pool,
		BatchSize:      o.campaignBatch(),
		UseRanger:      true,
		EmulateNetwork: true,
		KeepTrace:      true,
	})
	if err != nil {
		return nil, err
	}

	var (
		dl, mm metrics.RunningStat
		rows   []ConvergenceRow
	)
	checkpoint := 25
	for i, out := range report.Trace {
		dl.Add(out.DeltaLoss)
		if out.Mismatch {
			mm.Add(1)
		} else {
			mm.Add(0)
		}
		if i+1 == checkpoint || i+1 == len(report.Trace) {
			rows = append(rows, ConvergenceRow{
				Injections:     i + 1,
				DeltaLossMean:  dl.Mean(),
				DeltaLossRelCI: dl.RelativeCI(),
				MismatchRate:   mm.Mean(),
				MismatchRelCI:  mm.RelativeCI(),
			})
			checkpoint *= 2
		}
	}
	if w != nil {
		fmt.Fprintf(w, "%-10s %-14s layer %d\n", paperName(model), format.Name(), layer)
		fmt.Fprintf(w, "%10s %14s %14s %14s %14s\n", "n", "ΔLoss mean", "ΔLoss relCI", "mismatch", "mismatch relCI")
		for _, r := range rows {
			fmt.Fprintf(w, "%10d %14.4f %14.4f %14.4f %14.4f\n",
				r.Injections, r.DeltaLossMean, r.DeltaLossRelCI, r.MismatchRate, r.MismatchRelCI)
		}
	}
	return rows, nil
}
