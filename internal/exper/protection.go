package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// ProtectionRow is one configuration of the software-directed protection
// study (§V-B positions GoldenEye for "software-directed protection
// techniques (such as various forms of duplication)").
type ProtectionRow struct {
	Model        string
	Target       string // neuron | weight
	Protection   string // none | ranger+clamp | sentinel | dmr | abft | dmr+reexec
	MismatchRate float64
	MeanDelta    float64
	Coverage     float64 // fraction of injections the mechanism detected
	FPRate       float64 // false positives per fault-free inference
	RecoveryRate float64 // fraction of detections the recovery policy repaired
	CostFactor   float64 // relative inference cost of the mechanism
}

// protectionConfig is one row of the sweep: a detector pipeline (empty for
// the unprotected baseline) plus its recovery policy and a nominal relative
// cost (re-execution mechanisms run every inference twice).
type protectionConfig struct {
	name      string
	detectors string
	recovery  string
	cost      float64
}

var protectionConfigs = []protectionConfig{
	{name: "none", cost: 1},
	{name: "ranger+clamp", detectors: "ranger", recovery: "clamp", cost: 1.05},
	{name: "sentinel", detectors: "sentinel", recovery: "none", cost: 1.02},
	{name: "dmr", detectors: "dmr", recovery: "none", cost: 2},
	{name: "abft", detectors: "abft", recovery: "none", cost: 1.1},
	{name: "dmr+reexec", detectors: "dmr", recovery: "reexecute", cost: 2},
}

// Protection sweeps the detection/recovery pipeline against FP16
// exponent-heavy faults on both targets. The classic results reproduce
// mechanistically through internal/detect: DMR detects transient (neuron)
// faults but is structurally blind to persistent (weight) corruption, the
// calibrated ranger bounds damage for both targets (its clamp delivers the
// same activations the legacy UseRanger path did, now with the detection
// accounted), and ABFT's weight checksums catch exactly the corruption DMR
// misses. Every pipeline's false-positive rate is measured on a fault-free
// pool sweep and reported per row.
func Protection(ctx context.Context, model string, w io.Writer, o Options) ([]ProtectionRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	// Detector pipelines are swept per row; sweep-level detector options
	// would override them inside runCell.
	o.Detectors, o.Recovery = nil, ""
	pool := injPool(ds, 48, o)
	format := numfmt.FP16(true)

	var rows []ProtectionRow
	for _, target := range []inject.Target{inject.TargetNeuron, inject.TargetWeight} {
		layerSet := sim.InjectableLayers()
		if target == inject.TargetWeight {
			layerSet = sim.WeightedLayers()
		}
		layer := layerSet[len(layerSet)/2]
		base := goldeneye.CampaignConfig{
			Format:         format,
			Site:           inject.SiteValue,
			Target:         target,
			Layer:          layer,
			Injections:     orDefault(o.Injections, 500),
			Seed:           uint64(target) * 77,
			Pool:           pool,
			BatchSize:      o.campaignBatch(),
			EmulateNetwork: true,
		}
		for _, pc := range protectionConfigs {
			cfg := base
			key := fmt.Sprintf("protection/%s/%s/%s", model, target, pc.name)
			if pc.detectors != "" {
				specs, perr := goldeneye.ParseDetectors(pc.detectors)
				if perr != nil {
					return rows, perr
				}
				if o.Checkpoint != nil {
					for i := range specs {
						if specs[i].Kind == "ranger" {
							specs[i].CachePath = o.Checkpoint.Sidecar(key, ".ranger.json")
						}
					}
				}
				cfg.Detectors = specs
				if cfg.Recovery, perr = goldeneye.ParseRecovery(pc.recovery); perr != nil {
					return rows, perr
				}
			}
			rep, err := runCell(ctx, sim, key, cfg, o)
			if err != nil {
				return rows, err
			}
			row := ProtectionRow{
				Model:        paperName(model),
				Target:       target.String(),
				Protection:   pc.name,
				MismatchRate: rep.MismatchRate(),
				MeanDelta:    rep.MeanDeltaLoss(),
				Coverage:     rep.DetectionCoverage(),
				RecoveryRate: rep.RecoveryRate(),
				CostFactor:   pc.cost,
			}
			for _, st := range rep.PerDetector {
				row.FPRate = st.FalsePositiveRate()
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-12s %-7s %-13s mismatch=%.4f ΔLoss=%8.4f coverage=%.3f fp=%.3f recov=%.3f cost=%.2fx\n",
					row.Model, row.Target, row.Protection, row.MismatchRate,
					row.MeanDelta, row.Coverage, row.FPRate, row.RecoveryRate, row.CostFactor)
			}
		}
	}
	return rows, nil
}
