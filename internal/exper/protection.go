package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// ProtectionRow is one configuration of the software-directed protection
// study (§V-B positions GoldenEye for "software-directed protection
// techniques (such as various forms of duplication)").
type ProtectionRow struct {
	Model        string
	Target       string // neuron | weight
	Protection   string // none | ranger | dmr
	MismatchRate float64
	MeanDelta    float64
	Coverage     float64 // DMR detection coverage (dmr rows only)
	CostFactor   float64 // relative inference cost of the mechanism
}

// Protection compares three configurations against FP16 exponent-heavy
// faults: no protection, the range detector, and DMR duplicate-and-compare.
// The classic result reproduces mechanistically: DMR detects transient
// (neuron) faults but is blind to persistent (weight) corruption, while the
// ranger bounds damage for both but detects nothing.
func Protection(ctx context.Context, model string, w io.Writer, o Options) ([]ProtectionRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	pool := injPool(ds, 48, o)
	format := numfmt.FP16(true)

	var rows []ProtectionRow
	for _, target := range []inject.Target{inject.TargetNeuron, inject.TargetWeight} {
		layerSet := sim.InjectableLayers()
		if target == inject.TargetWeight {
			layerSet = sim.WeightedLayers()
		}
		layer := layerSet[len(layerSet)/2]
		base := goldeneye.CampaignConfig{
			Format:         format,
			Site:           inject.SiteValue,
			Target:         target,
			Layer:          layer,
			Injections:     orDefault(o.Injections, 500),
			Seed:           uint64(target) * 77,
			Pool:           pool,
			BatchSize:      o.campaignBatch(),
			EmulateNetwork: true,
		}
		configs := []struct {
			name string
			mut  func(*goldeneye.CampaignConfig)
			cost float64
		}{
			{name: "none", mut: func(*goldeneye.CampaignConfig) {}, cost: 1},
			{name: "ranger", mut: func(c *goldeneye.CampaignConfig) { c.UseRanger = true }, cost: 1.05},
			{name: "dmr", mut: func(c *goldeneye.CampaignConfig) { c.MeasureDMR = true }, cost: 2},
		}
		for _, pc := range configs {
			cfg := base
			pc.mut(&cfg)
			key := fmt.Sprintf("protection/%s/%s/%s", model, target, pc.name)
			rep, err := runCell(ctx, sim, key, cfg, o)
			if err != nil {
				return rows, err
			}
			row := ProtectionRow{
				Model:        paperName(model),
				Target:       target.String(),
				Protection:   pc.name,
				MismatchRate: rep.MismatchRate(),
				MeanDelta:    rep.MeanDeltaLoss(),
				Coverage:     rep.DetectionCoverage(),
				CostFactor:   pc.cost,
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-12s %-7s %-7s mismatch=%.4f ΔLoss=%8.4f coverage=%.3f cost=%.2fx\n",
					row.Model, row.Target, row.Protection, row.MismatchRate,
					row.MeanDelta, row.Coverage, row.CostFactor)
			}
		}
	}
	return rows, nil
}
