package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// Fig7Row is one bar of Fig 7: the mean ΔLoss of a per-layer injection
// campaign for one model × format × site.
type Fig7Row struct {
	Model        string
	Format       string
	Layer        int
	LayerName    string
	Site         string
	MeanDelta    float64
	MismatchRate float64
	Injections   int
}

// Fig7 runs the resiliency study: for each model (the paper uses ResNet50
// and DeiT-base) and each of BFP e5m5 and AFP e5m2, inject N unique
// single-bit flips per layer into data values and into metadata, measuring
// mean ΔLoss per layer (paper §IV-C).
func Fig7(ctx context.Context, models []string, w io.Writer, o Options) ([]Fig7Row, error) {
	formats := []numfmt.Format{numfmt.BFPe5m5(), numfmt.AFPe5m2()}
	var rows []Fig7Row
	for _, name := range models {
		sim, ds, err := loadSim(name, o)
		if err != nil {
			return nil, err
		}
		// Options.CampaignBatch decides how many of the 1000 injections
		// share a forward pass; results are identical either way.
		pool := injPool(ds, 64, o)

		for _, format := range formats {
			for _, layer := range sim.InjectableLayers() {
				for _, site := range []inject.Site{inject.SiteValue, inject.SiteMetadata} {
					key := fmt.Sprintf("fig7/%s/%s/L%02d/%s", name, format.Name(), layer, site)
					report, err := runCell(ctx, sim, key, goldeneye.CampaignConfig{
						Format:         format,
						Site:           site,
						Target:         inject.TargetNeuron,
						Layer:          layer,
						Injections:     o.injections(),
						Seed:           uint64(layer)*1000 + uint64(site),
						Pool:           pool,
						BatchSize:      o.campaignBatch(),
						UseRanger:      true,
						EmulateNetwork: true,
					}, o)
					if err != nil {
						return rows, err
					}
					row := Fig7Row{
						Model:        paperName(name),
						Format:       format.Name(),
						Layer:        layer,
						LayerName:    layerName(sim, layer),
						Site:         site.String(),
						MeanDelta:    report.MeanDeltaLoss(),
						MismatchRate: report.MismatchRate(),
						Injections:   report.Injections,
					}
					rows = append(rows, row)
					if w != nil {
						fmt.Fprintf(w, "%-12s %-12s layer %2d (%-24s) %-8s ΔLoss=%8.4f mismatch=%.3f\n",
							row.Model, row.Format, row.Layer, row.LayerName, row.Site,
							row.MeanDelta, row.MismatchRate)
					}
				}
			}
		}
	}
	return rows, nil
}

func layerName(sim *goldeneye.Simulator, index int) string {
	for _, l := range sim.Layers() {
		if l.Index == index {
			return l.Name
		}
	}
	return fmt.Sprintf("layer%d", index)
}
