// Package exper contains one driver per table and figure of the paper's
// evaluation. Each driver returns structured rows (so tests and the bench
// harness can assert on shapes) and can render itself as text for the
// cmd/experiments tool. DESIGN.md §3 maps every driver to its paper
// artifact; EXPERIMENTS.md records paper-vs-measured outcomes.
package exper

import (
	"context"
	"fmt"
	"io"
	"strings"

	"goldeneye"
	"goldeneye/internal/checkpoint"
	"goldeneye/internal/dataset"
	"goldeneye/internal/detect"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/zoo"
)

// Options tunes experiment cost. Zero values select the defaults used in
// EXPERIMENTS.md; tests and benches shrink them.
type Options struct {
	// ValSamples caps how many validation samples accuracy evaluations
	// use (0 = all).
	ValSamples int

	// Injections is the per-layer, per-site campaign size (0 = 1000, the
	// paper's count).
	Injections int

	// BatchSize for accuracy evaluations (0 = 30).
	BatchSize int

	// CampaignBatch packs this many distinct faults per forward pass in
	// injection campaigns (0 = the serial batch-1 path). Batched campaign
	// reports are bit-identical to serial under the same seed, so this is
	// purely a throughput knob — results and checkpoint hashes don't
	// change with it.
	CampaignBatch int

	// ZooDir overrides the pre-trained model cache location ("" = default).
	ZooDir string

	// Checkpoint, when non-nil, persists per-cell campaign state so an
	// interrupted sweep resumes at (or inside) the first incomplete cell.
	// Because fault sequences are deterministic in the seed, a resumed
	// sweep's output is bit-identical to an uninterrupted run's.
	Checkpoint *checkpoint.Store

	// Detectors names the fault-detection pipeline every campaign cell
	// arms (any of ranger, sentinel, dmr, abft); empty means none. When a
	// checkpoint store is configured, ranger calibration is cached in a
	// sidecar file next to each cell's checkpoint.
	Detectors []string

	// Recovery is the recovery policy paired with Detectors: "" or "none",
	// "clamp", "zero", "reexecute", "abort".
	Recovery string
}

// applyDetectors wires the sweep-level detector options into one cell's
// campaign config. The cell key scopes the ranger-bounds cache: bounds are
// calibrated per model/format/pool, so cells must not share them.
func (o Options) applyDetectors(cfg *goldeneye.CampaignConfig, key string) error {
	if len(o.Detectors) == 0 {
		return nil
	}
	specs, err := goldeneye.ParseDetectors(strings.Join(o.Detectors, ","))
	if err != nil {
		return err
	}
	if o.Checkpoint != nil {
		for i := range specs {
			if specs[i].Kind == "ranger" {
				specs[i].CachePath = o.Checkpoint.Sidecar(key, ".ranger.json")
			}
		}
	}
	policy, err := goldeneye.ParseRecovery(o.Recovery)
	if err != nil {
		return err
	}
	cfg.Detectors = specs
	cfg.Recovery = policy
	return nil
}

func (o Options) valSamples() int { return orDefault(o.ValSamples, 300) }
func (o Options) injections() int { return orDefault(o.Injections, 1000) }
func (o Options) batchSize() int  { return orDefault(o.BatchSize, 30) }

// campaignBatch resolves the campaign pack size; the explicit 1 keeps
// campaigns on the serial path regardless of a pool's eval-batch geometry.
func (o Options) campaignBatch() int { return orDefault(o.CampaignBatch, 1) }

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

// loadSim returns a wrapped pre-trained model plus its evaluation pool.
func loadSim(name string, o Options) (*goldeneye.Simulator, *dataset.Dataset, error) {
	var (
		model nn.Module
		ds    *dataset.Dataset
		err   error
	)
	if o.ZooDir != "" {
		model, ds, err = zoo.PretrainedIn(o.ZooDir, name)
	} else {
		model, ds, err = zoo.Pretrained(name)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("load %s: %w", name, err)
	}
	sim := goldeneye.Wrap(model, ds.ValX)
	return sim, ds, nil
}

// valPool returns the experiment's validation subset as an evaluation pool
// at the accuracy-evaluation batch geometry.
func valPool(ds *dataset.Dataset, o Options) *goldeneye.EvalPool {
	n := o.valSamples()
	if n > ds.ValLen() {
		n = ds.ValLen()
	}
	return &goldeneye.EvalPool{X: ds.ValX.Slice(0, n), Y: ds.ValY[:n], Batch: o.batchSize()}
}

// injPool returns a capped evaluation pool for injection campaigns. A
// modest cap keeps 1000-injection campaigns tractable; Options.CampaignBatch
// (not the pool's eval-batch geometry) decides how many faults share a
// forward pass.
func injPool(ds *dataset.Dataset, cap int, o Options) *goldeneye.EvalPool {
	n := min(cap, ds.ValLen())
	return &goldeneye.EvalPool{X: ds.ValX.Slice(0, n), Y: ds.ValY[:n], Batch: o.batchSize()}
}

// paperName maps this repository's model names to the paper models they
// stand in for, so experiment output reads like the paper's figures.
func paperName(model string) string {
	switch model {
	case "resnet_s":
		return "ResNet18*"
	case "resnet_m":
		return "ResNet50*"
	case "vit_tiny":
		return "DeiT-tiny*"
	case "vit_small":
		return "DeiT-base*"
	default:
		return model
	}
}

// CellHash fingerprints the campaign parameters that determine a cell's
// deterministic result; a persisted cell whose hash differs (sweep re-run
// with different flags) is discarded instead of resumed. The campaign
// service keys its content-addressed result cache with the same hash, so
// identical jobs are served from cache instead of re-running.
func CellHash(cfg goldeneye.CampaignConfig) uint64 {
	// BatchSize stays out of the hash on purpose: batched campaigns are
	// bit-identical to serial, so a cell computed at one batch size resumes
	// correctly at any other.
	n := 0
	if cfg.Pool != nil {
		n = cfg.Pool.Len()
	}
	// The format name guards against nil: assignment-driven campaigns may
	// carry no uniform Format (the injection format resolves from the
	// assignment), and "" is unambiguous because no registered format has
	// an empty name.
	formatName := ""
	if cfg.Format != nil {
		formatName = cfg.Format.Name()
	}
	parts := []interface{}{
		formatName, cfg.Site, cfg.Target, cfg.FaultKind, cfg.Layer,
		cfg.Injections, cfg.FlipsPerInjection, cfg.Seed, n,
		cfg.UseRanger, cfg.EmulateNetwork, cfg.QuantizeWeights, cfg.MeasureDMR,
	}
	// Detector configuration joins the hash only when present, keeping every
	// pre-detector cell hash (and persisted sweep state) valid.
	if len(cfg.Detectors) > 0 {
		for _, name := range detect.Names(cfg.Detectors) {
			parts = append(parts, name)
		}
		parts = append(parts, cfg.Recovery.String())
	}
	// Same append-only rule for format assignments: the canonical rendering
	// joins the hash only when an assignment is present, so every uniform-
	// format cell hash (and cached campaign-service result) stays valid.
	if cfg.Assignment != nil {
		parts = append(parts, "assignment", cfg.Assignment.Canonical())
	}
	// Shard geometry joins the hash only for actual shards (ShardCount > 1),
	// so unsharded hashes — every pre-fleet cell and cached service result —
	// stay valid, while each shard of a distributed campaign gets its own
	// cache identity (the fleet's idempotent re-dispatch depends on a
	// completed shard being served from cache rather than re-executed).
	if cfg.ShardCount > 1 {
		parts = append(parts, "shard", cfg.ShardIndex, cfg.ShardCount)
	}
	return checkpoint.HashConfig(parts...)
}

// runCell executes one sweep cell through the checkpoint store: a completed
// cell is served from its checkpoint without re-running, a partially
// completed one resumes at its recorded injection, and the (possibly
// partial) outcome is persisted before returning. Without a store — or for
// KeepTrace campaigns, whose traces are not persisted — it falls through to
// a plain RunCampaign.
func runCell(ctx context.Context, sim *goldeneye.Simulator, key string, cfg goldeneye.CampaignConfig, o Options) (*goldeneye.CampaignReport, error) {
	if err := o.applyDetectors(&cfg, key); err != nil {
		return nil, err
	}
	st := o.Checkpoint
	if st == nil || cfg.KeepTrace {
		return sim.RunCampaign(ctx, cfg)
	}
	hash := CellHash(cfg)
	cell, err := st.LoadMatching(key, hash)
	if err != nil {
		return nil, err
	}
	if cell != nil {
		if cell.Done {
			return &goldeneye.CampaignReport{
				CampaignResult: cell.Result,
				Config:         cfg,
				Detected:       cell.Detected,
				Aborted:        cell.Aborted,
				Recovered:      cell.Recovered,
				PerDetector:    cell.Detectors,
			}, nil
		}
		if cell.Completed > 0 && cell.Completed < cfg.Injections {
			cfg.Resume = &goldeneye.CampaignResume{
				Completed:   cell.Completed,
				Result:      cell.Result,
				Detected:    cell.Detected,
				Aborted:     cell.Aborted,
				Recovered:   cell.Recovered,
				PerDetector: cell.Detectors,
			}
		}
	}
	rep, runErr := sim.RunCampaign(ctx, cfg)
	if rep != nil {
		// Persist even interrupted cells: Completed counts every executed
		// injection (recorded + aborted), which is exactly the fault-
		// sequence prefix a resume must replay.
		save := &checkpoint.Cell{
			Key:        key,
			ConfigHash: hash,
			Seed:       cfg.Seed,
			Planned:    cfg.Injections,
			Completed:  rep.Injections + rep.Aborted,
			Done:       runErr == nil,
			Result:     rep.CampaignResult,
			Detected:   rep.Detected,
			Aborted:    rep.Aborted,
			Recovered:  rep.Recovered,
			Detectors:  rep.PerDetector,
		}
		if serr := st.Save(save); serr != nil && runErr == nil {
			runErr = serr
		}
	}
	return rep, runErr
}

// Table1 renders the dynamic-range table (paper Table I).
func Table1(w io.Writer) []numfmt.RangeRow {
	rows := numfmt.Table1Rows()
	if w != nil {
		fmt.Fprintf(w, "%-22s %14s %14s %12s\n", "Data Type", "Abs Max", "Abs Min", "Range (dB)")
		for _, r := range rows {
			suffix := ""
			if r.Movable {
				suffix = " (movable range)"
			}
			fmt.Fprintf(w, "%-22s %14.4g %14.4g %12.2f%s\n", r.Label, r.AbsMax, r.MinPos, r.RangeDB, suffix)
		}
	}
	return rows
}
