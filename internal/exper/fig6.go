package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/dse"
)

// Fig6Row is one visited DSE node (Fig 6's x-axis is visit order).
type Fig6Row struct {
	Model    string
	Family   string
	Order    int
	Bits     int
	Radix    int
	Accuracy float64
	Accepted bool
}

// Fig6Result is one model × family exploration.
type Fig6Result struct {
	Model    string
	Family   string
	Baseline float64
	Rows     []Fig6Row
	Best     *Fig6Row
}

// Fig6 runs the DSE heuristic per model and family, reproducing Fig 6's
// node traversals: ≤16 nodes each, with more than half of the visited
// design points typically above the accuracy threshold.
func Fig6(ctx context.Context, models []string, families []dse.Family, threshold float64, w io.Writer, o Options) ([]Fig6Result, error) {
	if threshold == 0 {
		threshold = 0.01 // the paper's example: 1% accuracy loss
	}
	var results []Fig6Result
	for _, name := range models {
		sim, ds, err := loadSim(name, o)
		if err != nil {
			return nil, err
		}
		vp := valPool(ds, o)
		baseline := sim.EvaluatePool(vp, goldeneye.EmulationConfig{})
		for _, family := range families {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			res := sim.RunDSE(vp.X, vp.Y, o.batchSize(), goldeneye.DSEConfig{
				Family:    family,
				Baseline:  baseline,
				Threshold: threshold,
			})
			fr := Fig6Result{Model: paperName(name), Family: string(family), Baseline: baseline}
			for _, n := range res.Nodes {
				fr.Rows = append(fr.Rows, Fig6Row{
					Model:    fr.Model,
					Family:   fr.Family,
					Order:    n.Order,
					Bits:     n.Point.Bits,
					Radix:    n.Point.Radix,
					Accuracy: n.Accuracy,
					Accepted: n.Accepted,
				})
			}
			if res.Best != nil {
				b := fr.Rows[res.Best.Order]
				fr.Best = &b
			}
			results = append(results, fr)
			if w != nil {
				fmt.Fprintf(w, "%s / %s (baseline %.3f):\n", fr.Model, fr.Family, baseline)
				for _, row := range fr.Rows {
					mark := " "
					if row.Accepted {
						mark = "✓"
					}
					fmt.Fprintf(w, "  node %2d: bits=%-2d radix=%-2d acc=%.3f %s\n",
						row.Order, row.Bits, row.Radix, row.Accuracy, mark)
				}
				if fr.Best != nil {
					fmt.Fprintf(w, "  → best: bits=%d radix=%d acc=%.3f\n",
						fr.Best.Bits, fr.Best.Radix, fr.Best.Accuracy)
				} else {
					fmt.Fprintf(w, "  → no acceptable design point\n")
				}
			}
		}
	}
	return results, nil
}
