package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/dse"
	"goldeneye/internal/inject"
)

// Fig9Row is one scatter point of Fig 9: a heuristic-suggested format's
// accuracy versus its network-wide resilience (mean ΔLoss averaged over all
// layers, value and metadata sites combined).
type Fig9Row struct {
	Model     string
	Family    string
	Format    string
	Bits      int
	Accuracy  float64
	MeanDelta float64
}

// Fig9 combines the DSE use case with the resiliency use case (paper §V-A,
// Fig 9): for each accepted BFP/AFP design point of the heuristic, measure
// accuracy and average ΔLoss, exposing the accuracy/resilience/bitwidth
// trade-off frontier.
func Fig9(ctx context.Context, model string, threshold float64, w io.Writer, o Options) ([]Fig9Row, error) {
	if threshold == 0 {
		threshold = 0.02
	}
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	vp := valPool(ds, o)
	baseline := sim.EvaluatePool(vp, goldeneye.EmulationConfig{})

	pool := injPool(ds, 48, o)

	var rows []Fig9Row
	for _, family := range []dse.Family{dse.FamilyBFP, dse.FamilyAFP} {
		res := sim.RunDSE(vp.X, vp.Y, o.batchSize(), goldeneye.DSEConfig{
			Family:    family,
			Baseline:  baseline,
			Threshold: threshold,
		})
		for _, node := range res.Accepted() {
			format, err := dse.MakeFormat(node.Point)
			if err != nil {
				continue
			}
			// Network-wide resilience: average ΔLoss across layers and
			// sites with a reduced per-layer budget (the summarizing
			// metric the paper proposes and flags for future refinement).
			var sum float64
			var count int
			for _, layer := range sim.InjectableLayers() {
				for _, site := range []inject.Site{inject.SiteValue, inject.SiteMetadata} {
					key := fmt.Sprintf("fig9/%s/%s/%s/L%02d/%s", model, family, format.Name(), layer, site)
					report, err := runCell(ctx, sim, key, goldeneye.CampaignConfig{
						Format:         format,
						Site:           site,
						Target:         inject.TargetNeuron,
						Layer:          layer,
						Injections:     orDefault(o.Injections, 200),
						Seed:           uint64(node.Order)<<16 | uint64(layer)<<1 | uint64(site&1),
						Pool:           pool,
						BatchSize:      o.campaignBatch(),
						UseRanger:      true,
						EmulateNetwork: true,
					}, o)
					if err != nil {
						return rows, err
					}
					sum += report.MeanDeltaLoss()
					count++
				}
			}
			row := Fig9Row{
				Model:     paperName(model),
				Family:    string(family),
				Format:    format.Name(),
				Bits:      node.Point.Bits,
				Accuracy:  node.Accuracy,
				MeanDelta: sum / float64(count),
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-12s %-4s %-14s bits=%-2d acc=%.3f meanΔLoss=%.4f\n",
					row.Model, row.Family, row.Format, row.Bits, row.Accuracy, row.MeanDelta)
			}
		}
	}
	return rows, nil
}
