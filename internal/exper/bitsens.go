package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/sampling"
)

// BitSensRow aggregates a campaign's outcomes by the flipped bit position,
// exposing which bits of a format's encoding are vulnerable. The paper uses
// exactly this lens for its BFP sign-bit finding: "the sign bit in BFP is
// more vulnerable than in FP, since the bitwidth of the data value is now
// shorter ... BFP magnifies the importance of the sign bit via the shared
// exponent design" (§IV-C).
type BitSensRow struct {
	Model        string
	Format       string
	Bit          int
	Role         string // sign | exponent | mantissa | fraction | code
	Injections   int
	MeanDelta    float64
	MismatchRate float64
}

// bitRole names a bit position within a format's encoding. The sampling
// package owns the classification, so experiment rows and sampling strata
// agree on every role name.
func bitRole(format numfmt.Format, bit int) string {
	return sampling.BitRole(format, bit)
}

// BitSensitivity runs a value-site campaign with tracing and groups the
// outcomes by bit position. The range detector is left OFF so each bit's
// raw blast radius is visible (with it on, clamping flattens the profile —
// which is precisely what the detector is for).
func BitSensitivity(ctx context.Context, model string, format numfmt.Format, w io.Writer, o Options) ([]BitSensRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	pool := injPool(ds, 48, o)
	layer := sim.InjectableLayers()[len(sim.InjectableLayers())/2]
	report, err := sim.RunCampaign(ctx, goldeneye.CampaignConfig{
		Format:         format,
		Site:           inject.SiteValue,
		Target:         inject.TargetNeuron,
		Layer:          layer,
		Injections:     orDefault(o.Injections, 2000),
		Seed:           31,
		Pool:           pool,
		BatchSize:      o.campaignBatch(),
		UseRanger:      false,
		EmulateNetwork: true,
		KeepTrace:      true,
	})
	if err != nil {
		return nil, err
	}

	width := format.BitWidth()
	sums := make([]float64, width)
	mism := make([]int, width)
	counts := make([]int, width)
	for _, out := range report.Trace {
		b := out.Fault.Bit
		sums[b] += out.DeltaLoss
		counts[b]++
		if out.Mismatch {
			mism[b]++
		}
	}
	rows := make([]BitSensRow, 0, width)
	for b := width - 1; b >= 0; b-- {
		if counts[b] == 0 {
			continue
		}
		row := BitSensRow{
			Model:        paperName(model),
			Format:       format.Name(),
			Bit:          b,
			Role:         bitRole(format, b),
			Injections:   counts[b],
			MeanDelta:    sums[b] / float64(counts[b]),
			MismatchRate: float64(mism[b]) / float64(counts[b]),
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-12s %-14s bit %2d (%-8s) n=%-4d ΔLoss=%8.4f mismatch=%.3f\n",
				row.Model, row.Format, row.Bit, row.Role, row.Injections,
				row.MeanDelta, row.MismatchRate)
		}
	}
	return rows, nil
}
