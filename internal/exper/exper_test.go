package exper

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"goldeneye/internal/dse"
	"goldeneye/internal/numfmt"
)

// tinyOptions keeps experiment tests fast; the full-scale parameters run
// from cmd/experiments and the bench harness.
func tinyOptions() Options {
	return Options{ValSamples: 80, Injections: 30, BatchSize: 20}
}

func TestTable1Renders(t *testing.T) {
	var b strings.Builder
	rows := Table1(&b)
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(b.String(), "FP16 w/ DN") {
		t.Fatal("rendered output missing rows")
	}
}

func TestTable2AllSupported(t *testing.T) {
	var b strings.Builder
	rows := Table2(&b)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Supported {
			t.Errorf("feature %q probes as unsupported", r.Feature)
		}
	}
	if strings.Contains(b.String(), "✗") {
		t.Fatal("rendered table contains unsupported marks")
	}
}

func TestFig3Shapes(t *testing.T) {
	// The timing dichotomy needs a model with real tensor volume; the MLP
	// finishes in microseconds and drowns in noise. Wall-clock ratios on a
	// loaded CI host can still transiently invert, so the dichotomy check
	// re-measures before declaring failure.
	const attempts = 3
	var lastErrs []string
	for attempt := 0; attempt < attempts; attempt++ {
		rows, err := Fig3(context.Background(), []string{"resnet_s"}, 3, nil, tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		bySlow := make(map[string]float64)
		for _, r := range rows {
			if r.EI == "off" {
				bySlow[r.Config] = r.Slowdown
			}
			if r.AvgTime <= 0 {
				t.Fatalf("non-positive timing for %v", r)
			}
		}
		if bySlow["native_fp32"] != 1.0 {
			t.Fatalf("native baseline slowdown = %v", bySlow["native_fp32"])
		}
		// The Fig 3 dichotomy: BFP/AFP (code-based path) slower than the
		// arithmetic-path formats.
		lastErrs = nil
		if bySlow["bfp_e5m5"] <= bySlow["fp16"] {
			lastErrs = append(lastErrs, fmt.Sprintf("BFP (%.2fx) should be slower than FP16 (%.2fx)",
				bySlow["bfp_e5m5"], bySlow["fp16"]))
		}
		if bySlow["afp_e5m2"] <= bySlow["int8"] {
			lastErrs = append(lastErrs, fmt.Sprintf("AFP (%.2fx) should be slower than INT8 (%.2fx)",
				bySlow["afp_e5m2"], bySlow["int8"]))
		}
		if lastErrs == nil {
			return
		}
		t.Logf("attempt %d: dichotomy inverted (%s); re-measuring", attempt+1, strings.Join(lastErrs, "; "))
	}
	for _, e := range lastErrs {
		t.Error(e)
	}
}

func TestFig4Shapes(t *testing.T) {
	rows, err := Fig4(context.Background(), []string{"mlp"}, nil, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	get := func(family string, bits int) (float64, bool) {
		for _, r := range rows {
			if r.Family == family && r.Bits == bits {
				return r.Accuracy, true
			}
		}
		return 0, false
	}
	baseline, ok := get("native", 32)
	if !ok || baseline < 0.6 {
		t.Fatalf("baseline accuracy %v", baseline)
	}
	// High widths preserve accuracy for every family.
	for _, fam := range []string{"fp", "fxp", "int", "afp"} {
		acc, ok := get(fam, 16)
		if !ok {
			t.Fatalf("missing %s@16", fam)
		}
		if acc < baseline-0.05 {
			t.Errorf("%s@16 lost too much accuracy: %.3f vs %.3f", fam, acc, baseline)
		}
	}
	// FP at 4 bits (e2m1) collapses.
	if acc, ok := get("fp", 4); ok && acc > baseline-0.2 {
		t.Errorf("fp@4 should collapse, got %.3f (baseline %.3f)", acc, baseline)
	}
}

func TestFig6Shapes(t *testing.T) {
	results, err := Fig6(context.Background(), []string{"mlp"}, []dse.Family{dse.FamilyFP, dse.FamilyAFP}, 0.02, nil, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, res := range results {
		if len(res.Rows) == 0 || len(res.Rows) > 16 {
			t.Fatalf("%s/%s visited %d nodes", res.Model, res.Family, len(res.Rows))
		}
		if res.Best == nil {
			t.Fatalf("%s/%s found no acceptable point", res.Model, res.Family)
		}
		if res.Best.Bits >= 32 {
			t.Errorf("%s/%s best width %d did not shorten", res.Model, res.Family, res.Best.Bits)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 40
	rows, err := Fig7(context.Background(), []string{"mlp"}, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate mean ΔLoss per format × site.
	agg := make(map[string]*struct {
		sum float64
		n   int
	})
	for _, r := range rows {
		key := r.Format + "/" + r.Site
		a := agg[key]
		if a == nil {
			a = &struct {
				sum float64
				n   int
			}{}
			agg[key] = a
		}
		a.sum += r.MeanDelta
		a.n++
	}
	mean := func(key string) float64 {
		a := agg[key]
		if a == nil || a.n == 0 {
			t.Fatalf("missing aggregate %q", key)
		}
		return a.sum / float64(a.n)
	}
	// Fig 7's headline: metadata injections are far more egregious than
	// value injections, especially for BFP.
	if mean("bfp_e5m5_b0/metadata") <= mean("bfp_e5m5_b0/value") {
		t.Errorf("BFP metadata ΔLoss (%v) should dominate value ΔLoss (%v)",
			mean("bfp_e5m5_b0/metadata"), mean("bfp_e5m5_b0/value"))
	}
	if mean("afp_e5m2/metadata") <= mean("afp_e5m2/value") {
		t.Errorf("AFP metadata ΔLoss (%v) should dominate value ΔLoss (%v)",
			mean("afp_e5m2/metadata"), mean("afp_e5m2/value"))
	}
}

func TestFig9Shapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 15
	rows, err := Fig9(context.Background(), "mlp", 0.05, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no trade-off points produced")
	}
	families := make(map[string]bool)
	for _, r := range rows {
		families[r.Family] = true
		if r.Accuracy <= 0 || r.Accuracy > 1 {
			t.Fatalf("implausible accuracy %v", r.Accuracy)
		}
		if r.MeanDelta < 0 {
			t.Fatalf("negative ΔLoss %v", r.MeanDelta)
		}
	}
	if !families["bfp"] || !families["afp"] {
		t.Fatalf("expected both BFP and AFP points, got %v", families)
	}
}

func TestConvergenceShapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 200
	rows, err := Convergence(context.Background(), "mlp", numfmt.BFPe5m5(), -1, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d checkpoints", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Injections != 200 {
		t.Fatalf("final checkpoint at %d injections", last.Injections)
	}
	// §IV-C: the continuous ΔLoss metric converges faster (tighter
	// relative CI) than binary mismatch counting.
	if last.DeltaLossRelCI >= last.MismatchRelCI {
		t.Errorf("ΔLoss relCI %.4f should be tighter than mismatch relCI %.4f",
			last.DeltaLossRelCI, last.MismatchRelCI)
	}
}

func TestPaperNameMapping(t *testing.T) {
	tests := map[string]string{
		"resnet_s":  "ResNet18*",
		"resnet_m":  "ResNet50*",
		"vit_tiny":  "DeiT-tiny*",
		"vit_small": "DeiT-base*",
		"mlp":       "mlp",
	}
	for give, want := range tests {
		if got := paperName(give); got != want {
			t.Errorf("paperName(%q) = %q, want %q", give, got, want)
		}
	}
}

func TestAblationBFPBlockShapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 40
	rows, err := AblationBFPBlock(context.Background(), "mlp", nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Finer blocks cannot lose accuracy relative to whole-tensor sharing,
	// and must cost more metadata register bits.
	whole, finest := rows[0], rows[len(rows)-1]
	if finest.Accuracy < whole.Accuracy-0.02 {
		t.Errorf("fine blocks (%.3f) should not underperform whole-tensor (%.3f)",
			finest.Accuracy, whole.Accuracy)
	}
	if finest.MetaRegBits <= whole.MetaRegBits {
		t.Errorf("fine blocks must cost more metadata bits: %d vs %d",
			finest.MetaRegBits, whole.MetaRegBits)
	}
}

func TestErrorModelsShapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 60
	rows, err := ErrorModels(context.Background(), "mlp", numfmt.BFPe5m5(), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(kind, site string) float64 {
		for _, r := range rows {
			if r.Kind == kind && r.Site == site {
				return r.MeanDelta
			}
		}
		t.Fatalf("missing %s/%s", kind, site)
		return 0
	}
	// Burst (every element) must dominate single-element models at the
	// value site.
	if get("burst", "value") <= get("flip", "value") {
		t.Errorf("burst (%v) should dominate flip (%v)",
			get("burst", "value"), get("flip", "value"))
	}
	// A flip always changes the target bit; a stuck-at changes it only
	// when the stored bit disagrees. So flip's expected damage is at
	// least comparable to the worse stuck-at direction (which direction
	// is worse depends on the register's resting value).
	worstStuck := get("stuck-at-0", "metadata")
	if s1 := get("stuck-at-1", "metadata"); s1 > worstStuck {
		worstStuck = s1
	}
	if get("flip", "metadata") < worstStuck/2 {
		t.Errorf("metadata flip (%v) implausibly mild vs worst stuck-at (%v)",
			get("flip", "metadata"), worstStuck)
	}
}

func TestSecurityFGSMShapes(t *testing.T) {
	o := tinyOptions()
	rows, err := SecurityFGSM(context.Background(), "mlp", []float64{0.2}, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7 formats", len(rows))
	}
	for _, r := range rows {
		if r.Format == "native_fp32" {
			// The attack must actually degrade the native model.
			if r.AttackDrop <= 0.05 {
				t.Fatalf("FGSM at ε=0.2 barely hurt the native model: drop %.3f", r.AttackDrop)
			}
		}
		if r.AdvAcc < 0 || r.AdvAcc > 1 || r.CleanAcc < 0 || r.CleanAcc > 1 {
			t.Fatalf("implausible accuracies %+v", r)
		}
	}
}

func TestFGSMLeavesModelUntouched(t *testing.T) {
	sim, ds, err := loadSim("resnet_s", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var before [][]float32
	for _, p := range sim.Model().Params() {
		before = append(before, append([]float32(nil), p.Value.Data()...))
	}
	FGSM(sim.Model(), ds.ValX.Slice(0, 8), ds.ValY[:8], 0.1)
	for i, p := range sim.Model().Params() {
		for j, v := range p.Value.Data() {
			if v != before[i][j] {
				t.Fatalf("FGSM mutated %s (incl. frozen stats)", p.Name)
			}
		}
	}
}

func TestEmergingShapes(t *testing.T) {
	o := tinyOptions()
	rows, err := Emerging(context.Background(), []string{"mlp"}, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]float64)
	for _, r := range rows {
		byName[r.Format] = r.Accuracy
	}
	// 16-bit emerging formats must match the classic ones at this scale.
	for _, f := range []string{"posit16_es1", "lns_7_8"} {
		if byName[f] < byName["fp16"]-0.05 {
			t.Errorf("%s (%.3f) should track fp16 (%.3f) at 16 bits", f, byName[f], byName["fp16"])
		}
	}
	// NF4 must beat uniform INT4 (the codebook's whole point).
	if byName["nf4"] < byName["int4"]-0.02 {
		t.Errorf("nf4 (%.3f) should be at least INT4-competitive (%.3f)", byName["nf4"], byName["int4"])
	}
}

func TestProtectionShapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 120
	rows, err := Protection(context.Background(), "mlp", nil, o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(target, protection string) ProtectionRow {
		for _, r := range rows {
			if r.Target == target && r.Protection == protection {
				return r
			}
		}
		t.Fatalf("missing %s/%s", target, protection)
		return ProtectionRow{}
	}
	// The ranger's clamp must not worsen damage, for either target.
	for _, target := range []string{"neuron", "weight"} {
		if get(target, "ranger+clamp").MeanDelta > get(target, "none").MeanDelta {
			t.Errorf("%s: ranger increased ΔLoss", target)
		}
	}
	// DMR detects some transient faults and no persistent ones; ABFT's
	// sealed weight checksums catch exactly the corruption DMR misses.
	if get("neuron", "dmr").Coverage <= 0 {
		t.Error("DMR should detect some neuron faults")
	}
	if get("weight", "dmr").Coverage != 0 {
		t.Errorf("DMR cannot detect weight faults, got coverage %.3f",
			get("weight", "dmr").Coverage)
	}
	if get("weight", "abft").Coverage <= 0 {
		t.Error("ABFT should detect weight corruption against its sealed checksums")
	}
	// The unprotected baseline reports no coverage; every pipeline's
	// false-positive rate on the fault-free pool is zero (calibrated
	// detectors never flag the pool they calibrated on).
	for _, target := range []string{"neuron", "weight"} {
		if get(target, "none").Coverage != 0 {
			t.Error("coverage must be zero without a pipeline")
		}
		for _, prot := range []string{"ranger+clamp", "sentinel", "dmr", "abft", "dmr+reexec"} {
			if fp := get(target, prot).FPRate; fp != 0 {
				t.Errorf("%s/%s: false-positive rate %.4f, want 0", target, prot, fp)
			}
		}
	}
}

func TestBitSensitivityShapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 800

	fp16, err := BitSensitivity(context.Background(), "mlp", numfmt.FP16(true), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	bfp, err := BitSensitivity(context.Background(), "mlp", numfmt.BFPe5m5(), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	byBit := func(rows []BitSensRow, role string) (worst BitSensRow) {
		for _, r := range rows {
			if (role == "" || r.Role == role) && r.MeanDelta >= worst.MeanDelta {
				worst = r
			}
		}
		return worst
	}
	// §II-B: FP's vulnerable bits are exponent bits; the overall worst FP16
	// bit must be an exponent bit, far above its sign bit.
	worstFP := byBit(fp16, "")
	if worstFP.Role != "exponent" {
		t.Errorf("worst FP16 bit is %d (%s), want an exponent bit", worstFP.Bit, worstFP.Role)
	}
	signFP := byBit(fp16, "sign")
	if signFP.MeanDelta >= worstFP.MeanDelta {
		t.Errorf("FP16 sign (%v) should be far below worst exponent (%v)",
			signFP.MeanDelta, worstFP.MeanDelta)
	}
	// §IV-C: "the sign bit in BFP is more vulnerable than in FP" — relative
	// to its own format's worst bit, BFP's sign carries far more weight.
	signBFP := byBit(bfp, "sign")
	worstBFP := byBit(bfp, "")
	relBFP := signBFP.MeanDelta / worstBFP.MeanDelta
	relFP := signFP.MeanDelta / worstFP.MeanDelta
	if relBFP <= relFP {
		t.Errorf("BFP sign relative weight (%.4f) should exceed FP16's (%.6f)", relBFP, relFP)
	}
}

func TestWeightsVsNeuronsShapes(t *testing.T) {
	o := tinyOptions()
	o.Injections = 60
	rows, err := WeightsVsNeurons(context.Background(), "mlp", numfmt.FP16(true), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows)%2 != 0 {
		t.Fatalf("%d rows, want a weight/neuron pair per layer", len(rows))
	}
	for _, r := range rows {
		if r.MeanDelta < 0 || r.MismatchRate < 0 || r.MismatchRate > 1 {
			t.Fatalf("implausible row %+v", r)
		}
		if r.Target != "weight" && r.Target != "neuron" {
			t.Fatalf("unexpected target %q", r.Target)
		}
	}
}
