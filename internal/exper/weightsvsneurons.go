package exper

import (
	"context"
	"fmt"
	"io"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// WvsNRow contrasts weight-targeted and neuron-targeted faults at one
// layer. The paper studies neurons "as the more complex case, since weight
// injections can be performed offline" (§V-B); this driver quantifies how
// the two targets actually differ.
type WvsNRow struct {
	Model        string
	Format       string
	Layer        int
	Target       string
	MeanDelta    float64
	MismatchRate float64
}

// WeightsVsNeurons runs matched campaigns against weights and neurons for
// every weighted layer. Weight faults corrupt a parameter once and the
// whole inference sees it; neuron faults corrupt one activation in flight.
func WeightsVsNeurons(ctx context.Context, model string, format numfmt.Format, w io.Writer, o Options) ([]WvsNRow, error) {
	sim, ds, err := loadSim(model, o)
	if err != nil {
		return nil, err
	}
	pool := injPool(ds, 48, o)

	var rows []WvsNRow
	for _, layer := range sim.WeightedLayers() {
		for _, target := range []inject.Target{inject.TargetWeight, inject.TargetNeuron} {
			key := fmt.Sprintf("wvn/%s/%s/L%02d/%s", model, format.Name(), layer, target)
			rep, err := runCell(ctx, sim, key, goldeneye.CampaignConfig{
				Format:         format,
				Site:           inject.SiteValue,
				Target:         target,
				Layer:          layer,
				Injections:     orDefault(o.Injections, 500),
				Seed:           uint64(layer)<<4 | uint64(target),
				Pool:           pool,
				BatchSize:      o.campaignBatch(),
				UseRanger:      true,
				EmulateNetwork: true,
			}, o)
			if err != nil {
				return rows, err
			}
			row := WvsNRow{
				Model:        paperName(model),
				Format:       format.Name(),
				Layer:        layer,
				Target:       target.String(),
				MeanDelta:    rep.MeanDeltaLoss(),
				MismatchRate: rep.MismatchRate(),
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-12s %-12s layer %2d %-7s ΔLoss=%8.4f mismatch=%.3f\n",
					row.Model, row.Format, row.Layer, row.Target, row.MeanDelta, row.MismatchRate)
			}
		}
	}
	return rows, nil
}
