package inject

import (
	"math"

	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
)

// NativeAccumBits is the flippable width of the native float32 accumulator,
// used for SiteAccum faults when a layer has no accumulator format assigned
// (and the GEMM accumulates in IEEE-754 binary32).
const NativeAccumBits = 32

// AccumBitWidth returns the flippable width of an accumulator register
// running in the given format; nil means the native float32 accumulator.
func AccumBitWidth(f numfmt.Format) int {
	if f == nil {
		return NativeAccumBits
	}
	return f.BitWidth()
}

// RandomAccumFault draws a uniformly random accumulator-site fault over a
// layer with n output elements and a GEMM reduction depth of depth steps.
// format is the layer's assigned accumulator format (nil = native float32).
// The draw order — element, bit, step — is fixed: it defines the
// deterministic fault sequence campaigns replay for resume and sharding.
func RandomAccumFault(r *rng.RNG, format numfmt.Format, layer, n, depth int) Fault {
	f := Fault{Layer: layer, Site: SiteAccum, Target: TargetNeuron}
	f.Element = r.Intn(n)
	f.Bit = r.Intn(AccumBitWidth(format))
	f.Step = r.Intn(depth)
	return f
}

// AccumApply returns the in-place corruption a SiteAccum fault performs on
// a partial sum: encode the register's value in the accumulator format
// (IEEE-754 float32 when format is nil), apply the error model to the
// fault's bit, decode. When the GEMM quantizes every accumulation step into
// the same format, the register's value is already exactly representable,
// so the encode step is lossless and the corruption is purely the
// configured bit error — the accumulator analogue of quantize→flip→
// dequantize.
func AccumApply(format numfmt.Format, f Fault) func(float32) float32 {
	kind, bit := f.Kind, f.Bit
	if format == nil {
		return func(v float32) float32 {
			return math.Float32frombits(uint32(applyBitOp(numfmt.Bits(math.Float32bits(v)), kind, bit)))
		}
	}
	meta := numfmt.Metadata{Kind: numfmt.MetaNone}
	return func(v float32) float32 {
		b := applyBitOp(format.ToBits(float64(v), meta), kind, bit)
		return float32(format.FromBits(b, meta))
	}
}

// AccumFaultsFor translates drawn SiteAccum faults into the layer-coordinate
// accumulator faults nn consumes, landing every fault on batch row `row` of
// the forward pass (0 for a serial batch-1 inference; the packed row index
// for batched campaign passes). format is the layer's accumulator format
// (nil = native float32), shared by all faults of one injection.
func AccumFaultsFor(format numfmt.Format, faults []Fault, row int) []nn.AccumFault {
	out := make([]nn.AccumFault, len(faults))
	for i, f := range faults {
		out[i] = nn.AccumFault{Sample: row, Elem: f.Element, Step: f.Step, Apply: AccumApply(format, f)}
	}
	return out
}
