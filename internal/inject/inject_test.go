package inject

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestFlipInEncodingValue(t *testing.T) {
	f := numfmt.FP8E4M3(true)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	enc := f.Quantize(x)
	fault := Fault{Site: SiteValue, Element: 2, Bit: 6} // high exponent bit
	if err := FlipInEncoding(enc, fault); err != nil {
		t.Fatal(err)
	}
	out := f.Dequantize(enc)
	if out.At(2) == 3 {
		t.Fatal("flip did not change the value")
	}
	// Other elements untouched.
	for _, i := range []int{0, 1, 3} {
		if out.At(i) != x.At(i) {
			t.Fatalf("element %d corrupted collaterally", i)
		}
	}
}

func TestFlipInEncodingValueOutOfRange(t *testing.T) {
	f := numfmt.FP8E4M3(true)
	enc := f.Quantize(tensor.FromSlice([]float32{1}, 1))
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Element: 5, Bit: 0}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestFlipMetadataScale(t *testing.T) {
	f := numfmt.INT8()
	x := tensor.FromSlice([]float32{-1, 0.5, 1}, 3)
	enc := f.Quantize(x)
	origScale := enc.Meta.Scale
	// Flip the float32 exponent LSB (bit 23): scale changes by ~2x.
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Bit: 23}); err != nil {
		t.Fatal(err)
	}
	if enc.Meta.Scale == origScale {
		t.Fatal("scale unchanged")
	}
	out := f.Dequantize(enc)
	// Every element rescales together (by 2×, the exponent LSB) — the
	// multi-value blast radius. Tolerance covers INT8 quantization error.
	for i := 0; i < 3; i++ {
		if x.At(i) == 0 {
			continue
		}
		got := float64(out.At(i) / x.At(i))
		if math.Abs(got-2) > 0.04 {
			t.Fatalf("element %d: rescale ratio %v, want ≈2", i, got)
		}
	}
}

func TestFlipMetadataSharedExponent(t *testing.T) {
	f := numfmt.BFPe5m5()
	x := tensor.FromSlice([]float32{0.5, -0.25, 1.0, 0.75}, 4)
	enc := f.Quantize(x)
	clean := f.Dequantize(enc)
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, MetaIndex: 0, Bit: 4}); err != nil {
		t.Fatal(err)
	}
	faulty := f.Dequantize(enc)
	// A shared-exponent flip scales the whole block by 2^±16.
	for i := 0; i < 4; i++ {
		c, fv := float64(clean.At(i)), float64(faulty.At(i))
		if c == 0 {
			continue
		}
		ratio := fv / c
		if math.Abs(ratio-65536) > 1 && math.Abs(ratio-1.0/65536) > 1e-6 {
			t.Fatalf("element %d: ratio %v, want 2^±16", i, ratio)
		}
	}
}

func TestFlipMetadataExpBias(t *testing.T) {
	f := numfmt.AFPe5m2()
	x := tensor.FromSlice([]float32{0.5, -0.25, 1.0}, 3)
	enc := f.Quantize(x)
	clean := f.Dequantize(enc)
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Bit: 2}); err != nil {
		t.Fatal(err)
	}
	faulty := f.Dequantize(enc)
	if faulty.AllClose(clean, 0) {
		t.Fatal("bias flip had no effect")
	}
}

func TestFlipMetadataOnPlainFormatErrors(t *testing.T) {
	f := numfmt.FP16(true)
	enc := f.Quantize(tensor.FromSlice([]float32{1}, 1))
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Bit: 0}); err == nil {
		t.Fatal("expected error: FP has no metadata")
	}
}

func TestMetaBitWidth(t *testing.T) {
	tests := []struct {
		format numfmt.Format
		want   int
	}{
		{format: numfmt.INT8(), want: 32},
		{format: numfmt.BFPe5m5(), want: 5},
		{format: numfmt.AFPe5m2(), want: 8},
		{format: numfmt.FP16(true), want: 0},
		{format: numfmt.FxP16(), want: 0},
	}
	for _, tt := range tests {
		if got := MetaBitWidth(tt.format); got != tt.want {
			t.Errorf("MetaBitWidth(%s) = %d, want %d", tt.format.Name(), got, tt.want)
		}
	}
}

// Property: double application of the same metadata flip restores the
// original decoded tensor.
func TestMetadataFlipReversibleProperty(t *testing.T) {
	formats := []numfmt.Format{numfmt.INT8(), numfmt.BFPe5m5(), numfmt.AFPe5m2()}
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.Randn(r, 1, 16)
		for _, f := range formats {
			enc := f.Quantize(x)
			base := f.Dequantize(enc)
			fault := RandomFault(r, f, 0, 16, SiteMetadata, TargetNeuron)
			if err := FlipInEncoding(enc, fault); err != nil {
				return false
			}
			if err := FlipInEncoding(enc, fault); err != nil {
				return false
			}
			if !f.Dequantize(enc).AllClose(base, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RandomFault always produces in-range faults.
func TestRandomFaultInRangeProperty(t *testing.T) {
	formats := []numfmt.Format{
		numfmt.FP16(true), numfmt.FxP16(), numfmt.INT8(),
		numfmt.NewBFP(5, 5, 8), numfmt.AFPe5m2(),
	}
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 50
		for _, f := range formats {
			fv := RandomFault(r, f, 3, n, SiteValue, TargetNeuron)
			if fv.Element < 0 || fv.Element >= n || fv.Bit < 0 || fv.Bit >= f.BitWidth() {
				return false
			}
			if MetaBitWidth(f) > 0 {
				fm := RandomFault(r, f, 3, n, SiteMetadata, TargetNeuron)
				if fm.Bit < 0 || fm.Bit >= MetaBitWidth(f) {
					return false
				}
				x := tensor.New(n)
				enc := f.Quantize(x)
				if err := FlipInEncoding(enc, fm); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNeuronHookInjects(t *testing.T) {
	r := rng.New(3)
	net := nn.NewSequential("net",
		nn.NewLinear("fc1", 4, 6, r),
		nn.NewLinear("fc2", 6, 3, r),
	)
	x := tensor.Randn(r, 1, 1, 4)
	clean := nn.Forward(nil, net, x)

	format := numfmt.FP8E4M3(true)
	fault := Fault{Layer: 0, Site: SiteValue, Target: TargetNeuron, Element: 1, Bit: 7} // sign bit
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.ByIndex(0), NeuronHook(format, fault))
	faulty := nn.Forward(nn.NewContext(hooks), net, x)
	if faulty.AllClose(clean, 1e-6) {
		t.Fatal("neuron fault did not propagate to the output")
	}
}

func TestWeightFaultAndRestore(t *testing.T) {
	r := rng.New(4)
	net := nn.NewSequential("net",
		nn.NewLinear("fc1", 4, 6, r),
		nn.NewLinear("fc2", 6, 3, r),
	)
	x := tensor.Randn(r, 1, 1, 4)
	layers := nn.Trace(net, x)
	idx := IndexModules(net, layers)

	weighted := idx.WeightedLayers()
	if len(weighted) != 2 {
		t.Fatalf("WeightedLayers = %v, want 2 entries", weighted)
	}

	clean := nn.Forward(nil, net, x)
	format := numfmt.FP16(true)
	fault := Fault{Layer: weighted[0], Site: SiteValue, Target: TargetWeight, Element: 0, Bit: 14}
	restore, err := WeightFault(format, fault, idx)
	if err != nil {
		t.Fatal(err)
	}
	faulty := nn.Forward(nil, net, x)
	if faulty.AllClose(clean, 1e-7) {
		t.Fatal("weight fault had no effect")
	}
	restore()
	restored := nn.Forward(nil, net, x)
	if !restored.AllClose(clean, 0) {
		t.Fatal("restore did not recover the original weights")
	}
}

func TestWeightFaultUnknownLayer(t *testing.T) {
	r := rng.New(5)
	net := nn.NewSequential("net", nn.NewLinear("fc", 2, 2, r))
	idx := IndexModules(net, nn.Trace(net, tensor.New(1, 1, 2)))
	_, err := WeightFault(numfmt.FP16(true), Fault{Layer: 99}, idx)
	if err == nil {
		t.Fatal("expected unknown-layer error")
	}
}

func TestBackupWeightsRestores(t *testing.T) {
	r := rng.New(6)
	net := nn.NewSequential("net", nn.NewLinear("fc", 3, 3, r))
	orig := append([]float32(nil), net.Params()[0].Value.Data()...)
	b := BackupWeights(net)
	QuantizeWeights(net, numfmt.NewFP(2, 1, true)) // aggressive: weights change
	changed := false
	for i, v := range net.Params()[0].Value.Data() {
		if v != orig[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("quantization should have altered weights")
	}
	b.Restore()
	for i, v := range net.Params()[0].Value.Data() {
		if v != orig[i] {
			t.Fatalf("weight %d not restored", i)
		}
	}
}

func TestQuantizeWeightsSkipsFrozen(t *testing.T) {
	bn := nn.NewBatchNorm2D("bn", 2)
	mean, _ := bn.RunningStats()
	mean[0] = 0.333 // not representable in fp_e2m1
	QuantizeWeights(bn, numfmt.NewFP(2, 1, true))
	mean, _ = bn.RunningStats()
	if mean[0] != 0.333 {
		t.Fatal("frozen running stats must not be quantized")
	}
}

func TestRangeProfileClamps(t *testing.T) {
	r := rng.New(7)
	net := nn.NewSequential("net", nn.NewLinear("fc", 4, 4, r))
	x := tensor.Randn(r, 1, 8, 4)
	profile := ProfileRanges(context.Background(), net, x, 4, nil)
	lo, hi, ok := profile.Bounds(0)
	if !ok || lo >= hi {
		t.Fatalf("implausible bounds %v, %v", lo, hi)
	}

	// A wildly out-of-range activation must be clamped.
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.ByIndex(0), func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		out := t.Clone()
		out.Data()[0] = 1e20
		out.Data()[1] = float32(math.NaN())
		return out
	})
	hooks.PostForward(nn.AllLayers(), profile.ClampHook())
	y := nn.Forward(nn.NewContext(hooks), net, x.Slice(0, 1))
	if y.CountNonFinite() != 0 {
		t.Fatal("ClampHook must remove non-finite values")
	}
	if y.Data()[0] > hi || y.Data()[1] > hi {
		t.Fatalf("values not clamped to %v: %v", hi, y.Data()[:2])
	}
}

func TestSiteTargetStrings(t *testing.T) {
	if SiteValue.String() != "value" || SiteMetadata.String() != "metadata" {
		t.Fatal("Site.String mismatch")
	}
	if TargetNeuron.String() != "neuron" || TargetWeight.String() != "weight" {
		t.Fatal("Target.String mismatch")
	}
	f := Fault{Layer: 3, Site: SiteMetadata, Target: TargetNeuron, MetaIndex: 2, Bit: 1}
	if f.String() != "layer 3 neuron metadata reg 2 bit 1" {
		t.Fatalf("Fault.String = %q", f.String())
	}
}

func TestStuckAtSemantics(t *testing.T) {
	f := numfmt.FxP16()
	x := tensor.FromSlice([]float32{1.0}, 1)

	// Stuck-at on an already-matching bit is a no-op.
	enc := f.Quantize(x)
	bit0 := enc.Codes[0].Bit(3)
	kind := KindStuckAt0
	if bit0 == 1 {
		kind = KindStuckAt1
	}
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Element: 0, Bit: 3, Kind: kind}); err != nil {
		t.Fatal(err)
	}
	if got := f.Dequantize(enc).At(0); got != 1.0 {
		t.Fatalf("matching stuck-at changed value to %v", got)
	}
	// The opposite stuck-at forces the bit.
	opposite := KindStuckAt1
	if kind == KindStuckAt1 {
		opposite = KindStuckAt0
	}
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Element: 0, Bit: 3, Kind: opposite}); err != nil {
		t.Fatal(err)
	}
	if got := enc.Codes[0].Bit(3); got == bit0 {
		t.Fatal("opposite stuck-at did not force the bit")
	}
}

func TestBurstFlipsEveryElement(t *testing.T) {
	f := numfmt.FxP16()
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	enc := f.Quantize(x)
	before := append([]numfmt.Bits(nil), enc.Codes...)
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Bit: 2, Kind: KindBurst}); err != nil {
		t.Fatal(err)
	}
	for i := range enc.Codes {
		if enc.Codes[i] != before[i].Flip(2) {
			t.Fatalf("element %d not burst-flipped", i)
		}
	}
}

func TestBurstMetadataHitsAllBlocks(t *testing.T) {
	f := numfmt.NewBFP(5, 5, 2)
	x := tensor.FromSlice([]float32{1, 1, 8, 8}, 4) // two blocks, different exps
	enc := f.Quantize(x)
	before := append([]uint8(nil), enc.Meta.SharedExp...)
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Bit: 1, Kind: KindBurst}); err != nil {
		t.Fatal(err)
	}
	for i := range enc.Meta.SharedExp {
		if enc.Meta.SharedExp[i] != before[i]^2 {
			t.Fatalf("block %d exponent not burst-flipped", i)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	if KindFlip.String() != "flip" || KindStuckAt0.String() != "stuck-at-0" ||
		KindStuckAt1.String() != "stuck-at-1" || KindBurst.String() != "burst" {
		t.Fatal("FaultKind.String mismatch")
	}
}

func TestStuckAtMetadataScale(t *testing.T) {
	f := numfmt.INT8()
	x := tensor.FromSlice([]float32{1, -1}, 2)
	enc := f.Quantize(x)
	// Force the scale's sign bit to 1: scale goes negative.
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Bit: 31, Kind: KindStuckAt1}); err != nil {
		t.Fatal(err)
	}
	if enc.Meta.Scale >= 0 {
		t.Fatalf("scale should be negative, got %v", enc.Meta.Scale)
	}
	// Applying the same stuck-at again is idempotent.
	s := enc.Meta.Scale
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Bit: 31, Kind: KindStuckAt1}); err != nil {
		t.Fatal(err)
	}
	if enc.Meta.Scale != s {
		t.Fatal("stuck-at must be idempotent")
	}
}
