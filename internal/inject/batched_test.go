package inject

import (
	"testing"

	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func batchedFixture(rows, cols int) *tensor.Tensor {
	t := tensor.Randn(rng.New(3), 1, rows, cols)
	data := t.Data()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			data[i*cols+j] *= float32(1 + 3*i) // distinct per-row magnitudes
		}
	}
	return t
}

// A value fault addressed at (row, element) must corrupt exactly that row's
// code and leave every batchmate bit-identical.
func TestFlipInBatchedEncodingRowIsolation(t *testing.T) {
	in := batchedFixture(3, 8)
	f := numfmt.INT8()
	enc := numfmt.QuantizeBatched(f, in)
	before := append([]numfmt.Bits(nil), enc.Codes...)
	fault := Fault{Site: SiteValue, Row: 1, Element: 5, Bit: 2}
	if err := FlipInEncoding(enc, fault); err != nil {
		t.Fatal(err)
	}
	for i, c := range enc.Codes {
		want := before[i]
		if i == 1*8+5 {
			want = want.Flip(2)
		}
		if c != want {
			t.Fatalf("code %d = %#x, want %#x", i, c, want)
		}
	}

	// The faulted row must match a batch-1 injection of the same fault.
	ref := f.Quantize(in.Slice(1, 2))
	if err := FlipInEncoding(ref, Fault{Site: SiteValue, Element: 5, Bit: 2}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		if enc.Codes[8+j] != ref.Codes[j] {
			t.Fatalf("row 1 code %d = %#x, batch-1 %#x", j, enc.Codes[8+j], ref.Codes[j])
		}
	}
}

// A burst fault stays confined to its row: each batch row models an
// independent inference.
func TestFlipInBatchedEncodingBurstConfined(t *testing.T) {
	in := batchedFixture(2, 6)
	f := numfmt.FxP16()
	enc := numfmt.QuantizeBatched(f, in)
	before := append([]numfmt.Bits(nil), enc.Codes...)
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Kind: KindBurst, Row: 1, Bit: 0}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		if enc.Codes[j] != before[j] {
			t.Fatalf("row 0 code %d corrupted by a row-1 burst", j)
		}
		if enc.Codes[6+j] != before[6+j].Flip(0) {
			t.Fatalf("row 1 code %d not burst-flipped", j)
		}
	}
}

// Metadata faults route to the addressed row's registers only.
func TestFlipInBatchedEncodingMetadataPerRow(t *testing.T) {
	in := batchedFixture(3, 8)
	f := numfmt.BFPe5m5()
	enc := numfmt.QuantizeBatched(f, in)
	want0 := append([]uint8(nil), enc.RowMeta[0].SharedExp...)
	want2 := append([]uint8(nil), enc.RowMeta[2].SharedExp...)
	if err := FlipInEncoding(enc, Fault{Site: SiteMetadata, Row: 1, MetaIndex: 0, Bit: 1}); err != nil {
		t.Fatal(err)
	}
	for b := range want0 {
		if enc.RowMeta[0].SharedExp[b] != want0[b] || enc.RowMeta[2].SharedExp[b] != want2[b] {
			t.Fatal("metadata fault leaked into a batchmate's registers")
		}
	}
	ref := f.Quantize(in.Slice(1, 2))
	if err := FlipInEncoding(ref, Fault{Site: SiteMetadata, MetaIndex: 0, Bit: 1}); err != nil {
		t.Fatal(err)
	}
	if enc.RowMeta[1].SharedExp[0] != ref.Meta.SharedExp[0] {
		t.Fatalf("row 1 shared exponent %#x, batch-1 %#x", enc.RowMeta[1].SharedExp[0], ref.Meta.SharedExp[0])
	}
}

func TestFlipInBatchedEncodingRowOutOfRange(t *testing.T) {
	enc := numfmt.QuantizeBatched(numfmt.INT8(), batchedFixture(2, 4))
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Row: 2, Element: 0, Bit: 0}); err == nil {
		t.Fatal("expected a row-range error")
	}
	if err := FlipInEncoding(enc, Fault{Site: SiteValue, Row: 0, Element: 4, Bit: 0}); err == nil {
		t.Fatal("expected an element-range error (per-row bounds)")
	}
}

// NeuronHookBatched must reproduce NeuronHookMulti row by row: injecting N
// distinct faults in one batched pass gives each row exactly the tensor a
// batch-1 injection of its fault would.
func TestNeuronHookBatchedMatchesSerial(t *testing.T) {
	in := batchedFixture(3, 10)
	faults := [][]Fault{
		{{Site: SiteValue, Element: 1, Bit: 3}},
		{{Site: SiteMetadata, MetaIndex: 0, Bit: 2}},
		{{Site: SiteValue, Element: 7, Bit: 0}, {Site: SiteValue, Element: 2, Bit: 4}},
	}
	for _, f := range []numfmt.Format{numfmt.INT8(), numfmt.BFPe5m5(), numfmt.AFPe5m2()} {
		got := NeuronHookBatched(f, faults)(nn.LayerInfo{}, in)
		for r := 0; r < 3; r++ {
			want := NeuronHookMulti(f, faults[r])(nn.LayerInfo{}, in.Slice(r, r+1))
			for j := 0; j < 10; j++ {
				if got.Data()[r*10+j] != want.Data()[j] {
					t.Fatalf("%s: row %d elem %d = %v, batch-1 %v",
						f.Name(), r, j, got.Data()[r*10+j], want.Data()[j])
				}
			}
		}
	}
}
