// Package inject implements GoldenEye's fault-injection engine: single- and
// multi-bit flips in activation values, weight values, and — uniquely, per
// the paper — in the hardware metadata of a number format (INT scaling
// factor, BFP shared exponent, AFP exponent bias). The abstract routine is
// the paper's §III-B pipeline: quantize to format space, flip bits in the
// encoding, dequantize back.
//
// The engine covers the paper's 8 single-bit injection sites: data-value
// flips for all 5 format families plus metadata flips for INT, BFP and AFP.
package inject

import (
	"fmt"
	"math"

	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// Site selects whether a fault lands in per-element data, in the format's
// hardware metadata, or inside a GEMM accumulator register mid-reduction.
type Site int

// Injection sites.
const (
	SiteValue    Site = iota + 1 // a bit of one element's encoding
	SiteMetadata                 // a bit of a metadata register
	SiteAccum                    // a bit of a partial sum inside the layer's GEMM accumulator
)

// String returns the site's short name.
func (s Site) String() string {
	switch s {
	case SiteValue:
		return "value"
	case SiteMetadata:
		return "metadata"
	case SiteAccum:
		return "accum"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// Target selects what the fault corrupts: a neuron (activation) during the
// forward pass, or a stored weight.
type Target int

// Injection targets.
const (
	TargetNeuron Target = iota + 1
	TargetWeight
)

// String returns the target's short name.
func (t Target) String() string {
	switch t {
	case TargetNeuron:
		return "neuron"
	case TargetWeight:
		return "weight"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// FaultKind selects the error model (paper §IV-C studies "different error
// models"). The zero value is the classic transient single-bit flip, so
// existing Fault literals keep their meaning.
type FaultKind int

// Error models.
const (
	KindFlip     FaultKind = iota // transient bit flip (default)
	KindStuckAt0                  // permanent stuck-at-0 on the bit
	KindStuckAt1                  // permanent stuck-at-1 on the bit
	KindBurst                     // the same bit flips in every element (wordline/row upset)
)

// String returns the kind's short name.
func (k FaultKind) String() string {
	switch k {
	case KindFlip:
		return "flip"
	case KindStuckAt0:
		return "stuck-at-0"
	case KindStuckAt1:
		return "stuck-at-1"
	case KindBurst:
		return "burst"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one fully specified fault.
type Fault struct {
	Layer  int // layer visit index (see nn.Trace)
	Site   Site
	Target Target
	Kind   FaultKind

	// Element is the flat element index for SiteValue faults.
	Element int

	// Bit is the bit position: within the element encoding for SiteValue,
	// or within the selected metadata register for SiteMetadata.
	Bit int

	// MetaIndex selects the metadata register for SiteMetadata faults
	// (the block index for BFP; 0 for INT scale and AFP bias).
	MetaIndex int

	// Row is the batch row the fault lands in when injected into a batched
	// (numfmt.AxisBatch) encoding; Element and MetaIndex then address that
	// row's codes and registers. Faults are drawn row-agnostic (Row 0) and
	// the batched scheduler assigns rows at execution time, so the drawn
	// fault sequence is identical to the serial campaign's. Ignored for
	// per-tensor encodings.
	Row int

	// Step is the reduction step a SiteAccum fault lands after: the flip
	// corrupts output element Element's partial sum once multiply-accumulate
	// Step of the layer's GEMM has been accumulated (and the corrupted value
	// participates in every remaining step). Zero for the other sites; the
	// omitempty tag keeps their wire encodings byte-identical to documents
	// written before accumulator injection existed.
	Step int `json:"Step,omitempty"`
}

// String renders a compact human-readable description.
func (f Fault) String() string {
	switch f.Site {
	case SiteMetadata:
		return fmt.Sprintf("layer %d %s %s reg %d bit %d", f.Layer, f.Target, f.Site, f.MetaIndex, f.Bit)
	case SiteAccum:
		return fmt.Sprintf("layer %d %s %s elem %d bit %d step %d", f.Layer, f.Target, f.Site, f.Element, f.Bit, f.Step)
	default:
		return fmt.Sprintf("layer %d %s %s elem %d bit %d", f.Layer, f.Target, f.Site, f.Element, f.Bit)
	}
}

// FlipInEncoding applies the fault to enc in place under its error model.
// It is the lowest-level injection primitive, shared by neuron and weight
// paths. Batched (numfmt.AxisBatch) encodings are addressed by (f.Row,
// f.Element/f.MetaIndex), confining the fault — burst models included — to
// one batch row, since each row models an independent inference.
func FlipInEncoding(enc *numfmt.Encoding, f Fault) error {
	if enc.MetadataAxis == numfmt.AxisBatch {
		return flipInBatched(enc, f)
	}
	switch f.Site {
	case SiteValue:
		if f.Kind == KindBurst {
			for i := range enc.Codes {
				enc.Codes[i] = enc.Codes[i].Flip(f.Bit)
			}
			return nil
		}
		if f.Element < 0 || f.Element >= len(enc.Codes) {
			return fmt.Errorf("inject: element %d out of range (%d elements)", f.Element, len(enc.Codes))
		}
		enc.Codes[f.Element] = applyBitOp(enc.Codes[f.Element], f.Kind, f.Bit)
		return nil
	case SiteMetadata:
		return faultMetadata(&enc.Meta, f)
	default:
		return fmt.Errorf("inject: unknown site %v", f.Site)
	}
}

// flipInBatched applies a fault to one row of an AxisBatch encoding. Row
// r's codes occupy the r-th contiguous slice of enc.Codes and its metadata
// lives in enc.RowMeta[r], so the injected row is bit-identical to a
// batch-1 injection of the same fault while its batchmates stay clean.
func flipInBatched(enc *numfmt.Encoding, f Fault) error {
	rows := len(enc.RowMeta)
	if rows == 0 || len(enc.Codes)%rows != 0 {
		return fmt.Errorf("inject: malformed batched encoding (%d rows, %d codes)", rows, len(enc.Codes))
	}
	if f.Row < 0 || f.Row >= rows {
		return fmt.Errorf("inject: row %d out of range (%d rows)", f.Row, rows)
	}
	rowLen := len(enc.Codes) / rows
	switch f.Site {
	case SiteValue:
		codes := enc.Codes[f.Row*rowLen : (f.Row+1)*rowLen]
		if f.Kind == KindBurst {
			for i := range codes {
				codes[i] = codes[i].Flip(f.Bit)
			}
			return nil
		}
		if f.Element < 0 || f.Element >= rowLen {
			return fmt.Errorf("inject: element %d out of range (%d elements)", f.Element, rowLen)
		}
		codes[f.Element] = applyBitOp(codes[f.Element], f.Kind, f.Bit)
		return nil
	case SiteMetadata:
		return faultMetadata(&enc.RowMeta[f.Row], f)
	default:
		return fmt.Errorf("inject: unknown site %v", f.Site)
	}
}

// applyBitOp applies the error model to one code's bit.
func applyBitOp(code numfmt.Bits, kind FaultKind, bit int) numfmt.Bits {
	switch kind {
	case KindStuckAt0:
		return code &^ (1 << uint(bit))
	case KindStuckAt1:
		return code | (1 << uint(bit))
	default: // KindFlip (and burst handled by callers)
		return code.Flip(bit)
	}
}

// faultMetadata applies the error model to one bit of a metadata register,
// honoring each format's hardware representation: IEEE-754 float32 for the
// INT/LUT scale, a raw biased-exponent register for BFP, two's-complement
// int8 for the AFP bias. Burst faults hit the bit in every register (one
// register for scale/bias formats, all blocks for BFP).
func faultMetadata(m *numfmt.Metadata, f Fault) error {
	idx, bit := f.MetaIndex, f.Bit
	reg8 := func(v uint8) uint8 {
		switch f.Kind {
		case KindStuckAt0:
			return v &^ (1 << uint(bit))
		case KindStuckAt1:
			return v | 1<<uint(bit)
		default:
			return v ^ 1<<uint(bit)
		}
	}
	switch m.Kind {
	case numfmt.MetaScale:
		if bit < 0 || bit >= 32 {
			return fmt.Errorf("inject: scale bit %d out of range", bit)
		}
		bits := math.Float32bits(m.Scale)
		switch f.Kind {
		case KindStuckAt0:
			bits &^= 1 << uint(bit)
		case KindStuckAt1:
			bits |= 1 << uint(bit)
		default:
			bits ^= 1 << uint(bit)
		}
		m.Scale = math.Float32frombits(bits)
		return nil
	case numfmt.MetaSharedExp:
		if bit < 0 || bit >= 8 {
			return fmt.Errorf("inject: shared-exponent bit %d out of range", bit)
		}
		if f.Kind == KindBurst {
			for i := range m.SharedExp {
				m.SharedExp[i] ^= 1 << uint(bit)
			}
			return nil
		}
		if idx < 0 || idx >= len(m.SharedExp) {
			return fmt.Errorf("inject: shared-exponent register %d out of range (%d blocks)", idx, len(m.SharedExp))
		}
		m.SharedExp[idx] = reg8(m.SharedExp[idx])
		return nil
	case numfmt.MetaExpBias:
		if bit < 0 || bit >= 8 {
			return fmt.Errorf("inject: bias bit %d out of range", bit)
		}
		m.ExpBias = int8(reg8(uint8(m.ExpBias)))
		return nil
	default:
		return fmt.Errorf("inject: format has no metadata (kind %v)", m.Kind)
	}
}

// MetaBitWidth returns the flippable bit width of a format's metadata
// register, or 0 if the format has none.
func MetaBitWidth(f numfmt.Format) int {
	switch v := f.(type) {
	case *numfmt.INT:
		return 32 // float32 scale register
	case *numfmt.LUT:
		return 32 // float32 scale register
	case *numfmt.BFP:
		return v.ExpBits()
	case *numfmt.AFP:
		return 8 // int8 bias register
	default:
		return 0
	}
}

// NeuronHook returns a post-forward hook that injects fault f into the
// output activations of the matching layer: the tensor is quantized to
// format space, the flip applied (data or metadata), and the corrupted
// encoding dequantized — exactly the hardware-aware routine of §III-B.
func NeuronHook(format numfmt.Format, f Fault) nn.HookFunc {
	return NeuronHookMulti(format, []Fault{f})
}

// NeuronHookMulti is NeuronHook for multi-bit faults: all flips land in the
// same quantized snapshot of the layer's output, modeling simultaneous
// upsets (the paper's "single- and multi-bit flips").
func NeuronHookMulti(format numfmt.Format, faults []Fault) nn.HookFunc {
	return func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		enc := format.Quantize(t)
		for _, f := range faults {
			if err := FlipInEncoding(enc, f); err != nil {
				panic(err) // faults were validated at campaign construction
			}
		}
		return format.Dequantize(enc)
	}
}

// NeuronHookBatched returns a post-forward hook that injects a *different*
// fault set into every batch row of the matching layer's output: row r of
// the activation tensor is quantized with its own metadata (per-sample
// path), receives rows[r]'s flips, and is dequantized under the possibly
// corrupted registers. Rows beyond len(rows) pass through clean. This is
// the batched campaign's execution primitive: one forward pass carries
// len(rows) independent injections, each bit-identical to its batch-1
// counterpart.
func NeuronHookBatched(format numfmt.Format, rows [][]Fault) nn.HookFunc {
	return func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		enc := numfmt.QuantizeBatched(format, t)
		for r, faults := range rows {
			for _, f := range faults {
				f.Row = r
				if err := FlipInEncoding(enc, f); err != nil {
					panic(err) // faults were validated at campaign construction
				}
			}
		}
		return numfmt.DequantizeBatched(format, enc)
	}
}

// RandomNeuronHook returns a post-forward hook that injects a fresh random
// single-bit fault on every invocation — the fault-aware-training mechanism
// the paper sketches in §V-D ("build resilient models via novel training
// routines"). rate is the per-invocation injection probability.
func RandomNeuronHook(format numfmt.Format, r *rng.RNG, site Site, rate float64) nn.HookFunc {
	return func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		if r.Float64() >= rate {
			return t
		}
		fault := RandomFault(r, format, info.Index, t.Len(), site, TargetNeuron)
		enc := format.Quantize(t)
		if err := FlipInEncoding(enc, fault); err != nil {
			return t
		}
		return format.Dequantize(enc)
	}
}

// RandomFault draws a uniformly random single-bit fault for the given
// format, site, and target, over a tensor with n elements. BFP metadata
// faults pick a random block register.
func RandomFault(r *rng.RNG, format numfmt.Format, layer, n int, site Site, target Target) Fault {
	f := Fault{Layer: layer, Site: site, Target: target}
	switch site {
	case SiteValue:
		f.Element = r.Intn(n)
		f.Bit = r.Intn(format.BitWidth())
	case SiteMetadata:
		width := MetaBitWidth(format)
		if width == 0 {
			panic(fmt.Sprintf("inject: %s has no metadata to fault", format.Name()))
		}
		f.Bit = r.Intn(width)
		if bfp, ok := format.(*numfmt.BFP); ok {
			if bs := bfp.BlockSize(); bs > 0 && n > bs {
				f.MetaIndex = r.Intn((n + bs - 1) / bs)
			}
		}
	}
	return f
}
