package inject

import (
	"fmt"

	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
)

// WeightBackup remembers original weight values so faults and format
// conversions can be undone; campaigns restore between injections.
type WeightBackup struct {
	params []*nn.Param
	saved  [][]float32
}

// BackupWeights snapshots every non-frozen parameter of m.
func BackupWeights(m nn.Module) *WeightBackup {
	b := &WeightBackup{}
	for _, p := range m.Params() {
		if p.Frozen {
			continue
		}
		b.params = append(b.params, p)
		b.saved = append(b.saved, append([]float32(nil), p.Value.Data()...))
	}
	return b
}

// Restore writes the snapshot back into the model.
func (b *WeightBackup) Restore() {
	for i, p := range b.params {
		copy(p.Value.Data(), b.saved[i])
	}
}

// QuantizeWeights converts every weight and bias of the listed parameters
// to the given format in place (offline weight conversion, §V-B). Frozen
// parameters (BatchNorm statistics) are part of the normalization hardware
// and stay in the compute fabric's native format.
func QuantizeWeights(m nn.Module, format numfmt.Format) {
	for _, p := range m.Params() {
		if p.Frozen {
			continue
		}
		q := format.Emulate(p.Value)
		copy(p.Value.Data(), q.Data())
	}
}

// WeightFault injects fault f into the weight tensor of the module at the
// fault's layer index and returns a restore function. The weight is
// quantized to format space, the bit flipped, and the corrupted tensor
// written back — the offline analogue of NeuronHook.
func WeightFault(format numfmt.Format, f Fault, idx ModuleIndex) (restore func(), err error) {
	target, err := idx.ParamOfLayer(f.Layer)
	if err != nil {
		return nil, err
	}
	saved := append([]float32(nil), target.Value.Data()...)
	enc := format.Quantize(target.Value)
	if err := FlipInEncoding(enc, f); err != nil {
		return nil, err
	}
	corrupted := format.Dequantize(enc)
	copy(target.Value.Data(), corrupted.Data())
	return func() { copy(target.Value.Data(), saved) }, nil
}

// ModuleIndex maps layer visit indices to the module (and its primary
// weight parameter) visited at that index. Build one with IndexModules.
type ModuleIndex struct {
	byIndex map[int]*nn.Param
}

// IndexModules runs a traced forward pass and associates each layer visit
// index with the visited module's primary weight parameter (nil for
// parameterless layers). It relies on module names being unique.
func IndexModules(m nn.Module, layers []nn.LayerInfo) ModuleIndex {
	// Collect every parameter named "<module>.weight"; hooks report module
	// names, so the join key is the layer name.
	weights := make(map[string]*nn.Param)
	for _, p := range m.Params() {
		const suffix = ".weight"
		if len(p.Name) > len(suffix) && p.Name[len(p.Name)-len(suffix):] == suffix {
			weights[p.Name[:len(p.Name)-len(suffix)]] = p
		}
	}
	idx := ModuleIndex{byIndex: make(map[int]*nn.Param, len(layers))}
	for _, l := range layers {
		if p, ok := weights[l.Name]; ok {
			idx.byIndex[l.Index] = p
		}
	}
	return idx
}

// ParamOfLayer returns the weight parameter of the layer at visit index i.
func (mi ModuleIndex) ParamOfLayer(i int) (*nn.Param, error) {
	p, ok := mi.byIndex[i]
	if !ok || p == nil {
		return nil, fmt.Errorf("inject: layer %d has no weight parameter", i)
	}
	return p, nil
}

// WeightedLayers returns the visit indices that have weight parameters, in
// order — the candidate set for weight-targeted campaigns.
func (mi ModuleIndex) WeightedLayers() []int {
	var out []int
	for i := range mi.byIndex {
		out = append(out, i)
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
