package inject

import (
	"context"
	"math"

	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// RangeProfile holds per-layer activation bounds observed on clean data.
// It implements the paper's toggleable range detector (§V-B, modeled on
// Ranger): during faulty inference, activations are clamped to the profiled
// range, bounding the blast radius of a bit flip.
type RangeProfile struct {
	lo map[int]float32
	hi map[int]float32
}

// ProfileRanges runs clean forward passes over x (batched by batch) and
// records the min/max output of every layer. When extra is non-nil, its
// hooks (e.g. format emulation) run before the recorder, so the profiled
// bounds reflect the emulated network. ctx is checked between batches;
// cancellation returns the (partial) profile early — callers that care
// must check ctx themselves after the call.
func ProfileRanges(ctx context.Context, m nn.Module, x *tensor.Tensor, batch int, extra *nn.HookSet) *RangeProfile {
	p := &RangeProfile{
		lo: make(map[int]float32),
		hi: make(map[int]float32),
	}
	hooks := nn.NewHookSet()
	hooks.Merge(extra)
	hooks.PostForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		lo, hi := t.MinMax()
		if cur, ok := p.lo[info.Index]; !ok || lo < cur {
			p.lo[info.Index] = lo
		}
		if cur, ok := p.hi[info.Index]; !ok || hi > cur {
			p.hi[info.Index] = hi
		}
		return t
	})
	fctx := nn.NewContext(hooks)
	n := x.Dim(0)
	for lo := 0; lo < n; lo += batch {
		if ctx.Err() != nil {
			return p
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		nn.Forward(fctx, m, x.Slice(lo, hi))
	}
	return p
}

// Bounds returns the observed range of layer i (false if never seen).
func (p *RangeProfile) Bounds(i int) (lo, hi float32, ok bool) {
	lo, ok1 := p.lo[i]
	hi, ok2 := p.hi[i]
	return lo, hi, ok1 && ok2
}

// ClampHook returns a post-forward hook that clamps every layer's output to
// its profiled range and replaces non-finite values with the nearest bound.
// Register it AFTER injection hooks so faults are detected, not prevented.
func (p *RangeProfile) ClampHook() nn.HookFunc {
	return func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		lo, hi, ok := p.Bounds(info.Index)
		if !ok {
			return t
		}
		out := t.Apply(func(v float32) float32 {
			f := float64(v)
			if math.IsNaN(f) {
				return hi
			}
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		})
		return out
	}
}
