package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"goldeneye"
	"goldeneye/internal/server"
	"goldeneye/internal/telemetry"
)

// ServerOptions configures the coordinator's HTTP front end.
type ServerOptions struct {
	// StreamInterval is the SSE progress sampling period (default 200ms).
	StreamInterval time.Duration

	// StreamKeepAlive is how long an SSE stream may stay silent before a
	// comment heartbeat is emitted (default 10s).
	StreamKeepAlive time.Duration

	// MaxBodyBytes bounds submission bodies (default 1 MiB).
	MaxBodyBytes int64

	// ScrapeTimeout bounds each node's /metrics scrape during a fleet
	// rollup (default 2s) so one dead node cannot stall the exposition.
	ScrapeTimeout time.Duration
}

func (o *ServerOptions) withDefaults() {
	if o.StreamInterval <= 0 {
		o.StreamInterval = 200 * time.Millisecond
	}
	if o.StreamKeepAlive <= 0 {
		o.StreamKeepAlive = 10 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.ScrapeTimeout <= 0 {
		o.ScrapeTimeout = 2 * time.Second
	}
}

// Server fronts a fleet Coordinator with the goldeneyed job API, so the
// existing CLI and client drive a whole fleet exactly like one daemon:
//
//	POST /v1/jobs             submit a JobSpec → JobStatus (202)
//	GET  /v1/jobs             list job statuses
//	GET  /v1/jobs/{id}        one job's status (Degraded set on degraded fleets)
//	GET  /v1/jobs/{id}/report the merged CampaignReport (byte-identical to single-node)
//	GET  /v1/jobs/{id}/events SSE progress stream until terminal
//	POST /v1/jobs/{id}/cancel cancel a running fleet campaign
//	GET  /healthz             liveness + per-node health
//	GET  /readyz              503 while fewer than MinNodes nodes are healthy or draining
//	GET  /metrics             fleet-wide rollup: coordinator metrics + every
//	                          node's metrics re-labeled with node="addr"
//	GET  /metrics.json        coordinator metrics, JSON exposition
//
// Campaigns are serialized: the coordinator runs one fleet campaign at a
// time and later submissions queue behind it.
type Server struct {
	c    *Coordinator
	opts ServerOptions
	mux  *http.ServeMux

	runMu sync.Mutex // serializes fleet campaigns

	mu       sync.Mutex
	jobs     map[string]*fleetJob
	order    []string
	idem     map[string]string // Idempotency-Key → job ID
	seq      int64
	draining bool

	wg sync.WaitGroup
}

// fleetJob is one fleet campaign's observable state.
type fleetJob struct {
	id       string
	spec     *server.JobSpec
	cancel   context.CancelFunc
	finished chan struct{}

	mu     sync.Mutex
	state  server.JobState
	seq    int64
	done   int
	total  int
	report *Report
	err    error
}

func (j *fleetJob) snapshot() server.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := server.JobStatus{
		ID:    j.id,
		State: j.state,
		Model: j.spec.Model,
		Seq:   j.seq,
		Done:  j.done,
		Total: j.total,
	}
	if j.report != nil {
		st.Degraded = j.report.Degraded
		st.Detected = int64(j.report.Detected)
		st.Aborted = int64(j.report.Aborted)
		st.Mismatches = int64(j.report.Mismatches)
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Serve builds the coordinator's HTTP front end.
func Serve(c *Coordinator, opts ServerOptions) *Server {
	opts.withDefaults()
	s := &Server{
		c:    c,
		opts: opts,
		jobs: make(map[string]*fleetJob),
		idem: make(map[string]string),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /metrics.json", telemetry.Mux(c.Registry()))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the front end: no new submissions, running fleet
// campaigns finish (or are cancelled once ctx expires) before it returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*fleetJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, j := range jobs {
			j.cancel()
		}
		<-done
		return ctx.Err()
	}
}

func (s *Server) nextID() string {
	s.seq++
	return fmt.Sprintf("fleet-%06d", s.seq)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	spec, err := server.DecodeJobSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Campaign.ShardCount > 1 {
		httpError(w, http.StatusBadRequest, &goldeneye.ConfigError{
			Field: "Campaign.ShardCount", Reason: "the fleet coordinator assigns shard geometry; submit an unsharded campaign"})
		return
	}
	if spec.Workers > 1 {
		httpError(w, http.StatusBadRequest, &goldeneye.ConfigError{
			Field: "Workers", Reason: "fleet campaigns run one serial worker per shard; shard count is fixed by the coordinator"})
		return
	}
	idemKey := r.Header.Get("Idempotency-Key")

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, errors.New("fleet: draining, not accepting jobs"))
		return
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			j := s.jobs[id]
			s.mu.Unlock()
			w.Header().Set("Idempotency-Replayed", "true")
			writeJSON(w, http.StatusOK, j.snapshot())
			return
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &fleetJob{
		id:       s.nextID(),
		spec:     spec,
		cancel:   cancel,
		finished: make(chan struct{}),
		state:    server.JobQueued,
		total:    spec.Campaign.Injections,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if idemKey != "" {
		s.idem[idemKey] = j.id
	}
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runCampaign(ctx, j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runCampaign drives one fleet campaign to a terminal state. Campaigns
// serialize on runMu: the coordinator runs one at a time.
func (s *Server) runCampaign(ctx context.Context, j *fleetJob) {
	defer s.wg.Done()
	defer j.cancel()
	s.runMu.Lock()
	defer s.runMu.Unlock()

	if ctx.Err() != nil { // cancelled while queued
		s.finishJob(j, server.JobCancelled, nil, errors.New("fleet: job cancelled while queued"))
		return
	}
	j.mu.Lock()
	j.state = server.JobRunning
	j.seq++
	j.mu.Unlock()

	rep, err := s.c.Run(ctx, j.spec, func(done, total int) {
		j.mu.Lock()
		if done > j.done {
			j.done = done
			j.seq++
		}
		j.mu.Unlock()
	})
	switch {
	case err == nil:
		s.finishJob(j, server.JobDone, rep, nil)
	case ctx.Err() != nil:
		s.finishJob(j, server.JobCancelled, nil, err)
	default:
		s.finishJob(j, server.JobFailed, nil, err)
	}
}

func (s *Server) finishJob(j *fleetJob, state server.JobState, rep *Report, err error) {
	j.mu.Lock()
	j.state = state
	j.report = rep
	j.err = err
	if rep != nil {
		j.done = j.total
	}
	j.seq++
	j.mu.Unlock()
	close(j.finished)
}

// jobFor resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *fleetJob {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("fleet: unknown job %q", id))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*fleetJob, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	statuses := make([]server.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, rep := j.state, j.report
	j.mu.Unlock()
	if state != server.JobDone || rep == nil {
		httpError(w, http.StatusConflict,
			fmt.Errorf("fleet: job %s has no report (state=%s)", j.id, state))
		return
	}
	// The body is the merged CampaignReport alone — byte-identical to a
	// single daemon's /report — so the degraded marker rides a header.
	if rep.Degraded {
		w.Header().Set("X-Fleet-Degraded", "true")
	}
	writeJSON(w, http.StatusOK, rep.CampaignReport)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.cancel()
	select {
	case <-j.finished:
	case <-time.After(10 * time.Second):
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleEvents mirrors the daemon's SSE contract (progress snapshots with
// monotonic ids, Last-Event-ID resume, heartbeats, one terminal event) so
// the existing client streams fleet campaigns unchanged.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError,
			fmt.Errorf("fleet: response writer cannot stream"))
		return
	}
	lastSent := int64(-1)
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		if v, err := strconv.ParseInt(lid, 10, 64); err == nil && v >= 0 {
			lastSent = v
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	lastWrite := time.Now()
	var last []byte
	emitProgress := func() {
		st := j.snapshot()
		if st.Seq <= lastSent {
			return
		}
		data, err := json.Marshal(st)
		if err != nil || bytes.Equal(data, last) {
			return
		}
		last = data
		lastSent = st.Seq
		writeEvent(w, fl, "progress", st.Seq, data)
		lastWrite = time.Now()
	}
	emitProgress()

	tick := time.NewTicker(s.opts.StreamInterval)
	defer tick.Stop()
wait:
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.finished:
			break wait
		case <-tick.C:
			emitProgress()
			if time.Since(lastWrite) >= s.opts.StreamKeepAlive {
				fmt.Fprint(w, ": hb\n\n")
				fl.Flush()
				lastWrite = time.Now()
			}
		}
	}

	j.mu.Lock()
	terminalSeq := j.seq
	state, rep := j.state, j.report
	j.mu.Unlock()
	final := j.snapshot()
	switch state {
	case server.JobDone:
		data, err := json.Marshal(rep.CampaignReport)
		if err != nil {
			data, _ = json.Marshal(map[string]string{"error": err.Error()})
			writeEvent(w, fl, "failed", terminalSeq, data)
			return
		}
		writeEvent(w, fl, "done", terminalSeq, data)
	case server.JobFailed:
		data, _ := json.Marshal(final)
		writeEvent(w, fl, "failed", terminalSeq, data)
	default:
		data, _ := json.Marshal(final)
		writeEvent(w, fl, "cancelled", terminalSeq, data)
	}
}

func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, id int64, data []byte) {
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
	fl.Flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	njobs := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":        status,
		"jobs":          njobs,
		"nodes":         len(s.c.Nodes()),
		"nodes_healthy": s.c.healthyCount(),
	})
}

// handleReadyz answers ready only while the fleet can actually take work:
// not draining and at least MinNodes nodes healthy.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	healthy := s.c.healthyCount()
	reason := ""
	switch {
	case draining:
		reason = "draining"
	case healthy < s.c.opts.MinNodes:
		reason = fmt.Sprintf("%d healthy nodes below minimum %d", healthy, s.c.opts.MinNodes)
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unavailable", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics is the fleet-wide rollup: the coordinator's own
// goldeneye_fleet_* metrics followed by every reachable node's /metrics,
// each sample line re-labeled with node="addr" so one scrape shows the
// whole fleet without label collisions. Unreachable nodes are skipped
// (noted in a comment) rather than failing the exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var buf bytes.Buffer
	s.c.Registry().WritePrometheus(&buf)
	w.Write(buf.Bytes())

	hc := &http.Client{Timeout: s.opts.ScrapeTimeout, Transport: s.c.opts.Client.Transport}
	for _, n := range s.c.nodes {
		body, err := scrapeNode(r.Context(), hc, n.addr)
		if err != nil {
			fmt.Fprintf(w, "# fleet: node %s unreachable: %s\n", n.addr, strings.ReplaceAll(err.Error(), "\n", " "))
			continue
		}
		relabelMetrics(w, body, n.addr)
	}
}

// scrapeNode fetches one node's Prometheus exposition.
func scrapeNode(ctx context.Context, hc *http.Client, addr string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// relabelMetrics rewrites one node's Prometheus exposition, injecting
// node="addr" as the first label of every sample line. Comment lines
// (HELP/TYPE) are dropped — the rollup repeats each metric once per node,
// which the text format only allows without per-node metadata blocks.
func relabelMetrics(w io.Writer, body []byte, addr string) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Fprintln(w, injectNodeLabel(line, addr))
	}
}

// injectNodeLabel adds node="addr" to one exposition sample line,
// merging with any labels already present.
func injectNodeLabel(line, addr string) string {
	nodeLabel := fmt.Sprintf(`node=%q`, addr)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		return line[:i+1] + nodeLabel + "," + line[i+1:]
	}
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i] + "{" + nodeLabel + "}" + line[i:]
	}
	return line // malformed; pass through untouched
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
