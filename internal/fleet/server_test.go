package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"goldeneye/internal/server/client"
)

// TestServeFrontEnd drives the coordinator's HTTP mode with the ordinary
// job client, end to end: submit, SSE progress, report — and the report
// bytes must match a single daemon at the equal effective worker count,
// so existing tooling cannot tell a fleet from one node.
func TestServeFrontEnd(t *testing.T) {
	spec := testSpec(t)
	want := reportJSON(t, singleNodeReference(t, spec, 2))

	c, err := New([]string{startDaemon(t), startDaemon(t)}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	fs := Serve(c, ServerOptions{StreamInterval: 10 * 1e6}) // 10ms
	ts := httptest.NewServer(fs)
	defer ts.Close()
	t.Cleanup(func() { fs.Shutdown(context.Background()) })

	cli := client.New(ts.URL)
	if err := cli.Ready(context.Background()); err != nil {
		t.Fatalf("coordinator not ready: %v", err)
	}
	rep, err := cli.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("run via coordinator: %v", err)
	}
	if got := reportJSON(t, rep); got != want {
		t.Fatalf("coordinator report diverges from single-node run\nfleet:  %s\nsingle: %s", got, want)
	}

	// The /report body must be the merged CampaignReport alone, identical
	// to what a single daemon serves for the same campaign.
	st, err := cli.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stream(context.Background(), st.ID, nil); err != nil {
		t.Fatal(err)
	}
	rep2, err := cli.Report(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep2); got != want {
		t.Fatalf("/report bytes diverge from single-node run: %s", got)
	}
}

// TestServeMetricsRollup pins the fleet-wide /metrics exposition: the
// coordinator's own goldeneye_fleet_* family plus each node's metrics
// re-labeled with node="addr".
func TestServeMetricsRollup(t *testing.T) {
	spec := testSpec(t)
	n1, n2 := startDaemon(t), startDaemon(t)
	c, err := New([]string{n1, n2}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
	fs := Serve(c, ServerOptions{})
	ts := httptest.NewServer(fs)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		MetricShardsDone + " 2",
		`goldeneye_server_jobs_total{node="` + n1 + `",state="done"}`,
		`goldeneye_server_jobs_total{node="` + n2 + `",state="done"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rollup missing %q\n%s", want, text)
		}
	}
}

// TestServeReadyzTracksFleet pins readiness semantics: a coordinator over
// a fleet with fewer than MinNodes healthy nodes answers 503.
func TestServeReadyzTracksFleet(t *testing.T) {
	opts := fastOpts()
	opts.MinNodes = 2
	c, err := New([]string{"http://127.0.0.1:1", startDaemon(t)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mark the dead node lost by hand — readiness reflects coordinator
	// state, not live probes.
	c.nodes[0].lost = true
	ts := httptest.NewServer(Serve(c, ServerOptions{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with 1/2 healthy nodes, want 503", resp.StatusCode)
	}
}
