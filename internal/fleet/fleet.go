// Package fleet is the distributed campaign fabric: a coordinator that
// splits one campaign into deterministic stride shards (ShardConfigs),
// farms them to a fleet of goldeneyed daemons over the /v1/jobs API, and
// merges the shard reports (MergeShardReports) into a CampaignReport
// byte-identical to a single-node run at the equal effective worker count
// — a K-shard fleet reproduces RunCampaignParallel at workers=K exactly.
//
// The fabric survives node failure. Every shard dispatch holds a lease
// renewed by SSE progress; a node that dies (SIGKILL), partitions,
// stalls, or drains loses its lease and the shard is reassigned to a
// healthy node. Dispatches carry deterministic per-shard idempotency
// keys, so a re-dispatched shard that actually completed on a recovered
// node is served from that node's journal and result cache rather than
// re-executed. Failing nodes are quarantined with exponential backoff and
// re-admitted after a successful /readyz probe; idle nodes steal shards
// whose progress has gone quiet so one straggler cannot gate completion.
// A fleet that loses nodes finishes degraded-but-correct on the
// survivors as long as at least Options.MinNodes stay healthy; below
// that the run fails with a typed *InsufficientFleetError carrying the
// completed shard reports.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"goldeneye"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
	"goldeneye/internal/telemetry"
)

// Fleet metric names, registered in Options.Registry (see
// internal/telemetry/README.md for the inventory).
const (
	// MetricShardsInflight gauges shards currently executing on some node.
	MetricShardsInflight = "goldeneye_fleet_shards_inflight"

	// MetricShardsDone counts shard completions (first completion per
	// shard; a stolen duplicate finishing second does not count).
	MetricShardsDone = "goldeneye_fleet_shards_done_total"

	// MetricShardsReassigned counts shards released back to the pending
	// set after their executing node died, stalled, or drained.
	MetricShardsReassigned = "goldeneye_fleet_shards_reassigned_total"

	// MetricShardsStolen counts work-stealing dispatches: an idle node
	// duplicating an in-flight shard whose progress went quiet.
	MetricShardsStolen = "goldeneye_fleet_shards_stolen_total"

	// MetricReplays counts idempotent replays: a shard dispatch answered
	// terminally at submit time from a node's journal or result cache,
	// proving the shard was not re-executed.
	MetricReplays = "goldeneye_fleet_idempotent_replays_total"

	// MetricNodeState gauges each node's health (labeled node=): 1
	// healthy, 0 quarantined, -1 lost.
	MetricNodeState = "goldeneye_fleet_node_state"

	// MetricNodeQuarantines counts quarantine entries per node (labeled
	// node=).
	MetricNodeQuarantines = "goldeneye_fleet_node_quarantines_total"

	// MetricNodeShardSeconds is the per-node shard service-time histogram
	// (labeled node=), successful dispatches only.
	MetricNodeShardSeconds = "goldeneye_fleet_node_shard_seconds"

	// MetricDegraded gauges whether the last completed campaign finished
	// degraded (nodes lost but >= MinNodes healthy).
	MetricDegraded = "goldeneye_fleet_degraded"
)

// Node health states, as exposed through MetricNodeState.
const (
	nodeHealthy     = 1.0
	nodeQuarantined = 0.0
	nodeLost        = -1.0
)

// pollInterval paces the scheduler's idle wait: how often an idle node
// re-scans for pending work and re-evaluates steal eligibility.
const pollInterval = 100 * time.Millisecond

// Options configures a fleet Coordinator. The zero value gets defaults
// from New.
type Options struct {
	// Shards is the number of stride shards to split a campaign into
	// (clamped to the injection count). 0 means one shard per node — the
	// "equal effective worker counts" contract then pins the merged
	// report byte-identical to a single node running workers=len(nodes).
	Shards int

	// MinNodes is the minimum healthy node count the fleet tolerates.
	// While at least MinNodes nodes are healthy the campaign finishes on
	// the survivors (marked degraded if any were lost); the moment fewer
	// remain, the run fails with *InsufficientFleetError. Default 1.
	MinNodes int

	// LeaseTimeout is the shard lease: the longest a dispatched shard may
	// go without SSE progress advancing before its node is declared
	// stalled and the shard reassigned. Default 2m.
	LeaseTimeout time.Duration

	// StealAfter is the work-stealing threshold: an idle node duplicates
	// an in-flight shard only once that shard's progress has been quiet
	// this long — healthy shards are never duplicated, so a failure-free
	// fleet runs every shard exactly once. Default LeaseTimeout/2.
	StealAfter time.Duration

	// QuarantineBase and QuarantineMax shape the exponential backoff a
	// failing node sits out before each re-admission probe (defaults
	// 500ms and 15s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration

	// LostAfter is the number of consecutive failed dispatch/probe cycles
	// after which a node counts as lost for the MinNodes check and the
	// degraded marker (it keeps probing and may still rejoin). Default 3.
	LostAfter int

	// Registry receives the goldeneye_fleet_* metrics (nil = fresh).
	Registry *telemetry.Registry

	// Client configures the per-node campaign-service clients (timeouts,
	// retry budget, chaos transports in tests).
	Client client.Options

	// Logf, when non-nil, receives coordinator lifecycle lines (dispatch,
	// reassignment, quarantine, degradation).
	Logf func(format string, args ...interface{})
}

func (o *Options) withDefaults() {
	if o.MinNodes <= 0 {
		o.MinNodes = 1
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 2 * time.Minute
	}
	if o.StealAfter <= 0 {
		o.StealAfter = o.LeaseTimeout / 2
	}
	if o.QuarantineBase <= 0 {
		o.QuarantineBase = 500 * time.Millisecond
	}
	if o.QuarantineMax <= 0 {
		o.QuarantineMax = 15 * time.Second
	}
	if o.LostAfter <= 0 {
		o.LostAfter = 3
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
}

// Stats summarizes one campaign's robustness events.
type Stats struct {
	// Shards is the number of stride shards the campaign ran as.
	Shards int

	// Reassigned counts shard releases back to the pending set after a
	// node failure or expired lease.
	Reassigned int

	// Stolen counts work-stealing dispatches.
	Stolen int

	// Replayed counts shard dispatches served terminally at submit time
	// from a node's journal/result cache (idempotent replay, no
	// re-execution).
	Replayed int

	// NodesLost lists the nodes still in the lost state when the
	// campaign finished.
	NodesLost []string
}

// Report is a fleet campaign's outcome: the merged CampaignReport —
// byte-identical on the wire to a single-node run, which is why the
// degraded marker lives out here rather than inside it — plus the
// fleet's robustness accounting.
type Report struct {
	*goldeneye.CampaignReport

	// Degraded is set when the fleet lost nodes during the campaign but
	// finished correctly on at least MinNodes survivors.
	Degraded bool

	Stats Stats
}

// InsufficientFleetError reports a campaign abandoned because fewer than
// MinNodes nodes remained healthy. Completed holds the shard reports
// that finished before the fleet collapsed (partial results, preserved
// for salvage); Cause is the final node failure that tripped the
// threshold.
type InsufficientFleetError struct {
	Healthy   int
	Min       int
	Completed []*goldeneye.CampaignReport
	Cause     error
}

func (e *InsufficientFleetError) Error() string {
	return fmt.Sprintf("fleet: %d healthy nodes below minimum %d (%d shards completed): %v",
		e.Healthy, e.Min, len(e.Completed), e.Cause)
}

func (e *InsufficientFleetError) Unwrap() error { return e.Cause }

// node is one daemon in the fleet and its health accounting.
type node struct {
	addr string
	cli  *client.Client

	mu          sync.Mutex
	consecutive int // consecutive failed dispatch/probe cycles
	quarantines int
	lost        bool

	state *telemetry.Gauge
}

// Coordinator shards campaigns across a fleet of goldeneyed daemons. It
// is safe for one campaign at a time per Coordinator; the server wrapper
// (Serve) serializes.
type Coordinator struct {
	nodes []*node
	opts  Options
	reg   *telemetry.Registry
}

// New returns a coordinator over the daemons at addrs (base URLs, e.g.
// "http://host:7726").
func New(addrs []string, opts Options) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("fleet: no nodes")
	}
	opts.withDefaults()
	c := &Coordinator{opts: opts, reg: opts.Registry}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" || seen[a] {
			return nil, fmt.Errorf("fleet: empty or duplicate node %q", a)
		}
		seen[a] = true
		cliOpts := opts.Client
		n := &node{
			addr:  a,
			cli:   client.NewWithOptions(a, cliOpts),
			state: c.reg.Gauge(telemetry.Label(MetricNodeState, "node", a)),
		}
		n.state.Set(nodeHealthy)
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Nodes returns the fleet's node addresses, coordinator order.
func (c *Coordinator) Nodes() []string {
	addrs := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		addrs[i] = n.addr
	}
	return addrs
}

// Registry exposes the coordinator's telemetry registry.
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// shardKey derives the deterministic idempotency key for one shard of
// one campaign: a hash of the shard's full job spec (model, pool,
// campaign — shard geometry included). Deterministic keys make
// re-dispatch after any failure — including a coordinator restart — an
// idempotent replay on a node that already ran the shard.
func shardKey(specJSON []byte, shard int) string {
	h := fnv.New64a()
	h.Write(specJSON)
	return fmt.Sprintf("fleet-%016x-s%d", h.Sum64(), shard)
}

// shardState tracks one shard through dispatch, failure, and completion.
// All fields are guarded by run.mu.
type shardState struct {
	spec     *server.JobSpec
	specJSON []byte
	planned  int

	done        bool
	report      *goldeneye.CampaignReport
	progress    int // latest SSE Done count across executors
	lastAdvance time.Time
	executors   map[*node]string // node -> job id ("" until submit returns)
}

// run is the mutable state of one fleet campaign.
type run struct {
	c      *Coordinator
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	shards    []*shardState
	completed int
	fatal     error

	reassigned int
	stolen     int
	replayed   int

	onProgress func(done, total int)
	total      int
	progMu     sync.Mutex // serializes onProgress callbacks
	progLast   int        // guarded by progMu; keeps the stream monotonic
}

// Run executes spec across the fleet and returns the merged report. The
// spec must be unsharded (the coordinator owns the shard geometry) and
// is not mutated. onProgress (may be nil) receives cumulative injection
// progress across all shards.
//
// On success the merged CampaignReport is byte-identical on the wire to
// the same spec run on a single node with Workers equal to the shard
// count. If nodes were lost along the way the Report is marked Degraded;
// if fewer than MinNodes nodes remain healthy the run fails with a typed
// *InsufficientFleetError preserving completed shard reports. Run never
// hangs on a dead fleet: every dispatch is bounded by the client's retry
// budget and the shard lease.
func (c *Coordinator) Run(ctx context.Context, spec *server.JobSpec, onProgress func(done, total int)) (*Report, error) {
	if spec.Campaign.ShardCount > 1 {
		return nil, &goldeneye.ConfigError{Field: "Campaign.ShardCount",
			Reason: "fleet campaigns must be unsharded; the coordinator assigns shard geometry"}
	}
	if spec.Workers > 1 {
		return nil, &goldeneye.ConfigError{Field: "Workers",
			Reason: fmt.Sprintf("fleet campaigns run one serial worker per shard; got workers=%d (set Options.Shards instead)", spec.Workers)}
	}
	if spec.Campaign.Sampling != nil && spec.Campaign.Sampling.TargetCI > 0 {
		return nil, &goldeneye.ConfigError{Field: "Campaign.Sampling.TargetCI",
			Reason: "sequential stopping needs a shared review barrier; fleet shards run independently (drop TargetCI or run on one node)"}
	}
	k := c.opts.Shards
	if k <= 0 {
		k = len(c.nodes)
	}
	shardCfgs := goldeneye.ShardConfigs(spec.Campaign, k)
	k = len(shardCfgs)

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &run{
		c:          c,
		ctx:        rctx,
		cancel:     cancel,
		onProgress: onProgress,
		total:      spec.Campaign.Injections,
	}
	now := time.Now()
	for _, cfg := range shardCfgs {
		sp := *spec
		sp.Campaign = cfg
		sp.Workers = 1
		specJSON, err := json.Marshal(&sp)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard spec not serializable: %w", err)
		}
		r.shards = append(r.shards, &shardState{
			spec:        &sp,
			specJSON:    specJSON,
			planned:     cfg.PlannedInjections(),
			lastAdvance: now,
			executors:   make(map[*node]string),
		})
	}

	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			r.nodeLoop(n)
		}(n)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	stats := Stats{
		Shards:     k,
		Reassigned: r.reassigned,
		Stolen:     r.stolen,
		Replayed:   r.replayed,
		NodesLost:  c.lostNodes(),
	}
	if r.fatal != nil {
		var insuff *InsufficientFleetError
		if errors.As(r.fatal, &insuff) {
			insuff.Completed = r.completedReportsLocked()
		}
		return nil, r.fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reports := make([]*goldeneye.CampaignReport, 0, k)
	for _, sh := range r.shards {
		reports = append(reports, sh.report)
	}
	merged, err := goldeneye.MergeShardReports(reports)
	if err != nil {
		return nil, err
	}
	degraded := len(stats.NodesLost) > 0
	if degraded {
		c.reg.Gauge(MetricDegraded).Set(1)
		c.logf("fleet: campaign finished DEGRADED on %d/%d nodes (lost: %v)",
			len(c.nodes)-len(stats.NodesLost), len(c.nodes), stats.NodesLost)
	} else {
		c.reg.Gauge(MetricDegraded).Set(0)
	}
	return &Report{CampaignReport: merged, Degraded: degraded, Stats: stats}, nil
}

// completedReportsLocked collects the reports of completed shards, shard
// order. Callers hold r.mu.
func (r *run) completedReportsLocked() []*goldeneye.CampaignReport {
	var done []*goldeneye.CampaignReport
	for _, sh := range r.shards {
		if sh.done {
			done = append(done, sh.report)
		}
	}
	return done
}

// lostNodes lists nodes currently in the lost state.
func (c *Coordinator) lostNodes() []string {
	var lost []string
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.lost {
			lost = append(lost, n.addr)
		}
		n.mu.Unlock()
	}
	return lost
}

// healthyCount counts nodes not currently lost.
func (c *Coordinator) healthyCount() int {
	healthy := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		if !n.lost {
			healthy++
		}
		n.mu.Unlock()
	}
	return healthy
}

// finishedLocked reports whether the run is over. Callers hold r.mu.
func (r *run) finishedLocked() bool {
	return r.fatal != nil || r.completed == len(r.shards) || r.ctx.Err() != nil
}

// nextShard picks the node's next dispatch under the scheduling policy:
// a pending shard (not done, nobody executing) first; otherwise steal
// the in-flight shard whose progress has been quiet past StealAfter (at
// most one duplicate per shard). Blocks — polling, so steal eligibility
// ages in — until work exists or the run is over; ok=false means done.
func (r *run) nextShard(n *node) (idx int, ok bool) {
	for {
		r.mu.Lock()
		if r.finishedLocked() {
			r.mu.Unlock()
			return 0, false
		}
		best, bestSteal, found := -1, false, false
		var quietest time.Time
		for i, sh := range r.shards {
			if sh.done {
				continue
			}
			if len(sh.executors) == 0 {
				best, bestSteal, found = i, false, true
				break
			}
			// Steal candidate: exactly one executor (bounding duplicated
			// work to one copy per shard), not us, and quiet past the
			// threshold — a shard advancing normally is never duplicated.
			if len(sh.executors) == 1 {
				if _, mine := sh.executors[n]; mine {
					continue
				}
				if time.Since(sh.lastAdvance) < r.c.opts.StealAfter {
					continue
				}
				if !found || sh.lastAdvance.Before(quietest) {
					best, bestSteal, found, quietest = i, true, true, sh.lastAdvance
				}
			}
		}
		if found {
			sh := r.shards[best]
			sh.executors[n] = ""
			if bestSteal {
				r.stolen++
				r.c.reg.Counter(MetricShardsStolen).Inc()
				r.c.logf("fleet: node %s stealing quiet shard %d", n.addr, best)
			}
			r.c.reg.Gauge(MetricShardsInflight).Set(float64(r.inflightLocked()))
			r.mu.Unlock()
			return best, true
		}
		r.mu.Unlock()
		select {
		case <-r.ctx.Done():
			return 0, false
		case <-time.After(pollInterval):
		}
	}
}

// inflightLocked counts shards with at least one executor. Callers hold
// r.mu.
func (r *run) inflightLocked() int {
	inflight := 0
	for _, sh := range r.shards {
		if !sh.done && len(sh.executors) > 0 {
			inflight++
		}
	}
	return inflight
}

// nodeLoop is one node's scheduling loop: take (or steal) a shard,
// execute it, handle the outcome, quarantine after failures, repeat
// until the run finishes.
func (r *run) nodeLoop(n *node) {
	for {
		idx, ok := r.nextShard(n)
		if !ok {
			return
		}
		err := r.executeShard(n, idx)
		if err == nil {
			n.recovered()
			continue
		}
		if r.ctx.Err() != nil {
			r.release(n, idx)
			return
		}
		r.nodeFailed(n, idx, err)
		if !r.quarantine(n) {
			return
		}
	}
}

// executeShard dispatches shard idx to node n and follows it to
// completion. A nil return means the shard's report was delivered (by us
// or a concurrent duplicate); an error means this node failed and the
// shard should be reassigned.
func (r *run) executeShard(n *node, idx int) error {
	sh := r.shards[idx]
	key := shardKey(sh.specJSON, idx)

	st, err := n.cli.SubmitWithKey(r.ctx, sh.spec, key)
	if err != nil {
		if fatal, ok := campaignFatal(err); ok {
			r.abort(fatal)
			return nil
		}
		return fmt.Errorf("submit shard %d: %w", idx, err)
	}
	r.mu.Lock()
	if sh.done { // a duplicate won while we were submitting
		r.releaseLocked(n, idx)
		r.mu.Unlock()
		go r.cancelJob(n, st.ID)
		return nil
	}
	sh.executors[n] = st.ID
	r.mu.Unlock()

	if st.State.Terminal() {
		// Idempotent replay or cache hit: the node already ran this shard
		// (before a crash, or as an earlier dispatch the coordinator gave
		// up on) and answered from its journal+cache without re-executing.
		if st.State != server.JobDone {
			return fmt.Errorf("shard %d replayed terminal state %s: %s", idx, st.State, st.Error)
		}
		r.mu.Lock()
		r.replayed++
		r.mu.Unlock()
		r.c.reg.Counter(MetricReplays).Inc()
		r.c.logf("fleet: shard %d served idempotently from %s", idx, n.addr)
		rep, rerr := n.cli.Report(r.ctx, st.ID)
		if rerr != nil {
			return fmt.Errorf("fetch replayed shard %d: %w", idx, rerr)
		}
		return r.deliver(n, idx, rep, time.Time{})
	}

	// Shard lease: the stream may stay connected (or keep reconnecting)
	// indefinitely, but if reported progress stops advancing for
	// LeaseTimeout the node is stalled — cut the stream and reassign.
	leaseCtx, cancelLease := context.WithCancel(r.ctx)
	defer cancelLease()
	lease := time.AfterFunc(r.c.opts.LeaseTimeout, cancelLease)
	defer lease.Stop()

	start := time.Now()
	lastDone := -1
	rep, err := n.cli.Stream(leaseCtx, st.ID, func(js server.JobStatus) {
		if js.Done > lastDone {
			lastDone = js.Done
			lease.Reset(r.c.opts.LeaseTimeout)
			r.noteProgress(idx, js.Done)
		}
	})
	if err != nil {
		r.mu.Lock()
		done := sh.done
		r.mu.Unlock()
		if done {
			// The shard completed elsewhere and the winner cancelled our
			// duplicate; this dispatch succeeded vacuously.
			r.release(n, idx)
			return nil
		}
		if fatal, ok := campaignFatal(err); ok {
			r.abort(fatal)
			return nil
		}
		if leaseCtx.Err() != nil && r.ctx.Err() == nil {
			return fmt.Errorf("shard %d lease expired after %s without progress", idx, r.c.opts.LeaseTimeout)
		}
		return fmt.Errorf("stream shard %d: %w", idx, err)
	}
	return r.deliver(n, idx, rep, start)
}

// campaignFatal classifies an error as a campaign-level failure — the
// job itself is invalid or deterministically failing, so retrying it on
// another node would fail identically. Node-level trouble (transport
// errors, exhausted retries, 5xx, queue rejection, not-ready) stays
// retryable.
func campaignFatal(err error) (error, bool) {
	var api *client.APIError
	if errors.As(err, &api) {
		switch api.StatusCode {
		case http.StatusBadRequest:
			return fmt.Errorf("fleet: campaign rejected: %w", api), true
		case http.StatusInternalServerError:
			// A "failed" terminal event: the campaign itself failed on the
			// node (run-time config error, abort threshold exceeded).
			// Deterministic, so don't burn the fleet retrying it.
			return fmt.Errorf("fleet: campaign failed: %w", api), true
		}
	}
	return nil, false
}

// deliver records a completed shard report. The first completion wins;
// losers of a duplicate race are dropped and their jobs cancelled.
func (r *run) deliver(n *node, idx int, rep *goldeneye.CampaignReport, start time.Time) error {
	sh := r.shards[idx]
	if rep == nil {
		return fmt.Errorf("shard %d returned no report", idx)
	}
	if rep.Interrupted {
		return fmt.Errorf("shard %d report marked interrupted", idx)
	}
	if rep.Sampling != nil {
		// A sampled shard executes only its selection; completeness is that
		// its estimator accounted the shard's whole stride slice.
		if covered := rep.Sampling.FaultSpace(); covered != sh.planned {
			return fmt.Errorf("shard %d covered %d of %d planned fault-space indices", idx, covered, sh.planned)
		}
	} else if executed := rep.Injections + rep.Aborted; executed != sh.planned {
		return fmt.Errorf("shard %d executed %d of %d planned injections", idx, executed, sh.planned)
	}
	r.mu.Lock()
	if sh.done {
		r.releaseLocked(n, idx)
		r.mu.Unlock()
		return nil
	}
	sh.done = true
	sh.report = rep
	sh.progress = sh.planned
	type loser struct {
		n  *node
		id string
	}
	var losers []loser
	for other, jobID := range sh.executors {
		if other != n && jobID != "" {
			losers = append(losers, loser{other, jobID})
		}
	}
	r.releaseLocked(n, idx)
	r.completed++
	allDone := r.completed == len(r.shards)
	r.c.reg.Counter(MetricShardsDone).Inc()
	r.c.reg.Gauge(MetricShardsInflight).Set(float64(r.inflightLocked()))
	r.mu.Unlock()

	if !start.IsZero() {
		r.c.reg.Histogram(telemetry.Label(MetricNodeShardSeconds, "node", n.addr),
			telemetry.ExponentialBuckets(0.01, 2, 12)).Observe(time.Since(start).Seconds())
	}
	r.reportProgress()
	// Best-effort: stop duplicate executions that lost the race.
	for _, l := range losers {
		go r.cancelJob(l.n, l.id)
	}
	if allDone {
		// Unblock idle pollers and quarantined probers immediately.
		r.cancel()
	}
	return nil
}

// release removes n from shard idx's executor set.
func (r *run) release(n *node, idx int) {
	r.mu.Lock()
	r.releaseLocked(n, idx)
	r.mu.Unlock()
}

// releaseLocked is release with r.mu held.
func (r *run) releaseLocked(n *node, idx int) {
	delete(r.shards[idx].executors, n)
}

// cancelJob best-effort cancels a job on a node, bounded so a dead node
// cannot stall the caller.
func (r *run) cancelJob(n *node, id string) {
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = n.cli.Cancel(ctx, id)
}

// noteProgress folds one shard's SSE progress into the fleet-wide
// rollup and renews its steal clock.
func (r *run) noteProgress(idx, done int) {
	r.mu.Lock()
	sh := r.shards[idx]
	if !sh.done && done > sh.progress {
		sh.progress = done
	}
	sh.lastAdvance = time.Now()
	r.mu.Unlock()
	r.reportProgress()
}

// reportProgress publishes cumulative injection progress to the caller.
// Callbacks are serialized (progMu) and monotonic, so callers need no
// synchronization of their own even though many node goroutines report.
func (r *run) reportProgress() {
	if r.onProgress == nil {
		return
	}
	r.progMu.Lock()
	defer r.progMu.Unlock()
	r.mu.Lock()
	done := 0
	for _, sh := range r.shards {
		done += sh.progress
	}
	r.mu.Unlock()
	if done <= r.progLast {
		return
	}
	r.progLast = done
	r.onProgress(done, r.total)
}

// abort fails the whole run with a campaign-level error.
func (r *run) abort(err error) {
	r.mu.Lock()
	if r.fatal == nil {
		r.fatal = err
	}
	r.mu.Unlock()
	r.cancel()
}

// nodeFailed handles one dispatch failure: release the shard for
// reassignment and advance the node toward the lost state.
func (r *run) nodeFailed(n *node, idx int, cause error) {
	r.mu.Lock()
	sh := r.shards[idx]
	r.releaseLocked(n, idx)
	if !sh.done {
		r.reassigned++
		r.c.reg.Counter(MetricShardsReassigned).Inc()
	}
	r.c.reg.Gauge(MetricShardsInflight).Set(float64(r.inflightLocked()))
	r.mu.Unlock()
	r.c.logf("fleet: node %s failed shard %d: %v", n.addr, idx, cause)
	r.nodeStruck(n, cause)
}

// nodeStruck advances a node toward the lost state after any failed
// dispatch or re-admission probe, failing the run once the healthy fleet
// shrinks below MinNodes. Probe failures must count too: a dead node
// spends the campaign in the quarantine loop, and if only dispatches
// counted it would never cross LostAfter.
func (r *run) nodeStruck(n *node, cause error) {
	n.mu.Lock()
	n.consecutive++
	newlyLost := !n.lost && n.consecutive >= r.c.opts.LostAfter
	if newlyLost {
		n.lost = true
		n.state.Set(nodeLost)
	}
	n.mu.Unlock()
	if newlyLost {
		healthy := r.c.healthyCount()
		r.c.logf("fleet: node %s declared lost; %d healthy remain (min %d)", n.addr, healthy, r.c.opts.MinNodes)
		if healthy < r.c.opts.MinNodes {
			r.abort(&InsufficientFleetError{Healthy: healthy, Min: r.c.opts.MinNodes, Cause: cause})
		}
	}
}

// recovered resets a node's failure accounting after a successful
// dispatch; a node that had been declared lost rejoins the healthy set.
func (n *node) recovered() {
	n.mu.Lock()
	n.consecutive = 0
	n.lost = false
	n.state.Set(nodeHealthy)
	n.mu.Unlock()
}

// quarantine sits the node out with exponential backoff, then probes
// /readyz until the node answers ready (re-admission) or the run ends.
// Returns false when the run is over.
func (r *run) quarantine(n *node) bool {
	n.mu.Lock()
	n.quarantines++
	attempt := n.quarantines
	if !n.lost {
		n.state.Set(nodeQuarantined)
	}
	n.mu.Unlock()
	r.c.reg.Counter(telemetry.Label(MetricNodeQuarantines, "node", n.addr)).Inc()

	backoff := r.c.opts.QuarantineBase
	for i := 1; i < attempt && backoff < r.c.opts.QuarantineMax; i++ {
		backoff *= 2
	}
	if backoff > r.c.opts.QuarantineMax {
		backoff = r.c.opts.QuarantineMax
	}
	for {
		select {
		case <-r.ctx.Done():
			return false
		case <-time.After(backoff):
		}
		r.mu.Lock()
		over := r.finishedLocked()
		r.mu.Unlock()
		if over {
			return false
		}
		probeCtx, cancel := context.WithTimeout(r.ctx, 5*time.Second)
		err := n.cli.Ready(probeCtx)
		cancel()
		if err == nil {
			n.mu.Lock()
			if !n.lost {
				n.state.Set(nodeHealthy)
			}
			n.mu.Unlock()
			r.c.logf("fleet: node %s re-admitted after readiness probe", n.addr)
			return true
		}
		r.c.logf("fleet: node %s re-admission probe failed: %v", n.addr, err)
		r.nodeStruck(n, err)
		backoff *= 2
		if backoff > r.c.opts.QuarantineMax {
			backoff = r.c.opts.QuarantineMax
		}
	}
}
