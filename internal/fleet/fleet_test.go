package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/chaos"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
)

// testSpec is the tiny mlp campaign the fleet tests shard: small enough
// that a three-node fleet finishes in a couple of seconds, big enough
// that every node gets work.
func testSpec(t *testing.T) *server.JobSpec {
	t.Helper()
	f, err := goldeneye.ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	return &server.JobSpec{
		Model:     "mlp",
		Samples:   16,
		EvalBatch: 8,
		Campaign: goldeneye.CampaignConfig{
			Format:     f,
			Injections: 6,
			Seed:       9,
			Layer:      1,
		},
	}
}

// startDaemon boots one in-process campaign daemon and returns its base
// URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Options{StreamInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts.URL
}

// fastOpts returns fleet options tuned for tests: quick quarantine
// cycles, a small retry budget so dead nodes fail fast, and a short lease.
func fastOpts() Options {
	return Options{
		LeaseTimeout:   10 * time.Second,
		QuarantineBase: 20 * time.Millisecond,
		QuarantineMax:  200 * time.Millisecond,
		LostAfter:      2,
		Client: client.Options{
			RequestTimeout: 5 * time.Second,
			MaxAttempts:    2,
			BaseBackoff:    10 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
		},
		Logf: func(string, ...interface{}) {},
	}
}

// reportJSON canonicalizes a report for byte comparison.
func reportJSON(t *testing.T, rep *goldeneye.CampaignReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// singleNodeReference runs spec on one daemon at the given worker count
// and returns its report — the bytes the fleet's merged report must match.
func singleNodeReference(t *testing.T, spec *server.JobSpec, workers int) *goldeneye.CampaignReport {
	t.Helper()
	addr := startDaemon(t)
	ref := *spec
	ref.Workers = workers
	cli := client.New(addr)
	rep, err := cli.Run(context.Background(), &ref, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return rep
}

// TestFleetByteIdentity is the healthy-path contract: a three-node fleet
// produces a merged report byte-identical to one daemon running the same
// campaign at workers=3 (equal effective worker counts), with no shard
// reassigned, stolen, or replayed.
func TestFleetByteIdentity(t *testing.T) {
	spec := testSpec(t)
	want := reportJSON(t, singleNodeReference(t, spec, 3))

	addrs := []string{startDaemon(t), startDaemon(t), startDaemon(t)}
	c, err := New(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var lastDone, lastTotal int
	rep, err := c.Run(context.Background(), spec, func(done, total int) {
		lastDone, lastTotal = done, total
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if got := reportJSON(t, rep.CampaignReport); got != want {
		t.Fatalf("fleet report diverges from single-node workers=3 run\nfleet:  %s\nsingle: %s", got, want)
	}
	if rep.Degraded {
		t.Fatal("healthy fleet finished degraded")
	}
	if rep.Stats.Shards != 3 || rep.Stats.Reassigned != 0 || rep.Stats.Stolen != 0 || rep.Stats.Replayed != 0 {
		t.Fatalf("healthy fleet stats show robustness events: %+v", rep.Stats)
	}
	if lastDone != spec.Campaign.Injections || lastTotal != spec.Campaign.Injections {
		t.Fatalf("progress ended at %d/%d, want %d/%d", lastDone, lastTotal,
			spec.Campaign.Injections, spec.Campaign.Injections)
	}
}

// TestFleetSurvivesDeadNode kills one node's transport before the run: the
// fleet reassigns its shards to the survivors, declares it lost, and still
// delivers the byte-identical report, marked degraded.
func TestFleetSurvivesDeadNode(t *testing.T) {
	spec := testSpec(t)
	want := reportJSON(t, singleNodeReference(t, spec, 3))

	// A proxy whose backend refuses connections: the node is routable but
	// dead, the same failure shape as a SIGKILLed daemon.
	dead, err := chaos.NewProxy("127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()

	addrs := []string{startDaemon(t), dead.URL(), startDaemon(t)}
	c, err := New(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("fleet run with dead node: %v", err)
	}
	if got := reportJSON(t, rep.CampaignReport); got != want {
		t.Fatalf("degraded fleet report diverges from single-node run\nfleet:  %s\nsingle: %s", got, want)
	}
	if !rep.Degraded {
		t.Fatal("fleet lost a node but did not mark the report degraded")
	}
	if len(rep.Stats.NodesLost) != 1 || rep.Stats.NodesLost[0] != dead.URL() {
		t.Fatalf("lost nodes = %v, want [%s]", rep.Stats.NodesLost, dead.URL())
	}
}

// TestFleetPartitionMidRun partitions one node mid-campaign (its proxy
// stops forwarding and drops active connections): the lease or transport
// error reassigns its shard and the merged report still matches the
// unfailed single-node run byte for byte.
func TestFleetPartitionMidRun(t *testing.T) {
	spec := testSpec(t)
	spec.Campaign.Injections = 8
	want := reportJSON(t, singleNodeReference(t, spec, 2))

	backend := startDaemon(t)
	proxy, err := chaos.NewProxy(strings.TrimPrefix(backend, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	opts := fastOpts()
	opts.Shards = 2
	opts.LeaseTimeout = 2 * time.Second // partitioned SSE streams stall; cut them fast
	c, err := New([]string{startDaemon(t), proxy.URL()}, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Partition the proxied node as soon as the campaign makes progress.
	partitioned := make(chan struct{})
	var once bool
	rep, err := c.Run(context.Background(), spec, func(done, total int) {
		if !once && done > 0 {
			once = true
			proxy.SetTarget("127.0.0.1:1")
			proxy.DropActive()
			close(partitioned)
		}
	})
	if err != nil {
		t.Fatalf("fleet run with partition: %v", err)
	}
	select {
	case <-partitioned:
	default:
		t.Log("campaign finished before the partition fired; rerun covers nothing new")
	}
	if got := reportJSON(t, rep.CampaignReport); got != want {
		t.Fatalf("post-partition report diverges from single-node run\nfleet:  %s\nsingle: %s", got, want)
	}
}

// TestFleetInsufficientNodes pins the graceful-degradation floor: when the
// healthy fleet shrinks below MinNodes the run fails promptly with a typed
// *InsufficientFleetError instead of hanging or panicking.
func TestFleetInsufficientNodes(t *testing.T) {
	spec := testSpec(t)
	opts := fastOpts()
	opts.MinNodes = 2

	dead1, err := chaos.NewProxy("127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer dead1.Close()
	dead2, err := chaos.NewProxy("127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer dead2.Close()

	c, err := New([]string{dead1.URL(), dead2.URL()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = c.Run(ctx, spec, nil)
	var insuff *InsufficientFleetError
	if !errors.As(err, &insuff) {
		t.Fatalf("want *InsufficientFleetError, got %v", err)
	}
	if insuff.Healthy >= opts.MinNodes {
		t.Fatalf("error reports %d healthy, expected below minimum %d", insuff.Healthy, opts.MinNodes)
	}
	if ctx.Err() != nil {
		t.Fatal("run only failed once the test deadline expired; it must fail on its own")
	}
}

// TestFleetIdempotentReplay proves shard dispatches are idempotent across
// coordinator restarts: a second coordinator re-running the same campaign
// against the same daemon is answered entirely from the daemon's
// idempotency index — every shard replayed, none re-executed — with the
// identical report.
func TestFleetIdempotentReplay(t *testing.T) {
	spec := testSpec(t)
	addr := startDaemon(t)
	opts := fastOpts()
	opts.Shards = 2

	c1, err := New([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := c1.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if rep1.Stats.Replayed != 0 {
		t.Fatalf("first run replayed %d shards, want 0", rep1.Stats.Replayed)
	}

	// A fresh coordinator derives the same deterministic shard keys.
	c2, err := New([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := c2.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	if rep2.Stats.Replayed != 2 {
		t.Fatalf("replayed run served %d shards idempotently, want 2", rep2.Stats.Replayed)
	}
	if a, b := reportJSON(t, rep1.CampaignReport), reportJSON(t, rep2.CampaignReport); a != b {
		t.Fatalf("replayed report diverges:\nfirst:  %s\nsecond: %s", a, b)
	}
}

// TestFleetRejects pins the coordinator's input contract: pre-sharded
// specs and parallel worker requests are configuration errors.
func TestFleetRejects(t *testing.T) {
	c, err := New([]string{"http://127.0.0.1:1"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var ce *goldeneye.ConfigError

	sharded := testSpec(t)
	sharded.Campaign.ShardIndex, sharded.Campaign.ShardCount = 1, 2
	if _, err := c.Run(context.Background(), sharded, nil); !errors.As(err, &ce) {
		t.Fatalf("pre-sharded spec: want *ConfigError, got %v", err)
	}

	parallel := testSpec(t)
	parallel.Workers = 4
	if _, err := c.Run(context.Background(), parallel, nil); !errors.As(err, &ce) {
		t.Fatalf("workers>1 spec: want *ConfigError, got %v", err)
	}

	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New([]string{"http://a", "http://a"}, Options{}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// TestInjectNodeLabel pins the /metrics rollup rewriter on the exposition
// shapes internal/telemetry emits.
func TestInjectNodeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`goldeneye_faults_total 12`, `goldeneye_faults_total{node="http://n1"} 12`},
		{`goldeneye_jobs_total{state="done"} 3`, `goldeneye_jobs_total{node="http://n1",state="done"} 3`},
		{`goldeneye_latency_bucket{le="0.5"} 9`, `goldeneye_latency_bucket{node="http://n1",le="0.5"} 9`},
	}
	for _, tc := range cases {
		if got := injectNodeLabel(tc.in, "http://n1"); got != tc.want {
			t.Errorf("injectNodeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
