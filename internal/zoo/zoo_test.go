package zoo

import (
	"path/filepath"
	"testing"

	"goldeneye/internal/models"
	"goldeneye/internal/nn"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.gob")
	a, _ := models.Build("mlp", 10, 3)
	// Perturb weights so the round trip is meaningful.
	a.Params()[0].Value.Data()[0] = 1.234
	if err := SaveState(a, path); err != nil {
		t.Fatal(err)
	}
	b, _ := models.Build("mlp", 10, 99) // different init
	if err := LoadState(b, path); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng.New(1), 1, 2, models.InChannels, models.InHeight, models.InWidth)
	if !nn.Forward(nil, a, x).AllClose(nn.Forward(nil, b, x), 0) {
		t.Fatal("loaded model behaves differently")
	}
}

func TestLoadStateRejectsMismatchedModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.gob")
	a, _ := models.Build("mlp", 10, 1)
	if err := SaveState(a, path); err != nil {
		t.Fatal(err)
	}
	b, _ := models.Build("resnet_s", 10, 1)
	if err := LoadState(b, path); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestLoadStateMissingFile(t *testing.T) {
	a, _ := models.Build("mlp", 10, 1)
	if err := LoadState(a, filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestPretrainedTrainsAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	m1, ds, err := PretrainedIn(dir, "mlp")
	if err != nil {
		t.Fatal(err)
	}
	// Second call must hit the cache and produce identical weights.
	m2, _, err := PretrainedIn(dir, "mlp")
	if err != nil {
		t.Fatal(err)
	}
	x := ds.ValX.Slice(0, 4)
	if !nn.Forward(nil, m1, x).AllClose(nn.Forward(nil, m2, x), 0) {
		t.Fatal("cache round trip changed the model")
	}
}

func TestPretrainedUnknownModel(t *testing.T) {
	if _, _, err := PretrainedIn(t.TempDir(), "nope"); err == nil {
		t.Fatal("expected error")
	}
}
