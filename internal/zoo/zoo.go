// Package zoo provides pre-trained models for the experiments. Models are
// trained in-process the first time they are requested and cached on disk
// (gob-serialized parameters, including frozen BatchNorm statistics), so the
// test suite and benchmark harness stay fast and fully deterministic.
package zoo

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"goldeneye/internal/dataset"
	"goldeneye/internal/models"
	"goldeneye/internal/nn"
	"goldeneye/internal/train"
)

// modelSeed is the weight-initialization seed shared by all zoo models.
const modelSeed = 1

// trainConfigs holds per-model hyperparameters. CNNs take SGD at a higher
// rate; transformers need a gentler schedule.
var trainConfigs = map[string]train.Config{
	"resnet_s":  {Epochs: 30, BatchSize: 25, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, StopAtTrainAcc: 0.995},
	"resnet_m":  {Epochs: 30, BatchSize: 25, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, StopAtTrainAcc: 0.995},
	"vit_tiny":  {Epochs: 40, BatchSize: 25, LR: 0.02, Momentum: 0.9, WeightDecay: 1e-4, StopAtTrainAcc: 0.995},
	"vit_small": {Epochs: 40, BatchSize: 25, LR: 0.015, Momentum: 0.9, WeightDecay: 1e-4, StopAtTrainAcc: 0.995},
	"mlp":       {Epochs: 25, BatchSize: 25, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, StopAtTrainAcc: 0.995},
}

// DefaultDir returns the default on-disk cache location.
func DefaultDir() string {
	return filepath.Join(os.TempDir(), "goldeneye-zoo-v1")
}

// Pretrained returns the named model trained on the default dataset, loading
// cached weights from DefaultDir when available.
func Pretrained(name string) (nn.Module, *dataset.Dataset, error) {
	return PretrainedIn(DefaultDir(), name)
}

// PretrainedIn is Pretrained with an explicit cache directory.
func PretrainedIn(dir, name string) (nn.Module, *dataset.Dataset, error) {
	ds := dataset.New(dataset.Default())
	model, err := PretrainedOn(dir, name, ds)
	return model, ds, err
}

// PretrainedOn loads (or trains) the named model against an already-
// synthesized dataset. Parallel campaign builders use it to avoid paying
// dataset synthesis once per worker.
func PretrainedOn(dir, name string, ds *dataset.Dataset) (nn.Module, error) {
	model, err := models.Build(name, ds.Config.Classes, modelSeed)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, cacheKey(name, ds.Config))
	if err := LoadState(model, path); err == nil {
		return model, nil
	}
	cfg, ok := trainConfigs[name]
	if !ok {
		return nil, fmt.Errorf("zoo: no training config for %q", name)
	}
	res := train.Fit(model, ds, cfg)
	if res.ValAcc < 0.5 {
		return nil, fmt.Errorf("zoo: %s trained to implausible val accuracy %.3f", name, res.ValAcc)
	}
	if err := SaveState(model, path); err != nil {
		// A failed cache write degrades performance, not correctness.
		return model, nil
	}
	return model, nil
}

func cacheKey(name string, cfg dataset.Config) string {
	return fmt.Sprintf("%s-c%d-s%d-d%d.gob", name, cfg.Classes, modelSeed, cfg.Seed)
}

// state is the serialized form of a model's parameters.
type state struct {
	Names  []string
	Shapes [][]int
	Values [][]float32
}

// SaveState writes all parameters (trainable and frozen) of m to path,
// atomically.
func SaveState(m nn.Module, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("zoo: mkdir: %w", err)
	}
	var st state
	for _, p := range m.Params() {
		st.Names = append(st.Names, p.Name)
		st.Shapes = append(st.Shapes, p.Value.Shape())
		st.Values = append(st.Values, append([]float32(nil), p.Value.Data()...))
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".zoo-*")
	if err != nil {
		return fmt.Errorf("zoo: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(&st); err != nil {
		tmp.Close()
		return fmt.Errorf("zoo: encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("zoo: close: %w", err)
	}
	return os.Rename(tmp.Name(), path)
}

// LoadState restores parameters saved by SaveState into m. The model must
// have been built identically (same names and shapes).
func LoadState(m nn.Module, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var st state
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return fmt.Errorf("zoo: decode %s: %w", path, err)
	}
	params := m.Params()
	if len(params) != len(st.Names) {
		return fmt.Errorf("zoo: %s has %d params, model has %d", path, len(st.Names), len(params))
	}
	for i, p := range params {
		if p.Name != st.Names[i] {
			return fmt.Errorf("zoo: param %d name mismatch: %q vs %q", i, st.Names[i], p.Name)
		}
		if p.Value.Len() != len(st.Values[i]) {
			return fmt.Errorf("zoo: param %q size mismatch", p.Name)
		}
		copy(p.Value.Data(), st.Values[i])
	}
	return nil
}
