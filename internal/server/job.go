package server

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	"goldeneye"
	"goldeneye/internal/telemetry"
)

// job is one submitted campaign moving through the service lifecycle. Its
// immutable identity (id, cache key, spec) is set at submission; mutable
// state lives behind mu except the injection-progress counter, which the
// campaign engine's Progress callback stores atomically so SSE snapshots
// never contend with workers.
type job struct {
	id   string
	key  string
	hash uint64
	spec *JobSpec

	// seqNum is the numeric submission sequence behind the id; idemKey and
	// specJSON are the client's Idempotency-Key and the accepted spec's
	// canonical encoding. All three are journal bookkeeping, immutable
	// after submission (or journal replay).
	seqNum   int64
	idemKey  string
	specJSON json.RawMessage

	// cfg is the live campaign configuration. The worker overwrites it once
	// with the fully resolved version (default layer filled in, detector
	// cache paths attached) before the run starts; reads go through
	// snapshotCfg.
	cfg goldeneye.CampaignConfig

	// workers is the resolved parallel worker count.
	workers int

	// detectors names the armed detection pipeline, for per-detector SSE
	// counters.
	detectors []string

	// reg is the job's private telemetry registry; the campaign engine
	// feeds it and snapshots read it. Keeping it per-job means counters
	// start at zero for every job and cannot bleed between jobs.
	reg *telemetry.Registry

	// done counts executed injections, stored by the Progress callback.
	done atomic.Int64

	// total is the engine-reported progress denominator. For exhaustive
	// campaigns it matches PlannedInjections; a sampled campaign reports its
	// selection's executed-count total instead, which only the engine knows.
	// Zero until the first progress callback.
	total atomic.Int64

	// seq is the monotonic progress sequence: one tick per engine progress
	// callback plus one at the terminal transition. SSE frames carry it as
	// their event id, which is what makes Last-Event-ID resume work.
	seq atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc

	// finished closes exactly once when the job reaches a terminal state;
	// SSE streams and tests select on it.
	finished chan struct{}

	mu     sync.Mutex
	state  JobState
	cached bool
	report *goldeneye.CampaignReport
	err    error

	// jmu serializes this job's journal writes; journaled is the highest
	// state rank written so far. Together they keep journal transitions
	// monotonic even when the submit path's "queued" record races the
	// worker's "running"/terminal ones (the stale write is dropped).
	jmu       sync.Mutex
	journaled int
}

func newJob(id, key string, hash uint64, spec *JobSpec, workers int) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:       id,
		key:      key,
		hash:     hash,
		spec:     spec,
		cfg:      spec.Campaign,
		workers:  workers,
		reg:      telemetry.NewRegistry(),
		ctx:      ctx,
		cancel:   cancel,
		finished: make(chan struct{}),
		state:    JobQueued,
	}
}

// progressed records campaign progress from the engine's Progress hook:
// the cumulative injection count, the engine's denominator, plus one
// sequence tick.
func (j *job) progressed(done, total int) {
	j.done.Store(int64(done))
	j.total.Store(int64(total))
	j.seq.Add(1)
}

// setRunning transitions a queued job to running; it reports false when the
// job already reached a terminal state (cancelled while queued), in which
// case the worker must skip it.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	return true
}

// setResolved records the fully resolved campaign configuration the run
// will execute (server-side layer selection applied).
func (j *job) setResolved(cfg goldeneye.CampaignConfig, detectors []string) {
	j.mu.Lock()
	j.cfg = cfg
	j.detectors = detectors
	j.mu.Unlock()
}

func (j *job) snapshotCfg() goldeneye.CampaignConfig {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cfg
}

// finish moves the job to a terminal state exactly once, reporting whether
// this call made the transition; later calls are ignored (a cancel racing
// completion keeps whichever landed first).
func (j *job) finish(state JobState, rep *goldeneye.CampaignReport, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.report = rep
	j.err = err
	if state == JobDone {
		if rep != nil && rep.Sampling != nil {
			// A sampled campaign finishes when its selection (possibly cut
			// short by sequential stopping) is exhausted, not at the planned
			// fault-space size.
			executed := int64(rep.Injections + rep.Aborted)
			j.done.Store(executed)
			j.total.Store(executed)
		} else {
			// Shard jobs execute only their stride slice; the job's total is
			// the planned count, not the whole campaign's.
			j.done.Store(int64(j.cfg.PlannedInjections()))
		}
	}
	j.seq.Add(1)
	close(j.finished)
	return true
}

// terminalState returns the job's state if terminal, or "" while it is
// still queued/running.
func (j *job) terminalState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.state
	}
	return ""
}

// result returns the terminal report and error (nil report for failed or
// cancelled-before-completion jobs).
func (j *job) result() (*goldeneye.CampaignReport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.err
}

// snapshot assembles the job's observable state for the status endpoint
// and the SSE stream. Counter reads are lock-free; the registry creates
// absent counters at zero, so a snapshot of a queued job is all zeros.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	state := j.state
	cached := j.cached
	detectors := j.detectors
	total := j.cfg.PlannedInjections()
	if t := j.total.Load(); t > 0 {
		total = int(t)
	}
	var errText string
	if j.err != nil {
		errText = j.err.Error()
	}
	j.mu.Unlock()

	st := JobStatus{
		ID:     j.id,
		State:  state,
		Model:  j.spec.Model,
		Cached: cached,
		Seq:    j.seq.Load(),
		Done:   int(j.done.Load()),
		Total:  total,
		Error:  errText,
	}
	st.Mismatches = j.reg.Counter(goldeneye.MetricCampaignMismatches).Value()
	st.Detected = j.reg.Counter(goldeneye.MetricCampaignDetected).Value()
	st.Aborted = j.reg.Counter(goldeneye.MetricCampaignAborted).Value()
	if len(detectors) > 0 {
		st.PerDetector = make(map[string]int64, len(detectors))
		for _, name := range detectors {
			st.PerDetector[name] = j.reg.Counter(
				telemetry.Label(goldeneye.MetricCampaignDetections, "detector", name)).Value()
		}
	}
	return st
}
