package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/telemetry"
)

// submitWithKey posts a spec under an Idempotency-Key header.
func submitWithKey(t *testing.T, ts *httptest.Server, spec *JobSpec, key string) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

// TestIdempotentSubmit pins the retry-dedup contract: a second submission
// under the same Idempotency-Key returns the original job (whatever state
// it is in) instead of enqueueing a duplicate.
func TestIdempotentSubmit(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, Options{QueueSize: 4})
	var once atomic.Bool
	s.beforeRun = func(*job) {
		if once.CompareAndSwap(false, true) {
			close(started)
			<-release
		}
	}
	releaseWorker := sync.OnceFunc(func() { close(release) })
	defer releaseWorker()

	const key = "ge-test-idem-key"
	resp1, st1 := submitWithKey(t, ts, testSpec(t), key)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp1.StatusCode)
	}
	<-started // the job is running, not yet terminal

	// Retried submit while the original is in flight: same job, no dup.
	resp2, st2 := submitWithKey(t, ts, testSpec(t), key)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed submit: got %d, want 200", resp2.StatusCode)
	}
	if st2.ID != st1.ID {
		t.Fatalf("replayed submit returned a different job: %s vs %s", st2.ID, st1.ID)
	}
	if resp2.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("replayed submit missing Idempotency-Replayed header")
	}
	if hits := s.reg.Counter(MetricIdempotentHits).Value(); hits != 1 {
		t.Errorf("idempotent hits: got %d, want 1", hits)
	}
	if subs := s.reg.Counter(MetricSubmissions).Value(); subs != 2 {
		t.Errorf("submissions: got %d, want 2", subs)
	}

	// A different key (or none) is a genuinely new submission.
	respNew, stNew := submitWithKey(t, ts, testSpec(t), "ge-another-key")
	if respNew.StatusCode != http.StatusAccepted || stNew.ID == st1.ID {
		t.Fatalf("distinct key: status %d id %s (original %s)", respNew.StatusCode, stNew.ID, st1.ID)
	}

	// After completion the same key still replays the same terminal job.
	releaseWorker()
	if terminal, _, _ := readEvents(t, ts, st1.ID); terminal != "done" {
		t.Fatal("original job did not complete")
	}
	resp3, st3 := submitWithKey(t, ts, testSpec(t), key)
	if resp3.StatusCode != http.StatusOK || st3.ID != st1.ID || st3.State != JobDone {
		t.Errorf("post-completion replay: status %d, %+v", resp3.StatusCode, st3)
	}
}

// TestReadyz: ready while serving, 503 once draining, while /healthz stays
// a 200 liveness signal throughout.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	get := func(path string) (*http.Response, map[string]string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		json.NewDecoder(resp.Body).Decode(&body)
		return resp, body
	}

	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz before drain: %d %v", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	resp, body = get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["reason"] != "draining" {
		t.Errorf("readyz while draining: %d %v", resp.StatusCode, body)
	}
	// Liveness is not readiness: the draining process is still alive.
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d", resp.StatusCode)
	}
}

// TestDeadlineDegradesToPartial: a job whose deadline expires mid-campaign
// terminates done with the partial report (Interrupted set) — and the
// partial is never admitted to the result cache.
func TestDeadlineDegradesToPartial(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	// Warm the model/pool resolution path first: the deadline clock starts
	// at worker pickup and also covers job setup, so a cold zoo load on a
	// loaded host could otherwise eat the whole budget before the first
	// injection and fail the job instead of degrading it.
	warm := testSpec(t)
	warm.Campaign.Injections = 50
	_, wst := submit(t, ts, warm)
	if terminal, payload, _ := readEvents(t, ts, wst.ID); terminal != "done" {
		t.Fatalf("warm-up job: got %q (payload %s)", terminal, payload)
	}

	spec := testSpec(t)
	spec.Campaign.Injections = 2000000 // far beyond what the deadline allows
	spec.DeadlineSeconds = 1.0

	_, st := submit(t, ts, spec)
	terminal, payload, _ := readEvents(t, ts, st.ID)
	if terminal != "done" {
		t.Fatalf("terminal: got %q (payload %s)", terminal, payload)
	}
	var rep goldeneye.CampaignReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("deadline-expired report not marked Interrupted")
	}
	if rep.Injections <= 0 || rep.Injections >= 2000000 {
		t.Errorf("partial report covers %d injections", rep.Injections)
	}
	if expired := s.reg.Counter(MetricDeadlineExpired).Value(); expired != 1 {
		t.Errorf("deadline expiries: got %d, want 1", expired)
	}

	// The partial must not poison the cache: the cell stays empty.
	s.mu.Lock()
	j := s.jobs[st.ID]
	cached := s.cache.get(j.key, j.hash)
	s.mu.Unlock()
	if cached != nil {
		t.Error("partial report was cached")
	}
}

// TestJournalReplay is the crash-recovery core: a server abandoned with a
// completed, a running, and a queued job is rebuilt from its journal — the
// completed job is restored from cache with an identical report, the
// interrupted ones re-enter the queue under their old IDs and re-execute
// to completion.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jdir, cdir := filepath.Join(dir, "journal"), filepath.Join(dir, "cache")

	s1, err := New(Options{JournalDir: jdir, CacheDir: cdir, StreamInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)

	// Job C completes and is cached + journaled done.
	_, stC := submit(t, ts1, testSpec(t))
	terminal, payload, _ := readEvents(t, ts1, stC.ID)
	if terminal != "done" {
		t.Fatalf("job C: %q", terminal)
	}

	// Hold the worker so A sticks in running and B in queued, then abandon
	// the server without draining — the in-process stand-in for SIGKILL.
	release := make(chan struct{})
	started := make(chan struct{})
	var once atomic.Bool
	s1.beforeRun = func(*job) {
		if once.CompareAndSwap(false, true) {
			close(started)
			<-release
		}
	}
	defer close(release)
	specA := testSpec(t)
	specA.Campaign.Seed = 2
	_, stA := submit(t, ts1, specA)
	<-started
	specB := testSpec(t)
	specB.Campaign.Seed = 3
	_, stB := submit(t, ts1, specB)
	ts1.Close()

	// Restart over the same directories.
	s2, ts2 := newTestServer(t, Options{JournalDir: jdir, CacheDir: cdir})

	// C is restored terminal, report byte-identical to the pre-crash one.
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + stC.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var restored goldeneye.CampaignReport
	if err := json.NewDecoder(resp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	var original goldeneye.CampaignReport
	if err := json.Unmarshal(payload, &original); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(original)
	b, _ := json.Marshal(restored)
	if !bytes.Equal(a, b) {
		t.Errorf("restored report differs:\n%s\n%s", a, b)
	}

	// A and B were interrupted: the replayed server re-queues them under
	// their old IDs and runs them to completion.
	for _, id := range []string{stA.ID, stB.ID} {
		if terminal, payload, _ := readEvents(t, ts2, id); terminal != "done" {
			t.Errorf("replayed job %s: %q (%s)", id, terminal, payload)
		}
	}

	restoredN := s2.reg.Counter(telemetry.Label(MetricJournalReplayed, "outcome", "restored")).Value()
	requeuedN := s2.reg.Counter(telemetry.Label(MetricJournalReplayed, "outcome", "requeued")).Value()
	if restoredN != 1 || requeuedN != 2 {
		t.Errorf("replay outcomes: restored=%d requeued=%d, want 1/2", restoredN, requeuedN)
	}

	// New submissions on the replayed server continue the ID sequence.
	specD := testSpec(t)
	specD.Campaign.Seed = 4
	_, stD := submit(t, ts2, specD)
	for _, old := range []string{stA.ID, stB.ID, stC.ID} {
		if stD.ID == old {
			t.Errorf("replayed server reissued ID %s", old)
		}
	}
}

// TestCancelRaces: cancellation is an idempotent no-op against completed
// jobs, duplicate cancels collapse to one terminal transition, and cancels
// racing a journal replay's re-queue leave the job in exactly one terminal
// state. Run under -race via make stress-chaos.
func TestCancelRaces(t *testing.T) {
	t.Run("after completion", func(t *testing.T) {
		s, ts := newTestServer(t, Options{})
		_, st := submit(t, ts, testSpec(t))
		if terminal, _, _ := readEvents(t, ts, st.ID); terminal != "done" {
			t.Fatal("job did not complete")
		}
		for i := 0; i < 2; i++ {
			resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			var got JobStatus
			json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || got.State != JobDone {
				t.Fatalf("cancel %d after done: %d %+v", i, resp.StatusCode, got)
			}
		}
		if n := s.reg.Counter(telemetry.Label(MetricJobsTotal, "state", string(JobCancelled))).Value(); n != 0 {
			t.Errorf("cancelled counter after no-op cancels: %d", n)
		}
	})

	t.Run("duplicate cancels", func(t *testing.T) {
		release := make(chan struct{})
		started := make(chan struct{})
		s, ts := newTestServer(t, Options{})
		var once atomic.Bool
		s.beforeRun = func(*job) {
			if once.CompareAndSwap(false, true) {
				close(started)
				<-release
			}
		}
		_, st := submit(t, ts, testSpec(t))
		<-started

		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
		close(release)
		if terminal, _, _ := readEvents(t, ts, st.ID); terminal != "cancelled" {
			t.Errorf("terminal: %q", terminal)
		}
		if n := s.reg.Counter(telemetry.Label(MetricJobsTotal, "state", string(JobCancelled))).Value(); n != 1 {
			t.Errorf("cancelled counter after 8 racing cancels: %d, want 1", n)
		}
	})

	t.Run("cancel racing replay", func(t *testing.T) {
		dir := t.TempDir()
		jdir := filepath.Join(dir, "journal")
		s1, err := New(Options{JournalDir: jdir, StreamInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ts1 := httptest.NewServer(s1)
		release := make(chan struct{})
		started := make(chan struct{})
		var once atomic.Bool
		s1.beforeRun = func(*job) {
			if once.CompareAndSwap(false, true) {
				close(started)
				<-release
			}
		}
		defer close(release)
		_, st := submit(t, ts1, testSpec(t))
		<-started
		ts1.Close()

		// The replayed server re-queues the job; cancel it immediately,
		// racing the worker picking it up. Whichever side wins, the job
		// lands in exactly one terminal state.
		s2, ts2 := newTestServer(t, Options{JournalDir: jdir})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts2.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
		terminal, _, _ := readEvents(t, ts2, st.ID)
		if terminal != "cancelled" && terminal != "done" {
			t.Errorf("terminal after cancel-vs-replay race: %q", terminal)
		}
		total := s2.reg.Counter(telemetry.Label(MetricJobsTotal, "state", string(JobCancelled))).Value() +
			s2.reg.Counter(telemetry.Label(MetricJobsTotal, "state", string(JobDone))).Value()
		if total != 1 {
			t.Errorf("terminal transitions: %d, want exactly 1", total)
		}
	})
}

// TestSSEResume pins the server half of Last-Event-ID resume: replayed
// sequence numbers suppress already-seen progress frames, the terminal
// event is always delivered, and resumed connections are counted.
func TestSSEResume(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	_, st := submit(t, ts, testSpec(t))
	if terminal, _, _ := readEvents(t, ts, st.ID); terminal != "done" {
		t.Fatal("job did not complete")
	}

	// Resume claiming everything was seen: progress is suppressed, the
	// terminal frame still arrives.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1099511627776") // far beyond any real seq
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, terminal := collectSSE(t, resp)
	if terminal != "done" {
		t.Errorf("resumed stream terminal: %q", terminal)
	}
	if bytes.Contains(body, []byte("event: progress")) {
		t.Error("resume with max Last-Event-ID still delivered progress frames")
	}
	if n := s.reg.Counter(MetricSSEResumes).Value(); n != 1 {
		t.Errorf("SSE resumes: got %d, want 1", n)
	}

	// A malformed Last-Event-ID falls back to a fresh stream.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", "not-a-number")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, terminal2 := collectSSE(t, resp2)
	if terminal2 != "done" || !bytes.Contains(body2, []byte("event: progress")) {
		t.Errorf("fresh-fallback stream: terminal %q, body %s", terminal2, body2)
	}
}

// collectSSE reads a stream to its terminal event, returning the raw bytes
// seen and the terminal event name.
func collectSSE(t *testing.T, resp *http.Response) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	br := bufio.NewReader(resp.Body)
	event := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended without terminal event: %v", err)
		}
		buf.WriteString(line)
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			switch event {
			case "done", "failed", "cancelled":
				return buf.Bytes(), event
			}
			event = ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		}
	}
}
