// Package server implements the GoldenEye campaign service: a long-running
// HTTP/JSON daemon that accepts fault-injection campaign jobs, schedules
// them on the parallel/batched campaign engine, streams progress over SSE,
// and serves identical resubmissions from a content-addressed result cache.
//
// The service is the network boundary over the existing engine — it adds
// no new campaign semantics. A job is a CampaignConfig plus a model-zoo
// reference; the daemon resolves the model and evaluation pool, runs
// RunCampaignParallel under the job's cancellable context, and the final
// CampaignReport is bit-identical to a local run with the same seed and
// worker count (see the remote-vs-local equivalence test).
//
// Lifecycle: jobs enter a bounded queue drained by a fixed worker pool;
// a full queue answers 429 with Retry-After instead of buffering without
// bound. Jobs can be cancelled at any point through the campaign engine's
// context machinery, and Shutdown drains running jobs before returning so
// a SIGTERM never discards work. Completed results persist through
// internal/checkpoint keyed by the experiment sweeps' CellHash, so a
// restarted daemon still answers repeat jobs from cache.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"time"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/models"
)

// SchemaVersion is the job-submission schema version. Decoding rejects
// documents stamped with a newer version, so a daemon never silently
// misreads a job from a newer client; the nested campaign configuration
// carries its own version (goldeneye.ConfigSchemaVersion).
const SchemaVersion = 1

// DefaultSamples is the evaluation-pool size a job gets when its spec
// leaves Samples unset (the CLI's long-standing default).
const DefaultSamples = 300

// JobSpec is one campaign job submission: the campaign configuration plus
// the model-zoo reference the daemon resolves into a simulator and
// evaluation pool. The pool itself never travels — both sides derive it
// deterministically from the model's validation set.
type JobSpec struct {
	// Version is the submission schema version (0 means the current one).
	Version int `json:"version,omitempty"`

	// Model names the zoo model the campaign runs against.
	Model string `json:"model"`

	// Samples is the evaluation-pool size, capped at the model's
	// validation set (0 = DefaultSamples).
	Samples int `json:"samples,omitempty"`

	// EvalBatch is the pool's accuracy-evaluation batch geometry (0 = the
	// package default).
	EvalBatch int `json:"eval_batch,omitempty"`

	// Workers is the campaign's parallel worker count (0 = the daemon's
	// configured default). Worker count joins the cache key: Welford merge
	// order depends on it, so reports are bit-identical only at equal
	// worker counts.
	Workers int `json:"workers,omitempty"`

	// DeadlineSeconds bounds the job's execution time (0 = unbounded). The
	// clock starts when a worker picks the job up, not while it queues. A
	// campaign still running at the deadline is stopped at the next
	// injection boundary and the job completes with the partial report
	// (Interrupted set) rather than hanging a worker; partial reports are
	// never cached. The deadline is not part of the cache key: only
	// complete reports are cached, and those are deadline-independent.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`

	// Campaign is the campaign configuration proper, in its versioned wire
	// encoding. Layer may be -1 to select the model's default injection
	// layer server-side.
	Campaign goldeneye.CampaignConfig `json:"campaign"`
}

// Deadline returns the spec's per-job execution bound, 0 when unbounded.
func (s *JobSpec) Deadline() time.Duration {
	return time.Duration(s.DeadlineSeconds * float64(time.Second))
}

// Validate checks a decoded submission against the rules the daemon can
// enforce without loading the model. Violations come back as
// *goldeneye.ConfigError, which handlers map to 400.
func (s *JobSpec) Validate() error {
	if s.Version > SchemaVersion {
		return fmt.Errorf("server: job schema v%d is newer than supported v%d", s.Version, SchemaVersion)
	}
	if s.Model == "" {
		return &goldeneye.ConfigError{Field: "Model", Reason: "job needs a model name"}
	}
	if !slices.Contains(models.Names(), s.Model) {
		return &goldeneye.ConfigError{Field: "Model",
			Reason: fmt.Sprintf("unknown model %q (want one of %v)", s.Model, models.Names())}
	}
	if s.Samples < 0 {
		return &goldeneye.ConfigError{Field: "Samples", Reason: fmt.Sprintf("sample count %d is negative", s.Samples)}
	}
	if s.EvalBatch < 0 {
		return &goldeneye.ConfigError{Field: "EvalBatch", Reason: fmt.Sprintf("eval batch %d is negative", s.EvalBatch)}
	}
	if s.Workers < 0 {
		return &goldeneye.ConfigError{Field: "Workers", Reason: fmt.Sprintf("worker count %d is negative", s.Workers)}
	}
	if s.DeadlineSeconds < 0 {
		return &goldeneye.ConfigError{Field: "DeadlineSeconds",
			Reason: fmt.Sprintf("deadline %v is negative", s.DeadlineSeconds)}
	}
	if s.EvalBatch > s.PoolSamples() {
		return &goldeneye.ConfigError{Field: "EvalBatch",
			Reason: fmt.Sprintf("eval batch %d exceeds the job's %d pool samples", s.EvalBatch, s.PoolSamples())}
	}
	c := &s.Campaign
	if c.Format == nil && c.Assignment == nil {
		return &goldeneye.ConfigError{Field: "Campaign.Format", Reason: "campaign requires a format"}
	}
	if c.Assignment != nil {
		if err := c.Assignment.Validate(); err != nil {
			return err
		}
	}
	if c.Injections <= 0 {
		return &goldeneye.ConfigError{Field: "Campaign.Injections",
			Reason: fmt.Sprintf("campaign requires a positive injection count, got %d", c.Injections)}
	}
	if c.ShardCount < 0 {
		return &goldeneye.ConfigError{Field: "Campaign.ShardCount",
			Reason: fmt.Sprintf("negative shard count %d", c.ShardCount)}
	}
	if c.ShardIndex < 0 {
		return &goldeneye.ConfigError{Field: "Campaign.ShardIndex",
			Reason: fmt.Sprintf("negative shard index %d", c.ShardIndex)}
	}
	if c.ShardCount > 1 {
		if c.ShardIndex >= c.ShardCount {
			return &goldeneye.ConfigError{Field: "Campaign.ShardIndex",
				Reason: fmt.Sprintf("shard index %d outside shard count %d", c.ShardIndex, c.ShardCount)}
		}
		if c.ShardCount > c.Injections {
			return &goldeneye.ConfigError{Field: "Campaign.ShardCount",
				Reason: fmt.Sprintf("shard count %d exceeds %d injections", c.ShardCount, c.Injections)}
		}
		// One shard is already a stride slice of the campaign; the fleet
		// provides the parallelism, so the per-node worker pool must not.
		if s.Workers > 1 {
			return &goldeneye.ConfigError{Field: "Workers",
				Reason: fmt.Sprintf("sharded jobs run serially (the fleet provides the parallelism), got workers=%d", s.Workers)}
		}
	} else if c.ShardIndex != 0 {
		return &goldeneye.ConfigError{Field: "Campaign.ShardIndex",
			Reason: fmt.Sprintf("shard index %d requires a shard count > 1", c.ShardIndex)}
	}
	if c.Layer < -1 {
		return &goldeneye.ConfigError{Field: "Campaign.Layer",
			Reason: fmt.Sprintf("layer %d (use -1 for the model's default injection layer)", c.Layer)}
	}
	// Weight-target campaigns degrade BatchSize to the serial path (the
	// engine packs 1 regardless), so only reject a batch that would run.
	if c.BatchSize > s.PoolSamples() && c.Target != inject.TargetWeight {
		return &goldeneye.ConfigError{Field: "Campaign.BatchSize",
			Reason: fmt.Sprintf("campaign batch %d exceeds the job's %d pool samples", c.BatchSize, s.PoolSamples())}
	}
	if c.KeepTrace {
		return &goldeneye.ConfigError{Field: "Campaign.KeepTrace",
			Reason: "per-injection traces are not served over the job API"}
	}
	if err := c.Sampling.Validate(); err != nil {
		return &goldeneye.ConfigError{Field: "Campaign.Sampling", Reason: err.Error()}
	}
	return nil
}

// PoolSamples resolves the spec's requested evaluation-pool size (the
// model's validation set may cap it further at run time).
func (s *JobSpec) PoolSamples() int {
	if s.Samples > 0 {
		return s.Samples
	}
	return DefaultSamples
}

// DecodeJobSpec parses and validates one job submission. It is the
// daemon's only request decoder, hardened against hostile input: unknown
// top-level fields, trailing garbage, and schema violations are errors,
// and no input can panic it (FuzzJobConfigDecode pins this).
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("server: decode job: %w", err)
	}
	if dec.More() {
		return nil, errors.New("server: trailing data after job spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// The engine wants an explicit site and target; default unset ones to
	// the CLI's defaults so minimal submissions behave like the local tool.
	if spec.Campaign.Site == 0 {
		spec.Campaign.Site = inject.SiteValue
	}
	if spec.Campaign.Target == 0 {
		spec.Campaign.Target = inject.TargetNeuron
	}
	return &spec, nil
}

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle states. Queued and running jobs progress; the other three
// are terminal.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is the wire shape of a job's observable state: lifecycle,
// injection progress, and the live campaign counters the SSE stream
// renders. It doubles as the SSE "progress" event payload.
type JobStatus struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Model  string   `json:"model"`
	Cached bool     `json:"cached,omitempty"`

	// Seq is the job's monotonic progress sequence number: it advances on
	// every engine progress callback and once more at the terminal
	// transition. SSE frames carry it as their event id, so a reconnecting
	// client sends it back as Last-Event-ID and the stream resumes without
	// re-delivering snapshots it already saw.
	Seq int64 `json:"seq"`

	// Done/Total track executed injections (recorded + aborted) against
	// the campaign's planned count.
	Done  int `json:"done"`
	Total int `json:"total"`

	// Live campaign counters, read from the job's telemetry registry.
	Mismatches int64 `json:"mismatches,omitempty"`
	Detected   int64 `json:"detected,omitempty"`
	Aborted    int64 `json:"aborted,omitempty"`

	// PerDetector holds per-detector detection counts for jobs with a
	// detection pipeline armed.
	PerDetector map[string]int64 `json:"per_detector,omitempty"`

	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`

	// Degraded marks a job that completed on a degraded fleet (nodes
	// lost, survivors >= the coordinator's minimum). Single daemons never
	// set it; the omitempty keeps their encodings byte-identical.
	Degraded bool `json:"degraded,omitempty"`
}
