package server

import (
	"encoding/json"
	"fmt"

	"goldeneye"
	"goldeneye/internal/checkpoint"
)

// resultCache is the service's content-addressed result store. Keys are
// derived from everything that determines a job's bit-exact report (model,
// pool geometry, worker count, and the campaign cell fingerprint), so a hit
// is by construction the same report the job would recompute. A hot
// in-memory map fronts an optional checkpoint.Store, which also makes
// results survive daemon restarts; the disk layer reuses the sweep cell
// format, so `cmd/experiments`-style tooling can read service results too.
type resultCache struct {
	mem   map[string]*goldeneye.CampaignReport
	store *checkpoint.Store // nil = memory-only
}

func newResultCache(dir string) (*resultCache, error) {
	c := &resultCache{mem: make(map[string]*goldeneye.CampaignReport)}
	if dir != "" {
		st, err := checkpoint.Open(dir)
		if err != nil {
			return nil, err
		}
		c.store = st
	}
	return c, nil
}

// get returns the cached report for key, or nil. Callers serialize access
// (the server holds its mutex); reports are treated as immutable once
// cached, so returning the shared pointer is safe.
func (c *resultCache) get(key string, hash uint64) *goldeneye.CampaignReport {
	if rep, ok := c.mem[key]; ok {
		return rep
	}
	if c.store == nil {
		return nil
	}
	cell, err := c.store.LoadMatching(key, hash)
	if err != nil || cell == nil || !cell.Done {
		return nil
	}
	rep := &goldeneye.CampaignReport{
		CampaignResult: cell.Result,
		Detected:       cell.Detected,
		Aborted:        cell.Aborted,
		Recovered:      cell.Recovered,
		PerDetector:    cell.Detectors,
	}
	if len(cell.Config) > 0 {
		if err := json.Unmarshal(cell.Config, &rep.Config); err != nil {
			return nil // config from a future schema or corrupted: treat as miss
		}
	}
	c.mem[key] = rep
	return rep
}

// put caches a completed report under key, persisting it when a store is
// configured. The persisted cell embeds the resolved config so a future
// daemon returns it verbatim on a hit.
func (c *resultCache) put(key string, hash uint64, rep *goldeneye.CampaignReport) error {
	c.mem[key] = rep
	if c.store == nil {
		return nil
	}
	cfgJSON, err := json.Marshal(rep.Config)
	if err != nil {
		return fmt.Errorf("server: encode cached config: %w", err)
	}
	return c.store.Save(&checkpoint.Cell{
		Key:        key,
		ConfigHash: hash,
		Seed:       rep.Config.Seed,
		Planned:    rep.Config.Injections,
		Completed:  rep.Injections + rep.Aborted,
		Done:       true,
		Result:     rep.CampaignResult,
		Detected:   rep.Detected,
		Aborted:    rep.Aborted,
		Recovered:  rep.Recovered,
		Detectors:  rep.PerDetector,
		Config:     cfgJSON,
	})
}
