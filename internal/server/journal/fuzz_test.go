package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// validEntry is the realistic corpus seed: the shape the server actually
// journals.
func validEntry(id string, seq int64, state State) []byte {
	e := &Entry{
		ID:             id,
		Seq:            seq,
		IdempotencyKey: "fleet-00c0ffee-s0",
		Key:            "mlp/00000000deadbeef",
		Hash:           0xdeadbeef,
		Workers:        1,
		Spec:           json.RawMessage(`{"model":"mlp","campaign":{"version":1,"format":"fp16","injections":4,"seed":9,"layer":1}}`),
		State:          state,
	}
	data, _ := json.MarshalIndent(e, "", "  ")
	return append(data, '\n')
}

// FuzzJournalReplay hardens the boot path against whatever ends up in the
// journal directory: corrupt entries, truncations, manual edits, and
// duplicate sequence numbers. Replay must never panic or error on file
// contents — every undecodable entry is skipped and counted — and the
// replayed order must be deterministic regardless of filesystem order.
func FuzzJournalReplay(f *testing.F) {
	f.Add(validEntry("job-000001", 1, StateQueued))
	f.Add(validEntry("job-000002", 2, StateDone))
	f.Add(validEntry("job-000003", 3, StateFailed))
	f.Add(validEntry("job-000001", 1, StateQueued)[:40]) // truncated mid-object
	f.Add([]byte(`{"id":"","seq":4,"spec":{}}`))         // decodes but invalid: no ID
	f.Add([]byte(`{"id":"job-000009","seq":9}`))         // no spec
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"id":"job-000001","seq":-1,"spec":{"model":"mlp"},"state":"queued"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// The fuzzed blob plus two fixed valid entries sharing a sequence
		// number, so every run also exercises the duplicate-Seq tie-break.
		files := map[string][]byte{
			"fuzzed.job.json": data,
			"dup-b.job.json":  validEntry("job-dup-b", 7, StateQueued),
			"dup-a.job.json":  validEntry("job-dup-a", 7, StateRunning),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		j, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		entries, skipped, err := j.Replay()
		if err != nil {
			t.Fatalf("Replay errored on file contents: %v", err)
		}
		if got := len(entries) + skipped; got != len(files) {
			t.Fatalf("entries (%d) + skipped (%d) = %d, want %d files accounted for",
				len(entries), skipped, got, len(files))
		}
		for i, e := range entries {
			if e.ID == "" || len(e.Spec) == 0 {
				t.Fatalf("replayed entry %d is invalid: %+v", i, e)
			}
			if i > 0 {
				prev := entries[i-1]
				if e.Seq < prev.Seq || (e.Seq == prev.Seq && e.ID < prev.ID) {
					t.Fatalf("replay order not deterministic: %s(seq %d) after %s(seq %d)",
						e.ID, e.Seq, prev.ID, prev.Seq)
				}
			}
		}
		// The two duplicate-Seq entries always survive, ID order.
		var dups []string
		for _, e := range entries {
			if e.Seq == 7 && bytes.HasPrefix([]byte(e.ID), []byte("job-dup-")) {
				dups = append(dups, e.ID)
			}
		}
		if len(dups) < 2 || dups[len(dups)-2] != "job-dup-a" || dups[len(dups)-1] != "job-dup-b" {
			t.Fatalf("duplicate-Seq entries out of order: %v", dups)
		}
	})
}
