package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func entry(id string, seq int64, state State) *Entry {
	return &Entry{
		ID:    id,
		Seq:   seq,
		Key:   "mlp/deadbeef",
		Hash:  42,
		Spec:  json.RawMessage(`{"model":"mlp"}`),
		State: state,
	}
}

// TestRecordReplayRoundTrip: entries come back in submission order with
// their last-recorded state.
func TestRecordReplayRoundTrip(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Record out of order; transitions overwrite.
	if err := j.Record(entry("job-000002", 2, StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(entry("job-000001", 1, StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(entry("job-000001", 1, StateRunning)); err != nil {
		t.Fatal(err)
	}
	e3 := entry("job-000003", 3, StateDone)
	e3.IdempotencyKey = "idem-xyz"
	e3.Error = ""
	if err := j.Record(e3); err != nil {
		t.Fatal(err)
	}

	entries, skipped, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped: got %d, want 0", skipped)
	}
	if len(entries) != 3 {
		t.Fatalf("entries: got %d, want 3", len(entries))
	}
	wantIDs := []string{"job-000001", "job-000002", "job-000003"}
	wantStates := []State{StateRunning, StateQueued, StateDone}
	for i, e := range entries {
		if e.ID != wantIDs[i] || e.State != wantStates[i] {
			t.Errorf("entry %d: got %s/%s, want %s/%s", i, e.ID, e.State, wantIDs[i], wantStates[i])
		}
	}
	if entries[2].IdempotencyKey != "idem-xyz" {
		t.Errorf("idempotency key lost: %+v", entries[2])
	}
}

// TestReplaySkipsCorrupt: garbage files are counted, not fatal, and do not
// hide valid entries.
func TestReplaySkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(entry("job-000001", 1, StateQueued)); err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"torn.job.json":   `{"id":"job-9`,
		"empty.job.json":  ``,
		"nospec.job.json": `{"id":"job-000009","seq":9,"state":"queued"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, skipped, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "job-000001" {
		t.Errorf("entries: %+v", entries)
	}
	if skipped != 3 {
		t.Errorf("skipped: got %d, want 3", skipped)
	}
}

// TestRemove is idempotent: removing an absent entry is a no-op.
func TestRemove(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(entry("job-000001", 1, StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := j.Remove("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := j.Remove("job-000001"); err != nil {
		t.Fatalf("second remove: %v", err)
	}
	entries, _, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("entries after remove: %+v", entries)
	}
}

// TestHealthy: a failed record flips health, the next success clears it.
func TestHealthy(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Healthy(); err != nil {
		t.Fatalf("fresh journal unhealthy: %v", err)
	}
	// Make the directory unwritable so the temp-file create fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	recErr := j.Record(entry("job-000001", 1, StateQueued))
	os.Chmod(dir, 0o755)
	if os.Getuid() == 0 && recErr == nil {
		t.Skip("running as root: chmod does not enforce read-only")
	}
	if recErr == nil {
		t.Fatal("record into read-only dir succeeded")
	}
	if err := j.Healthy(); err == nil {
		t.Error("journal healthy after failed record")
	}
	if err := j.Record(entry("job-000001", 1, StateQueued)); err != nil {
		t.Fatal(err)
	}
	if err := j.Healthy(); err != nil {
		t.Errorf("journal unhealthy after successful record: %v", err)
	}
}

// TestHostileIDStaysInDir: path traversal in an ID cannot escape the
// journal directory.
func TestHostileIDStaysInDir(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := entry("../../evil", 1, StateQueued)
	if err := j.Record(e); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.job.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("journal files: %v", paths)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "evil.job.json")); err == nil {
		t.Error("hostile ID escaped the journal directory")
	}
}

// TestConcurrentRecords: parallel transitions on distinct jobs are safe and
// all land (exercised under -race by the stress-chaos target).
func TestConcurrentRecords(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%06d", i)
			for _, st := range []State{StateQueued, StateRunning, StateDone} {
				if err := j.Record(entry(id, int64(i), st)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	entries, skipped, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 || skipped != 0 {
		t.Fatalf("entries=%d skipped=%d, want 8/0", len(entries), skipped)
	}
	for _, e := range entries {
		if e.State != StateDone {
			t.Errorf("%s: state %s, want done", e.ID, e.State)
		}
	}
}
