package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goldeneye"
	"goldeneye/internal/checkpoint"
	"goldeneye/internal/detect"
	"goldeneye/internal/exper"
	"goldeneye/internal/server/journal"
	"goldeneye/internal/telemetry"
	"goldeneye/internal/zoo"
)

// Service-level metric names, exposed on /metrics next to the engine's
// campaign metrics (see internal/telemetry/README.md for the inventory).
const (
	MetricQueueDepth    = "goldeneye_server_queue_depth"
	MetricJobsInFlight  = "goldeneye_server_jobs_inflight"
	MetricJobsTotal     = "goldeneye_server_jobs_total" // labeled state="done|failed|cancelled"
	MetricSubmissions   = "goldeneye_server_submissions_total"
	MetricRejected      = "goldeneye_server_rejected_total"
	MetricCacheHits     = "goldeneye_server_cache_hits_total"
	MetricCacheMisses   = "goldeneye_server_cache_misses_total"
	MetricCacheHitRatio = "goldeneye_server_cache_hit_ratio"
	MetricCacheErrors   = "goldeneye_server_cache_errors_total"

	// Resilience-layer metrics: journal write-ahead activity, boot-time
	// replay outcomes, idempotent submission dedup, SSE stream resumes,
	// and per-job deadline expiries.
	MetricJournalRecords  = "goldeneye_server_journal_records_total"
	MetricJournalErrors   = "goldeneye_server_journal_errors_total"
	MetricJournalReplayed = "goldeneye_server_journal_replayed_total" // labeled outcome="restored|requeued|skipped"
	MetricIdempotentHits  = "goldeneye_server_idempotent_hits_total"
	MetricSSEResumes      = "goldeneye_server_sse_resumes_total"
	MetricDeadlineExpired = "goldeneye_server_deadline_expired_total"
)

// Options configures a campaign service.
type Options struct {
	// QueueSize bounds how many submitted jobs may wait for a worker
	// (default 16). A full queue rejects submissions with 429 and a
	// Retry-After hint rather than buffering without bound.
	QueueSize int

	// Jobs is the worker-pool size: how many campaigns run concurrently
	// (default 1).
	Jobs int

	// CampaignWorkers is the per-job parallel worker count applied when a
	// spec leaves Workers unset (default 1, the serial-identical path).
	CampaignWorkers int

	// CacheDir persists completed results through internal/checkpoint so
	// the cache survives daemon restarts ("" = in-memory cache only).
	CacheDir string

	// JournalDir persists the write-ahead job journal ("" = no journal).
	// With a journal, a daemon that crashes — or is SIGKILLed mid-campaign
	// — replays it at boot: terminal jobs are restored (reports served
	// from the result cache) and queued or running jobs are re-queued and
	// re-executed bit-identically from their deterministic seed.
	JournalDir string

	// ZooDir overrides the pre-trained model cache location ("" = the zoo
	// default).
	ZooDir string

	// Registry receives the service metrics (nil = a fresh registry).
	Registry *telemetry.Registry

	// RetryAfter is the hint returned with 429 responses (default 2s).
	RetryAfter time.Duration

	// StreamInterval is the SSE progress sampling period (default 200ms).
	StreamInterval time.Duration

	// StreamKeepAlive is how long an SSE stream may stay silent before a
	// comment heartbeat is emitted (default 10s), so client idle watchdogs
	// can tell a slow campaign from a stalled connection.
	StreamKeepAlive time.Duration

	// RequestTimeout bounds every non-streaming request handler (default
	// 30s); only the SSE stream and the debug/metrics mux are exempt. A
	// handler that overruns answers 503.
	RequestTimeout time.Duration

	// MaxBodyBytes bounds submission bodies (default 1 MiB).
	MaxBodyBytes int64
}

func (o *Options) withDefaults() {
	if o.QueueSize <= 0 {
		o.QueueSize = 16
	}
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	if o.CampaignWorkers <= 0 {
		o.CampaignWorkers = 1
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.StreamInterval <= 0 {
		o.StreamInterval = 200 * time.Millisecond
	}
	if o.StreamKeepAlive <= 0 {
		o.StreamKeepAlive = 10 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
}

// Server is the campaign service: an http.Handler exposing the job API,
// with a bounded queue drained by a fixed worker pool.
//
//	POST /v1/jobs             submit a JobSpec → JobStatus (202, or 200 on cache hit)
//	GET  /v1/jobs             list job statuses
//	GET  /v1/jobs/{id}        one job's status
//	GET  /v1/jobs/{id}/report the completed CampaignReport
//	GET  /v1/jobs/{id}/events SSE progress stream until terminal
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /healthz             liveness + drain state
//	GET  /readyz              readiness: 503 once draining or the journal is unwritable
//	GET  /metrics             Prometheus exposition (internal/telemetry)
//	GET  /metrics.json        JSON exposition
//	GET  /debug/pprof/        pprof handlers
type Server struct {
	opts    Options
	reg     *telemetry.Registry
	cache   *resultCache
	journal *journal.Journal // nil = no write-ahead journal
	mux     *http.ServeMux

	queue chan *job

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	idem     map[string]string // Idempotency-Key → job ID
	draining bool
	closed   bool

	wg  sync.WaitGroup
	seq atomic.Int64

	queueDepth      *telemetry.Gauge
	inflight        *telemetry.Gauge
	submissions     *telemetry.Counter
	rejected        *telemetry.Counter
	cacheHits       *telemetry.Counter
	cacheMisses     *telemetry.Counter
	hitRatio        *telemetry.Gauge
	cacheErrors     *telemetry.Counter
	journalRecords  *telemetry.Counter
	journalErrors   *telemetry.Counter
	idemHits        *telemetry.Counter
	sseResumes      *telemetry.Counter
	deadlineExpired *telemetry.Counter

	// beforeRun, when non-nil, runs on the worker goroutine after a job
	// turns running and before the campaign executes. Test seam: lets the
	// queue-full and cancellation tests hold a worker at a known point.
	beforeRun func(*job)
}

// New builds a campaign service and starts its worker pool. Callers serve
// it with net/http and stop it with Shutdown. With a JournalDir, New
// replays the write-ahead journal before accepting traffic: interrupted
// jobs re-enter the queue (in submission order, ahead of new work) and
// terminal ones are restored to the job table, so clients resume streams
// and retry submissions against the same job IDs they held before the
// crash.
func New(opts Options) (*Server, error) {
	opts.withDefaults()
	cache, err := newResultCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	var jl *journal.Journal
	var entries []*journal.Entry
	var skipped int
	if opts.JournalDir != "" {
		if jl, err = journal.Open(opts.JournalDir); err != nil {
			return nil, err
		}
		if entries, skipped, err = jl.Replay(); err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:    opts,
		reg:     opts.Registry,
		cache:   cache,
		journal: jl,
		jobs:    make(map[string]*job),
		idem:    make(map[string]string),

		queueDepth:      opts.Registry.Gauge(MetricQueueDepth),
		inflight:        opts.Registry.Gauge(MetricJobsInFlight),
		submissions:     opts.Registry.Counter(MetricSubmissions),
		rejected:        opts.Registry.Counter(MetricRejected),
		cacheHits:       opts.Registry.Counter(MetricCacheHits),
		cacheMisses:     opts.Registry.Counter(MetricCacheMisses),
		hitRatio:        opts.Registry.Gauge(MetricCacheHitRatio),
		cacheErrors:     opts.Registry.Counter(MetricCacheErrors),
		journalRecords:  opts.Registry.Counter(MetricJournalRecords),
		journalErrors:   opts.Registry.Counter(MetricJournalErrors),
		idemHits:        opts.Registry.Counter(MetricIdempotentHits),
		sseResumes:      opts.Registry.Counter(MetricSSEResumes),
		deadlineExpired: opts.Registry.Counter(MetricDeadlineExpired),
	}
	requeue := s.restoreJournal(entries, skipped)
	// The queue must hold every replayed job on top of the configured
	// bound, or a crash with a full queue could not re-admit its own work.
	s.queue = make(chan *job, opts.QueueSize+len(requeue))
	for _, j := range requeue {
		s.queue <- j
	}
	s.queueDepth.Set(float64(len(s.queue)))

	s.mux = http.NewServeMux()
	timed := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, opts.RequestTimeout, `{"error":"server: request timed out"}`)
	}
	s.mux.Handle("POST /v1/jobs", timed(s.handleSubmit))
	s.mux.Handle("GET /v1/jobs", timed(s.handleList))
	s.mux.Handle("GET /v1/jobs/{id}", timed(s.handleStatus))
	s.mux.Handle("GET /v1/jobs/{id}/report", timed(s.handleReport))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents) // SSE: no per-request timeout
	s.mux.Handle("POST /v1/jobs/{id}/cancel", timed(s.handleCancel))
	s.mux.Handle("GET /healthz", timed(s.handleHealthz))
	s.mux.Handle("GET /readyz", timed(s.handleReadyz))
	tm := telemetry.Mux(s.reg)
	s.mux.Handle("/metrics", tm)
	s.mux.Handle("/metrics.json", tm)
	s.mux.Handle("/debug/pprof/", tm)

	s.wg.Add(opts.Jobs)
	for i := 0; i < opts.Jobs; i++ {
		go s.worker()
	}
	return s, nil
}

// restoreJournal rebuilds the job table from replayed journal entries and
// returns the jobs that must re-enter the queue (interrupted queued or
// running jobs, and done jobs whose report no longer exists in the result
// cache — re-executing those is bit-identical by the determinism
// invariant). Runs before the worker pool starts, so it owns all state.
func (s *Server) restoreJournal(entries []*journal.Entry, skipped int) []*job {
	replayed := func(outcome string) {
		s.reg.Counter(telemetry.Label(MetricJournalReplayed, "outcome", outcome)).Inc()
	}
	for i := 0; i < skipped; i++ {
		replayed("skipped")
	}
	var requeue []*job
	var maxSeq int64
	for _, e := range entries {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		spec, err := DecodeJobSpec(bytes.NewReader(e.Spec))
		if err != nil {
			// A spec this daemon version no longer accepts (schema drift);
			// skip it rather than refusing to boot.
			replayed("skipped")
			s.journalErrors.Inc()
			continue
		}
		j := newJob(e.ID, e.Key, e.Hash, spec, e.Workers)
		j.seqNum = e.Seq
		j.idemKey = e.IdempotencyKey
		j.specJSON = e.Spec
		switch {
		case e.State == journal.StateDone:
			if rep := s.cache.get(e.Key, e.Hash); rep != nil {
				j.cached = true
				j.cfg = rep.Config
				j.finish(JobDone, rep, nil)
				replayed("restored")
			} else {
				requeue = append(requeue, j)
				replayed("requeued")
			}
		case e.State == journal.StateFailed:
			j.finish(JobFailed, nil, fmt.Errorf("server: journaled failure: %s", e.Error))
			replayed("restored")
		case e.State == journal.StateCancelled:
			j.finish(JobCancelled, nil, errors.New("server: job cancelled before restart"))
			replayed("restored")
		default: // queued or running: the crash interrupted it
			requeue = append(requeue, j)
			replayed("requeued")
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.idemKey != "" {
			s.idem[j.idemKey] = j.id
		}
	}
	// New submissions continue the journal's sequence so IDs never collide
	// with replayed ones.
	s.seq.Store(maxSeq)
	// Re-record requeued jobs as queued: a second crash before they run
	// must replay them the same way.
	for _, j := range requeue {
		s.journalRecord(j, journal.StateQueued, "")
	}
	return requeue
}

// journalRank orders lifecycle states so a job's journal entry can only
// move forward: a submit path's "queued" write that loses the race against
// the worker's "running" (or a fast job's terminal) write is dropped.
func journalRank(state journal.State) int {
	switch state {
	case journal.StateQueued:
		return 1
	case journal.StateRunning:
		return 2
	default: // terminal
		return 3
	}
}

// journalRecord persists a job transition to the write-ahead journal.
// Failures are counted and surfaced through /readyz rather than failing
// the job: the daemon stays available, degraded to non-durable, and
// operators see it immediately.
func (s *Server) journalRecord(j *job, state journal.State, errText string) {
	if s.journal == nil {
		return
	}
	j.jmu.Lock()
	defer j.jmu.Unlock()
	rank := journalRank(state)
	if rank <= j.journaled {
		return
	}
	j.journaled = rank
	err := s.journal.Record(&journal.Entry{
		ID:             j.id,
		Seq:            j.seqNum,
		IdempotencyKey: j.idemKey,
		Key:            j.key,
		Hash:           j.hash,
		Workers:        j.workers,
		Spec:           j.specJSON,
		State:          state,
		Error:          errText,
	})
	if err != nil {
		s.journalErrors.Inc()
		return
	}
	s.journalRecords.Inc()
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new submissions are accepted, still-
// queued jobs are cancelled, and running jobs are allowed to complete (and
// their results cached) before it returns. If ctx expires first, running
// jobs are cancelled through the campaign engine's context machinery and
// Shutdown returns ctx.Err after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	// Submissions send on the queue only while holding mu with draining
	// false, so closing here cannot race a send.
	close(s.queue)
	queued := make([]*job, 0)
	for _, id := range s.order {
		queued = append(queued, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range queued {
		s.cancelIfQueued(j)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueDepth.Set(float64(len(s.queue)))
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	if !j.setRunning() {
		return // cancelled while queued
	}
	s.journalRecord(j, journal.StateRunning, "")
	s.inflight.Add(1)
	if f := s.beforeRun; f != nil {
		f(j)
	}
	// The per-job deadline starts here, when a worker picks the job up —
	// queue time doesn't count against it.
	ctx, cancel := j.ctx, context.CancelFunc(func() {})
	if d := j.spec.Deadline(); d > 0 {
		ctx, cancel = context.WithTimeout(j.ctx, d)
	}
	rep, err := s.execute(ctx, j)
	cancel()
	s.inflight.Add(-1)
	switch {
	case err == nil:
		s.finishJob(j, JobDone, rep, nil)
		s.mu.Lock()
		perr := s.cache.put(j.key, j.hash, rep)
		s.mu.Unlock()
		if perr != nil {
			s.cacheErrors.Inc()
		}
	case j.ctx.Err() != nil:
		s.finishJob(j, JobCancelled, rep, err)
	case ctx.Err() != nil && rep != nil:
		// The job deadline expired mid-campaign: degrade to the partial
		// report (Interrupted set) instead of a hung worker. Partial
		// reports are never cached — a resubmission re-runs the campaign.
		s.deadlineExpired.Inc()
		s.finishJob(j, JobDone, rep, nil)
	case ctx.Err() != nil:
		s.deadlineExpired.Inc()
		s.finishJob(j, JobFailed, nil,
			fmt.Errorf("server: job %s exceeded its %gs deadline before producing a report: %w",
				j.id, j.spec.DeadlineSeconds, err))
	default:
		s.finishJob(j, JobFailed, nil, err)
	}
}

// execute resolves the job's model and pool and runs the campaign under
// ctx (the job context, possibly narrowed by a per-job deadline). The
// recover mirrors the campaign engine's own panic isolation one level up:
// a panicking model resolution or setup fails the job, never the daemon.
func (s *Server) execute(ctx context.Context, j *job) (rep *goldeneye.CampaignReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("server: job %s panicked: %v", j.id, r)
		}
	}()

	dir := s.opts.ZooDir
	if dir == "" {
		dir = zoo.DefaultDir()
	}
	model, ds, err := zoo.PretrainedIn(dir, j.spec.Model)
	if err != nil {
		return nil, err
	}
	n := min(j.spec.PoolSamples(), ds.ValLen())
	// The spec is validated against its requested pool size, but the
	// dataset may be smaller; clamp the batch to the realized pool.
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, n), ds.ValY[:n], min(j.spec.EvalBatch, n))
	if err != nil {
		return nil, err
	}
	scout, err := goldeneye.NewSimulator(model, ds.ValX.Slice(0, 1))
	if err != nil {
		return nil, err
	}

	cfg := j.cfg
	cfg.Pool = pool
	cfg.Metrics = j.reg
	cfg.Progress = func(done, total int) { j.progressed(done, total) }
	if cfg.Layer < 0 {
		cfg.Layer = scout.DefaultInjectionLayer(cfg.Target)
		if cfg.Layer < 0 {
			return nil, &goldeneye.ConfigError{Field: "Campaign.Layer",
				Reason: fmt.Sprintf("model %s has no injectable layers for target %v", j.spec.Model, cfg.Target)}
		}
	}
	if s.cache.store != nil {
		for i := range cfg.Detectors {
			if cfg.Detectors[i].Kind == "ranger" && cfg.Detectors[i].CachePath == "" {
				cfg.Detectors[i].CachePath = s.cache.store.Sidecar(j.key, ".ranger.json")
			}
		}
	}
	j.setResolved(cfg, detect.Names(cfg.Detectors))

	// The scout simulator doubles as the first campaign worker's; extra
	// workers rebuild from the zoo's gob cache, matching how local callers
	// use RunCampaignParallel.
	var first atomic.Pointer[goldeneye.Simulator]
	first.Store(scout)
	build := func() (*goldeneye.Simulator, error) {
		if sim := first.Swap(nil); sim != nil {
			return sim, nil
		}
		m, berr := zoo.PretrainedOn(dir, j.spec.Model, ds)
		if berr != nil {
			return nil, berr
		}
		return goldeneye.NewSimulator(m, ds.ValX.Slice(0, 1))
	}
	return goldeneye.RunCampaignParallel(ctx, cfg, j.workers, build)
}

// finishJob applies a terminal transition, counts it once, and journals it.
func (s *Server) finishJob(j *job, state JobState, rep *goldeneye.CampaignReport, err error) {
	if j.finish(state, rep, err) {
		s.reg.Counter(telemetry.Label(MetricJobsTotal, "state", string(state))).Inc()
		var errText string
		if err != nil {
			errText = err.Error()
		}
		s.journalRecord(j, journal.State(state), errText)
	}
}

// cancelIfQueued terminates a still-queued job immediately (so waiters see
// the terminal state without waiting for a worker) and cancels the job
// context either way; a running job unwinds through the campaign engine.
func (s *Server) cancelIfQueued(j *job) {
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		s.finishJob(j, JobCancelled, nil, errors.New("server: job cancelled while queued"))
	}
	j.cancel()
}

// jobHash fingerprints everything that determines a job's bit-exact
// report: the model, pool geometry, parallel worker count (Welford merge
// order depends on it), and the campaign cell fingerprint shared with the
// experiment sweeps.
func jobHash(spec *JobSpec, workers int) uint64 {
	return checkpoint.HashConfig(
		spec.Model, spec.PoolSamples(), spec.EvalBatch, workers,
		exper.CellHash(spec.Campaign),
	)
}

func (s *Server) nextID() (string, int64) {
	n := s.seq.Add(1)
	return fmt.Sprintf("job-%06d", n), n
}

// newSubmission constructs a job for an accepted submission, carrying the
// journal bookkeeping (sequence, idempotency key, canonical spec bytes).
func (s *Server) newSubmission(key string, hash uint64, spec *JobSpec, workers int, idemKey string) *job {
	id, seq := s.nextID()
	j := newJob(id, key, hash, spec, workers)
	j.seqNum = seq
	j.idemKey = idemKey
	j.specJSON, _ = json.Marshal(spec)
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.submissions.Inc()
	workers := spec.Workers
	if workers == 0 {
		workers = s.opts.CampaignWorkers
	}
	if spec.Campaign.ShardCount > 1 {
		// Shard jobs always run serially, whatever the daemon's default
		// worker count: the shard is one stride slice of a campaign whose
		// parallelism lives in the fleet, and its merge contract
		// (MergeShardReports) requires the serial per-shard report.
		workers = 1
	}
	hash := jobHash(spec, workers)
	key := fmt.Sprintf("%s/%016x", spec.Model, hash)
	idemKey := r.Header.Get("Idempotency-Key")

	s.mu.Lock()
	// Idempotent retry: a key we've already accepted maps to its original
	// job, whatever state it is in — the retried submit never double-runs
	// the campaign. The key index survives restarts through the journal.
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			j := s.jobs[id]
			s.mu.Unlock()
			s.idemHits.Inc()
			w.Header().Set("Idempotency-Replayed", "true")
			writeJSON(w, http.StatusOK, j.snapshot())
			return
		}
	}
	if rep := s.cache.get(key, hash); rep != nil {
		s.cacheHits.Inc()
		s.updateHitRatio()
		j := s.newSubmission(key, hash, spec, workers, idemKey)
		j.cached = true
		j.cfg = rep.Config
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if idemKey != "" {
			s.idem[idemKey] = j.id
		}
		s.mu.Unlock()
		s.finishJob(j, JobDone, rep, nil)
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	s.cacheMisses.Inc()
	s.updateHitRatio()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, errors.New("server: draining, not accepting jobs"))
		return
	}
	j := s.newSubmission(key, hash, spec, workers, idemKey)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if idemKey != "" {
			s.idem[idemKey] = j.id
		}
		s.queueDepth.Set(float64(len(s.queue)))
		s.mu.Unlock()
		// Journal the acceptance before acknowledging it, so a crash after
		// the 202 always replays the job.
		s.journalRecord(j, journal.StateQueued, "")
		writeJSON(w, http.StatusAccepted, j.snapshot())
	default:
		s.rejected.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter/time.Second)))
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("server: job queue full (%d waiting)", s.opts.QueueSize))
	}
}

// updateHitRatio refreshes the cache hit-ratio gauge; callers hold mu.
func (s *Server) updateHitRatio() {
	hits, misses := s.cacheHits.Value(), s.cacheMisses.Value()
	if total := hits + misses; total > 0 {
		s.hitRatio.Set(float64(hits) / float64(total))
	}
}

// jobFor resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("server: unknown job %q", id))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		statuses = append(statuses, j.snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	if j.terminalState() != JobDone {
		st := j.snapshot()
		httpError(w, http.StatusConflict,
			fmt.Errorf("server: job %s has no report (state=%s)", j.id, st.State))
		return
	}
	rep, _ := j.result()
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	s.cancelIfQueued(j)
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleReadyz is the drain-aware readiness probe, distinct from the
// liveness /healthz: it answers 503 once Shutdown begins (load balancers
// stop routing new jobs while in-flight ones drain) or when the write-ahead
// journal has become unwritable (accepting work that cannot be made durable
// would silently void the crash-safety contract).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	reason := ""
	switch {
	case draining:
		reason = "draining"
	case s.journal != nil:
		if err := s.journal.Healthy(); err != nil {
			reason = "journal unwritable: " + err.Error()
		}
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unavailable", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	njobs := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":        status,
		"jobs":          njobs,
		"queue_depth":   len(s.queue),
		"jobs_inflight": int(s.inflight.Value()),
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
