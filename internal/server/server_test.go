package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/telemetry"
)

// testSpec is a tiny mlp campaign that runs in well under a second.
func testSpec(t *testing.T) *JobSpec {
	t.Helper()
	f, err := goldeneye.ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	return &JobSpec{
		Model:     "mlp",
		Samples:   16,
		EvalBatch: 8,
		Campaign: goldeneye.CampaignConfig{
			Format:     f,
			Injections: 4,
			Seed:       9,
			Layer:      1,
		},
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.StreamInterval == 0 {
		opts.StreamInterval = 10 * time.Millisecond
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec *JobSpec) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

// readEvents consumes a job's SSE stream until the terminal event,
// returning the terminal event name, its payload, and every progress
// snapshot seen on the way.
func readEvents(t *testing.T, ts *httptest.Server, id string) (terminal string, payload []byte, progress []JobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type: got %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var event string
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "progress":
				var st JobStatus
				if err := json.Unmarshal(data.Bytes(), &st); err != nil {
					t.Fatalf("bad progress payload %q: %v", data.String(), err)
				}
				progress = append(progress, st)
			case "done", "failed", "cancelled":
				return event, append([]byte(nil), data.Bytes()...), progress
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	t.Fatalf("stream ended without terminal event (scan err: %v)", sc.Err())
	return "", nil, nil
}

// TestSubmitStreamReport is the end-to-end happy path: submit, follow SSE
// to the done event, and check the carried report matches the report
// endpoint.
func TestSubmitStreamReport(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, st := submit(t, ts, testSpec(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", resp.StatusCode)
	}
	if st.State != JobQueued || st.Total != 4 {
		t.Fatalf("accepted status: %+v", st)
	}

	terminal, payload, _ := readEvents(t, ts, st.ID)
	if terminal != "done" {
		t.Fatalf("terminal event: got %q (payload %s)", terminal, payload)
	}
	var streamed goldeneye.CampaignReport
	if err := json.Unmarshal(payload, &streamed); err != nil {
		t.Fatalf("decode streamed report: %v", err)
	}
	if streamed.Injections != 4 {
		t.Errorf("streamed report injections: got %d, want 4", streamed.Injections)
	}

	// The report endpoint serves the same bytes the stream carried.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var fetched goldeneye.CampaignReport
	if err := json.NewDecoder(rresp.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(streamed)
	b, _ := json.Marshal(fetched)
	if !bytes.Equal(a, b) {
		t.Errorf("stream and report endpoint disagree:\n%s\n%s", a, b)
	}

	// Terminal status reflects completion.
	jresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var final JobStatus
	if err := json.NewDecoder(jresp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Done != 4 {
		t.Errorf("final status: %+v", final)
	}
}

// TestResultCacheHit pins the content-addressed cache contract:
// resubmitting an identical job answers immediately from cache (counted,
// not re-executed), while any parameter change misses.
func TestResultCacheHit(t *testing.T) {
	var executions atomic.Int64
	s, ts := newTestServer(t, Options{})
	s.beforeRun = func(*job) { executions.Add(1) }

	_, st := submit(t, ts, testSpec(t))
	if terminal, payload, _ := readEvents(t, ts, st.ID); terminal != "done" {
		t.Fatalf("first run: %q (%s)", terminal, payload)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("executions after first run: %d", got)
	}

	resp, st2 := submit(t, ts, testSpec(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit must answer 200, got %d", resp.StatusCode)
	}
	if st2.State != JobDone || !st2.Cached {
		t.Fatalf("cache hit status: %+v", st2)
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("cache hit re-executed the campaign (executions=%d)", got)
	}
	if hits := s.reg.Counter(MetricCacheHits).Value(); hits != 1 {
		t.Errorf("cache hits counter: got %d, want 1", hits)
	}
	if ratio := s.reg.Gauge(MetricCacheHitRatio).Value(); ratio <= 0 || ratio > 1 {
		t.Errorf("hit ratio gauge: %v", ratio)
	}

	// The cached job's SSE stream still terminates with the report.
	if terminal, _, _ := readEvents(t, ts, st2.ID); terminal != "done" {
		t.Errorf("cached job stream terminal: %q", terminal)
	}

	// A different seed is a different cell: miss, new execution.
	spec := testSpec(t)
	spec.Campaign.Seed = 10
	_, st3 := submit(t, ts, spec)
	if terminal, _, _ := readEvents(t, ts, st3.ID); terminal != "done" {
		t.Fatalf("third run did not complete")
	}
	if got := executions.Load(); got != 2 {
		t.Errorf("changed seed must re-execute: executions=%d", got)
	}
}

// TestQueueBackpressure fills the queue behind a deliberately held worker
// and checks the overflow submission bounces with 429 + Retry-After.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, Options{QueueSize: 1, RetryAfter: 7 * time.Second})
	var once atomic.Bool
	s.beforeRun = func(*job) {
		if once.CompareAndSwap(false, true) {
			close(started)
			<-release
		}
	}
	defer close(release)

	specA := testSpec(t)
	if resp, _ := submit(t, ts, specA); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: %d", resp.StatusCode)
	}
	<-started // worker holds A; the queue is empty again

	specB := testSpec(t)
	specB.Campaign.Seed = 2
	if resp, _ := submit(t, ts, specB); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: %d", resp.StatusCode)
	}

	specC := testSpec(t)
	specC.Campaign.Seed = 3
	resp, _ := submit(t, ts, specC)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After: got %q, want \"7\"", ra)
	}
	if rejected := s.reg.Counter(MetricRejected).Value(); rejected != 1 {
		t.Errorf("rejected counter: got %d, want 1", rejected)
	}
	if depth := s.reg.Gauge(MetricQueueDepth).Value(); depth != 1 {
		t.Errorf("queue depth gauge: got %v, want 1", depth)
	}
}

// TestCancel covers both cancellation paths: a queued job terminates
// immediately; a running one unwinds through the campaign context.
func TestCancel(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, Options{QueueSize: 4})
	var once atomic.Bool
	s.beforeRun = func(*job) {
		if once.CompareAndSwap(false, true) {
			close(started)
			<-release
		}
	}

	_, stA := submit(t, ts, testSpec(t))
	<-started
	specB := testSpec(t)
	specB.Campaign.Seed = 2
	_, stB := submit(t, ts, specB)

	// Cancel the queued job: terminal state must land without a worker.
	resp, err := http.Post(ts.URL+"/v1/jobs/"+stB.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if terminal, _, _ := readEvents(t, ts, stB.ID); terminal != "cancelled" {
		t.Errorf("queued cancel terminal: %q", terminal)
	}

	// Cancel the running job, then release the worker: the campaign's
	// context cancellation turns it into a cancelled terminal state.
	resp, err = http.Post(ts.URL+"/v1/jobs/"+stA.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	if terminal, _, _ := readEvents(t, ts, stA.ID); terminal != "cancelled" {
		t.Errorf("running cancel terminal: %q", terminal)
	}
	cancelled := s.reg.Counter(telemetry.Label(MetricJobsTotal, "state", string(JobCancelled))).Value()
	if cancelled != 2 {
		t.Errorf("cancelled jobs counter: got %d, want 2", cancelled)
	}
}

// TestDrainPersistsCache runs a job, drains the server, then brings up a
// fresh server over the same cache directory: the resubmission must be a
// cache hit served without re-execution, with byte-identical report.
func TestDrainPersistsCache(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Options{CacheDir: dir, StreamInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	_, st := submit(t, ts1, testSpec(t))
	terminal, payload, _ := readEvents(t, ts1, st.ID)
	if terminal != "done" {
		t.Fatalf("first run: %q", terminal)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	// Draining servers refuse new work.
	var executions atomic.Int64
	s2, ts2 := newTestServer(t, Options{CacheDir: dir})
	s2.beforeRun = func(*job) { executions.Add(1) }
	resp, st2 := submit(t, ts2, testSpec(t))
	if resp.StatusCode != http.StatusOK || !st2.Cached {
		t.Fatalf("restart resubmit: status %d, %+v", resp.StatusCode, st2)
	}
	if executions.Load() != 0 {
		t.Errorf("restart cache hit re-executed the campaign")
	}
	rresp, err := http.Get(ts2.URL + "/v1/jobs/" + st2.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var restored goldeneye.CampaignReport
	if err := json.NewDecoder(rresp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	var original goldeneye.CampaignReport
	if err := json.Unmarshal(payload, &original); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(original)
	b, _ := json.Marshal(restored)
	if !bytes.Equal(a, b) {
		t.Errorf("restored report differs from original:\n%s\n%s", a, b)
	}
}

// TestSubmitRejectsDraining: a draining server answers 503.
func TestSubmitRejectsDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := submit(t, ts, testSpec(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit: got %d, want 503", resp.StatusCode)
	}
}

// TestBadSubmissions: malformed and invalid specs answer 400 with a JSON
// error, and unknown jobs 404.
func TestBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	cases := map[string]string{
		"garbage":        `{]`,
		"unknown model":  `{"model":"nope","campaign":{"format":"fp16","injections":1,"seed":1,"layer":0}}`,
		"no format":      `{"model":"mlp","campaign":{"injections":1,"seed":1,"layer":0}}`,
		"no injections":  `{"model":"mlp","campaign":{"format":"fp16","seed":1,"layer":0}}`,
		"unknown field":  `{"model":"mlp","bogus":1,"campaign":{"format":"fp16","injections":1,"seed":1,"layer":0}}`,
		"trailing data":  `{"model":"mlp","campaign":{"format":"fp16","injections":1,"seed":1,"layer":0}}{"x":1}`,
		"newer version":  `{"version":99,"model":"mlp","campaign":{"format":"fp16","injections":1,"seed":1,"layer":0}}`,
		"keep trace":     `{"model":"mlp","campaign":{"format":"fp16","injections":1,"seed":1,"layer":0,"keep_trace":true}}`,
		"oversize batch": `{"model":"mlp","samples":8,"campaign":{"format":"fp16","injections":1,"seed":1,"layer":0,"batch_size":99}}`,
	}
	for name, body := range cases {
		if resp := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: got %d, want 404", resp.StatusCode)
	}
}

// TestObservabilityEndpoints: the telemetry mux is mounted next to the job
// API and exposes the server metrics.
func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, st := submit(t, ts, testSpec(t))
	if terminal, _, _ := readEvents(t, ts, st.ID); terminal != "done" {
		t.Fatal("job did not complete")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{MetricSubmissions, MetricCacheMisses, MetricJobsTotal} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]interface{}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz: %+v", health)
	}
}

// TestDecodeCompatAcrossSchemaVersions pins the older-job-on-newer-server
// contract: specs written by v1–v3 clients predate the sampling plan and
// must keep decoding on the v4 server with strict decoding (unknown-field
// rejection) still on, while a v4 spec's plan survives a decode→re-encode
// round trip.
func TestDecodeCompatAcrossSchemaVersions(t *testing.T) {
	older := map[string]string{
		"v1 uniform":    `{"model":"mlp","campaign":{"format":"fp16","injections":4,"seed":9,"layer":1}}`,
		"v2 assignment": `{"model":"mlp","campaign":{"version":2,"assignment":{"default":{"weights":"bf16","activations":"fp8_e4m3","accumulator":"fp32"}},"site":"accum","injections":4,"seed":9,"layer":1}}`,
		"v3 sharded":    `{"model":"mlp","campaign":{"version":3,"format":"fp16","shard_index":0,"shard_count":2,"injections":4,"seed":9,"layer":1}}`,
	}
	for name, doc := range older {
		spec, err := DecodeJobSpec(strings.NewReader(doc))
		if err != nil {
			t.Errorf("%s job rejected by the v4 server: %v", name, err)
			continue
		}
		if spec.Campaign.Sampling != nil {
			t.Errorf("%s job decoded with a sampling plan it never carried", name)
		}
	}

	v4 := `{"model":"mlp","campaign":{"version":4,"format":"fp16","sampling":{"fraction":0.25,"strata":{"exponent":1},"target_ci":0.05,"check_every":32},"injections":8,"seed":9,"layer":1}}`
	spec, err := DecodeJobSpec(strings.NewReader(v4))
	if err != nil {
		t.Fatalf("v4 sampled job rejected: %v", err)
	}
	plan := spec.Campaign.Sampling
	if plan == nil {
		t.Fatal("v4 sampled job decoded without its sampling plan")
	}
	if plan.Fraction != 0.25 || plan.TargetCI != 0.05 || plan.CheckEvery != 32 || plan.Strata["exponent"] != 1 {
		t.Fatalf("sampling plan mangled in decode: %+v", plan)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"version":4`, `"sampling"`, `"target_ci":0.05`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("re-encoded v4 spec missing %s: %s", want, data)
		}
	}
}

// FuzzJobConfigDecode pins the submission decoder's no-panic guarantee:
// whatever bytes arrive, DecodeJobSpec returns a value or an error, never
// a panic that could take down the daemon.
func FuzzJobConfigDecode(f *testing.F) {
	f.Add([]byte(`{"model":"mlp","campaign":{"format":"fp16","injections":4,"seed":9,"layer":1}}`))
	f.Add([]byte(`{"model":"mlp","samples":-1}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"model":"mlp","campaign":{"format":"bfp_e5m5_b0","fault_kind":"burst","detectors":[{"kind":"ranger"}],"recovery":"clamp","injections":1,"seed":1,"layer":-1}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"format":"fp_e0m0","injections":1,"seed":1,"layer":0}}`))
	f.Add([]byte(fmt.Sprintf(`{"model":"mlp","campaign":{"format":%q,"injections":1,"seed":1,"layer":0}}`, strings.Repeat("f", 1000))))
	// Schema v2 documents: per-layer assignments and the accum site, plus
	// strict-decoding and validation edge cases (unknown v2 field, metadata-
	// carrying accumulator format, malformed per-layer key).
	f.Add([]byte(`{"model":"mlp","campaign":{"version":2,"assignment":{"default":{"weights":"bf16","activations":"fp8_e4m3","accumulator":"fp32"}},"site":"accum","injections":4,"seed":9,"layer":1}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":2,"assignment":{"default":{"activations":"fp16"},"per_layer":{"1":{"accumulator":"fp16"}}},"injections":4,"seed":9,"layer":1}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":2,"assignment":{"default":{"accumulator":"bfp_e5m5_b0"}},"injections":1,"seed":1,"layer":0}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":2,"assignment":{"default":{"activations":"fp16"}},"bogus_field":1,"injections":1,"seed":1,"layer":0}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":2,"assignment":{"per_layer":{"x":{"weights":"fp16"}}},"injections":1,"seed":1,"layer":0}}`))
	// Schema v4 documents: sampling plans — plain fraction, per-stratum
	// overrides with pruning and sequential stopping, and validation edge
	// cases (fraction out of range, negative CI target, unknown field).
	f.Add([]byte(`{"model":"mlp","campaign":{"version":4,"format":"fp16","sampling":{"fraction":0.25},"injections":8,"seed":9,"layer":1}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":4,"format":"fp8_e4m3","use_ranger":true,"sampling":{"fraction":1,"strata":{"exponent":1,"mantissa":0.05},"prune":true,"target_ci":0.02,"check_every":128},"injections":8,"seed":9,"layer":1}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":4,"format":"fp16","sampling":{"fraction":0},"injections":1,"seed":1,"layer":0}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":4,"format":"fp16","sampling":{"fraction":0.5,"target_ci":-1},"injections":1,"seed":1,"layer":0}}`))
	f.Add([]byte(`{"model":"mlp","campaign":{"version":4,"format":"fp16","sampling":{"fraction":0.5,"bogus":1},"injections":1,"seed":1,"layer":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(bytes.NewReader(data))
		if err == nil && spec == nil {
			t.Fatal("nil spec without error")
		}
		if err == nil {
			// Whatever decoded must re-validate and re-encode cleanly: the
			// server marshals accepted specs back out (status, cache cells).
			if verr := spec.Validate(); verr != nil {
				t.Fatalf("decoded spec fails re-validation: %v", verr)
			}
			if _, merr := json.Marshal(spec); merr != nil {
				t.Fatalf("decoded spec fails re-encoding: %v", merr)
			}
		}
	})
}
