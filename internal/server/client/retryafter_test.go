package client

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterHint pins both Retry-After forms RFC 9110 §10.2.3 allows
// (delay-seconds and HTTP-date) plus the garbage inputs that must fall
// back to generic backoff by returning 0.
func TestRetryAfterHint(t *testing.T) {
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name   string
		header string
		min    time.Duration // inclusive lower bound on the hint
		max    time.Duration // inclusive upper bound on the hint
	}{
		{"absent", "", 0, 0},
		{"seconds", "7", 7 * time.Second, 7 * time.Second},
		{"seconds with whitespace", "  3 ", 3 * time.Second, 3 * time.Second},
		{"zero seconds", "0", 0, 0},
		{"negative seconds", "-5", 0, 0},
		{"http date in the future", httpDate(90 * time.Second), 80 * time.Second, 90 * time.Second},
		{"http date in the past", httpDate(-time.Minute), 0, 0},
		{"rfc850 date in the future", time.Now().Add(time.Hour).UTC().Format(time.RFC850), 59 * time.Minute, time.Hour},
		{"asctime date in the future", time.Now().Add(time.Hour).UTC().Format(time.ANSIC), 59 * time.Minute, time.Hour},
		{"garbage", "soon", 0, 0},
		{"fractional seconds", "2.5", 0, 0},
		{"trailing junk", "7 seconds", 0, 0},
		{"malformed date", "Fri, 99 Zed 2099 99:99:99 GMT", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tc.header != "" {
				resp.Header.Set("Retry-After", tc.header)
			}
			got := retryAfterHint(resp)
			if got < tc.min || got > tc.max {
				t.Fatalf("retryAfterHint(%q) = %v, want in [%v, %v]", tc.header, got, tc.min, tc.max)
			}
		})
	}
}

// TestRetryAfterHintDateIsLive guards against caching the date conversion:
// two probes of the same future-dated header must both land under the
// original delay, and a later probe strictly under an earlier one.
func TestRetryAfterHintDateIsLive(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
	first := retryAfterHint(resp)
	if first <= 0 || first > 10*time.Second {
		t.Fatalf("first hint %v outside (0, 10s]", first)
	}
	time.Sleep(20 * time.Millisecond)
	second := retryAfterHint(resp)
	if second >= first {
		t.Fatalf("hint did not shrink as the date approached: %v then %v", first, second)
	}
}
