// Package client is the typed Go client for the GoldenEye campaign
// service (internal/server). It submits jobs, follows their SSE progress
// streams, and decodes completed CampaignReports — which arrive
// bit-identical to a local run with the same seed and worker count, since
// the wire encodings round-trip the Welford accumulators exactly.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"goldeneye"
	"goldeneye/internal/server"
)

// QueueFullError reports a submission rejected with 429 because the
// daemon's job queue is full; RetryAfter carries the server's backoff
// hint.
type QueueFullError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("%s (retry after %s)", e.Message, e.RetryAfter)
}

// APIError is a non-2xx response other than queue rejection.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("campaign service: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Client talks to one campaign daemon.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (e.g.
// "http://localhost:7726"). The underlying http.Client carries no timeout:
// SSE streams stay open for the life of a job, so deadlines belong on the
// caller's context.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Submit posts a job and returns its accepted status. A full queue comes
// back as *QueueFullError; invalid specs as *APIError with the daemon's
// 400 reason. When the daemon answers from its result cache, the returned
// status is already terminal (State done, Cached true).
func (c *Client) Submit(ctx context.Context, spec *server.JobSpec) (*server.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := 2 * time.Second
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return nil, &QueueFullError{RetryAfter: retry, Message: errorMessage(resp)}
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("client: decode submit response: %w", err)
	}
	return &st, nil
}

// Job fetches one job's current status.
func (c *Client) Job(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Report fetches a completed job's campaign report.
func (c *Client) Report(ctx context.Context, id string) (*goldeneye.CampaignReport, error) {
	var rep goldeneye.CampaignReport
	if err := c.getJSON(ctx, "/v1/jobs/"+id+"/report", &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs/"+id+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	return nil
}

// Stream follows a job's SSE progress stream until it is terminal. Every
// progress snapshot is handed to onProgress (may be nil); the returned
// report is non-nil exactly when the job completed (the "done" event
// carries the full report, so no extra round trip happens). A failed job
// returns an *APIError with the daemon's failure reason; a cancelled job
// returns ErrCancelled.
func (c *Client) Stream(ctx context.Context, id string, onProgress func(server.JobStatus)) (*goldeneye.CampaignReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}

	sc := newEventScanner(resp.Body)
	for {
		event, data, err := sc.next()
		if err == io.EOF {
			return nil, fmt.Errorf("client: event stream ended without a terminal event")
		}
		if err != nil {
			return nil, err
		}
		switch event {
		case "progress":
			if onProgress != nil {
				var st server.JobStatus
				if json.Unmarshal(data, &st) == nil {
					onProgress(st)
				}
			}
		case "done":
			var rep goldeneye.CampaignReport
			if err := json.Unmarshal(data, &rep); err != nil {
				return nil, fmt.Errorf("client: decode report: %w", err)
			}
			return &rep, nil
		case "failed":
			var st server.JobStatus
			msg := string(data)
			if json.Unmarshal(data, &st) == nil && st.Error != "" {
				msg = st.Error
			}
			return nil, &APIError{StatusCode: http.StatusInternalServerError, Message: msg}
		case "cancelled":
			return nil, ErrCancelled
		}
	}
}

// ErrCancelled reports a streamed job that terminated by cancellation.
var ErrCancelled = fmt.Errorf("client: job cancelled")

// Run submits a job and follows it to completion, returning the final
// report. Cache hits return immediately without opening a stream.
func (c *Client) Run(ctx context.Context, spec *server.JobSpec, onProgress func(server.JobStatus)) (*goldeneye.CampaignReport, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if st.State == server.JobDone {
		return c.Report(ctx, st.ID)
	}
	return c.Stream(ctx, st.ID, onProgress)
}

func (c *Client) getJSON(ctx context.Context, path string, v interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// errorMessage extracts the daemon's {"error": ...} payload, falling back
// to the raw body.
func errorMessage(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// eventScanner parses SSE frames: "event:"/"data:" field lines separated
// by blank-line dispatch, per the WHATWG EventSource framing.
type eventScanner struct {
	r *bufio.Reader
}

func newEventScanner(r io.Reader) *eventScanner {
	return &eventScanner{r: bufio.NewReader(r)}
}

// next returns the following complete event. Multi-line data fields are
// joined with newlines; comment lines (leading ':') are skipped.
func (s *eventScanner) next() (event string, data []byte, err error) {
	var dataLines [][]byte
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event != "" || len(dataLines) > 0 {
				return event, bytes.Join(dataLines, []byte("\n")), nil
			}
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			dataLines = append(dataLines, []byte(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")))
		}
	}
}
