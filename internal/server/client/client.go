// Package client is the typed Go client for the GoldenEye campaign
// service (internal/server). It submits jobs, follows their SSE progress
// streams, and decodes completed CampaignReports — which arrive
// bit-identical to a local run with the same seed and worker count, since
// the wire encodings round-trip the Welford accumulators exactly.
//
// The client is fault-tolerant by default: submissions carry a generated
// Idempotency-Key and are retried with jittered exponential backoff
// across transport failures, queue rejections (429, honoring the
// daemon's Retry-After hint), and transient 5xx responses — the key
// guarantees a retried submit never double-runs a campaign. Progress
// streams reconnect after drops and resume via Last-Event-ID, so a
// daemon restart mid-campaign is invisible to Run callers as long as the
// daemon keeps a write-ahead journal.
package client

import (
	"bufio"
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"goldeneye"
	"goldeneye/internal/server"
	"goldeneye/internal/telemetry"
)

// Client-side metric names, registered in the Options.Registry (see
// internal/telemetry/README.md for the inventory).
const (
	// MetricRetries counts retried requests, labeled op="submit|get|cancel"
	// for JSON endpoints and op="stream" for SSE reconnects.
	MetricRetries = "goldeneye_client_retries_total"

	// MetricSSEResumes counts stream reconnects that carried a
	// Last-Event-ID (i.e. resumed mid-stream rather than starting fresh).
	MetricSSEResumes = "goldeneye_client_sse_resumes_total"
)

// Options configures a Client's timeouts and retry policy. The zero value
// gets sensible defaults from New.
type Options struct {
	// RequestTimeout bounds each attempt of the JSON endpoints (submit,
	// status, report, cancel, health). It does not apply to the SSE
	// stream, which stays open for the life of a job and is guarded by
	// StreamIdleTimeout instead. Default 15s.
	RequestTimeout time.Duration

	// StreamIdleTimeout is the SSE watchdog: if no bytes (events or the
	// daemon's comment heartbeats) arrive for this long, the stream is
	// closed and reconnected. It must exceed the daemon's StreamKeepAlive
	// or healthy idle streams get cycled. Default 45s; negative disables.
	StreamIdleTimeout time.Duration

	// MaxAttempts bounds the total tries per logical call (first attempt
	// plus retries), and the consecutive failed reconnects a stream
	// tolerates before giving up. Default 5.
	MaxAttempts int

	// BaseBackoff and MaxBackoff shape the jittered exponential backoff
	// between retries (defaults 200ms and 5s). A 429's Retry-After hint
	// overrides the computed backoff for that wait.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Registry receives the client metrics (nil = a fresh registry).
	Registry *telemetry.Registry

	// Transport overrides the HTTP transport (nil = http.DefaultTransport).
	// Test seam: internal/chaos injects transport faults through it.
	Transport http.RoundTripper
}

func (o *Options) withDefaults() {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 15 * time.Second
	}
	if o.StreamIdleTimeout == 0 {
		o.StreamIdleTimeout = 45 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
}

// QueueFullError reports a submission still rejected with 429 after the
// client exhausted its retries; RetryAfter carries the server's backoff
// hint.
type QueueFullError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("%s (retry after %s)", e.Message, e.RetryAfter)
}

// APIError is a non-2xx response other than queue rejection.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("campaign service: %s (HTTP %d)", e.Message, e.StatusCode)
}

// NotReadyError reports a daemon answering 503 on /readyz (draining, or
// its write-ahead journal went unwritable).
type NotReadyError struct {
	Reason string
}

func (e *NotReadyError) Error() string {
	return fmt.Sprintf("campaign service not ready: %s", e.Reason)
}

// ErrCancelled reports a streamed job that terminated by cancellation.
var ErrCancelled = errors.New("client: job cancelled")

// Client talks to one campaign daemon.
type Client struct {
	base string
	opts Options
	hc   *http.Client // JSON endpoints: per-attempt RequestTimeout
	sc   *http.Client // SSE stream: no timeout, guarded by the idle watchdog
	reg  *telemetry.Registry
}

// New returns a client for the daemon at base (e.g.
// "http://localhost:7726") with default timeouts and retry policy.
func New(base string) *Client {
	return NewWithOptions(base, Options{})
}

// NewWithOptions returns a client with an explicit timeout/retry policy.
func NewWithOptions(base string, opts Options) *Client {
	opts.withDefaults()
	return &Client{
		base: strings.TrimRight(base, "/"),
		opts: opts,
		hc:   &http.Client{Timeout: opts.RequestTimeout, Transport: opts.Transport},
		sc:   &http.Client{Transport: opts.Transport},
		reg:  opts.Registry,
	}
}

// Registry exposes the client's telemetry registry (retry and stream-
// resume counters).
func (c *Client) Registry() *telemetry.Registry { return c.reg }

// NewIdempotencyKey generates a fresh submission key: 128 random bits,
// hex-encoded. Submit calls it automatically; use it directly only when
// the same logical submission must survive across client processes.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal everywhere else too;
		// fall back to a time-free math/rand key rather than panicking.
		for i := range b {
			b[i] = byte(rand.Intn(256))
		}
	}
	return "ge-" + hex.EncodeToString(b[:])
}

// Submit posts a job and returns its accepted status, retrying transport
// failures, queue rejections, and transient 5xx responses under a
// generated Idempotency-Key — the daemon deduplicates, so a retry whose
// predecessor actually landed returns the original job instead of
// double-running the campaign. A queue still full after all retries
// comes back as *QueueFullError; invalid specs as *APIError with the
// daemon's 400 reason. When the daemon answers from its result cache,
// the returned status is already terminal (State done, Cached true).
func (c *Client) Submit(ctx context.Context, spec *server.JobSpec) (*server.JobStatus, error) {
	return c.SubmitWithKey(ctx, spec, NewIdempotencyKey())
}

// SubmitWithKey is Submit with a caller-supplied Idempotency-Key (""
// submits without one, disabling dedup but keeping the retry loop).
func (c *Client) SubmitWithKey(ctx context.Context, spec *server.JobSpec, key string) (*server.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.withRetry(ctx, "submit", func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
		if rerr != nil {
			return nil, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		return c.hc.Do(req)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("client: decode submit response: %w", err)
	}
	return &st, nil
}

// Job fetches one job's current status.
func (c *Client) Job(ctx context.Context, id string) (*server.JobStatus, error) {
	var st server.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Report fetches a completed job's campaign report.
func (c *Client) Report(ctx context.Context, id string) (*goldeneye.CampaignReport, error) {
	var rep goldeneye.CampaignReport
	if err := c.getJSON(ctx, "/v1/jobs/"+id+"/report", &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Cancel requests cancellation of a queued or running job. Cancellation
// is idempotent server-side, so retried cancels are safe.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.withRetry(ctx, "cancel", func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs/"+id+"/cancel", nil)
		if rerr != nil {
			return nil, rerr
		}
		return c.hc.Do(req)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	return nil
}

// Health is the daemon's /healthz liveness snapshot.
type Health struct {
	Status       string `json:"status"`
	Jobs         int    `json:"jobs"`
	QueueDepth   int    `json:"queue_depth"`
	JobsInflight int    `json:"jobs_inflight"`
}

// Health fetches the daemon's liveness snapshot. It does not retry: a
// health probe's job is to report failures, not to paper over them.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("client: decode health: %w", err)
	}
	return &h, nil
}

// Ready probes /readyz: nil when the daemon accepts new jobs, a
// *NotReadyError carrying the daemon's reason when it answers 503
// (draining, or its journal went unwritable). Like Health, it does not
// retry.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusServiceUnavailable:
		var body struct {
			Reason string `json:"reason"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(raw, &body) != nil || body.Reason == "" {
			body.Reason = strings.TrimSpace(string(raw))
		}
		return &NotReadyError{Reason: body.Reason}
	default:
		return &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
}

// Stream follows a job's SSE progress stream until it is terminal,
// transparently reconnecting after drops and stalls: every frame's event
// id (the job's monotonic progress sequence) is remembered and replayed
// as Last-Event-ID on reconnect, so the daemon suppresses snapshots the
// client already saw and a resumed stream picks up exactly where it
// left off — including across a daemon crash and journal-replay restart.
// Every progress snapshot is handed to onProgress (may be nil); the
// returned report is non-nil exactly when the job completed (the "done"
// event carries the full report, so no extra round trip happens). A
// failed job returns an *APIError with the daemon's failure reason; a
// cancelled job returns ErrCancelled.
func (c *Client) Stream(ctx context.Context, id string, onProgress func(server.JobStatus)) (*goldeneye.CampaignReport, error) {
	lastID := int64(-1)
	failures := 0
	for {
		rep, err := c.streamOnce(ctx, id, &lastID, &failures, onProgress)
		if err == nil {
			return rep, nil
		}
		var retry *streamRetryError
		if !errors.As(err, &retry) || ctx.Err() != nil {
			return nil, err
		}
		// failures counts consecutive fruitless connections; streamOnce
		// zeroes it whenever a frame arrives, so a long campaign survives
		// any number of occasional drops.
		failures++
		if failures >= c.opts.MaxAttempts {
			return nil, fmt.Errorf("client: stream for %s did not recover after %d attempts: %w",
				id, failures, retry.err)
		}
		c.countRetry("stream")
		if serr := sleepCtx(ctx, c.backoff(failures-1)); serr != nil {
			return nil, err
		}
	}
}

// streamRetryError wraps stream interruptions the reconnect loop should
// absorb: transport errors, mid-stream disconnects, idle-watchdog
// closes, and retryable HTTP statuses on reconnect.
type streamRetryError struct {
	err error
}

func (e *streamRetryError) Error() string {
	return fmt.Sprintf("client: stream interrupted: %v", e.err)
}
func (e *streamRetryError) Unwrap() error { return e.err }

// streamOnce runs one SSE connection until a terminal event, an error,
// or an interruption (returned as *streamRetryError for the caller's
// reconnect loop).
func (c *Client) streamOnce(ctx context.Context, id string, lastID *int64, failures *int, onProgress func(server.JobStatus)) (*goldeneye.CampaignReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(*lastID, 10))
		c.reg.Counter(MetricSSEResumes).Inc()
	}
	resp, err := c.sc.Do(req)
	if err != nil {
		return nil, &streamRetryError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
		if retryableStatus(resp.StatusCode) {
			return nil, &streamRetryError{err: apiErr}
		}
		return nil, apiErr
	}

	var body io.Reader = resp.Body
	if c.opts.StreamIdleTimeout > 0 {
		ib := newIdleBody(resp.Body, c.opts.StreamIdleTimeout)
		defer ib.Close()
		body = ib
	}
	sc := newEventScanner(body)
	for {
		ev, err := sc.next()
		if err != nil {
			// EOF before a terminal event, a dropped connection, or the
			// idle watchdog closing a stalled stream: all reconnectable.
			return nil, &streamRetryError{err: err}
		}
		*failures = 0
		if ev.id != "" {
			if v, perr := strconv.ParseInt(ev.id, 10, 64); perr == nil && v > *lastID {
				*lastID = v
			}
		}
		switch ev.name {
		case "progress":
			if onProgress != nil {
				var st server.JobStatus
				if json.Unmarshal(ev.data, &st) == nil {
					onProgress(st)
				}
			}
		case "done":
			var rep goldeneye.CampaignReport
			if err := json.Unmarshal(ev.data, &rep); err != nil {
				return nil, fmt.Errorf("client: decode report: %w", err)
			}
			return &rep, nil
		case "failed":
			var st server.JobStatus
			msg := string(ev.data)
			if json.Unmarshal(ev.data, &st) == nil && st.Error != "" {
				msg = st.Error
			}
			return nil, &APIError{StatusCode: http.StatusInternalServerError, Message: msg}
		case "cancelled":
			return nil, ErrCancelled
		}
	}
}

// Run submits a job and follows it to completion, returning the final
// report. Cache hits return immediately without opening a stream.
func (c *Client) Run(ctx context.Context, spec *server.JobSpec, onProgress func(server.JobStatus)) (*goldeneye.CampaignReport, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if st.State == server.JobDone {
		return c.Report(ctx, st.ID)
	}
	return c.Stream(ctx, st.ID, onProgress)
}

// withRetry runs fn (which must build a fresh request per call) until it
// returns a response with a non-retryable status, retries are exhausted,
// or ctx ends. Retryable means a transport error or a 429/502/503/504
// status; the caller classifies whatever status comes back.
func (c *Client) withRetry(ctx context.Context, op string, fn func() (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := fn()
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		wait := c.backoff(attempt)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
		} else {
			msg := errorMessage(resp)
			if resp.StatusCode == http.StatusTooManyRequests {
				retry := 2 * time.Second
				if ra := retryAfterHint(resp); ra > 0 {
					retry = ra
					wait = ra
				}
				lastErr = &QueueFullError{RetryAfter: retry, Message: msg}
			} else {
				lastErr = &APIError{StatusCode: resp.StatusCode, Message: msg}
			}
			resp.Body.Close()
		}
		if attempt+1 >= c.opts.MaxAttempts {
			return nil, lastErr
		}
		c.countRetry(op)
		if serr := sleepCtx(ctx, wait); serr != nil {
			return nil, lastErr
		}
	}
}

// retryableStatus: 429 means the queue will drain, 502/503/504 mean the
// daemon (or something in front of it) is briefly gone — a restarting
// daemon with a journal comes back holding the same jobs.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterHint parses a Retry-After header in either form RFC 9110
// §10.2.3 allows: delay-seconds ("120"), or an HTTP-date ("Fri, 08 Aug
// 2026 14:00:00 GMT") converted to the delay from now. Returns 0 — fall
// back to generic backoff — when the header is absent, unparseable, zero,
// negative, or a date already in the past.
func retryAfterHint(resp *http.Response) time.Duration {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	// http.ParseTime accepts all three HTTP-date layouts (IMF-fixdate,
	// RFC 850, asctime).
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the jittered exponential delay before retry number
// attempt+1. Full jitter across [d/2, d] decorrelates retry herds: a
// burst of rejected clients must not re-land on the daemon in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff
	for i := 0; i < attempt && d < c.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

func (c *Client) countRetry(op string) {
	c.reg.Counter(telemetry.Label(MetricRetries, "op", op)).Inc()
}

// sleepCtx waits d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) getJSON(ctx context.Context, path string, v interface{}) error {
	resp, err := c.withRetry(ctx, "get", func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if rerr != nil {
			return nil, rerr
		}
		return c.hc.Do(req)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: errorMessage(resp)}
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// errorMessage extracts the daemon's {"error": ...} payload, falling back
// to the raw body.
func errorMessage(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// idleBody is the SSE idle watchdog: it closes the underlying response
// body when no bytes arrive for d, forcing the blocked Read to fail so
// the reconnect loop takes over. The daemon's comment heartbeats reset
// it, so only a genuinely stalled connection trips.
type idleBody struct {
	rc    io.ReadCloser
	d     time.Duration
	timer *time.Timer
}

func newIdleBody(rc io.ReadCloser, d time.Duration) *idleBody {
	b := &idleBody{rc: rc, d: d}
	b.timer = time.AfterFunc(d, func() { rc.Close() })
	return b
}

func (b *idleBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if err == nil {
		b.timer.Reset(b.d)
	}
	return n, err
}

func (b *idleBody) Close() error {
	b.timer.Stop()
	return b.rc.Close()
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	id   string
	data []byte
}

// eventScanner parses SSE frames: "event:"/"id:"/"data:" field lines
// separated by blank-line dispatch, per the WHATWG EventSource framing.
type eventScanner struct {
	r *bufio.Reader
}

func newEventScanner(r io.Reader) *eventScanner {
	return &eventScanner{r: bufio.NewReader(r)}
}

// next returns the following complete event. Multi-line data fields are
// joined with newlines; comment lines (leading ':') are skipped.
func (s *eventScanner) next() (sseEvent, error) {
	var ev sseEvent
	var dataLines [][]byte
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			return sseEvent{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if ev.name != "" || len(dataLines) > 0 {
				ev.data = bytes.Join(dataLines, []byte("\n"))
				return ev, nil
			}
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		case strings.HasPrefix(line, "event:"):
			ev.name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			ev.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			dataLines = append(dataLines, []byte(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")))
		}
	}
}
