package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/sampling"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
	"goldeneye/internal/zoo"
)

func startDaemon(t *testing.T, opts server.Options) (*server.Server, *client.Client) {
	t.Helper()
	if opts.StreamInterval == 0 {
		opts.StreamInterval = 10 * time.Millisecond
	}
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, client.New(ts.URL)
}

// TestRemoteEqualsLocal is the service's core guarantee: a job submitted
// through the client against a live daemon produces a CampaignReport
// bit-identical to calling RunCampaignParallel directly with the same
// seed and worker count — including detector outcomes — because both
// sides derive the pool deterministically and the wire encodings
// round-trip the Welford accumulators exactly.
func TestRemoteEqualsLocal(t *testing.T) {
	f, err := goldeneye.ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	detectors, err := goldeneye.ParseDetectors("ranger,sentinel")
	if err != nil {
		t.Fatal(err)
	}
	recovery, err := goldeneye.ParseRecovery("clamp")
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 2
		samples   = 16
		evalBatch = 8
	)
	cfg := goldeneye.CampaignConfig{
		Format:     f,
		Injections: 6,
		Seed:       11,
		Layer:      1,
		Site:       inject.SiteValue,
		Target:     inject.TargetNeuron,
		Detectors:  detectors,
		Recovery:   recovery,
	}

	// Local reference run.
	localCfg := cfg
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, samples), ds.ValY[:samples], evalBatch)
	if err != nil {
		t.Fatal(err)
	}
	localCfg.Pool = pool
	sim, err := goldeneye.NewSimulator(model, ds.ValX.Slice(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	first := sim
	local, err := goldeneye.RunCampaignParallel(context.Background(), localCfg, workers,
		func() (*goldeneye.Simulator, error) {
			if s := first; s != nil {
				first = nil
				return s, nil
			}
			m, d, err := zoo.Pretrained("mlp")
			if err != nil {
				return nil, err
			}
			return goldeneye.NewSimulator(m, d.ValX.Slice(0, 1))
		})
	if err != nil {
		t.Fatal(err)
	}

	// Remote run through the full client → HTTP → daemon → SSE path.
	_, c := startDaemon(t, server.Options{})
	var sawProgress bool
	remote, err := c.Run(context.Background(), &server.JobSpec{
		Model:     "mlp",
		Samples:   samples,
		EvalBatch: evalBatch,
		Workers:   workers,
		Campaign:  cfg,
	}, func(server.JobStatus) { sawProgress = true })
	if err != nil {
		t.Fatal(err)
	}
	if !sawProgress {
		t.Error("stream delivered no progress snapshots")
	}

	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Errorf("remote report differs from local:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}
	if remote.Detected != local.Detected || remote.Recovered != local.Recovered {
		t.Errorf("detector outcomes differ: remote %d/%d, local %d/%d",
			remote.Detected, remote.Recovered, local.Detected, local.Recovered)
	}
	for kind, want := range local.PerDetector {
		if got := remote.PerDetector[kind]; got != want {
			t.Errorf("detector %s: remote %+v, local %+v", kind, got, want)
		}
	}
}

// TestRemoteEqualsLocalAccum extends the remote-vs-local guarantee to the
// v2 surface: a mixed-precision assignment with accumulator-site injection
// travels the wire (schema v2), runs on the daemon, and the report is
// bit-identical to the same campaign run locally.
func TestRemoteEqualsLocalAccum(t *testing.T) {
	asg, err := goldeneye.ParseFormatMap("w:bf16,a:fp8_e4m3,acc:fp32")
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 2
		samples   = 16
		evalBatch = 8
	)
	cfg := goldeneye.CampaignConfig{
		Assignment: asg,
		Injections: 8,
		Seed:       23,
		Layer:      1,
		Site:       inject.SiteAccum,
		Target:     inject.TargetNeuron,
		BatchSize:  4,
	}

	localCfg := cfg
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, samples), ds.ValY[:samples], evalBatch)
	if err != nil {
		t.Fatal(err)
	}
	localCfg.Pool = pool
	sim, err := goldeneye.NewSimulator(model, ds.ValX.Slice(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	first := sim
	local, err := goldeneye.RunCampaignParallel(context.Background(), localCfg, workers,
		func() (*goldeneye.Simulator, error) {
			if s := first; s != nil {
				first = nil
				return s, nil
			}
			m, d, err := zoo.Pretrained("mlp")
			if err != nil {
				return nil, err
			}
			return goldeneye.NewSimulator(m, d.ValX.Slice(0, 1))
		})
	if err != nil {
		t.Fatal(err)
	}

	_, c := startDaemon(t, server.Options{})
	remote, err := c.Run(context.Background(), &server.JobSpec{
		Model:     "mlp",
		Samples:   samples,
		EvalBatch: evalBatch,
		Workers:   workers,
		Campaign:  cfg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Errorf("remote accum report differs from local:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}
	if remote.Config.Assignment == nil ||
		remote.Config.Assignment.Canonical() != asg.Canonical() {
		t.Errorf("assignment did not round-trip through the daemon: %+v", remote.Config.Assignment)
	}
}

// TestRemoteEqualsLocalSampled extends the remote-vs-local guarantee to
// the v4 surface: an active sampling plan (full fraction with a stratum
// override, so the estimator runs but every index executes) travels the
// wire as schema v4, runs on the daemon, and the report — per-stratum
// moments, CI and all — is bit-identical to the same campaign run locally.
func TestRemoteEqualsLocalSampled(t *testing.T) {
	f, err := goldeneye.ParseFormat("fp8_e4m3")
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 2
		samples   = 16
		evalBatch = 8
	)
	cfg := goldeneye.CampaignConfig{
		Format:     f,
		Injections: 10,
		Seed:       31,
		Layer:      1,
		Site:       inject.SiteValue,
		Target:     inject.TargetNeuron,
		Sampling:   &sampling.Plan{Fraction: 0.5, Strata: map[string]float64{"sign": 1}},
	}

	localCfg := cfg
	model, ds, err := zoo.Pretrained("mlp")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, samples), ds.ValY[:samples], evalBatch)
	if err != nil {
		t.Fatal(err)
	}
	localCfg.Pool = pool
	sim, err := goldeneye.NewSimulator(model, ds.ValX.Slice(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	first := sim
	local, err := goldeneye.RunCampaignParallel(context.Background(), localCfg, workers,
		func() (*goldeneye.Simulator, error) {
			if s := first; s != nil {
				first = nil
				return s, nil
			}
			m, d, err := zoo.Pretrained("mlp")
			if err != nil {
				return nil, err
			}
			return goldeneye.NewSimulator(m, d.ValX.Slice(0, 1))
		})
	if err != nil {
		t.Fatal(err)
	}
	if local.Sampling == nil {
		t.Fatal("local sampled campaign carries no estimator report")
	}

	_, c := startDaemon(t, server.Options{})
	remote, err := c.Run(context.Background(), &server.JobSpec{
		Model:     "mlp",
		Samples:   samples,
		EvalBatch: evalBatch,
		Workers:   workers,
		Campaign:  cfg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Errorf("remote sampled report differs from local:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}
	if remote.Sampling == nil {
		t.Fatal("estimator report did not round-trip through the daemon")
	}
	if got, want := remote.Sampling.SDCRate(), local.Sampling.SDCRate(); got != want {
		t.Errorf("SDC estimate drifted over the wire: remote %v, local %v", got, want)
	}
}

// TestClientErrors covers the typed error paths: queue rejection carries
// the Retry-After hint, invalid specs surface the daemon's 400 reason.
func TestClientErrors(t *testing.T) {
	srv, c := startDaemon(t, server.Options{QueueSize: 1, RetryAfter: 3 * time.Second})
	_ = srv

	f, _ := goldeneye.ParseFormat("fp16")
	bad := &server.JobSpec{Model: "nope", Campaign: goldeneye.CampaignConfig{Format: f, Injections: 1}}
	_, err := c.Submit(context.Background(), bad)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("unknown model: want 400 APIError, got %v", err)
	}

	_, err = c.Job(context.Background(), "job-424242")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("unknown job: want 404 APIError, got %v", err)
	}
}
