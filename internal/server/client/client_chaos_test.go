package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/chaos"
	"goldeneye/internal/server"
	"goldeneye/internal/server/client"
	"goldeneye/internal/telemetry"
)

// startDaemonRaw is startDaemon without a canned client: chaos tests build
// their own clients with injected transports or proxies in between.
func startDaemonRaw(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	if opts.StreamInterval == 0 {
		opts.StreamInterval = 5 * time.Millisecond
	}
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts.URL
}

func chaosSpec(t *testing.T, seed uint64, injections int) *server.JobSpec {
	t.Helper()
	f, err := goldeneye.ParseFormat("fp16")
	if err != nil {
		t.Fatal(err)
	}
	return &server.JobSpec{
		Model:     "mlp",
		Samples:   16,
		EvalBatch: 8,
		Campaign: goldeneye.CampaignConfig{
			Format:     f,
			Injections: injections,
			Seed:       seed,
			Layer:      1,
		},
	}
}

// TestSubmitRetriesTransportFailures: injected connection failures on the
// first attempts are absorbed by the retry loop and the job still runs
// exactly once.
func TestSubmitRetriesTransportFailures(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, url := startDaemonRaw(t, server.Options{Registry: reg})
	ft := chaos.Flaky(2)
	c := client.NewWithOptions(url, client.Options{
		Transport:   ft,
		BaseBackoff: 5 * time.Millisecond,
		MaxAttempts: 5,
	})

	rep, err := c.Run(context.Background(), chaosSpec(t, 31, 4), nil)
	if err != nil {
		t.Fatalf("run through flaky transport: %v", err)
	}
	if rep.Injections != 4 {
		t.Errorf("report injections: %d", rep.Injections)
	}
	if ft.Failed() != 2 {
		t.Errorf("injected failures consumed: %d, want 2", ft.Failed())
	}
	retries := c.Registry().Counter(telemetry.Label(client.MetricRetries, "op", "submit")).Value()
	if retries != 2 {
		t.Errorf("submit retries counted: %d, want 2", retries)
	}
	done := reg.Counter(telemetry.Label(server.MetricJobsTotal, "state", "done")).Value()
	if done != 1 {
		t.Errorf("jobs executed: %d, want 1", done)
	}
}

// TestIdempotentRetrySingleRun: two submissions under one key — the shape
// of a retry whose first attempt actually landed — produce one job and one
// execution, observed end to end through the client.
func TestIdempotentRetrySingleRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, url := startDaemonRaw(t, server.Options{Registry: reg})
	c := client.NewWithOptions(url, client.Options{BaseBackoff: 5 * time.Millisecond})

	key := client.NewIdempotencyKey()
	spec := chaosSpec(t, 32, 4)
	stA, err := c.SubmitWithKey(context.Background(), spec, key)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := c.SubmitWithKey(context.Background(), spec, key)
	if err != nil {
		t.Fatal(err)
	}
	if stA.ID != stB.ID {
		t.Fatalf("idempotent resubmit created a new job: %s vs %s", stA.ID, stB.ID)
	}
	if _, err := c.Stream(context.Background(), stA.ID, nil); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(server.MetricIdempotentHits).Value(); hits != 1 {
		t.Errorf("idempotent hits: %d, want 1", hits)
	}
	if done := reg.Counter(telemetry.Label(server.MetricJobsTotal, "state", "done")).Value(); done != 1 {
		t.Errorf("jobs executed: %d, want 1", done)
	}
}

// TestStreamResumesAfterDrop: the SSE stream survives its connection being
// severed mid-campaign — the client reconnects with Last-Event-ID and the
// final report matches a direct fetch byte for byte.
func TestStreamResumesAfterDrop(t *testing.T) {
	_, url := startDaemonRaw(t, server.Options{})
	p, err := chaos.NewProxy(strings.TrimPrefix(url, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := client.NewWithOptions(p.URL(), client.Options{
		BaseBackoff: 10 * time.Millisecond,
		MaxAttempts: 8,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, chaosSpec(t, 33, 800))
	if err != nil {
		t.Fatal(err)
	}

	var dropped atomic.Bool
	rep, err := c.Stream(ctx, st.ID, func(server.JobStatus) {
		if dropped.CompareAndSwap(false, true) {
			p.DropActive() // sever the live stream under the reader
		}
	})
	if err != nil {
		t.Fatalf("stream across drop: %v", err)
	}
	if !dropped.Load() {
		t.Fatal("no progress event arrived to trigger the drop")
	}
	if resumes := c.Registry().Counter(client.MetricSSEResumes).Value(); resumes < 1 {
		t.Errorf("SSE resumes counted: %d, want >= 1", resumes)
	}

	direct, err := client.New(url).Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(direct)
	if !bytes.Equal(a, b) {
		t.Errorf("resumed stream report differs from direct fetch:\n%s\n%s", a, b)
	}
}

// TestStreamStallWatchdog: a stalled connection (bytes stop flowing but
// the socket stays up) trips the idle watchdog, and the stream recovers
// once the path heals.
func TestStreamStallWatchdog(t *testing.T) {
	_, url := startDaemonRaw(t, server.Options{})
	p, err := chaos.NewProxy(strings.TrimPrefix(url, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := client.NewWithOptions(p.URL(), client.Options{
		BaseBackoff:       10 * time.Millisecond,
		MaxAttempts:       8,
		StreamIdleTimeout: 150 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, chaosSpec(t, 34, 400))
	if err != nil {
		t.Fatal(err)
	}

	var stalled atomic.Bool
	rep, err := c.Stream(ctx, st.ID, func(server.JobStatus) {
		if stalled.CompareAndSwap(false, true) {
			p.Stall()
			time.AfterFunc(400*time.Millisecond, p.Unstall)
		}
	})
	if err != nil {
		t.Fatalf("stream across stall: %v", err)
	}
	if rep == nil || !stalled.Load() {
		t.Fatalf("stall never injected (rep=%v)", rep)
	}
	if resumes := c.Registry().Counter(client.MetricSSEResumes).Value(); resumes < 1 {
		t.Errorf("SSE resumes counted: %d, want >= 1", resumes)
	}
}

// TestBurstSubmitAllLand: a burst of distinct jobs against a tiny queue —
// the 429s are retried with backoff until every campaign lands and
// completes.
func TestBurstSubmitAllLand(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, url := startDaemonRaw(t, server.Options{
		Registry:   reg,
		QueueSize:  2,
		RetryAfter: 500 * time.Millisecond, // truncates to a 0s header: clients fall back to backoff
	})
	c := client.NewWithOptions(url, client.Options{
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  300 * time.Millisecond,
		MaxAttempts: 30,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	const jobs = 6
	var completed atomic.Int64
	errs := chaos.Burst(jobs, func(i int) error {
		rep, err := c.Run(ctx, chaosSpec(t, uint64(100+i), 4), nil)
		if err != nil {
			return err
		}
		if rep.Injections == 4 {
			completed.Add(1)
		}
		return nil
	})
	if len(errs) != 0 {
		t.Fatalf("burst errors: %v", errs)
	}
	if completed.Load() != jobs {
		t.Errorf("completed: %d/%d", completed.Load(), jobs)
	}
	if rejected := reg.Counter(server.MetricRejected).Value(); rejected == 0 {
		t.Error("burst never hit the full queue; backpressure untested")
	}
	retries := c.Registry().Counter(telemetry.Label(client.MetricRetries, "op", "submit")).Value()
	if retries == 0 {
		t.Error("no submit retries counted during the burst")
	}
}
