package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleEvents streams a job's progress as Server-Sent Events until the
// job is terminal or the client disconnects. The stream carries "progress"
// events (JobStatus snapshots, deduplicated, sampled at StreamInterval)
// fed by the campaign engine's Progress hook and the job's telemetry
// counters, then exactly one terminal event:
//
//	event: done       data: the full CampaignReport
//	event: failed     data: the final JobStatus (Error set)
//	event: cancelled  data: the final JobStatus
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError,
			fmt.Errorf("server: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	var last []byte
	emitProgress := func() {
		data, err := json.Marshal(j.snapshot())
		if err != nil || bytes.Equal(data, last) {
			return
		}
		last = data
		writeEvent(w, fl, "progress", data)
	}
	emitProgress()

	tick := time.NewTicker(s.opts.StreamInterval)
	defer tick.Stop()
wait:
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.finished:
			break wait
		case <-tick.C:
			emitProgress()
		}
	}

	final := j.snapshot()
	switch final.State {
	case JobDone:
		rep, _ := j.result()
		data, err := json.Marshal(rep)
		if err != nil {
			data, _ = json.Marshal(map[string]string{"error": err.Error()})
			writeEvent(w, fl, "failed", data)
			return
		}
		writeEvent(w, fl, "done", data)
	case JobFailed:
		data, _ := json.Marshal(final)
		writeEvent(w, fl, "failed", data)
	default:
		data, _ := json.Marshal(final)
		writeEvent(w, fl, "cancelled", data)
	}
}

// writeEvent emits one SSE frame. Payloads are single-line JSON, so one
// data: field suffices.
func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}
