package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// handleEvents streams a job's progress as Server-Sent Events until the
// job is terminal or the client disconnects. The stream carries "progress"
// events (JobStatus snapshots, deduplicated, sampled at StreamInterval)
// fed by the campaign engine's Progress hook and the job's telemetry
// counters, then exactly one terminal event:
//
//	event: done       data: the full CampaignReport
//	event: failed     data: the final JobStatus (Error set)
//	event: cancelled  data: the final JobStatus
//
// Every frame carries the job's monotonic progress sequence as its SSE id.
// A reconnecting client replays it via the Last-Event-ID header and the
// stream resumes: snapshots at or before that sequence are suppressed
// (progress is cumulative, so skipping stale ones loses nothing), while
// the terminal event is always delivered. Idle streams emit comment
// heartbeats every StreamKeepAlive so clients can distinguish a slow
// campaign from a stalled connection.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError,
			fmt.Errorf("server: response writer cannot stream"))
		return
	}

	lastSent := int64(-1)
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		if v, err := strconv.ParseInt(lid, 10, 64); err == nil && v >= 0 {
			lastSent = v
			s.sseResumes.Inc()
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	lastWrite := time.Now()
	var last []byte
	emitProgress := func() {
		st := j.snapshot()
		if st.Seq <= lastSent {
			return // the client saw this (or a later) snapshot before reconnecting
		}
		data, err := json.Marshal(st)
		if err != nil || bytes.Equal(data, last) {
			return
		}
		last = data
		lastSent = st.Seq
		writeEvent(w, fl, "progress", st.Seq, data)
		lastWrite = time.Now()
	}
	emitProgress()

	tick := time.NewTicker(s.opts.StreamInterval)
	defer tick.Stop()
wait:
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.finished:
			break wait
		case <-tick.C:
			emitProgress()
			if time.Since(lastWrite) >= s.opts.StreamKeepAlive {
				fmt.Fprint(w, ": hb\n\n")
				fl.Flush()
				lastWrite = time.Now()
			}
		}
	}

	// The terminal transition bumped the sequence one final time; the
	// terminal frame carries that id and is delivered unconditionally.
	terminalSeq := j.seq.Load()
	final := j.snapshot()
	switch final.State {
	case JobDone:
		rep, _ := j.result()
		data, err := json.Marshal(rep)
		if err != nil {
			data, _ = json.Marshal(map[string]string{"error": err.Error()})
			writeEvent(w, fl, "failed", terminalSeq, data)
			return
		}
		writeEvent(w, fl, "done", terminalSeq, data)
	case JobFailed:
		data, _ := json.Marshal(final)
		writeEvent(w, fl, "failed", terminalSeq, data)
	default:
		data, _ := json.Marshal(final)
		writeEvent(w, fl, "cancelled", terminalSeq, data)
	}
}

// writeEvent emits one SSE frame with its event id. Payloads are
// single-line JSON, so one data: field suffices.
func writeEvent(w http.ResponseWriter, fl http.Flusher, event string, id int64, data []byte) {
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
	fl.Flush()
}
