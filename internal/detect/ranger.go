package detect

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// Ranger is the calibrated per-layer range guard (modeled on the Ranger
// range-restriction detector the paper toggles in §V-B, promoted from
// inject.RangeProfile's inline clamp into a first-class detector). During
// calibration it records the min/max output of every layer on fault-free
// pool inferences — under the campaign's format emulation, so each format
// family calibrates its own envelope. Armed, it flags any row whose
// activation leaves the calibrated range or goes non-finite; PolicyClamp
// repairs with exactly the legacy clamp semantics (NaN → hi, clamp to
// [lo, hi]), PolicyZero zeroes the offending elements.
type Ranger struct {
	cachePath  string
	lo, hi     map[int]float32
	calibrated bool
}

var _ Detector = (*Ranger)(nil)

// rangerBounds is the serialized calibration artifact, written next to the
// campaign checkpoints so a sweep calibrates once per cell.
type rangerBounds struct {
	Lo map[int]float32 `json:"lo"`
	Hi map[int]float32 `json:"hi"`
}

// NewRanger returns a ranger. When cachePath names an existing file the
// bounds are restored from it and calibration is skipped; otherwise the
// ranger calibrates on the campaign's fault-free pass and, if cachePath is
// non-empty, serializes the learned bounds there.
func NewRanger(cachePath string) (*Ranger, error) {
	r := &Ranger{
		cachePath: cachePath,
		lo:        make(map[int]float32),
		hi:        make(map[int]float32),
	}
	if cachePath == "" {
		return r, nil
	}
	data, err := os.ReadFile(cachePath)
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("detect: ranger cache: %w", err)
	}
	var b rangerBounds
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("detect: ranger cache %s: %w", cachePath, err)
	}
	if b.Lo != nil && b.Hi != nil {
		r.lo, r.hi = b.Lo, b.Hi
		r.calibrated = true
	}
	return r, nil
}

// Name implements Detector.
func (r *Ranger) Name() string { return "ranger" }

// Bounds returns the calibrated range of layer i (false if never observed).
func (r *Ranger) Bounds(i int) (lo, hi float32, ok bool) {
	lo, ok1 := r.lo[i]
	hi, ok2 := r.hi[i]
	return lo, hi, ok1 && ok2
}

// observe widens layer idx's bounds to cover t.
func (r *Ranger) observe(idx int, t *tensor.Tensor) {
	lo, hi := t.MinMax()
	if cur, ok := r.lo[idx]; !ok || lo < cur {
		r.lo[idx] = lo
	}
	if cur, ok := r.hi[idx]; !ok || hi > cur {
		r.hi[idx] = hi
	}
}

// CalibrationHooks implements Detector. Bounds restored from a cache need
// no calibration pass.
func (r *Ranger) CalibrationHooks() *nn.HookSet {
	if r.calibrated {
		return nil
	}
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		r.observe(info.Index, t)
		return t
	})
	return hooks
}

// FinishCalibration implements Detector, persisting freshly learned bounds
// to the cache path (atomically, temp + rename, like checkpoint cells).
func (r *Ranger) FinishCalibration() error {
	if r.calibrated || r.cachePath == "" {
		r.calibrated = true
		return nil
	}
	r.calibrated = true
	data, err := json.MarshalIndent(rangerBounds{Lo: r.lo, Hi: r.hi}, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(r.cachePath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".ranger-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), r.cachePath)
}

// outOfRange reports whether v violates [lo, hi] (non-finite counts).
func outOfRange(v, lo, hi float32) bool {
	f := float64(v)
	return math.IsNaN(f) || v < lo || v > hi
}

// flagRow reports whether any element of seg violates [lo, hi].
func flagRow(seg []float32, lo, hi float32) bool {
	for _, v := range seg {
		if outOfRange(v, lo, hi) {
			return true
		}
	}
	return false
}

// Arm implements Detector. Repair is row-confined: only flagged rows are
// touched, and in-range values are fixed points of the clamp, so batched
// campaign passes deliver bit-identical activations to serial ones (and to
// the legacy inject.RangeProfile.ClampHook, which clamped every value
// unconditionally).
func (r *Ranger) Arm(rec *Recorder, policy Policy) *nn.HookSet {
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		lo, hi, ok := r.Bounds(info.Index)
		if !ok {
			return t
		}
		data := t.Data()
		for row := 0; row < rec.Rows(); row++ {
			s, e, ok := rowSpan(len(data), rec.Rows(), row)
			if !ok || !flagRow(data[s:e], lo, hi) {
				continue
			}
			rec.Flag(r.Name(), info.Index, row)
			switch policy {
			case PolicyClamp:
				seg := data[s:e]
				for i, v := range seg {
					switch {
					case math.IsNaN(float64(v)):
						seg[i] = hi
					case v < lo:
						seg[i] = lo
					case v > hi:
						seg[i] = hi
					}
				}
			case PolicyZero:
				seg := data[s:e]
				for i, v := range seg {
					if outOfRange(v, lo, hi) {
						seg[i] = 0
					}
				}
			}
		}
		return t
	})
	return hooks
}
