package detect

import (
	"fmt"

	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// DefaultABFTMargin is the tolerance multiplier over the largest fault-free
// residual observed during calibration.
const DefaultABFTMargin = 4.0

// ABFT is an algorithm-based fault-tolerance checksum guard for the matmul
// layers (Linear and Conv2D, the paper's default injection targets). At
// build time it seals column checksums of each layer's weights — after
// campaign-level weight quantization, so the checksums describe the weights
// the clean network actually runs with. Armed, it predicts each sample's
// output sum from the input and the sealed checksums and compares it
// against the actual output sum:
//
//	Linear (W of shape (in, out)):  Σ_o y[o] = Σ_i x[i]·wsum[i] + Σ_o b[o]
//	Conv  (lowered through im2col): Σ y     = Σ_k esum[k]·colsum[k] + OH·OW·Σ b
//
// Because the checksums come from the clean weights, ABFT detects
// persistent weight corruption — the class DMR is structurally blind to —
// as well as transient value faults at its layers' outputs. Residuals are
// never exactly zero (the forward pass accumulates in float32 and format
// emulation re-quantizes outputs), so the detection threshold is
// calibrated: the fault-free calibration pass records each layer's largest
// per-sample residual and the armed threshold is margin × that maximum,
// which by construction never flags the pool that calibrated it. Residuals
// are computed per sample (the finest row unit) in element order during
// both calibration and detection, so thresholds are independent of batch
// grouping and batched passes flag exactly the rows a serial campaign
// would. ABFT locates no individual element, so PolicyClamp and PolicyZero
// cannot repair in place; pair it with PolicyReexecute or PolicyAbort.
type ABFT struct {
	margin   float64
	checks   map[int]*abftCheck
	maxResid map[int]float64
	tol      map[int]float64
	sealed   bool
}

var _ Detector = (*ABFT)(nil)

type abftCheck struct {
	linear *linearCheck
	conv   *convCheck
}

type linearCheck struct {
	in, out int
	wsum    []float64 // Σ over output columns of W, per input index
	bsum    float64
}

type convCheck struct {
	kh, kw, stride, pad int
	esum                []float64 // Σ over output channels of W, per (C,KH,KW) element
	bsum                float64
}

// NewABFT seals checksums for every Linear/Conv2D layer reachable through
// t.Modules. It errors when the target exposes no such layer.
func NewABFT(t Target, margin float64) (*ABFT, error) {
	if margin <= 1 {
		margin = DefaultABFTMargin
	}
	a := &ABFT{
		margin:   margin,
		checks:   make(map[int]*abftCheck),
		maxResid: make(map[int]float64),
		tol:      make(map[int]float64),
	}
	for idx, m := range t.Modules {
		switch mod := m.(type) {
		case *nn.Linear:
			w := mod.Weight().Value
			in, out := w.Dim(0), w.Dim(1)
			c := &linearCheck{in: in, out: out, wsum: make([]float64, in)}
			wd := w.Data()
			for i := 0; i < in; i++ {
				for o := 0; o < out; o++ {
					c.wsum[i] += float64(wd[i*out+o])
				}
			}
			for _, b := range mod.Bias().Value.Data() {
				c.bsum += float64(b)
			}
			a.checks[idx] = &abftCheck{linear: c}
		case *nn.Conv2D:
			w := mod.Weight().Value
			oc := w.Dim(0)
			k := w.Len() / oc
			c := &convCheck{
				kh:     w.Dim(2),
				kw:     w.Dim(3),
				stride: mod.Stride(),
				pad:    mod.Pad(),
				esum:   make([]float64, k),
			}
			wd := w.Data()
			for o := 0; o < oc; o++ {
				for i := 0; i < k; i++ {
					c.esum[i] += float64(wd[o*k+i])
				}
			}
			for _, b := range mod.Bias().Value.Data() {
				c.bsum += float64(b)
			}
			a.checks[idx] = &abftCheck{conv: c}
		}
	}
	if len(a.checks) == 0 {
		return nil, fmt.Errorf("detect: abft found no linear/conv layer to guard")
	}
	return a, nil
}

// Name implements Detector.
func (a *ABFT) Name() string { return "abft" }

// residuals invokes fn with each sample's |observed − predicted| residual
// for layer idx and the number of samples, given the layer's captured
// input and output. Samples are the finest row unit: Linear flattens
// higher-rank inputs to (N', in) rows, Conv samples are the NCHW batch
// entries. fn is called in sample order.
func (a *ABFT) residuals(idx int, x, y *tensor.Tensor, fn func(sample, samples int, resid float64)) {
	check := a.checks[idx]
	if check == nil || x == nil {
		return
	}
	yd := y.Data()
	if c := check.linear; c != nil {
		xd := x.Data()
		if c.in == 0 || c.out == 0 || len(xd)%c.in != 0 {
			return
		}
		samples := len(xd) / c.in
		if samples == 0 || len(yd) != samples*c.out {
			return
		}
		for s := 0; s < samples; s++ {
			pred := c.bsum
			for i, v := range xd[s*c.in : (s+1)*c.in] {
				pred += float64(v) * c.wsum[i]
			}
			obs := 0.0
			for _, v := range yd[s*c.out : (s+1)*c.out] {
				obs += float64(v)
			}
			fn(s, samples, absf(obs-pred))
		}
		return
	}
	c := check.conv
	if x.Rank() != 4 {
		return
	}
	samples := x.Dim(0)
	if samples == 0 || len(yd)%samples != 0 {
		return
	}
	span := len(yd) / samples
	oh := tensor.ConvOut(x.Dim(2), c.kh, c.stride, c.pad)
	ow := tensor.ConvOut(x.Dim(3), c.kw, c.stride, c.pad)
	for s := 0; s < samples; s++ {
		col := tensor.Im2Col(x.Slice(s, s+1), c.kh, c.kw, c.stride, c.pad) // (C*KH*KW, OH*OW)
		if col.Dim(0) != len(c.esum) {
			return
		}
		cols := col.Dim(1)
		cd := col.Data()
		pred := float64(oh*ow) * c.bsum
		for k, e := range c.esum {
			rowSum := 0.0
			for _, v := range cd[k*cols : (k+1)*cols] {
				rowSum += float64(v)
			}
			pred += e * rowSum
		}
		obs := 0.0
		for _, v := range yd[s*span : (s+1)*span] {
			obs += float64(v)
		}
		fn(s, samples, absf(obs-pred))
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// hooks builds a pre/post hook pair that captures each guarded layer's
// input and hands per-sample residuals to fn. Scratch state (the captured
// inputs) lives in the closure, so every call arms an independent pass.
func (a *ABFT) hooks(fn func(idx, sample, samples int, resid float64)) *nn.HookSet {
	inputs := make(map[int]*tensor.Tensor)
	hooks := nn.NewHookSet()
	hooks.PreForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		if a.checks[info.Index] != nil {
			inputs[info.Index] = t
		}
		return t
	})
	hooks.PostForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		if a.checks[info.Index] == nil {
			return t
		}
		a.residuals(info.Index, inputs[info.Index], t, func(sample, samples int, resid float64) {
			fn(info.Index, sample, samples, resid)
		})
		return t
	})
	return hooks
}

// CalibrationHooks implements Detector: the fault-free pass records each
// layer's largest per-sample residual (batch grouping is irrelevant —
// samples are independent).
func (a *ABFT) CalibrationHooks() *nn.HookSet {
	return a.hooks(func(idx, _, _ int, resid float64) {
		if resid > a.maxResid[idx] {
			a.maxResid[idx] = resid
		}
	})
}

// FinishCalibration implements Detector, sealing per-layer thresholds.
func (a *ABFT) FinishCalibration() error {
	for idx := range a.checks {
		a.tol[idx] = a.margin*a.maxResid[idx] + 1e-9
	}
	a.sealed = true
	return nil
}

// Tolerance returns the sealed detection threshold of layer idx.
func (a *ABFT) Tolerance(idx int) float64 { return a.tol[idx] }

// Arm implements Detector. A violating sample flags the batch row that
// owns it (samples divide evenly across rows; Linear may see several
// flattened samples per row).
func (a *ABFT) Arm(rec *Recorder, _ Policy) *nn.HookSet {
	return a.hooks(func(idx, sample, samples int, resid float64) {
		if resid <= a.tol[idx] {
			return
		}
		rows := rec.Rows()
		if rows <= 0 || samples%rows != 0 {
			rec.Flag(a.Name(), idx, 0)
			return
		}
		rec.Flag(a.Name(), idx, sample/(samples/rows))
	})
}
