package detect

import (
	"math"

	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// DMR is duplicate-and-compare: every monitored inference is executed twice
// and the outputs compared exactly, row by row (migrated out of the
// campaign engine's hardcoded MeasureDMR path). It detects any transient
// fault that perturbs the output — but is structurally blind to persistent
// weight corruption, which corrupts both executions identically; the
// protection experiment demonstrates exactly that blindness. Detection is
// output-level, so events carry layer -1. PolicyClamp/PolicyZero have no
// in-place repair for DMR (there is nothing to repair once the pass
// finished); pair it with PolicyReexecute or PolicyAbort instead.
type DMR struct{}

var (
	_ Detector   = DMR{}
	_ Comparator = DMR{}
)

// Name implements Detector.
func (DMR) Name() string { return "dmr" }

// CalibrationHooks implements Detector (none needed).
func (DMR) CalibrationHooks() *nn.HookSet { return nil }

// FinishCalibration implements Detector.
func (DMR) FinishCalibration() error { return nil }

// Arm implements Detector. DMR monitors outputs only, so it installs no
// hooks; the campaign engine sees the pipeline's NeedsRerun and hands both
// outputs to Compare.
func (DMR) Arm(*Recorder, Policy) *nn.HookSet { return nil }

// Compare implements Comparator: a row is flagged when its faulty output
// differs bitwise from the duplicate execution's — the hardware comparator
// semantics, which (unlike a numeric |a−b| > 0 check) also catches outputs
// corrupted to NaN. Deterministic duplicate executions are bit-identical,
// so fault-free rows never flag.
func (d DMR) Compare(rec *Recorder, faulty, rerun *tensor.Tensor) {
	if faulty == nil || rerun == nil {
		return
	}
	fd, rd := faulty.Data(), rerun.Data()
	if len(fd) != len(rd) {
		return
	}
	for row := 0; row < rec.Rows(); row++ {
		lo, hi, ok := rowSpan(len(fd), rec.Rows(), row)
		if !ok {
			continue
		}
		for i := lo; i < hi; i++ {
			if math.Float32bits(fd[i]) != math.Float32bits(rd[i]) {
				rec.Flag(d.Name(), -1, row)
				break
			}
		}
	}
}
