package detect

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"goldeneye/internal/nn"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// emitModule is a stub layer that ignores its input and emits a preset
// tensor, letting tests hand exact activation values to armed hooks through
// a real forward pass.
type emitModule struct {
	name string
	out  *tensor.Tensor
}

func (e *emitModule) Name() string                                       { return e.name }
func (e *emitModule) Kind() nn.Kind                                      { return nn.KindLinear }
func (e *emitModule) Forward(*nn.Context, *tensor.Tensor) *tensor.Tensor { return e.out }
func (e *emitModule) Backward(g *tensor.Tensor) *tensor.Tensor           { return g }
func (e *emitModule) Params() []*nn.Param                                { return nil }

// runHooks fires the hook set over a forward pass that emits each tensor in
// turn (layer indices 0, 1, ...), returning the final activation.
func runHooks(hooks *nn.HookSet, outs ...*tensor.Tensor) *tensor.Tensor {
	mods := make([]nn.Module, len(outs))
	for i, o := range outs {
		mods[i] = &emitModule{name: "emit", out: o}
	}
	model := nn.NewSequential("m", mods...)
	return nn.Forward(nn.NewContext(hooks), model, outs[0])
}

// tinyTarget builds a 2-layer linear model and its Target view, the fixture
// the structural-detector tests share.
func tinyTarget() Target {
	r := rng.New(1)
	model := nn.NewSequential("m",
		nn.NewLinear("fc1", 4, 6, r),
		nn.NewReLU("act"),
		nn.NewLinear("fc2", 6, 3, r),
	)
	x := tensor.Randn(rng.New(2), 1, 1, 4)
	return Target{
		Model:   model,
		Layers:  nn.Trace(model, x),
		Modules: nn.TraceModules(model, x),
	}
}

func forward(t Target, hooks *nn.HookSet, x *tensor.Tensor) *tensor.Tensor {
	return nn.Forward(nn.NewContext(hooks), t.Model, x)
}

func TestRecorderDedupAndOrder(t *testing.T) {
	rec := NewRecorder(3)
	rec.Flag("ranger", 2, 1)
	rec.Flag("ranger", 4, 1) // same detector+row: deduped, first kept
	rec.Flag("sentinel", 4, 1)
	rec.Flag("ranger", 0, 2)
	rec.Flag("ranger", 0, 7) // out of range: ignored
	if got := rec.DetectedBy(1); len(got) != 2 || got[0] != "ranger" || got[1] != "sentinel" {
		t.Fatalf("DetectedBy(1) = %v, want firing order [ranger sentinel]", got)
	}
	if got := rec.DetectedBy(0); got != nil {
		t.Fatalf("DetectedBy(0) = %v, want nil", got)
	}
	if !rec.RowFlagged(2) || rec.RowFlagged(0) {
		t.Fatal("RowFlagged wrong")
	}
	if !rec.AnyFlagged() {
		t.Fatal("AnyFlagged false after flags")
	}
	if got := len(rec.Events()); got != 3 {
		t.Fatalf("events = %d, want 3 (dedup per detector/row, bounds check)", got)
	}
	if e := rec.Events()[0]; e.Detector != "ranger" || e.Layer != 2 || e.Row != 1 {
		t.Fatalf("first event must keep the first flag, got %+v", e)
	}
}

func TestRecorderNonFinite(t *testing.T) {
	rec := NewRecorder(2)
	if rec.FirstNonFiniteLayer(0) != -1 {
		t.Fatal("unobserved row must report -1")
	}
	rec.MarkNonFinite(3, 0)
	rec.MarkNonFinite(1, 0) // keeps the first mark
	if got := rec.FirstNonFiniteLayer(0); got != 3 {
		t.Fatalf("FirstNonFiniteLayer = %d, want the first mark 3", got)
	}
	if rec.FirstNonFiniteLayer(1) != -1 {
		t.Fatal("other rows unaffected")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"": PolicyNone, "none": PolicyNone, "clamp": PolicyClamp, "zero": PolicyZero,
		"reexecute": PolicyReexecute, "reexec": PolicyReexecute, "abort": PolicyAbort,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		back, err := ParsePolicy(want.String())
		if err != nil || back != want {
			t.Errorf("String/Parse round-trip broken for %v", want)
		}
	}
	if _, err := ParsePolicy("retry"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("ranger, sentinel,abft")
	if err != nil {
		t.Fatal(err)
	}
	if got := Names(specs); len(got) != 3 || got[0] != "ranger" || got[1] != "sentinel" || got[2] != "abft" {
		t.Fatalf("Names = %v", got)
	}
	if specs, err := ParseSpecs(""); err != nil || specs != nil {
		t.Fatalf("empty list should parse to nil, got %v, %v", specs, err)
	}
	if _, err := ParseSpecs("ranger,voodoo"); err == nil {
		t.Fatal("unknown detector accepted")
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	specs, err := ParseSpecs("sentinel,sentinel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(specs, PolicyNone, tinyTarget()); err == nil {
		t.Fatal("duplicate detector accepted")
	}
}

func TestBuildEmptyIsNil(t *testing.T) {
	p, err := Build(nil, PolicyNone, tinyTarget())
	if err != nil || p != nil {
		t.Fatalf("empty build = %v, %v; want nil pipeline", p, err)
	}
}

// Calibrate a ranger on a fault-free pass, then verify the armed hooks
// never flag that same pass and do flag an out-of-range activation, row-
// confined.
func TestRangerCalibrateAndDetect(t *testing.T) {
	tgt := tinyTarget()
	x := tensor.Randn(rng.New(3), 1, 4, 4)
	r, err := NewRanger("")
	if err != nil {
		t.Fatal(err)
	}
	forward(tgt, r.CalibrationHooks(), x)
	if err := r.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(4)
	forward(tgt, r.Arm(rec, PolicyNone), x)
	if rec.AnyFlagged() {
		t.Fatalf("ranger flagged its own calibration pass: %+v", rec.Events())
	}
	// Push one row's input far outside the calibrated envelope.
	hot := x.Clone()
	for i := 0; i < 4; i++ {
		hot.Set(1e6, 2, i)
	}
	rec = NewRecorder(4)
	forward(tgt, r.Arm(rec, PolicyNone), hot)
	if !rec.RowFlagged(2) {
		t.Fatal("out-of-range row not flagged")
	}
	if rec.RowFlagged(0) || rec.RowFlagged(1) || rec.RowFlagged(3) {
		t.Fatalf("detection must be row-confined, got %+v", rec.Events())
	}
}

// PolicyClamp on a flagged row must deliver exactly what the legacy
// unconditional clamp would: in-range values untouched, NaN → hi, and
// violations clamped to the calibrated bounds. The clean row must not be
// touched at all.
func TestRangerClampSemantics(t *testing.T) {
	r, err := NewRanger("")
	if err != nil {
		t.Fatal(err)
	}
	r.lo[0], r.hi[0] = -1, 2
	r.calibrated = true
	rec := NewRecorder(2)
	out := tensor.FromSlice([]float32{0.5, -3, float32(math.NaN()), 9, 0.25, 1, -0.5, 2}, 2, 4)
	runHooks(r.Arm(rec, PolicyClamp), out)
	want := []float32{0.5, -1, 2, 2, 0.25, 1, -0.5, 2}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("clamp[%d] = %v, want %v (full: %v)", i, v, want[i], out.Data())
		}
	}
	if !rec.RowFlagged(0) || rec.RowFlagged(1) {
		t.Fatal("only the violating row should flag")
	}
}

func TestRangerZeroPolicy(t *testing.T) {
	r, err := NewRanger("")
	if err != nil {
		t.Fatal(err)
	}
	r.lo[0], r.hi[0] = -1, 2
	r.calibrated = true
	rec := NewRecorder(1)
	out := tensor.FromSlice([]float32{0.5, 9, -0.5, 1}, 1, 4)
	runHooks(r.Arm(rec, PolicyZero), out)
	want := []float32{0.5, 0, -0.5, 1}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("zero[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestRangerCacheRoundTrip(t *testing.T) {
	tgt := tinyTarget()
	x := tensor.Randn(rng.New(4), 1, 3, 4)
	path := filepath.Join(t.TempDir(), "cells", "c1.ranger.json")
	r1, err := NewRanger(path)
	if err != nil {
		t.Fatal(err)
	}
	forward(tgt, r1.CalibrationHooks(), x)
	if err := r1.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("bounds not serialized: %v", err)
	}
	r2, err := NewRanger(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CalibrationHooks() != nil {
		t.Fatal("cached ranger must skip calibration")
	}
	for idx := range r1.lo {
		lo1, hi1, _ := r1.Bounds(idx)
		lo2, hi2, ok := r2.Bounds(idx)
		if !ok || lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("layer %d bounds diverge after reload: (%v,%v) vs (%v,%v)", idx, lo1, hi1, lo2, hi2)
		}
	}
	// A corrupt cache is an error, not silent recalibration.
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRanger(path); err == nil {
		t.Fatal("corrupt cache accepted")
	}
}

// The sentinel flags rows with non-finite activations and attributes the
// first non-finite layer; under PolicyZero it squashes the non-finite
// elements only.
func TestSentinelFlagsAndAttributes(t *testing.T) {
	s := Sentinel{}
	rec := NewRecorder(2)
	clean := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	dirty := tensor.FromSlice([]float32{1, 2, float32(math.Inf(1)), 4}, 2, 2)
	runHooks(s.Arm(rec, PolicyNone), clean, dirty)
	if rec.RowFlagged(0) {
		t.Fatal("finite row flagged")
	}
	if !rec.RowFlagged(1) {
		t.Fatal("non-finite row not flagged")
	}
	if got := rec.FirstNonFiniteLayer(1); got != 1 {
		t.Fatalf("FirstNonFiniteLayer = %d, want layer 1 (the dirty emit)", got)
	}
	rec = NewRecorder(2)
	out := tensor.FromSlice([]float32{1, 2, float32(math.NaN()), 4}, 2, 2)
	runHooks(s.Arm(rec, PolicyZero), out)
	d := out.Data()
	if d[0] != 1 || d[1] != 2 || d[2] != 0 || d[3] != 4 {
		t.Fatalf("zero policy result %v", d)
	}
}

func TestDMRCompareBitwise(t *testing.T) {
	d := DMR{}
	var det Detector = d
	if _, ok := det.(Comparator); !ok {
		t.Fatal("DMR must advertise itself as a Comparator")
	}
	rec := NewRecorder(2)
	faulty := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	rerun := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	d.Compare(rec, faulty, rerun)
	if rec.AnyFlagged() {
		t.Fatal("identical outputs flagged")
	}
	// A NaN-corrupted row must flag — the case a numeric |a−b| > 0 check
	// misses because NaN comparisons are always false.
	faulty.Set(float32(math.NaN()), 1, 0)
	rec = NewRecorder(2)
	d.Compare(rec, faulty, rerun)
	if rec.RowFlagged(0) || !rec.RowFlagged(1) {
		t.Fatalf("bitwise compare must flag exactly the corrupted row: %+v", rec.Events())
	}
}

// ABFT: calibration fixes per-layer thresholds such that the calibration
// pool never flags, while weight corruption against the sealed checksums is
// detected — the class of persistent fault DMR is structurally blind to.
func TestABFTDetectsCorruption(t *testing.T) {
	tgt := tinyTarget()
	x := tensor.Randn(rng.New(5), 1, 4, 4)
	a, err := NewABFT(tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.margin != DefaultABFTMargin {
		t.Fatalf("margin 0 must fall back to the default, got %v", a.margin)
	}
	forward(tgt, a.CalibrationHooks(), x)
	if err := a.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(4)
	forward(tgt, a.Arm(rec, PolicyNone), x)
	if rec.AnyFlagged() {
		t.Fatalf("abft flagged its calibration pool: %+v", rec.Events())
	}
	// Corrupt a weight hard after the checksums were sealed.
	var lin *nn.Linear
	for _, m := range tgt.Modules {
		if l, ok := m.(*nn.Linear); ok {
			lin = l
			break
		}
	}
	w := lin.Weight().Value.Data()
	orig := w[0]
	w[0] = orig + 50
	rec = NewRecorder(4)
	forward(tgt, a.Arm(rec, PolicyNone), x)
	w[0] = orig
	if !rec.AnyFlagged() {
		t.Fatal("abft missed persistent weight corruption")
	}
	for idx := range a.checks {
		if a.Tolerance(idx) <= 0 {
			t.Fatalf("layer %d tolerance must be positive after sealing", idx)
		}
	}
}

func TestABFTNeedsGuardableLayer(t *testing.T) {
	model := nn.NewSequential("m", nn.NewReLU("act"))
	x := tensor.Randn(rng.New(1), 1, 1, 4)
	tgt := Target{Model: model, Layers: nn.Trace(model, x), Modules: nn.TraceModules(model, x)}
	if _, err := NewABFT(tgt, 0); err == nil {
		t.Fatal("abft built without any linear/conv layer")
	}
}

func TestRowSpan(t *testing.T) {
	if lo, hi, ok := rowSpan(12, 3, 1); !ok || lo != 4 || hi != 8 {
		t.Fatalf("rowSpan(12,3,1) = %d,%d,%v", lo, hi, ok)
	}
	// Indivisible data attributes everything to row 0.
	if _, _, ok := rowSpan(10, 3, 1); ok {
		t.Fatal("indivisible span must not slice rows 1+")
	}
	if lo, hi, ok := rowSpan(10, 3, 0); !ok || lo != 0 || hi != 10 {
		t.Fatalf("rowSpan(10,3,0) = %d,%d,%v", lo, hi, ok)
	}
}

// FuzzRangerCalibration: for any finite activation tensor, bounds learned
// from a pass must never flag the pass that produced them (the zero-false-
// positive invariant the campaign's FP sweep relies on).
func FuzzRangerCalibration(f *testing.F) {
	f.Add(int16(300), int16(-200), int16(150), uint8(3))
	f.Add(int16(0), int16(0), int16(0), uint8(0))
	f.Add(int16(-32768), int16(32767), int16(1), uint8(255))
	f.Fuzz(func(t *testing.T, a, b, c int16, salt uint8) {
		vals := [3]float32{float32(a) / 8, float32(b) / 8, float32(c) / 8}
		data := make([]float32, 12)
		state := uint32(salt) + 1
		for i := range data {
			state = state*1664525 + 1013904223
			data[i] = vals[state%3] * (1 + float32(state%7)/16)
		}
		out := tensor.FromSlice(data, 3, 4)
		r, err := NewRanger("")
		if err != nil {
			t.Fatal(err)
		}
		r.observe(0, out)
		if err := r.FinishCalibration(); err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder(3)
		runHooks(r.Arm(rec, PolicyNone), out)
		if rec.AnyFlagged() {
			lo, hi, _ := r.Bounds(0)
			t.Fatalf("bounds [%v,%v] flag the calibrating tensor %v", lo, hi, data)
		}
	})
}
