// Package detect is GoldenEye's fault detection & recovery subsystem: a
// pluggable pipeline of activation guards that attach to nn forward hooks
// and the campaign engine. It promotes the detectors that were previously
// scattered through the codebase — DMR re-execution hardcoded in the
// campaign, the ranger as an inline config mutation, NaN/Inf checks on the
// output path — into calibrated, composable detectors paired with recovery
// policies, the "software-directed protection techniques" axis of the
// paper's §V-B.
//
// Detectors are declared with cheap Spec values (safe to copy around with a
// campaign config) and instantiated per campaign runner with Build, so
// parallel campaign shards never share calibration state. A built Pipeline
// goes through three phases:
//
//  1. Calibration: CalibrationHooks ride the campaign's fault-free
//     reference pass over the evaluation pool (ranger learns activation
//     bounds, ABFT seals weight checksums and residual tolerances).
//  2. False-positive sweep: the armed pipeline observes one more fault-free
//     pass over the pool; any flag it raises is a false positive, reported
//     per detector alongside coverage.
//  3. Campaign: Arm returns hooks for each monitored inference. Detections
//     land in a Recorder keyed by batch row, so batched campaign passes
//     stay bit-identical to serial ones (row-confined detection and
//     recovery, like row-confined injection).
package detect

import (
	"fmt"
	"strings"

	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// Policy selects what a campaign does with a flagged inference.
type Policy int

// Recovery policies, in escalating order of intervention.
const (
	// PolicyNone records detections without intervening.
	PolicyNone Policy = iota

	// PolicyClamp repairs flagged activations toward a safe value in
	// place (ranger clamps to calibrated bounds; the sentinel zeroes
	// non-finite values) and lets the inference continue.
	PolicyClamp

	// PolicyZero zeroes offending activation elements in place.
	PolicyZero

	// PolicyReexecute reruns a flagged inference without the transient
	// fault and delivers the rerun's output. Persistent corruption (weight
	// faults) survives re-execution, so it recovers transient faults only.
	PolicyReexecute

	// PolicyAbort discards a flagged inference: the outcome counts as
	// aborted instead of contributing mismatch/ΔLoss observations.
	PolicyAbort
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyClamp:
		return "clamp"
	case PolicyZero:
		return "zero"
	case PolicyReexecute:
		return "reexecute"
	case PolicyAbort:
		return "abort"
	default:
		return "none"
	}
}

// ParsePolicy parses a -recovery flag value. The empty string means
// PolicyNone.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return PolicyNone, nil
	case "clamp":
		return PolicyClamp, nil
	case "zero":
		return PolicyZero, nil
	case "reexecute", "reexec":
		return PolicyReexecute, nil
	case "abort":
		return PolicyAbort, nil
	default:
		return PolicyNone, fmt.Errorf("detect: unknown recovery policy %q (want none|clamp|zero|reexecute|abort)", s)
	}
}

// Target is the model view handed to detector constructors.
type Target struct {
	// Model is the simulated network.
	Model nn.Module

	// Layers lists the forward-pass layer visits, in hook order.
	Layers []nn.LayerInfo

	// Modules maps layer visit index → module (nn.TraceModules), the join
	// structural detectors use to reach a layer's parameters.
	Modules map[int]nn.Module
}

// Spec declares one detector of a campaign pipeline. Specs are declarative
// values — copying a CampaignConfig copies them safely; the stateful
// detector instances are built per campaign runner via Build, so parallel
// workers never share mutable calibration state.
type Spec struct {
	// Kind names a built-in detector: "ranger", "sentinel", "dmr", "abft".
	Kind string

	// Margin widens ABFT's calibrated residual tolerance (multiplier over
	// the largest fault-free residual; 0 means the default).
	Margin float64

	// CachePath, for ranger: calibrated bounds are loaded from this file
	// when it exists and serialized to it after calibration otherwise,
	// so sweeps sharing a checkpoint directory calibrate once.
	CachePath string

	// New, when non-nil, overrides Kind with a custom detector factory.
	New func(t Target) (Detector, error)
}

// ParseSpecs parses a comma-separated -detectors flag value into specs.
// The empty string yields nil (no detectors).
func ParseSpecs(list string) ([]Spec, error) {
	var specs []Spec
	for _, part := range strings.Split(list, ",") {
		kind := strings.ToLower(strings.TrimSpace(part))
		if kind == "" {
			continue
		}
		switch kind {
		case "ranger", "sentinel", "dmr", "abft":
			specs = append(specs, Spec{Kind: kind})
		default:
			return nil, fmt.Errorf("detect: unknown detector %q (want ranger|sentinel|dmr|abft)", kind)
		}
	}
	return specs, nil
}

// Names returns the detector names a spec list will build, in order.
func Names(specs []Spec) []string {
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		if s.New != nil && s.Kind == "" {
			names = append(names, "custom")
			continue
		}
		names = append(names, s.Kind)
	}
	return names
}

// Detector is one guard of the pipeline. Implementations must confine both
// detection and recovery to individual batch rows: a batched campaign pass
// carries an independent fault per row, and reports are required to be
// bit-identical to running those rows serially.
type Detector interface {
	// Name identifies the detector in reports and metrics.
	Name() string

	// CalibrationHooks returns pure-observation hooks to ride the
	// campaign's fault-free reference pass, or nil when the detector
	// needs no calibration (or was restored from a cache).
	CalibrationHooks() *nn.HookSet

	// FinishCalibration seals the observed state before arming.
	FinishCalibration() error

	// Arm returns the hooks monitoring one inference, reporting flags to
	// rec by batch row. Under PolicyClamp/PolicyZero the hooks also repair
	// the offending activations, row-confined. Every call returns fresh
	// hook closures; per-pass scratch state must live in the closure, not
	// on the detector, so calibration and re-execution passes can overlap
	// arming. A nil return means the detector needs no hooks (e.g. DMR,
	// which only compares outputs).
	Arm(rec *Recorder, policy Policy) *nn.HookSet
}

// Comparator is implemented by redundancy detectors (DMR) that compare the
// monitored inference's output against a duplicate fault-free execution.
type Comparator interface {
	// Compare flags rows whose faulty output differs from the rerun.
	Compare(rec *Recorder, faulty, rerun *tensor.Tensor)
}

// Event is one detection: detector d flagged batch row Row at layer Layer
// (-1 for output-level detectors such as DMR).
type Event struct {
	Detector string
	Layer    int
	Row      int
}

// Recorder collects one monitored inference's detection events. A fresh
// Recorder is created per forward pass; like the hook sets it feeds, it is
// not safe for concurrent use. Repeat flags for the same (detector, row)
// pair are deduplicated, keeping the first — and therefore earliest-layer —
// event, so DetectedBy order is the order detectors fired, which is
// identical between serial and batched passes.
type Recorder struct {
	rows           int
	events         []Event
	seen           map[string][]bool
	firstNonFinite []int
}

// NewRecorder returns a recorder for a pass with the given number of batch
// rows (1 for serial campaigns).
func NewRecorder(rows int) *Recorder {
	nf := make([]int, rows)
	for i := range nf {
		nf[i] = -1
	}
	return &Recorder{rows: rows, seen: make(map[string][]bool), firstNonFinite: nf}
}

// Rows returns the number of batch rows the recorder covers.
func (r *Recorder) Rows() int { return r.rows }

// Flag records that detector det flagged row at layer. Out-of-range rows
// and repeat flags are ignored.
func (r *Recorder) Flag(det string, layer, row int) {
	if row < 0 || row >= r.rows {
		return
	}
	s := r.seen[det]
	if s == nil {
		s = make([]bool, r.rows)
		r.seen[det] = s
	}
	if s[row] {
		return
	}
	s[row] = true
	r.events = append(r.events, Event{Detector: det, Layer: layer, Row: row})
}

// MarkNonFinite records that row's activation went non-finite at layer,
// keeping the first such layer. The sentinel detector feeds this; the
// campaign trace exposes it as FirstNonFiniteLayer.
func (r *Recorder) MarkNonFinite(layer, row int) {
	if row >= 0 && row < r.rows && r.firstNonFinite[row] < 0 {
		r.firstNonFinite[row] = layer
	}
}

// FirstNonFiniteLayer returns the first layer whose output went non-finite
// in the given row, or -1 if none was observed (observation requires an
// armed sentinel).
func (r *Recorder) FirstNonFiniteLayer(row int) int {
	if row < 0 || row >= r.rows {
		return -1
	}
	return r.firstNonFinite[row]
}

// RowFlagged reports whether any detector flagged the row.
func (r *Recorder) RowFlagged(row int) bool {
	for _, s := range r.seen {
		if row >= 0 && row < len(s) && s[row] {
			return true
		}
	}
	return false
}

// AnyFlagged reports whether any detector flagged any row.
func (r *Recorder) AnyFlagged() bool { return len(r.events) > 0 }

// DetectedBy returns the names of the detectors that flagged row, in
// firing order.
func (r *Recorder) DetectedBy(row int) []string {
	var out []string
	for _, e := range r.events {
		if e.Row == row {
			out = append(out, e.Detector)
		}
	}
	return out
}

// Events returns every detection event in firing order.
func (r *Recorder) Events() []Event { return r.events }

// Pipeline bundles a campaign's built detectors with its recovery policy.
type Pipeline struct {
	policy    Policy
	detectors []Detector
}

// Build instantiates the declared detectors against a target model. It
// returns nil (no pipeline) for an empty spec list. Detector names must be
// unique within a pipeline.
func Build(specs []Spec, policy Policy, t Target) (*Pipeline, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	p := &Pipeline{policy: policy}
	seen := make(map[string]bool)
	for _, s := range specs {
		var (
			d   Detector
			err error
		)
		switch {
		case s.New != nil:
			d, err = s.New(t)
		case s.Kind == "ranger":
			d, err = NewRanger(s.CachePath)
		case s.Kind == "sentinel":
			d = Sentinel{}
		case s.Kind == "dmr":
			d = DMR{}
		case s.Kind == "abft":
			d, err = NewABFT(t, s.Margin)
		default:
			err = fmt.Errorf("detect: unknown detector %q", s.Kind)
		}
		if err != nil {
			return nil, err
		}
		if seen[d.Name()] {
			return nil, fmt.Errorf("detect: duplicate detector %q", d.Name())
		}
		seen[d.Name()] = true
		p.detectors = append(p.detectors, d)
	}
	return p, nil
}

// Policy returns the pipeline's recovery policy.
func (p *Pipeline) Policy() Policy { return p.policy }

// Names returns the armed detector names, in pipeline order.
func (p *Pipeline) Names() []string {
	names := make([]string, len(p.detectors))
	for i, d := range p.detectors {
		names[i] = d.Name()
	}
	return names
}

// CalibrationHooks returns the merged calibration hooks of every detector
// (possibly an empty set).
func (p *Pipeline) CalibrationHooks() *nn.HookSet {
	hooks := nn.NewHookSet()
	for _, d := range p.detectors {
		hooks.Merge(d.CalibrationHooks())
	}
	return hooks
}

// FinishCalibration seals every detector's calibration state.
func (p *Pipeline) FinishCalibration() error {
	for _, d := range p.detectors {
		if err := d.FinishCalibration(); err != nil {
			return fmt.Errorf("detect: %s calibration: %w", d.Name(), err)
		}
	}
	return nil
}

// Arm returns the merged monitoring hooks for one inference. Register the
// result AFTER injection hooks, so faults are detected rather than
// prevented (same rule as the legacy ranger clamp).
func (p *Pipeline) Arm(rec *Recorder) *nn.HookSet {
	hooks := nn.NewHookSet()
	for _, d := range p.detectors {
		hooks.Merge(d.Arm(rec, p.policy))
	}
	return hooks
}

// NeedsRerun reports whether any armed detector is a Comparator and thus
// requires a duplicate fault-free execution of each monitored inference.
func (p *Pipeline) NeedsRerun() bool {
	for _, d := range p.detectors {
		if _, ok := d.(Comparator); ok {
			return true
		}
	}
	return false
}

// CompareOutputs hands the faulty and duplicate outputs to every
// Comparator detector.
func (p *Pipeline) CompareOutputs(rec *Recorder, faulty, rerun *tensor.Tensor) {
	for _, d := range p.detectors {
		if c, ok := d.(Comparator); ok {
			c.Compare(rec, faulty, rerun)
		}
	}
}

// rowSpan returns the flat-data extent of batch row r when the recorder
// tracks rows rows over a tensor of n elements. Layer activations are
// row-major with the batch outermost, and modules may flatten the batch
// axis (Linear reshapes (N, T, D) to (N*T, D)), so slicing flat data by the
// recorder's row count — not the tensor's own leading dim — is what keeps
// detection row-confined. When n is not divisible by rows the whole tensor
// is attributed to row 0 (single-sample semantics).
func rowSpan(n, rows, r int) (lo, hi int, ok bool) {
	if rows <= 0 || n%rows != 0 {
		if r == 0 {
			return 0, n, true
		}
		return 0, 0, false
	}
	span := n / rows
	return r * span, (r + 1) * span, true
}
