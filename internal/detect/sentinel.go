package detect

import (
	"math"

	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// Sentinel flags NaN/Inf in intermediate activations — not just the final
// logits, which is all the campaign's NonFinite counter used to see. Faults
// that go non-finite mid-network and saturate back to finite values (e.g. a
// NaN swallowed by a later clamp or max) were previously invisible; the
// sentinel records the first non-finite layer so the trace can attribute
// them. It needs no calibration. Under PolicyClamp or PolicyZero it zeroes
// the non-finite elements of flagged rows (there is no calibrated bound to
// clamp toward), letting the inference continue on damaged-but-finite
// state.
type Sentinel struct{}

var _ Detector = Sentinel{}

// Name implements Detector.
func (Sentinel) Name() string { return "sentinel" }

// CalibrationHooks implements Detector (none needed).
func (Sentinel) CalibrationHooks() *nn.HookSet { return nil }

// FinishCalibration implements Detector.
func (Sentinel) FinishCalibration() error { return nil }

// Arm implements Detector.
func (s Sentinel) Arm(rec *Recorder, policy Policy) *nn.HookSet {
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.AllLayers(), func(info nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		data := t.Data()
		for row := 0; row < rec.Rows(); row++ {
			lo, hi, ok := rowSpan(len(data), rec.Rows(), row)
			if !ok {
				continue
			}
			seg := data[lo:hi]
			found := false
			for _, v := range seg {
				f := float64(v)
				if math.IsNaN(f) || math.IsInf(f, 0) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			rec.Flag(s.Name(), info.Index, row)
			rec.MarkNonFinite(info.Index, row)
			if policy == PolicyClamp || policy == PolicyZero {
				for i, v := range seg {
					f := float64(v)
					if math.IsNaN(f) || math.IsInf(f, 0) {
						seg[i] = 0
					}
				}
			}
		}
		return t
	})
	return hooks
}
