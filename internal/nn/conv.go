package nn

import (
	"fmt"
	"math"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW tensors, lowered to matrix multiply
// through im2col (the same lowering the original system's backends use).
type Conv2D struct {
	name        string
	w           *Param // (OC, C, KH, KW)
	b           *Param // (OC)
	stride, pad int

	lastCol   *tensor.Tensor // im2col of last input, for Backward
	lastShape []int          // last input shape
}

var _ Module = (*Conv2D)(nil)

// NewConv2D returns a convolution layer with Kaiming-normal initialized
// weights.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, r *rng.RNG) *Conv2D {
	fanIn := float64(inC * kernel * kernel)
	std := math.Sqrt(2.0 / fanIn)
	return &Conv2D{
		name:   name,
		w:      NewParam(name+".weight", tensor.Randn(r, std, outC, inC, kernel, kernel)),
		b:      NewParam(name+".bias", tensor.New(outC)),
		stride: stride,
		pad:    pad,
	}
}

// Name implements Module.
func (c *Conv2D) Name() string { return c.name }

// Kind implements Module.
func (c *Conv2D) Kind() Kind { return KindConv }

// Params implements Module.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Weight returns the (OC, C, KH, KW) weight parameter.
func (c *Conv2D) Weight() *Param { return c.w }

// Bias returns the (OC) bias parameter.
func (c *Conv2D) Bias() *Param { return c.b }

// Stride returns the convolution stride.
func (c *Conv2D) Stride() int { return c.stride }

// Pad returns the zero padding applied on each spatial border.
func (c *Conv2D) Pad() int { return c.pad }

// Forward implements Module. A staged epilogue (fused emulation of the
// output) is applied during NCHW assembly: element-local epilogues run on
// each (sample, channel) plane right after its bias add while the plane
// is cache-hot; per-row and whole-tensor epilogues run once after
// assembly with the batch-row geometry EmulateBatched uses.
func (c *Conv2D) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW input, got %v", c.name, x.Shape()))
	}
	oc, kh, kw := c.w.Value.Dim(0), c.w.Value.Dim(2), c.w.Value.Dim(3)
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := tensor.ConvOut(h, kh, c.stride, c.pad), tensor.ConvOut(w, kw, c.stride, c.pad)

	col := tensor.Im2Col(x, kh, kw, c.stride, c.pad)
	c.lastCol = col
	c.lastShape = x.Shape()

	wm := c.w.Value.Reshape(oc, -1)
	plane := oh * ow
	spec, hasAccum := ctx.TakeAccum()
	var y *tensor.Tensor
	if hasAccum {
		y = wm.MatMulAccum(col, convAccumHook(spec, plane)) // (oc, n*oh*ow)
	} else {
		y = wm.MatMul(col) // (oc, n*oh*ow)
	}

	ep, _ := ctx.TakeEpilogue()
	out := tensor.New(n, oc, oh, ow)
	bias := c.b.Value.Data()
	quant := spec.Quant
	for oci := 0; oci < oc; oci++ {
		src := y.Data()[oci*n*plane : (oci+1)*n*plane]
		bv := bias[oci]
		for ni := 0; ni < n; ni++ {
			dst := out.Data()[(ni*oc+oci)*plane : (ni*oc+oci+1)*plane]
			s := src[ni*plane : (ni+1)*plane]
			if quant != nil {
				// Bias add is the accumulator's final step: the register
				// rounds after it like after every multiply-accumulate.
				for i := range dst {
					dst[i] = quant(s[i] + bv)
				}
			} else {
				for i := range dst {
					dst[i] = s[i] + bv
				}
			}
			if ep.Tile != nil {
				ep.Tile(dst)
			}
		}
	}
	ep.Apply(out.Data(), n, oc*plane)
	return out
}

// Backward implements Module.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCol == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	oc, kh, kw := c.w.Value.Dim(0), c.w.Value.Dim(2), c.w.Value.Dim(3)
	n, ch, h, w := c.lastShape[0], c.lastShape[1], c.lastShape[2], c.lastShape[3]
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	plane := oh * ow

	// Reorder gradOut (N, OC, OH, OW) → (OC, N*OH*OW).
	g2 := tensor.New(oc, n*plane)
	for ni := 0; ni < n; ni++ {
		for oci := 0; oci < oc; oci++ {
			src := gradOut.Data()[(ni*oc+oci)*plane : (ni*oc+oci+1)*plane]
			copy(g2.Data()[(oci*n+ni)*plane:(oci*n+ni+1)*plane], src)
		}
	}

	// dW = g2 · colᵀ ; db = row sums of g2 ; dcol = Wᵀ · g2.
	dw := g2.MatMulT(c.lastCol) // (oc, C*KH*KW)
	c.w.Grad.AddInPlace(dw.Reshape(c.w.Value.Shape()...))
	for oci := 0; oci < oc; oci++ {
		var sum float32
		for _, v := range g2.Data()[oci*n*plane : (oci+1)*n*plane] {
			sum += v
		}
		c.b.Grad.Data()[oci] += sum
	}
	wm := c.w.Value.Reshape(oc, -1)
	dcol := wm.TMatMul(g2) // (C*KH*KW, N*OH*OW)
	return tensor.Col2Im(dcol, n, ch, h, w, kh, kw, c.stride, c.pad)
}
