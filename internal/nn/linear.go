package nn

import (
	"fmt"
	"math"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// Linear is a fully connected layer: y = x·W + b for x of shape (N, in).
// Inputs of higher rank are flattened to (N, in) on the fly, matching the
// usual classifier-head usage.
type Linear struct {
	name string
	w    *Param // (in, out)
	b    *Param // (out)

	lastInput *tensor.Tensor // (N, in), cached for Backward
}

var _ Module = (*Linear)(nil)

// NewLinear returns a linear layer with Kaiming-uniform initialized weights.
func NewLinear(name string, in, out int, r *rng.RNG) *Linear {
	bound := math.Sqrt(6.0 / float64(in))
	return &Linear{
		name: name,
		w:    NewParam(name+".weight", tensor.RandUniform(r, -bound, bound, in, out)),
		b:    NewParam(name+".bias", tensor.New(out)),
	}
}

// Name implements Module.
func (l *Linear) Name() string { return l.name }

// Kind implements Module.
func (l *Linear) Kind() Kind { return KindLinear }

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }

// Weight returns the (in, out) weight parameter.
func (l *Linear) Weight() *Param { return l.w }

// Bias returns the bias parameter.
func (l *Linear) Bias() *Param { return l.b }

// Forward implements Module. The matmul, bias add, and any staged
// epilogue (fused emulation of the output) run as one pass over the
// output tile — bit-identical to MatMul then Add then a whole-tensor
// post hook, but without re-streaming the output from memory.
func (l *Linear) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	in := l.w.Value.Dim(0)
	if x.Rank() != 2 {
		x = x.Reshape(-1, in)
	}
	if x.Dim(1) != in {
		panic(fmt.Sprintf("nn: %s expects input dim %d, got %v", l.name, in, x.Shape()))
	}
	l.lastInput = x
	ep, _ := ctx.TakeEpilogue()
	if spec, ok := ctx.TakeAccum(); ok {
		ep.Accum = linearAccumHook(spec)
	}
	return x.MatMulBias(l.w.Value, l.b.Value, ep)
}

// Backward implements Module.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	if gradOut.Rank() != 2 {
		gradOut = gradOut.Reshape(-1, l.w.Value.Dim(1))
	}
	// dW = xᵀ·g, db = Σ rows g, dx = g·Wᵀ.
	l.w.Grad.AddInPlace(l.lastInput.TMatMul(gradOut))
	l.b.Grad.AddInPlace(gradOut.SumRows())
	return gradOut.MatMulT(l.w.Value)
}
