package nn

import (
	"testing"
	"time"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestTimingHooksObservesEveryLayer(t *testing.T) {
	r := rng.New(1)
	model := NewSequential("m",
		NewLinear("m.fc1", 4, 8, r),
		NewReLU("m.relu"),
		NewLinear("m.fc2", 8, 3, r),
	)
	var got []LayerInfo
	hooks := TimingHooks(func(info LayerInfo, d time.Duration) {
		if d < 0 {
			t.Fatalf("negative duration %v for %v", d, info)
		}
		got = append(got, info)
	})
	x := tensor.New(2, 4)
	Forward(NewContext(hooks), model, x)

	want := []string{"m.fc1", "m.relu", "m.fc2"}
	if len(got) != len(want) {
		t.Fatalf("observed %d layer visits, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i].Name != name || got[i].Index != i {
			t.Fatalf("visit %d = %v, want name %s index %d", i, got[i], name, i)
		}
	}
}

// Attention routes its internal linears through ctx.Apply, nesting layer
// visits; the timer's start-time stack must pair pre/post correctly and
// the parent's duration must cover its children's.
func TestTimingHooksNestedVisits(t *testing.T) {
	r := rng.New(2)
	attn := NewMultiHeadAttention("attn", 8, 2, r)
	durations := map[string]time.Duration{}
	var order []string
	hooks := TimingHooks(func(info LayerInfo, d time.Duration) {
		durations[info.Name] = d
		order = append(order, info.Name)
	})
	x := tensor.New(1, 3, 8) // (N, T, D)
	Forward(NewContext(hooks), attn, x)

	if len(order) != 3 {
		t.Fatalf("expected qkv, proj, attn visits, got %v", order)
	}
	if order[len(order)-1] != "attn" {
		t.Fatalf("parent must be observed last, got %v", order)
	}
	if durations["attn"] < durations[order[0]] {
		t.Fatalf("parent duration %v must cover child %v", durations["attn"], durations[order[0]])
	}
}

func TestTimingHooksMergedLastIncludesEarlierPostHooks(t *testing.T) {
	r := rng.New(3)
	model := NewSequential("m", NewLinear("m.fc", 4, 4, r))
	const delay = 2 * time.Millisecond

	slow := NewHookSet()
	slow.PostForward(AllLayers(), func(_ LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		time.Sleep(delay)
		return t
	})
	var measured time.Duration
	slow.Merge(TimingHooks(func(_ LayerInfo, d time.Duration) { measured = d }))

	Forward(NewContext(slow), model, tensor.New(1, 4))
	if measured < delay {
		t.Fatalf("timing merged last measured %v, want >= %v (post hooks registered earlier must fall inside the window)", measured, delay)
	}
}
