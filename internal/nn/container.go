package nn

import "goldeneye/internal/tensor"

// Sequential chains modules, routing each child through the context so
// hooks fire per layer.
type Sequential struct {
	name     string
	children []Module
}

var _ Module = (*Sequential)(nil)

// NewSequential returns a container running children in order.
func NewSequential(name string, children ...Module) *Sequential {
	return &Sequential{name: name, children: children}
}

// Name implements Module.
func (s *Sequential) Name() string { return s.name }

// Kind implements Module.
func (s *Sequential) Kind() Kind { return KindContainer }

// Children returns the contained modules in execution order.
func (s *Sequential) Children() []Module { return s.children }

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, c := range s.children {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// Forward implements Module.
func (s *Sequential) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	for _, c := range s.children {
		x = ctx.Apply(c, x)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.children) - 1; i >= 0; i-- {
		gradOut = s.children[i].Backward(gradOut)
	}
	return gradOut
}

// Residual wraps a body module with an identity (or projected) skip
// connection followed by an optional activation — the building block of the
// residual CNNs. When the body changes shape, a projection module (1×1
// strided conv) aligns the skip path.
type Residual struct {
	name string
	body Module
	proj Module // nil for identity skip
	act  Module // applied to the sum, usually ReLU; may be nil
}

var _ Module = (*Residual)(nil)

// NewResidual returns a residual block: act(body(x) + proj(x)). proj and act
// may be nil (identity skip / no activation).
func NewResidual(name string, body, proj, act Module) *Residual {
	return &Residual{name: name, body: body, proj: proj, act: act}
}

// Name implements Module.
func (r *Residual) Name() string { return r.name }

// Kind implements Module.
func (r *Residual) Kind() Kind { return KindContainer }

// Params implements Module.
func (r *Residual) Params() []*Param {
	ps := append([]*Param(nil), r.body.Params()...)
	if r.proj != nil {
		ps = append(ps, r.proj.Params()...)
	}
	if r.act != nil {
		ps = append(ps, r.act.Params()...)
	}
	return ps
}

// Forward implements Module.
func (r *Residual) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	main := ctx.Apply(r.body, x)
	skip := x
	if r.proj != nil {
		skip = ctx.Apply(r.proj, x)
	}
	sum := main.Add(skip)
	if r.act != nil {
		sum = ctx.Apply(r.act, sum)
	}
	return sum
}

// Backward implements Module.
func (r *Residual) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if r.act != nil {
		gradOut = r.act.Backward(gradOut)
	}
	dMain := r.body.Backward(gradOut)
	dSkip := gradOut
	if r.proj != nil {
		dSkip = r.proj.Backward(gradOut)
	}
	return dMain.Add(dSkip)
}

// Flatten reshapes any input to (N, rest).
type Flatten struct {
	name string

	lastShape []int
}

var _ Module = (*Flatten)(nil)

// NewFlatten returns a flattening module.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Module.
func (f *Flatten) Name() string { return f.name }

// Kind implements Module.
func (f *Flatten) Kind() Kind { return KindOther }

// Params implements Module.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Module.
func (f *Flatten) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	f.lastShape = x.Shape()
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Module.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.lastShape...)
}
