package nn

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

const normEps = 1e-5

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial axes. Training mode uses batch statistics and updates running
// estimates; evaluation mode uses the running estimates.
type BatchNorm2D struct {
	name     string
	gamma    *Param // (C)
	beta     *Param // (C)
	runMean  *Param // (C), frozen state
	runVar   *Param // (C), frozen state
	momentum float32

	// Cached state for Backward (training mode).
	lastInput *tensor.Tensor
	lastNorm  *tensor.Tensor
	lastMean  []float32
	lastIStd  []float32
}

var _ Module = (*BatchNorm2D)(nil)

// NewBatchNorm2D returns a batch-normalization layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	b := &BatchNorm2D{
		name:     name,
		gamma:    NewParam(name+".gamma", tensor.Full(1, c)),
		beta:     NewParam(name+".beta", tensor.New(c)),
		runMean:  NewParam(name+".running_mean", tensor.New(c)),
		runVar:   NewParam(name+".running_var", tensor.Full(1, c)),
		momentum: 0.1,
	}
	b.runMean.Frozen = true
	b.runVar.Frozen = true
	return b
}

// Name implements Module.
func (b *BatchNorm2D) Name() string { return b.name }

// Kind implements Module.
func (b *BatchNorm2D) Kind() Kind { return KindBatchNorm }

// Params implements Module. The running statistics are included as frozen
// parameters so model serialization captures them.
func (b *BatchNorm2D) Params() []*Param {
	return []*Param{b.gamma, b.beta, b.runMean, b.runVar}
}

// RunningStats exposes the running mean and variance.
func (b *BatchNorm2D) RunningStats() (mean, variance []float32) {
	return b.runMean.Value.Data(), b.runVar.Value.Data()
}

// Forward implements Module.
func (b *BatchNorm2D) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s expects NCHW input, got %v", b.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != b.gamma.Value.Len() {
		panic(fmt.Sprintf("nn: %s channel mismatch: %d vs %d", b.name, c, b.gamma.Value.Len()))
	}
	training := ctx != nil && ctx.Training
	out := tensor.New(n, c, h, w)
	plane := h * w

	mean := make([]float32, c)
	istd := make([]float32, c)
	if training {
		cnt := float32(n * plane)
		variance := make([]float32, c)
		for ci := 0; ci < c; ci++ {
			var sum float64
			for ni := 0; ni < n; ni++ {
				for _, v := range x.Data()[(ni*c+ci)*plane : (ni*c+ci+1)*plane] {
					sum += float64(v)
				}
			}
			m := float32(sum / float64(cnt))
			var sq float64
			for ni := 0; ni < n; ni++ {
				for _, v := range x.Data()[(ni*c+ci)*plane : (ni*c+ci+1)*plane] {
					d := float64(v - m)
					sq += d * d
				}
			}
			vr := float32(sq / float64(cnt))
			mean[ci] = m
			variance[ci] = vr
			istd[ci] = 1 / float32(math.Sqrt(float64(vr)+normEps))
			b.runMean.Value.Data()[ci] = (1-b.momentum)*b.runMean.Value.Data()[ci] + b.momentum*m
			b.runVar.Value.Data()[ci] = (1-b.momentum)*b.runVar.Value.Data()[ci] + b.momentum*vr
		}
	} else {
		for ci := 0; ci < c; ci++ {
			mean[ci] = b.runMean.Value.Data()[ci]
			istd[ci] = 1 / float32(math.Sqrt(float64(b.runVar.Value.Data()[ci])+normEps))
		}
	}

	norm := tensor.New(n, c, h, w)
	g, bt := b.gamma.Value.Data(), b.beta.Value.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			src := x.Data()[(ni*c+ci)*plane : (ni*c+ci+1)*plane]
			nrm := norm.Data()[(ni*c+ci)*plane : (ni*c+ci+1)*plane]
			dst := out.Data()[(ni*c+ci)*plane : (ni*c+ci+1)*plane]
			m, is, gg, bb := mean[ci], istd[ci], g[ci], bt[ci]
			for i, v := range src {
				xn := (v - m) * is
				nrm[i] = xn
				dst[i] = gg*xn + bb
			}
		}
	}
	if training {
		b.lastInput = x
		b.lastNorm = norm
		b.lastMean = mean
		b.lastIStd = istd
	}
	return out
}

// Backward implements Module (training-mode batch statistics gradient).
func (b *BatchNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if b.lastNorm == nil {
		panic("nn: BatchNorm2D.Backward before training-mode Forward")
	}
	n, c := gradOut.Dim(0), gradOut.Dim(1)
	plane := gradOut.Dim(2) * gradOut.Dim(3)
	cnt := float32(n * plane)
	dx := tensor.New(gradOut.Shape()...)
	g := b.gamma.Value.Data()

	for ci := 0; ci < c; ci++ {
		// Accumulate per-channel sums of g and g·x̂.
		var sumG, sumGX float64
		for ni := 0; ni < n; ni++ {
			off := (ni*c + ci) * plane
			gs := gradOut.Data()[off : off+plane]
			xs := b.lastNorm.Data()[off : off+plane]
			for i, gv := range gs {
				sumG += float64(gv)
				sumGX += float64(gv) * float64(xs[i])
			}
		}
		b.beta.Grad.Data()[ci] += float32(sumG)
		b.gamma.Grad.Data()[ci] += float32(sumGX)

		// dx = γ·istd/N · (N·g − Σg − x̂·Σ(g·x̂))
		k := g[ci] * b.lastIStd[ci] / cnt
		for ni := 0; ni < n; ni++ {
			off := (ni*c + ci) * plane
			gs := gradOut.Data()[off : off+plane]
			xs := b.lastNorm.Data()[off : off+plane]
			ds := dx.Data()[off : off+plane]
			for i, gv := range gs {
				ds[i] = k * (cnt*gv - float32(sumG) - xs[i]*float32(sumGX))
			}
		}
	}
	return dx
}

// LayerNorm normalizes the last axis of a rank-2 (N, D) tensor; higher-rank
// inputs are treated as (Π leading, D).
type LayerNorm struct {
	name  string
	gamma *Param // (D)
	beta  *Param // (D)

	lastNorm *tensor.Tensor
	lastIStd []float32
	lastDims []int
}

var _ Module = (*LayerNorm)(nil)

// NewLayerNorm returns a layer-normalization module over feature width d.
func NewLayerNorm(name string, d int) *LayerNorm {
	return &LayerNorm{
		name:  name,
		gamma: NewParam(name+".gamma", tensor.Full(1, d)),
		beta:  NewParam(name+".beta", tensor.New(d)),
	}
}

// Name implements Module.
func (l *LayerNorm) Name() string { return l.name }

// Kind implements Module.
func (l *LayerNorm) Kind() Kind { return KindLayerNorm }

// Params implements Module.
func (l *LayerNorm) Params() []*Param { return []*Param{l.gamma, l.beta} }

// Forward implements Module.
func (l *LayerNorm) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	d := l.gamma.Value.Len()
	l.lastDims = x.Shape()
	x2 := x.Reshape(-1, d)
	rows := x2.Dim(0)
	out := tensor.New(rows, d)
	norm := tensor.New(rows, d)
	istd := make([]float32, rows)
	g, bt := l.gamma.Value.Data(), l.beta.Value.Data()
	for i := 0; i < rows; i++ {
		src := x2.Data()[i*d : (i+1)*d]
		var sum float64
		for _, v := range src {
			sum += float64(v)
		}
		m := float32(sum / float64(d))
		var sq float64
		for _, v := range src {
			dv := float64(v - m)
			sq += dv * dv
		}
		is := float32(1 / math.Sqrt(sq/float64(d)+normEps))
		istd[i] = is
		nr := norm.Data()[i*d : (i+1)*d]
		dst := out.Data()[i*d : (i+1)*d]
		for j, v := range src {
			xn := (v - m) * is
			nr[j] = xn
			dst[j] = g[j]*xn + bt[j]
		}
	}
	l.lastNorm = norm
	l.lastIStd = istd
	return out.Reshape(l.lastDims...)
}

// Backward implements Module.
func (l *LayerNorm) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.lastNorm == nil {
		panic("nn: LayerNorm.Backward before Forward")
	}
	d := l.gamma.Value.Len()
	g2 := gradOut.Reshape(-1, d)
	rows := g2.Dim(0)
	dx := tensor.New(rows, d)
	g := l.gamma.Value.Data()
	for i := 0; i < rows; i++ {
		gs := g2.Data()[i*d : (i+1)*d]
		xs := l.lastNorm.Data()[i*d : (i+1)*d]
		var sumG, sumGX float64
		for j, gv := range gs {
			gg := float64(gv) * float64(g[j])
			sumG += gg
			sumGX += gg * float64(xs[j])
			l.gamma.Grad.Data()[j] += gv * xs[j]
			l.beta.Grad.Data()[j] += gv
		}
		k := l.lastIStd[i] / float32(d)
		ds := dx.Data()[i*d : (i+1)*d]
		for j, gv := range gs {
			gg := gv * g[j]
			ds[j] = k * (float32(d)*gg - float32(sumG) - xs[j]*float32(sumGX))
		}
	}
	return dx.Reshape(l.lastDims...)
}
