package nn

import (
	"time"

	"goldeneye/internal/tensor"
)

// TimingHooks returns a hook set that measures every layer visit's forward
// wall-clock time and reports it to observe. The pre-forward hook pushes a
// start time; the post-forward hook pops it and reports the elapsed
// duration, so modules that route children through ctx.Apply (attention
// applying its internal linears, for example) nest correctly: the parent's
// duration includes its children's.
//
// Post-forward hooks fire in registration order, so hooks registered
// *before* this set's (i.e. hook sets this one is merged into last) run
// inside the measured window: merging TimingHooks after the emulation and
// injection hooks makes a layer's time include the format emulation and
// fault injection applied to its output — the accounting the paper's Fig 3
// overhead comparison wants. The returned set
// carries per-pass state and must not be shared across concurrent
// contexts; give each campaign worker its own.
func TimingHooks(observe func(layer LayerInfo, d time.Duration)) *HookSet {
	h := NewHookSet()
	var stack []time.Time
	h.PreForward(AllLayers(), func(_ LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		stack = append(stack, time.Now())
		return t
	})
	h.PostForward(AllLayers(), func(info LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		start := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		observe(info, time.Since(start))
		return t
	})
	return h
}
