package nn

import "goldeneye/internal/tensor"

// MaxPool2D is a kxk max-pooling layer over NCHW tensors.
type MaxPool2D struct {
	name      string
	k, stride int

	lastShape []int
	lastArg   []int
}

var _ Module = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pooling module with window k and the given
// stride.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	return &MaxPool2D{name: name, k: k, stride: stride}
}

// Name implements Module.
func (p *MaxPool2D) Name() string { return p.name }

// Kind implements Module.
func (p *MaxPool2D) Kind() Kind { return KindPool }

// Params implements Module.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Module.
func (p *MaxPool2D) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, p.k, p.stride)
	p.lastShape = x.Shape()
	p.lastArg = arg
	return out
}

// Backward implements Module: gradients route to each window's argmax.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.lastArg == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	dx := tensor.New(p.lastShape...)
	n, c := p.lastShape[0], p.lastShape[1]
	plane := p.lastShape[2] * p.lastShape[3]
	oPlane := gradOut.Dim(2) * gradOut.Dim(3)
	for nc := 0; nc < n*c; nc++ {
		dst := dx.Data()[nc*plane : (nc+1)*plane]
		src := gradOut.Data()[nc*oPlane : (nc+1)*oPlane]
		for i, g := range src {
			dst[p.lastArg[nc*oPlane+i]] += g
		}
	}
	return dx
}

// GlobalAvgPool averages each channel plane of an NCHW tensor into a
// rank-2 (N, C) tensor.
type GlobalAvgPool struct {
	name string

	lastShape []int
}

var _ Module = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool returns a global average-pooling module.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Module.
func (p *GlobalAvgPool) Name() string { return p.name }

// Kind implements Module.
func (p *GlobalAvgPool) Kind() Kind { return KindPool }

// Params implements Module.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Module.
func (p *GlobalAvgPool) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	p.lastShape = x.Shape()
	return tensor.AvgPool2DGlobal(x)
}

// Backward implements Module: the gradient spreads uniformly over each
// pooled plane.
func (p *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: GlobalAvgPool.Backward before Forward")
	}
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	dx := tensor.New(n, c, h, w)
	inv := 1 / float32(h*w)
	for nc := 0; nc < n*c; nc++ {
		g := gradOut.Data()[nc] * inv
		dst := dx.Data()[nc*h*w : (nc+1)*h*w]
		for i := range dst {
			dst[i] = g
		}
	}
	return dx
}
