package nn

import "goldeneye/internal/tensor"

// GEMMDepth returns the reduction depth of a layer's GEMM accumulator — the
// number of multiply-accumulate steps each output element sums before the
// bias add — and whether the module is GEMM-backed at all. Linear reduces
// over its input features; Conv2D, lowered through im2col, reduces over
// C·KH·KW. Layers without a GEMM (normalization, activations, pooling)
// report ok=false: they have no accumulator to inject into, which campaign
// validation turns into a configuration error.
func GEMMDepth(m Module) (depth int, ok bool) {
	switch v := m.(type) {
	case *Linear:
		return v.w.Value.Dim(0), true
	case *Conv2D:
		w := v.w.Value
		return w.Dim(1) * w.Dim(2) * w.Dim(3), true
	}
	return 0, false
}

// linearAccumHook translates a layer-coordinate accumulator spec into the
// GEMM coordinates of Linear's x·W matmul: the batch row is the GEMM row
// and the output feature is the GEMM column.
func linearAccumHook(spec AccumSpec) *tensor.AccumHook {
	h := &tensor.AccumHook{Quant: spec.Quant}
	if len(spec.Faults) > 0 {
		h.Faults = make([]tensor.AccumFault, len(spec.Faults))
		for i, f := range spec.Faults {
			h.Faults[i] = tensor.AccumFault{Row: f.Sample, Col: f.Elem, Step: f.Step, Apply: f.Apply}
		}
	}
	return h
}

// convAccumHook translates a layer-coordinate accumulator spec into the
// GEMM coordinates of Conv2D's im2col lowering, W(oc,K) @ col(K,n·plane):
// the output channel (Elem / plane at batch 1) is the GEMM row and the
// (sample, spatial position) pair is the GEMM column.
func convAccumHook(spec AccumSpec, plane int) *tensor.AccumHook {
	h := &tensor.AccumHook{Quant: spec.Quant}
	if len(spec.Faults) > 0 {
		h.Faults = make([]tensor.AccumFault, len(spec.Faults))
		for i, f := range spec.Faults {
			h.Faults[i] = tensor.AccumFault{
				Row:   f.Elem / plane,
				Col:   f.Sample*plane + f.Elem%plane,
				Step:  f.Step,
				Apply: f.Apply,
			}
		}
	}
	return h
}
