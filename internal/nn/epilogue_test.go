package nn

import (
	"math"
	"testing"

	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// epilogueTestModel is a conv→relu→linear stack with enough tensor volume
// to exercise the parallel matmul path.
func epilogueTestModel(t *testing.T) (Module, *tensor.Tensor) {
	t.Helper()
	r := rng.New(11)
	m := NewSequential("m",
		NewConv2D("conv", 3, 8, 3, 1, 1, r),
		NewReLU("relu"),
		NewLinear("fc", 8*8*8, 10, r),
	)
	x := tensor.Randn(r, 1, 4, 3, 8, 8)
	return m, x
}

func assertBitsEqual(t *testing.T, got, want *tensor.Tensor, label string) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: length %d vs %d", label, len(gd), len(wd))
	}
	for i := range gd {
		if math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, gd[i], wd[i])
		}
	}
}

// A fused epilogue must produce bit-identical forward outputs to the
// whole-tensor post hook it replaces, for element-local (FP → Tile),
// whole-tensor (BFP → Whole), and per-row (AxisBatch → Rows) forms.
func TestEpilogueForwardBitIdentical(t *testing.T) {
	formats := []numfmt.Format{
		numfmt.FP16(true),
		numfmt.BFPe5m5(),
		numfmt.AFPe5m2(),
		numfmt.INT8(),
	}
	for _, f := range formats {
		for _, axis := range []numfmt.MetaAxis{numfmt.AxisTensor, numfmt.AxisBatch} {
			m, x := epilogueTestModel(t)

			hooked := NewHookSet()
			hooked.PostForward(DefaultLayers(), func(_ LayerInfo, a *tensor.Tensor) *tensor.Tensor {
				if axis == numfmt.AxisBatch {
					return numfmt.EmulateBatched(f, a)
				}
				return f.Emulate(a)
			})
			want := Forward(NewContext(hooked), m, x)

			fused := NewHookSet()
			fused.PostForwardEpilogue(DefaultLayers(), func(_ LayerInfo, a *tensor.Tensor) *tensor.Tensor {
				if axis == numfmt.AxisBatch {
					return numfmt.EmulateBatched(f, a)
				}
				return f.Emulate(a)
			}, numfmt.EmulateEpilogue(f, axis))
			got := Forward(NewContext(fused), m, x)

			assertBitsEqual(t, got, want, f.Name())
		}
	}
}

// When the epilogue is fused into the layer, the hook's fallback fn must
// not run, and later post hooks must still see the transformed output in
// registration order.
func TestEpilogueSkipsFallbackPreservesOrder(t *testing.T) {
	m, x := epilogueTestModel(t)
	f := numfmt.BFPe5m5()

	fnCalls := 0
	sawEmulated := true
	hooks := NewHookSet()
	hooks.PostForwardEpilogue(DefaultLayers(), func(_ LayerInfo, a *tensor.Tensor) *tensor.Tensor {
		fnCalls++
		return f.Emulate(a)
	}, numfmt.EmulateEpilogue(f, numfmt.AxisTensor))
	hooks.PostForward(DefaultLayers(), func(_ LayerInfo, a *tensor.Tensor) *tensor.Tensor {
		// Downstream hooks (injection, clamping) must observe already-
		// emulated values, exactly as with the unfused composition.
		if !a.AllClose(f.Emulate(a), 0) {
			sawEmulated = false
		}
		return a
	})
	Forward(NewContext(hooks), m, x)
	if fnCalls != 0 {
		t.Fatalf("fallback hook ran %d times despite fused epilogue", fnCalls)
	}
	if !sawEmulated {
		t.Fatal("downstream post hook saw unemulated values")
	}
}

// A layer that is NOT the first matching post hook's target must fall back
// to the hook path: fusing it would reorder the composition.
func TestEpilogueOnlyFirstMatchingHookFuses(t *testing.T) {
	m, x := epilogueTestModel(t)
	f := numfmt.BFPe5m5()

	order := []string{}
	hooks := NewHookSet()
	hooks.PostForward(DefaultLayers(), func(_ LayerInfo, a *tensor.Tensor) *tensor.Tensor {
		order = append(order, "first")
		return a
	})
	hooks.PostForwardEpilogue(DefaultLayers(), func(_ LayerInfo, a *tensor.Tensor) *tensor.Tensor {
		order = append(order, "second")
		return f.Emulate(a)
	}, numfmt.EmulateEpilogue(f, numfmt.AxisTensor))
	Forward(NewContext(hooks), m, x)
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] != "first" || order[i+1] != "second" {
			t.Fatalf("hook order broken: %v", order)
		}
	}
	if len(order) == 0 || len(order)%2 != 0 {
		t.Fatalf("expected paired hook calls, got %v", order)
	}
}

func TestTakeEpilogueNilAndUnstaged(t *testing.T) {
	var nilCtx *Context
	if _, ok := nilCtx.TakeEpilogue(); ok {
		t.Fatal("nil context handed out an epilogue")
	}
	if _, ok := NewContext(nil).TakeEpilogue(); ok {
		t.Fatal("context without hooks handed out an epilogue")
	}
}
