package nn

import (
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// TransformerBlock is a pre-norm transformer encoder block:
// x + MHA(LN(x)) followed by x + MLP(LN(x)), the DeiT/ViT layout.
type TransformerBlock struct {
	name string
	ln1  *LayerNorm
	attn *MultiHeadAttention
	ln2  *LayerNorm
	mlp  *Sequential
}

var _ Module = (*TransformerBlock)(nil)

// NewTransformerBlock returns an encoder block with the given embedding
// dim, head count and MLP expansion ratio.
func NewTransformerBlock(name string, dim, heads, mlpRatio int, r *rng.RNG) *TransformerBlock {
	hidden := dim * mlpRatio
	return &TransformerBlock{
		name: name,
		ln1:  NewLayerNorm(name+".ln1", dim),
		attn: NewMultiHeadAttention(name+".attn", dim, heads, r),
		ln2:  NewLayerNorm(name+".ln2", dim),
		mlp: NewSequential(name+".mlp",
			NewLinear(name+".mlp.fc1", dim, hidden, r),
			NewGELU(name+".mlp.gelu"),
			NewLinear(name+".mlp.fc2", hidden, dim, r),
		),
	}
}

// Name implements Module.
func (b *TransformerBlock) Name() string { return b.name }

// Kind implements Module.
func (b *TransformerBlock) Kind() Kind { return KindContainer }

// Params implements Module.
func (b *TransformerBlock) Params() []*Param {
	ps := append(b.ln1.Params(), b.attn.Params()...)
	ps = append(ps, b.ln2.Params()...)
	return append(ps, b.mlp.Params()...)
}

// Forward implements Module on (N, T, D) input.
func (b *TransformerBlock) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	h := ctx.Apply(b.ln1, x)
	h = ctx.Apply(b.attn, h)
	x = x.Add(h)
	h2 := ctx.Apply(b.ln2, x)
	h2 = ctx.Apply(b.mlp, h2.Reshape(n*t, d)).Reshape(n, t, d)
	return x.Add(h2)
}

// Backward implements Module.
func (b *TransformerBlock) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, t, d := gradOut.Dim(0), gradOut.Dim(1), gradOut.Dim(2)
	// Second residual: grad flows both directly and through mlp∘ln2.
	dMLP := b.mlp.Backward(gradOut.Reshape(n*t, d)).Reshape(n, t, d)
	dMid := gradOut.Add(b.ln2.Backward(dMLP))
	// First residual: through attn∘ln1 and directly.
	dAttn := b.attn.Backward(dMid)
	return dMid.Add(b.ln1.Backward(dAttn))
}

// PatchEmbed lowers an NCHW image into a (N, T, D) token tensor by applying
// a strided convolution (patch size = kernel = stride) and flattening the
// spatial grid, as in ViT/DeiT.
type PatchEmbed struct {
	name string
	conv *Conv2D
	dim  int

	lastGrid [2]int
}

var _ Module = (*PatchEmbed)(nil)

// NewPatchEmbed returns a patch-embedding module mapping inC channels to
// dim-dimensional tokens with the given square patch size.
func NewPatchEmbed(name string, inC, dim, patch int, r *rng.RNG) *PatchEmbed {
	return &PatchEmbed{
		name: name,
		conv: NewConv2D(name+".proj", inC, dim, patch, patch, 0, r),
		dim:  dim,
	}
}

// Name implements Module.
func (p *PatchEmbed) Name() string { return p.name }

// Kind implements Module.
func (p *PatchEmbed) Kind() Kind { return KindEmbed }

// Params implements Module.
func (p *PatchEmbed) Params() []*Param { return p.conv.Params() }

// Forward implements Module.
func (p *PatchEmbed) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	y := ctx.Apply(p.conv, x) // (N, D, gh, gw)
	n, d, gh, gw := y.Dim(0), y.Dim(1), y.Dim(2), y.Dim(3)
	p.lastGrid = [2]int{gh, gw}
	// Permute (N, D, gh*gw) → (N, gh*gw, D).
	out := tensor.New(n, gh*gw, d)
	for ni := 0; ni < n; ni++ {
		for di := 0; di < d; di++ {
			src := y.Data()[(ni*d+di)*gh*gw : (ni*d+di+1)*gh*gw]
			for s, v := range src {
				out.Data()[(ni*gh*gw+s)*d+di] = v
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *PatchEmbed) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, t, d := gradOut.Dim(0), gradOut.Dim(1), gradOut.Dim(2)
	gh, gw := p.lastGrid[0], p.lastGrid[1]
	dy := tensor.New(n, d, gh, gw)
	for ni := 0; ni < n; ni++ {
		for di := 0; di < d; di++ {
			dst := dy.Data()[(ni*d+di)*t : (ni*d+di+1)*t]
			for s := range dst {
				dst[s] = gradOut.Data()[(ni*t+s)*d+di]
			}
		}
	}
	return p.conv.Backward(dy)
}

// TokenPrep prepends a learned class token and adds learned positional
// embeddings to a (N, T, D) token tensor, yielding (N, T+1, D).
type TokenPrep struct {
	name string
	cls  *Param // (1, D)
	pos  *Param // (T+1, D)
}

var _ Module = (*TokenPrep)(nil)

// NewTokenPrep returns the class-token/positional-embedding module for
// sequences of t patch tokens of width dim.
func NewTokenPrep(name string, t, dim int, r *rng.RNG) *TokenPrep {
	return &TokenPrep{
		name: name,
		cls:  NewParam(name+".cls", tensor.Randn(r, 0.02, 1, dim)),
		pos:  NewParam(name+".pos", tensor.Randn(r, 0.02, t+1, dim)),
	}
}

// Name implements Module.
func (p *TokenPrep) Name() string { return p.name }

// Kind implements Module.
func (p *TokenPrep) Kind() Kind { return KindEmbed }

// Params implements Module.
func (p *TokenPrep) Params() []*Param { return []*Param{p.cls, p.pos} }

// Forward implements Module.
func (p *TokenPrep) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(n, t+1, d)
	cls := p.cls.Value.Data()
	pos := p.pos.Value.Data()
	for ni := 0; ni < n; ni++ {
		dst := out.Data()[ni*(t+1)*d : (ni+1)*(t+1)*d]
		for j := 0; j < d; j++ {
			dst[j] = cls[j] + pos[j]
		}
		src := x.Data()[ni*t*d : (ni+1)*t*d]
		for s := 0; s < t; s++ {
			for j := 0; j < d; j++ {
				dst[(s+1)*d+j] = src[s*d+j] + pos[(s+1)*d+j]
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *TokenPrep) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, t1, d := gradOut.Dim(0), gradOut.Dim(1), gradOut.Dim(2)
	t := t1 - 1
	dx := tensor.New(n, t, d)
	for ni := 0; ni < n; ni++ {
		g := gradOut.Data()[ni*t1*d : (ni+1)*t1*d]
		for j := 0; j < d; j++ {
			p.cls.Grad.Data()[j] += g[j]
		}
		for s := 0; s < t1; s++ {
			for j := 0; j < d; j++ {
				p.pos.Grad.Data()[s*d+j] += g[s*d+j]
			}
		}
		dst := dx.Data()[ni*t*d : (ni+1)*t*d]
		for s := 0; s < t; s++ {
			copy(dst[s*d:(s+1)*d], g[(s+1)*d:(s+2)*d])
		}
	}
	return dx
}

// ClsSelect extracts token 0 (the class token) from a (N, T, D) tensor,
// producing (N, D) for the classifier head.
type ClsSelect struct {
	name string

	lastShape []int
}

var _ Module = (*ClsSelect)(nil)

// NewClsSelect returns a class-token selection module.
func NewClsSelect(name string) *ClsSelect { return &ClsSelect{name: name} }

// Name implements Module.
func (c *ClsSelect) Name() string { return c.name }

// Kind implements Module.
func (c *ClsSelect) Kind() Kind { return KindOther }

// Params implements Module.
func (c *ClsSelect) Params() []*Param { return nil }

// Forward implements Module.
func (c *ClsSelect) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	n, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	c.lastShape = []int{n, t, d}
	out := tensor.New(n, d)
	for ni := 0; ni < n; ni++ {
		copy(out.Data()[ni*d:(ni+1)*d], x.Data()[ni*t*d:ni*t*d+d])
	}
	return out
}

// Backward implements Module.
func (c *ClsSelect) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, t, d := c.lastShape[0], c.lastShape[1], c.lastShape[2]
	dx := tensor.New(n, t, d)
	for ni := 0; ni < n; ni++ {
		copy(dx.Data()[ni*t*d:ni*t*d+d], gradOut.Data()[ni*d:(ni+1)*d])
	}
	return dx
}
