package nn

import (
	"math"
	"testing"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// lossOf computes a scalar pseudo-loss Σ(output ⊙ weights) for gradient
// checking; its gradient with respect to the output is exactly `weights`.
func lossOf(m Module, x, weights *tensor.Tensor, training bool) float64 {
	ctx := &Context{Training: training}
	y := m.Forward(ctx, x)
	var s float64
	for i, v := range y.Data() {
		s += float64(v) * float64(weights.Data()[i])
	}
	return s
}

// gradCheck runs m forward+backward once and compares analytic gradients of
// the input and every parameter against central finite differences.
// Tolerances are loose because storage is float32.
func gradCheck(t *testing.T, m Module, x *tensor.Tensor, training bool) {
	t.Helper()
	ctx := &Context{Training: training}
	ZeroGrads(m)
	y := m.Forward(ctx, x)
	r := rng.New(777)
	weights := tensor.RandUniform(r, -1, 1, y.Shape()...)
	dx := m.Backward(weights)

	// Small enough that probes rarely straddle a ReLU/MaxPool kink, large
	// enough that float32 rounding noise stays well under tolerance.
	const eps = 2e-3
	checkOne := func(name string, data []float32, i int, analytic float32) {
		t.Helper()
		orig := data[i]
		data[i] = orig + eps
		up := lossOf(m, x, weights, training)
		data[i] = orig - eps
		down := lossOf(m, x, weights, training)
		data[i] = orig
		numeric := (up - down) / (2 * eps)
		diff := math.Abs(numeric - float64(analytic))
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(float64(analytic))))
		if diff/scale > 0.05 {
			t.Errorf("%s[%d]: analytic %.5f vs numeric %.5f", name, i, analytic, numeric)
		}
	}

	// Probe a deterministic subset of input positions.
	for i := 0; i < x.Len(); i += max(1, x.Len()/17) {
		checkOne("input", x.Data(), i, dx.Data()[i])
	}
	// Probe every parameter tensor.
	for _, p := range m.Params() {
		n := p.Value.Len()
		for i := 0; i < n; i += max(1, n/13) {
			// Re-run forward/backward so cached state matches the probe.
			ZeroGrads(m)
			m.Forward(ctx, x)
			m.Backward(weights)
			checkOne(p.Name, p.Value.Data(), i, p.Grad.Data()[i])
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(1)
	m := NewLinear("fc", 6, 4, r)
	gradCheck(t, m, tensor.Randn(r, 1, 3, 6), false)
}

func TestConv2DGradients(t *testing.T) {
	r := rng.New(2)
	m := NewConv2D("conv", 2, 3, 3, 1, 1, r)
	gradCheck(t, m, tensor.Randn(r, 1, 2, 2, 5, 5), false)
}

func TestConv2DStridedGradients(t *testing.T) {
	r := rng.New(3)
	m := NewConv2D("conv", 3, 4, 3, 2, 1, r)
	gradCheck(t, m, tensor.Randn(r, 1, 2, 3, 6, 6), false)
}

func TestBatchNorm2DGradients(t *testing.T) {
	r := rng.New(4)
	m := NewBatchNorm2D("bn", 3)
	gradCheck(t, m, tensor.Randn(r, 1, 4, 3, 3, 3), true)
}

func TestLayerNormGradients(t *testing.T) {
	r := rng.New(5)
	m := NewLayerNorm("ln", 8)
	gradCheck(t, m, tensor.Randn(r, 1, 5, 8), false)
}

func TestReLUGradients(t *testing.T) {
	r := rng.New(6)
	m := NewReLU("relu")
	gradCheck(t, m, tensor.Randn(r, 1, 4, 7), false)
}

func TestGELUGradients(t *testing.T) {
	r := rng.New(7)
	m := NewGELU("gelu")
	gradCheck(t, m, tensor.Randn(r, 1, 4, 7), false)
}

func TestMaxPool2DGradients(t *testing.T) {
	r := rng.New(8)
	m := NewMaxPool2D("pool", 2, 2)
	gradCheck(t, m, tensor.Randn(r, 1, 2, 2, 4, 4), false)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	r := rng.New(9)
	m := NewGlobalAvgPool("gap")
	gradCheck(t, m, tensor.Randn(r, 1, 2, 3, 4, 4), false)
}

func TestSequentialGradients(t *testing.T) {
	r := rng.New(10)
	m := NewSequential("seq",
		NewLinear("fc1", 5, 8, r),
		NewReLU("relu"),
		NewLinear("fc2", 8, 3, r),
	)
	gradCheck(t, m, tensor.Randn(r, 1, 4, 5), false)
}

func TestResidualGradients(t *testing.T) {
	r := rng.New(11)
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 1, 1, r),
		NewReLU("r1"),
		NewConv2D("c2", 2, 2, 3, 1, 1, r),
	)
	m := NewResidual("res", body, nil, NewReLU("out"))
	gradCheck(t, m, tensor.Randn(r, 1, 2, 2, 4, 4), false)
}

func TestResidualProjectionGradients(t *testing.T) {
	r := rng.New(12)
	body := NewConv2D("c1", 2, 4, 3, 2, 1, r)
	proj := NewConv2D("proj", 2, 4, 1, 2, 0, r)
	m := NewResidual("res", body, proj, NewReLU("out"))
	gradCheck(t, m, tensor.Randn(r, 1, 2, 2, 4, 4), false)
}

func TestMultiHeadAttentionGradients(t *testing.T) {
	r := rng.New(13)
	m := NewMultiHeadAttention("attn", 8, 2, r)
	gradCheck(t, m, tensor.Randn(r, 0.5, 2, 5, 8), false)
}

func TestTransformerBlockGradients(t *testing.T) {
	r := rng.New(14)
	m := NewTransformerBlock("blk", 8, 2, 2, r)
	gradCheck(t, m, tensor.Randn(r, 0.5, 2, 4, 8), false)
}

func TestPatchEmbedGradients(t *testing.T) {
	r := rng.New(15)
	m := NewPatchEmbed("patch", 3, 8, 4, r)
	gradCheck(t, m, tensor.Randn(r, 1, 2, 3, 8, 8), false)
}

func TestTokenPrepGradients(t *testing.T) {
	r := rng.New(16)
	m := NewTokenPrep("prep", 4, 6, r)
	gradCheck(t, m, tensor.Randn(r, 1, 2, 4, 6), false)
}

func TestClsSelectGradients(t *testing.T) {
	r := rng.New(17)
	m := NewClsSelect("cls")
	gradCheck(t, m, tensor.Randn(r, 1, 3, 4, 6), false)
}

func TestFlattenGradients(t *testing.T) {
	r := rng.New(18)
	m := NewFlatten("flat")
	gradCheck(t, m, tensor.Randn(r, 1, 2, 3, 2, 2), false)
}
