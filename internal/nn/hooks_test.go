package nn

import (
	"testing"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func smallNet(r *rng.RNG) Module {
	return NewSequential("net",
		NewLinear("fc1", 4, 8, r),
		NewReLU("relu"),
		NewLinear("fc2", 8, 3, r),
	)
}

func TestHooksFireInRegistrationOrder(t *testing.T) {
	r := rng.New(1)
	net := smallNet(r)
	hooks := NewHookSet()
	var order []string
	hooks.PostForward(Filter{Names: []string{"fc1"}}, func(info LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		order = append(order, "first")
		return x
	})
	hooks.PostForward(Filter{Names: []string{"fc1"}}, func(info LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		order = append(order, "second")
		return x
	})
	ctx := NewContext(hooks)
	Forward(ctx, net, tensor.Randn(r, 1, 2, 4))
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("hook order = %v", order)
	}
}

func TestPostHookReplacesActivation(t *testing.T) {
	r := rng.New(2)
	net := smallNet(r)
	x := tensor.Randn(r, 1, 2, 4)
	clean := Forward(nil, net, x)

	hooks := NewHookSet()
	hooks.PostForward(Filter{Names: []string{"fc2"}}, func(_ LayerInfo, y *tensor.Tensor) *tensor.Tensor {
		return y.Scale(0) // zero out the logits
	})
	got := Forward(NewContext(hooks), net, x)
	if got.AbsMax() != 0 {
		t.Fatal("post hook did not replace the activation")
	}
	if clean.AbsMax() == 0 {
		t.Fatal("sanity: clean logits should be nonzero")
	}
}

func TestPreHookSeesLayerInput(t *testing.T) {
	r := rng.New(3)
	net := smallNet(r)
	hooks := NewHookSet()
	var seen []int
	hooks.PreForward(Filter{Kinds: []Kind{KindLinear}}, func(info LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		seen = append(seen, x.Dim(1))
		return x
	})
	Forward(NewContext(hooks), net, tensor.Randn(r, 1, 2, 4))
	if len(seen) != 2 || seen[0] != 4 || seen[1] != 8 {
		t.Fatalf("pre-hook inputs = %v, want [4 8]", seen)
	}
}

func TestDefaultLayersFilterSkipsActivations(t *testing.T) {
	r := rng.New(4)
	net := smallNet(r)
	hooks := NewHookSet()
	var kinds []Kind
	hooks.PostForward(DefaultLayers(), func(info LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		kinds = append(kinds, info.Kind)
		return x
	})
	Forward(NewContext(hooks), net, tensor.Randn(r, 1, 2, 4))
	if len(kinds) != 2 {
		t.Fatalf("DefaultLayers matched %d layers, want 2 (conv/linear only)", len(kinds))
	}
	for _, k := range kinds {
		if k != KindLinear {
			t.Fatalf("unexpected kind %v", k)
		}
	}
}

func TestByIndexFilter(t *testing.T) {
	r := rng.New(5)
	net := smallNet(r)
	hooks := NewHookSet()
	var names []string
	hooks.PostForward(ByIndex(1), func(info LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		names = append(names, info.Name)
		return x
	})
	Forward(NewContext(hooks), net, tensor.Randn(r, 1, 2, 4))
	if len(names) != 1 || names[0] != "relu" {
		t.Fatalf("ByIndex(1) matched %v, want [relu]", names)
	}
}

func TestContextResetStabilizesIndices(t *testing.T) {
	r := rng.New(6)
	net := smallNet(r)
	hooks := NewHookSet()
	var idx []int
	hooks.PostForward(Filter{Names: []string{"fc1"}}, func(info LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		idx = append(idx, info.Index)
		return x
	})
	ctx := NewContext(hooks)
	x := tensor.Randn(r, 1, 2, 4)
	Forward(ctx, net, x)
	Forward(ctx, net, x)
	if len(idx) != 2 || idx[0] != idx[1] {
		t.Fatalf("layer index unstable across passes: %v", idx)
	}
}

func TestTraceEnumeratesLayers(t *testing.T) {
	r := rng.New(7)
	net := smallNet(r)
	visits := Trace(net, tensor.Randn(r, 1, 1, 4))
	if len(visits) != 3 {
		t.Fatalf("Trace found %d layers, want 3: %v", len(visits), visits)
	}
	wantNames := []string{"fc1", "relu", "fc2"}
	for i, v := range visits {
		if v.Name != wantNames[i] || v.Index != i {
			t.Fatalf("visit %d = %v, want %s", i, v, wantNames[i])
		}
	}
}

func TestNilContextRunsPlain(t *testing.T) {
	r := rng.New(8)
	net := smallNet(r)
	x := tensor.Randn(r, 1, 2, 4)
	// Must not panic and must be deterministic.
	a := Forward(nil, net, x)
	b := Forward(nil, net, x)
	if !a.AllClose(b, 0) {
		t.Fatal("plain forward not deterministic")
	}
}

func TestParamCount(t *testing.T) {
	r := rng.New(9)
	net := smallNet(r)
	// fc1: 4*8+8 = 40; fc2: 8*3+3 = 27.
	if got := ParamCount(net); got != 67 {
		t.Fatalf("ParamCount = %d, want 67", got)
	}
}

func TestZeroGrads(t *testing.T) {
	r := rng.New(10)
	net := smallNet(r)
	ctx := &Context{}
	y := net.Forward(ctx, tensor.Randn(r, 1, 2, 4))
	net.Backward(tensor.Full(1, y.Shape()...))
	ZeroGrads(net)
	for _, p := range net.Params() {
		if p.Grad.AbsMax() != 0 {
			t.Fatalf("gradient of %s not cleared", p.Name)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindConv.String() != "conv" || KindAttention.String() != "attention" || Kind(99).String() != "other" {
		t.Fatal("Kind.String mismatch")
	}
}
