package nn

import (
	"math"
	"testing"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestBatchNormTrainingNormalizes(t *testing.T) {
	r := rng.New(1)
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.Randn(r, 5, 8, 3, 4, 4).AddScalar(10) // mean 10, std 5
	ctx := &Context{Training: true}
	y := bn.Forward(ctx, x)
	// Per channel, output should be ≈ zero-mean unit-variance.
	n, c, plane := 8, 3, 16
	for ci := 0; ci < c; ci++ {
		var sum, sq float64
		for ni := 0; ni < n; ni++ {
			for _, v := range y.Data()[(ni*c+ci)*plane : (ni*c+ci+1)*plane] {
				sum += float64(v)
				sq += float64(v) * float64(v)
			}
		}
		cnt := float64(n * plane)
		mean := sum / cnt
		variance := sq/cnt - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean %v var %v", ci, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := rng.New(2)
	bn := NewBatchNorm2D("bn", 2)
	// Train on data with mean 4 so running stats move toward it.
	x := tensor.Randn(r, 1, 16, 2, 3, 3).AddScalar(4)
	ctx := &Context{Training: true}
	for i := 0; i < 30; i++ {
		bn.Forward(ctx, x)
	}
	mean, _ := bn.RunningStats()
	if math.Abs(float64(mean[0])-4) > 0.5 {
		t.Fatalf("running mean %v did not converge toward 4", mean[0])
	}
	// Eval mode: two identical inputs give identical outputs (no batch
	// dependence), and a different batch composition does not change them.
	eval := &Context{Training: false}
	a := bn.Forward(eval, x.Slice(0, 2))
	b := bn.Forward(eval, x.Slice(0, 4)).Slice(0, 2)
	if !a.AllClose(b, 1e-6) {
		t.Fatal("eval-mode BatchNorm must not depend on batch composition")
	}
}

func TestLayerNormNormalizesRows(t *testing.T) {
	r := rng.New(3)
	ln := NewLayerNorm("ln", 16)
	x := tensor.Randn(r, 3, 5, 16).AddScalar(7)
	y := ln.Forward(nil, x)
	for i := 0; i < 5; i++ {
		var sum, sq float64
		for j := 0; j < 16; j++ {
			v := float64(y.At(i, j))
			sum += v
			sq += v * v
		}
		mean := sum / 16
		variance := sq/16 - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 2e-2 {
			t.Fatalf("row %d: mean %v var %v", i, mean, variance)
		}
	}
}

func TestReLUClampsNegatives(t *testing.T) {
	relu := NewReLU("r")
	x := tensor.FromSlice([]float32{-2, -0.5, 0, 0.5, 2}, 5)
	y := relu.Forward(nil, x)
	want := tensor.FromSlice([]float32{0, 0, 0, 0.5, 2}, 5)
	if !y.AllClose(want, 0) {
		t.Fatalf("ReLU = %v", y)
	}
}

func TestGELUKnownValues(t *testing.T) {
	gelu := NewGELU("g")
	x := tensor.FromSlice([]float32{0, 1, -1, 3}, 4)
	y := gelu.Forward(nil, x)
	// gelu(0)=0, gelu(1)≈0.8412, gelu(-1)≈-0.1588, gelu(3)≈2.9964.
	wants := []float64{0, 0.8412, -0.1588, 2.9964}
	for i, w := range wants {
		if math.Abs(float64(y.At(i))-w) > 1e-3 {
			t.Fatalf("gelu[%d] = %v, want %v", i, y.At(i), w)
		}
	}
}

func TestAttentionRowsAreConvexCombinations(t *testing.T) {
	// With the value projection forced to identity and Q,K zero, attention
	// averages the tokens uniformly. Instead of surgery, check a softer
	// invariant: outputs are finite and deterministic, and permuting the
	// batch permutes outputs (no cross-batch leakage).
	r := rng.New(4)
	attn := NewMultiHeadAttention("attn", 8, 2, r)
	x := tensor.Randn(r, 1, 2, 5, 8)
	y1 := attn.Forward(&Context{}, x)
	if y1.CountNonFinite() != 0 {
		t.Fatal("attention produced non-finite values")
	}
	// Swap the two batch elements.
	xs := tensor.New(2, 5, 8)
	copy(xs.Data()[:40], x.Data()[40:])
	copy(xs.Data()[40:], x.Data()[:40])
	y2 := attn.Forward(&Context{}, xs)
	for i := 0; i < 40; i++ {
		if y1.Data()[i] != y2.Data()[40+i] || y1.Data()[40+i] != y2.Data()[i] {
			t.Fatal("attention mixes information across batch elements")
		}
	}
}

func TestSequentialChildren(t *testing.T) {
	r := rng.New(5)
	seq := NewSequential("s", NewReLU("a"), NewReLU("b"))
	if len(seq.Children()) != 2 {
		t.Fatal("Children() wrong")
	}
	_ = r
}

func TestResidualIdentitySkipPreservesSignal(t *testing.T) {
	// With a body that outputs zeros (zero-init conv), residual output
	// after ReLU equals ReLU(x).
	zeroConv := NewConv2D("c", 2, 2, 3, 1, 1, rng.New(6))
	for _, p := range zeroConv.Params() {
		for i := range p.Value.Data() {
			p.Value.Data()[i] = 0
		}
	}
	res := NewResidual("res", zeroConv, nil, NewReLU("act"))
	x := tensor.Randn(rng.New(7), 1, 1, 2, 4, 4)
	y := res.Forward(&Context{}, x)
	want := x.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if !y.AllClose(want, 1e-6) {
		t.Fatal("identity skip through zero body should equal ReLU(x)")
	}
}

func TestPatchEmbedTokenCount(t *testing.T) {
	r := rng.New(8)
	pe := NewPatchEmbed("p", 3, 16, 4, r)
	x := tensor.Randn(r, 1, 2, 3, 16, 16)
	y := pe.Forward(&Context{}, x)
	if y.Dim(0) != 2 || y.Dim(1) != 16 || y.Dim(2) != 16 {
		t.Fatalf("PatchEmbed output %v, want (2, 16, 16)", y.Shape())
	}
}

func TestTokenPrepPrependsCls(t *testing.T) {
	r := rng.New(9)
	tp := NewTokenPrep("tp", 4, 8, r)
	x := tensor.New(2, 4, 8)
	y := tp.Forward(&Context{}, x)
	if y.Dim(1) != 5 {
		t.Fatalf("TokenPrep output %v, want 5 tokens", y.Shape())
	}
	// Batch elements share the class token (zero input → cls+pos only).
	for j := 0; j < 8; j++ {
		if y.At(0, 0, j) != y.At(1, 0, j) {
			t.Fatal("class token differs across batch")
		}
	}
}

func TestLinearRejectsWrongWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lin := NewLinear("fc", 4, 2, rng.New(10))
	lin.Forward(nil, tensor.New(1, 5))
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	mods := []Module{
		NewLinear("l", 2, 2, rng.New(1)),
		NewConv2D("c", 1, 1, 3, 1, 1, rng.New(1)),
		NewReLU("r"),
		NewMaxPool2D("p", 2, 2),
	}
	for _, m := range mods {
		m := m
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward should panic", m.Name())
				}
			}()
			m.Backward(tensor.New(1, 1))
		}()
	}
}
