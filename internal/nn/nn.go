// Package nn is GoldenEye's DNN substrate: the role PyTorch plays for the
// original system. It provides layer modules with forward and backward
// passes, parameter management, and — centrally for this simulator — a
// layer-granularity hook mechanism equivalent to PyTorch's module hooks,
// which is where number-format emulation and fault injection interpose
// (paper §III-A: "GoldenEye leverages PyTorch's hook functionality to
// perform number format emulation at the layer granularity").
//
// Training support is deliberate: the paper lists number-format emulation
// during training/backpropagation as a feature (§V-B), and this repository
// trains its models in-process so accuracy measurements are meaningful.
package nn

import (
	"fmt"

	"goldeneye/internal/tensor"
)

// Kind classifies a module for hook filtering. The paper hooks CONV and
// LINEAR layers by default "due to their computational intensity" (§V-B);
// every kind is hookable.
type Kind int

// Module kinds.
const (
	KindConv Kind = iota + 1
	KindLinear
	KindBatchNorm
	KindLayerNorm
	KindActivation
	KindPool
	KindAttention
	KindEmbed
	KindContainer
	KindOther
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindLinear:
		return "linear"
	case KindBatchNorm:
		return "batchnorm"
	case KindLayerNorm:
		return "layernorm"
	case KindActivation:
		return "activation"
	case KindPool:
		return "pool"
	case KindAttention:
		return "attention"
	case KindEmbed:
		return "embed"
	case KindContainer:
		return "container"
	default:
		return "other"
	}
}

// Param is a trainable tensor with its gradient accumulator. Frozen
// parameters (e.g. BatchNorm running statistics) are model state that is
// serialized with the model but skipped by optimizers.
type Param struct {
	Name   string
	Value  *tensor.Tensor
	Grad   *tensor.Tensor
	Frozen bool
}

// NewParam allocates a parameter and its zeroed gradient.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Shape()...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	data := p.Grad.Data()
	for i := range data {
		data[i] = 0
	}
}

// Module is a neural-network layer or container. Forward caches whatever
// Backward needs, so a module instance must not be shared across concurrent
// passes; clone models for parallel campaigns instead.
type Module interface {
	// Name returns the module's unique name within its model.
	Name() string

	// Kind classifies the module for hook filtering.
	Kind() Kind

	// Forward computes the module's output. Implementations of composite
	// modules must route children through ctx.Apply so hooks fire.
	Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor

	// Backward propagates gradOut (d-loss/d-output) to the input gradient,
	// accumulating parameter gradients along the way. It must be called
	// after Forward on the same instance.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor

	// Params returns the module's trainable parameters (nil if none).
	Params() []*Param
}

// LayerInfo describes a module visit during a forward pass, as seen by
// hooks and the layer tracer.
type LayerInfo struct {
	Name  string
	Kind  Kind
	Index int // visit order within the forward pass, 0-based
}

// String renders "index:name(kind)".
func (l LayerInfo) String() string {
	return fmt.Sprintf("%d:%s(%s)", l.Index, l.Name, l.Kind)
}

// Context threads hook state and mode flags through a forward pass. A nil
// Context is valid and means "plain inference, no hooks".
type Context struct {
	// Training selects training-mode behaviour (e.g. BatchNorm batch
	// statistics).
	Training bool

	hooks   *HookSet
	visit   int
	visitor func(Module, LayerInfo)

	// Epilogue hand-off between Apply and the current module's Forward:
	// Apply stages the fusible epilogue of the layer being visited;
	// epilogue-aware Forwards claim it through TakeEpilogue, which flips
	// epConsumed so Apply knows to skip the corresponding post hook.
	pendingEp      tensor.Epilogue
	pendingEpValid bool
	epConsumed     bool

	// Accumulator-spec hand-off, parallel to the epilogue staging: Apply
	// stages the merged AccumSpec of the layer being visited; GEMM-backed
	// Forwards claim it through TakeAccum. Unlike an epilogue, consuming a
	// spec skips no hook — the spec has no hook-function fallback, it only
	// exists inside the reduction.
	pendingAccum      AccumSpec
	pendingAccumValid bool
}

// NewContext returns a context carrying the given hooks (may be nil).
func NewContext(hooks *HookSet) *Context {
	return &Context{hooks: hooks}
}

// SetVisitor registers fn to observe every non-container module visit,
// alongside whatever hooks run. Structural indexers (detect's ABFT weight
// checksums, the module index) use it to join hook-visible layer indices
// with the modules behind them.
func (c *Context) SetVisitor(fn func(Module, LayerInfo)) { c.visitor = fn }

// Apply runs module m on x, firing pre- and post-forward hooks around it.
// All composite modules route children through this method; it is the
// single interposition point of the simulator. Pure containers (Sequential,
// Residual, blocks) are transparent: they get no hooks and no layer index,
// so "layer" always means a computational module.
func (c *Context) Apply(m Module, x *tensor.Tensor) *tensor.Tensor {
	if c == nil || (c.hooks == nil && c.visitor == nil) || m.Kind() == KindContainer {
		return m.Forward(c, x)
	}
	info := LayerInfo{Name: m.Name(), Kind: m.Kind(), Index: c.visit}
	c.visit++
	if c.visitor != nil {
		c.visitor(m, info)
	}
	if c.hooks == nil {
		return m.Forward(c, x)
	}
	x = c.hooks.runPre(info, x)
	// Stage this layer's fusible epilogue for the duration of its Forward.
	// The previous staging is saved and restored because composite modules
	// re-enter Apply for their children mid-Forward.
	savedEp, savedValid, savedConsumed := c.pendingEp, c.pendingEpValid, c.epConsumed
	savedAc, savedAcValid := c.pendingAccum, c.pendingAccumValid
	epIdx := -1
	c.pendingEp, c.pendingEpValid, c.epConsumed = tensor.Epilogue{}, false, false
	c.pendingAccum, c.pendingAccumValid = AccumSpec{}, false
	if ep, idx, ok := c.hooks.fusibleEpilogue(info); ok {
		c.pendingEp, epIdx = ep, idx
		c.pendingEpValid = true
	}
	if c.hooks.hasAccum() {
		if spec := c.hooks.accumSpec(info); !spec.Empty() {
			c.pendingAccum, c.pendingAccumValid = spec, true
		}
	}
	y := m.Forward(c, x)
	consumed := c.epConsumed
	c.pendingEp, c.pendingEpValid, c.epConsumed = savedEp, savedValid, savedConsumed
	c.pendingAccum, c.pendingAccumValid = savedAc, savedAcValid
	if consumed {
		return c.hooks.runPostSkip(info, y, epIdx)
	}
	return c.hooks.runPost(info, y)
}

// TakeEpilogue claims the epilogue staged for the module currently being
// forwarded, if any. A module that receives ok=true must apply the
// epilogue to its output exactly once — the hook it was fused from will
// not run for this visit. Safe on a nil context (no epilogue). Modules
// that never call TakeEpilogue are unaffected: their hooks run as always.
func (c *Context) TakeEpilogue() (tensor.Epilogue, bool) {
	if c == nil || !c.pendingEpValid || c.epConsumed {
		return tensor.Epilogue{}, false
	}
	c.epConsumed = true
	return c.pendingEp, true
}

// TakeAccum claims the accumulator spec staged for the module currently
// being forwarded, if any. GEMM-backed modules translate the spec into
// matrix coordinates and thread it into their reduction; modules without a
// GEMM never call this and the spec evaporates at the end of the visit.
// Safe on a nil context (no spec).
func (c *Context) TakeAccum() (AccumSpec, bool) {
	if c == nil || !c.pendingAccumValid {
		return AccumSpec{}, false
	}
	c.pendingAccumValid = false
	return c.pendingAccum, true
}

// Reset clears the per-pass visit counter; call between forward passes when
// reusing a context.
func (c *Context) Reset() {
	if c != nil {
		c.visit = 0
	}
}

// Forward is a convenience that resets the context and applies the root
// module, so layer indices are stable across passes.
func Forward(ctx *Context, m Module, x *tensor.Tensor) *tensor.Tensor {
	ctx.Reset()
	if ctx == nil {
		return m.Forward(nil, x)
	}
	return ctx.Apply(m, x)
}

// ParamCount returns the total number of scalar parameters of a module.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// ZeroGrads clears every parameter gradient of a module.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}
