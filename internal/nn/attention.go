package nn

import (
	"fmt"
	"math"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// MultiHeadAttention is standard scaled dot-product self-attention over
// (N, T, D) token tensors, with fused QKV and output projections. The
// projections are Linear children routed through the context, so format
// emulation and fault injection hook them like any other LINEAR layer.
type MultiHeadAttention struct {
	name  string
	dim   int
	heads int
	qkv   *Linear // D → 3D
	proj  *Linear // D → D

	lastShape []int            // (N, T, D)
	lastQKV   *tensor.Tensor   // (N*T, 3D)
	lastAttn  []*tensor.Tensor // per (n*heads+h): (T, T) softmax matrix
}

var _ Module = (*MultiHeadAttention)(nil)

// NewMultiHeadAttention returns a self-attention module with the given
// embedding dim and head count (dim must divide evenly).
func NewMultiHeadAttention(name string, dim, heads int, r *rng.RNG) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by %d heads", dim, heads))
	}
	return &MultiHeadAttention{
		name:  name,
		dim:   dim,
		heads: heads,
		qkv:   NewLinear(name+".qkv", dim, 3*dim, r),
		proj:  NewLinear(name+".proj", dim, dim, r),
	}
}

// Name implements Module.
func (m *MultiHeadAttention) Name() string { return m.name }

// Kind implements Module.
func (m *MultiHeadAttention) Kind() Kind { return KindAttention }

// Params implements Module.
func (m *MultiHeadAttention) Params() []*Param {
	return append(m.qkv.Params(), m.proj.Params()...)
}

// headSlice extracts (T, dh) for batch n, head h from a (N*T, stride)
// matrix; which selects Q (0), K (1) or V (2) within the row (always 0 for
// single-projection matrices with stride = dim).
func (m *MultiHeadAttention) headSlice(mat *tensor.Tensor, n, t, h, which, stride int) *tensor.Tensor {
	dh := m.dim / m.heads
	out := tensor.New(t, dh)
	for ti := 0; ti < t; ti++ {
		row := mat.Data()[(n*t+ti)*stride:]
		src := row[which*m.dim+h*dh : which*m.dim+(h+1)*dh]
		copy(out.Data()[ti*dh:(ti+1)*dh], src)
	}
	return out
}

func (m *MultiHeadAttention) scatterHead(dst *tensor.Tensor, src *tensor.Tensor, n, t, h, which, stride int) {
	dh := m.dim / m.heads
	for ti := 0; ti < t; ti++ {
		row := dst.Data()[(n*t+ti)*stride:]
		copy(row[which*m.dim+h*dh:which*m.dim+(h+1)*dh], src.Data()[ti*dh:(ti+1)*dh])
	}
}

// Forward implements Module on (N, T, D) input.
func (m *MultiHeadAttention) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(2) != m.dim {
		panic(fmt.Sprintf("nn: %s expects (N, T, %d), got %v", m.name, m.dim, x.Shape()))
	}
	n, t := x.Dim(0), x.Dim(1)
	m.lastShape = x.Shape()

	qkv := ctx.Apply(m.qkv, x.Reshape(n*t, m.dim)) // (N*T, 3D)
	m.lastQKV = qkv
	m.lastAttn = make([]*tensor.Tensor, n*m.heads)

	dh := m.dim / m.heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	mixed := tensor.New(n*t, m.dim)
	for ni := 0; ni < n; ni++ {
		for h := 0; h < m.heads; h++ {
			q := m.headSlice(qkv, ni, t, h, 0, 3*m.dim)
			k := m.headSlice(qkv, ni, t, h, 1, 3*m.dim)
			v := m.headSlice(qkv, ni, t, h, 2, 3*m.dim)
			scores := q.MatMulT(k)
			scores.ScaleInPlace(scale)
			attn := scores.SoftmaxRows()
			m.lastAttn[ni*m.heads+h] = attn
			out := attn.MatMul(v) // (T, dh)
			m.scatterHead(mixed, out, ni, t, h, 0, m.dim)
		}
	}
	y := ctx.Apply(m.proj, mixed) // (N*T, D)
	return y.Reshape(n, t, m.dim)
}

// Backward implements Module.
func (m *MultiHeadAttention) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if m.lastQKV == nil {
		panic("nn: MultiHeadAttention.Backward before Forward")
	}
	n, t := m.lastShape[0], m.lastShape[1]
	dh := m.dim / m.heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	dMixed := m.proj.Backward(gradOut.Reshape(n*t, m.dim)) // (N*T, D)
	dQKV := tensor.New(n*t, 3*m.dim)
	for ni := 0; ni < n; ni++ {
		for h := 0; h < m.heads; h++ {
			attn := m.lastAttn[ni*m.heads+h]
			q := m.headSlice(m.lastQKV, ni, t, h, 0, 3*m.dim)
			k := m.headSlice(m.lastQKV, ni, t, h, 1, 3*m.dim)
			v := m.headSlice(m.lastQKV, ni, t, h, 2, 3*m.dim)
			dOut := m.headSlice(dMixed, ni, t, h, 0, m.dim)

			dAttn := dOut.MatMulT(v) // (T, T)
			dV := attn.TMatMul(dOut) // (T, dh)

			// Softmax backward per row: dS = A ⊙ (dA − rowSum(dA ⊙ A)).
			dScores := tensor.New(t, t)
			for i := 0; i < t; i++ {
				ar := attn.Data()[i*t : (i+1)*t]
				dr := dAttn.Data()[i*t : (i+1)*t]
				var dot float64
				for j := range ar {
					dot += float64(ar[j]) * float64(dr[j])
				}
				ds := dScores.Data()[i*t : (i+1)*t]
				for j := range ar {
					ds[j] = ar[j] * (dr[j] - float32(dot))
				}
			}
			dScores.ScaleInPlace(scale)

			dQ := dScores.MatMul(k)  // (T, dh)
			dK := dScores.TMatMul(q) // (T, dh)

			m.scatterHead(dQKV, dQ, ni, t, h, 0, 3*m.dim)
			m.scatterHead(dQKV, dK, ni, t, h, 1, 3*m.dim)
			m.scatterHead(dQKV, dV, ni, t, h, 2, 3*m.dim)
		}
	}
	dx := m.qkv.Backward(dQKV) // (N*T, D)
	return dx.Reshape(n, t, m.dim)
}
