package nn

import (
	"math"
	"testing"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestGEMMDepth(t *testing.T) {
	r := rng.New(1)
	if d, ok := GEMMDepth(NewLinear("fc", 12, 5, r)); !ok || d != 12 {
		t.Fatalf("linear depth = %d,%v, want 12,true", d, ok)
	}
	if d, ok := GEMMDepth(NewConv2D("c", 3, 8, 3, 1, 1, r)); !ok || d != 3*3*3 {
		t.Fatalf("conv depth = %d,%v, want 27,true", d, ok)
	}
	if _, ok := GEMMDepth(NewReLU("relu")); ok {
		t.Fatal("ReLU reported a GEMM depth")
	}
}

// A Linear accumulator fault in layer coordinates (Sample, Elem) must land
// on exactly output[Sample][Elem] — every sibling element of every batch
// row stays bit-identical to the clean pass.
func TestLinearAccumFaultCoordinates(t *testing.T) {
	r := rng.New(4)
	net := NewSequential("net", NewLinear("fc", 6, 5, r))
	x := tensor.Randn(r, 1, 3, 6)
	clean := Forward(nil, net, x)

	const sample, elem = 2, 3
	hooks := NewHookSet()
	hooks.Accum(AllLayers(), func(info LayerInfo) AccumSpec {
		if info.Kind != KindLinear {
			return AccumSpec{}
		}
		return AccumSpec{Faults: []AccumFault{{
			Sample: sample, Elem: elem, Step: 2,
			Apply: func(float32) float32 { return 1e6 },
		}}}
	})
	got := Forward(NewContext(hooks), net, x)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			same := math.Float32bits(got.At(i, j)) == math.Float32bits(clean.At(i, j))
			if i == sample && j == elem {
				if same {
					t.Fatalf("faulted element (%d,%d) unchanged", i, j)
				}
				continue
			}
			if !same {
				t.Fatalf("clean element (%d,%d) corrupted: %v vs %v", i, j, got.At(i, j), clean.At(i, j))
			}
		}
	}
}

// A Conv2D accumulator fault's flat Elem index (the layer's batch-1 output
// coordinate space, as campaign fault draws use) must land on exactly that
// (channel, spatial) position of exactly that sample.
func TestConvAccumFaultCoordinates(t *testing.T) {
	r := rng.New(6)
	net := NewSequential("net", NewConv2D("c", 2, 4, 3, 1, 1, r))
	const batch, side = 2, 5
	x := tensor.Randn(r, 1, batch, 2, side, side)
	clean := Forward(nil, net, x)
	plane := side * side // stride 1, pad 1: spatial dims preserved

	const sample, elem = 1, 2*25 + 7 // channel 2, spatial position 7
	hooks := NewHookSet()
	hooks.Accum(AllLayers(), func(info LayerInfo) AccumSpec {
		return AccumSpec{Faults: []AccumFault{{
			Sample: sample, Elem: elem, Step: 0,
			Apply: func(float32) float32 { return 1e6 },
		}}}
	})
	got := Forward(NewContext(hooks), net, x)
	cd, gd := clean.Data(), got.Data()
	perSample := 4 * plane
	for i := range cd {
		same := math.Float32bits(gd[i]) == math.Float32bits(cd[i])
		if i == sample*perSample+elem {
			if same {
				t.Fatalf("faulted element %d unchanged", i)
			}
			continue
		}
		if !same {
			t.Fatalf("clean element %d corrupted: %v vs %v", i, gd[i], cd[i])
		}
	}
}

// Accum specs from multiple entries merge: the first non-nil Quant wins
// and fault lists concatenate — the emulation-then-injection layering the
// campaign engine relies on.
func TestAccumSpecMerge(t *testing.T) {
	r := rng.New(8)
	net := NewSequential("net", NewLinear("fc", 4, 3, r))
	x := tensor.Randn(r, 1, 1, 4)

	quant := func(v float32) float32 {
		return math.Float32frombits(math.Float32bits(v) &^ 0xFFFF)
	}
	quantOnly := NewHookSet()
	quantOnly.Accum(AllLayers(), func(LayerInfo) AccumSpec { return AccumSpec{Quant: quant} })
	wantQuant := Forward(NewContext(quantOnly), net, x)

	merged := NewHookSet()
	merged.Accum(AllLayers(), func(LayerInfo) AccumSpec { return AccumSpec{Quant: quant} })
	merged.Accum(AllLayers(), func(LayerInfo) AccumSpec {
		return AccumSpec{Faults: []AccumFault{{
			Sample: 0, Elem: 1, Step: 1,
			Apply: func(v float32) float32 { return v + 64 },
		}}}
	})
	got := Forward(NewContext(merged), net, x)
	for j := 0; j < 3; j++ {
		same := math.Float32bits(got.At(0, j)) == math.Float32bits(wantQuant.At(0, j))
		if j == 1 && same {
			t.Fatal("merged fault did not fire on the quantized reduction")
		}
		if j != 1 && !same {
			t.Fatalf("merged spec changed quant-only element %d", j)
		}
	}
}
