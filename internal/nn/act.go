package nn

import (
	"math"

	"goldeneye/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	name string

	lastInput *tensor.Tensor
}

var _ Module = (*ReLU)(nil)

// NewReLU returns a ReLU activation module.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Module.
func (a *ReLU) Name() string { return a.name }

// Kind implements Module.
func (a *ReLU) Kind() Kind { return KindActivation }

// Params implements Module.
func (a *ReLU) Params() []*Param { return nil }

// Forward implements Module.
func (a *ReLU) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	a.lastInput = x
	return x.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
}

// Backward implements Module.
func (a *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if a.lastInput == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	dx := gradOut.Clone()
	in := a.lastInput.Data()
	dd := dx.Data()
	for i := range dd {
		if in[i] < 0 {
			dd[i] = 0
		}
	}
	return dx
}

// GELU is the Gaussian-error linear unit with the tanh approximation used
// by transformer MLP blocks.
type GELU struct {
	name string

	lastInput *tensor.Tensor
}

var _ Module = (*GELU)(nil)

// NewGELU returns a GELU activation module.
func NewGELU(name string) *GELU { return &GELU{name: name} }

// Name implements Module.
func (a *GELU) Name() string { return a.name }

// Kind implements Module.
func (a *GELU) Kind() Kind { return KindActivation }

// Params implements Module.
func (a *GELU) Params() []*Param { return nil }

const (
	geluC0 = 0.7978845608028654 // √(2/π)
	geluC1 = 0.044715
)

func geluValue(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC0*(x+geluC1*x*x*x)))
}

func geluGrad(x float64) float64 {
	inner := geluC0 * (x + geluC1*x*x*x)
	t := math.Tanh(inner)
	sech2 := 1 - t*t
	return 0.5*(1+t) + 0.5*x*sech2*geluC0*(1+3*geluC1*x*x)
}

// Forward implements Module.
func (a *GELU) Forward(_ *Context, x *tensor.Tensor) *tensor.Tensor {
	a.lastInput = x
	return x.Apply(func(v float32) float32 {
		return float32(geluValue(float64(v)))
	})
}

// Backward implements Module.
func (a *GELU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if a.lastInput == nil {
		panic("nn: GELU.Backward before Forward")
	}
	dx := gradOut.Clone()
	in := a.lastInput.Data()
	dd := dx.Data()
	for i := range dd {
		dd[i] *= float32(geluGrad(float64(in[i])))
	}
	return dx
}
