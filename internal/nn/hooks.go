package nn

import "goldeneye/internal/tensor"

// HookFunc observes or transforms a tensor flowing into (pre) or out of
// (post) a module. Returning the input unchanged is allowed; returning a new
// tensor replaces the activation, which is how format emulation and neuron
// fault injection are realized. A hook fires once per forward pass
// regardless of the batch size — a batched campaign pass hands the hook
// the whole multi-row activation (see inject.NeuronHookBatched), not one
// call per row.
type HookFunc func(layer LayerInfo, t *tensor.Tensor) *tensor.Tensor

// Filter selects which layer visits a hook fires on. The zero value matches
// every layer; restrictions combine with AND.
type Filter struct {
	// Kinds restricts matching to the listed kinds (nil = all kinds).
	Kinds []Kind

	// Names restricts matching to the listed module names (nil = all).
	Names []string

	// HasIndex restricts matching to the single visit Index.
	HasIndex bool
	Index    int
}

// AllLayers matches everything.
func AllLayers() Filter { return Filter{} }

// DefaultLayers matches CONV and LINEAR layers, the paper's default hook
// targets (§V-B).
func DefaultLayers() Filter {
	return Filter{Kinds: []Kind{KindConv, KindLinear}}
}

// ByIndex matches a single layer visit.
func ByIndex(i int) Filter { return Filter{HasIndex: true, Index: i} }

// Matches reports whether the filter selects the given layer visit — the
// same predicate hook dispatch uses, exported so callers building per-layer
// configuration (format assignments) can resolve scope consistently.
func (f Filter) Matches(info LayerInfo) bool { return f.matches(info) }

func (f Filter) matches(info LayerInfo) bool {
	if f.HasIndex && f.Index != info.Index {
		return false
	}
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if k == info.Kind {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Names) > 0 {
		ok := false
		for _, n := range f.Names {
			if n == info.Name {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

type hookEntry struct {
	filter Filter
	fn     HookFunc

	// ep, when non-empty, is an in-place equivalent of fn that the
	// producing layer may fuse into its output computation (see
	// PostForwardEpilogue). fn remains the fallback for layers that do not
	// consume epilogues.
	ep tensor.Epilogue

	// epFor, when non-nil, selects the epilogue per layer visit instead of
	// the fixed ep (see PostForwardEpilogueBy) — the mixed-precision path,
	// where each layer may run a different format's fused kernel. An empty
	// result means "no fusion for this visit" and fn runs as usual.
	epFor func(LayerInfo) tensor.Epilogue
}

// HookSet holds the registered pre- and post-forward hooks of a simulation
// run. Hooks fire in registration order; post-forward hooks compose, so an
// injection hook registered after an emulation hook sees emulated values —
// the order the paper's injection pipeline implies (quantize, flip, write
// back).
type HookSet struct {
	pre   []hookEntry
	post  []hookEntry
	accum []accumEntry
}

// NewHookSet returns an empty hook set.
func NewHookSet() *HookSet { return &HookSet{} }

// Merge appends every hook of other (in order) to h. Pre-existing hooks of
// h keep firing first.
func (h *HookSet) Merge(other *HookSet) {
	if other == nil {
		return
	}
	h.pre = append(h.pre, other.pre...)
	h.post = append(h.post, other.post...)
	h.accum = append(h.accum, other.accum...)
}

// PreForward registers fn to run on the input of every layer matching f.
func (h *HookSet) PreForward(f Filter, fn HookFunc) {
	h.pre = append(h.pre, hookEntry{filter: f, fn: fn})
}

// PostForward registers fn to run on the output of every layer matching f.
func (h *HookSet) PostForward(f Filter, fn HookFunc) {
	h.post = append(h.post, hookEntry{filter: f, fn: fn})
}

// PostForwardEpilogue registers fn like PostForward, additionally carrying
// an in-place epilogue form of the same transform. When the hook is the
// first post hook matching a layer and that layer's Forward fuses
// epilogues (Linear, Conv2D), the layer applies ep to its output while it
// is cache-hot and fn is skipped for that visit; in every other situation
// fn runs exactly as a plain PostForward hook would. ep and fn must
// compute the same values — the campaign engine registers the fused
// emulation kernel as ep and whole-tensor Emulate as fn, which are pinned
// bit-identical. An empty ep degrades to PostForward.
func (h *HookSet) PostForwardEpilogue(f Filter, fn HookFunc, ep tensor.Epilogue) {
	h.post = append(h.post, hookEntry{filter: f, fn: fn, ep: ep})
}

// PostForwardEpilogueBy is PostForwardEpilogue with a per-visit epilogue
// selector, for hooks whose in-place transform differs by layer — the
// mixed-precision assignment path, where each layer may run a different
// format's fused kernel. epFor is consulted at most once per matching
// visit; an empty result means no fusion for that visit and fn runs as a
// plain post hook. The same bit-identity contract applies per visit: the
// selected epilogue and fn must compute the same values there.
func (h *HookSet) PostForwardEpilogueBy(f Filter, fn HookFunc, epFor func(LayerInfo) tensor.Epilogue) {
	h.post = append(h.post, hookEntry{filter: f, fn: fn, epFor: epFor})
}

// AccumFault is one scheduled corruption of a layer's GEMM accumulator, in
// layer coordinates: Sample is the batch row of the forward pass, Elem the
// flat output element index the layer reports at batch 1, Step the
// multiply-accumulate step ([0, reduction depth), see GEMMDepth) after
// which Apply rewrites the partial sum. GEMM-backed layers translate these
// into tensor.AccumFault matrix coordinates.
type AccumFault struct {
	Sample int
	Elem   int
	Step   int
	Apply  func(float32) float32
}

// AccumSpec declares accumulator-interior behaviour for one layer visit:
// an optional reduced-precision accumulator rounding (Quant, applied to
// every partial sum) and scheduled mid-reduction faults. Only GEMM-backed
// layers (Linear, Conv2D) consume accumulator specs; other layer kinds
// ignore them.
type AccumSpec struct {
	Quant  func(float32) float32
	Faults []AccumFault
}

// Empty reports whether the spec changes nothing.
func (s AccumSpec) Empty() bool { return s.Quant == nil && len(s.Faults) == 0 }

type accumEntry struct {
	filter Filter
	fn     func(LayerInfo) AccumSpec
}

// Accum registers fn to provide the accumulator spec of every layer visit
// matching f. Specs from multiple matching entries merge: the first
// non-nil Quant wins (the emulation layer registers it before the
// injection layer adds faults) and fault lists concatenate in registration
// order.
func (h *HookSet) Accum(f Filter, fn func(LayerInfo) AccumSpec) {
	h.accum = append(h.accum, accumEntry{filter: f, fn: fn})
}

// hasAccum reports whether any accumulator entries are registered, so
// Apply can skip the staging machinery entirely on the legacy path.
func (h *HookSet) hasAccum() bool { return len(h.accum) > 0 }

// accumSpec merges the accumulator specs of every entry matching info.
func (h *HookSet) accumSpec(info LayerInfo) AccumSpec {
	var spec AccumSpec
	for _, e := range h.accum {
		if !e.filter.matches(info) {
			continue
		}
		s := e.fn(info)
		if spec.Quant == nil {
			spec.Quant = s.Quant
		}
		spec.Faults = append(spec.Faults, s.Faults...)
	}
	return spec
}

// fusibleEpilogue returns the epilogue a layer visit may fuse, with the
// index of the hook entry it replaces. Only the FIRST matching post hook
// is eligible: a fused epilogue runs inside the layer's Forward, i.e.
// before every other post hook, so fusing a later entry would reorder the
// composition (emulate→inject must stay emulate→inject).
func (h *HookSet) fusibleEpilogue(info LayerInfo) (tensor.Epilogue, int, bool) {
	for i, e := range h.post {
		if !e.filter.matches(info) {
			continue
		}
		ep := e.ep
		if e.epFor != nil {
			ep = e.epFor(info)
		}
		if ep.Empty() {
			return tensor.Epilogue{}, -1, false
		}
		return ep, i, true
	}
	return tensor.Epilogue{}, -1, false
}

func (h *HookSet) runPre(info LayerInfo, t *tensor.Tensor) *tensor.Tensor {
	for _, e := range h.pre {
		if e.filter.matches(info) {
			t = e.fn(info, t)
		}
	}
	return t
}

func (h *HookSet) runPost(info LayerInfo, t *tensor.Tensor) *tensor.Tensor {
	return h.runPostSkip(info, t, -1)
}

// runPostSkip runs the post hooks in registration order, skipping the
// entry at index skip (the hook whose epilogue the layer already applied).
func (h *HookSet) runPostSkip(info LayerInfo, t *tensor.Tensor, skip int) *tensor.Tensor {
	for i, e := range h.post {
		if i == skip || !e.filter.matches(info) {
			continue
		}
		t = e.fn(info, t)
	}
	return t
}

// Trace runs a forward pass recording every layer visit, without hooks
// interfering. It is how campaigns enumerate injectable layers.
func Trace(m Module, x *tensor.Tensor) []LayerInfo {
	var visits []LayerInfo
	hooks := NewHookSet()
	hooks.PostForward(AllLayers(), func(info LayerInfo, t *tensor.Tensor) *tensor.Tensor {
		visits = append(visits, info)
		return t
	})
	ctx := NewContext(hooks)
	Forward(ctx, m, x)
	return visits
}

// TraceModules runs a forward pass recording each visited module keyed by
// its visit index — the join between the layer indices hooks see and the
// modules (and parameters) behind them, which structural detectors such as
// ABFT weight checksums need.
func TraceModules(m Module, x *tensor.Tensor) map[int]Module {
	mods := make(map[int]Module)
	ctx := NewContext(nil)
	ctx.SetVisitor(func(mod Module, info LayerInfo) { mods[info.Index] = mod })
	Forward(ctx, m, x)
	return mods
}
