package dataset

import (
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	cfg := Default()
	ds := New(cfg)
	wantTrain := cfg.Classes * cfg.TrainPerClass
	wantVal := cfg.Classes * cfg.ValPerClass
	if ds.TrainLen() != wantTrain || ds.ValLen() != wantVal {
		t.Fatalf("sizes: train %d val %d, want %d/%d", ds.TrainLen(), ds.ValLen(), wantTrain, wantVal)
	}
	shape := ds.TrainX.Shape()
	if shape[1] != cfg.Channels || shape[2] != cfg.Height || shape[3] != cfg.Width {
		t.Fatalf("train shape %v", shape)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Default())
	b := New(Default())
	if !a.TrainX.AllClose(b.TrainX, 0) || !a.ValX.AllClose(b.ValX, 0) {
		t.Fatal("same config must produce identical data")
	}
	for i := range a.TrainY {
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := Default()
	a := New(cfg)
	cfg.Seed++
	b := New(cfg)
	if a.TrainX.AllClose(b.TrainX, 1e-6) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestLabelsAreBalancedAndInterleaved(t *testing.T) {
	cfg := Default()
	ds := New(cfg)
	counts := make([]int, cfg.Classes)
	for i, y := range ds.TrainY {
		counts[y]++
		if y != i%cfg.Classes {
			t.Fatalf("labels not interleaved at %d", i)
		}
	}
	for k, c := range counts {
		if c != cfg.TrainPerClass {
			t.Fatalf("class %d has %d samples, want %d", k, c, cfg.TrainPerClass)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-prototype (class mean) classification on clean means should
	// beat chance by a wide margin, or the dataset carries no signal.
	cfg := Default()
	ds := New(cfg)
	dims := cfg.Channels * cfg.Height * cfg.Width
	means := make([][]float64, cfg.Classes)
	for k := range means {
		means[k] = make([]float64, dims)
	}
	for i, y := range ds.TrainY {
		src := ds.TrainX.Data()[i*dims : (i+1)*dims]
		for j, v := range src {
			means[y][j] += float64(v)
		}
	}
	for k := range means {
		for j := range means[k] {
			means[k][j] /= float64(cfg.TrainPerClass)
		}
	}
	correct := 0
	for i, y := range ds.ValY {
		src := ds.ValX.Data()[i*dims : (i+1)*dims]
		best, bestDist := -1, 0.0
		for k := range means {
			var d float64
			for j, v := range src {
				diff := float64(v) - means[k][j]
				d += diff * diff
			}
			if best < 0 || d < bestDist {
				best, bestDist = k, d
			}
		}
		if best == y {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.ValLen())
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %.3f: dataset not separable", acc)
	}
}

func TestShuffledOrderIsPermutationProperty(t *testing.T) {
	ds := New(Default())
	prop := func(epoch uint8) bool {
		order := ds.ShuffledOrder(int(epoch))
		if len(order) != ds.TrainLen() {
			return false
		}
		seen := make([]bool, len(order))
		for _, i := range order {
			if i < 0 || i >= len(order) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledOrderVariesByEpoch(t *testing.T) {
	ds := New(Default())
	a, b := ds.ShuffledOrder(1), ds.ShuffledOrder(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs should shuffle differently")
	}
}

func TestGatherTrain(t *testing.T) {
	ds := New(Default())
	x, y := ds.GatherTrain([]int{5, 0, 5})
	if x.Dim(0) != 3 || y[0] != ds.TrainY[5] || y[1] != ds.TrainY[0] {
		t.Fatal("GatherTrain wrong rows")
	}
	if !x.Slice(0, 1).AllClose(x.Slice(2, 3), 0) {
		t.Fatal("duplicate index should duplicate data")
	}
}

func TestBatchAccessors(t *testing.T) {
	ds := New(Default())
	x, y := ds.TrainBatch(10, 20)
	if x.Dim(0) != 10 || len(y) != 10 {
		t.Fatal("TrainBatch size wrong")
	}
	vx, vy := ds.ValBatch(0, 5)
	if vx.Dim(0) != 5 || len(vy) != 5 {
		t.Fatal("ValBatch size wrong")
	}
}

func TestImplausibleConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Classes: 1, Channels: 1, Height: 2, Width: 2})
}
