// Package dataset synthesizes the deterministic classification workload that
// stands in for ImageNet (see DESIGN.md §1). Quantization and fault effects
// depend on weight and activation *distributions*, not on natural images, so
// the substitute only needs to be (a) rich enough that real models must be
// trained to solve it and (b) exactly reproducible. Each class is defined by
// a structured prototype — an oriented sinusoidal grating plus a localized
// blob, both class-specific — and samples are noisy, amplitude-jittered
// draws around the prototype.
package dataset

import (
	"fmt"
	"math"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// Config parameterizes a synthetic dataset.
type Config struct {
	Classes  int
	Channels int
	Height   int
	Width    int

	TrainPerClass int
	ValPerClass   int

	// NoiseStd is the additive Gaussian noise standard deviation.
	NoiseStd float64

	// Seed fully determines the dataset contents.
	Seed uint64
}

// Default returns the configuration used throughout the experiments:
// 10 classes of 3×16×16 images, 100 train / 30 val per class.
func Default() Config {
	return Config{
		Classes:       10,
		Channels:      3,
		Height:        16,
		Width:         16,
		TrainPerClass: 100,
		ValPerClass:   30,
		NoiseStd:      0.9,
		Seed:          2022,
	}
}

// Dataset is a materialized train/validation split.
type Dataset struct {
	Config Config

	TrainX *tensor.Tensor // (Ntrain, C, H, W)
	TrainY []int
	ValX   *tensor.Tensor // (Nval, C, H, W)
	ValY   []int
}

// classProto holds the generative parameters of one class.
type classProto struct {
	freqX, freqY float64 // grating frequency per channel-independent pattern
	phase        float64
	blobX, blobY float64 // blob center in [0,1)
	blobAmp      float64
	chanGain     []float64 // per-channel gain
}

// New synthesizes a dataset from cfg. The same cfg always produces the same
// tensors, bit for bit.
func New(cfg Config) *Dataset {
	if cfg.Classes < 2 || cfg.Channels < 1 || cfg.Height < 4 || cfg.Width < 4 {
		panic(fmt.Sprintf("dataset: implausible config %+v", cfg))
	}
	r := rng.New(cfg.Seed)
	protos := make([]classProto, cfg.Classes)
	for k := range protos {
		protos[k] = classProto{
			freqX:   1 + r.Float64()*2.2,
			freqY:   1 + r.Float64()*2.2,
			phase:   r.Float64() * 2 * math.Pi,
			blobX:   0.15 + 0.7*r.Float64(),
			blobY:   0.15 + 0.7*r.Float64(),
			blobAmp: 0.8 + 0.8*r.Float64(),
			chanGain: func() []float64 {
				g := make([]float64, cfg.Channels)
				for c := range g {
					g[c] = 0.5 + r.Float64()
				}
				return g
			}(),
		}
	}

	ds := &Dataset{Config: cfg}
	ds.TrainX, ds.TrainY = synthesize(cfg, protos, cfg.TrainPerClass, r.Split())
	ds.ValX, ds.ValY = synthesize(cfg, protos, cfg.ValPerClass, r.Split())
	return ds
}

func synthesize(cfg Config, protos []classProto, perClass int, r *rng.RNG) (*tensor.Tensor, []int) {
	n := cfg.Classes * perClass
	x := tensor.New(n, cfg.Channels, cfg.Height, cfg.Width)
	y := make([]int, n)
	// Interleave classes so any contiguous batch is class-balanced.
	for i := 0; i < n; i++ {
		k := i % cfg.Classes
		y[i] = k
		renderSample(cfg, protos[k], x, i, r)
	}
	return x, y
}

func renderSample(cfg Config, p classProto, x *tensor.Tensor, idx int, r *rng.RNG) {
	amp := 0.7 + 0.6*r.Float64() // per-sample amplitude jitter
	phase := p.phase + (r.Float64()-0.5)*0.6
	for c := 0; c < cfg.Channels; c++ {
		gain := p.chanGain[c] * amp
		for i := 0; i < cfg.Height; i++ {
			fy := float64(i) / float64(cfg.Height)
			for j := 0; j < cfg.Width; j++ {
				fx := float64(j) / float64(cfg.Width)
				grating := math.Sin(2*math.Pi*(p.freqX*fx+p.freqY*fy) + phase)
				dx, dy := fx-p.blobX, fy-p.blobY
				blob := p.blobAmp * math.Exp(-(dx*dx+dy*dy)/0.02)
				v := gain*grating + blob + cfg.NoiseStd*r.NormFloat64()
				x.Set(float32(v), idx, c, i, j)
			}
		}
	}
}

// TrainLen returns the number of training samples.
func (d *Dataset) TrainLen() int { return len(d.TrainY) }

// ValLen returns the number of validation samples.
func (d *Dataset) ValLen() int { return len(d.ValY) }

// TrainBatch returns training samples [lo, hi) as a batch tensor and label
// slice.
func (d *Dataset) TrainBatch(lo, hi int) (*tensor.Tensor, []int) {
	return d.TrainX.Slice(lo, hi), d.TrainY[lo:hi]
}

// ValBatch returns validation samples [lo, hi).
func (d *Dataset) ValBatch(lo, hi int) (*tensor.Tensor, []int) {
	return d.ValX.Slice(lo, hi), d.ValY[lo:hi]
}

// ShuffledOrder returns a deterministic permutation of the training indices
// for the given epoch.
func (d *Dataset) ShuffledOrder(epoch int) []int {
	r := rng.New(d.Config.Seed ^ uint64(epoch)*0x9e3779b97f4a7c15)
	return r.Perm(d.TrainLen())
}

// GatherTrain materializes the training samples at the given indices.
func (d *Dataset) GatherTrain(idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.Config.Channels, d.Config.Height, d.Config.Width
	x := tensor.New(len(idx), c, h, w)
	y := make([]int, len(idx))
	plane := c * h * w
	for i, src := range idx {
		copy(x.Data()[i*plane:(i+1)*plane], d.TrainX.Data()[src*plane:(src+1)*plane])
		y[i] = d.TrainY[src]
	}
	return x, y
}
