package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// BFP is Block Floating Point: values in a block share a single exponent
// register, and each value stores only a sign and an m-bit magnitude
// (mantissa) relative to that exponent. The shared exponent is hardware
// metadata; a single bit flip there corrupts every value in the block — the
// multi-bit-flip equivalence the paper highlights (§II-B).
//
// Unlike the QPyTorch implementation the paper critiques (§VI), both the
// exponent width and the block size are configurable here; block size 0
// shares one exponent across the entire tensor.
type BFP struct {
	name      string
	expBits   int
	mantBits  int
	blockSize int

	bias    int
	maxMag  int64 // 2^m - 1
	expCode int   // 2^e - 1, largest biased exponent code
}

var _ Format = (*BFP)(nil)

// NewBFP returns a block floating-point format with e shared-exponent bits,
// m per-value mantissa bits, and the given block size (0 = whole tensor).
func NewBFP(e, m, blockSize int) *BFP {
	if e < 2 || e > 10 || m < 1 || m > 30 || blockSize < 0 {
		panic(fmt.Sprintf("numfmt: unsupported BFP geometry e%dm%d block %d", e, m, blockSize))
	}
	return &BFP{
		name:      fmt.Sprintf("bfp_e%dm%d_b%d", e, m, blockSize),
		expBits:   e,
		mantBits:  m,
		blockSize: blockSize,
		bias:      (1 << uint(e-1)) - 1,
		maxMag:    int64(1)<<uint(m) - 1,
		expCode:   1<<uint(e) - 1,
	}
}

// Name implements Format.
func (f *BFP) Name() string { return f.name }

// BitWidth implements Format: per-value storage is sign + mantissa; the
// shared exponent is amortized metadata (see MetaBits).
func (f *BFP) BitWidth() int { return 1 + f.mantBits }

// MetaBits implements Format: one e-bit exponent register per block.
func (f *BFP) MetaBits(n int) int { return f.expBits * f.numBlocks(n) }

// ExpBits returns the shared-exponent register width.
func (f *BFP) ExpBits() int { return f.expBits }

// BlockSize returns the configured block size (0 = whole tensor).
func (f *BFP) BlockSize() int { return f.blockSize }

// Range implements Format: with the largest shared exponent the block can
// represent magnitudes up to (1-2^-m)·2^(expMax+1); the smallest nonzero
// magnitude is one mantissa LSB at the smallest shared exponent.
func (f *BFP) Range() Range {
	expMax := f.expCode - f.bias
	expMin := -f.bias
	return Range{
		AbsMax: float64(f.maxMag) * math.Ldexp(1, expMax+1-f.mantBits),
		MinPos: math.Ldexp(1, expMin+1-f.mantBits),
	}
}

func (f *BFP) numBlocks(n int) int {
	b := f.blockSize
	if b <= 0 || b > n {
		return 1
	}
	return (n + b - 1) / b
}

func (f *BFP) blockBounds(block, n int) (lo, hi int) {
	b := f.blockSize
	if b <= 0 || b > n {
		return 0, n
	}
	lo = block * b
	hi = lo + b
	if hi > n {
		hi = n
	}
	return lo, hi
}

// sharedExpCode returns the biased shared-exponent code for a block with
// the given maximum magnitude.
func (f *BFP) sharedExpCode(maxAbs float64) uint8 {
	if maxAbs == 0 {
		return 0
	}
	return uint8(clampInt(floorLog2(maxAbs)+f.bias, 0, f.expCode))
}

// stepFor returns the quantization step implied by a biased exponent code.
func (f *BFP) stepFor(code uint8) float64 {
	return math.Ldexp(1, int(code)-f.bias+1-f.mantBits)
}

// Quantize implements Format (method 1): per block, derive the shared
// exponent from the block's maximum magnitude, then encode each value as
// sign + magnitude against that exponent's step.
func (f *BFP) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	data := t.Data()
	n := len(data)
	nb := f.numBlocks(n)
	meta := Metadata{
		Kind:      MetaSharedExp,
		SharedExp: make([]uint8, nb),
		BlockSize: f.blockSize,
	}
	codes := make([]Bits, n)
	for blk := 0; blk < nb; blk++ {
		lo, hi := f.blockBounds(blk, n)
		maxAbs := 0.0
		for _, v := range data[lo:hi] {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		ec := f.sharedExpCode(maxAbs)
		meta.SharedExp[blk] = ec
		step := f.stepFor(ec)
		for i := lo; i < hi; i++ {
			codes[i] = f.encodeValue(float64(data[i]), step)
		}
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

func (f *BFP) encodeValue(v, step float64) Bits {
	var sign Bits
	if math.Signbit(v) {
		sign = 1 << uint(f.mantBits)
	}
	if v == 0 || math.IsNaN(v) {
		return sign
	}
	mag := roundEven(math.Abs(v) / step)
	if mag > float64(f.maxMag) {
		mag = float64(f.maxMag)
	}
	return sign | Bits(mag)
}

// Dequantize implements Format (method 2). It honors whatever shared
// exponents the metadata carries — including fault-corrupted ones.
func (f *BFP) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	n := len(data)
	for blk, ec := range enc.Meta.SharedExp {
		lo, hi := f.blockBounds(blk, n)
		step := f.stepFor(ec)
		for i := lo; i < hi; i++ {
			data[i] = float32(f.decodeValue(enc.Codes[i], step))
		}
	}
	return out
}

func (f *BFP) decodeValue(b Bits, step float64) float64 {
	mag := float64(uint64(b) & uint64(f.maxMag))
	v := mag * step
	if b>>uint(f.mantBits)&1 == 1 {
		v = -v
	}
	return v
}

// Emulate implements Format. With fused kernels enabled (the default) it
// runs the single-pass block kernel below; otherwise it takes the generic
// quantize→dequantize code path, which the fused kernel is pinned
// bit-identical to by the property and fuzz suites.
func (f *BFP) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	if !FusedKernels() {
		return emulateViaCodes(f, t)
	}
	countKernelFused()
	out := t.Clone()
	f.emulateRowsInPlace(out.Data(), 1, t.Len())
	return out
}

// emulateRowsInPlace implements rowEmulator: the fused single-pass BFP
// kernel. Each row is treated as its own tensor — blocks never straddle a
// row boundary — so the result is bit-identical to quantizing and
// dequantizing each row separately (the EmulateBatched per-row contract;
// rows=1 gives whole-tensor semantics).
//
// Per block: one max-magnitude scan derives the shared exponent's step,
// then each value is clamped, rounded to the mantissa grid with the
// branch-free magic-constant RNE, and rescaled. Clamp-before-round equals
// encodeValue's round-then-clamp because maxMag is an odd integer (the
// half-way tie at maxMag−0.5 resolves downward under RNE either way), and
// maxMag < 2^51 keeps roundEvenMagic exact. Copysign reproduces
// encodeValue's Signbit handling for −0 and signed NaN.
func (f *BFP) emulateRowsInPlace(data []float32, rows, rowLen int) {
	maxC := float64(f.maxMag)
	for r := 0; r < rows; r++ {
		row := data[r*rowLen : (r+1)*rowLen]
		nb := f.numBlocks(rowLen)
		for blk := 0; blk < nb; blk++ {
			lo, hi := f.blockBounds(blk, rowLen)
			maxAbs := 0.0
			for _, v := range row[lo:hi] {
				if a := math.Abs(float64(v)); a > maxAbs {
					maxAbs = a
				}
			}
			step := f.stepFor(f.sharedExpCode(maxAbs))
			for i := lo; i < hi; i++ {
				a := float64(row[i])
				c := math.Abs(a) / step
				switch {
				case c >= maxC:
					c = maxC
				case c != c: // NaN encodes as sign-only, decodes as ±0
					c = 0
				default:
					c = roundEvenMagic(c)
				}
				row[i] = float32(math.Copysign(c*step, a))
			}
		}
	}
}

// ToBits implements Format (method 3). The scalar path treats the value as
// belonging to the metadata's first block; campaign code that needs a
// specific block flips bits in the Encoding directly.
func (f *BFP) ToBits(v float64, meta Metadata) Bits {
	ec := f.sharedExpCode(math.Abs(v))
	if len(meta.SharedExp) > 0 {
		ec = meta.SharedExp[0]
	}
	return f.encodeValue(v, f.stepFor(ec))
}

// FromBits implements Format (method 4), using the metadata's first block
// exponent (or the bias midpoint when absent).
func (f *BFP) FromBits(b Bits, meta Metadata) float64 {
	ec := uint8(f.bias)
	if len(meta.SharedExp) > 0 {
		ec = meta.SharedExp[0]
	}
	return f.decodeValue(b, f.stepFor(ec))
}
