package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// --- Posit ---

func TestPositKnownValues(t *testing.T) {
	// posit8 es=0: useed=2, maxpos=2^6=64, minpos=1/64.
	p := Posit8()
	r := p.Range()
	if r.AbsMax != 64 || r.MinPos != 1.0/64 {
		t.Fatalf("posit8 range %+v, want 64 / 1/64", r)
	}
	meta := Metadata{Kind: MetaNone}
	tests := []struct {
		give float64
		want float64
	}{
		{give: 0, want: 0},
		{give: 1, want: 1},
		{give: -1, want: -1},
		{give: 64, want: 64},
		{give: 1e6, want: 64},        // saturates at maxpos
		{give: -1e6, want: -64},      // saturates at -maxpos
		{give: 1e-9, want: 1.0 / 64}, // saturates at minpos (posits never underflow to 0)
		{give: 0.5, want: 0.5},
		{give: 1.5, want: 1.5}, // exactly representable: 01100100? (1.5 = 1+1/2)
	}
	for _, tt := range tests {
		got := p.FromBits(p.ToBits(tt.give, meta), meta)
		if got != tt.want {
			t.Errorf("posit8 round trip %v = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestPositStandardEncodings(t *testing.T) {
	// Classic posit properties: code 0x40 (01000000) = 1.0 for any es;
	// NaR = 0x80; two's-complement negation mirrors values.
	p := Posit8()
	meta := Metadata{Kind: MetaNone}
	if got := p.FromBits(0x40, meta); got != 1 {
		t.Fatalf("0x40 = %v, want 1", got)
	}
	if got := p.FromBits(0x80, meta); !math.IsNaN(got) {
		t.Fatalf("0x80 should decode NaR (NaN), got %v", got)
	}
	if got := p.FromBits(0xC0, meta); got != -1 {
		t.Fatalf("0xC0 = %v, want -1 (two's complement of 0x40)", got)
	}
	// posit16 es=1: 0x4000 = 1.0.
	p16 := Posit16()
	if got := p16.FromBits(0x4000, meta); got != 1 {
		t.Fatalf("posit16 0x4000 = %v, want 1", got)
	}
}

func TestPositMonotoneCodes(t *testing.T) {
	// Posits (excluding NaR) are monotone in signed code order — a
	// defining property of the format.
	p := NewPosit(6, 1)
	meta := Metadata{Kind: MetaNone}
	var prev float64
	first := true
	// Signed order: 100001 (most negative) ... 011111 (most positive).
	for i := 0; i < 1<<6; i++ {
		code := Bits((i + (1 << 5) + 1) % (1 << 6)) // start just above NaR
		if code == 1<<5 {
			continue // NaR
		}
		v := p.FromBits(code, meta)
		if !first && v <= prev {
			t.Fatalf("non-monotone at code %06b: %v after %v", code, v, prev)
		}
		prev, first = v, false
	}
}

func TestPositTaperedPrecisionProperty(t *testing.T) {
	// Relative quantization error is smallest near 1 and grows toward the
	// extremes — posit's tapered-precision signature.
	p := Posit16()
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		near := avgRelErr(p, r, 0.5, 2)    // around 1
		far := avgRelErr(p, r, 1000, 4000) // far binades
		return near <= far+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func avgRelErr(f Format, r *rng.RNG, lo, hi float64) float64 {
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		v := lo + r.Float64()*(hi-lo)
		q := f.FromBits(f.ToBits(v, Metadata{Kind: MetaNone}), Metadata{Kind: MetaNone})
		sum += math.Abs(q-v) / v
	}
	return sum / n
}

// --- LNS ---

func TestLNSKnownValues(t *testing.T) {
	l := NewLNS(5, 2) // log step 0.25
	meta := Metadata{Kind: MetaNone}
	tests := []struct {
		give float64
		want float64
	}{
		{give: 0, want: 0},
		{give: 1, want: 1},                       // log 0
		{give: 2, want: 2},                       // log 1
		{give: -4, want: -4},                     // log 2
		{give: math.Sqrt2, want: math.Exp2(0.5)}, // log 0.5 exactly on grid
	}
	for _, tt := range tests {
		got := l.FromBits(l.ToBits(tt.give, meta), meta)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("lns round trip %v = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestLNSMultiplicativeError(t *testing.T) {
	// LNS quantization error is bounded multiplicatively: the ratio
	// q/v lies within 2^(±step/2).
	l := LNS16()
	r := rng.New(3)
	bound := math.Exp2(l.step / 2 * 1.0000001)
	meta := Metadata{Kind: MetaNone}
	for i := 0; i < 500; i++ {
		v := math.Exp2((r.Float64() - 0.5) * 20) // magnitudes 2^±10
		q := l.FromBits(l.ToBits(v, meta), meta)
		ratio := q / v
		if ratio < 1/bound || ratio > bound {
			t.Fatalf("ratio %v outside 2^±step/2 for v=%v", ratio, v)
		}
	}
}

func TestLNSZeroSentinel(t *testing.T) {
	l := LNS8()
	meta := Metadata{Kind: MetaNone}
	b := l.ToBits(0, meta)
	if got := l.FromBits(b, meta); got != 0 {
		t.Fatalf("zero round trip = %v", got)
	}
	// Tiny values below the representable floor flush to zero.
	if got := l.FromBits(l.ToBits(1e-30, meta), meta); got != 0 {
		t.Fatalf("underflow should flush, got %v", got)
	}
}

func TestLNSLogMSBFlipSquaresMagnitude(t *testing.T) {
	// The characteristic LNS hazard: flipping a high log bit multiplies
	// the value by an enormous power of two.
	l := LNS8() // 5 integer log bits, 2 fraction
	x := tensor.FromSlice([]float32{1.0}, 1)
	enc := l.Quantize(x)
	enc.Codes[0] = enc.Codes[0].Flip(5) // log += 2^3 = 8 → value ×2^8
	got := l.Dequantize(enc).At(0)
	if got != 256 {
		t.Fatalf("log-bit flip on 1.0 = %v, want 256", got)
	}
}

// --- LUT / NF4 ---

func TestNF4CodebookShape(t *testing.T) {
	f := NF4()
	levels := f.Levels()
	if len(levels) != 16 {
		t.Fatalf("%d levels", len(levels))
	}
	// Sorted, spanning [-1, 1], containing exact 0.
	hasZero := false
	for i, v := range levels {
		if i > 0 && v <= levels[i-1] {
			t.Fatal("levels not strictly increasing")
		}
		if v == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		t.Fatal("codebook must contain exact zero")
	}
	if levels[0] != -1 && levels[len(levels)-1] != 1 {
		t.Fatalf("outermost level should be ±1: %v..%v", levels[0], levels[len(levels)-1])
	}
	// Non-uniform: the central gap is smaller than the outer gap.
	inner := levels[9] - levels[7]
	outer := levels[15] - levels[13]
	if inner >= outer {
		t.Fatalf("normal-quantile codebook should be denser near zero: inner %v vs outer %v", inner, outer)
	}
}

func TestLUTQuantizesToCodebook(t *testing.T) {
	f := NF4()
	r := rng.New(4)
	x := tensor.Randn(r, 1, 64)
	enc := f.Quantize(x)
	y := f.Dequantize(enc)
	scale := float64(enc.Meta.Scale)
	levels := f.Levels()
	for _, v := range y.Data() {
		found := false
		for _, lv := range levels {
			if math.Abs(float64(v)-lv*scale) < 1e-6*scale {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("value %v not on the codebook grid", v)
		}
	}
}

func TestLUTBetterThanUniformForGaussianWeights(t *testing.T) {
	// The reason NF4 exists: for normally distributed data, the quantile
	// codebook beats uniform INT at equal width.
	r := rng.New(5)
	x := tensor.Randn(r, 1, 1, 4096)
	nf := NewLUT(4)
	uniform := NewINT(4)
	errNF := meanSquaredErr(x, nf.Emulate(x))
	errINT := meanSquaredErr(x, uniform.Emulate(x))
	if errNF >= errINT {
		t.Fatalf("NF4 MSE %v should beat INT4 MSE %v on Gaussian data", errNF, errINT)
	}
}

func meanSquaredErr(x, y *tensor.Tensor) float64 {
	var sum float64
	for i, v := range x.Data() {
		d := float64(y.Data()[i] - v)
		sum += d * d
	}
	return sum / float64(x.Len())
}

func TestLUTMetadataIsScaleRegister(t *testing.T) {
	f := NF4()
	x := tensor.FromSlice([]float32{-3, 1.5}, 2)
	enc := f.Quantize(x)
	if enc.Meta.Kind != MetaScale || enc.Meta.Scale != 3 {
		t.Fatalf("meta %+v, want scale register 3", enc.Meta)
	}
	if f.MetaBits(100) != 32 {
		t.Fatal("LUT metadata is one float32 register")
	}
}

func TestLUTIgnoresNonFiniteForScale(t *testing.T) {
	f := NF4()
	x := tensor.FromSlice([]float32{float32(math.Inf(1)), 2, -1}, 3)
	enc := f.Quantize(x)
	if enc.Meta.Scale != 2 {
		t.Fatalf("scale %v should ignore Inf, want 2", enc.Meta.Scale)
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.4} {
		if d := normQuantile(p) + normQuantile(1-p); math.Abs(d) > 1e-8 {
			t.Fatalf("quantile asymmetry at %v: %v", p, d)
		}
	}
	if math.Abs(normQuantile(0.5)) > 1e-12 {
		t.Fatal("median quantile must be 0")
	}
	// Known value: Φ⁻¹(0.975) ≈ 1.959964.
	if math.Abs(normQuantile(0.975)-1.959964) > 1e-5 {
		t.Fatalf("Φ⁻¹(0.975) = %v", normQuantile(0.975))
	}
}
