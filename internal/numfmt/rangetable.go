package numfmt

// RangeRow is one row of Table I: a data type's dynamic range.
type RangeRow struct {
	Label   string
	AbsMax  float64
	MinPos  float64
	RangeDB float64
	Movable bool // AFP's window slides with the bias register
}

// Table1Rows recomputes the paper's Table I ("Dynamic Range of Data Types")
// from the format implementations themselves, in the paper's row order.
//
// Two clerical errors in the published table are corrected here and noted in
// EXPERIMENTS.md: the FxP(1,15,16) maximum reads "3.2768" (3.2768e+04), and
// the INT16 range reads 98.31 dB where 20·log10(32767) = 90.31 dB.
func Table1Rows() []RangeRow {
	entries := []struct {
		label   string
		format  Format
		movable bool
	}{
		{label: "FP32 w/ DN", format: FP32(true)},
		{label: "FP32 w/o DN", format: FP32(false)},
		{label: "FxP (1,15,16)", format: FxP32()},
		{label: "FP16 w/ DN", format: FP16(true)},
		{label: "FP16 w/o DN", format: FP16(false)},
		{label: "BFloat16 w/ DN", format: BFloat16(true)},
		{label: "BFloat16 w/o DN", format: BFloat16(false)},
		{label: "INT16 (symmetric)", format: INT16()},
		{label: "INT8 (symmetric)", format: INT8()},
		{label: "FP8 (e4m3) w/ DN", format: FP8E4M3(true)},
		{label: "FP8 (e4m3) w/o DN", format: FP8E4M3(false)},
		{label: "AFP8 (e4m3) w/o DN", format: AFP8E4M3(), movable: true},
	}
	rows := make([]RangeRow, len(entries))
	for i, e := range entries {
		r := e.format.Range()
		rows[i] = RangeRow{
			Label:   e.label,
			AbsMax:  r.AbsMax,
			MinPos:  r.MinPos,
			RangeDB: r.DB(),
			Movable: e.movable,
		}
	}
	return rows
}
