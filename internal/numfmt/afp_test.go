package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestAFPBiasAdaptsToTensorMax(t *testing.T) {
	f := NewAFP(4, 3, true)
	small := tensor.FromSlice([]float32{0.001, 0.002}, 2)
	big := tensor.FromSlice([]float32{1000, 2000}, 2)
	encSmall := f.Quantize(small)
	encBig := f.Quantize(big)
	if encSmall.Meta.Kind != MetaExpBias || encBig.Meta.Kind != MetaExpBias {
		t.Fatal("AFP must carry a bias register")
	}
	if encSmall.Meta.ExpBias <= encBig.Meta.ExpBias {
		t.Fatalf("small-valued tensor should get a larger bias: %d vs %d",
			encSmall.Meta.ExpBias, encBig.Meta.ExpBias)
	}
}

func TestAFPOutperformsFPOnShiftedDistributions(t *testing.T) {
	// The reason AFP exists: a tensor living around 1e-4 is far below
	// FP e4m3's minimum normal, but AFP slides its window there.
	r := rng.New(1)
	x := tensor.Randn(r, 1e-4, 1, 128)
	fp := NewFP(4, 3, true)
	afp := NewAFP(4, 3, true)
	errFP := relError(x, fp.Emulate(x))
	errAFP := relError(x, afp.Emulate(x))
	if errAFP >= errFP/4 {
		t.Fatalf("AFP error %v should be far below FP error %v", errAFP, errFP)
	}
}

func relError(x, y *tensor.Tensor) float64 {
	var sum float64
	n := 0
	for i, v := range x.Data() {
		if v == 0 {
			continue
		}
		sum += math.Abs(float64(y.Data()[i]-v)) / math.Abs(float64(v))
		n++
	}
	return sum / float64(n)
}

func TestAFPDefaultBiasMatchesFP(t *testing.T) {
	// With no adaptation trigger (zero tensor), AFP's window matches the
	// IEEE placement, so Table I's AFP8 row equals the FP8 row.
	afp := AFP8E4M3()
	fp := FP8E4M3(false)
	ra, rf := afp.Range(), fp.Range()
	if ra.AbsMax != rf.AbsMax || ra.MinPos != rf.MinPos {
		t.Fatalf("default AFP range %+v should equal FP range %+v", ra, rf)
	}
}

func TestAFPSaturatesAtMovedMax(t *testing.T) {
	f := NewAFP(4, 3, true)
	x := tensor.FromSlice([]float32{100, 1}, 2)
	y := f.Emulate(x)
	// expMax = floor(log2 100) = 6 → maxFinite = 1.875 * 64 = 120.
	if y.At(0) != 100 && y.At(0) > 120 {
		t.Fatalf("value above moved max: %v", y.At(0))
	}
	if y.CountNonFinite() != 0 {
		t.Fatal("clean emulation produced non-finite values")
	}
}

func TestAFPDenormalToggle(t *testing.T) {
	// Put values so the small one is subnormal relative to the moved
	// window: max 1.0 → expMax 0, expMin = 0 - 13 = ... for e4: span 14,
	// expMin = expMax - 13. A value 2^-16 below that window flushes.
	withDN := NewAFP(4, 3, true)
	noDN := NewAFP(4, 3, false)
	x := tensor.FromSlice([]float32{1.0, 1.2e-5}, 2)
	yDN := withDN.Emulate(x)
	yNo := noDN.Emulate(x)
	if yNo.At(1) != 0 {
		t.Fatalf("subnormal should flush without denormals, got %v", yNo.At(1))
	}
	if yDN.At(1) == 0 {
		t.Fatal("denormal support should preserve the subnormal value")
	}
}

func TestAFPCorruptedBiasDecodes(t *testing.T) {
	// FromBits must honor an arbitrary (fault-corrupted) bias without
	// panicking, even when the implied exponent overflows float64.
	f := NewAFP(5, 2, true)
	x := tensor.FromSlice([]float32{1.5}, 1)
	enc := f.Quantize(x)
	enc.Meta.ExpBias = -128 // corrupted register
	y := f.Dequantize(enc)
	if y.CountNonFinite() == 0 && y.At(0) == 1.5 {
		t.Fatal("corrupted bias should change decoded values")
	}
}

// Property: AFP quantization error is relatively bounded for tensors of any
// scale — the "movable range" in action.
func TestAFPScaleInvariantErrorProperty(t *testing.T) {
	f := NewAFP(5, 3, true)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		for _, scale := range []float64{1e-12, 1e-3, 1, 1e6, 1e12} {
			x := tensor.Randn(r, scale, 1, 64)
			y := f.Emulate(x)
			maxAbs := x.AbsMax()
			for i, v := range x.Data() {
				err := math.Abs(float64(y.Data()[i] - v))
				// Error bounded by one step at the top binade.
				if err > maxAbs*math.Ldexp(1, -3) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAFPBitsRoundTripUnderMeta(t *testing.T) {
	f := NewAFP(5, 2, true)
	x := tensor.FromSlice([]float32{0.7, -0.1, 3.2}, 3)
	enc := f.Quantize(x)
	y := f.Dequantize(enc)
	for i := range x.Data() {
		b := f.ToBits(float64(x.Data()[i]), enc.Meta)
		if got := f.FromBits(b, enc.Meta); got != float64(y.Data()[i]) {
			t.Fatalf("scalar/tensor disagreement at %d: %v vs %v", i, got, y.Data()[i])
		}
	}
}
