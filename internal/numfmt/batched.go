package numfmt

import (
	"sync"

	"goldeneye/internal/tensor"
)

// This file is the per-sample quantization path that makes batched fault
// injection bit-identical to batch-1 execution (the paper's batching lever,
// §IV-B). Formats whose metadata is computed from tensor-wide statistics
// (the INT/LUT scale from AbsMax, the AFP exponent bias, BFP's shared
// exponents blocked over the flattened tensor) would otherwise couple a
// sample's codes to its batchmates; here every batch row is quantized from
// a row-sliced view, so its codes and registers match a batch-1 encoding of
// the same sample exactly.

// batchInvariant reports whether f quantizes each element independently of
// the rest of the tensor, making whole-batch calls bit-identical to per-row
// calls. Only the formats audited for element independence qualify; unknown
// Format implementations conservatively take the per-row path.
func batchInvariant(f Format) bool {
	switch f.(type) {
	case *FP, *FxP, *LNS, *Posit:
		return true
	}
	return false
}

// emulateRowParallelMin is the element count above which EmulateBatched
// fans per-row emulation out across goroutines (mirrors the tensor
// package's matmul parallel threshold).
const emulateRowParallelMin = 16 * 1024

// QuantizeBatched converts t (batch on axis 0) into format space with
// per-row metadata: row r's codes and registers are exactly those of
// f.Quantize applied to the single-sample slice t[r:r+1]. The returned
// encoding uses AxisBatch and leaves Meta zero.
func QuantizeBatched(f Format, t *tensor.Tensor) *Encoding {
	n := t.Dim(0)
	rowLen := t.Len() / n
	enc := &Encoding{
		Codes:        make([]Bits, t.Len()),
		Shape:        append([]int(nil), t.Shape()...),
		MetadataAxis: AxisBatch,
		RowMeta:      make([]Metadata, n),
	}
	for r := 0; r < n; r++ {
		re := f.Quantize(t.Slice(r, r+1))
		copy(enc.Codes[r*rowLen:(r+1)*rowLen], re.Codes)
		enc.RowMeta[r] = re.Meta
	}
	return enc
}

// DequantizeBatched reconstructs real values from an AxisBatch encoding,
// decoding each row under its own metadata. It is the inverse of
// QuantizeBatched and bit-identical per row to f.Dequantize on a batch-1
// encoding.
func DequantizeBatched(f Format, enc *Encoding) *tensor.Tensor {
	if enc.MetadataAxis != AxisBatch {
		return f.Dequantize(enc)
	}
	n := len(enc.RowMeta)
	rowLen := len(enc.Codes) / n
	rowShape := append([]int{1}, enc.Shape[1:]...)
	out := tensor.New(enc.Shape...)
	dst := out.Data()
	for r := 0; r < n; r++ {
		row := &Encoding{
			Codes: enc.Codes[r*rowLen : (r+1)*rowLen],
			Shape: rowShape,
			Meta:  enc.RowMeta[r],
		}
		copy(dst[r*rowLen:(r+1)*rowLen], f.Dequantize(row).Data())
	}
	return out
}

// EmulateBatched is the batched inference-emulation hot path: emulation in
// which every batch row's metadata is derived from that row alone.
// Batch-invariant formats keep their whole-tensor fast path (already
// bit-identical per row). Metadata-bearing formats with a fused kernel
// (INT, BFP, AFP) run it directly over row slices of one output buffer —
// no per-row tensor allocation, no quantize/dequantize round trip — with a
// GOMAXPROCS-bounded fan-out for large activations. Formats without a
// fused kernel (LUT), or with fused kernels disabled, emulate row-sliced
// views through their own Emulate, which is what the fused rows are pinned
// bit-identical to.
func EmulateBatched(f Format, t *tensor.Tensor) *tensor.Tensor {
	n := t.Dim(0)
	if n <= 1 || batchInvariant(f) {
		return f.Emulate(t)
	}
	rowLen := t.Len() / n
	if re, ok := f.(rowEmulator); ok && FusedKernels() {
		countEmulate(t.Len())
		countKernelFused()
		out := t.Clone()
		emulateRowsParallel(re, out.Data(), n, rowLen)
		return out
	}
	out := tensor.New(t.Shape()...)
	dst := out.Data()
	emulateRow := func(r int) {
		copy(dst[r*rowLen:(r+1)*rowLen], f.Emulate(t.Slice(r, r+1)).Data())
	}
	if t.Len() >= emulateRowParallelMin {
		var wg sync.WaitGroup
		wg.Add(n)
		for r := 0; r < n; r++ {
			go func(r int) {
				defer wg.Done()
				emulateRow(r)
			}(r)
		}
		wg.Wait()
	} else {
		for r := 0; r < n; r++ {
			emulateRow(r)
		}
	}
	return out
}
