package numfmt

import "sync/atomic"

// OpCounts is a snapshot of the package's quantization-op counters: how
// many times each Format method ran and how many tensor elements passed
// through them in total. Formats whose Emulate goes through the generic
// code-based path (BFP, AFP) also count the internal Quantize/Dequantize
// pair, which is exactly the extra work Fig 3's overhead dichotomy is
// about — the counters make the fast-path/slow-path split visible.
type OpCounts struct {
	Quantize   int64 // Quantize calls
	Dequantize int64 // Dequantize calls
	Emulate    int64 // Emulate calls
	Elements   int64 // tensor elements processed across all three

	// Kernel-path split for Emulate work: FusedKernels counts executions of
	// a single-pass arithmetic/bit-twiddled kernel (fp/fxp/intq always;
	// bfp/afp when fused kernels are enabled, including epilogue and batched
	// row invocations); GenericKernels counts trips through the
	// quantize→dequantize code path (emulateViaCodes). Formats with bespoke
	// Emulate implementations (LNS, Posit, LUT) appear in neither.
	FusedKernels   int64
	GenericKernels int64
}

// opStats holds the live counters: package-global atomics so that the
// stateless, concurrently used Format implementations need no per-instance
// plumbing. The telemetry registry reads them through a collector
// (goldeneye.RegisterRuntimeCollectors).
var opStats struct {
	quantize, dequantize, emulate, elements atomic.Int64
	kernelFused, kernelGeneric              atomic.Int64
}

func countQuantize(n int) {
	opStats.quantize.Add(1)
	opStats.elements.Add(int64(n))
}

func countDequantize(n int) {
	opStats.dequantize.Add(1)
	opStats.elements.Add(int64(n))
}

func countEmulate(n int) {
	opStats.emulate.Add(1)
	opStats.elements.Add(int64(n))
}

func countKernelFused()   { opStats.kernelFused.Add(1) }
func countKernelGeneric() { opStats.kernelGeneric.Add(1) }

// ReadOpCounts returns the current counter values (each field read
// atomically; the set is not one atomic snapshot).
func ReadOpCounts() OpCounts {
	return OpCounts{
		Quantize:       opStats.quantize.Load(),
		Dequantize:     opStats.dequantize.Load(),
		Emulate:        opStats.emulate.Load(),
		Elements:       opStats.elements.Load(),
		FusedKernels:   opStats.kernelFused.Load(),
		GenericKernels: opStats.kernelGeneric.Load(),
	}
}

// ResetOpCounts zeroes all counters, scoping a measurement window.
func ResetOpCounts() {
	opStats.quantize.Store(0)
	opStats.dequantize.Store(0)
	opStats.emulate.Store(0)
	opStats.elements.Store(0)
	opStats.kernelFused.Store(0)
	opStats.kernelGeneric.Store(0)
}
