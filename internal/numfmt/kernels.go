package numfmt

// Fused single-pass emulation kernels.
//
// The generic Emulate path (emulateViaCodes) materializes an Encoding —
// one Bits word per element plus metadata — only to throw it away after
// decoding: two full passes, two allocations, and a per-element trip
// through the scalar ToBits/FromBits machinery. That is exactly the
// "Python-speed" side of the paper's Fig 3 dichotomy, and the reason the
// batched campaign engine never paid on formats with hardware metadata.
//
// The kernels in this file collapse the round trip into one in-place,
// branch-reduced pass over the float32 storage: derive the row's (or
// block's) metadata from the same max-magnitude scan Quantize performs,
// then snap every element to its representable value directly. Each kernel
// is pinned bit-identical to Dequantize∘Quantize by the property suite
// (TestEmulateMatchesCodePathProperty), the differential fuzz target
// (FuzzEmulateFusedVsGeneric), and the campaign golden files — a fused
// kernel that changes one bit is a bug, not a speedup.
//
// LNS, Posit, and LUT keep their existing paths: their table- and
// search-based decodes have no profitable arithmetic fusion.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"goldeneye/internal/tensor"
)

// rowEmulator is implemented by formats with a fused single-pass kernel.
// emulateRowsInPlace snaps data — `rows` contiguous rows of rowLen
// elements — to the format's representable values, deriving any hardware
// metadata (INT scale, BFP shared exponents, AFP bias) from each row
// alone. Element-local formats (FP, FxP) ignore the row geometry.
type rowEmulator interface {
	emulateRowsInPlace(data []float32, rows, rowLen int)
}

// Compile-time checks: the fused-kernel families of the tentpole.
var (
	_ rowEmulator = (*FP)(nil)
	_ rowEmulator = (*FxP)(nil)
	_ rowEmulator = (*INT)(nil)
	_ rowEmulator = (*BFP)(nil)
	_ rowEmulator = (*AFP)(nil)
)

// fusedDisabled gates the fused kernels globally. The zero value (false)
// means fused kernels are ON; the bench harness flips it to measure the
// pre-fusion baseline. It is not meant to be toggled concurrently with
// running campaigns.
var fusedDisabled atomic.Bool

// SetFusedKernels enables or disables the fused single-pass emulation
// kernels and returns the previous setting. Disabling restores the
// pre-fusion paths — the generic quantize→dequantize double pass for BFP
// and AFP, and the per-row Slice+Emulate loop in EmulateBatched — which is
// the serial baseline the bench matrix measures speedups against. FP, FxP,
// and INT keep their whole-tensor arithmetic fast paths in both modes
// (those predate the fused kernels and are part of the baseline).
func SetFusedKernels(on bool) bool {
	return !fusedDisabled.Swap(!on)
}

// FusedKernels reports whether the fused emulation kernels are enabled.
func FusedKernels() bool { return !fusedDisabled.Load() }

// EmulateGeneric runs f's generic quantize→dequantize Emulate path
// regardless of the fused-kernel toggle. Differential tests and the bench
// harness use it as the reference the fused kernels must match bit for
// bit.
func EmulateGeneric(f Format, t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	return emulateViaCodes(f, t)
}

// HasFusedKernel reports whether f ships a fused single-pass Emulate
// kernel (the fp/fxp/intq/bfp/afp families).
func HasFusedKernel(f Format) bool {
	_, ok := f.(rowEmulator)
	return ok
}

// EmulateEpilogue returns a tensor.Epilogue that applies f's fused
// emulation kernel in place to freshly produced layer outputs — the
// cache-hot alternative to a follow-up whole-tensor Emulate pass. axis
// selects the metadata scope: AxisTensor derives metadata from the whole
// output (the serial campaign path), AxisBatch from each batch row alone
// (the batched path's bit-identity contract). Element-local formats fuse
// at tile granularity so matmul workers emulate their own output chunks.
//
// The returned epilogue is empty — and callers fall back to the hook path
// — when f has no fused kernel or fused kernels are disabled.
func EmulateEpilogue(f Format, axis MetaAxis) tensor.Epilogue {
	re, ok := f.(rowEmulator)
	if !ok || !FusedKernels() {
		return tensor.Epilogue{}
	}
	if batchInvariant(f) {
		// Element-local: any contiguous chunk is a valid unit of work.
		return tensor.Epilogue{Tile: func(chunk []float32) {
			countEmulate(len(chunk))
			countKernelFused()
			re.emulateRowsInPlace(chunk, 1, len(chunk))
		}}
	}
	if axis == AxisBatch {
		return tensor.Epilogue{Rows: func(data []float32, rows, rowLen int) {
			countEmulate(len(data))
			countKernelFused()
			emulateRowsParallel(re, data, rows, rowLen)
		}}
	}
	return tensor.Epilogue{Whole: func(data []float32) {
		countEmulate(len(data))
		countKernelFused()
		re.emulateRowsInPlace(data, 1, len(data))
	}}
}

// emulateRowsParallel applies re's fused kernel over rows with a bounded
// worker fan-out: contiguous row chunks, one goroutine per GOMAXPROCS
// slot, mirroring the tensor package's parallelRows. Small tensors stay
// on the calling goroutine.
func emulateRowsParallel(re rowEmulator, data []float32, rows, rowLen int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if rows*rowLen < emulateRowParallelMin || workers <= 1 {
		re.emulateRowsInPlace(data, rows, rowLen)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			re.emulateRowsInPlace(data[lo*rowLen:hi*rowLen], hi-lo, rowLen)
		}(lo, hi)
	}
	wg.Wait()
}
