package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestFxPKnownValues(t *testing.T) {
	f := NewFxP(3, 4) // step 1/16, max code 127, min code -128
	tests := []struct {
		give float64
		want float64
	}{
		{give: 0, want: 0},
		{give: 1.0, want: 1.0},
		{give: 0.0625, want: 0.0625},   // exactly one step
		{give: 0.03, want: 0.0625 / 2}, // rounds to half-step? no: rounds to nearest multiple of 1/16
		{give: 100, want: 127.0 / 16},  // saturates high
		{give: -100, want: -8},         // saturates at two's-complement minimum
		{give: 7.9375, want: 7.9375},   // max positive
	}
	// Correct the 0.03 expectation: nearest multiple of 0.0625 is 0.0625
	// (0.03/0.0625 = 0.48 → rounds to 0).
	tests[3].want = 0
	for _, tt := range tests {
		got := float64(f.quantizeCode(tt.give)) * f.step
		if got != tt.want {
			t.Errorf("quantize(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestFxPRadixAndWidth(t *testing.T) {
	f := NewFxP(7, 8)
	if f.BitWidth() != 16 || f.Radix() != 8 {
		t.Fatalf("geometry: width %d radix %d", f.BitWidth(), f.Radix())
	}
	if f.MetaBits(100) != 0 {
		t.Fatal("FxP has no metadata")
	}
}

func TestFxPTwosComplementBits(t *testing.T) {
	f := NewFxP(3, 4)
	meta := Metadata{Kind: MetaNone}
	if got := f.ToBits(-0.0625, meta); got != 0xFF {
		t.Fatalf("ToBits(-step) = %#x, want 0xFF (two's complement -1)", got)
	}
	if got := f.FromBits(0xFF, meta); got != -0.0625 {
		t.Fatalf("FromBits(0xFF) = %v, want -0.0625", got)
	}
	if got := f.FromBits(0x80, meta); got != -8 {
		t.Fatalf("FromBits(0x80) = %v, want -8", got)
	}
}

func TestFxPRoundTiesToEven(t *testing.T) {
	f := NewFxP(3, 1) // step 0.5
	// 0.25 is exactly between 0 and 0.5; RNE picks 0 (even code).
	if got := f.quantizeCode(0.25); got != 0 {
		t.Fatalf("RNE(0.25/0.5) = %d, want 0", got)
	}
	// 0.75 is between 0.5 (code 1) and 1.0 (code 2); RNE picks 2.
	if got := f.quantizeCode(0.75); got != 2 {
		t.Fatalf("RNE(0.75/0.5) = %d, want 2", got)
	}
}

// Property: FxP quantization error never exceeds half a step inside range.
func TestFxPHalfStepProperty(t *testing.T) {
	f := NewFxP(7, 8)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		for i := 0; i < 100; i++ {
			v := (r.Float64()*2 - 1) * 100 // inside ±128 range
			q := float64(f.quantizeCode(v)) * f.step
			if math.Abs(q-v) > f.step/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the magic-number fast path matches the scalar path bit-for-bit.
func TestFxPFastPathExactProperty(t *testing.T) {
	f := NewFxP(7, 8)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.Randn(r, 100, 257)
		fast := f.Emulate(x)
		for i, v := range x.Data() {
			want := float32(float64(f.quantizeCode(float64(v))) * f.step)
			if fast.Data()[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFxPNaNQuantizesToZero(t *testing.T) {
	f := NewFxP(3, 4)
	x := tensor.FromSlice([]float32{float32(math.NaN())}, 1)
	if got := f.Emulate(x).At(0); got != 0 {
		t.Fatalf("NaN → %v, want 0", got)
	}
}

func TestNewFxPRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFxP(0, 0)
}
