package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// AFP is AdaptivFloat: a floating-point format whose exponent bias is chosen
// per tensor so that the representable range slides to where the tensor's
// values actually live. The bias is hardware metadata (an int8 register per
// tensor); fault injection can flip its bits, rescaling the whole tensor —
// the AFP analogue of BFP's shared-exponent hazard.
//
// Geometry follows the package's FP type: exponent code 0 is the
// zero/denormal region, the top exponent code is reserved for Inf/NaN, and
// quantization saturates at the (shifted) maximum finite value.
type AFP struct {
	name      string
	expBits   int
	mantBits  int
	denormals bool

	expSpan     int // number of normal exponent values: 2^e - 2
	defaultBias int8
}

var _ Format = (*AFP)(nil)

// NewAFP returns an AdaptivFloat format with e exponent bits and m mantissa
// bits (per-value width 1+e+m) plus a per-tensor bias register.
func NewAFP(e, m int, denormals bool) *AFP {
	if e < 2 || e > 8 || m < 1 || m > 30 {
		panic(fmt.Sprintf("numfmt: unsupported AFP geometry e%dm%d", e, m))
	}
	f := &AFP{
		name:      fmt.Sprintf("afp_e%dm%d", e, m),
		expBits:   e,
		mantBits:  m,
		denormals: denormals,
		expSpan:   1<<uint(e) - 2,
		// The default bias reproduces standard IEEE-style placement, so an
		// AFP tensor that never adapts matches the corresponding FP format
		// (Table I's "movable range" row equals the FP8 row by default).
		defaultBias: int8((1 << uint(e-1)) - 1),
	}
	if !denormals {
		f.name += "_nodn"
	}
	return f
}

// Name implements Format.
func (f *AFP) Name() string { return f.name }

// BitWidth implements Format.
func (f *AFP) BitWidth() int { return 1 + f.expBits + f.mantBits }

// MetaBits implements Format: one int8 bias register per tensor.
func (f *AFP) MetaBits(int) int { return 8 }

// ExpBits returns the exponent field width.
func (f *AFP) ExpBits() int { return f.expBits }

// MantBits returns the mantissa field width.
func (f *AFP) MantBits() int { return f.mantBits }

// Range implements Format, reporting the range at the default bias; the
// whole window shifts with the adaptive bias ("movable range" in Table I).
func (f *AFP) Range() Range {
	bias := int(f.defaultBias)
	expMax := f.expSpan - bias
	expMin := 1 - bias
	minPos := math.Ldexp(1, expMin)
	if f.denormals {
		minPos = math.Ldexp(1, expMin-f.mantBits)
	}
	return Range{
		AbsMax: (2 - math.Ldexp(1, -f.mantBits)) * math.Ldexp(1, expMax),
		MinPos: minPos,
	}
}

// biasFor picks the exponent bias that places the format's largest normal
// binade at the tensor's maximum magnitude.
func (f *AFP) biasFor(maxAbs float64) int8 {
	if maxAbs == 0 {
		return f.defaultBias
	}
	b := f.expSpan - floorLog2(maxAbs)
	return int8(clampInt(b, -128, 127))
}

// geometry returns the normal exponent limits and steps implied by a bias
// register value (possibly fault-corrupted).
func (f *AFP) geometry(bias int8) (expMin, expMax int, maxFinite, denStep float64) {
	expMin = 1 - int(bias)
	expMax = f.expSpan - int(bias)
	maxFinite = (2 - math.Ldexp(1, -f.mantBits)) * math.Ldexp(1, expMax)
	denStep = math.Ldexp(1, expMin-f.mantBits)
	return expMin, expMax, maxFinite, denStep
}

// Quantize implements Format (method 1).
func (f *AFP) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	meta := Metadata{Kind: MetaExpBias, ExpBias: f.biasFor(t.AbsMax())}
	data := t.Data()
	codes := make([]Bits, len(data))
	for i, v := range data {
		codes[i] = f.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (f *AFP) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(f.FromBits(c, enc.Meta))
	}
	return out
}

// Emulate implements Format. With fused kernels enabled (the default) it
// runs the single-pass arithmetic kernel below; otherwise it takes the
// generic quantize→dequantize code path, which the fused kernel is pinned
// bit-identical to by the property and fuzz suites.
func (f *AFP) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	if !FusedKernels() {
		return emulateViaCodes(f, t)
	}
	countKernelFused()
	out := t.Clone()
	f.emulateRowsInPlace(out.Data(), 1, t.Len())
	return out
}

// emulateRowsInPlace implements rowEmulator: the fused single-pass AFP
// kernel. Each row derives its own bias register from the row's maximum
// magnitude — exactly what Quantize does per tensor — so the result is
// bit-identical to quantizing each row separately (the EmulateBatched
// per-row contract; rows=1 gives whole-tensor semantics).
func (f *AFP) emulateRowsInPlace(data []float32, rows, rowLen int) {
	for r := 0; r < rows; r++ {
		row := data[r*rowLen : (r+1)*rowLen]
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		expMin, _, maxFinite, denStep := f.geometry(f.biasFor(maxAbs))
		minNorm := math.Ldexp(1, expMin)
		for i, v := range row {
			row[i] = float32(f.emulateValue(float64(v), expMin, maxFinite, minNorm, denStep))
		}
	}
}

// emulateValue snaps one value under a fixed geometry, replicating
// FromBits∘ToBits exactly: every branch below lands on a value whose
// decode reconstruction is exact in float64 (mantissa extraction and
// frac·2^exp are exact for representable codes), so computing the decoded
// value directly — without materializing the code — changes no bits.
func (f *AFP) emulateValue(v float64, expMin int, maxFinite, minNorm, denStep float64) float64 {
	sign := 1.0
	if math.Signbit(v) {
		sign = -1
	}
	if v == 0 || math.IsNaN(v) {
		return sign * 0
	}
	a := math.Abs(v)
	if a >= maxFinite {
		return sign * maxFinite
	}
	exp := floorLog2(a)
	if exp < expMin {
		if !f.denormals {
			// Nearest representable values are 0 and minNorm; the RNE
			// half-way point resolves to 0 (even), as in ToBits.
			if roundEven(a/minNorm) == 0 {
				return sign * 0
			}
			return sign * minNorm
		}
		mant := roundEven(a / denStep)
		if mant >= math.Ldexp(1, f.mantBits) { // rounded up to minNorm
			return sign * minNorm
		}
		return sign * mant * denStep
	}
	step := math.Ldexp(1, exp-f.mantBits)
	q := roundEven(a/step) * step
	if q > maxFinite {
		return sign * maxFinite
	}
	return sign * q
}

// ToBits implements Format (method 3) under the metadata's bias register.
func (f *AFP) ToBits(v float64, meta Metadata) Bits {
	bias := meta.ExpBias
	if meta.Kind != MetaExpBias {
		bias = f.defaultBias
	}
	expMin, _, maxFinite, denStep := f.geometry(bias)

	var sign Bits
	if math.Signbit(v) {
		sign = 1 << uint(f.expBits+f.mantBits)
	}
	if v == 0 || math.IsNaN(v) {
		return sign
	}
	a := math.Abs(v)
	if a >= maxFinite {
		return sign | f.maxFiniteCode()
	}
	exp := floorLog2(a)
	if exp < expMin {
		if !f.denormals {
			minNorm := math.Ldexp(1, expMin)
			if roundEven(a/minNorm) == 0 {
				return sign
			}
			return sign | 1<<uint(f.mantBits) // exponent code 1, mantissa 0
		}
		mant := Bits(roundEven(a / denStep))
		if mant >= 1<<uint(f.mantBits) {
			return sign | 1<<uint(f.mantBits) // rounded up to minNorm
		}
		return sign | mant
	}
	step := math.Ldexp(1, exp-f.mantBits)
	q := roundEven(a/step) * step
	if q >= math.Ldexp(2, exp) { // rounding carried into the next binade
		exp++
	}
	if q > maxFinite {
		return sign | f.maxFiniteCode()
	}
	e := Bits(exp + int(bias))
	mant := Bits(math.Round((math.Ldexp(q, -exp) - 1) * math.Ldexp(1, f.mantBits)))
	if mant >= 1<<uint(f.mantBits) {
		mant = 0
		e++
	}
	return sign | e<<uint(f.mantBits) | mant
}

func (f *AFP) maxFiniteCode() Bits {
	e := Bits(1<<uint(f.expBits) - 2)
	mant := Bits(1<<uint(f.mantBits) - 1)
	return e<<uint(f.mantBits) | mant
}

// FromBits implements Format (method 4); it honors whatever bias the
// metadata carries, including fault-corrupted values (overflow decodes to
// ±Inf via Ldexp, matching hardware behaviour).
func (f *AFP) FromBits(b Bits, meta Metadata) float64 {
	bias := meta.ExpBias
	if meta.Kind != MetaExpBias {
		bias = f.defaultBias
	}
	_, _, _, denStep := f.geometry(bias)

	mantMask := Bits(1)<<uint(f.mantBits) - 1
	mant := b & mantMask
	e := (b >> uint(f.mantBits)) & (1<<uint(f.expBits) - 1)
	sign := 1.0
	if b>>(uint(f.expBits+f.mantBits))&1 == 1 {
		sign = -1
	}
	switch {
	case e == 0:
		if !f.denormals || mant == 0 {
			return sign * 0
		}
		return sign * float64(mant) * denStep
	case e == 1<<uint(f.expBits)-1:
		if mant == 0 {
			return sign * math.Inf(1)
		}
		return math.NaN()
	default:
		frac := 1 + float64(mant)*math.Ldexp(1, -f.mantBits)
		return sign * frac * math.Ldexp(1, int(e)-int(bias))
	}
}
