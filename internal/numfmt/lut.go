package numfmt

import (
	"fmt"
	"math"
	"sort"

	"goldeneye/internal/tensor"
)

// LUT is codebook (lookup-table) quantization in the style of NF4: a k-bit
// code indexes a fixed table of normalized levels, scaled by a per-tensor
// scaling factor derived from the tensor's maximum magnitude. The levels
// are the quantiles of a standard normal distribution, which matches the
// empirical distribution of trained DNN weights far better than a uniform
// grid at very low bit widths.
//
// The scale is hardware metadata (a float32 register, like INT's), so LUT
// supports metadata fault injection; a data-value flip jumps between
// codebook levels, which are non-uniformly spaced — another distinct
// corruption profile for resiliency studies.
type LUT struct {
	name   string
	bits   int
	levels []float64 // sorted normalized levels in [-1, 1]
}

var _ Format = (*LUT)(nil)

// NewLUT returns a k-bit normal-quantile codebook format (2 ≤ k ≤ 8).
func NewLUT(bits int) *LUT {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("numfmt: unsupported LUT width %d", bits))
	}
	n := 1 << uint(bits)
	// Levels at the normal quantiles Φ⁻¹((i+0.5)/n), normalized so the
	// outermost level is ±1 (NF4's construction, with an exact zero level
	// substituted at the center pair's midpoint).
	levels := make([]float64, n)
	for i := 0; i < n; i++ {
		levels[i] = normQuantile((float64(i) + 0.5) / float64(n))
	}
	norm := math.Max(math.Abs(levels[0]), math.Abs(levels[n-1]))
	for i := range levels {
		levels[i] /= norm
	}
	// Force an exact zero so zero tensors round-trip exactly.
	zi := 0
	for i, v := range levels {
		if math.Abs(v) < math.Abs(levels[zi]) {
			zi = i
		}
	}
	levels[zi] = 0
	sort.Float64s(levels)
	return &LUT{
		name:   fmt.Sprintf("nf%d", bits),
		bits:   bits,
		levels: levels,
	}
}

// NF4 returns the 4-bit normal-float codebook.
func NF4() *LUT { return NewLUT(4) }

// Name implements Format.
func (l *LUT) Name() string { return l.name }

// BitWidth implements Format.
func (l *LUT) BitWidth() int { return l.bits }

// MetaBits implements Format: one float32 scale register per tensor.
func (l *LUT) MetaBits(int) int { return 32 }

// Levels returns a copy of the normalized codebook.
func (l *LUT) Levels() []float64 { return append([]float64(nil), l.levels...) }

// Range implements Format: the scale register is normalized to the tensor
// max, so the static range is the codebook's own span over its smallest
// nonzero level.
func (l *LUT) Range() Range {
	minPos := math.Inf(1)
	for _, v := range l.levels {
		if v > 0 && v < minPos {
			minPos = v
		}
	}
	return Range{AbsMax: 1, MinPos: minPos}
}

// scaleFor derives the scale register from the largest *finite* magnitude,
// so Inf/NaN elements (possible mid-campaign) cannot poison the register.
func (l *LUT) scaleFor(t *tensor.Tensor) float32 {
	maxAbs := 0.0
	for _, v := range t.Data() {
		a := math.Abs(float64(v))
		if a > maxAbs && !math.IsInf(a, 0) {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return float32(maxAbs)
}

// zeroIndex returns the codebook index of the exact-zero level.
func (l *LUT) zeroIndex() int {
	return sort.SearchFloat64s(l.levels, 0)
}

// nearestLevel returns the codebook index closest to x (ties to the lower
// index, which is the even-code side of the sorted table).
func (l *LUT) nearestLevel(x float64) int {
	i := sort.SearchFloat64s(l.levels, x)
	if i == 0 {
		return 0
	}
	if i == len(l.levels) {
		return len(l.levels) - 1
	}
	if x-l.levels[i-1] <= l.levels[i]-x {
		return i - 1
	}
	return i
}

// Emulate implements Format.
func (l *LUT) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	scale := float64(l.scaleFor(t))
	out := t.Clone()
	data := out.Data()
	for i, v := range data {
		x := float64(v) / scale
		if math.IsNaN(x) {
			data[i] = 0
			continue
		}
		data[i] = float32(l.levels[l.nearestLevel(x)] * scale)
	}
	return out
}

// Quantize implements Format (method 1).
func (l *LUT) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	meta := Metadata{Kind: MetaScale, Scale: l.scaleFor(t)}
	data := t.Data()
	codes := make([]Bits, len(data))
	for i, v := range data {
		codes[i] = l.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (l *LUT) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(l.FromBits(c, enc.Meta))
	}
	return out
}

// ToBits implements Format (method 3): the codebook index.
func (l *LUT) ToBits(v float64, meta Metadata) Bits {
	if math.IsNaN(v) {
		return Bits(l.zeroIndex())
	}
	scale := float64(meta.Scale)
	if scale == 0 {
		scale = 1
	}
	return Bits(l.nearestLevel(v / scale))
}

// FromBits implements Format (method 4).
func (l *LUT) FromBits(b Bits, meta Metadata) float64 {
	idx := int(uint64(b) & (1<<uint(l.bits) - 1))
	return l.levels[idx] * float64(meta.Scale)
}

// normQuantile is the inverse standard normal CDF (Acklam's rational
// approximation; |error| < 1.15e-9, ample for codebook construction).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("numfmt: quantile out of (0,1)")
	}
	a := [6]float64{-39.69683028665376, 220.9460984245205, -275.9285104469687, 138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := [5]float64{-54.47609879822406, 161.5858368580409, -155.6989798598866, 66.80131188771972, -13.28068155288572}
	c := [6]float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838, -2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := [4]float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996, 3.754408661907416}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
