package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestFP32IsIdentityForFloat32(t *testing.T) {
	f := FP32(true)
	r := rng.New(1)
	x := tensor.Randn(r, 10, 64)
	if !f.Emulate(x).AllClose(x, 0) {
		t.Fatal("FP32 emulation must be exact for float32 inputs")
	}
}

func TestFP16KnownValues(t *testing.T) {
	f := FP16(true)
	tests := []struct {
		give float64
		want float64
	}{
		{give: 1.0, want: 1.0},
		{give: 65504, want: 65504},                                 // max finite
		{give: 1e9, want: 65504},                                   // saturates
		{give: -1e9, want: -65504},                                 // saturates negative
		{give: 5.960464477539063e-08, want: 5.960464477539063e-08}, // min denormal
		{give: 3.1e-08, want: 5.960464477539063e-08},               // rounds up to min denormal
		{give: 2.9e-08, want: 0},                                   // below half-ULP, rounds to zero
		{give: 1e-12, want: 0},                                     // underflows to zero
		{give: 0, want: 0},
		{give: 1.0009765625, want: 1.0009765625}, // 1 + 2^-10 exactly representable
	}
	for _, tt := range tests {
		got := f.quantizeScalar(tt.give)
		if got != tt.want {
			t.Errorf("quantize(%g) = %g, want %g", tt.give, got, tt.want)
		}
	}
}

func TestFPRoundToNearestEven(t *testing.T) {
	// e4m3: near 1.0 the step is 2^-3 = 0.125. The midpoint 1.0625 must
	// round to the even mantissa neighbor 1.0 (mantissa 000), and 1.1875
	// (midpoint between 1.125 and 1.25) to 1.25 (mantissa 010).
	f := FP8E4M3(true)
	if got := f.quantizeScalar(1.0625); got != 1.0 {
		t.Errorf("RNE midpoint 1.0625 → %g, want 1.0", got)
	}
	if got := f.quantizeScalar(1.1875); got != 1.25 {
		t.Errorf("RNE midpoint 1.1875 → %g, want 1.25", got)
	}
}

func TestFPDenormalToggle(t *testing.T) {
	withDN := FP8E4M3(true)
	noDN := FP8E4M3(false)
	// 2^-8 is below the min normal 2^-6 = 0.015625.
	sub := math.Ldexp(1, -8)
	if got := withDN.quantizeScalar(sub); got != sub {
		t.Errorf("with denormals: quantize(2^-8) = %g, want %g", got, sub)
	}
	if got := noDN.quantizeScalar(sub); got != 0 {
		t.Errorf("without denormals: quantize(2^-8) = %g, want 0", got)
	}
	// Values just below min normal but above half of it round up to minNorm.
	almost := math.Ldexp(1, -6) * 0.8
	if got := noDN.quantizeScalar(almost); got != math.Ldexp(1, -6) {
		t.Errorf("without denormals: quantize(0.8·minNorm) = %g, want minNorm", got)
	}
}

func TestFPToBitsKnownPatterns(t *testing.T) {
	f := FP8E4M3(true)
	meta := Metadata{Kind: MetaNone}
	tests := []struct {
		give float64
		want Bits
	}{
		{give: 0, want: 0b0_0000_000},
		{give: 1.0, want: 0b0_0111_000}, // exponent = bias = 7
		{give: -1.0, want: 0b1_0111_000},
		{give: 1.5, want: 0b0_0111_100},
		{give: 240, want: 0b0_1110_111}, // max finite
		{give: 1e9, want: 0b0_1110_111}, // saturates to max finite
	}
	for _, tt := range tests {
		if got := f.ToBits(tt.give, meta); got != tt.want {
			t.Errorf("ToBits(%g) = %08b, want %08b", tt.give, got, tt.want)
		}
	}
}

func TestFPFromBitsInfNaN(t *testing.T) {
	f := FP8E4M3(true)
	meta := Metadata{Kind: MetaNone}
	if got := f.FromBits(0b0_1111_000, meta); !math.IsInf(got, 1) {
		t.Errorf("exp=all-ones mant=0 should decode +Inf, got %g", got)
	}
	if got := f.FromBits(0b1_1111_000, meta); !math.IsInf(got, -1) {
		t.Errorf("sign+exp=all-ones should decode -Inf, got %g", got)
	}
	if got := f.FromBits(0b0_1111_001, meta); !math.IsNaN(got) {
		t.Errorf("exp=all-ones mant≠0 should decode NaN, got %g", got)
	}
}

func TestFPFromBitsDenormalFlush(t *testing.T) {
	meta := Metadata{Kind: MetaNone}
	pattern := Bits(0b0_0000_011) // denormal mantissa 3
	withDN := FP8E4M3(true)
	if got := withDN.FromBits(pattern, meta); got != 3*math.Ldexp(1, -9) {
		t.Errorf("denormal decode = %g", got)
	}
	noDN := FP8E4M3(false)
	if got := noDN.FromBits(pattern, meta); got != 0 {
		t.Errorf("denormal pattern without DN support should flush to 0, got %g", got)
	}
}

// Property: FromBits ∘ ToBits equals scalar quantization, for every FP
// geometry in use.
func TestFPBitsRoundTripProperty(t *testing.T) {
	formats := []*FP{
		FP16(true), FP16(false), BFloat16(true), FP8E4M3(true),
		FP8E4M3(false), FP8E5M2(true), NewFP(3, 4, true),
	}
	meta := Metadata{Kind: MetaNone}
	for _, f := range formats {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			r := rng.New(99)
			for i := 0; i < 500; i++ {
				v := randMagnitude(r)
				q := f.quantizeScalar(v)
				back := f.FromBits(f.ToBits(v, meta), meta)
				if back != q {
					t.Fatalf("round trip of %g: FromBits(ToBits) = %g, quantize = %g", v, back, q)
				}
			}
		})
	}
}

// Property: quantization is idempotent — emulating twice equals once.
func TestFPEmulateIdempotentProperty(t *testing.T) {
	f := FP8E4M3(true)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.Randn(r, 10, 3, 7)
		once := f.Emulate(x)
		twice := f.Emulate(once)
		return twice.AllClose(once, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization error is at most half a ULP inside the normal range.
func TestFPHalfULPProperty(t *testing.T) {
	f := FP16(true)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		for i := 0; i < 50; i++ {
			v := (r.Float64()*2 - 1) * 100 // well inside FP16 normal range
			q := f.quantizeScalar(v)
			if v == 0 {
				continue
			}
			exp := floorLog2(math.Abs(v))
			ulp := math.Ldexp(1, exp-f.MantBits())
			if math.Abs(q-v) > ulp/2+1e-300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFPGeometryAccessors(t *testing.T) {
	f := FP8E4M3(true)
	if f.BitWidth() != 8 || f.ExpBits() != 4 || f.MantBits() != 3 || !f.Denormals() {
		t.Fatalf("unexpected geometry: width=%d e=%d m=%d dn=%v",
			f.BitWidth(), f.ExpBits(), f.MantBits(), f.Denormals())
	}
	if f.MetaBits(1000) != 0 {
		t.Fatal("FP must carry no metadata")
	}
}

func TestNewFPRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFP(1, 3, true)
}

// randMagnitude draws values spanning denormal-scale to saturation-scale
// magnitudes, so round-trip properties exercise every quantization regime.
func randMagnitude(r *rng.RNG) float64 {
	exp := r.Intn(60) - 30
	mant := r.Float64()*2 - 1
	return mant * math.Ldexp(1, exp)
}
