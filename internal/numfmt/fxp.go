package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// FxP is a signed fixed-point format, written FxP(1, i, f) in the paper's
// notation: one sign bit, i integer bits, and f fractional bits, stored in
// two's complement. The radix sits f bits from the LSB. Quantization rounds
// to nearest-even and saturates at the representable extremes.
type FxP struct {
	name     string
	intBits  int
	fracBits int

	step    float64 // 2^-fracBits
	maxCode int64   // 2^(i+f) - 1
	minCode int64   // -2^(i+f)
}

var _ Format = (*FxP)(nil)

// NewFxP returns a fixed-point format with i integer and f fractional bits
// (total width 1+i+f).
func NewFxP(i, f int) *FxP {
	if i < 0 || f < 0 || i+f < 1 || i+f > 62 {
		panic(fmt.Sprintf("numfmt: unsupported FxP geometry (1,%d,%d)", i, f))
	}
	magBits := uint(i + f)
	return &FxP{
		name:     fmt.Sprintf("fxp_1_%d_%d", i, f),
		intBits:  i,
		fracBits: f,
		step:     math.Ldexp(1, -f),
		maxCode:  int64(1)<<magBits - 1,
		minCode:  -(int64(1) << magBits),
	}
}

// Name implements Format.
func (f *FxP) Name() string { return f.name }

// BitWidth implements Format.
func (f *FxP) BitWidth() int { return 1 + f.intBits + f.fracBits }

// MetaBits implements Format; FxP carries no hardware metadata.
func (f *FxP) MetaBits(int) int { return 0 }

// Radix returns the bit position (from the LSB) separating the integer from
// the fractional field, the paper's "radix" hyperparameter.
func (f *FxP) Radix() int { return f.fracBits }

// Range implements Format. The absolute maximum is the two's-complement
// negative extreme 2^i, matching Table I's FxP(1,15,16) row; the minimum
// positive magnitude is one LSB, 2^-f.
func (f *FxP) Range() Range {
	return Range{AbsMax: math.Ldexp(1, f.intBits), MinPos: f.step}
}

func (f *FxP) quantizeCode(v float64) int64 {
	if math.IsNaN(v) {
		return 0
	}
	c := roundEven(v / f.step)
	if c > float64(f.maxCode) {
		return f.maxCode
	}
	if c < float64(f.minCode) {
		return f.minCode
	}
	return int64(c)
}

// Emulate implements Format with an arithmetic fast path: scale, one
// branch-free RNE, clamp, scale back.
func (f *FxP) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	countKernelFused()
	out := t.Clone()
	f.emulateChunk(out.Data())
	return out
}

// emulateRowsInPlace implements rowEmulator. FxP snapping is element-local,
// so the row geometry is irrelevant.
func (f *FxP) emulateRowsInPlace(data []float32, _, _ int) {
	f.emulateChunk(data)
}

// emulateChunk snaps a contiguous chunk of float32 storage to the nearest
// fixed-point grid values in place — the shared kernel behind Emulate, the
// batched row variant, and the matmul epilogue.
func (f *FxP) emulateChunk(data []float32) {
	if f.maxCode >= magicSafe {
		for i, v := range data {
			data[i] = float32(float64(f.quantizeCode(float64(v))) * f.step)
		}
		return
	}
	inv := 1 / f.step
	maxC, minC := float64(f.maxCode), float64(f.minCode)
	for i, v := range data {
		c := float64(v) * inv
		switch {
		case c >= maxC:
			c = maxC
		case c <= minC:
			c = minC
		case c != c: // NaN
			c = 0
		default:
			c = roundEvenMagic(c)
		}
		data[i] = float32(c * f.step)
	}
}

// Quantize implements Format (method 1).
func (f *FxP) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	data := t.Data()
	codes := make([]Bits, len(data))
	meta := Metadata{Kind: MetaNone}
	for i, v := range data {
		codes[i] = f.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (f *FxP) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(f.FromBits(c, enc.Meta))
	}
	return out
}

// ToBits implements Format (method 3): the two's-complement code in
// BitWidth bits.
func (f *FxP) ToBits(v float64, _ Metadata) Bits {
	width := uint(f.BitWidth())
	code := f.quantizeCode(v)
	return Bits(uint64(code) & (1<<width - 1))
}

// FromBits implements Format (method 4): sign-extend the two's-complement
// code and scale by the fractional step.
func (f *FxP) FromBits(b Bits, _ Metadata) float64 {
	width := uint(f.BitWidth())
	raw := uint64(b) & (1<<width - 1)
	// Sign-extend from the format width to 64 bits.
	if raw&(1<<(width-1)) != 0 {
		raw |= ^uint64(0) << width
	}
	return float64(int64(raw)) * f.step
}
