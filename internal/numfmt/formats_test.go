package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func allFormats() []Format {
	return []Format{
		FP32(true), FP16(true), BFloat16(true), FP8E4M3(true), FP8E4M3(false),
		FxP32(), FxP16(), NewFxP(3, 4),
		INT8(), INT16(),
		BFPe5m5(), NewBFP(8, 7, 16),
		AFPe5m2(), AFP8E4M3(),
		Posit8(), Posit16(), NewPosit(6, 1),
		LNS8(), LNS16(),
		NF4(), NewLUT(3),
	}
}

// Property (all formats): the fast Emulate path must agree exactly with the
// hardware-faithful Dequantize(Quantize(x)) path. This is the consistency
// contract between methods 1+2 and the scalar machinery of methods 3+4.
func TestEmulateMatchesCodePathProperty(t *testing.T) {
	for _, f := range allFormats() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			prop := func(seed uint64) bool {
				r := rng.New(seed)
				// Sweep magnitudes from deep-subnormal to saturation so the
				// fast path's bit-twiddling edge cases are all exercised.
				for _, scale := range []float64{1e-40, 1e-9, 1e-3, 1, 1e3, 1e9, 1e38} {
					x := tensor.Randn(r, scale, 3, 13)
					fast := f.Emulate(x)
					slow := f.Dequantize(f.Quantize(x))
					if !fast.AllClose(slow, 0) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: quantization preserves sign (or maps to zero).
func TestQuantizationPreservesSignProperty(t *testing.T) {
	for _, f := range allFormats() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			prop := func(seed uint64) bool {
				r := rng.New(seed)
				x := tensor.Randn(r, 1, 64)
				y := f.Emulate(x)
				for i, v := range x.Data() {
					q := y.Data()[i]
					if q != 0 && (q > 0) != (v > 0) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: emulated values never exceed the format's representable maximum
// (for per-tensor-scaled formats, the tensor's own maximum defines it).
func TestQuantizationBoundedProperty(t *testing.T) {
	for _, f := range allFormats() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			prop := func(seed uint64) bool {
				r := rng.New(seed)
				x := tensor.Randn(r, 100, 64) // includes large magnitudes
				y := f.Emulate(x)
				bound := f.Range().AbsMax
				switch f.(type) {
				case *INT, *LUT:
					// Scaled formats: the bound is the input max itself.
					bound = x.AbsMax() * (1 + 1e-6)
				case *AFP:
					// AFP slides its window to the input's binade; rounding
					// can land up to the top of that binade's finite range,
					// which is strictly below twice the input max.
					bound = math.Max(bound, 2*x.AbsMax())
				}
				return y.AbsMax() <= bound
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: Emulate is idempotent for formats whose quantization grid does
// not move between passes (FP, FxP, INT, BFP). AFP is excluded: rounding at
// a binade boundary can raise the tensor max and legitimately shift the
// adaptive bias on the second pass.
func TestEmulateIdempotentProperty(t *testing.T) {
	formats := []Format{
		FP16(true), FP8E4M3(false), FxP16(), INT8(), BFPe5m5(), NewBFP(4, 3, 8),
	}
	for _, f := range formats {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			prop := func(seed uint64) bool {
				r := rng.New(seed)
				x := tensor.Randn(r, 4, 31)
				once := f.Emulate(x)
				return f.Emulate(once).AllClose(once, 0)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: flipping any bit of a valid code and flipping it back restores
// the original decoded value (injection reversibility).
func TestBitFlipReversibleProperty(t *testing.T) {
	for _, f := range allFormats() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			r := rng.New(5)
			x := tensor.Randn(r, 1, 32)
			enc := f.Quantize(x)
			base := f.Dequantize(enc)
			for i := 0; i < 20; i++ {
				idx := r.Intn(len(enc.Codes))
				bit := r.Intn(f.BitWidth())
				enc.Codes[idx] = enc.Codes[idx].Flip(bit)
				enc.Codes[idx] = enc.Codes[idx].Flip(bit)
				if !f.Dequantize(enc).AllClose(base, 0) {
					t.Fatalf("double flip of bit %d at %d is not identity", bit, idx)
				}
			}
		})
	}
}

func TestZeroTensorEncodesToZero(t *testing.T) {
	for _, f := range allFormats() {
		x := tensor.New(3, 3)
		y := f.Emulate(x)
		if y.AbsMax() != 0 {
			t.Errorf("%s: zero tensor emulated to nonzero %v", f.Name(), y)
		}
	}
}

func TestEncodingCloneIsDeep(t *testing.T) {
	f := BFPe5m5()
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	enc := f.Quantize(x)
	cp := enc.Clone()
	cp.Codes[0] = cp.Codes[0].Flip(0)
	cp.Meta.SharedExp[0] ^= 1
	if enc.Codes[0] == cp.Codes[0] || enc.Meta.SharedExp[0] == cp.Meta.SharedExp[0] {
		t.Fatal("Clone must not alias codes or metadata")
	}
}

func TestBitsHelpers(t *testing.T) {
	b := Bits(0b1010)
	if b.Bit(1) != 1 || b.Bit(0) != 0 {
		t.Fatal("Bit extraction wrong")
	}
	if b.Flip(0) != 0b1011 || b.Flip(3) != 0b0010 {
		t.Fatal("Flip wrong")
	}
}

func TestMetaKindString(t *testing.T) {
	tests := []struct {
		kind MetaKind
		want string
	}{
		{MetaNone, "none"},
		{MetaScale, "scale"},
		{MetaSharedExp, "shared-exponent"},
		{MetaExpBias, "exponent-bias"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("MetaKind.String() = %q, want %q", got, tt.want)
		}
	}
}
