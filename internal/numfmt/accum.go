package numfmt

// AccumRound returns the scalar rounding a GEMM applies to each partial sum
// when its accumulator register runs in format f: a ToBits→FromBits round
// trip under empty metadata, applied after every multiply-accumulate. A nil
// f returns nil — the native float32 accumulator, which producers treat as
// "no rounding".
//
// Only metadata-free formats (MetaNone: FP, FxP, posit, LNS) make valid
// accumulator formats: per-tensor scales, shared exponents, and adaptive
// biases are derived from a completed tensor and cannot exist mid-reduction.
// Campaign validation enforces this; AccumRound itself just passes empty
// metadata, which such formats ignore.
//
// The closure is stateless and safe for concurrent use from the GEMM's
// row-sharded worker goroutines.
func AccumRound(f Format) func(float32) float32 {
	if f == nil {
		return nil
	}
	meta := Metadata{Kind: MetaNone}
	return func(v float32) float32 {
		return float32(f.FromBits(f.ToBits(float64(v), meta), meta))
	}
}
