// Package numfmt implements GoldenEye's number-format framework: the paper's
// primary contribution (§III). It provides a unified API for emulating
// arbitrary numerical data formats on top of a float32 compute substrate,
// together with the hardware-implementation metadata (scaling factors, shared
// exponents, adaptive exponent biases) that the paper elevates into software
// for hardware-aware fault injection.
//
// The Format interface mirrors the four pure-virtual methods of §III-B:
//
//	Quantize    ↔ tensor real_to_format_tensor(tensor)   (method 1)
//	Dequantize  ↔ tensor format_to_real_tensor(tensor)   (method 2)
//	ToBits      ↔ bitstring real_to_format(value)        (method 3)
//	FromBits    ↔ value format_to_real(bitstring)        (method 4)
//
// Methods 1 and 2 operate on whole tensors and are the fast path used during
// inference emulation. Methods 3 and 4 are scalar and slower, but give the
// fine-grained control needed for bit-level error injection: the abstract
// injection routine is ToBits → flip → FromBits, exactly as described in the
// paper.
package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// Bits is a value's bit pattern in some format, with the least-significant
// bit at position 0 and the width given by the owning Format. Patterns wider
// than 64 bits are not needed by any format in this repository.
type Bits uint64

// Flip returns b with bit position i inverted.
func (b Bits) Flip(i int) Bits { return b ^ (1 << uint(i)) }

// Bit returns bit i of b.
func (b Bits) Bit(i int) int { return int(b>>uint(i)) & 1 }

// MetaKind identifies what hardware metadata a format carries.
type MetaKind int

// Metadata kinds. Formats without hardware metadata use MetaNone.
const (
	MetaNone      MetaKind = iota + 1 // plain formats: FP, FxP
	MetaScale                         // INT: per-tensor scaling-factor register
	MetaSharedExp                     // BFP: per-block shared-exponent register
	MetaExpBias                       // AFP: per-tensor exponent-bias register
)

// String returns the kind's short name.
func (k MetaKind) String() string {
	switch k {
	case MetaNone:
		return "none"
	case MetaScale:
		return "scale"
	case MetaSharedExp:
		return "shared-exponent"
	case MetaExpBias:
		return "exponent-bias"
	default:
		return fmt.Sprintf("MetaKind(%d)", int(k))
	}
}

// Metadata is the hardware-implementation state of an encoded tensor that is
// stored outside the per-element data path: in real accelerators this lives
// in dedicated registers or sideband storage. The fault injector can flip
// bits here directly (§III-B "metadata support ... can directly be
// manipulated during an error injection").
type Metadata struct {
	Kind MetaKind

	// Scale is the INT quantization scaling factor, conceptually a float32
	// register; bit flips apply to its IEEE-754 representation.
	Scale float32

	// SharedExp holds one biased shared-exponent code per block for BFP.
	// Each entry occupies the format's exponent width.
	SharedExp []uint8

	// BlockSize is the number of elements per shared exponent (BFP).
	BlockSize int

	// ExpBias is the AdaptivFloat per-tensor exponent bias, conceptually an
	// int8 register; bit flips apply to its two's-complement representation.
	ExpBias int8
}

// Clone returns a deep copy of the metadata, so injections never corrupt a
// caller's golden copy.
func (m Metadata) Clone() Metadata {
	c := m
	c.SharedExp = append([]uint8(nil), m.SharedExp...)
	return c
}

// MetaAxis declares the scope of an Encoding's metadata: whether one set of
// hardware registers covers the whole tensor or each batch row carries its
// own. Per-row metadata is what makes batched fault injection bit-identical
// to batch-1 execution — a sample's scale/bias/shared exponents never depend
// on its batchmates.
type MetaAxis int

// Metadata axes. The zero value is the historical per-tensor scope, so
// existing encodings keep their meaning.
const (
	AxisTensor MetaAxis = iota // one Metadata for the whole tensor (Encoding.Meta)
	AxisBatch                  // one Metadata per batch row (Encoding.RowMeta)
)

// String returns the axis's short name.
func (a MetaAxis) String() string {
	switch a {
	case AxisTensor:
		return "tensor"
	case AxisBatch:
		return "batch"
	default:
		return fmt.Sprintf("MetaAxis(%d)", int(a))
	}
}

// Encoding is a tensor in format space: the per-element bit patterns plus
// any metadata. It is the hardware-faithful representation that the fault
// injector mutates.
type Encoding struct {
	Codes []Bits
	Shape []int
	Meta  Metadata

	// MetadataAxis declares how the metadata is scoped. With AxisTensor
	// (the zero value) Meta covers every element; with AxisBatch, Meta is
	// unused and RowMeta[r] holds the registers of batch row r, whose codes
	// occupy the r-th contiguous slice of Codes.
	MetadataAxis MetaAxis

	// RowMeta holds one Metadata per batch row for AxisBatch encodings
	// (len(RowMeta) == Shape[0]); nil for AxisTensor encodings.
	RowMeta []Metadata
}

// Rows returns the number of batch rows the encoding addresses: Shape[0]
// for AxisBatch encodings, 1 otherwise (per-tensor metadata treats the
// whole tensor as a single row).
func (e *Encoding) Rows() int {
	if e.MetadataAxis == AxisBatch {
		return len(e.RowMeta)
	}
	return 1
}

// Clone returns a deep copy of the encoding.
func (e *Encoding) Clone() *Encoding {
	c := &Encoding{
		Codes:        append([]Bits(nil), e.Codes...),
		Shape:        append([]int(nil), e.Shape...),
		Meta:         e.Meta.Clone(),
		MetadataAxis: e.MetadataAxis,
	}
	if e.RowMeta != nil {
		c.RowMeta = make([]Metadata, len(e.RowMeta))
		for i, m := range e.RowMeta {
			c.RowMeta[i] = m.Clone()
		}
	}
	return c
}

// Range describes a format's representable dynamic range (Table I).
type Range struct {
	AbsMax float64 // largest representable magnitude
	MinPos float64 // smallest positive nonzero magnitude
}

// DB returns the dynamic range in decibels, 20·log10(max/min), as reported
// in Table I of the paper.
func (r Range) DB() float64 {
	return 20 * math.Log10(r.AbsMax/r.MinPos)
}

// Format is a numerical data format. Implementations must be stateless and
// safe for concurrent use: all per-tensor state (metadata) travels in the
// Encoding.
type Format interface {
	// Name returns a short identifier, e.g. "fp_e4m3" or "bfp_e5m5_b0".
	Name() string

	// BitWidth returns the per-element storage width in bits, excluding
	// amortized metadata (a BFP shared exponent is counted in MetaBits).
	BitWidth() int

	// MetaBits returns the total metadata register width for a tensor of n
	// elements (0 for formats without metadata).
	MetaBits(n int) int

	// Quantize converts a real-valued tensor into format space (method 1).
	Quantize(t *tensor.Tensor) *Encoding

	// Dequantize reconstructs real values from format space (method 2).
	Dequantize(enc *Encoding) *tensor.Tensor

	// ToBits converts one real value into its bit pattern under the given
	// metadata (method 3). Formats with MetaNone ignore meta.
	ToBits(v float64, meta Metadata) Bits

	// FromBits converts a bit pattern back to a real value (method 4).
	FromBits(b Bits, meta Metadata) float64

	// Emulate quantizes and dequantizes t in one step: the value each
	// element would take after a round trip through the format. This is
	// the inference-emulation hot path: all five paper families run fused
	// single-pass kernels here (see kernels.go), bit-identical to the
	// generic Dequantize∘Quantize composition that defines the semantics.
	// LNS, posit, and the LUT take the generic path; SetFusedKernels(false)
	// pins BFP/AFP back to it for differential testing and for measuring
	// the paper's Fig 3 dichotomy between accelerated and code-based
	// backends.
	Emulate(t *tensor.Tensor) *tensor.Tensor

	// Range reports the representable dynamic range (Table I).
	Range() Range
}

// emulateViaCodes is the generic (slow) Emulate implementation: a full
// quantize→dequantize round trip through code space. BFP and AFP fall back
// to it when fused kernels are disabled (SetFusedKernels), and it remains
// the reference the fused kernels are differentially tested against.
func emulateViaCodes(f Format, t *tensor.Tensor) *tensor.Tensor {
	countKernelGeneric()
	return f.Dequantize(f.Quantize(t))
}

// roundEven rounds to the nearest integer with ties to even, the rounding
// mode used by every format in this package (matching IEEE-754 RNE).
func roundEven(v float64) float64 { return math.RoundToEven(v) }

// roundEvenMagic is the branch-free RNE used in tensor fast paths: adding
// and subtracting 1.5·2^52 forces the hardware's round-to-nearest-even at
// integer granularity. Valid for |v| < 2^51; callers guard the range.
// Exactness against roundEven is covered by property tests.
func roundEvenMagic(v float64) float64 {
	const magic = 3 * (1 << 51)
	return v + magic - magic
}

// magicSafe is the magnitude below which roundEvenMagic is exact.
const magicSafe = 1 << 51

// clampInt limits v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// floorLog2 returns floor(log2(|v|)) for v != 0 using exact exponent
// extraction, avoiding log() rounding pitfalls at powers of two.
func floorLog2(v float64) int {
	frac, exp := math.Frexp(math.Abs(v)) // |v| = frac × 2^exp, frac ∈ [0.5, 1)
	_ = frac
	return exp - 1
}
