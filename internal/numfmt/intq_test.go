package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestINTScaleMapsMaxToQMax(t *testing.T) {
	q := NewINT(8)
	x := tensor.FromSlice([]float32{-2, 1, 0.5}, 3)
	enc := q.Quantize(x)
	if enc.Meta.Kind != MetaScale {
		t.Fatal("INT encoding must carry a scale register")
	}
	wantScale := float32(2.0 / 127)
	if math.Abs(float64(enc.Meta.Scale-wantScale)) > 1e-9 {
		t.Fatalf("scale %v, want %v", enc.Meta.Scale, wantScale)
	}
	// The max-magnitude element maps to -qmax.
	if got := q.FromBits(enc.Codes[0], enc.Meta); math.Abs(got+2) > 1e-6 {
		t.Fatalf("decode max element = %v, want -2", got)
	}
}

func TestINTSymmetry(t *testing.T) {
	// Symmetric quantization: codes span [-qmax, qmax], never -2^(b-1).
	q := NewINT(8)
	x := tensor.FromSlice([]float32{-1, 1}, 2)
	enc := q.Quantize(x)
	for _, c := range enc.Codes {
		v := int8(uint8(c))
		if v == -128 {
			t.Fatal("symmetric INT must not use -128")
		}
	}
}

func TestINTZeroTensor(t *testing.T) {
	q := NewINT(8)
	x := tensor.New(4)
	enc := q.Quantize(x)
	if enc.Meta.Scale != 1 {
		t.Fatalf("zero tensor scale %v, want 1", enc.Meta.Scale)
	}
	if q.Dequantize(enc).AbsMax() != 0 {
		t.Fatal("zero tensor must stay zero")
	}
}

func TestINTRangeTable(t *testing.T) {
	if r := NewINT(8).Range(); r.AbsMax != 127 || r.MinPos != 1 {
		t.Fatalf("INT8 range %+v", r)
	}
	if r := NewINT(16).Range(); r.AbsMax != 32767 {
		t.Fatalf("INT16 range %+v", r)
	}
}

// Property: quantization error ≤ scale/2 for in-range values.
func TestINTHalfScaleProperty(t *testing.T) {
	q := NewINT(8)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.Randn(r, 1, 64)
		scale := float64(q.scaleFor(x))
		y := q.Emulate(x)
		for i, v := range x.Data() {
			if math.Abs(float64(y.Data()[i])-float64(v)) > scale/2+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: dequantized codes are always integer multiples of the scale.
func TestINTGridProperty(t *testing.T) {
	q := NewINT(6)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.Randn(r, 3, 40)
		enc := q.Quantize(x)
		y := q.Dequantize(enc)
		for _, v := range y.Data() {
			c := float64(v) / float64(enc.Meta.Scale)
			if math.Abs(c-math.Round(c)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestINTBitsRoundTrip(t *testing.T) {
	q := NewINT(8)
	meta := Metadata{Kind: MetaScale, Scale: 0.1}
	scale := float64(meta.Scale) // the float32 register value, widened
	for _, v := range []float64{0, 0.1, -0.3, 12.7, -12.7, 1000} {
		b := q.ToBits(v, meta)
		back := q.FromBits(b, meta)
		want := float64(q.quantizeCode(v, scale)) * scale
		if math.Abs(back-want) > 1e-9 {
			t.Errorf("round trip %v: %v vs %v", v, back, want)
		}
	}
}

func TestNewINTRejectsBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewINT(1)
}
