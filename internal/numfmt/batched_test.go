package numfmt

import (
	"testing"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// batchedFormats covers every family: metadata-free (FP, FxP, LNS, posit)
// and metadata-bearing (INT scale, BFP shared exponents, AFP bias, LUT
// scale).
func batchedFormats() []Format {
	return []Format{
		FP8E4M3(true), FxP16(), LNS8(), Posit8(),
		INT8(), BFPe5m5(), AFPe5m2(), NewLUT(4),
	}
}

// batchedInput builds a batch whose rows have deliberately different
// magnitudes, so per-tensor metadata (scale, bias, shared exponents) would
// differ from per-row metadata if the batched path leaked across rows.
func batchedInput(rows, cols int) *tensor.Tensor {
	r := rng.New(7)
	t := tensor.Randn(r, 1, rows, cols)
	data := t.Data()
	for i := 0; i < rows; i++ {
		scale := float32(int32(1) << uint(2*i)) // 1, 4, 16, …
		for j := 0; j < cols; j++ {
			data[i*cols+j] *= scale
		}
	}
	return t
}

func TestQuantizeBatchedMatchesPerRow(t *testing.T) {
	in := batchedInput(4, 17)
	rows, rowLen := 4, 17
	for _, f := range batchedFormats() {
		enc := QuantizeBatched(f, in)
		if enc.MetadataAxis != AxisBatch || enc.Rows() != rows {
			t.Fatalf("%s: batched encoding has axis %v, %d rows", f.Name(), enc.MetadataAxis, enc.Rows())
		}
		for r := 0; r < rows; r++ {
			ref := f.Quantize(in.Slice(r, r+1))
			for j := 0; j < rowLen; j++ {
				if enc.Codes[r*rowLen+j] != ref.Codes[j] {
					t.Fatalf("%s: row %d code %d = %#x, batch-1 %#x",
						f.Name(), r, j, enc.Codes[r*rowLen+j], ref.Codes[j])
				}
			}
			got, want := enc.RowMeta[r], ref.Meta
			if got.Kind != want.Kind || got.Scale != want.Scale ||
				got.BlockSize != want.BlockSize || got.ExpBias != want.ExpBias ||
				len(got.SharedExp) != len(want.SharedExp) {
				t.Fatalf("%s: row %d metadata %+v, batch-1 %+v", f.Name(), r, got, want)
			}
			for b := range want.SharedExp {
				if got.SharedExp[b] != want.SharedExp[b] {
					t.Fatalf("%s: row %d shared exp %d differs", f.Name(), r, b)
				}
			}
		}
	}
}

func TestDequantizeBatchedRoundTrip(t *testing.T) {
	in := batchedInput(3, 11)
	for _, f := range batchedFormats() {
		got := DequantizeBatched(f, QuantizeBatched(f, in)).Data()
		for r := 0; r < 3; r++ {
			want := f.Dequantize(f.Quantize(in.Slice(r, r+1))).Data()
			for j, w := range want {
				if got[r*11+j] != w {
					t.Fatalf("%s: row %d elem %d = %v, batch-1 %v", f.Name(), r, j, got[r*11+j], w)
				}
			}
		}
	}
}

func TestEmulateBatchedMatchesPerRow(t *testing.T) {
	in := batchedInput(5, 13)
	for _, f := range batchedFormats() {
		got := EmulateBatched(f, in).Data()
		for r := 0; r < 5; r++ {
			want := f.Emulate(in.Slice(r, r+1)).Data()
			for j, w := range want {
				if got[r*13+j] != w {
					t.Fatalf("%s: row %d elem %d = %v, batch-1 %v", f.Name(), r, j, got[r*13+j], w)
				}
			}
		}
	}
}

// EmulateBatched must take the same parallel path for large tensors that
// real campaign activations hit.
func TestEmulateBatchedParallelPath(t *testing.T) {
	in := batchedInput(8, emulateRowParallelMin/8+3)
	f := INT8()
	got := EmulateBatched(f, in).Data()
	cols := in.Len() / 8
	for r := 0; r < 8; r++ {
		want := f.Emulate(in.Slice(r, r+1)).Data()
		for j, w := range want {
			if got[r*cols+j] != w {
				t.Fatalf("row %d elem %d = %v, batch-1 %v", r, j, got[r*cols+j], w)
			}
		}
	}
}

func TestEncodingCloneCopiesRowMeta(t *testing.T) {
	enc := QuantizeBatched(BFPe5m5(), batchedInput(2, 9))
	c := enc.Clone()
	if c.MetadataAxis != AxisBatch || len(c.RowMeta) != 2 {
		t.Fatalf("clone lost batch metadata: %+v", c)
	}
	c.RowMeta[0].SharedExp[0] ^= 0xff
	if enc.RowMeta[0].SharedExp[0] == c.RowMeta[0].SharedExp[0] {
		t.Fatal("clone shares SharedExp storage with the original")
	}
}
