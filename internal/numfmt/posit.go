package numfmt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"goldeneye/internal/tensor"
)

// Posit is a type-III unum posit format with n total bits and es exponent
// bits: sign, a unary run-length "regime", es exponent bits, and fraction.
// Posits are one of the emerging number systems the paper's extensible
// Format API is designed to absorb ("new formats can be designed and
// incorporated ... by implementing the four pure virtual functions"); they
// trade tapered precision for enormous dynamic range with no Inf/denormal
// machinery.
//
// Quantization uses an exact value table: every n-bit pattern is decoded
// once (posits are at most 16 bits here), sorted, and lookups round to the
// nearest representable value with ties to the even code, matching the
// posit standard's round-to-nearest semantics. Negative patterns use two's
// complement, so the format carries no metadata.
type Posit struct {
	name string
	n    int
	es   int

	once   sync.Once
	values []float64 // sorted representable values
	codes  []Bits    // codes[i] encodes values[i]
	decode []float64 // decode[c] = value of code c (NaR = NaN)
}

var _ Format = (*Posit)(nil)

// NewPosit returns an n-bit posit with es exponent bits (2 ≤ n ≤ 16).
func NewPosit(n, es int) *Posit {
	if n < 3 || n > 16 || es < 0 || es > 3 {
		panic(fmt.Sprintf("numfmt: unsupported posit geometry n=%d es=%d", n, es))
	}
	return &Posit{
		name: fmt.Sprintf("posit%d_es%d", n, es),
		n:    n,
		es:   es,
	}
}

// Posit8 returns the common 8-bit, es=0 posit.
func Posit8() *Posit { return NewPosit(8, 0) }

// Posit16 returns the standard 16-bit, es=1 posit.
func Posit16() *Posit { return NewPosit(16, 1) }

// Name implements Format.
func (p *Posit) Name() string { return p.name }

// BitWidth implements Format.
func (p *Posit) BitWidth() int { return p.n }

// MetaBits implements Format; posits carry no metadata.
func (p *Posit) MetaBits(int) int { return 0 }

// ES returns the exponent field width.
func (p *Posit) ES() int { return p.es }

// Range implements Format: maxpos = 2^((n-2)·2^es), minpos its reciprocal.
func (p *Posit) Range() Range {
	useed := math.Ldexp(1, 1<<uint(p.es)) // 2^(2^es)
	maxpos := math.Pow(useed, float64(p.n-2))
	return Range{AbsMax: maxpos, MinPos: 1 / maxpos}
}

// decodeCode converts one n-bit pattern to its real value (NaN for NaR).
func (p *Posit) decodeCode(code uint64) float64 {
	mask := uint64(1)<<uint(p.n) - 1
	code &= mask
	if code == 0 {
		return 0
	}
	nar := uint64(1) << uint(p.n-1)
	if code == nar {
		return math.NaN() // Not a Real
	}
	sign := 1.0
	if code&nar != 0 {
		sign = -1
		code = (-code) & mask // two's complement
	}
	// Regime: run of identical bits starting below the sign bit.
	pos := p.n - 2
	r0 := (code >> uint(pos)) & 1
	run := 0
	for pos >= 0 && (code>>uint(pos))&1 == r0 {
		run++
		pos--
	}
	pos-- // skip the terminating bit (may step below 0; that's fine)
	k := -run
	if r0 == 1 {
		k = run - 1
	}
	// Exponent: up to es bits, truncated if the regime consumed them; the
	// missing low bits are zero.
	e := 0
	esLeft := p.es
	for esLeft > 0 && pos >= 0 {
		e = e<<1 | int((code>>uint(pos))&1)
		pos--
		esLeft--
	}
	e <<= uint(esLeft)
	// Fraction: whatever bits remain.
	fracBits := pos + 1
	frac := 0.0
	if fracBits > 0 {
		f := code & (1<<uint(fracBits) - 1)
		frac = float64(f) / math.Ldexp(1, fracBits)
	}
	scale := k*(1<<uint(p.es)) + e
	return sign * (1 + frac) * math.Ldexp(1, scale)
}

// table lazily builds the sorted value↔code lookup.
func (p *Posit) table() {
	p.once.Do(func() {
		total := 1 << uint(p.n)
		p.decode = make([]float64, total)
		type vc struct {
			v float64
			c Bits
		}
		all := make([]vc, 0, total-1)
		for c := 0; c < total; c++ {
			v := p.decodeCode(uint64(c))
			p.decode[c] = v
			if !math.IsNaN(v) {
				all = append(all, vc{v: v, c: Bits(c)})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
		p.values = make([]float64, len(all))
		p.codes = make([]Bits, len(all))
		for i, e := range all {
			p.values[i] = e.v
			p.codes[i] = e.c
		}
	})
}

// nearestIndex returns the table index of the posit nearest to v (ties to
// the even code, per the posit standard). Nonzero reals never round to
// zero: posits have no underflow, so sub-minpos magnitudes land on ±minpos.
func (p *Posit) nearestIndex(v float64) int {
	p.table()
	i := sort.SearchFloat64s(p.values, v)
	var idx int
	switch {
	case i == 0:
		idx = 0
	case i == len(p.values):
		idx = len(p.values) - 1
	default:
		lo, hi := p.values[i-1], p.values[i]
		dl, dh := v-lo, hi-v
		switch {
		case dl < dh:
			idx = i - 1
		case dh < dl:
			idx = i
		case p.codes[i-1]&1 == 0:
			idx = i - 1
		default:
			idx = i
		}
	}
	if p.values[idx] == 0 && v != 0 {
		if v > 0 {
			idx++ // +minpos
		} else {
			idx-- // -minpos
		}
	}
	return idx
}

// quantizeScalar returns the nearest representable posit value.
func (p *Posit) quantizeScalar(v float64) float64 {
	if v == 0 {
		return 0
	}
	if math.IsNaN(v) {
		return math.NaN()
	}
	p.table()
	return p.values[p.nearestIndex(v)]
}

// Emulate implements Format via table lookup (O(log n) per element).
func (p *Posit) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	out := t.Clone()
	data := out.Data()
	for i, v := range data {
		data[i] = float32(p.quantizeScalar(float64(v)))
	}
	return out
}

// Quantize implements Format (method 1).
func (p *Posit) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	meta := Metadata{Kind: MetaNone}
	data := t.Data()
	codes := make([]Bits, len(data))
	for i, v := range data {
		codes[i] = p.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (p *Posit) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(p.FromBits(c, enc.Meta))
	}
	return out
}

// ToBits implements Format (method 3).
func (p *Posit) ToBits(v float64, _ Metadata) Bits {
	if v == 0 {
		return 0
	}
	if math.IsNaN(v) {
		return Bits(1) << uint(p.n-1) // NaR
	}
	p.table()
	return p.codes[p.nearestIndex(v)]
}

// FromBits implements Format (method 4). The NaR pattern decodes to NaN —
// a bit flip can therefore produce NaR corruptions, posits' only
// exceptional value.
func (p *Posit) FromBits(b Bits, _ Metadata) float64 {
	p.table()
	return p.decode[uint64(b)&(1<<uint(p.n)-1)]
}
