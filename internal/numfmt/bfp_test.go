package numfmt

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestBFPSharedExponentFollowsBlockMax(t *testing.T) {
	f := NewBFP(5, 5, 0)
	x := tensor.FromSlice([]float32{0.1, 0.2, 4.0, -0.3}, 4)
	enc := f.Quantize(x)
	if len(enc.Meta.SharedExp) != 1 {
		t.Fatalf("whole-tensor block should have 1 exponent, got %d", len(enc.Meta.SharedExp))
	}
	// max |x| = 4 = 2^2 → biased code = 2 + 15 = 17.
	if enc.Meta.SharedExp[0] != 17 {
		t.Fatalf("shared exponent code %d, want 17", enc.Meta.SharedExp[0])
	}
}

func TestBFPBlocking(t *testing.T) {
	f := NewBFP(5, 5, 4)
	x := tensor.New(10) // 3 blocks: 4 + 4 + 2
	enc := f.Quantize(x)
	if len(enc.Meta.SharedExp) != 3 {
		t.Fatalf("10 elements at block 4 → 3 exponents, got %d", len(enc.Meta.SharedExp))
	}
	if f.MetaBits(10) != 15 {
		t.Fatalf("MetaBits(10) = %d, want 3 blocks × 5 bits", f.MetaBits(10))
	}
}

func TestBFPSmallValuesFlushWithLargeBlockMax(t *testing.T) {
	// The Fig 6 observation: a large shared block magnitude destroys the
	// resolution of small values — they round to zero.
	f := NewBFP(5, 5, 0)
	x := tensor.FromSlice([]float32{1024, 0.001}, 2)
	y := f.Emulate(x)
	if y.At(0) != 1024 {
		t.Fatalf("large value %v", y.At(0))
	}
	if y.At(1) != 0 {
		t.Fatalf("small value should flush to zero under a big shared exponent, got %v", y.At(1))
	}
	// With per-value blocks the small value survives.
	f2 := NewBFP(5, 5, 1)
	y2 := f2.Emulate(x)
	if y2.At(1) == 0 {
		t.Fatal("per-value block should preserve the small value")
	}
}

func TestBFPSignMagnitudeBits(t *testing.T) {
	f := NewBFP(5, 5, 0)
	x := tensor.FromSlice([]float32{1.0, -1.0}, 2)
	enc := f.Quantize(x)
	// Same magnitude, opposite sign bit (bit 5).
	if enc.Codes[0]&(1<<5) != 0 {
		t.Fatal("positive value has sign bit set")
	}
	if enc.Codes[1]&(1<<5) == 0 {
		t.Fatal("negative value missing sign bit")
	}
	if enc.Codes[0]&0x1f != enc.Codes[1]&0x1f {
		t.Fatal("magnitudes differ")
	}
}

func TestBFPVariableExponentWidth(t *testing.T) {
	// QPyTorch pegged the shared exponent at 8 bits; this implementation
	// must support other widths (§VI).
	for _, e := range []int{2, 4, 8} {
		f := NewBFP(e, 5, 0)
		x := tensor.FromSlice([]float32{1, 0.5}, 2)
		y := f.Emulate(x)
		if y.CountNonFinite() != 0 {
			t.Fatalf("e=%d produced non-finite values", e)
		}
	}
}

func TestBFPExponentSaturates(t *testing.T) {
	f := NewBFP(3, 5, 0) // biased codes 0..7, bias 3 → exponents -3..4
	x := tensor.FromSlice([]float32{1e30}, 1)
	enc := f.Quantize(x)
	if enc.Meta.SharedExp[0] != 7 {
		t.Fatalf("huge value should saturate the exponent register, got %d", enc.Meta.SharedExp[0])
	}
	tiny := tensor.FromSlice([]float32{1e-30}, 1)
	enc2 := f.Quantize(tiny)
	if enc2.Meta.SharedExp[0] != 0 {
		t.Fatalf("tiny value should floor the exponent register, got %d", enc2.Meta.SharedExp[0])
	}
}

// Property: BFP quantization error within a block is bounded by half the
// block's step.
func TestBFPHalfStepProperty(t *testing.T) {
	f := NewBFP(5, 5, 8)
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.Randn(r, 1, 64)
		enc := f.Quantize(x)
		y := f.Dequantize(enc)
		n := x.Len()
		for blk, ec := range enc.Meta.SharedExp {
			lo, hi := blk*8, (blk+1)*8
			if hi > n {
				hi = n
			}
			step := f.stepFor(ec)
			for i := lo; i < hi; i++ {
				err := math.Abs(float64(y.Data()[i]) - float64(x.Data()[i]))
				// Values beyond the representable max saturate; allow them.
				if math.Abs(float64(x.Data()[i])) >= float64(f.maxMag)*step {
					continue
				}
				if err > step/2+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBFPScalarBitsUseFirstBlockMeta(t *testing.T) {
	f := NewBFP(5, 5, 0)
	meta := Metadata{Kind: MetaSharedExp, SharedExp: []uint8{17}} // exponent 2
	b := f.ToBits(4.0, meta)                                      // 4.0 with step 2^(2+1-5)=0.25 → mag 16
	if b != 16 {
		t.Fatalf("ToBits(4.0) = %d, want magnitude 16", b)
	}
	if got := f.FromBits(b, meta); got != 4.0 {
		t.Fatalf("FromBits round trip = %v", got)
	}
}
