package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// INT is symmetric integer quantization: real values map linearly onto
// signed integer codes in [-(2^(b-1)-1), 2^(b-1)-1] through a per-tensor
// scaling factor. The scaling factor is hardware metadata — in an
// accelerator it lives in a dedicated register — and GoldenEye exposes it
// for metadata fault injection: a bit flip in the scale's IEEE-754
// representation rescales the entire tensor, the INT analogue of the shared-
// exponent hazard the paper describes for BFP (§II-B).
type INT struct {
	name string
	bits int
	qmax int64
}

var _ Format = (*INT)(nil)

// NewINT returns a symmetric integer quantization format with the given
// total width in bits (including sign).
func NewINT(bits int) *INT {
	if bits < 2 || bits > 32 {
		panic(fmt.Sprintf("numfmt: unsupported INT width %d", bits))
	}
	return &INT{
		name: fmt.Sprintf("int%d", bits),
		bits: bits,
		qmax: int64(1)<<uint(bits-1) - 1,
	}
}

// Name implements Format.
func (q *INT) Name() string { return q.name }

// BitWidth implements Format.
func (q *INT) BitWidth() int { return q.bits }

// MetaBits implements Format: one float32 scale register per tensor.
func (q *INT) MetaBits(int) int { return 32 }

// QMax returns the largest integer code.
func (q *INT) QMax() int64 { return q.qmax }

// Range implements Format. Following Table I's convention for INT (where
// the minimum is listed as 0), the dynamic range in dB is computed between
// the largest and smallest nonzero code magnitudes, i.e. 20·log10(qmax/1).
func (q *INT) Range() Range {
	return Range{AbsMax: float64(q.qmax), MinPos: 1}
}

// scaleFor computes the per-tensor scaling factor mapping the largest
// magnitude onto the largest code. A zero tensor gets scale 1 so codes stay
// well-defined.
func (q *INT) scaleFor(t *tensor.Tensor) float32 {
	maxAbs := t.AbsMax()
	if maxAbs == 0 {
		return 1
	}
	return float32(maxAbs / float64(q.qmax))
}

func (q *INT) quantizeCode(v, scale float64) int64 {
	if math.IsNaN(v) || scale == 0 {
		return 0
	}
	c := roundEven(v / scale)
	if math.IsNaN(c) { // e.g. Inf value with Inf scale
		return 0
	}
	if c > float64(q.qmax) {
		return q.qmax
	}
	if c < -float64(q.qmax) {
		return -q.qmax
	}
	return int64(c)
}

// Emulate implements Format with an arithmetic fast path: scale, one
// branch-free RNE, clamp, scale back.
func (q *INT) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	countKernelFused()
	scale := float64(q.scaleFor(t))
	out := t.Clone()
	data := out.Data()
	if scale == 0 {
		return out
	}
	maxC := float64(q.qmax)
	for i, v := range data {
		// Divide (not multiply-by-reciprocal) so the fast path stays bit-
		// identical to the scalar quantizeCode used by ToBits.
		c := float64(v) / scale
		switch {
		case c >= maxC:
			c = maxC
		case c <= -maxC:
			c = -maxC
		case c != c: // NaN
			c = 0
		default:
			c = roundEvenMagic(c)
		}
		data[i] = float32(c * scale)
	}
	return out
}

// emulateRowsInPlace implements rowEmulator: the fused per-row INT kernel.
// Each row derives its own scale register — float32-truncated exactly as
// scaleFor does — so the result is bit-identical to quantizing each row as
// its own tensor (the EmulateBatched per-row contract).
func (q *INT) emulateRowsInPlace(data []float32, rows, rowLen int) {
	maxC := float64(q.qmax)
	for r := 0; r < rows; r++ {
		row := data[r*rowLen : (r+1)*rowLen]
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		scale := 1.0
		if maxAbs != 0 {
			// The float32 round-trip replicates scaleFor's register
			// truncation; without it the fused path would divide by a more
			// precise scale than the hardware register holds.
			scale = float64(float32(maxAbs / maxC))
		}
		if scale == 0 {
			// float32 underflow of the scale register: the generic path
			// leaves every code at 0·scale semantics undefined, and the
			// whole-tensor Emulate returns the clone unchanged. Match it.
			continue
		}
		for i, v := range row {
			c := float64(v) / scale
			switch {
			case c >= maxC:
				c = maxC
			case c <= -maxC:
				c = -maxC
			case c != c: // NaN
				c = 0
			default:
				c = roundEvenMagic(c)
			}
			row[i] = float32(c * scale)
		}
	}
}

// Quantize implements Format (method 1), recording the scale register in
// the encoding's metadata.
func (q *INT) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	meta := Metadata{Kind: MetaScale, Scale: q.scaleFor(t)}
	data := t.Data()
	codes := make([]Bits, len(data))
	for i, v := range data {
		codes[i] = q.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (q *INT) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(q.FromBits(c, enc.Meta))
	}
	return out
}

// ToBits implements Format (method 3): the two's-complement code under the
// metadata's scale.
func (q *INT) ToBits(v float64, meta Metadata) Bits {
	code := q.quantizeCode(v, float64(meta.Scale))
	return Bits(uint64(code) & (1<<uint(q.bits) - 1))
}

// FromBits implements Format (method 4).
func (q *INT) FromBits(b Bits, meta Metadata) float64 {
	width := uint(q.bits)
	raw := uint64(b) & (1<<width - 1)
	if raw&(1<<(width-1)) != 0 {
		raw |= ^uint64(0) << width
	}
	return float64(int64(raw)) * float64(meta.Scale)
}
