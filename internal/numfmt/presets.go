package numfmt

// Named preset constructors for the formats the paper evaluates. Each is a
// parameter tuning of one of the five base families (§III-B: "These
// generalizations allow us to support many previous number formats ... as a
// parameter tuning of the base class").

// FP32 returns IEEE-754 single precision (e8m23).
func FP32(denormals bool) *FP { return named(NewFP(8, 23, denormals), "fp32", denormals) }

// FP16 returns IEEE-754 half precision (e5m10).
func FP16(denormals bool) *FP { return named(NewFP(5, 10, denormals), "fp16", denormals) }

// BFloat16 returns Google bfloat (e8m7).
func BFloat16(denormals bool) *FP { return named(NewFP(8, 7, denormals), "bfloat16", denormals) }

// TensorFloat32 returns NVIDIA TensorFloat (e8m10).
func TensorFloat32(denormals bool) *FP { return named(NewFP(8, 10, denormals), "tf32", denormals) }

// DLFloat returns IBM DLFloat (e6m9).
func DLFloat(denormals bool) *FP { return named(NewFP(6, 9, denormals), "dlfloat", denormals) }

// FP8E4M3 returns the 8-bit e4m3 floating point evaluated in Table I.
func FP8E4M3(denormals bool) *FP { return named(NewFP(4, 3, denormals), "fp8_e4m3", denormals) }

// FP8E5M2 returns the 8-bit e5m2 floating point.
func FP8E5M2(denormals bool) *FP { return named(NewFP(5, 2, denormals), "fp8_e5m2", denormals) }

// INT8 returns 8-bit symmetric integer quantization.
func INT8() *INT { return NewINT(8) }

// INT16 returns 16-bit symmetric integer quantization.
func INT16() *INT { return NewINT(16) }

// FxP16 returns the 16-bit fixed point FxP(1, 7, 8).
func FxP16() *FxP { return NewFxP(7, 8) }

// FxP32 returns the 32-bit fixed point FxP(1, 15, 16) from Table I.
func FxP32() *FxP { return NewFxP(15, 16) }

// BFPe5m5 returns the BFP configuration of the paper's resiliency study
// (Fig 7), sharing one exponent across the whole tensor.
func BFPe5m5() *BFP { return NewBFP(5, 5, 0) }

// AFPe5m2 returns the AFP configuration of the paper's resiliency study
// (Fig 7), with denormals enabled.
func AFPe5m2() *AFP { return NewAFP(5, 2, true) }

// AFP8E4M3 returns the AFP8 e4m3 row of Table I (no denormals).
func AFP8E4M3() *AFP { return NewAFP(4, 3, false) }

func named(f *FP, name string, denormals bool) *FP {
	if !denormals {
		name += "_nodn"
	}
	return f.WithName(name)
}
