package numfmt

import (
	"math"
	"testing"
)

// TestTable1MatchesPaper verifies the dynamic-range table against the values
// published in Table I of the paper. Two published values contain clerical
// errors (see Table1Rows); for those rows we check the analytically correct
// value instead and EXPERIMENTS.md records the discrepancy.
func TestTable1MatchesPaper(t *testing.T) {
	want := map[string]RangeRow{
		"FP32 w/ DN":    {AbsMax: 3.40e+38, MinPos: 1.40e-45, RangeDB: 1667.71},
		"FP32 w/o DN":   {AbsMax: 3.40e+38, MinPos: 1.18e-38, RangeDB: 1529.23},
		"FxP (1,15,16)": {AbsMax: 3.2768e+04, MinPos: 1.53e-05, RangeDB: 186.64},
		"FP16 w/ DN":    {AbsMax: 65504, MinPos: 5.96e-08, RangeDB: 240.82},
		"FP16 w/o DN":   {AbsMax: 65504, MinPos: 6.10e-05, RangeDB: 180.61},
		// The paper prints 1571.54 dB, but 20·log10(3.39e38/9.18e-41) is
		// 1571.34 dB; a third clerical error recorded in EXPERIMENTS.md.
		"BFloat16 w/ DN":     {AbsMax: 3.39e+38, MinPos: 9.18e-41, RangeDB: 1571.34},
		"BFloat16 w/o DN":    {AbsMax: 3.39e+38, MinPos: 1.18e-38, RangeDB: 1529.20},
		"INT16 (symmetric)":  {AbsMax: 32767, MinPos: 1, RangeDB: 90.31}, // paper prints 98.31
		"INT8 (symmetric)":   {AbsMax: 127, MinPos: 1, RangeDB: 42.08},
		"FP8 (e4m3) w/ DN":   {AbsMax: 240, MinPos: 1.95e-03, RangeDB: 101.79},
		"FP8 (e4m3) w/o DN":  {AbsMax: 240, MinPos: 1.56e-02, RangeDB: 83.73},
		"AFP8 (e4m3) w/o DN": {AbsMax: 240, MinPos: 1.56e-02, RangeDB: 83.73},
	}
	rows := Table1Rows()
	if len(rows) != len(want) {
		t.Fatalf("Table1Rows produced %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w, ok := want[row.Label]
		if !ok {
			t.Errorf("unexpected row %q", row.Label)
			continue
		}
		if !within(row.AbsMax, w.AbsMax, 0.01) {
			t.Errorf("%s: AbsMax = %.4g, paper %.4g", row.Label, row.AbsMax, w.AbsMax)
		}
		if !within(row.MinPos, w.MinPos, 0.01) {
			t.Errorf("%s: MinPos = %.4g, paper %.4g", row.Label, row.MinPos, w.MinPos)
		}
		if math.Abs(row.RangeDB-w.RangeDB) > 0.05 {
			t.Errorf("%s: range = %.2f dB, paper %.2f dB", row.Label, row.RangeDB, w.RangeDB)
		}
	}
}

func TestAFPRowIsMovable(t *testing.T) {
	for _, row := range Table1Rows() {
		wantMovable := row.Label == "AFP8 (e4m3) w/o DN"
		if row.Movable != wantMovable {
			t.Errorf("%s: Movable = %v, want %v", row.Label, row.Movable, wantMovable)
		}
	}
}

func TestRangeDBFormula(t *testing.T) {
	r := Range{AbsMax: 1000, MinPos: 1}
	if got := r.DB(); math.Abs(got-60) > 1e-9 {
		t.Fatalf("DB = %v, want 60", got)
	}
}

// within reports whether got is within relative tolerance tol of want.
func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}
