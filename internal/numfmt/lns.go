package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// LNS is a logarithmic number system: a value is stored as a sign bit plus
// its base-2 logarithm in signed fixed point with i integer and f fraction
// bits. Multiplication becomes addition in hardware, which has made LNS a
// recurring candidate for low-power DNN accelerators — another emerging
// format the open Format interface absorbs.
//
// The most negative log code is reserved as the zero encoding (an exact
// zero has no finite logarithm). Bit flips in the log field produce
// multiplicative errors — flipping the log's MSB squares or un-squares a
// value's magnitude — a qualitatively different corruption profile from
// linear formats.
type LNS struct {
	name     string
	intBits  int
	fracBits int

	step    float64 // log-domain quantum: 2^-f
	maxCode int64   // 2^(i+f-1) - 1
	minCode int64   // -2^(i+f-1) + 1 (one below is the zero sentinel)
}

var _ Format = (*LNS)(nil)

// NewLNS returns a logarithmic format with i integer and f fractional bits
// of log-magnitude (total width 1 sign + i + f).
func NewLNS(i, f int) *LNS {
	if i < 2 || f < 0 || i+f < 2 || i+f > 30 {
		panic(fmt.Sprintf("numfmt: unsupported LNS geometry (%d,%d)", i, f))
	}
	magBits := uint(i + f)
	return &LNS{
		name:     fmt.Sprintf("lns_%d_%d", i, f),
		intBits:  i,
		fracBits: f,
		step:     math.Ldexp(1, -f),
		maxCode:  int64(1)<<(magBits-1) - 1,
		minCode:  -(int64(1) << (magBits - 1)) + 1,
	}
}

// LNS8 returns an 8-bit LNS (sign + 5 integer + 2 fraction log bits).
func LNS8() *LNS { return NewLNS(5, 2) }

// LNS16 returns a 16-bit LNS (sign + 7 integer + 8 fraction log bits).
func LNS16() *LNS { return NewLNS(7, 8) }

// Name implements Format.
func (l *LNS) Name() string { return l.name }

// BitWidth implements Format.
func (l *LNS) BitWidth() int { return 1 + l.intBits + l.fracBits }

// MetaBits implements Format; LNS carries no metadata.
func (l *LNS) MetaBits(int) int { return 0 }

// Range implements Format: magnitudes span 2^±maxLog.
func (l *LNS) Range() Range {
	maxLog := float64(l.maxCode) * l.step
	minLog := float64(l.minCode) * l.step
	return Range{
		AbsMax: math.Exp2(maxLog),
		MinPos: math.Exp2(minLog),
	}
}

// zeroCode is the reserved sentinel for exact zero: the most negative
// two's-complement pattern of the log field.
func (l *LNS) zeroCode() int64 { return l.minCode - 1 }

func (l *LNS) quantizeLog(v float64) int64 {
	a := math.Abs(v)
	if a == 0 || math.IsNaN(v) {
		return l.zeroCode()
	}
	c := roundEven(math.Log2(a) / l.step)
	if c > float64(l.maxCode) {
		return l.maxCode
	}
	if c < float64(l.minCode) {
		// Underflow rounds to the smallest representable magnitude or to
		// zero, whichever is nearer in the log domain's boundary sense:
		// below half way to nothing there is no "half way", so LNS flushes.
		return l.zeroCode()
	}
	return int64(c)
}

func (l *LNS) valueOf(sign bool, logCode int64) float64 {
	if logCode == l.zeroCode() {
		return 0
	}
	v := math.Exp2(float64(logCode) * l.step)
	if sign {
		return -v
	}
	return v
}

// Emulate implements Format.
func (l *LNS) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	out := t.Clone()
	data := out.Data()
	for i, v := range data {
		data[i] = float32(l.valueOf(math.Signbit(float64(v)), l.quantizeLog(float64(v))))
	}
	return out
}

// Quantize implements Format (method 1).
func (l *LNS) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	meta := Metadata{Kind: MetaNone}
	data := t.Data()
	codes := make([]Bits, len(data))
	for i, v := range data {
		codes[i] = l.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (l *LNS) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(l.FromBits(c, enc.Meta))
	}
	return out
}

// ToBits implements Format (method 3): [sign | two's-complement log].
func (l *LNS) ToBits(v float64, _ Metadata) Bits {
	magBits := uint(l.intBits + l.fracBits)
	code := l.quantizeLog(v)
	b := Bits(uint64(code) & (1<<magBits - 1))
	if math.Signbit(v) && code != l.zeroCode() {
		b |= 1 << magBits
	}
	return b
}

// FromBits implements Format (method 4).
func (l *LNS) FromBits(b Bits, _ Metadata) float64 {
	magBits := uint(l.intBits + l.fracBits)
	raw := uint64(b) & (1<<magBits - 1)
	if raw&(1<<(magBits-1)) != 0 {
		raw |= ^uint64(0) << magBits
	}
	sign := b>>magBits&1 == 1
	return l.valueOf(sign, int64(raw))
}
