package numfmt

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// FP is a generic IEEE-754-style floating-point format with configurable
// exponent and mantissa widths ("eXmY" in the paper's notation), an optional
// denormal (subnormal) region, round-to-nearest-even, and saturation to the
// largest finite value during quantization. The top exponent code is
// reserved for Inf/NaN exactly as in IEEE-754, so single-bit flips in
// exponent bits can produce the non-finite corruptions the paper observes
// for FP32 (§II-B).
//
// Presets (FP32, FP16, BFloat16, TensorFloat32, DLFloat, FP8 variants) are
// parameter tunings of this one type, as §III-B describes.
type FP struct {
	name      string
	expBits   int
	mantBits  int
	denormals bool

	bias      int
	expMin    int // smallest normal unbiased exponent
	expMax    int // largest normal unbiased exponent
	maxFinite float64
	minNorm   float64
	denStep   float64 // smallest denormal magnitude
}

var _ Format = (*FP)(nil)

// NewFP returns a floating-point format with e exponent bits and m mantissa
// bits (total width 1+e+m). denormals enables the subnormal region; when
// disabled, subnormal magnitudes round to zero or the minimum normal.
func NewFP(e, m int, denormals bool) *FP {
	if e < 2 || e > 11 || m < 1 || m > 52 {
		panic(fmt.Sprintf("numfmt: unsupported FP geometry e%dm%d", e, m))
	}
	bias := (1 << uint(e-1)) - 1
	expMin := 1 - bias
	expMax := (1<<uint(e) - 2) - bias
	f := &FP{
		name:      fmt.Sprintf("fp_e%dm%d", e, m),
		expBits:   e,
		mantBits:  m,
		denormals: denormals,
		bias:      bias,
		expMin:    expMin,
		expMax:    expMax,
		maxFinite: (2 - math.Ldexp(1, -m)) * math.Ldexp(1, expMax),
		minNorm:   math.Ldexp(1, expMin),
		denStep:   math.Ldexp(1, expMin-m),
	}
	if !denormals {
		f.name += "_nodn"
	}
	return f
}

// WithName returns a copy of the format carrying a preset name (e.g. "fp16").
func (f *FP) WithName(name string) *FP {
	c := *f
	c.name = name
	return &c
}

// Name implements Format.
func (f *FP) Name() string { return f.name }

// BitWidth implements Format.
func (f *FP) BitWidth() int { return 1 + f.expBits + f.mantBits }

// MetaBits implements Format; FP carries no hardware metadata.
func (f *FP) MetaBits(int) int { return 0 }

// ExpBits returns the exponent field width.
func (f *FP) ExpBits() int { return f.expBits }

// MantBits returns the mantissa field width.
func (f *FP) MantBits() int { return f.mantBits }

// Denormals reports whether the subnormal region is enabled.
func (f *FP) Denormals() bool { return f.denormals }

// Range implements Format (Table I rows for FP formats).
func (f *FP) Range() Range {
	minPos := f.minNorm
	if f.denormals {
		minPos = f.denStep
	}
	return Range{AbsMax: f.maxFinite, MinPos: minPos}
}

// quantizeScalar returns the nearest representable value to v.
func (f *FP) quantizeScalar(v float64) float64 {
	if v == 0 || math.IsNaN(v) {
		return v
	}
	sign := 1.0
	if v < 0 || math.Signbit(v) {
		sign = -1
	}
	a := math.Abs(v)
	if a >= f.maxFinite {
		return sign * f.maxFinite
	}
	exp := floorLog2(a)
	if exp < f.expMin {
		// Subnormal region.
		if f.denormals {
			q := roundEven(a/f.denStep) * f.denStep
			return sign * q
		}
		// Without denormals the nearest representable values are 0 and
		// minNorm; RNE on the half-way point resolves to 0 (even).
		q := roundEven(a/f.minNorm) * f.minNorm
		return sign * q
	}
	step := math.Ldexp(1, exp-f.mantBits)
	q := roundEven(a/step) * step
	if q > f.maxFinite {
		q = f.maxFinite
	}
	return sign * q
}

// Emulate implements Format with a vectorizable bit-manipulation fast path
// over the float32 storage, mirroring the paper's C++/CUDA-accelerated FP
// backend (§III-C): the common case rounds the IEEE-754 mantissa field
// directly with two integer adds and a mask; only subnormal-region values
// fall back to the scalar arithmetic path. Tests assert exact agreement
// with Dequantize∘Quantize.
func (f *FP) Emulate(t *tensor.Tensor) *tensor.Tensor {
	countEmulate(t.Len())
	countKernelFused()
	out := t.Clone()
	f.emulateChunk(out.Data())
	return out
}

// emulateRowsInPlace implements rowEmulator. FP snapping is element-local,
// so the row geometry is irrelevant.
func (f *FP) emulateRowsInPlace(data []float32, _, _ int) {
	f.emulateChunk(data)
}

// emulateChunk snaps a contiguous chunk of float32 storage to the format's
// representable values in place — the shared kernel behind Emulate, the
// batched row variant, and the matmul epilogue.
func (f *FP) emulateChunk(data []float32) {
	if f.mantBits > 23 {
		// Wider-than-float32 mantissa: every float32 value is exactly
		// representable; only exponent limits can apply.
		for i, v := range data {
			data[i] = float32(f.quantizeScalar(float64(v)))
		}
		return
	}

	var (
		shift   = uint(23 - f.mantBits)
		low     = uint32(1)<<shift - 1
		half    = uint32(1) << (shift - 1) // undefined when shift == 0; guarded below
		maxBits = math.Float32bits(float32(f.maxFinite))
	)
	// Inputs below the format's minimum normal need denormal handling; in
	// float32-bit terms that is an exponent field below this cutoff. For
	// formats whose normal range extends below float32's (e ≥ 9), only
	// float32-subnormal inputs (exponent field 0) need the slow path.
	cut := f.expMin + 127
	if cut < 1 {
		cut = 1
	}
	minNormField := uint32(cut) << 23
	for i, v := range data {
		b := math.Float32bits(v)
		sign := b & 0x8000_0000
		mag := b &^ 0x8000_0000
		switch {
		case mag == 0:
			continue
		case mag >= 0x7f80_0000:
			// Inf saturates to max finite; NaN propagates.
			if mag == 0x7f80_0000 {
				data[i] = math.Float32frombits(sign | maxBits)
			}
			continue
		case mag < minNormField || mag>>23 == 0:
			// Subnormal region of the target format (or of float32 itself,
			// where the exponent-field arithmetic below is invalid).
			data[i] = float32(f.quantizeScalar(float64(v)))
			continue
		}
		if shift > 0 {
			// Round-to-nearest-even on the mantissa field; a carry
			// naturally increments the exponent field.
			lsb := (mag >> shift) & 1
			mag += half - 1 + lsb
			mag &^= low
		}
		if mag >= maxBits {
			mag = maxBits
		}
		data[i] = math.Float32frombits(sign | mag)
	}
}

// Quantize implements Format (method 1).
func (f *FP) Quantize(t *tensor.Tensor) *Encoding {
	countQuantize(t.Len())
	data := t.Data()
	codes := make([]Bits, len(data))
	meta := Metadata{Kind: MetaNone}
	for i, v := range data {
		codes[i] = f.ToBits(float64(v), meta)
	}
	return &Encoding{Codes: codes, Shape: t.Shape(), Meta: meta}
}

// Dequantize implements Format (method 2).
func (f *FP) Dequantize(enc *Encoding) *tensor.Tensor {
	countDequantize(len(enc.Codes))
	out := tensor.New(enc.Shape...)
	data := out.Data()
	for i, c := range enc.Codes {
		data[i] = float32(f.FromBits(c, enc.Meta))
	}
	return out
}

// ToBits implements Format (method 3). Layout: [sign | exponent | mantissa]
// with the mantissa in the low bits.
func (f *FP) ToBits(v float64, _ Metadata) Bits {
	q := f.quantizeScalar(v)
	var sign Bits
	if math.Signbit(q) {
		sign = 1 << uint(f.expBits+f.mantBits)
	}
	if q == 0 {
		return sign
	}
	if math.IsNaN(q) {
		expAll := Bits((1<<uint(f.expBits) - 1)) << uint(f.mantBits)
		return sign | expAll | 1<<(uint(f.mantBits)-1)
	}
	a := math.Abs(q)
	exp := floorLog2(a)
	if exp < f.expMin {
		// Denormal: exponent field 0, mantissa is the scaled magnitude.
		mant := Bits(math.Round(a / f.denStep))
		return sign | mant
	}
	e := Bits(exp + f.bias)
	mant := Bits(math.Round((math.Ldexp(a, -exp) - 1) * math.Ldexp(1, f.mantBits)))
	if mant >= 1<<uint(f.mantBits) {
		// Rounding carried into the next binade during quantizeScalar; it
		// already normalized, so this cannot occur, but guard defensively.
		mant = 0
		e++
	}
	return sign | e<<uint(f.mantBits) | mant
}

// FromBits implements Format (method 4). Exponent code 0 decodes as a
// denormal when enabled, otherwise flushes to zero; the top exponent code
// decodes to ±Inf (mantissa 0) or NaN, matching IEEE-754 semantics so that
// injected exponent flips produce realistic corruptions.
func (f *FP) FromBits(b Bits, _ Metadata) float64 {
	mantMask := Bits(1)<<uint(f.mantBits) - 1
	mant := b & mantMask
	e := (b >> uint(f.mantBits)) & (1<<uint(f.expBits) - 1)
	sign := 1.0
	if b>>(uint(f.expBits+f.mantBits))&1 == 1 {
		sign = -1
	}
	switch {
	case e == 0:
		if !f.denormals || mant == 0 {
			return sign * 0
		}
		return sign * float64(mant) * f.denStep
	case e == 1<<uint(f.expBits)-1:
		if mant == 0 {
			return sign * math.Inf(1)
		}
		return math.NaN()
	default:
		frac := 1 + float64(mant)*math.Ldexp(1, -f.mantBits)
		return sign * frac * math.Ldexp(1, int(e)-f.bias)
	}
}
