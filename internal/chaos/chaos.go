// Package chaos is the failpoint harness the campaign-service resilience
// tests drive: a TCP proxy that drops connections, stalls streams, and
// retargets mid-flight (so a client survives a daemon restart on a new
// port), plus an http.RoundTripper that fails a scripted number of
// requests. Tests compose these with a real SIGKILL of the goldeneyed
// process to prove end to end that client retries + the job journal + the
// result cache recover every job with reports byte-identical to an
// unfailed run.
//
// Everything here is deliberately mechanism-free of the server: chaos acts
// at the transport boundary, the same place real infrastructure fails.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// Proxy is a TCP chaos proxy. It listens on a stable local address and
// forwards byte streams to a retargetable backend, which lets a test keep
// one client-visible address across a backend crash + restart — exactly the
// shape of a daemon behind a load balancer or a stable DNS name.
type Proxy struct {
	ln net.Listener

	mu      sync.Mutex
	target  string
	conns   map[net.Conn]struct{} // accepted client conns, for DropActive
	stallCh chan struct{}         // non-nil while stalled; closed to release
	closed  bool

	accepted atomic.Int64
	dropped  atomic.Int64
}

// NewProxy starts a proxy on a random loopback port forwarding to target
// ("host:port"). Close it when done.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetTarget points the proxy at a new backend. Existing connections keep
// their old backend (drop them explicitly to force clients over).
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// DropActive severs every in-flight connection, returning how many were
// cut. Clients see a mid-stream connection reset — the "switch died"
// failure mode.
func (p *Proxy) DropActive() int {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	p.dropped.Add(int64(len(conns)))
	return len(conns)
}

// Stall freezes all forwarding (connections stay open, no bytes move) until
// Unstall. This is the hung-middlebox failure an SSE idle watchdog must
// detect: the TCP session is alive but silent.
func (p *Proxy) Stall() {
	p.mu.Lock()
	if p.stallCh == nil {
		p.stallCh = make(chan struct{})
	}
	p.mu.Unlock()
}

// Unstall releases a Stall, letting buffered bytes flow again.
func (p *Proxy) Unstall() {
	p.mu.Lock()
	if p.stallCh != nil {
		close(p.stallCh)
		p.stallCh = nil
	}
	p.mu.Unlock()
}

// Accepted returns how many client connections the proxy has accepted;
// Dropped how many DropActive has severed.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }
func (p *Proxy) Dropped() int64  { return p.dropped.Load() }

// Close stops the proxy and severs all connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropActive()
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		target := p.target
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.accepted.Add(1)
		go p.forward(c, target)
	}
}

func (p *Proxy) forward(client net.Conn, target string) {
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}()
	backend, err := net.Dial("tcp", target)
	if err != nil {
		return // client sees the close as a refused/reset connection
	}
	defer backend.Close()
	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		buf := make([]byte, 32<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				p.gate()
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		// Half-close so the peer's read loop unwinds promptly.
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}
	go pipe(backend, client)
	go pipe(client, backend)
	<-done
	<-done
}

// gate blocks while the proxy is stalled.
func (p *Proxy) gate() {
	p.mu.Lock()
	ch := p.stallCh
	p.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// ErrInjected is the transport failure FlakyTransport returns by default.
var ErrInjected = errors.New("chaos: injected transport failure")

// FlakyTransport is an http.RoundTripper failpoint: the first Fail round
// trips error out before reaching the network, the rest pass through. It
// drives the client retry/backoff tests without a real network fault.
type FlakyTransport struct {
	// Base handles the surviving requests (nil = http.DefaultTransport).
	Base http.RoundTripper

	// Err is returned by failed round trips (nil = ErrInjected).
	Err error

	mu       sync.Mutex
	fail     int
	attempts int64
	failed   int64
}

// Flaky returns a transport whose first n round trips fail with
// ErrInjected.
func Flaky(n int) *FlakyTransport {
	return &FlakyTransport{fail: n}
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.attempts++
	inject := t.fail > 0
	if inject {
		t.fail--
		t.failed++
	}
	t.mu.Unlock()
	if inject {
		// Drain and close the body like a real transport would on failure.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		if t.Err != nil {
			return nil, t.Err
		}
		return nil, ErrInjected
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// FailNext arms n more failures (on top of any still pending).
func (t *FlakyTransport) FailNext(n int) {
	t.mu.Lock()
	t.fail += n
	t.mu.Unlock()
}

// Attempts returns total round trips seen; Failed how many were injected
// failures.
func (t *FlakyTransport) Attempts() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

func (t *FlakyTransport) Failed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// Burst runs fn n times concurrently and returns the non-nil errors — the
// full-queue burst scenario in one call.
func Burst(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	var out []error
	for _, err := range errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}
