package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoBackend returns a plain HTTP server and its host:port.
func echoBackend(t *testing.T, body string) (*httptest.Server, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://")
}

func TestProxyForwards(t *testing.T) {
	_, addr := echoBackend(t, "hello")
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "hello" {
		t.Errorf("body: %q", b)
	}
	if p.Accepted() != 1 {
		t.Errorf("accepted: %d", p.Accepted())
	}
}

// TestProxyDropActive: an in-flight streaming response dies mid-read when
// the proxy drops connections.
func TestProxyDropActive(t *testing.T) {
	started := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		io.WriteString(w, "chunk-1\n")
		fl.Flush()
		close(started)
		<-r.Context().Done()
	}))
	defer ts.Close()
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	<-started
	if n := p.DropActive(); n == 0 {
		t.Fatal("no active connections to drop")
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Error("read survived a dropped connection")
	}
}

// TestProxyStall: bytes stop flowing while stalled and resume after
// Unstall — the connection itself stays up.
func TestProxyStall(t *testing.T) {
	_, addr := echoBackend(t, "payload")
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.Stall()
	got := make(chan error, 1)
	go func() {
		resp, err := http.Get(p.URL())
		if err != nil {
			got <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.ReadAll(resp.Body)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("request completed while stalled (err=%v)", err)
	case <-time.After(150 * time.Millisecond):
	}
	p.Unstall()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("request after unstall: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not complete after unstall")
	}
}

// TestProxyRetarget: new connections follow SetTarget — the daemon-restart
// shape, where the backend comes back on a different port.
func TestProxyRetarget(t *testing.T) {
	_, addrA := echoBackend(t, "A")
	_, addrB := echoBackend(t, "B")
	p, err := NewProxy(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Keep-alive reuse would pin the old tunnel; a retargeted backend only
	// serves fresh connections, so the client must dial anew (as it does
	// after DropActive severs the stale ones).
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	get := func() string {
		resp, err := client.Get(p.URL())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if got := get(); got != "A" {
		t.Fatalf("before retarget: %q", got)
	}
	p.SetTarget(addrB)
	p.DropActive()
	if got := get(); got != "B" {
		t.Fatalf("after retarget: %q", got)
	}
}

// TestProxyDeadBackend: a proxy whose target refuses connections fails the
// request rather than hanging — what a client sees between daemon death
// and restart.
func TestProxyDeadBackend(t *testing.T) {
	// Grab a port nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	p, err := NewProxy(dead)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := client.Get(p.URL()); err == nil {
		t.Error("request to dead backend succeeded")
	}
}

func TestFlakyTransport(t *testing.T) {
	ts, _ := echoBackend(t, "ok")
	ft := Flaky(2)
	client := &http.Client{Transport: ft}

	for i := 0; i < 2; i++ {
		if _, err := client.Get(ts.URL); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: want injected failure, got %v", i, err)
		}
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("third attempt: %v", err)
	}
	resp.Body.Close()
	if ft.Attempts() != 3 || ft.Failed() != 2 {
		t.Errorf("attempts=%d failed=%d, want 3/2", ft.Attempts(), ft.Failed())
	}

	ft.FailNext(1)
	if _, err := client.Get(ts.URL); err == nil {
		t.Error("FailNext did not arm a failure")
	}
}

func TestBurst(t *testing.T) {
	var calls atomic.Int64
	errs := Burst(16, func(i int) error {
		calls.Add(1)
		if i%4 == 0 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if calls.Load() != 16 {
		t.Errorf("calls: %d", calls.Load())
	}
	if len(errs) != 4 {
		t.Errorf("errors: %v", errs)
	}
}
