package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
)

func TestDeltaLoss(t *testing.T) {
	tests := []struct {
		name          string
		clean, faulty float64
		want          float64
	}{
		{name: "no_change", clean: 1.5, faulty: 1.5, want: 0},
		{name: "increase", clean: 1.0, faulty: 3.5, want: 2.5},
		{name: "decrease_abs", clean: 3.0, faulty: 1.0, want: 2.0},
		{name: "capped", clean: 0, faulty: 1e9, want: MaxDeltaLoss},
		{name: "inf", clean: 1, faulty: math.Inf(1), want: MaxDeltaLoss},
		{name: "nan", clean: 1, faulty: math.NaN(), want: MaxDeltaLoss},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DeltaLoss(tt.clean, tt.faulty); got != tt.want {
				t.Fatalf("DeltaLoss(%v, %v) = %v, want %v", tt.clean, tt.faulty, got, tt.want)
			}
		})
	}
}

func TestRunningStatKnownValues(t *testing.T) {
	var s RunningStat
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
}

func TestRunningStatEmptyAndSingle(t *testing.T) {
	var s RunningStat
	if s.Mean() != 0 || s.Variance() != 0 || s.SEM() != 0 {
		t.Fatal("empty stat must be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Fatal("single observation: mean 3, variance 0")
	}
}

// Property: Welford matches the two-pass formula.
func TestRunningStatMatchesTwoPassProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(200)
		xs := make([]float64, n)
		var s RunningStat
		var sum float64
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			s.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the continuous ΔLoss metric converges at least as fast as the
// binary mismatch metric for a mixed fault population — the paper's §IV-C
// rationale for preferring ΔLoss. We model injections where mismatches are
// rare (p≈0.05) but every fault perturbs the loss slightly.
func TestDeltaLossConvergesFasterProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		var dl, mm RunningStat
		for i := 0; i < 400; i++ {
			// Continuous observation: small positive perturbations.
			dl.Add(math.Abs(r.NormFloat64()*0.1) + 0.05)
			// Binary observation: rare mismatches.
			if r.Float64() < 0.05 {
				mm.Add(1)
			} else {
				mm.Add(0)
			}
		}
		if mm.Mean() == 0 {
			return true // no mismatches at all: binary metric said nothing
		}
		return dl.RelativeCI() < mm.RelativeCI()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignResultAggregation(t *testing.T) {
	var c CampaignResult
	c.Record(true, 2.0, false)
	c.Record(false, 0.0, false)
	c.Record(true, 4.0, true)
	c.Record(false, 0.0, false)
	if c.Injections != 4 || c.Mismatches != 2 || c.NonFinite != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if c.MismatchRate() != 0.5 {
		t.Fatalf("MismatchRate = %v", c.MismatchRate())
	}
	if c.MeanDeltaLoss() != 1.5 {
		t.Fatalf("MeanDeltaLoss = %v", c.MeanDeltaLoss())
	}
}

func TestCampaignResultEmpty(t *testing.T) {
	var c CampaignResult
	if c.MismatchRate() != 0 || c.MeanDeltaLoss() != 0 {
		t.Fatal("empty campaign must report zeros")
	}
}

func TestRelativeCIInfiniteAtZeroMean(t *testing.T) {
	var s RunningStat
	s.Add(0)
	s.Add(0)
	if !math.IsInf(s.RelativeCI(), 1) {
		t.Fatal("RelativeCI at zero mean must be +Inf")
	}
}

// Property: Merge of two sequentially built stats equals one stat built
// from the concatenated stream (within float tolerance).
func TestRunningStatMergeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		n1, n2 := 1+r.Intn(100), 1+r.Intn(100)
		var a, b, all RunningStat
		for i := 0; i < n1; i++ {
			v := r.NormFloat64() * 5
			a.Add(v)
			all.Add(v)
		}
		for i := 0; i < n2; i++ {
			v := r.NormFloat64()*2 + 3
			b.Add(v)
			all.Add(v)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningStatMergeEdgeCases(t *testing.T) {
	var empty, s RunningStat
	s.Add(2)
	s.Add(4)
	// Merging empty in either direction is identity.
	s.Merge(empty)
	if s.N() != 2 || s.Mean() != 3 {
		t.Fatal("merge with empty changed stat")
	}
	empty.Merge(s)
	if empty.N() != 2 || empty.Mean() != 3 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestCampaignResultMerge(t *testing.T) {
	var a, b CampaignResult
	a.Record(true, 1, false)
	a.Record(false, 3, true)
	b.Record(true, 5, false)
	a.Merge(b)
	if a.Injections != 3 || a.Mismatches != 2 || a.NonFinite != 1 {
		t.Fatalf("merged counts %+v", a)
	}
	if a.MeanDeltaLoss() != 3 {
		t.Fatalf("merged mean %v", a.MeanDeltaLoss())
	}
}
