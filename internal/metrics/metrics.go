// Package metrics implements the resiliency metrics of the paper's §IV-C:
// the classical mismatch count (faulty inference changes the predicted
// class) and the ΔLoss metric of Schorn et al. as adopted by the paper —
// the absolute difference of cross-entropy loss between faulty and
// fault-free inference — together with running statistics that expose each
// metric's convergence behaviour.
package metrics

import (
	"encoding/json"
	"math"
)

// MaxDeltaLoss caps a single injection's ΔLoss contribution. A fault that
// drives the network to NaN/Inf has unbounded cross-entropy; capping keeps
// campaign averages finite while still registering such faults as
// catastrophic. The value is ≈ ln(1e13), far beyond any non-corrupted loss.
const MaxDeltaLoss = 30.0

// DeltaLoss returns |faulty − clean| cross-entropy, capped at MaxDeltaLoss
// and treating non-finite faulty losses as the cap.
func DeltaLoss(clean, faulty float64) float64 {
	if math.IsNaN(faulty) || math.IsInf(faulty, 0) {
		return MaxDeltaLoss
	}
	d := math.Abs(faulty - clean)
	if d > MaxDeltaLoss {
		return MaxDeltaLoss
	}
	return d
}

// RunningStat accumulates a stream of observations with Welford's
// algorithm, exposing the running mean and its standard error — the basis
// for the metric-convergence comparison (ΔLoss converges faster than
// mismatch because it is continuous rather than binary, §IV-C).
type RunningStat struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the statistic.
func (s *RunningStat) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another statistic into s (Chan et al.'s parallel variance
// combination), so sharded campaigns can aggregate worker results.
func (s *RunningStat) Merge(o RunningStat) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
}

// runningStatJSON is the serialized shape of a RunningStat. The moments are
// encoded as float64; Go's encoding/json emits the shortest representation
// that round-trips bit-exactly, so a persisted statistic resumes with the
// identical accumulator state (the basis for checkpoint/resume determinism).
type runningStatJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// MarshalJSON serializes the accumulator state.
func (s RunningStat) MarshalJSON() ([]byte, error) {
	return json.Marshal(runningStatJSON{N: s.n, Mean: s.mean, M2: s.m2})
}

// UnmarshalJSON restores the accumulator state.
func (s *RunningStat) UnmarshalJSON(data []byte) error {
	var j runningStatJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.n, s.mean, s.m2 = j.N, j.Mean, j.M2
	return nil
}

// N returns the number of observations.
func (s *RunningStat) N() int { return s.n }

// Mean returns the running mean (0 before any observation).
func (s *RunningStat) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *RunningStat) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *RunningStat) StdDev() float64 { return math.Sqrt(s.Variance()) }

// SEM returns the standard error of the mean.
func (s *RunningStat) SEM() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation.
func (s *RunningStat) CI95() float64 { return 1.96 * s.SEM() }

// RelativeCI returns CI95 normalized by |mean|; campaigns use it as the
// convergence criterion (smaller = more converged).
func (s *RunningStat) RelativeCI() float64 {
	if s.mean == 0 {
		return math.Inf(1)
	}
	return s.CI95() / math.Abs(s.mean)
}

// CampaignResult aggregates one injection campaign.
type CampaignResult struct {
	Injections int

	// Mismatches counts injections whose top-1 prediction differed from
	// the fault-free inference.
	Mismatches int

	// DeltaLoss accumulates the ΔLoss observations.
	DeltaLoss RunningStat

	// MismatchStat accumulates the binary mismatch observations, so both
	// metrics' convergence can be compared on equal footing.
	MismatchStat RunningStat

	// NonFinite counts injections that produced NaN/Inf activations at the
	// output (detected corruption).
	NonFinite int
}

// Record folds one injection outcome into the result.
func (c *CampaignResult) Record(mismatch bool, deltaLoss float64, nonFinite bool) {
	c.Injections++
	if mismatch {
		c.Mismatches++
		c.MismatchStat.Add(1)
	} else {
		c.MismatchStat.Add(0)
	}
	c.DeltaLoss.Add(deltaLoss)
	if nonFinite {
		c.NonFinite++
	}
}

// MismatchRate returns the fraction of injections that changed the
// prediction.
func (c *CampaignResult) MismatchRate() float64 {
	if c.Injections == 0 {
		return 0
	}
	return float64(c.Mismatches) / float64(c.Injections)
}

// MeanDeltaLoss returns the campaign's average ΔLoss.
func (c *CampaignResult) MeanDeltaLoss() float64 { return c.DeltaLoss.Mean() }

// Merge folds another campaign's aggregates into c.
func (c *CampaignResult) Merge(o CampaignResult) {
	c.Injections += o.Injections
	c.Mismatches += o.Mismatches
	c.NonFinite += o.NonFinite
	c.DeltaLoss.Merge(o.DeltaLoss)
	c.MismatchStat.Merge(o.MismatchStat)
}

// DetectorStats aggregates one detector's campaign-level performance: how
// many injections it flagged, how many of those the paired recovery policy
// restored, and its false-positive behaviour on the fault-free calibration
// pool (the "measured on fault-free runs" half of the protection table).
// The struct is shared by campaign reports, checkpoints, and resume state;
// the JSON encoding is stable so persisted cells resume bit-identically.
type DetectorStats struct {
	// Detections counts injections this detector flagged.
	Detections int `json:"detections"`

	// Recovered counts flagged injections whose recovery policy restored
	// the fault-free prediction.
	Recovered int `json:"recovered"`

	// FalsePositives counts fault-free pool inferences the armed detector
	// flagged during the campaign's post-calibration sweep.
	FalsePositives int `json:"false_positives"`

	// FaultFreeRuns is the number of fault-free inferences the
	// false-positive sweep observed (the FalsePositives denominator).
	FaultFreeRuns int `json:"fault_free_runs"`
}

// Coverage returns the fraction of injections this detector flagged.
func (d DetectorStats) Coverage(injections int) float64 {
	if injections == 0 {
		return 0
	}
	return float64(d.Detections) / float64(injections)
}

// FalsePositiveRate returns flagged fault-free inferences per fault-free
// inference observed.
func (d DetectorStats) FalsePositiveRate() float64 {
	if d.FaultFreeRuns == 0 {
		return 0
	}
	return float64(d.FalsePositives) / float64(d.FaultFreeRuns)
}
