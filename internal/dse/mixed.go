package dse

import (
	"fmt"
	"sort"
	"strings"

	"goldeneye/internal/numfmt"
)

// MixedCandidate is one per-layer precision option of a mixed-assignment
// search: the role triple (weights, activations, accumulator) a layer may
// run in, plus its hardware cost. A nil role means native float32.
type MixedCandidate struct {
	// Name labels the candidate in results (e.g. "bf16×fp8+fp32acc").
	Name string

	// Weights, Activations, and Accumulator are the candidate's role
	// formats (nil = native float32 for that role).
	Weights     numfmt.Format
	Activations numfmt.Format
	Accumulator numfmt.Format

	// Cost is the candidate's per-layer hardware cost; the search minimizes
	// the total over layers. Zero means "use the default": the summed bit
	// widths of the three roles, nil roles counting the native 32 bits.
	Cost float64
}

// cost returns the candidate's effective cost (see Cost).
func (c MixedCandidate) cost() float64 {
	if c.Cost != 0 {
		return c.Cost
	}
	bits := func(f numfmt.Format) float64 {
		if f == nil {
			return 32
		}
		return float64(f.BitWidth())
	}
	return bits(c.Weights) + bits(c.Activations) + bits(c.Accumulator)
}

// MixedConfig parameterizes a mixed-assignment search over per-layer
// format candidates.
type MixedConfig struct {
	// Layers lists the layer visit indices under search (typically the
	// model's injectable CONV/LINEAR layers).
	Layers []int

	// Candidates is the per-layer precision menu. The search orders it by
	// descending cost internally; every layer starts at the costliest
	// candidate and is greedily demoted down the menu.
	Candidates []MixedCandidate

	// Baseline is the reference accuracy (native FP32 validation top-1).
	Baseline float64

	// Threshold is the tolerated accuracy drop from Baseline.
	Threshold float64

	// MaxEvals caps evaluated assignments (default 64). Each evaluation is
	// one full validation sweep, so the cap bounds search cost the way
	// MaxNodes bounds the uniform search.
	MaxEvals int
}

// MixedNode is one evaluated mixed assignment.
type MixedNode struct {
	// Assignment maps each searched layer to its candidate index (into the
	// cost-ordered candidate list of MixedResult.Candidates).
	Assignment map[int]int

	// Accuracy is the measured task accuracy of the assignment; Cost its
	// summed per-layer candidate cost.
	Accuracy float64
	Cost     float64

	// Order is the evaluation order (0-based); Accepted whether the node
	// met the accuracy threshold.
	Order    int
	Accepted bool
}

// MixedResult is a completed mixed-assignment search.
type MixedResult struct {
	Config MixedConfig

	// Candidates is the cost-ordered (descending) candidate list node
	// assignments index into.
	Candidates []MixedCandidate

	// Nodes lists every evaluated assignment in visit order.
	Nodes []MixedNode

	// Frontier is the accuracy×cost Pareto frontier over the visited
	// nodes, cheapest first: each entry is strictly cheaper than its
	// successor and no visited node dominates it (cheaper-or-equal and
	// more-accurate).
	Frontier []MixedNode

	// Best is the cheapest accepted node (highest accuracy as tie-break),
	// nil when no visited assignment met the threshold.
	Best *MixedNode
}

// Describe renders a node's assignment as "layer=candidate" pairs in layer
// order, for logs and experiment tables.
func (r *MixedResult) Describe(n MixedNode) string {
	layers := make([]int, 0, len(n.Assignment))
	for l := range n.Assignment {
		layers = append(layers, l)
	}
	sort.Ints(layers)
	parts := make([]string, len(layers))
	for i, l := range layers {
		parts[i] = fmt.Sprintf("%d=%s", l, r.Candidates[n.Assignment[l]].Name)
	}
	return strings.Join(parts, " ")
}

// OrderCandidates returns the menu in the search's internal order —
// descending cost, stable for ties. Node assignments (and eval callbacks)
// index this ordered list, so callers materializing an assignment must
// resolve candidate indices through it.
func OrderCandidates(cands []MixedCandidate) []MixedCandidate {
	out := append([]MixedCandidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].cost() > out[j].cost()
	})
	return out
}

// SearchMixed runs a greedy per-layer demotion search for mixed-precision
// assignments: every layer starts at the costliest candidate, and each
// round evaluates demoting one layer one step down the cost-ordered menu,
// committing the single demotion with the largest cost cut that keeps
// accuracy within the threshold (accuracy, then lower layer index, break
// ties). The search stops when no single-layer demotion is acceptable or
// MaxEvals is reached. eval measures an assignment's task accuracy; it is
// called once per distinct assignment (results are memoized).
//
// The returned result carries, beyond the accepted optimum, the full
// accuracy×cost Pareto frontier over the visited assignments — the
// per-layer counterpart of the uniform search's Fig 6 node list.
func SearchMixed(cfg MixedConfig, eval func(assignment map[int]int) float64) *MixedResult {
	if cfg.MaxEvals == 0 {
		cfg.MaxEvals = 64
	}
	res := &MixedResult{Config: cfg}
	if len(cfg.Layers) == 0 || len(cfg.Candidates) == 0 {
		return res
	}
	res.Candidates = OrderCandidates(cfg.Candidates)

	key := func(a map[int]int) string {
		parts := make([]string, len(cfg.Layers))
		for i, l := range cfg.Layers {
			parts[i] = fmt.Sprintf("%d:%d", l, a[l])
		}
		return strings.Join(parts, ",")
	}
	costOf := func(a map[int]int) float64 {
		var c float64
		for _, l := range cfg.Layers {
			c += res.Candidates[a[l]].cost()
		}
		return c
	}
	memo := make(map[string]*MixedNode)
	visit := func(a map[int]int) (*MixedNode, bool) {
		k := key(a)
		if n, ok := memo[k]; ok {
			return n, true
		}
		if len(res.Nodes) >= cfg.MaxEvals {
			return nil, false
		}
		cp := make(map[int]int, len(a))
		for l, c := range a {
			cp[l] = c
		}
		acc := eval(cp)
		res.Nodes = append(res.Nodes, MixedNode{
			Assignment: cp,
			Accuracy:   acc,
			Cost:       costOf(a),
			Order:      len(res.Nodes),
			Accepted:   acc >= cfg.Baseline-cfg.Threshold,
		})
		n := &res.Nodes[len(res.Nodes)-1]
		memo[k] = n
		return n, true
	}

	// Start: every layer at the costliest candidate.
	current := make(map[int]int, len(cfg.Layers))
	for _, l := range cfg.Layers {
		current[l] = 0
	}
	if n, ok := visit(current); !ok || !n.Accepted {
		// Even the costliest assignment misses the threshold (or the eval
		// budget is zero): report what was visited.
		finalizeMixed(res)
		return res
	}

	for {
		type move struct {
			layer int
			node  *MixedNode
			cut   float64
		}
		var best *move
		exhausted := false
		for _, l := range cfg.Layers {
			if current[l]+1 >= len(res.Candidates) {
				continue // already at the cheapest candidate
			}
			current[l]++
			n, ok := visit(current)
			cut := res.Candidates[current[l]-1].cost() - res.Candidates[current[l]].cost()
			current[l]--
			if !ok {
				exhausted = true
				break
			}
			if !n.Accepted {
				continue
			}
			if best == nil || cut > best.cut ||
				(cut == best.cut && n.Accuracy > best.node.Accuracy) {
				best = &move{layer: l, node: n, cut: cut}
			}
		}
		if best == nil || exhausted {
			break
		}
		current[best.layer]++
	}
	finalizeMixed(res)
	return res
}

// finalizeMixed computes the Pareto frontier and the accepted optimum over
// the visited nodes.
func finalizeMixed(res *MixedResult) {
	if len(res.Nodes) == 0 {
		return
	}
	// Frontier: sweep nodes by (cost asc, accuracy desc); keep each node
	// strictly improving accuracy over everything cheaper.
	order := make([]int, len(res.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := res.Nodes[order[a]], res.Nodes[order[b]]
		if na.Cost != nb.Cost {
			return na.Cost < nb.Cost
		}
		return na.Accuracy > nb.Accuracy
	})
	bestAcc := 0.0
	for _, i := range order {
		n := res.Nodes[i]
		if len(res.Frontier) == 0 || n.Accuracy > bestAcc {
			if len(res.Frontier) > 0 && n.Cost == res.Frontier[len(res.Frontier)-1].Cost {
				continue // same cost, lower accuracy (sort order)
			}
			res.Frontier = append(res.Frontier, n)
			bestAcc = n.Accuracy
		}
	}
	for i := range res.Nodes {
		n := &res.Nodes[i]
		if !n.Accepted {
			continue
		}
		if res.Best == nil || n.Cost < res.Best.Cost ||
			(n.Cost == res.Best.Cost && n.Accuracy > res.Best.Accuracy) {
			res.Best = n
		}
	}
}
