package dse

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/numfmt"
)

// syntheticEval models a typical accuracy response: full accuracy above a
// width knee, decaying below it, with a mild unimodal radix preference.
func syntheticEval(knee int, bestRadixFrac float64) func(Point) float64 {
	return func(p Point) float64 {
		acc := 0.95
		if p.Bits < knee {
			acc -= 0.1 * float64(knee-p.Bits)
		}
		if p.Bits > 1 {
			frac := float64(p.Radix) / float64(p.Bits)
			acc -= 0.02 * math.Abs(frac-bestRadixFrac)
		}
		return acc
	}
}

func TestSearchFindsKnee(t *testing.T) {
	synth := syntheticEval(8, 0.5)
	var visited []Point
	cfg := Config{Family: FamilyFP, Baseline: 0.95, Threshold: 0.02}
	res := Search(cfg, func(f numfmt.Format) float64 {
		fp, ok := f.(*numfmt.FP)
		if !ok {
			t.Fatalf("expected *numfmt.FP, got %T", f)
		}
		p := Point{Family: FamilyFP, Bits: fp.BitWidth(), Radix: fp.MantBits()}
		visited = append(visited, p)
		return synth(p)
	})
	if res.Best == nil {
		t.Fatal("search found no acceptable node")
	}
	if res.Best.Point.Bits != 8 {
		t.Fatalf("best width = %d, want knee 8 (nodes: %v)", res.Best.Point.Bits, res.Nodes)
	}
	if len(res.Nodes) > 16 {
		t.Fatalf("visited %d nodes, paper bound is 16", len(res.Nodes))
	}
}

func TestSearchRespectsMaxNodesProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		knee := int(4 + seed%20)
		synth := syntheticEval(knee, 0.4)
		for _, fam := range Families() {
			cfg := Config{Family: fam, Baseline: 0.95, Threshold: 0.02, MaxNodes: 16}
			res := Search(cfg, func(f numfmt.Format) float64 {
				return synth(pointOf(fam, f))
			})
			if len(res.Nodes) > 16 {
				return false
			}
			// Visit orders must be sequential.
			for i, n := range res.Nodes {
				if n.Order != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchReportsNothingWhenAllBad(t *testing.T) {
	cfg := Config{Family: FamilyINT, Baseline: 0.95, Threshold: 0.01}
	res := Search(cfg, func(numfmt.Format) float64 { return 0.1 })
	if res.Best != nil {
		t.Fatal("expected no acceptable node")
	}
	if len(res.Nodes) == 0 {
		t.Fatal("search should still have visited nodes")
	}
}

func TestSearchBestIsAcceptedAndMinimal(t *testing.T) {
	synth := syntheticEval(10, 0.5)
	for _, fam := range Families() {
		cfg := Config{Family: fam, Baseline: 0.95, Threshold: 0.02}
		res := Search(cfg, func(f numfmt.Format) float64 {
			return synth(pointOf(fam, f))
		})
		if res.Best == nil {
			t.Fatalf("%s: no acceptable node", fam)
		}
		if !res.Best.Accepted {
			t.Fatalf("%s: best node not accepted", fam)
		}
		for _, n := range res.Accepted() {
			if n.Point.Bits < res.Best.Point.Bits {
				t.Fatalf("%s: accepted node %v has fewer bits than best %v", fam, n.Point, res.Best.Point)
			}
		}
	}
}

func TestMakeFormatGeometry(t *testing.T) {
	tests := []struct {
		give     Point
		wantName string
		wantErr  bool
	}{
		{give: Point{Family: FamilyFP, Bits: 8, Radix: 3}, wantName: "fp_e4m3"},
		{give: Point{Family: FamilyAFP, Bits: 8, Radix: 2}, wantName: "afp_e5m2"},
		{give: Point{Family: FamilyFxP, Bits: 16, Radix: 8}, wantName: "fxp_1_7_8"},
		{give: Point{Family: FamilyINT, Bits: 8}, wantName: "int8"},
		{give: Point{Family: FamilyBFP, Bits: 6, Radix: 5}, wantName: "bfp_e5m5_b0"},
		{give: Point{Family: FamilyFP, Bits: 3, Radix: 1}, wantErr: true},   // e < 2
		{give: Point{Family: FamilyAFP, Bits: 16, Radix: 3}, wantErr: true}, // e > 8
		{give: Point{Family: "bogus", Bits: 8, Radix: 3}, wantErr: true},
	}
	for _, tt := range tests {
		f, err := MakeFormat(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("MakeFormat(%v) succeeded, want error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("MakeFormat(%v): %v", tt.give, err)
			continue
		}
		if f.Name() != tt.wantName {
			t.Errorf("MakeFormat(%v) = %s, want %s", tt.give, f.Name(), tt.wantName)
		}
	}
}

func TestMemoizationAvoidsReEvaluation(t *testing.T) {
	calls := make(map[string]int)
	cfg := Config{Family: FamilyFP, Baseline: 0.95, Threshold: 0.02}
	Search(cfg, func(f numfmt.Format) float64 {
		calls[f.Name()]++
		return 0.95
	})
	for name, n := range calls {
		if n > 1 {
			t.Fatalf("format %s evaluated %d times", name, n)
		}
	}
}

// pointOf recovers the search Point from a materialized format.
func pointOf(fam Family, f numfmt.Format) Point {
	switch v := f.(type) {
	case *numfmt.FP:
		return Point{Family: fam, Bits: v.BitWidth(), Radix: v.MantBits()}
	case *numfmt.AFP:
		return Point{Family: fam, Bits: v.BitWidth(), Radix: v.MantBits()}
	case *numfmt.FxP:
		return Point{Family: fam, Bits: v.BitWidth(), Radix: v.Radix()}
	case *numfmt.INT:
		return Point{Family: fam, Bits: v.BitWidth()}
	case *numfmt.BFP:
		return Point{Family: fam, Bits: v.BitWidth(), Radix: v.ExpBits()}
	case *numfmt.Posit:
		return Point{Family: fam, Bits: v.BitWidth(), Radix: v.ES()}
	default:
		panic("unknown format type")
	}
}

func TestPositFamilySearch(t *testing.T) {
	synth := syntheticEval(8, 0.1)
	cfg := Config{Family: FamilyPosit, Baseline: 0.95, Threshold: 0.02}
	res := Search(cfg, func(f numfmt.Format) float64 {
		return synth(pointOf(FamilyPosit, f))
	})
	if res.Best == nil {
		t.Fatal("posit search found nothing")
	}
	if res.Best.Point.Bits != 8 {
		t.Fatalf("best posit width %d, want knee 8", res.Best.Point.Bits)
	}
	for _, n := range res.Nodes {
		if n.Point.Bits > 16 {
			t.Fatalf("posit search visited unsupported width %d", n.Point.Bits)
		}
	}
}
