package dse

import (
	"testing"

	"goldeneye/internal/numfmt"
)

func mixedMenu() []MixedCandidate {
	return []MixedCandidate{
		{Name: "fp16", Weights: numfmt.FP16(true), Activations: numfmt.FP16(true), Accumulator: numfmt.FP32(true)}, // 64 bits
		{Name: "fp8", Weights: numfmt.FP8E4M3(true), Activations: numfmt.FP8E4M3(true)},                            // 8+8+32 = 48 bits
	}
}

func TestOrderCandidatesByDescendingCost(t *testing.T) {
	menu := []MixedCandidate{
		{Name: "cheap", Cost: 10},
		{Name: "costly", Cost: 90},
		{Name: "mid", Cost: 50},
	}
	ordered := OrderCandidates(menu)
	if ordered[0].Name != "costly" || ordered[1].Name != "mid" || ordered[2].Name != "cheap" {
		t.Fatalf("order = %v", ordered)
	}
	if menu[0].Name != "cheap" {
		t.Fatal("OrderCandidates mutated its input")
	}
	// Default cost: summed role bit widths, nil roles at native 32.
	if c := mixedMenu()[1].cost(); c != 48 {
		t.Fatalf("default cost = %v, want 48", c)
	}
}

// The greedy demotion search must walk every layer down to the cheapest
// candidate when accuracy never drops, and stop at the first assignment
// whose single-step demotions all violate the threshold.
func TestSearchMixedGreedyDemotion(t *testing.T) {
	// Accuracy model: layer 1 tolerates fp8, layer 2 does not.
	eval := func(a map[int]int) float64 {
		if a[2] == 1 {
			return 0.80 // demoting layer 2 tanks accuracy
		}
		return 0.90
	}
	res := SearchMixed(MixedConfig{
		Layers:     []int{1, 2},
		Candidates: mixedMenu(),
		Baseline:   0.90,
		Threshold:  0.02,
	}, eval)
	if res.Best == nil {
		t.Fatal("no accepted assignment")
	}
	if res.Best.Assignment[1] != 1 || res.Best.Assignment[2] != 0 {
		t.Fatalf("best assignment = %v, want layer 1 demoted, layer 2 held", res.Best.Assignment)
	}
	if res.Best.Cost != 48+64 {
		t.Fatalf("best cost = %v, want 112", res.Best.Cost)
	}
	// Frontier: strictly increasing accuracy over decreasing cost, and the
	// cheapest visited node leads.
	for i := 1; i < len(res.Frontier); i++ {
		a, b := res.Frontier[i-1], res.Frontier[i]
		if b.Cost <= a.Cost || b.Accuracy <= a.Accuracy {
			t.Fatalf("frontier not Pareto-ordered: %+v then %+v", a, b)
		}
	}
}

// Evaluations are memoized per distinct assignment and capped by MaxEvals.
func TestSearchMixedMemoizationAndBudget(t *testing.T) {
	seen := map[string]int{}
	keyOf := func(a map[int]int) string {
		return string(rune('0'+a[1])) + string(rune('0'+a[2])) + string(rune('0'+a[3]))
	}
	eval := func(a map[int]int) float64 {
		seen[keyOf(a)]++
		return 1.0
	}
	res := SearchMixed(MixedConfig{
		Layers:     []int{1, 2, 3},
		Candidates: mixedMenu(),
		Baseline:   1.0,
		Threshold:  0.5,
	}, eval)
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("assignment %s evaluated %d times", k, n)
		}
	}
	if res.Best == nil || res.Best.Cost != 3*48 {
		t.Fatalf("fully tolerant model should demote everything, got %+v", res.Best)
	}

	evals := 0
	res = SearchMixed(MixedConfig{
		Layers:     []int{1, 2, 3},
		Candidates: mixedMenu(),
		Baseline:   1.0,
		Threshold:  0.5,
		MaxEvals:   2,
	}, func(map[int]int) float64 { evals++; return 1.0 })
	if evals > 2 || len(res.Nodes) > 2 {
		t.Fatalf("budget overrun: %d evals, %d nodes", evals, len(res.Nodes))
	}
}

// When even the costliest assignment misses the threshold there is no
// accepted optimum, but the visited nodes still report.
func TestSearchMixedNoAcceptableAssignment(t *testing.T) {
	res := SearchMixed(MixedConfig{
		Layers:     []int{0},
		Candidates: mixedMenu(),
		Baseline:   0.9,
		Threshold:  0.01,
	}, func(map[int]int) float64 { return 0.5 })
	if res.Best != nil {
		t.Fatalf("accepted %+v below threshold", res.Best)
	}
	if len(res.Nodes) != 1 || res.Nodes[0].Accepted {
		t.Fatalf("nodes = %+v", res.Nodes)
	}
}
