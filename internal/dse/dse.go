// Package dse implements the paper's design-space-exploration heuristic for
// number-format selection (§IV-B, Fig 5): an approximate, accuracy-
// preserving recursive binary-tree search over a format family's bitwidth
// and radix hyperparameters. The search aggressively shortens the bitwidth
// while measured accuracy stays within a threshold of the FP32 baseline,
// then refines the radix at the shortest acceptable width; it visits at
// most MaxNodes nodes (the paper reports completion within 16).
package dse

import (
	"fmt"

	"goldeneye/internal/numfmt"
)

// Family identifies a number-format family under exploration.
type Family string

// Explorable format families.
const (
	FamilyFP    Family = "fp"
	FamilyFxP   Family = "fxp"
	FamilyINT   Family = "int"
	FamilyBFP   Family = "bfp"
	FamilyAFP   Family = "afp"
	FamilyPosit Family = "posit"
)

// Families returns the five families the paper evaluates (Fig 6).
func Families() []Family {
	return []Family{FamilyFP, FamilyFxP, FamilyINT, FamilyBFP, FamilyAFP}
}

// FamiliesExtended additionally includes the emerging families this
// repository implements beyond the paper.
func FamiliesExtended() []Family {
	return append(Families(), FamilyPosit)
}

// Point is one format configuration: a family plus its (bitwidth, radix)
// hyperparameters. Radix follows the paper's terminology: the bit position
// separating exponent/integer bits from mantissa/fraction bits — i.e. the
// mantissa width for FP/AFP, the fraction width for FxP, and the shared-
// exponent width for BFP. INT has no radix.
type Point struct {
	Family Family
	Bits   int
	Radix  int
}

// String renders "family-bN-rM".
func (p Point) String() string {
	return fmt.Sprintf("%s-b%d-r%d", p.Family, p.Bits, p.Radix)
}

// MakeFormat materializes a Point as a Format, or reports why the geometry
// is invalid.
func MakeFormat(p Point) (numfmt.Format, error) {
	switch p.Family {
	case FamilyFP, FamilyAFP:
		e := p.Bits - 1 - p.Radix
		if e < 2 || p.Radix < 1 {
			return nil, fmt.Errorf("dse: invalid %s geometry bits=%d radix=%d", p.Family, p.Bits, p.Radix)
		}
		if p.Family == FamilyFP {
			if e > 11 {
				return nil, fmt.Errorf("dse: FP exponent width %d unsupported", e)
			}
			return numfmt.NewFP(e, p.Radix, true), nil
		}
		if e > 8 {
			return nil, fmt.Errorf("dse: AFP exponent width %d exceeds bias register", e)
		}
		return numfmt.NewAFP(e, p.Radix, true), nil
	case FamilyFxP:
		i := p.Bits - 1 - p.Radix
		if i < 0 || p.Radix < 0 || i+p.Radix < 1 {
			return nil, fmt.Errorf("dse: invalid fxp geometry bits=%d radix=%d", p.Bits, p.Radix)
		}
		return numfmt.NewFxP(i, p.Radix), nil
	case FamilyINT:
		if p.Bits < 2 {
			return nil, fmt.Errorf("dse: invalid int width %d", p.Bits)
		}
		return numfmt.NewINT(p.Bits), nil
	case FamilyBFP:
		m := p.Bits - 1
		if m < 1 || m > 30 || p.Radix < 2 || p.Radix > 8 {
			return nil, fmt.Errorf("dse: invalid bfp geometry bits=%d radix=%d", p.Bits, p.Radix)
		}
		return numfmt.NewBFP(p.Radix, m, 0), nil
	case FamilyPosit:
		if p.Bits < 3 || p.Bits > 16 || p.Radix < 0 || p.Radix > 3 {
			return nil, fmt.Errorf("dse: invalid posit geometry bits=%d es=%d", p.Bits, p.Radix)
		}
		return numfmt.NewPosit(p.Bits, p.Radix), nil
	default:
		return nil, fmt.Errorf("dse: unknown family %q", p.Family)
	}
}

// defaultRadix picks the balanced radix the width search uses before the
// radix subtree refines it.
func defaultRadix(f Family, bits int) int {
	switch f {
	case FamilyFP, FamilyAFP:
		e := bits / 2
		if e < 2 {
			e = 2
		}
		if e > 8 {
			e = 8
		}
		if bits-1-e < 1 {
			e = bits - 2
		}
		return bits - 1 - e
	case FamilyFxP:
		return bits / 2
	case FamilyBFP:
		return 5 // shared-exponent width; refined by the radix subtree
	case FamilyPosit:
		if bits >= 10 {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// radixRange returns the searchable radix interval at a given width.
func radixRange(f Family, bits int) (lo, hi int) {
	switch f {
	case FamilyFP, FamilyAFP:
		// Mantissa range keeps the exponent in the supported window
		// (2..11 for FP, 2..8 for AFP whose bias register is int8).
		maxExp := 11
		if f == FamilyAFP {
			maxExp = 8
		}
		lo := bits - 1 - maxExp
		if lo < 1 {
			lo = 1
		}
		return lo, bits - 3
	case FamilyFxP:
		return 0, bits - 1
	case FamilyBFP:
		return 2, 8
	case FamilyPosit:
		return 0, 3 // exponent field width es
	default:
		return 0, 0
	}
}

// Node is one visited design point.
type Node struct {
	Point    Point
	Accuracy float64
	Order    int
	Accepted bool
}

// Config parameterizes a search.
type Config struct {
	Family Family

	// Baseline is the native FP32 accuracy measured before the search.
	Baseline float64

	// Threshold is the tolerated accuracy drop (paper example: 1%).
	Threshold float64

	// MinBits and MaxBits bound the width search (defaults 4 and 32).
	MinBits int
	MaxBits int

	// MaxNodes caps the number of evaluated design points (default 16,
	// matching the paper's observed bound).
	MaxNodes int
}

func (c *Config) setDefaults() {
	if c.MinBits == 0 {
		c.MinBits = 4
	}
	if c.MaxBits == 0 {
		c.MaxBits = 32
	}
	if c.Family == FamilyPosit && c.MaxBits > 16 {
		c.MaxBits = 16 // posit implementation is table-backed up to 16 bits
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 16
	}
}

// Result is the search outcome.
type Result struct {
	Config Config

	// Nodes lists every visited design point in visit order (Fig 6's
	// x-axis).
	Nodes []Node

	// Best is the accepted node with the fewest bits (nil if none was
	// accepted).
	Best *Node
}

// Accepted returns the visited nodes meeting the accuracy threshold.
func (r *Result) Accepted() []Node {
	var out []Node
	for _, n := range r.Nodes {
		if n.Accepted {
			out = append(out, n)
		}
	}
	return out
}

// Search runs the heuristic. eval measures a format's task accuracy (e.g.
// validation top-1 under full emulation); it is called once per node, and
// results are memoized per configuration.
func Search(cfg Config, eval func(numfmt.Format) float64) *Result {
	cfg.setDefaults()
	searchStats.searches.Add(1)
	res := &Result{Config: cfg}
	memo := make(map[Point]float64)

	visit := func(p Point) (float64, bool) {
		if len(res.Nodes) >= cfg.MaxNodes {
			return 0, false
		}
		if acc, ok := memo[p]; ok {
			searchStats.memoHits.Add(1)
			return acc, true
		}
		f, err := MakeFormat(p)
		if err != nil {
			return 0, false
		}
		searchStats.evaluations.Add(1)
		acc := eval(f)
		memo[p] = acc
		accepted := acc >= cfg.Baseline-cfg.Threshold
		if accepted {
			searchStats.accepted.Add(1)
		}
		res.Nodes = append(res.Nodes, Node{
			Point:    p,
			Accuracy: acc,
			Order:    len(res.Nodes),
			Accepted: accepted,
		})
		return acc, true
	}
	ok := func(acc float64) bool { return acc >= cfg.Baseline-cfg.Threshold }

	// Phase 1 — width subtree: bisect for the shortest acceptable width,
	// taking the left (shorter) child whenever the node is acceptable.
	lo, hi := cfg.MinBits, cfg.MaxBits
	bestBits := -1
	for lo <= hi && len(res.Nodes) < cfg.MaxNodes {
		mid := (lo + hi) / 2
		p := Point{Family: cfg.Family, Bits: mid, Radix: defaultRadix(cfg.Family, mid)}
		acc, visited := visit(p)
		if !visited {
			break
		}
		if ok(acc) {
			bestBits = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestBits < 0 {
		// Nothing acceptable: report what was visited.
		res.Best = nil
		return res
	}

	// Phase 2 — radix subtree at the shortest acceptable width: bisect the
	// radix interval toward higher accuracy (accuracy over radix is
	// approximately unimodal: too little range clips, too little precision
	// rounds away information).
	if cfg.Family != FamilyINT {
		rlo, rhi := radixRange(cfg.Family, bestBits)
		for rhi-rlo > 1 && len(res.Nodes) < cfg.MaxNodes-1 {
			m1 := rlo + (rhi-rlo)/3
			m2 := rhi - (rhi-rlo)/3
			if m1 == m2 {
				m2++
			}
			a1, ok1 := visit(Point{Family: cfg.Family, Bits: bestBits, Radix: m1})
			a2, ok2 := visit(Point{Family: cfg.Family, Bits: bestBits, Radix: m2})
			if !ok1 || !ok2 {
				break
			}
			if a1 >= a2 {
				rhi = m2 - 1
			} else {
				rlo = m1 + 1
			}
		}
		if len(res.Nodes) < cfg.MaxNodes && rlo == rhi {
			visit(Point{Family: cfg.Family, Bits: bestBits, Radix: rlo})
		}
	}

	// Select the best node: fewest bits among accepted, highest accuracy
	// as tie-break.
	for i := range res.Nodes {
		n := &res.Nodes[i]
		if !n.Accepted {
			continue
		}
		if res.Best == nil ||
			n.Point.Bits < res.Best.Point.Bits ||
			(n.Point.Bits == res.Best.Point.Bits && n.Accuracy > res.Best.Accuracy) {
			res.Best = n
		}
	}
	return res
}
