package dse

import "sync/atomic"

// SearchStats is a snapshot of the package's exploration counters, kept as
// package-global atomics (searches may run concurrently across models) and
// exposed to the telemetry registry through a collector
// (goldeneye.RegisterRuntimeCollectors).
type SearchStats struct {
	Searches    int64 // Search invocations
	Evaluations int64 // eval callback invocations (the expensive step)
	MemoHits    int64 // design points answered from the memo table
	Accepted    int64 // visited nodes meeting the accuracy threshold
}

var searchStats struct {
	searches, evaluations, memoHits, accepted atomic.Int64
}

// ReadSearchStats returns the current counter values.
func ReadSearchStats() SearchStats {
	return SearchStats{
		Searches:    searchStats.searches.Load(),
		Evaluations: searchStats.evaluations.Load(),
		MemoHits:    searchStats.memoHits.Load(),
		Accepted:    searchStats.accepted.Load(),
	}
}

// ResetSearchStats zeroes all counters, scoping a measurement window.
func ResetSearchStats() {
	searchStats.searches.Store(0)
	searchStats.evaluations.Store(0)
	searchStats.memoHits.Store(0)
	searchStats.accepted.Store(0)
}
