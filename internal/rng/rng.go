// Package rng provides a small, fast, deterministic random number generator
// used across GoldenEye for dataset synthesis, weight initialization, and
// fault-injection campaigns.
//
// The generator is SplitMix64, chosen because it is trivially portable,
// allocation-free, and produces identical streams on every platform for a
// given seed. Determinism is a core design goal of the simulator: a campaign
// seed fully determines every injected fault, so experiments are exactly
// reproducible (see DESIGN.md §5).
package rng

import "math"

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator from the current stream.
// The child's sequence does not overlap the parent's for practical lengths.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0,
// mirroring math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0, 1] to keep the logarithm finite.
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
