package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestKnownSplitMix64Values(t *testing.T) {
	// Reference values for SplitMix64 with seed 0 (from the published
	// algorithm by Steele et al.).
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestPermIsPermutationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(200)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(3)
	child := parent.Split()
	// Streams must differ immediately.
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}
