package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// matmulParallelThreshold is the output-element count above which MatMul
// shards rows across goroutines. Below it, the goroutine fan-out costs more
// than it saves on the small tensors this simulator works with.
const matmulParallelThreshold = 16 * 1024

// MatMul returns t @ o for rank-2 tensors of shapes (m, k) and (k, n).
// Rows of the result are computed in parallel for large outputs.
func (t *Tensor) MatMul(o *Tensor) *Tensor {
	if len(t.shape) != 2 || len(o.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", t.shape, o.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := o.shape[0], o.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v @ %v", t.shape, o.shape))
	}
	out := New(m, n)
	defer func(start time.Time) { recordMatMul(start, m, n, k) }(time.Now())
	if m*n >= matmulParallelThreshold && m > 1 {
		parallelRows(m, func(lo, hi int) {
			matmulRows(out.data, t.data, o.data, lo, hi, k, n)
		})
	} else {
		matmulRows(out.data, t.data, o.data, 0, m, k, n)
	}
	return out
}

// matmulRows computes rows [lo, hi) of C = A @ B using an ikj loop order so
// the inner loop streams both B and C rows sequentially (cache friendly, and
// the Go compiler keeps the accumulation vectorizable).
func matmulRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
}

// matmulRowsAccum is matmulRows with an active accumulator hook: each
// multiply-accumulate step rounds the partial sum through h.Quant (when
// set), and scheduled faults rewrite their register after their step.
// Steps whose A value is zero skip the update, like the plain kernel —
// the register is untouched, and since Quant only ever writes values it
// would map to themselves, not re-rounding an untouched register is
// equivalent to rounding it again. Sharding stays per output row, so every
// element's reduction runs sequentially inside one goroutine and the
// result is independent of the worker count.
func matmulRowsAccum(c, a, b []float32, lo, hi, k, n int, h *AccumHook) {
	q := h.Quant
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			if av := ai[p]; av != 0 {
				bp := b[p*n : (p+1)*n]
				if q != nil {
					for j := range ci {
						ci[j] = q(ci[j] + av*bp[j])
					}
				} else {
					for j := range ci {
						ci[j] += av * bp[j]
					}
				}
			}
			for _, f := range h.Faults {
				if f.Step == p && f.Row == i {
					ci[f.Col] = f.Apply(ci[f.Col])
				}
			}
		}
	}
}

// MatMulAccum is MatMul with an accumulator hook threaded into the
// reduction (see AccumHook). An inactive hook delegates to MatMul — the
// default path is byte-for-byte the plain kernel.
func (t *Tensor) MatMulAccum(o *Tensor, h *AccumHook) *Tensor {
	if !h.Active() {
		return t.MatMul(o)
	}
	if len(t.shape) != 2 || len(o.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulAccum requires rank-2 operands, got %v and %v", t.shape, o.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := o.shape[0], o.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAccum inner dimensions differ: %v @ %v", t.shape, o.shape))
	}
	out := New(m, n)
	defer func(start time.Time) { recordMatMul(start, m, n, k) }(time.Now())
	if m*n >= matmulParallelThreshold && m > 1 {
		parallelRows(m, func(lo, hi int) {
			matmulRowsAccum(out.data, t.data, o.data, lo, hi, k, n, h)
		})
	} else {
		matmulRowsAccum(out.data, t.data, o.data, 0, m, k, n, h)
	}
	return out
}

// MatMulBias returns t @ o + bias with an optional epilogue applied to the
// output while it is cache-hot. bias may be nil (no bias) or a rank-1
// tensor of length n added to every output row — bit-identical to
// MatMul(o).Add(bias), which performs the same additions in the same
// order, but without materializing the intermediate product. The epilogue
// runs per output chunk inside the worker goroutines (Tile) or once after
// the parallel barrier (Rows/Whole); see Epilogue.
//
// This is the layer-forward fast path: emulation (or any element-local
// transform) touches each output element while its cache line is still
// resident from the matmul write, instead of re-streaming the whole output
// from memory in a follow-up pass.
func (t *Tensor) MatMulBias(o, bias *Tensor, ep Epilogue) *Tensor {
	if len(t.shape) != 2 || len(o.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulBias requires rank-2 operands, got %v and %v", t.shape, o.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := o.shape[0], o.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBias inner dimensions differ: %v @ %v", t.shape, o.shape))
	}
	if bias != nil && (len(bias.shape) != 1 || bias.shape[0] != n) {
		panic(fmt.Sprintf("tensor: MatMulBias bias shape %v does not match output columns %d", bias.shape, n))
	}
	out := New(m, n)
	defer func(start time.Time) { recordMatMul(start, m, n, k) }(time.Now())
	accum := ep.Accum
	work := func(lo, hi int) {
		if accum.Active() {
			matmulRowsAccum(out.data, t.data, o.data, lo, hi, k, n, accum)
		} else {
			matmulRows(out.data, t.data, o.data, lo, hi, k, n)
		}
		if bias != nil {
			// With a quantizing accumulator the bias add is one more
			// accumulation step: the register rounds after it like after
			// every multiply-accumulate.
			if accum.Active() && accum.Quant != nil {
				q := accum.Quant
				for i := lo; i < hi; i++ {
					ci := out.data[i*n : (i+1)*n]
					for j := range ci {
						ci[j] = q(ci[j] + bias.data[j])
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					ci := out.data[i*n : (i+1)*n]
					for j := range ci {
						ci[j] += bias.data[j]
					}
				}
			}
		}
		if ep.Tile != nil {
			ep.Tile(out.data[lo*n : hi*n])
		}
	}
	if m*n >= matmulParallelThreshold && m > 1 {
		parallelRows(m, work)
	} else {
		work(0, m)
	}
	ep.Apply(out.data, m, n)
	return out
}

// MatMulT returns t @ oᵀ for shapes (m, k) and (n, k). This avoids
// materializing the transpose in attention and backward passes.
func (t *Tensor) MatMulT(o *Tensor) *Tensor {
	if len(t.shape) != 2 || len(o.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT requires rank-2 operands, got %v and %v", t.shape, o.shape))
	}
	m, k := t.shape[0], t.shape[1]
	n, k2 := o.shape[0], o.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimensions differ: %v @ %vᵀ", t.shape, o.shape))
	}
	out := New(m, n)
	defer func(start time.Time) { recordMatMul(start, m, n, k) }(time.Now())
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := t.data[i*k : (i+1)*k]
			ci := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := o.data[j*k : (j+1)*k]
				var sum float32
				for p := range ai {
					sum += ai[p] * bj[p]
				}
				ci[j] = sum
			}
		}
	}
	if m*n >= matmulParallelThreshold && m > 1 {
		parallelRows(m, work)
	} else {
		work(0, m)
	}
	return out
}

// TMatMul returns tᵀ @ o for shapes (k, m) and (k, n), producing (m, n).
// Used by backward passes to compute weight gradients without a transpose
// copy.
func (t *Tensor) TMatMul(o *Tensor) *Tensor {
	if len(t.shape) != 2 || len(o.shape) != 2 {
		panic(fmt.Sprintf("tensor: TMatMul requires rank-2 operands, got %v and %v", t.shape, o.shape))
	}
	k, m := t.shape[0], t.shape[1]
	k2, n := o.shape[0], o.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dimensions differ: %vᵀ @ %v", t.shape, o.shape))
	}
	out := New(m, n)
	defer func(start time.Time) { recordMatMul(start, m, n, k) }(time.Now())
	// Accumulate rank-1 updates; the outer loop runs over the shared k axis,
	// so sharding happens over output rows to stay race-free.
	work := func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := t.data[p*m : (p+1)*m]
			bp := o.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				ci := out.data[i*n : (i+1)*n]
				for j := range ci {
					ci[j] += av * bp[j]
				}
			}
		}
	}
	if m*n >= matmulParallelThreshold && m > 1 {
		parallelRows(m, work)
	} else {
		work(0, m)
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// parallelRows splits [0, m) into contiguous chunks, one per worker, and
// waits for all workers to finish.
func parallelRows(m int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		f(0, m)
		return
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
