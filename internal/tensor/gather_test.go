package tensor

import (
	"math"
	"testing"
)

func TestGather0(t *testing.T) {
	src := FromSlice([]float32{0, 1, 2, 3, 4, 5}, 3, 2)
	got := Gather0(src, []int{2, 0, 2})
	want := []float32{4, 5, 0, 1, 4, 5}
	if got.Dim(0) != 3 || got.Dim(1) != 2 {
		t.Fatalf("shape = %v", got.Shape())
	}
	for i, w := range want {
		if got.Data()[i] != w {
			t.Fatalf("elem %d = %v, want %v", i, got.Data()[i], w)
		}
	}
	// Gathered rows are copies, not aliases.
	got.Data()[0] = 99
	if src.Data()[4] == 99 {
		t.Fatal("Gather0 aliases the source")
	}
}

func TestGather0OutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic")
		}
	}()
	Gather0(FromSlice([]float32{1, 2}, 2, 1), []int{2})
}

func TestNonFiniteRows(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	tt := FromSlice([]float32{1, 2, nan, inf, 3, nan}, 3, 2)
	got := tt.NonFiniteRows()
	want := []int{0, 2, 1}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("row %d = %d, want %d (all %v)", i, got[i], w, got)
		}
	}
}
