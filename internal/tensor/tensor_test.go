package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 || x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("unexpected geometry: %v", x.Shape())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("At(0,0,0) = %v, want 0", got)
	}
	// Row-major layout: index (1,2,3) is offset 1*12 + 2*4 + 3 = 23.
	if got := x.Data()[23]; got != 7.5 {
		t.Fatalf("flat offset = %v, want 7.5", got)
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	x := FromSlice(src, 2, 2)
	src[0] = 99
	if x.At(0, 0) != 1 {
		t.Fatal("FromSlice must copy its input")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 42
	if x.At(0) != 1 {
		t.Fatal("Clone must not alias storage")
	}
}

func TestReshapeInference(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("Reshape(-1) got %v", y.Shape())
	}
	// Reshape aliases data.
	y.Data()[0] = 5
	if x.Data()[0] != 5 {
		t.Fatal("Reshape should alias storage")
	}
}

func TestReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := a.Add(b).Data(); got[3] != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	bias := FromSlice([]float32{10, 20, 30}, 3)
	got := a.Add(bias)
	want := FromSlice([]float32{11, 22, 33, 14, 25, 36}, 2, 3)
	if !got.AllClose(want, 0) {
		t.Fatalf("broadcast Add = %v", got)
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(1)
	a := Randn(r, 1, 7, 5)
	b := Randn(r, 1, 5, 9)
	got := a.MatMul(b)
	want := New(7, 9)
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			var s float64
			for k := 0; k < 5; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			want.Set(float32(s), i, j)
		}
	}
	if !got.AllClose(want, 1e-5) {
		t.Fatalf("MatMul mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	r := rng.New(2)
	// Large enough to trigger the parallel path.
	a := Randn(r, 1, 256, 64)
	b := Randn(r, 1, 64, 128)
	got := a.MatMul(b)
	want := New(256, 128)
	matmulRows(want.Data(), a.Data(), b.Data(), 0, 256, 64, 128)
	if !got.AllClose(want, 0) {
		t.Fatal("parallel MatMul differs from serial")
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	r := rng.New(3)
	a := Randn(r, 1, 6, 4)
	b := Randn(r, 1, 8, 4) // a @ bᵀ : (6,8)
	if got, want := a.MatMulT(b), a.MatMul(b.Transpose2D()); !got.AllClose(want, 1e-5) {
		t.Fatal("MatMulT differs from explicit transpose")
	}
	c := Randn(r, 1, 4, 6)
	d := Randn(r, 1, 4, 8) // cᵀ @ d : (6,8)
	if got, want := c.TMatMul(d), c.Transpose2D().MatMul(d); !got.AllClose(want, 1e-5) {
		t.Fatal("TMatMul differs from explicit transpose")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	New(2, 3).MatMul(New(4, 2))
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := a.Transpose2D()
	if got.Dim(0) != 3 || got.Dim(1) != 2 || got.At(2, 1) != 6 || got.At(0, 1) != 4 {
		t.Fatalf("Transpose2D = %v", got)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(4)
	x := Randn(r, 3, 5, 7)
	s := x.SoftmaxRows()
	for i := 0; i < 5; i++ {
		var sum float64
		for j := 0; j < 7; j++ {
			v := float64(s.At(i, j))
			if v < 0 || v > 1 {
				t.Fatalf("softmax element out of [0,1]: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	x := FromSlice([]float32{1e30, 1e30, -1e30}, 1, 3)
	s := x.SoftmaxRows()
	if s.CountNonFinite() != 0 {
		t.Fatalf("softmax produced non-finite values: %v", s)
	}
	if math.Abs(float64(s.At(0, 0))-0.5) > 1e-6 {
		t.Fatalf("expected 0.5, got %v", s.At(0, 0))
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestLogSumExpMatchesSoftmaxDenominator(t *testing.T) {
	r := rng.New(5)
	x := Randn(r, 2, 4, 6)
	lse := x.LogSumExpRows()
	for i := range lse {
		var sum float64
		for j := 0; j < 6; j++ {
			sum += math.Exp(float64(x.At(i, j)))
		}
		if math.Abs(lse[i]-math.Log(sum)) > 1e-6 {
			t.Fatalf("row %d: lse %v vs log-sum %v", i, lse[i], math.Log(sum))
		}
	}
}

func TestSumRowsAndMean(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	sr := x.SumRows()
	if sr.At(0) != 4 || sr.At(1) != 6 {
		t.Fatalf("SumRows = %v", sr)
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
}

func TestClampAndAbsMax(t *testing.T) {
	x := FromSlice([]float32{-5, -1, 0, 2, 9}, 5)
	c := x.Clamp(-2, 3)
	want := FromSlice([]float32{-2, -1, 0, 2, 3}, 5)
	if !c.AllClose(want, 0) {
		t.Fatalf("Clamp = %v", c)
	}
	if x.AbsMax() != 9 {
		t.Fatalf("AbsMax = %v", x.AbsMax())
	}
}

func TestMinMax(t *testing.T) {
	x := FromSlice([]float32{3, -7, 2}, 3)
	lo, hi := x.MinMax()
	if lo != -7 || hi != 3 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestSliceAndConcat0(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	mid := x.Slice(1, 2)
	if mid.Dim(0) != 1 || mid.At(0, 1) != 4 {
		t.Fatalf("Slice = %v", mid)
	}
	back := Concat0(x.Slice(0, 1), x.Slice(1, 3))
	if !back.AllClose(x, 0) {
		t.Fatal("Concat0(Slice...) should reconstruct the tensor")
	}
}

func TestCountNonFinite(t *testing.T) {
	x := FromSlice([]float32{1, float32(math.NaN()), float32(math.Inf(1))}, 3)
	if got := x.CountNonFinite(); got != 2 {
		t.Fatalf("CountNonFinite = %d, want 2", got)
	}
}

// Property: (a+b)-b == a for finite inputs, element-wise.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := Randn(r, 1, 4, 5)
		b := Randn(r, 1, 4, 5)
		return a.Add(b).Sub(b).AllClose(a, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition:
// (a+b)@c == a@c + b@c.
func TestMatMulDistributesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := Randn(r, 1, 3, 4)
		b := Randn(r, 1, 3, 4)
		c := Randn(r, 1, 4, 2)
		left := a.Add(b).MatMul(c)
		right := a.MatMul(c).Add(b.MatMul(c))
		return left.AllClose(right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(rng.New(42), 1, 10)
	b := Randn(rng.New(42), 1, 10)
	if !a.AllClose(b, 0) {
		t.Fatal("Randn must be deterministic for a fixed seed")
	}
}
