package tensor

// Epilogue is a set of optional callbacks an operation (MatMulBias, the
// conv forward) applies to its freshly written output while it is still
// cache-hot, instead of forcing the caller into a follow-up whole-tensor
// pass. All callbacks mutate the storage they are handed in place.
//
// At most one of the three fields is consulted, in this order:
//
//   - Tile runs inside the producing operation's worker goroutines on each
//     contiguous output chunk as soon as that chunk is complete. Only
//     element-local transforms (each element depends on nothing but
//     itself) may use Tile — the chunk boundaries are an implementation
//     detail of the producer's parallel decomposition.
//   - Rows runs once on the full output after all workers finish, with the
//     caller-declared row geometry (rows contiguous rows of rowLen
//     elements). Transforms that derive per-row state — per-sample
//     quantization metadata, for instance — use Rows.
//   - Whole runs once on the full output storage after all workers finish,
//     for transforms that need tensor-wide state.
//
// The zero Epilogue is a no-op; producers skip it without overhead.
type Epilogue struct {
	Tile  func(chunk []float32)
	Rows  func(data []float32, rows, rowLen int)
	Whole func(data []float32)
}

// Empty reports whether the epilogue carries no callbacks, i.e. applying
// it is a no-op.
func (ep Epilogue) Empty() bool {
	return ep.Tile == nil && ep.Rows == nil && ep.Whole == nil
}

// Apply runs the epilogue's post-barrier stage on a completed output:
// Rows or Whole, whichever is set. When Tile is set it does nothing — the
// producer already applied the epilogue chunk-wise — so producers can call
// Apply unconditionally after their workers finish.
func (ep Epilogue) Apply(data []float32, rows, rowLen int) {
	switch {
	case ep.Tile != nil:
		// Already applied chunk-wise by the producer.
	case ep.Rows != nil:
		ep.Rows(data, rows, rowLen)
	case ep.Whole != nil:
		ep.Whole(data)
	}
}
