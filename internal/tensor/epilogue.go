package tensor

// Epilogue is a set of optional callbacks an operation (MatMulBias, the
// conv forward) applies to its freshly written output while it is still
// cache-hot, instead of forcing the caller into a follow-up whole-tensor
// pass. All callbacks mutate the storage they are handed in place.
//
// At most one of the three fields is consulted, in this order:
//
//   - Tile runs inside the producing operation's worker goroutines on each
//     contiguous output chunk as soon as that chunk is complete. Only
//     element-local transforms (each element depends on nothing but
//     itself) may use Tile — the chunk boundaries are an implementation
//     detail of the producer's parallel decomposition.
//   - Rows runs once on the full output after all workers finish, with the
//     caller-declared row geometry (rows contiguous rows of rowLen
//     elements). Transforms that derive per-row state — per-sample
//     quantization metadata, for instance — use Rows.
//   - Whole runs once on the full output storage after all workers finish,
//     for transforms that need tensor-wide state.
//
// The zero Epilogue is a no-op; producers skip it without overhead.
type Epilogue struct {
	Tile  func(chunk []float32)
	Rows  func(data []float32, rows, rowLen int)
	Whole func(data []float32)

	// Accum, when active, moves the epilogue machinery *inside* the GEMM
	// reduction: MatMulBias (and Conv2D via MatMulAccum) runs its
	// accumulator kernel instead of the plain one, quantizing every partial
	// sum and landing scheduled faults mid-reduction. Unlike the three
	// callbacks above it is not a transform of the completed output, so it
	// does not participate in Empty — hook fusion decisions are about the
	// output transform only. It is set by the layer's Forward (from the
	// accumulator spec staged on the context), never by hook registration.
	Accum *AccumHook
}

// Empty reports whether the epilogue carries no output callbacks, i.e.
// applying it to a completed output is a no-op. Accum is deliberately
// excluded: it alters the reduction, not the completed output.
func (ep Epilogue) Empty() bool {
	return ep.Tile == nil && ep.Rows == nil && ep.Whole == nil
}

// AccumFault is one scheduled corruption of a GEMM accumulator register, in
// GEMM coordinates: after reduction step Step of output element (Row, Col)
// is accumulated, Apply rewrites that element's partial sum in place. The
// corrupted value then participates in the remaining reduction steps —
// faults injected early propagate through more accumulation than faults
// injected late, which is exactly the accumulator-interior behaviour
// tensor-boundary injection cannot express.
type AccumFault struct {
	Row, Col int
	Step     int
	Apply    func(float32) float32
}

// AccumHook threads accumulator-interior behaviour into a GEMM. Quant, when
// non-nil, models a reduced-precision accumulator register: every partial
// sum is rounded through it after each multiply-accumulate (and after the
// bias add), maintaining the invariant that the register only ever holds
// representable values. Faults are applied at their scheduled (row, step)
// positions. A nil hook — or one with neither field set — selects the plain
// kernel with zero overhead.
type AccumHook struct {
	Quant  func(float32) float32
	Faults []AccumFault
}

// Active reports whether the hook changes the reduction at all. Safe on a
// nil receiver, so producers can gate on ep.Accum.Active() directly.
func (h *AccumHook) Active() bool {
	return h != nil && (h.Quant != nil || len(h.Faults) > 0)
}

// Apply runs the epilogue's post-barrier stage on a completed output:
// Rows or Whole, whichever is set. When Tile is set it does nothing — the
// producer already applied the epilogue chunk-wise — so producers can call
// Apply unconditionally after their workers finish.
func (ep Epilogue) Apply(data []float32, rows, rowLen int) {
	switch {
	case ep.Tile != nil:
		// Already applied chunk-wise by the producer.
	case ep.Rows != nil:
		ep.Rows(data, rows, rowLen)
	case ep.Whole != nil:
		ep.Whole(data)
	}
}
