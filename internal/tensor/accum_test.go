package tensor

import (
	"math"
	"testing"

	"goldeneye/internal/rng"
)

// An inactive accumulator hook must select the plain kernel: MatMulAccum
// and MatMulBias with an empty Accum are bit-identical to MatMul — on both
// the serial and the parallel-rows path.
func TestMatMulAccumInactiveIsPlainKernel(t *testing.T) {
	for _, dims := range [][3]int{{3, 5, 7}, {64, 96, 300}} {
		m, k, n := dims[0], dims[1], dims[2]
		r := rng.New(21)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		want := a.MatMul(b)
		bitsEqual(t, a.MatMulAccum(b, nil), want)
		bitsEqual(t, a.MatMulAccum(b, &AccumHook{}), want)
		bitsEqual(t, a.MatMulBias(b, nil, Epilogue{Accum: &AccumHook{}}), want)
	}
}

// scalarAccumRef is the straight-line reference the kernel is pinned to:
// per output element, accumulate k steps in order, rounding through quant
// after each step and applying scheduled faults after their step.
func scalarAccumRef(a, b *Tensor, m, k, n int, h *AccumHook) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				if av := a.data[i*k+p]; av != 0 {
					acc = acc + av*b.data[p*n+j]
					if h.Quant != nil {
						acc = h.Quant(acc)
					}
				}
				for _, f := range h.Faults {
					if f.Step == p && f.Row == i && f.Col == j {
						acc = f.Apply(acc)
					}
				}
			}
			out[i*n+j] = acc
		}
	}
	return out
}

// A quantizing accumulator rounds every partial sum; the kernel must match
// the scalar per-element reference bit for bit on both sharding paths.
func TestMatMulAccumQuantMatchesScalarReference(t *testing.T) {
	quant := func(v float32) float32 { // crude fp32->bf16 truncation
		return math.Float32frombits(math.Float32bits(v) &^ 0xFFFF)
	}
	for _, dims := range [][3]int{{4, 9, 6}, {64, 32, 300}} {
		m, k, n := dims[0], dims[1], dims[2]
		r := rng.New(33)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		h := &AccumHook{Quant: quant}
		got := a.MatMulAccum(b, h)
		want := scalarAccumRef(a, b, m, k, n, h)
		for i := range want {
			if math.Float32bits(got.data[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%dx%dx%d: element %d: %v vs scalar %v", m, k, n, i, got.data[i], want[i])
			}
		}
	}
}

// A fault scheduled at step s corrupts the partial sum after exactly s+1
// accumulations, and the corrupted value flows through the remaining
// reduction — the interior behaviour output-boundary injection can't
// express.
func TestMatMulAccumFaultTiming(t *testing.T) {
	m, k, n := 2, 4, 3
	a := New(m, k)
	b := New(k, n)
	for i := range a.data {
		a.data[i] = float32(i + 1)
	}
	for i := range b.data {
		b.data[i] = float32(i%5) - 2
	}
	stuck := func(float32) float32 { return 100 }
	for step := 0; step < k; step++ {
		h := &AccumHook{Faults: []AccumFault{{Row: 1, Col: 2, Step: step, Apply: stuck}}}
		got := a.MatMulAccum(b, h)
		// Reference: resume the reduction from 100 over the remaining steps.
		var want float32 = 100
		for p := step + 1; p < k; p++ {
			want += a.data[1*k+p] * b.data[p*n+2]
		}
		if got.data[1*n+2] != want {
			t.Fatalf("step %d: faulted element %v, want %v", step, got.data[1*n+2], want)
		}
		// Every other element is untouched.
		clean := a.MatMul(b)
		for i := range got.data {
			if i == 1*n+2 {
				continue
			}
			if math.Float32bits(got.data[i]) != math.Float32bits(clean.data[i]) {
				t.Fatalf("step %d: sibling element %d corrupted", step, i)
			}
		}
	}
}

// With a quantizing accumulator the bias add is one more accumulation
// step: MatMulBias must round the register after it.
func TestMatMulBiasQuantizedBiasAdd(t *testing.T) {
	quant := func(v float32) float32 {
		return math.Float32frombits(math.Float32bits(v) &^ 0x3FFF)
	}
	r := rng.New(5)
	m, k, n := 3, 6, 4
	a := Randn(r, 1, m, k)
	b := Randn(r, 1, k, n)
	bias := Randn(r, 1, n)
	h := &AccumHook{Quant: quant}
	got := a.MatMulBias(b, bias, Epilogue{Accum: h})
	pre := a.MatMulAccum(b, h)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := quant(pre.data[i*n+j] + bias.data[j])
			if math.Float32bits(got.data[i*n+j]) != math.Float32bits(want) {
				t.Fatalf("(%d,%d): %v, want quantized bias add %v", i, j, got.data[i*n+j], want)
			}
		}
	}
}
