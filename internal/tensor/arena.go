package tensor

import (
	"math/bits"
	"sync"
)

// arenaClasses bounds the pooled buffer sizes to 2^31 elements; anything
// larger is allocated directly (no campaign tensor approaches that).
const arenaClasses = 32

// Arena recycles float32 scratch buffers through power-of-two size-classed
// sync.Pools. The campaign engine acquires its per-run scratch (batch
// tensors, label and index slices reinterpreted as float storage) from an
// arena once per campaign and returns it on close, so back-to-back
// campaigns — the EvalPool and DSE loops — stop paying a fresh round of
// large allocations each run and the batched inner loop allocates nothing
// per injection.
//
// Get and Put are safe for concurrent use. Buffers are handed out with
// undefined contents: callers must fully overwrite what they read.
type Arena struct {
	pools [arenaClasses]sync.Pool
}

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// classFor returns the smallest c with 1<<c >= n.
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a buffer of length n with undefined contents, reusing a
// pooled buffer of the matching size class when one is available.
func (a *Arena) Get(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if c >= arenaClasses {
		return make([]float32, n)
	}
	if p, ok := a.pools[c].Get().(*[]float32); ok {
		return (*p)[:n]
	}
	return make([]float32, n, 1<<uint(c))
}

// Put returns buf to the arena for reuse. Only buffers whose capacity is a
// power of two — i.e. buffers that came from Get — are pooled; anything
// else is dropped for the garbage collector. Callers must not use buf
// after Put.
func (a *Arena) Put(buf []float32) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cl := bits.Len(uint(c)) - 1
	if cl >= arenaClasses {
		return
	}
	full := buf[:c]
	a.pools[cl].Put(&full)
}
