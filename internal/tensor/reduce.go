package tensor

import (
	"fmt"
	"math"
)

// Sum returns the sum of all elements, accumulated in float64 for stability.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	return t.Sum() / float64(len(t.data))
}

// SumRows reduces a rank-2 (m, n) tensor over its rows, returning a rank-1
// tensor of length n. Used for bias gradients.
func (t *Tensor) SumRows() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SumRows requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// ArgMaxRows returns the index of the maximum element of each row of a
// rank-2 tensor. Ties resolve to the lowest index.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRows requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j := 1; j < n; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of a rank-2 tensor, computed with
// the usual max-subtraction for numerical stability.
func (t *Tensor) SoftmaxRows() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: SoftmaxRows requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		dst := out.data[i*n : (i+1)*n]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// LogSumExpRows returns the row-wise log-sum-exp of a rank-2 tensor.
func (t *Tensor) LogSumExpRows() []float64 {
	if len(t.shape) != 2 {
		panic("tensor: LogSumExpRows requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		maxV := float64(row[0])
		for _, v := range row[1:] {
			if float64(v) > maxV {
				maxV = float64(v)
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v) - maxV)
		}
		out[i] = maxV + math.Log(sum)
	}
	return out
}

// Norm2 returns the L2 norm of all elements.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// CountNonFinite returns the number of NaN or Inf elements; the range
// detector and tests use it to detect fault blow-ups.
func (t *Tensor) CountNonFinite() int {
	n := 0
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			n++
		}
	}
	return n
}

// NonFiniteRows returns the number of NaN or Inf elements in each row of a
// rank-2 tensor — the per-injection corruption signal of batched campaigns,
// where each batch row carries an independent fault.
func (t *Tensor) NonFiniteRows() []int {
	if len(t.shape) != 2 {
		panic("tensor: NonFiniteRows requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		for _, v := range t.data[i*n : (i+1)*n] {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				out[i]++
			}
		}
	}
	return out
}

// Slice returns a copy of rows [lo, hi) along axis 0.
func (t *Tensor) Slice(lo, hi int) *Tensor {
	if lo < 0 || hi > t.shape[0] || lo >= hi {
		panic(fmt.Sprintf("tensor: Slice [%d, %d) out of range for axis 0 of %v", lo, hi, t.shape))
	}
	inner := len(t.data) / t.shape[0]
	shape := append([]int{hi - lo}, t.shape[1:]...)
	out := New(shape...)
	copy(out.data, t.data[lo*inner:hi*inner])
	return out
}

// Gather0 returns a new tensor whose rows are t's rows at idx, in order —
// the batch-packing primitive of the batched injection scheduler (one pool
// sample per in-flight fault, duplicates allowed).
func Gather0(t *Tensor, idx []int) *Tensor {
	if len(idx) == 0 {
		panic("tensor: Gather0 of nothing")
	}
	inner := len(t.data) / t.shape[0]
	shape := append([]int{len(idx)}, t.shape[1:]...)
	out := New(shape...)
	for k, i := range idx {
		if i < 0 || i >= t.shape[0] {
			panic(fmt.Sprintf("tensor: Gather0 index %d out of range for axis 0 of %v", i, t.shape))
		}
		copy(out.data[k*inner:(k+1)*inner], t.data[i*inner:(i+1)*inner])
	}
	return out
}

// GatherRowsInto is the allocation-free Gather0: it overwrites dst's rows
// with t's rows at idx, in order. dst must have exactly len(idx) rows with
// t's trailing dimensions — the batched campaign loop keeps one arena-
// backed dst per batch size and refills it every group instead of
// allocating a fresh batch tensor per injection round.
func GatherRowsInto(dst, t *Tensor, idx []int) {
	if len(idx) == 0 {
		panic("tensor: GatherRowsInto of nothing")
	}
	inner := len(t.data) / t.shape[0]
	if dst.shape[0] != len(idx) || len(dst.data) != len(idx)*inner {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst %v does not hold %d rows of %d elements", dst.shape, len(idx), inner))
	}
	for k, i := range idx {
		if i < 0 || i >= t.shape[0] {
			panic(fmt.Sprintf("tensor: GatherRowsInto index %d out of range for axis 0 of %v", i, t.shape))
		}
		copy(dst.data[k*inner:(k+1)*inner], t.data[i*inner:(i+1)*inner])
	}
}

// Concat0 concatenates tensors along axis 0. All trailing dimensions must
// match.
func Concat0(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat0 of nothing")
	}
	inner := len(ts[0].data) / ts[0].shape[0]
	rows := 0
	for _, t := range ts {
		if len(t.data)/t.shape[0] != inner {
			panic("tensor: Concat0 trailing dimension mismatch")
		}
		rows += t.shape[0]
	}
	shape := append([]int{rows}, ts[0].shape[1:]...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}
