package tensor

import (
	"sync/atomic"
	"time"
)

// OpStats is a snapshot of the package's kernel counters. Nanos fields are
// cumulative wall-clock time; FLOPs counts 2·m·n·k per matrix multiply
// (multiply-accumulate = 2 operations), the conventional accounting.
type OpStats struct {
	MatMulCalls int64 // MatMul + MatMulT + TMatMul invocations
	MatMulNanos int64
	MatMulFLOPs int64
	Im2ColCalls int64
	Im2ColNanos int64
}

// ops holds the live counters. They are package-global atomics rather than
// per-tensor state so that instrumentation needs no plumbing through the
// nn substrate; the telemetry registry reads them through a collector
// (goldeneye.RegisterRuntimeCollectors). Two atomic adds and two time.Now
// calls per kernel invocation are noise next to the kernels themselves.
var ops struct {
	matmulCalls, matmulNanos, matmulFLOPs atomic.Int64
	im2colCalls, im2colNanos              atomic.Int64
}

// recordMatMul accounts one finished matrix multiply of shape (m,k)@(k,n).
func recordMatMul(start time.Time, m, n, k int) {
	ops.matmulCalls.Add(1)
	ops.matmulNanos.Add(time.Since(start).Nanoseconds())
	ops.matmulFLOPs.Add(2 * int64(m) * int64(n) * int64(k))
}

// recordIm2Col accounts one finished im2col expansion.
func recordIm2Col(start time.Time) {
	ops.im2colCalls.Add(1)
	ops.im2colNanos.Add(time.Since(start).Nanoseconds())
}

// ReadOpStats returns the current counter values. The fields are read
// individually (each atomically), which is sufficient for monitoring.
func ReadOpStats() OpStats {
	return OpStats{
		MatMulCalls: ops.matmulCalls.Load(),
		MatMulNanos: ops.matmulNanos.Load(),
		MatMulFLOPs: ops.matmulFLOPs.Load(),
		Im2ColCalls: ops.im2colCalls.Load(),
		Im2ColNanos: ops.im2colNanos.Load(),
	}
}

// ResetOpStats zeroes all counters, scoping a measurement window (tests,
// per-campaign accounting).
func ResetOpStats() {
	ops.matmulCalls.Store(0)
	ops.matmulNanos.Store(0)
	ops.matmulFLOPs.Store(0)
	ops.im2colCalls.Store(0)
	ops.im2colNanos.Store(0)
}
