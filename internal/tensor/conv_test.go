package tensor

import (
	"testing"

	"goldeneye/internal/rng"
)

// naiveConv2D is a direct reference convolution used only to validate the
// im2col lowering.
func naiveConv2D(x, w *Tensor, stride, pad int) *Tensor {
	n, c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oc, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	out := New(n, oc, oh, ow)
	for ni := 0; ni < n; ni++ {
		for oci := 0; oci < oc; oci++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					var sum float64
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < kh; ki++ {
							for kj := 0; kj < kw; kj++ {
								ii, jj := oi*stride-pad+ki, oj*stride-pad+kj
								if ii < 0 || ii >= h || jj < 0 || jj >= wd {
									continue
								}
								sum += float64(x.At(ni, ci, ii, jj)) * float64(w.At(oci, ci, ki, kj))
							}
						}
					}
					out.Set(float32(sum), ni, oci, oi, oj)
				}
			}
		}
	}
	return out
}

// im2colConv performs convolution through the Im2Col lowering, the way the
// nn package does.
func im2colConv(x, w *Tensor, stride, pad int) *Tensor {
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	oc, c, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(wd, kw, stride, pad)
	col := Im2Col(x, kh, kw, stride, pad)
	wm := w.Reshape(oc, c*kh*kw)
	y := wm.MatMul(col) // (oc, n*oh*ow)
	// Reorder (oc, n, oh, ow) → (n, oc, oh, ow).
	out := New(n, oc, oh, ow)
	for oci := 0; oci < oc; oci++ {
		for ni := 0; ni < n; ni++ {
			for s := 0; s < oh*ow; s++ {
				out.Data()[((ni*oc+oci)*oh*ow)+s] = y.Data()[(oci*n+ni)*oh*ow+s]
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	tests := []struct {
		name        string
		stride, pad int
	}{
		{name: "stride1_pad1", stride: 1, pad: 1},
		{name: "stride2_pad1", stride: 2, pad: 1},
		{name: "stride1_pad0", stride: 1, pad: 0},
	}
	r := rng.New(7)
	x := Randn(r, 1, 2, 3, 6, 6)
	w := Randn(r, 1, 4, 3, 3, 3)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := im2colConv(x, w, tt.stride, tt.pad)
			want := naiveConv2D(x, w, tt.stride, tt.pad)
			if !got.AllClose(want, 1e-4) {
				t.Fatalf("im2col conv differs from naive conv")
			}
		})
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> must hold for the gradient of a
	// convolution to be correct.
	r := rng.New(8)
	const (
		n, c, h, w       = 2, 3, 5, 5
		kh, kw, str, pad = 3, 3, 2, 1
	)
	x := Randn(r, 1, n, c, h, w)
	col := Im2Col(x, kh, kw, str, pad)
	y := Randn(r, 1, col.Dim(0), col.Dim(1))

	var lhs float64
	for i, v := range col.Data() {
		lhs += float64(v) * float64(y.Data()[i])
	}
	back := Col2Im(y, n, c, h, w, kh, kw, str, pad)
	var rhs float64
	for i, v := range back.Data() {
		rhs += float64(v) * float64(x.Data()[i])
	}
	if diff := lhs - rhs; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2D(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(x, 2, 2)
	want := FromSlice([]float32{6, 8, 14, 16}, 1, 1, 2, 2)
	if !out.AllClose(want, 0) {
		t.Fatalf("MaxPool2D = %v", out)
	}
	// Argmax of the top-left window is flat index 5 (value 6).
	if arg[0] != 5 {
		t.Fatalf("argmax[0] = %d, want 5", arg[0])
	}
}

func TestMaxPool2DNegativeValues(t *testing.T) {
	// All-negative window must return the largest (least negative) value,
	// not an implicit zero.
	x := FromSlice([]float32{-4, -3, -2, -1}, 1, 1, 2, 2)
	out, _ := MaxPool2D(x, 2, 2)
	if out.At(0, 0, 0, 0) != -1 {
		t.Fatalf("MaxPool2D over negatives = %v, want -1", out.At(0, 0, 0, 0))
	}
}

func TestAvgPool2DGlobal(t *testing.T) {
	x := FromSlice([]float32{
		1, 3,
		5, 7, // channel 0 mean 4
		2, 2,
		2, 2, // channel 1 mean 2
	}, 1, 2, 2, 2)
	out := AvgPool2DGlobal(x)
	if out.At(0, 0) != 4 || out.At(0, 1) != 2 {
		t.Fatalf("AvgPool2DGlobal = %v", out)
	}
}

func TestConvOut(t *testing.T) {
	tests := []struct {
		in, k, s, p, want int
	}{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{16, 4, 4, 0, 4},
		{8, 1, 1, 0, 8},
	}
	for _, tt := range tests {
		if got := ConvOut(tt.in, tt.k, tt.s, tt.p); got != tt.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", tt.in, tt.k, tt.s, tt.p, got, tt.want)
		}
	}
}
